package vibe_test

import (
	"testing"

	"vibe"
)

func TestPublicProviders(t *testing.T) {
	got := vibe.Providers()
	want := []string{"mvia", "bvia", "clan"}
	if len(got) != len(want) {
		t.Fatalf("Providers = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Providers = %v, want %v", got, want)
		}
	}
}

func TestNewClusterUnknownProvider(t *testing.T) {
	if _, err := vibe.NewCluster("nope", 2, 1); err == nil {
		t.Fatal("unknown provider accepted")
	}
	if _, err := vibe.DefaultConfig("nope"); err == nil {
		t.Fatal("unknown provider accepted by DefaultConfig")
	}
}

func TestPublicPingPong(t *testing.T) {
	sys, err := vibe.NewCluster("clan", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	tmo := 10 * vibe.Second
	const n = 512
	done := false
	sys.Go(0, "client", func(ctx *vibe.Ctx) {
		nic := ctx.OpenNic()
		vi, err := nic.CreateVi(ctx, vibe.ViAttributes{}, nil, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if err := vi.ConnectRequest(ctx, 1, "t", tmo); err != nil {
			t.Error(err)
			return
		}
		buf := ctx.Malloc(n)
		h, err := nic.RegisterMem(ctx, buf)
		if err != nil {
			t.Error(err)
			return
		}
		buf.FillPattern(3)
		if err := vi.PostRecv(ctx, vibe.SimpleRecv(buf, h, n)); err != nil {
			t.Error(err)
			return
		}
		if err := vi.PostSend(ctx, vibe.SimpleSend(buf, h, n)); err != nil {
			t.Error(err)
			return
		}
		if _, err := vi.SendWaitPoll(ctx); err != nil {
			t.Error(err)
			return
		}
		if _, err := vi.RecvWaitPoll(ctx); err != nil {
			t.Error(err)
			return
		}
		done = true
	})
	sys.Go(1, "server", func(ctx *vibe.Ctx) {
		nic := ctx.OpenNic()
		vi, _ := nic.CreateVi(ctx, vibe.ViAttributes{}, nil, nil)
		buf := ctx.Malloc(n)
		h, _ := nic.RegisterMem(ctx, buf)
		vi.PostRecv(ctx, vibe.SimpleRecv(buf, h, n))
		req, err := nic.ConnectWait(ctx, "t", tmo)
		if err != nil {
			t.Error(err)
			return
		}
		req.Accept(ctx, vi)
		if _, err := vi.RecvWaitPoll(ctx); err != nil {
			t.Error(err)
			return
		}
		vi.PostSend(ctx, vibe.SimpleSend(buf, h, n))
		vi.SendWaitPoll(ctx)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("ping-pong did not complete")
	}
}

func TestPublicLatencyAndBandwidth(t *testing.T) {
	lat, err := vibe.Latency("clan", 1024, vibe.XferOpts{})
	if err != nil || lat.LatencyUs <= 0 {
		t.Fatalf("Latency: %v %v", lat, err)
	}
	bw, err := vibe.Bandwidth("clan", 1024, vibe.XferOpts{})
	if err != nil || bw.MBps <= 0 {
		t.Fatalf("Bandwidth: %v %v", bw, err)
	}
}

func TestPublicRunExperiment(t *testing.T) {
	rep, err := vibe.RunExperiment("TCQ", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) == 0 {
		t.Fatal("no tables")
	}
	if _, err := vibe.RunExperiment("NOPE", true); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if len(vibe.Experiments()) < 19 {
		t.Fatalf("registry too small: %d", len(vibe.Experiments()))
	}
}

func TestPublicReliabilityConstants(t *testing.T) {
	if vibe.Unreliable.Reliable() || !vibe.ReliableDelivery.Reliable() || !vibe.ReliableReception.Reliable() {
		t.Fatal("reliability level predicates wrong")
	}
}
