// Package getput is a one-sided get/put programming-model layer over the
// VIA substrate — the "get/put" layer the paper's §3.3 lists among VIBe's
// target models. Each node exposes named memory regions; peers Put into
// and Get from them without involving the owner's application thread.
//
// Design choices driven by VIBe results:
//
//   - Puts are RDMA writes on reliable-delivery connections: zero-copy and
//     owner-CPU-free on every provider (all three support RDMA write).
//   - Gets use hardware RDMA read where the provider offers it (cLAN,
//     M-VIA); on Berkeley VIA — whose NIC cannot read — the layer falls
//     back transparently to a request serviced by the owner's daemon,
//     which RDMA-writes the data back. The PM benchmarks quantify the
//     fallback's cost.
//   - Region descriptors (address + memory handle) are resolved once via
//     a lookup protocol and cached, because VIBe's Figure 1 prices
//     per-operation metadata traffic.
//   - Each node's daemon multiplexes every peer through one completion
//     queue (the Figure 6 guidance: few VIs, one CQ).
package getput

import (
	"fmt"

	"vibe/internal/sim"
	"vibe/internal/via"
	"vibe/internal/vmem"
)

// Config tunes the layer.
type Config struct {
	// MaxName bounds exposed-region names.
	MaxName int
	// Timeout bounds internal waits.
	Timeout sim.Duration
}

// DefaultConfig returns the standard configuration.
func DefaultConfig() Config {
	return Config{MaxName: 48, Timeout: 30 * sim.Second}
}

// Fabric is a set of get/put nodes, one per host.
type Fabric struct {
	sys *via.System
	n   int
	cfg Config
}

// NewFabric prepares one node per host.
func NewFabric(sys *via.System, cfg Config) *Fabric {
	if cfg.MaxName == 0 {
		cfg.MaxName = 48
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 30 * sim.Second
	}
	return &Fabric{sys: sys, n: sys.Hosts(), cfg: cfg}
}

// Run spawns each node's service daemon and application process; fn runs
// as the application. Call sys.Run() afterwards.
func (f *Fabric) Run(fn func(ctx *via.Ctx, nd *Node)) {
	nodes := make([]*Node, f.n)
	for i := 0; i < f.n; i++ {
		i := i
		f.sys.Go(i, fmt.Sprintf("gp-node%d", i), func(ctx *via.Ctx) {
			nd, err := f.initNode(ctx, i)
			if err != nil {
				panic(fmt.Sprintf("getput: node %d init: %v", i, err))
			}
			nodes[i] = nd
			fn(ctx, nd)
		})
	}
}

// ringSlots is the pre-posted control-message depth per inbound VI.
const ringSlots = 16

// initNode wires node i: for every ordered pair, one VI whose requests
// flow toward the higher endpoint of the exchange. Concretely, node a
// keeps two VIs per peer b: reqVI (a requests, b's daemon responds) and
// srvVI (b requests, a's daemon responds).
func (f *Fabric) initNode(ctx *via.Ctx, me int) (*Node, error) {
	nic := ctx.OpenNic()
	nd := &Node{
		fab:     f,
		me:      me,
		ctx:     ctx,
		nic:     nic,
		peers:   make([]*gpPeer, f.n),
		regions: map[string]exposed{},
		pending: map[uint32]*opState{},
		wake:    sim.NewSignal(ctx.P.Engine()),
	}
	cq, err := nic.CreateCQ(ctx, 1024)
	if err != nil {
		return nil, err
	}
	nd.cq = cq

	supportsRead := nic.Attributes().RdmaReadSupported
	reqAttrs := via.ViAttributes{
		Reliability:     via.ReliableDelivery,
		EnableRdmaWrite: true,
		EnableRdmaRead:  supportsRead,
	}

	// Create both VIs per peer; receive sides feed the daemon CQ.
	for p := 0; p < f.n; p++ {
		if p == me {
			continue
		}
		gp := &gpPeer{}
		if gp.req, err = nic.CreateVi(ctx, reqAttrs, nil, cq); err != nil {
			return nil, err
		}
		if gp.srv, err = nic.CreateVi(ctx, reqAttrs, nil, cq); err != nil {
			return nil, err
		}
		for _, vi := range []*via.Vi{gp.req, gp.srv} {
			ring := make([]regBuf, ringSlots)
			for s := 0; s < ringSlots; s++ {
				buf := ctx.Malloc(ctlBytes + f.cfg.MaxName)
				h, err := nic.RegisterMem(ctx, buf)
				if err != nil {
					return nil, err
				}
				ring[s] = regBuf{buf: buf, h: h}
				if err := vi.PostRecv(ctx, via.SimpleRecv(buf, h, ctlBytes+f.cfg.MaxName)); err != nil {
					return nil, err
				}
			}
			if vi == gp.req {
				gp.reqRing = ring
			} else {
				gp.srvRing = ring
			}
		}
		// Each VI gets its own bounce: the user proc sends on req, the
		// daemon sends on srv — never both on one queue.
		b1 := ctx.Malloc(ctlBytes + f.cfg.MaxName)
		h1, err := nic.RegisterMem(ctx, b1)
		if err != nil {
			return nil, err
		}
		gp.reqBounce = regBuf{buf: b1, h: h1}
		b2 := ctx.Malloc(ctlBytes + f.cfg.MaxName)
		h2, err := nic.RegisterMem(ctx, b2)
		if err != nil {
			return nil, err
		}
		gp.srvBounce = regBuf{buf: b2, h: h2}
		gp.lookups = map[string]remoteRegion{}
		nd.peers[p] = gp
	}

	// Connect: for each ordered (a, b), a's req VI pairs with b's srv VI;
	// the lower host id dials both of its directions first to keep the
	// handshake order deterministic.
	connect := func(mine *via.Vi, peerHost int, disc string, dial bool) error {
		if dial {
			return mine.ConnectRequest(ctx, f.sys.Host(peerHost).ID(), disc, f.cfg.Timeout)
		}
		req, err := nic.ConnectWait(ctx, disc, f.cfg.Timeout)
		if err != nil {
			return err
		}
		return req.Accept(ctx, mine)
	}
	for p := 0; p < f.n; p++ {
		if p == me {
			continue
		}
		gp := nd.peers[p]
		discMine := fmt.Sprintf("gp-%d-%d", me, p) // my requests toward p
		discTheir := fmt.Sprintf("gp-%d-%d", p, me)
		if me < p {
			if err := connect(gp.req, p, discMine, true); err != nil {
				return nil, err
			}
			if err := connect(gp.srv, p, discTheir, false); err != nil {
				return nil, err
			}
		} else {
			if err := connect(gp.srv, p, discTheir, false); err != nil {
				return nil, err
			}
			if err := connect(gp.req, p, discMine, true); err != nil {
				return nil, err
			}
		}
	}

	// The daemon services inbound control traffic for the node's
	// lifetime.
	f.sys.Go(me, fmt.Sprintf("gp-daemon%d", me), func(dctx *via.Ctx) {
		dctx.P.SetDaemon(true)
		nd.daemon(dctx)
	})
	return nd, nil
}

// regBuf is a registered buffer.
type regBuf struct {
	buf *vmem.Buffer
	h   via.MemHandle
}

// gpPeer is the per-peer connection state.
type gpPeer struct {
	req       *via.Vi // this node requests / puts / reads
	srv       *via.Vi // the peer requests; our daemon responds
	reqRing   []regBuf
	srvRing   []regBuf
	reqRingAt int
	srvRingAt int
	reqBounce regBuf // user-proc staging (requests)
	srvBounce regBuf // daemon staging (responses)

	lookups map[string]remoteRegion
}

// remoteRegion is a cached answer to a region lookup.
type remoteRegion struct {
	addr   vmem.Addr
	handle via.MemHandle
	length int
}

// exposed is a locally exported region.
type exposed struct {
	buf    *vmem.Buffer
	handle via.MemHandle
}

// opState tracks one in-flight user operation awaiting a daemon-routed
// response.
type opState struct {
	done   bool
	status byte
	region remoteRegion
}
