package getput

import (
	"fmt"
	"testing"

	"vibe/internal/provider"
	"vibe/internal/sim"
	"vibe/internal/via"
)

// runFabric builds an n-host fabric and runs fn on every node.
func runFabric(t *testing.T, m *provider.Model, n int, fn func(ctx *via.Ctx, nd *Node) error) {
	t.Helper()
	sys := via.NewSystem(m, n, 1)
	f := NewFabric(sys, DefaultConfig())
	f.Run(func(ctx *via.Ctx, nd *Node) {
		if err := fn(ctx, nd); err != nil {
			t.Errorf("node %d: %v", nd.Me(), err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	for _, m := range provider.All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			const n = 12000
			var ready bool
			runFabric(t, m, 2, func(ctx *via.Ctx, nd *Node) error {
				nic := ctx.OpenNic()
				if nd.Me() == 1 {
					region := ctx.Malloc(64 * 1024)
					if err := nd.Expose(ctx, "data", region); err != nil {
						return err
					}
					ready = true
					// Wait for the peer's fence to guarantee the put
					// landed, then idle until the run ends.
					ctx.Sleep(20 * sim.Millisecond)
					return nil
				}
				for !ready {
					ctx.Sleep(100 * sim.Microsecond)
				}
				src := ctx.Malloc(n)
				sh, err := nic.RegisterMem(ctx, src)
				if err != nil {
					return err
				}
				src.FillPattern(2)
				if err := nd.Put(ctx, 1, "data", 4096, src, n, sh); err != nil {
					return err
				}
				if err := nd.Fence(ctx, 1); err != nil {
					return err
				}
				dst := ctx.Malloc(n)
				dh, err := nic.RegisterMem(ctx, dst)
				if err != nil {
					return err
				}
				if err := nd.Get(ctx, 1, "data", 4096, n, dst, dh); err != nil {
					return err
				}
				return dst.CheckPattern(2, n)
			})
		})
	}
}

func TestGetPathSelection(t *testing.T) {
	// cLAN (RDMA read in hardware) must use one-sided gets; Berkeley VIA
	// must fall back to daemon-serviced gets.
	check := func(m *provider.Model, wantHardware bool) {
		var hwGets, served uint64
		var ready bool
		runFabric(t, m, 2, func(ctx *via.Ctx, nd *Node) error {
			nic := ctx.OpenNic()
			if nd.Me() == 1 {
				region := ctx.Malloc(8192)
				region.FillPattern(5)
				if err := nd.Expose(ctx, "r", region); err != nil {
					return err
				}
				ready = true
				ctx.Sleep(20 * sim.Millisecond)
				served = nd.ServicedGets
				return nil
			}
			for !ready {
				ctx.Sleep(100 * sim.Microsecond)
			}
			dst := ctx.Malloc(4096)
			dh, err := nic.RegisterMem(ctx, dst)
			if err != nil {
				return err
			}
			if err := nd.Get(ctx, 1, "r", 0, 4096, dst, dh); err != nil {
				return err
			}
			hwGets = nd.HardwareGets
			return dst.CheckPattern(5, 4096)
		})
		if wantHardware && (hwGets != 1 || served != 0) {
			t.Errorf("%s: want hardware get, got hw=%d served=%d", m.Name, hwGets, served)
		}
		if !wantHardware && (hwGets != 0 || served != 1) {
			t.Errorf("%s: want serviced get, got hw=%d served=%d", m.Name, hwGets, served)
		}
	}
	check(provider.CLAN(), true)
	check(provider.BVIA(), false)
}

func TestLookupCaching(t *testing.T) {
	var ready bool
	runFabric(t, provider.CLAN(), 2, func(ctx *via.Ctx, nd *Node) error {
		nic := ctx.OpenNic()
		if nd.Me() == 1 {
			region := ctx.Malloc(4096)
			if err := nd.Expose(ctx, "x", region); err != nil {
				return err
			}
			ready = true
			ctx.Sleep(10 * sim.Millisecond)
			return nil
		}
		for !ready {
			ctx.Sleep(100 * sim.Microsecond)
		}
		src := ctx.Malloc(256)
		sh, _ := nic.RegisterMem(ctx, src)
		for i := 0; i < 5; i++ {
			if err := nd.Put(ctx, 1, "x", 0, src, 256, sh); err != nil {
				return err
			}
		}
		if nd.Lookups != 1 {
			return fmt.Errorf("lookups = %d, want 1 (cached)", nd.Lookups)
		}
		return nil
	})
}

func TestErrors(t *testing.T) {
	var ready bool
	runFabric(t, provider.CLAN(), 2, func(ctx *via.Ctx, nd *Node) error {
		nic := ctx.OpenNic()
		if nd.Me() == 1 {
			region := ctx.Malloc(1000)
			if err := nd.Expose(ctx, "small", region); err != nil {
				return err
			}
			if err := nd.Expose(ctx, "small", region); err == nil {
				return fmt.Errorf("duplicate expose accepted")
			}
			ready = true
			ctx.Sleep(10 * sim.Millisecond)
			return nil
		}
		for !ready {
			ctx.Sleep(100 * sim.Microsecond)
		}
		src := ctx.Malloc(256)
		sh, _ := nic.RegisterMem(ctx, src)
		// Unknown region.
		if err := nd.Put(ctx, 1, "ghost", 0, src, 256, sh); err == nil {
			return fmt.Errorf("put to unknown region accepted")
		}
		// Out of range.
		if err := nd.Put(ctx, 1, "small", 900, src, 256, sh); err == nil {
			return fmt.Errorf("out-of-range put accepted")
		}
		if err := nd.Get(ctx, 1, "small", 900, 256, src, sh); err == nil {
			return fmt.Errorf("out-of-range get accepted")
		}
		return nil
	})
}

func TestThreeNodeSharing(t *testing.T) {
	// Node 0 puts; node 2 gets the same region from node 1: cross-node
	// visibility through the owner.
	const n = 2048
	sys := via.NewSystem(provider.CLAN(), 3, 1)
	f := NewFabric(sys, DefaultConfig())
	step := make([]bool, 3)
	f.Run(func(ctx *via.Ctx, nd *Node) {
		nic := ctx.OpenNic()
		switch nd.Me() {
		case 1:
			region := ctx.Malloc(n)
			if err := nd.Expose(ctx, "shared", region); err != nil {
				t.Error(err)
				return
			}
			step[1] = true
			ctx.Sleep(50 * sim.Millisecond)
		case 0:
			for !step[1] {
				ctx.Sleep(100 * sim.Microsecond)
			}
			src := ctx.Malloc(n)
			sh, _ := nic.RegisterMem(ctx, src)
			src.FillPattern(8)
			if err := nd.Put(ctx, 1, "shared", 0, src, n, sh); err != nil {
				t.Error(err)
				return
			}
			if err := nd.Fence(ctx, 1); err != nil {
				t.Error(err)
				return
			}
			step[0] = true
		case 2:
			for !step[0] {
				ctx.Sleep(100 * sim.Microsecond)
			}
			dst := ctx.Malloc(n)
			dh, _ := nic.RegisterMem(ctx, dst)
			if err := nd.Get(ctx, 1, "shared", 0, n, dst, dh); err != nil {
				t.Error(err)
				return
			}
			if err := dst.CheckPattern(8, n); err != nil {
				t.Error(err)
			}
			step[2] = true
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !step[2] {
		t.Fatal("node 2 never completed its get")
	}
}

func TestGetPutDeterminism(t *testing.T) {
	run := func() sim.Time {
		sys := via.NewSystem(provider.BVIA(), 2, 5)
		f := NewFabric(sys, DefaultConfig())
		var end sim.Time
		var ready bool
		f.Run(func(ctx *via.Ctx, nd *Node) {
			nic := ctx.OpenNic()
			if nd.Me() == 1 {
				region := ctx.Malloc(8192)
				nd.Expose(ctx, "d", region)
				ready = true
				ctx.Sleep(10 * sim.Millisecond)
				return
			}
			for !ready {
				ctx.Sleep(100 * sim.Microsecond)
			}
			src := ctx.Malloc(4096)
			sh, _ := nic.RegisterMem(ctx, src)
			for i := 0; i < 5; i++ {
				if err := nd.Put(ctx, 1, "d", 0, src, 4096, sh); err != nil {
					t.Error(err)
					return
				}
			}
			nd.Fence(ctx, 1)
			end = ctx.Now()
		})
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

func TestSelfPutGet(t *testing.T) {
	// Self-targeted operations are local memory copies: no wire traffic,
	// no daemon involvement.
	runFabric(t, provider.CLAN(), 2, func(ctx *via.Ctx, nd *Node) error {
		if nd.Me() != 0 {
			ctx.Sleep(5 * sim.Millisecond)
			return nil
		}
		nic := ctx.OpenNic()
		region := ctx.Malloc(8192)
		if err := nd.Expose(ctx, "self", region); err != nil {
			return err
		}
		src := ctx.Malloc(1000)
		sh, _ := nic.RegisterMem(ctx, src)
		src.FillPattern(4)
		before := ctx.Host.System().Net.Sent
		if err := nd.Put(ctx, 0, "self", 100, src, 1000, sh); err != nil {
			return err
		}
		dst := ctx.Malloc(1000)
		dh, _ := nic.RegisterMem(ctx, dst)
		if err := nd.Get(ctx, 0, "self", 100, 1000, dst, dh); err != nil {
			return err
		}
		if err := nd.Fence(ctx, 0); err != nil {
			return err
		}
		if ctx.Host.System().Net.Sent != before {
			return fmt.Errorf("self put/get generated wire traffic")
		}
		if err := dst.CheckPattern(4, 1000); err != nil {
			return err
		}
		// Bounds still enforced locally.
		if err := nd.Put(ctx, 0, "self", 8000, src, 1000, sh); err == nil {
			return fmt.Errorf("out-of-range self put accepted")
		}
		if err := nd.Get(ctx, 0, "ghost", 0, 10, dst, dh); err == nil {
			return fmt.Errorf("self get of unknown region accepted")
		}
		return nil
	})
}
