package getput

import (
	"fmt"

	"vibe/internal/sim"
	"vibe/internal/via"
	"vibe/internal/vmem"
)

// Node is one host's handle on the get/put fabric.
type Node struct {
	fab  *Fabric
	me   int
	ctx  *via.Ctx
	nic  *via.Nic
	cq   *via.CQ
	wake *sim.Signal

	peers   []*gpPeer
	byVi    map[int]viRef
	regions map[string]exposed
	pending map[uint32]*opState
	nextReq uint32

	// Counters for tests and reports.
	Puts         uint64
	HardwareGets uint64 // RDMA-read gets
	ServicedGets uint64 // daemon-serviced fallback gets (as owner)
	Lookups      uint64
}

// viRef locates a VI within the node's peer table.
type viRef struct {
	peer  int
	isSrv bool
}

// Me returns this node's id.
func (nd *Node) Me() int { return nd.me }

// Size returns the fabric size.
func (nd *Node) Size() int { return nd.fab.n }

// Expose publishes buf under name so peers can Put/Get it.
func (nd *Node) Expose(ctx *via.Ctx, name string, buf *vmem.Buffer) error {
	if len(name) > nd.fab.cfg.MaxName {
		return fmt.Errorf("getput: name %q too long", name)
	}
	if _, dup := nd.regions[name]; dup {
		return fmt.Errorf("getput: region %q already exposed", name)
	}
	h, err := nd.nic.RegisterMem(ctx, buf)
	if err != nil {
		return err
	}
	nd.regions[name] = exposed{buf: buf, handle: h}
	return nil
}

// memcpyPerByte prices local (self-targeted) puts and gets: a plain host
// copy at the testbed's ~100 MB/s.
const memcpyPerByte = 10 * sim.Nanosecond

// local returns the locally exposed region, for self-targeted operations.
func (nd *Node) local(name string) (exposed, error) {
	r, ok := nd.regions[name]
	if !ok {
		return exposed{}, fmt.Errorf("getput: region %q not exposed locally", name)
	}
	return r, nil
}

// Put writes src[0:n] into [off, off+n) of the named region on peer.
// It returns once delivery is guaranteed (reliable-delivery semantics).
// A self-targeted put is a host memory copy.
func (nd *Node) Put(ctx *via.Ctx, peer int, name string, off int, src *vmem.Buffer, n int, srcHandle via.MemHandle) error {
	if peer == nd.me {
		r, err := nd.local(name)
		if err != nil {
			return err
		}
		if off < 0 || off+n > r.buf.Len() {
			return fmt.Errorf("getput: put [%d,+%d) outside region %q", off, n, name)
		}
		copy(r.buf.Bytes()[off:off+n], src.Bytes()[:n])
		ctx.Compute(sim.Duration(n) * memcpyPerByte)
		nd.Puts++
		return nil
	}
	r, err := nd.resolve(ctx, peer, name)
	if err != nil {
		return err
	}
	if off < 0 || off+n > r.length {
		return fmt.Errorf("getput: put [%d,+%d) outside region %q of %d bytes", off, n, name, r.length)
	}
	gp := nd.peers[peer]
	d := &via.Descriptor{
		Op:     via.OpRdmaWrite,
		Segs:   []via.DataSegment{{Addr: src.Addr(), Handle: srcHandle, Length: n}},
		Remote: &via.AddressSegment{Addr: r.addr.Advance(off), Handle: r.handle},
	}
	if err := gp.req.PostSend(ctx, d); err != nil {
		return err
	}
	done, err := gp.req.SendWaitPoll(ctx)
	if err != nil {
		return err
	}
	if done.Status != via.StatusSuccess {
		return fmt.Errorf("getput: put failed: %v", done.Status)
	}
	nd.Puts++
	return nil
}

// Get reads [off, off+n) of the named region on peer into dst (which must
// be registered under dstHandle). On providers with RDMA read it is fully
// one-sided; otherwise the owner's daemon writes the data back. A
// self-targeted get is a host memory copy.
func (nd *Node) Get(ctx *via.Ctx, peer int, name string, off, n int, dst *vmem.Buffer, dstHandle via.MemHandle) error {
	if peer == nd.me {
		r, err := nd.local(name)
		if err != nil {
			return err
		}
		if off < 0 || off+n > r.buf.Len() {
			return fmt.Errorf("getput: get [%d,+%d) outside region %q", off, n, name)
		}
		copy(dst.Bytes()[:n], r.buf.Bytes()[off:off+n])
		ctx.Compute(sim.Duration(n) * memcpyPerByte)
		return nil
	}
	r, err := nd.resolve(ctx, peer, name)
	if err != nil {
		return err
	}
	if off < 0 || off+n > r.length {
		return fmt.Errorf("getput: get [%d,+%d) outside region %q of %d bytes", off, n, name, r.length)
	}
	gp := nd.peers[peer]
	if nd.nic.Attributes().RdmaReadSupported {
		d := &via.Descriptor{
			Op:     via.OpRdmaRead,
			Segs:   []via.DataSegment{{Addr: dst.Addr(), Handle: dstHandle, Length: n}},
			Remote: &via.AddressSegment{Addr: r.addr.Advance(off), Handle: r.handle},
		}
		if err := gp.req.PostSend(ctx, d); err != nil {
			return err
		}
		done, err := gp.req.SendWaitPoll(ctx)
		if err != nil {
			return err
		}
		if done.Status != via.StatusSuccess {
			return fmt.Errorf("getput: rdma-read get failed: %v", done.Status)
		}
		nd.HardwareGets++
		return nil
	}
	// Fallback: ask the owner's daemon to RDMA-write the range to us.
	st, id := nd.newOp()
	c := ctl{kind: opGetReq, req: id, off: off, n: n, addr: dst.Addr(), handle: dstHandle, name: name}
	if err := nd.sendReq(ctx, gp, &c); err != nil {
		return err
	}
	nd.await(ctx, st)
	if st.status != stOK {
		return fmt.Errorf("getput: get %q failed with status %d", name, st.status)
	}
	return nil
}

// Fence completes when every earlier Put/Get toward peer has been
// processed ahead of it on the (ordered, reliable) channel. A self fence
// is a no-op: local operations are immediate.
func (nd *Node) Fence(ctx *via.Ctx, peer int) error {
	if peer == nd.me {
		return nil
	}
	st, id := nd.newOp()
	c := ctl{kind: opFenceReq, req: id}
	if err := nd.sendReq(ctx, nd.peers[peer], &c); err != nil {
		return err
	}
	nd.await(ctx, st)
	return nil
}

// resolve returns the cached or freshly looked-up descriptor of a remote
// region.
func (nd *Node) resolve(ctx *via.Ctx, peer int, name string) (remoteRegion, error) {
	gp := nd.peers[peer]
	if r, ok := gp.lookups[name]; ok {
		return r, nil
	}
	nd.Lookups++
	st, id := nd.newOp()
	c := ctl{kind: opLookupReq, req: id, name: name}
	if err := nd.sendReq(ctx, gp, &c); err != nil {
		return remoteRegion{}, err
	}
	nd.await(ctx, st)
	if st.status != stOK {
		return remoteRegion{}, fmt.Errorf("getput: region %q not found on node %d", name, peer)
	}
	gp.lookups[name] = st.region
	return st.region, nil
}

func (nd *Node) newOp() (*opState, uint32) {
	nd.nextReq++
	st := &opState{}
	nd.pending[nd.nextReq] = st
	return st, nd.nextReq
}

// await parks the application process until the daemon completes the
// operation.
func (nd *Node) await(ctx *via.Ctx, st *opState) {
	for !st.done {
		nd.wake.Wait(ctx.P)
	}
}

// sendReq stages and sends a control message on the request VI (the
// application process is its only sender).
func (nd *Node) sendReq(ctx *via.Ctx, gp *gpPeer, c *ctl) error {
	n := c.encode(gp.reqBounce.buf.Bytes())
	d := &via.Descriptor{Op: via.OpSend, Segs: []via.DataSegment{{
		Addr: gp.reqBounce.buf.Addr(), Handle: gp.reqBounce.h, Length: n}}}
	if err := gp.req.PostSend(ctx, d); err != nil {
		return err
	}
	done, err := gp.req.SendWaitPoll(ctx)
	if err != nil {
		return err
	}
	if done.Status != via.StatusSuccess {
		return fmt.Errorf("getput: control send failed: %v", done.Status)
	}
	return nil
}

// --- daemon ---

// daemon services the node's completion queue for its lifetime: requests
// from peers on srv VIs, responses to our own requests on req VIs.
func (nd *Node) daemon(ctx *via.Ctx) {
	if nd.byVi == nil {
		nd.byVi = map[int]viRef{}
		for p, gp := range nd.peers {
			if gp == nil {
				continue
			}
			nd.byVi[gp.req.ID()] = viRef{peer: p, isSrv: false}
			nd.byVi[gp.srv.ID()] = viRef{peer: p, isSrv: true}
		}
	}
	for {
		comp, err := nd.cq.WaitBlockForever(ctx)
		if err != nil {
			return
		}
		ref, ok := nd.byVi[comp.Vi.ID()]
		if !ok || !comp.IsRecv {
			continue
		}
		gp := nd.peers[ref.peer]
		d, got := comp.Vi.RecvDone(ctx)
		if !got || d.Status != via.StatusSuccess {
			continue
		}
		var rb regBuf
		if ref.isSrv {
			rb = gp.srvRing[gp.srvRingAt%ringSlots]
			gp.srvRingAt++
		} else {
			rb = gp.reqRing[gp.reqRingAt%ringSlots]
			gp.reqRingAt++
		}
		c := decode(rb.buf.Bytes())
		// Repost the slot before servicing.
		if err := comp.Vi.PostRecv(ctx, via.SimpleRecv(rb.buf, rb.h, rb.buf.Len())); err != nil {
			return
		}
		if ref.isSrv {
			nd.serve(ctx, gp, c)
		} else {
			nd.completeOp(c)
		}
	}
}

// serve handles one request from a peer, responding on the srv VI (the
// daemon is its only sender).
func (nd *Node) serve(ctx *via.Ctx, gp *gpPeer, c ctl) {
	switch c.kind {
	case opLookupReq:
		resp := ctl{kind: opLookupResp, req: c.req, status: stNotFound}
		if r, ok := nd.regions[c.name]; ok {
			resp.status = stOK
			resp.addr = r.buf.Addr()
			resp.handle = r.handle
			resp.n = r.buf.Len()
		}
		nd.respond(ctx, gp, &resp)
	case opGetReq:
		resp := ctl{kind: opGetDone, req: c.req, status: stNotFound}
		if r, ok := nd.regions[c.name]; ok {
			if c.off < 0 || c.off+c.n > r.buf.Len() {
				resp.status = stRange
			} else {
				wr := &via.Descriptor{
					Op:     via.OpRdmaWrite,
					Segs:   []via.DataSegment{{Addr: r.buf.AddrAt(c.off), Handle: r.handle, Length: c.n}},
					Remote: &via.AddressSegment{Addr: c.addr, Handle: c.handle},
				}
				if err := gp.srv.PostSend(ctx, wr); err == nil {
					if done, err := gp.srv.SendWaitPoll(ctx); err == nil && done.Status == via.StatusSuccess {
						resp.status = stOK
						nd.ServicedGets++
					} else {
						resp.status = stRange
					}
				}
			}
		}
		nd.respond(ctx, gp, &resp)
	case opFenceReq:
		nd.respond(ctx, gp, &ctl{kind: opFenceResp, req: c.req, status: stOK})
	}
}

func (nd *Node) respond(ctx *via.Ctx, gp *gpPeer, c *ctl) {
	n := c.encode(gp.srvBounce.buf.Bytes())
	d := &via.Descriptor{Op: via.OpSend, Segs: []via.DataSegment{{
		Addr: gp.srvBounce.buf.Addr(), Handle: gp.srvBounce.h, Length: n}}}
	if err := gp.srv.PostSend(ctx, d); err != nil {
		return
	}
	gp.srv.SendWaitPoll(ctx)
}

// completeOp routes a response to the waiting application process.
func (nd *Node) completeOp(c ctl) {
	st, ok := nd.pending[c.req]
	if !ok {
		return
	}
	delete(nd.pending, c.req)
	st.status = c.status
	st.region = remoteRegion{addr: c.addr, handle: c.handle, length: c.n}
	st.done = true
	nd.wake.Broadcast()
}
