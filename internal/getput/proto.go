package getput

import (
	"encoding/binary"

	"vibe/internal/via"
	"vibe/internal/vmem"
)

// Control-message wire format (fixed header + optional name):
//
//	[kind:1][status:1][namelen:2][req:4][off:8][n:8][addr:8][handle:8]
//	[name...]
const ctlBytes = 40

const (
	opLookupReq  = 1 // name -> region descriptor
	opLookupResp = 2
	opGetReq     = 3 // owner RDMA-writes [off, off+n) of region to addr/handle
	opGetDone    = 4
	opFenceReq   = 5
	opFenceResp  = 6
)

const (
	stOK       = 0
	stNotFound = 1
	stRange    = 2
)

// ctl is a decoded control message.
type ctl struct {
	kind   byte
	status byte
	req    uint32
	off    int
	n      int
	addr   vmem.Addr
	handle via.MemHandle
	name   string
}

// encode writes c into dst and returns the total length.
func (c *ctl) encode(dst []byte) int {
	dst[0] = c.kind
	dst[1] = c.status
	binary.LittleEndian.PutUint16(dst[2:], uint16(len(c.name)))
	binary.LittleEndian.PutUint32(dst[4:], c.req)
	binary.LittleEndian.PutUint64(dst[8:], uint64(c.off))
	binary.LittleEndian.PutUint64(dst[16:], uint64(c.n))
	binary.LittleEndian.PutUint64(dst[24:], uint64(c.addr))
	binary.LittleEndian.PutUint64(dst[32:], uint64(c.handle))
	copy(dst[ctlBytes:], c.name)
	return ctlBytes + len(c.name)
}

// decode parses a control message.
func decode(src []byte) ctl {
	nameLen := int(binary.LittleEndian.Uint16(src[2:]))
	return ctl{
		kind:   src[0],
		status: src[1],
		req:    binary.LittleEndian.Uint32(src[4:]),
		off:    int(binary.LittleEndian.Uint64(src[8:])),
		n:      int(binary.LittleEndian.Uint64(src[16:])),
		addr:   vmem.Addr(binary.LittleEndian.Uint64(src[24:])),
		handle: via.MemHandle(binary.LittleEndian.Uint64(src[32:])),
		name:   string(src[ctlBytes : ctlBytes+nameLen]),
	}
}
