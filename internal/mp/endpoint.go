package mp

import (
	"fmt"

	"vibe/internal/sim"
	"vibe/internal/via"
	"vibe/internal/vmem"
)

// memcpyPerByte models the host's application-level memcpy rate
// (~100 MB/s on the paper's 300 MHz Pentium II testbed). The eager
// protocol pays it twice per message — staging into the bounce buffer and
// copying out at the receiver — which is exactly the cost rendezvous
// avoids and what makes the eager-limit crossover real.
const memcpyPerByte = 10 * sim.Nanosecond

// Endpoint is one rank's handle on the world.
type Endpoint struct {
	world *World
	rank  int
	nic   *via.Nic
	peers []*peer
	cache *regCache

	nextReq uint32

	// Counters for tests and ablation reports.
	EagerSends      uint64
	RendezvousSends uint64
	CreditMsgs      uint64
}

// Rank returns this endpoint's rank.
func (ep *Endpoint) Rank() int { return ep.rank }

// Size returns the world size.
func (ep *Endpoint) Size() int { return ep.world.n }

// Send delivers buf[0:n] to rank dst with the given tag (tags must be
// non-negative; negative tags are reserved for collectives). Small
// payloads copy through the pre-registered bounce buffer (eager); large
// ones register the user buffer (through the cache) and move zero-copy
// with rendezvous RDMA.
func (ep *Endpoint) Send(ctx *via.Ctx, dst, tag int, buf *vmem.Buffer, n int) error {
	if tag < 0 {
		return fmt.Errorf("mp: negative tags are reserved")
	}
	return ep.send(ctx, dst, int32(tag), buf, n)
}

func (ep *Endpoint) send(ctx *via.Ctx, dst int, tag int32, buf *vmem.Buffer, n int) error {
	if dst == ep.rank {
		return fmt.Errorf("mp: self-send not supported")
	}
	p := ep.peers[dst]
	if n <= ep.world.cfg.EagerLimit {
		ep.EagerSends++
		if err := ep.waitCredit(ctx, p); err != nil {
			return err
		}
		hdr := p.bounce.buf.Bytes()
		putHeader(hdr, kindEager, tag, 0, n)
		copy(hdr[headerBytes:], buf.Bytes()[:n])
		ctx.Compute(sim.Duration(n) * memcpyPerByte)
		return ep.postBounce(ctx, p, headerBytes+n)
	}

	// Rendezvous: RTS -> CTS -> RDMA write -> FIN.
	ep.RendezvousSends++
	ep.nextReq++
	req := ep.nextReq
	h, err := ep.cache.handle(ctx, buf)
	if err != nil {
		return err
	}
	if err := ep.waitCredit(ctx, p); err != nil {
		return err
	}
	hdr := p.bounce.buf.Bytes()
	putHeader(hdr, kindRTS, tag, req, n)
	putAddr(hdr, buf.Addr(), h)
	if err := ep.postBounce(ctx, p, headerBytes+addrBytes); err != nil {
		return err
	}
	// Wait for the receiver's clear-to-send.
	var cts ctsInfo
	for {
		if c, ok := p.cts[req]; ok {
			delete(p.cts, req)
			cts = c
			break
		}
		if err := ep.poll(ctx, p); err != nil {
			return err
		}
	}
	// Zero-copy write into the receiver's buffer, chunked to the
	// provider's maximum transfer size.
	maxXfer := ep.world.sys.Model.MaxTransferSize
	for off := 0; off < n; off += maxXfer {
		chunk := n - off
		if chunk > maxXfer {
			chunk = maxXfer
		}
		wr := &via.Descriptor{
			Op:     via.OpRdmaWrite,
			Segs:   []via.DataSegment{{Addr: buf.AddrAt(off), Handle: h, Length: chunk}},
			Remote: &via.AddressSegment{Addr: cts.addr.Advance(off), Handle: cts.handle},
		}
		if err := p.vi.PostSend(ctx, wr); err != nil {
			return err
		}
		if err := ep.waitSend(ctx, p); err != nil {
			return err
		}
	}
	if err := ep.waitCredit(ctx, p); err != nil {
		return err
	}
	putHeader(p.bounce.buf.Bytes(), kindFin, tag, req, 0)
	return ep.postBounce(ctx, p, headerBytes)
}

// Recv returns the next message from rank src with the given tag. The
// returned buffer is freshly allocated in the caller's address space.
func (ep *Endpoint) Recv(ctx *via.Ctx, src, tag int) (*vmem.Buffer, int, error) {
	if tag < 0 {
		return nil, 0, fmt.Errorf("mp: negative tags are reserved")
	}
	return ep.recv(ctx, src, int32(tag))
}

func (ep *Endpoint) recv(ctx *via.Ctx, src int, tag int32) (*vmem.Buffer, int, error) {
	p := ep.peers[src]
	for {
		for i, m := range p.unexpected {
			if (m.kind == kindEager || m.kind == kindRTS) && m.tag == tag {
				p.unexpected = append(p.unexpected[:i], p.unexpected[i+1:]...)
				return ep.complete(ctx, p, m)
			}
		}
		if err := ep.poll(ctx, p); err != nil {
			return nil, 0, err
		}
	}
}

// complete finishes delivery of a matched message.
func (ep *Endpoint) complete(ctx *via.Ctx, p *peer, m inbound) (*vmem.Buffer, int, error) {
	size := m.n
	if size < 1 {
		size = 1
	}
	dst := ctx.Malloc(size)
	if m.kind == kindEager {
		copy(dst.Bytes(), m.data)
		ctx.Compute(sim.Duration(m.n) * memcpyPerByte)
		return dst, m.n, nil
	}
	// Rendezvous: answer with CTS, then wait for the FIN that marks the
	// RDMA write complete.
	h, err := ep.cache.handle(ctx, dst)
	if err != nil {
		return nil, 0, err
	}
	if err := ep.waitCredit(ctx, p); err != nil {
		return nil, 0, err
	}
	hdr := p.bounce.buf.Bytes()
	putHeader(hdr, kindCTS, m.tag, m.req, m.n)
	putAddr(hdr, dst.Addr(), h)
	if err := ep.postBounce(ctx, p, headerBytes+addrBytes); err != nil {
		return nil, 0, err
	}
	for !p.fin[m.req] {
		if err := ep.poll(ctx, p); err != nil {
			return nil, 0, err
		}
	}
	delete(p.fin, m.req)
	return dst, m.n, nil
}

// poll consumes exactly one inbound message on the peer VI, reposts its
// ring buffer, and dispatches it.
func (ep *Endpoint) poll(ctx *via.Ctx, p *peer) error {
	d, err := p.vi.RecvWaitPoll(ctx)
	if err != nil {
		return err
	}
	if d.Status != via.StatusSuccess {
		return fmt.Errorf("mp: transport receive failed: %v", d.Status)
	}
	idx := p.posted[0]
	p.posted = p.posted[1:]
	rb := p.ring[idx]
	kind, tag, req, n := parseHeader(rb.buf.Bytes())

	switch kind {
	case kindEager:
		data := make([]byte, n)
		copy(data, rb.buf.Bytes()[headerBytes:headerBytes+n])
		p.unexpected = append(p.unexpected, inbound{kind: kind, tag: tag, n: n, data: data})
	case kindRTS:
		addr, h := parseAddr(rb.buf.Bytes())
		p.unexpected = append(p.unexpected, inbound{kind: kind, tag: tag, req: req, n: n, raddr: addr, rh: h})
	case kindCTS:
		addr, h := parseAddr(rb.buf.Bytes())
		p.cts[req] = ctsInfo{addr: addr, handle: h}
	case kindFin:
		p.fin[req] = true
	case kindCredit:
		p.credits += n
	default:
		return fmt.Errorf("mp: unknown message %s", kindName(kind))
	}

	// Repost the ring slot, then return credit in batches. Credit
	// messages themselves consume the reserve slot (waitCredit keeps one
	// in hand), so this cannot deadlock the ring.
	bufSize := headerBytes + ep.world.cfg.EagerLimit
	if err := p.vi.PostRecv(ctx, via.SimpleRecv(rb.buf, rb.h, bufSize)); err != nil {
		return err
	}
	p.posted = append(p.posted, idx)
	if kind != kindCredit {
		p.consumed++
	}
	if p.consumed >= ep.world.cfg.RingSize/2 {
		freed := p.consumed
		p.consumed = 0
		ep.CreditMsgs++
		putHeader(p.bounce.buf.Bytes(), kindCredit, 0, 0, freed)
		if err := ep.postBounce(ctx, p, headerBytes); err != nil {
			return err
		}
	}
	return nil
}

// waitCredit blocks until a send credit is available, keeping one in
// reserve so credit-return messages can always flow.
func (ep *Endpoint) waitCredit(ctx *via.Ctx, p *peer) error {
	for p.credits <= 1 {
		if err := ep.poll(ctx, p); err != nil {
			return err
		}
	}
	p.credits--
	return nil
}

// postBounce sends the staged control/eager message and waits for the
// completion so the bounce buffer can be reused.
func (ep *Endpoint) postBounce(ctx *via.Ctx, p *peer, n int) error {
	d := &via.Descriptor{Op: via.OpSend, Segs: []via.DataSegment{{
		Addr: p.bounce.buf.Addr(), Handle: p.bounce.h, Length: n}}}
	if err := p.vi.PostSend(ctx, d); err != nil {
		return err
	}
	return ep.waitSend(ctx, p)
}

// waitSend retires the head send descriptor.
func (ep *Endpoint) waitSend(ctx *via.Ctx, p *peer) error {
	d, err := p.vi.SendWaitPoll(ctx)
	if err != nil {
		return err
	}
	if d.Status != via.StatusSuccess {
		return fmt.Errorf("mp: transport send failed: %v", d.Status)
	}
	return nil
}
