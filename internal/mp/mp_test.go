package mp

import (
	"fmt"
	"testing"

	"vibe/internal/provider"
	"vibe/internal/sim"
	"vibe/internal/via"
	"vibe/internal/vmem"
)

// runWorld builds an n-host world on the given provider, runs fn on every
// rank, and fails the test on any error.
func runWorld(t *testing.T, m *provider.Model, n int, cfg Config, fn func(ctx *via.Ctx, ep *Endpoint) error) {
	t.Helper()
	sys := via.NewSystem(m, n, 1)
	w := NewWorld(sys, cfg)
	w.Run(func(ctx *via.Ctx, ep *Endpoint) {
		if err := fn(ctx, ep); err != nil {
			t.Errorf("rank %d: %v", ep.Rank(), err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEagerSendRecv(t *testing.T) {
	for _, m := range provider.All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			const n = 1000
			runWorld(t, m, 2, DefaultConfig(), func(ctx *via.Ctx, ep *Endpoint) error {
				if ep.Rank() == 0 {
					buf := ctx.Malloc(n)
					buf.FillPattern(9)
					if err := ep.Send(ctx, 1, 7, buf, n); err != nil {
						return err
					}
					if ep.EagerSends != 1 || ep.RendezvousSends != 0 {
						return fmt.Errorf("eager=%d rdv=%d", ep.EagerSends, ep.RendezvousSends)
					}
					return nil
				}
				got, ln, err := ep.Recv(ctx, 0, 7)
				if err != nil {
					return err
				}
				if ln != n {
					return fmt.Errorf("length %d", ln)
				}
				return got.CheckPattern(9, n)
			})
		})
	}
}

func TestRendezvousSendRecv(t *testing.T) {
	for _, m := range provider.All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			const n = 30000 // above the 8KB eager limit
			cfg := DefaultConfig()
			runWorld(t, m, 2, cfg, func(ctx *via.Ctx, ep *Endpoint) error {
				if ep.Rank() == 0 {
					buf := ctx.Malloc(n)
					buf.FillPattern(4)
					if err := ep.Send(ctx, 1, 3, buf, n); err != nil {
						return err
					}
					if ep.RendezvousSends != 1 {
						return fmt.Errorf("rendezvous not used")
					}
					return nil
				}
				got, ln, err := ep.Recv(ctx, 0, 3)
				if err != nil {
					return err
				}
				if ln != n {
					return fmt.Errorf("length %d", ln)
				}
				return got.CheckPattern(4, n)
			})
		})
	}
}

func TestZeroAndTinyMessages(t *testing.T) {
	runWorld(t, provider.CLAN(), 2, DefaultConfig(), func(ctx *via.Ctx, ep *Endpoint) error {
		if ep.Rank() == 0 {
			buf := ctx.Malloc(4)
			if err := ep.Send(ctx, 1, 0, buf, 0); err != nil {
				return err
			}
			buf.Bytes()[0] = 0xEE
			return ep.Send(ctx, 1, 1, buf, 1)
		}
		_, ln, err := ep.Recv(ctx, 0, 0)
		if err != nil || ln != 0 {
			return fmt.Errorf("zero-length: %v %d", err, ln)
		}
		got, ln, err := ep.Recv(ctx, 0, 1)
		if err != nil || ln != 1 || got.Bytes()[0] != 0xEE {
			return fmt.Errorf("one-byte: %v %d", err, ln)
		}
		return nil
	})
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	// The receiver asks for tag 2 before tag 1; the layer must stash the
	// unexpected tag-1 message and deliver both correctly.
	runWorld(t, provider.CLAN(), 2, DefaultConfig(), func(ctx *via.Ctx, ep *Endpoint) error {
		if ep.Rank() == 0 {
			a := ctx.Malloc(16)
			a.Fill(0xAA)
			if err := ep.Send(ctx, 1, 1, a, 16); err != nil {
				return err
			}
			b := ctx.Malloc(16)
			b.Fill(0xBB)
			return ep.Send(ctx, 1, 2, b, 16)
		}
		got2, _, err := ep.Recv(ctx, 0, 2)
		if err != nil {
			return err
		}
		got1, _, err := ep.Recv(ctx, 0, 1)
		if err != nil {
			return err
		}
		if got2.Bytes()[0] != 0xBB || got1.Bytes()[0] != 0xAA {
			return fmt.Errorf("mismatched payloads: %x %x", got2.Bytes()[0], got1.Bytes()[0])
		}
		return nil
	})
}

func TestManyMessagesExerciseCredits(t *testing.T) {
	// Far more messages than the ring size: flow control must kick in and
	// credit returns must keep the pipe moving.
	const msgs = 100
	cfg := DefaultConfig()
	cfg.RingSize = 8
	var creditMsgs uint64
	runWorld(t, provider.CLAN(), 2, cfg, func(ctx *via.Ctx, ep *Endpoint) error {
		if ep.Rank() == 0 {
			buf := ctx.Malloc(64)
			for i := 0; i < msgs; i++ {
				buf.Bytes()[0] = byte(i)
				if err := ep.Send(ctx, 1, 5, buf, 64); err != nil {
					return fmt.Errorf("send %d: %w", i, err)
				}
			}
			creditMsgs = ep.CreditMsgs
			return nil
		}
		for i := 0; i < msgs; i++ {
			got, _, err := ep.Recv(ctx, 0, 5)
			if err != nil {
				return fmt.Errorf("recv %d: %w", i, err)
			}
			if got.Bytes()[0] != byte(i) {
				return fmt.Errorf("message %d out of order: %d", i, got.Bytes()[0])
			}
		}
		return nil
	})
	_ = creditMsgs // sender-side credit counter counts only its own returns
}

func TestBidirectionalTraffic(t *testing.T) {
	// Simultaneous sends in both directions must not deadlock the credit
	// machinery.
	const msgs = 30
	cfg := DefaultConfig()
	cfg.RingSize = 8
	runWorld(t, provider.BVIA(), 2, cfg, func(ctx *via.Ctx, ep *Endpoint) error {
		other := 1 - ep.Rank()
		buf := ctx.Malloc(128)
		buf.Fill(byte(ep.Rank()))
		for i := 0; i < msgs; i++ {
			if err := ep.Send(ctx, other, 9, buf, 128); err != nil {
				return err
			}
			got, _, err := ep.Recv(ctx, other, 9)
			if err != nil {
				return err
			}
			if got.Bytes()[0] != byte(other) {
				return fmt.Errorf("wrong sender byte")
			}
		}
		return nil
	})
}

func TestBarrier(t *testing.T) {
	const ranks = 4
	arrived := make([]int, ranks)
	order := 0
	runWorld(t, provider.CLAN(), ranks, DefaultConfig(), func(ctx *via.Ctx, ep *Endpoint) error {
		// Stagger entry so the barrier actually waits.
		ctx.Sleep(sim.Duration(ep.Rank()) * 50 * sim.Microsecond)
		if err := ep.Barrier(ctx); err != nil {
			return err
		}
		arrived[ep.Rank()] = order
		order++
		return ep.Barrier(ctx) // second barrier re-uses the tags cleanly
	})
	if order != ranks {
		t.Fatalf("only %d ranks passed the barrier", order)
	}
}

func TestBcastAndGather(t *testing.T) {
	const ranks = 3
	const n = 20000 // rendezvous-size broadcast
	runWorld(t, provider.CLAN(), ranks, DefaultConfig(), func(ctx *via.Ctx, ep *Endpoint) error {
		var payload = ctx.Malloc(n)
		if ep.Rank() == 1 {
			payload.FillPattern(6)
		}
		got, ln, err := ep.Bcast(ctx, 1, payload, n)
		if err != nil {
			return err
		}
		if ln != n {
			return fmt.Errorf("bcast length %d", ln)
		}
		if err := got.CheckPattern(6, n); err != nil {
			return err
		}
		// Gather each rank's id byte at root 0.
		mine := ctx.Malloc(4)
		mine.Fill(byte(0x40 + ep.Rank()))
		res, err := ep.Gather(ctx, 0, mine, 4)
		if err != nil {
			return err
		}
		if ep.Rank() == 0 {
			for r := 0; r < ranks; r++ {
				if res[r].Bytes()[0] != byte(0x40+r) {
					return fmt.Errorf("gather slot %d = %x", r, res[r].Bytes()[0])
				}
			}
		}
		return nil
	})
}

func TestRegCacheBehaviour(t *testing.T) {
	// Repeated rendezvous from the same buffer hits the cache after the
	// first send.
	const n = 20000
	cfg := DefaultConfig()
	runWorld(t, provider.CLAN(), 2, cfg, func(ctx *via.Ctx, ep *Endpoint) error {
		if ep.Rank() == 0 {
			buf := ctx.Malloc(n)
			for i := 0; i < 5; i++ {
				if err := ep.Send(ctx, 1, 2, buf, n); err != nil {
					return err
				}
			}
			hits, misses, _ := ep.CacheStats()
			if misses != 1 || hits != 4 {
				return fmt.Errorf("cache hits=%d misses=%d, want 4/1", hits, misses)
			}
			return nil
		}
		for i := 0; i < 5; i++ {
			if _, _, err := ep.Recv(ctx, 0, 2); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestRegCacheEviction(t *testing.T) {
	const n = 20000
	cfg := DefaultConfig()
	cfg.RegCache = 2
	runWorld(t, provider.CLAN(), 2, cfg, func(ctx *via.Ctx, ep *Endpoint) error {
		if ep.Rank() == 0 {
			a, b, c := ctx.Malloc(n), ctx.Malloc(n), ctx.Malloc(n)
			for _, buf := range []*vmem.Buffer{a, b, c, a} {
				if err := ep.Send(ctx, 1, 2, buf, n); err != nil {
					return err
				}
			}
			_, _, ev := ep.CacheStats()
			if ev == 0 {
				return fmt.Errorf("no evictions with capacity 2 and 3 buffers")
			}
			return nil
		}
		for i := 0; i < 4; i++ {
			if _, _, err := ep.Recv(ctx, 0, 2); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestSelfSendAndNegativeTagRejected(t *testing.T) {
	runWorld(t, provider.CLAN(), 2, DefaultConfig(), func(ctx *via.Ctx, ep *Endpoint) error {
		buf := ctx.Malloc(8)
		if err := ep.Send(ctx, ep.Rank(), 0, buf, 8); err == nil {
			return fmt.Errorf("self-send accepted")
		}
		if err := ep.Send(ctx, 1-ep.Rank(), -1, buf, 8); err == nil {
			return fmt.Errorf("negative tag accepted")
		}
		if _, _, err := ep.Recv(ctx, 1-ep.Rank(), -1); err == nil {
			return fmt.Errorf("negative recv tag accepted")
		}
		return nil
	})
}

func TestMPDeterminism(t *testing.T) {
	run := func() uint64 {
		sys := via.NewSystem(provider.BVIA(), 3, 9)
		w := NewWorld(sys, DefaultConfig())
		var total uint64
		w.Run(func(ctx *via.Ctx, ep *Endpoint) {
			buf := ctx.Malloc(256)
			other := (ep.Rank() + 1) % 3
			prev := (ep.Rank() + 2) % 3
			for i := 0; i < 10; i++ {
				if err := ep.Send(ctx, other, 1, buf, 256); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := ep.Recv(ctx, prev, 1); err != nil {
					t.Error(err)
					return
				}
			}
			total += uint64(ctx.Now())
		})
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		return total
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %d vs %d", a, b)
	}
}
