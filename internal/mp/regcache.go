package mp

import (
	"vibe/internal/via"
	"vibe/internal/vmem"
)

// regCache memoizes memory registrations by buffer, evicting LRU. VIBe's
// Figure 1 shows registration costs tens of microseconds and scales with
// page count, so re-registering the same application buffer on every
// rendezvous would dominate mid-size message cost; the cache reduces it to
// a map lookup after first touch. Figure 2 shows deregistration is cheap,
// so eviction is inexpensive.
type regCache struct {
	ctx *via.Ctx
	nic *via.Nic
	cap int

	entries map[vmem.Addr]via.MemHandle
	lru     []vmem.Addr // front = next victim

	Hits      uint64
	Misses    uint64
	Evictions uint64
}

func newRegCache(ctx *via.Ctx, nic *via.Nic, capacity int) *regCache {
	return &regCache{
		ctx:     ctx,
		nic:     nic,
		cap:     capacity,
		entries: make(map[vmem.Addr]via.MemHandle),
	}
}

// handle returns a registration covering buf, registering (and possibly
// evicting) as needed. With capacity 0 every call registers afresh and the
// caller's handle is never cached (the "no cache" ablation).
func (c *regCache) handle(ctx *via.Ctx, buf *vmem.Buffer) (via.MemHandle, error) {
	if c.cap <= 0 {
		c.Misses++
		return c.nic.RegisterMem(ctx, buf)
	}
	if h, ok := c.entries[buf.Addr()]; ok {
		c.Hits++
		c.touch(buf.Addr())
		return h, nil
	}
	c.Misses++
	if len(c.lru) >= c.cap {
		victim := c.lru[0]
		c.lru = c.lru[1:]
		if h, ok := c.entries[victim]; ok {
			if err := c.nic.DeregisterMem(ctx, h); err != nil {
				return 0, err
			}
			delete(c.entries, victim)
			c.Evictions++
		}
	}
	h, err := c.nic.RegisterMem(ctx, buf)
	if err != nil {
		return 0, err
	}
	c.entries[buf.Addr()] = h
	c.lru = append(c.lru, buf.Addr())
	return h, nil
}

func (c *regCache) touch(a vmem.Addr) {
	for i, x := range c.lru {
		if x == a {
			c.lru = append(c.lru[:i], c.lru[i+1:]...)
			c.lru = append(c.lru, a)
			return
		}
	}
}

// Len reports live cached registrations.
func (c *regCache) Len() int { return len(c.entries) }

// Cache exposes the endpoint's registration cache statistics.
func (ep *Endpoint) CacheStats() (hits, misses, evictions uint64) {
	return ep.cache.Hits, ep.cache.Misses, ep.cache.Evictions
}
