package mp

import (
	"encoding/binary"
	"fmt"

	"vibe/internal/via"
	"vibe/internal/vmem"
)

// Wire protocol: every message on a peer VI starts with a fixed header.
//
//	[kind:1][pad:3][tag:4][req:4][n:4] = 16 bytes
//
// followed by the eager payload, or by [addr:8][handle:8] for RTS and CTS.
const headerBytes = 16

const (
	kindEager  = 1 // payload follows the header
	kindRTS    = 2 // request-to-send: sender's length in n
	kindCTS    = 3 // clear-to-send: receiver's addr+handle follow
	kindFin    = 4 // rendezvous data has been written
	kindCredit = 5 // n = freed remote ring slots
)

func kindName(k byte) string {
	switch k {
	case kindEager:
		return "eager"
	case kindRTS:
		return "rts"
	case kindCTS:
		return "cts"
	case kindFin:
		return "fin"
	case kindCredit:
		return "credit"
	}
	return fmt.Sprintf("kind(%d)", k)
}

// putHeader writes the fixed header into dst.
func putHeader(dst []byte, kind byte, tag int32, req uint32, n int) {
	dst[0] = kind
	dst[1], dst[2], dst[3] = 0, 0, 0
	binary.LittleEndian.PutUint32(dst[4:], uint32(tag))
	binary.LittleEndian.PutUint32(dst[8:], req)
	binary.LittleEndian.PutUint32(dst[12:], uint32(n))
}

// parseHeader decodes the fixed header.
func parseHeader(src []byte) (kind byte, tag int32, req uint32, n int) {
	kind = src[0]
	tag = int32(binary.LittleEndian.Uint32(src[4:]))
	req = binary.LittleEndian.Uint32(src[8:])
	n = int(binary.LittleEndian.Uint32(src[12:]))
	return
}

// putAddr appends an (addr, handle) pair after the header.
func putAddr(dst []byte, addr vmem.Addr, h via.MemHandle) {
	binary.LittleEndian.PutUint64(dst[headerBytes:], uint64(addr))
	binary.LittleEndian.PutUint64(dst[headerBytes+8:], uint64(h))
}

// parseAddr reads the (addr, handle) pair after the header.
func parseAddr(src []byte) (vmem.Addr, via.MemHandle) {
	return vmem.Addr(binary.LittleEndian.Uint64(src[headerBytes:])),
		via.MemHandle(binary.LittleEndian.Uint64(src[headerBytes+8:]))
}

// addrBytes is the size of an RTS/CTS body.
const addrBytes = 16
