// Package mp is a message-passing programming-model layer built on the
// VIA substrate — the "distributed memory (MPI)" layer the paper's §3.3
// and §5 target with VIBe. It exists both as a usable library and as the
// demonstration that VIBe's measurements drive layer design:
//
//   - Figure 1 (registration is expensive) motivates the eager protocol's
//     pre-registered bounce buffers and the rendezvous protocol's
//     registration cache.
//   - Figure 3 (per-byte copy costs) motivates switching from
//     copy-through-bounce (eager) to zero-copy RDMA (rendezvous) above a
//     crossover size.
//   - Figure 6 (multi-VI sensitivity) is why the layer opens exactly one
//     VI per peer.
//
// The layer provides tagged, in-order, reliable point-to-point messaging
// (Send/Recv), plus Barrier and Bcast collectives. Transport is one
// reliable-delivery VI per peer pair with credit-based flow control over a
// pre-posted receive ring.
package mp

import (
	"fmt"

	"vibe/internal/sim"
	"vibe/internal/via"
	"vibe/internal/vmem"
)

// Config tunes the layer's protocol choices.
type Config struct {
	// EagerLimit is the largest payload sent through the copy-based eager
	// path; larger messages use rendezvous RDMA. The PM benchmarks sweep
	// this to locate the crossover VIBe predicts.
	EagerLimit int
	// RingSize is the number of pre-posted receive buffers (and thus the
	// credit budget) per peer.
	RingSize int
	// RegCache is the registration-cache capacity in buffers (0 disables
	// caching: every rendezvous registers and deregisters).
	RegCache int
	// Timeout bounds internal waits.
	Timeout sim.Duration
}

// DefaultConfig returns production-shaped defaults.
func DefaultConfig() Config {
	return Config{
		EagerLimit: 8 * 1024,
		RingSize:   16,
		RegCache:   32,
		Timeout:    30 * sim.Second,
	}
}

// World is a set of ranks, one per host, fully meshed.
type World struct {
	sys *via.System
	n   int
	cfg Config
}

// NewWorld prepares a message-passing world of one rank per host.
func NewWorld(sys *via.System, cfg Config) *World {
	if cfg.RingSize < 4 {
		cfg.RingSize = 4
	}
	if cfg.EagerLimit < 64 {
		cfg.EagerLimit = 64
	}
	// An eager message (header + payload) must fit a single VIA
	// descriptor on this provider.
	if maxEager := sys.Model.MaxTransferSize - headerBytes; cfg.EagerLimit > maxEager {
		cfg.EagerLimit = maxEager
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 30 * sim.Second
	}
	return &World{sys: sys, n: sys.Hosts(), cfg: cfg}
}

// Size reports the number of ranks.
func (w *World) Size() int { return w.n }

// Run spawns one process per rank, initializes the full mesh, and invokes
// fn with the rank's endpoint. Call sys.Run() afterwards to execute.
func (w *World) Run(fn func(ctx *via.Ctx, ep *Endpoint)) {
	for r := 0; r < w.n; r++ {
		r := r
		w.sys.Go(r, fmt.Sprintf("mp-rank%d", r), func(ctx *via.Ctx) {
			ep, err := w.init(ctx, r)
			if err != nil {
				panic(fmt.Sprintf("mp: rank %d init: %v", r, err))
			}
			fn(ctx, ep)
		})
	}
}

// init builds rank r's endpoint: one reliable VI per peer with RDMA write
// enabled, the receive rings pre-posted before connecting.
func (w *World) init(ctx *via.Ctx, rank int) (*Endpoint, error) {
	nic := ctx.OpenNic()
	ep := &Endpoint{
		world: w,
		rank:  rank,
		nic:   nic,
		peers: make([]*peer, w.n),
		cache: newRegCache(ctx, nic, w.cfg.RegCache),
	}
	attrs := via.ViAttributes{
		Reliability:     via.ReliableDelivery,
		EnableRdmaWrite: true,
	}
	// Create all VIs and pre-post their rings first.
	for p := 0; p < w.n; p++ {
		if p == rank {
			continue
		}
		vi, err := nic.CreateVi(ctx, attrs, nil, nil)
		if err != nil {
			return nil, err
		}
		pr := &peer{vi: vi, credits: w.cfg.RingSize - 2}
		bufSize := headerBytes + w.cfg.EagerLimit
		for i := 0; i < w.cfg.RingSize; i++ {
			buf := ctx.Malloc(bufSize)
			h, err := nic.RegisterMem(ctx, buf)
			if err != nil {
				return nil, err
			}
			pr.ring = append(pr.ring, regBuf{buf: buf, h: h})
			if err := vi.PostRecv(ctx, via.SimpleRecv(buf, h, bufSize)); err != nil {
				return nil, err
			}
			pr.posted = append(pr.posted, i)
		}
		sendBuf := ctx.Malloc(bufSize)
		sh, err := nic.RegisterMem(ctx, sendBuf)
		if err != nil {
			return nil, err
		}
		pr.bounce = regBuf{buf: sendBuf, h: sh}
		pr.cts = make(map[uint32]ctsInfo)
		pr.fin = make(map[uint32]bool)
		ep.peers[p] = pr
	}
	// Connect the mesh: the lower rank dials.
	for p := 0; p < w.n; p++ {
		if p == rank {
			continue
		}
		pr := ep.peers[p]
		if rank < p {
			disc := fmt.Sprintf("mp-%d-%d", rank, p)
			if err := pr.vi.ConnectRequest(ctx, ctx.Host.System().Host(p).ID(), disc, w.cfg.Timeout); err != nil {
				return nil, fmt.Errorf("rank %d -> %d: %w", rank, p, err)
			}
		} else {
			disc := fmt.Sprintf("mp-%d-%d", p, rank)
			req, err := nic.ConnectWait(ctx, disc, w.cfg.Timeout)
			if err != nil {
				return nil, fmt.Errorf("rank %d <- %d: %w", rank, p, err)
			}
			if err := req.Accept(ctx, pr.vi); err != nil {
				return nil, err
			}
		}
	}
	return ep, nil
}

// regBuf is a registered buffer.
type regBuf struct {
	buf *vmem.Buffer
	h   via.MemHandle
}

// peer is the per-neighbour transport state.
type peer struct {
	vi     *via.Vi
	ring   []regBuf // pre-posted receive buffers
	posted []int    // ring indices in posting order (completion order)
	bounce regBuf   // send-side staging buffer

	credits  int // sends allowed before the remote ring might overflow
	consumed int // remote buffers we have freed since the last credit return

	unexpected []inbound // matched later by Recv
	cts        map[uint32]ctsInfo
	fin        map[uint32]bool
}

// ctsInfo is the receiver's clear-to-send answer in a rendezvous.
type ctsInfo struct {
	addr   vmem.Addr
	handle via.MemHandle
}

// inbound is a decoded arrived message awaiting a matching Recv.
type inbound struct {
	kind  byte
	tag   int32
	req   uint32
	n     int
	data  []byte // copied payload (eager)
	raddr vmem.Addr
	rh    via.MemHandle
}
