package mp

import (
	"fmt"

	"vibe/internal/via"
	"vibe/internal/vmem"
)

// Collectives run over the point-to-point layer using reserved negative
// tags, so they compose with any application tag usage.
const (
	tagBarrierGather  int32 = -1
	tagBarrierRelease int32 = -2
	tagBcast          int32 = -3
)

// Barrier blocks until every rank has entered it: a gather to rank 0
// followed by a release fan-out.
func (ep *Endpoint) Barrier(ctx *via.Ctx) error {
	token := ctx.Malloc(4)
	if ep.rank == 0 {
		for r := 1; r < ep.world.n; r++ {
			if _, _, err := ep.recv(ctx, r, tagBarrierGather); err != nil {
				return fmt.Errorf("mp barrier gather from %d: %w", r, err)
			}
		}
		for r := 1; r < ep.world.n; r++ {
			if err := ep.send(ctx, r, tagBarrierRelease, token, 4); err != nil {
				return fmt.Errorf("mp barrier release to %d: %w", r, err)
			}
		}
		return nil
	}
	if err := ep.send(ctx, 0, tagBarrierGather, token, 4); err != nil {
		return err
	}
	_, _, err := ep.recv(ctx, 0, tagBarrierRelease)
	return err
}

// Bcast distributes buf[0:n] from root to every rank. Non-root ranks
// receive into a fresh buffer and return it; the root returns its own
// buffer.
func (ep *Endpoint) Bcast(ctx *via.Ctx, root int, buf *vmem.Buffer, n int) (*vmem.Buffer, int, error) {
	if ep.rank == root {
		for r := 0; r < ep.world.n; r++ {
			if r == root {
				continue
			}
			if err := ep.send(ctx, r, tagBcast, buf, n); err != nil {
				return nil, 0, fmt.Errorf("mp bcast to %d: %w", r, err)
			}
		}
		return buf, n, nil
	}
	return ep.recv(ctx, root, tagBcast)
}

// Gather collects n bytes from every rank at root (rank order). Root
// passes its own contribution in buf; the result is a slice of per-rank
// buffers (root's own buffer is aliased, not copied). Non-root ranks get
// a nil result.
func (ep *Endpoint) Gather(ctx *via.Ctx, root int, buf *vmem.Buffer, n int) ([]*vmem.Buffer, error) {
	if ep.rank != root {
		return nil, ep.send(ctx, root, tagBcast, buf, n)
	}
	out := make([]*vmem.Buffer, ep.world.n)
	out[root] = buf
	for r := 0; r < ep.world.n; r++ {
		if r == root {
			continue
		}
		b, _, err := ep.recv(ctx, r, tagBcast)
		if err != nil {
			return nil, fmt.Errorf("mp gather from %d: %w", r, err)
		}
		out[r] = b
	}
	return out, nil
}
