// Package prof is the virtual-time profiler: it attributes simulated
// nanoseconds to component stacks and writes them out in the folded-stack
// format pprof and flamegraph tools consume (`frame1;frame2;frame3 value`
// per line). Unlike a wall-clock profiler there is no sampling error —
// every simulated nanosecond a component accounts for is attributed
// exactly once, so the output is a complete decomposition of where
// virtual time went.
//
// Components do not talk to this package directly; they keep their
// always-on busy counters (cpu.Meter, the NIC Busy* accumulators) and the
// collection pass in internal/via folds them into a Scope after the run.
// A Profile is mutex-guarded so parallel experiment workers can share one.
package prof

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Profile accumulates virtual-time samples keyed by semicolon-joined
// frame stacks. Safe for concurrent use.
type Profile struct {
	mu      sync.Mutex
	samples map[string]int64
}

// New returns an empty profile.
func New() *Profile {
	return &Profile{samples: make(map[string]int64)}
}

// Scope returns a view of the profile with frames prepended to every
// stack added through it — typically the experiment ID, so one shared
// profile keeps per-experiment attributions separate.
func (p *Profile) Scope(frames ...string) *Scope {
	return &Scope{p: p, prefix: strings.Join(frames, ";")}
}

// add records ns under the joined stack. Zero and negative samples are
// dropped: they carry no attribution and would clutter the output.
func (p *Profile) add(stack string, ns int64) {
	if ns <= 0 || stack == "" {
		return
	}
	p.mu.Lock()
	p.samples[stack] += ns
	p.mu.Unlock()
}

// Entry is one folded stack and its accumulated virtual-time value.
type Entry struct {
	Stack string
	Value int64
}

// Entries returns the stacks under prefix (the whole profile when prefix
// is empty), largest value first, ties broken by stack name so the order
// is deterministic.
func (p *Profile) Entries(prefix string) []Entry {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Entry
	for k, v := range p.samples {
		if prefix != "" && k != prefix && !strings.HasPrefix(k, prefix+";") {
			continue
		}
		out = append(out, Entry{Stack: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value > out[j].Value
		}
		return out[i].Stack < out[j].Stack
	})
	return out
}

// Total sums the values under prefix.
func (p *Profile) Total(prefix string) int64 {
	var t int64
	for _, e := range p.Entries(prefix) {
		t += e.Value
	}
	return t
}

// Len reports the number of distinct stacks.
func (p *Profile) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.samples)
}

// WriteFolded writes the profile in folded-stack format, sorted by stack
// name so the output is byte-deterministic. The result feeds
// `pprof -flame` (via stackcollapse input) or any flamegraph tool.
func (p *Profile) WriteFolded(w io.Writer) error {
	p.mu.Lock()
	keys := make([]string, 0, len(p.samples))
	for k := range p.samples {
		keys = append(keys, k)
	}
	vals := make(map[string]int64, len(p.samples))
	for k, v := range p.samples {
		vals[k] = v
	}
	p.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, vals[k]); err != nil {
			return err
		}
	}
	return nil
}

// RenderTop writes the n largest stacks under prefix as a table with each
// stack's share of the prefix total. Writes nothing when the prefix has
// no samples (an experiment run without profiling enabled).
func (p *Profile) RenderTop(w io.Writer, prefix string, n int) {
	entries := p.Entries(prefix)
	if len(entries) == 0 {
		return
	}
	var total int64
	for _, e := range entries {
		total += e.Value
	}
	if n > 0 && len(entries) > n {
		entries = entries[:n]
	}
	fmt.Fprintf(w, "virtual-time profile (%s): %d ns total\n", prefix, total)
	for _, e := range entries {
		stack := e.Stack
		if prefix != "" {
			stack = strings.TrimPrefix(stack, prefix+";")
		}
		fmt.Fprintf(w, "  %6.2f%%  %-40s %d ns\n",
			100*float64(e.Value)/float64(total), stack, e.Value)
	}
}

// Scope attributes samples under a fixed frame prefix. The zero Scope
// (nil receiver included) drops everything, so call sites need no guard.
type Scope struct {
	p      *Profile
	prefix string
}

// Add records ns of virtual time under frames, prefixed by the scope's
// frames. Nil scopes and non-positive values are no-ops.
func (s *Scope) Add(ns int64, frames ...string) {
	if s == nil || s.p == nil {
		return
	}
	stack := strings.Join(frames, ";")
	if s.prefix != "" {
		if stack == "" {
			stack = s.prefix
		} else {
			stack = s.prefix + ";" + stack
		}
	}
	s.p.add(stack, ns)
}
