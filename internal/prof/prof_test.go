package prof

import (
	"bytes"
	"strings"
	"testing"
)

func TestProfileAddAndEntries(t *testing.T) {
	p := New()
	s := p.Scope("XBW")
	s.Add(100, "host0", "cpu", "compute")
	s.Add(50, "host0", "cpu", "compute")
	s.Add(300, "host0", "nic", "dma")
	s.Add(0, "host0", "nic", "ignored")
	s.Add(-5, "host0", "nic", "ignored")

	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (zero/negative dropped)", p.Len())
	}
	es := p.Entries("XBW")
	if len(es) != 2 {
		t.Fatalf("Entries = %v", es)
	}
	if es[0].Stack != "XBW;host0;nic;dma" || es[0].Value != 300 {
		t.Errorf("top entry = %+v, want nic dma 300", es[0])
	}
	if es[1].Value != 150 {
		t.Errorf("cpu compute = %d, want accumulated 150", es[1].Value)
	}
	if got := p.Total("XBW"); got != 450 {
		t.Errorf("Total = %d, want 450", got)
	}
	if got := p.Entries("XB"); len(got) != 0 {
		t.Errorf("prefix must match whole frames, got %v", got)
	}
}

func TestNilScopeIsNoop(t *testing.T) {
	var s *Scope
	s.Add(100, "a") // must not panic
	s = &Scope{}
	s.Add(100, "b") // scope without profile: also a no-op
}

func TestWriteFoldedDeterministic(t *testing.T) {
	build := func() *Profile {
		p := New()
		p.Scope("E1").Add(10, "b")
		p.Scope("E1").Add(20, "a")
		p.Scope("E2").Add(30, "c", "d")
		return p
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteFolded(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteFolded(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("two builds render differently")
	}
	want := "E1;a 20\nE1;b 10\nE2;c;d 30\n"
	if b1.String() != want {
		t.Errorf("folded output:\n%q\nwant:\n%q", b1.String(), want)
	}
}

func TestRenderTop(t *testing.T) {
	p := New()
	s := p.Scope("XLAT")
	s.Add(750, "host0", "nic", "dma")
	s.Add(250, "host0", "cpu", "spin")

	var buf bytes.Buffer
	p.RenderTop(&buf, "XLAT", 1)
	out := buf.String()
	if !strings.Contains(out, "1000 ns total") {
		t.Errorf("missing total: %q", out)
	}
	if !strings.Contains(out, "75.00%") || !strings.Contains(out, "host0;nic;dma") {
		t.Errorf("missing top entry: %q", out)
	}
	if strings.Contains(out, "cpu;spin") {
		t.Errorf("n=1 must truncate: %q", out)
	}

	buf.Reset()
	p.RenderTop(&buf, "NOPE", 5)
	if buf.Len() != 0 {
		t.Errorf("empty prefix must write nothing, got %q", buf.String())
	}
}
