package core

import (
	"fmt"

	"vibe/internal/bench"
)

// LatencySweep runs the ping-pong latency test over the size ladder and
// returns the latency curve (us) and the client CPU-utilization curve
// (percent), the paper's LAT*/CPU* pairs.
func LatencySweep(cfg Config, sizes []int, o XferOpts) (lat, cpuU *bench.Series, err error) {
	name := seriesName(cfg, o)
	lat = bench.NewSeries(name, "message size (bytes)", "latency (us)")
	cpuU = bench.NewSeries(name, "message size (bytes)", "CPU utilization (%)")
	for _, size := range sizes {
		r, err := roundTrip(cfg, size, size, false, o)
		if err != nil {
			return lat, cpuU, fmt.Errorf("latency %s size %d: %w", name, size, err)
		}
		lat.Add(float64(size), r.LatencyUs)
		cpuU.Add(float64(size), r.CPUUtil*100)
	}
	return lat, cpuU, nil
}

// BandwidthSweep runs the streaming test over the size ladder and returns
// the bandwidth curve (MB/s) and sender CPU utilization (percent), the
// paper's BW* family.
func BandwidthSweep(cfg Config, sizes []int, o XferOpts) (bw, cpuU *bench.Series, err error) {
	name := seriesName(cfg, o)
	bw = bench.NewSeries(name, "message size (bytes)", "bandwidth (MB/s)")
	cpuU = bench.NewSeries(name, "message size (bytes)", "CPU utilization (%)")
	for _, size := range sizes {
		r, err := bandwidth(cfg, size, o)
		if err != nil {
			return bw, cpuU, fmt.Errorf("bandwidth %s size %d: %w", name, size, err)
		}
		bw.Add(float64(size), r.MBps)
		cpuU.Add(float64(size), r.CPUUtil*100)
	}
	return bw, cpuU, nil
}

// Latency measures a single latency point.
func Latency(cfg Config, size int, o XferOpts) (XferResult, error) {
	return roundTrip(cfg, size, size, false, o)
}

// Bandwidth measures a single bandwidth point.
func Bandwidth(cfg Config, size int, o XferOpts) (XferResult, error) {
	return bandwidth(cfg, size, o)
}

// ReuseSweep is the §3.2.2 address-translation benchmark (Figure 5): one
// latency (or bandwidth) curve per buffer-reuse percentage. 100% is
// LATbase; 0% is LATxlat.
func ReuseSweep(cfg Config, sizes []int, reusePcts []int, bandwidthMode bool) (*bench.Group, error) {
	title := fmt.Sprintf("%s buffer reuse: latency", cfg.Model.Name)
	if bandwidthMode {
		title = fmt.Sprintf("%s buffer reuse: bandwidth", cfg.Model.Name)
	}
	g := bench.NewGroup(title)
	for _, pct := range reusePcts {
		o := XferOpts{VaryBuffers: true, ReusePct: pct}
		var s *bench.Series
		var err error
		if bandwidthMode {
			s, _, err = BandwidthSweep(cfg, sizes, o)
		} else {
			s, _, err = LatencySweep(cfg, sizes, o)
		}
		if err != nil {
			return g, err
		}
		s.Name = fmt.Sprintf("%d%% reuse", pct)
		g.Add(s)
	}
	return g, nil
}

// MultiViSweep is the §3.2.4 benchmark (Figure 6): one curve per number
// of open VIs.
func MultiViSweep(cfg Config, sizes []int, viCounts []int, bandwidthMode bool) (*bench.Group, error) {
	title := fmt.Sprintf("%s multiple VIs: latency", cfg.Model.Name)
	if bandwidthMode {
		title = fmt.Sprintf("%s multiple VIs: bandwidth", cfg.Model.Name)
	}
	g := bench.NewGroup(title)
	for _, n := range viCounts {
		o := XferOpts{ActiveVIs: n}
		var s *bench.Series
		var err error
		if bandwidthMode {
			s, _, err = BandwidthSweep(cfg, sizes, o)
		} else {
			s, _, err = LatencySweep(cfg, sizes, o)
		}
		if err != nil {
			return g, err
		}
		s.Name = fmt.Sprintf("%d VIs", n)
		g.Add(s)
	}
	return g, nil
}

// CQOverhead is the §3.2.3 benchmark: latency with receive completions
// checked through a completion queue, minus base latency, per message
// size. The paper reports this as negligible for M-VIA and cLAN and
// 2-5 us for BVIA.
func CQOverhead(cfg Config, sizes []int) (base, withCQ, delta *bench.Series, err error) {
	base, _, err = LatencySweep(cfg, sizes, XferOpts{})
	if err != nil {
		return
	}
	withCQ, _, err = LatencySweep(cfg, sizes, XferOpts{RecvViaCQ: true})
	if err != nil {
		return
	}
	delta = bench.NewSeries(cfg.Model.Name+" CQ overhead", "message size (bytes)", "overhead (us)")
	for i, p := range base.Points {
		delta.Add(p.X, withCQ.Points[i].Y-p.Y)
	}
	return
}

// PipelineSweep is the sender-pipeline-length benchmark of §3.2.5
// (BWpipe): bandwidth at a fixed message size as a function of the number
// of outstanding sends the sender allows.
func PipelineSweep(cfg Config, size int, windows []int) (*bench.Series, error) {
	s := bench.NewSeries(cfg.Model.Name, "pipeline length (outstanding sends)", "bandwidth (MB/s)")
	for _, w := range windows {
		r, err := bandwidth(cfg, size, XferOpts{Window: w})
		if err != nil {
			return s, err
		}
		s.Add(float64(w), r.MBps)
	}
	return s, nil
}

// MTULadder returns sizes straddling the provider's wire MTU and its
// multiples, for the maximum-transfer-size benchmark of §3.2.5 (LATmtu).
func MTULadder(mtu int) []int {
	return []int{
		mtu / 2, mtu - 4, mtu, mtu + 4,
		2*mtu - 4, 2 * mtu, 2*mtu + 4,
		4 * mtu,
	}
}

// ReliabilitySweep is the §3.2.5 reliability benchmark (LATrel/BWrel):
// one curve per reliability level the provider supports.
func ReliabilitySweep(cfg Config, sizes []int, bandwidthMode bool) (*bench.Group, error) {
	title := fmt.Sprintf("%s reliability levels: latency", cfg.Model.Name)
	if bandwidthMode {
		title = fmt.Sprintf("%s reliability levels: bandwidth", cfg.Model.Name)
	}
	g := bench.NewGroup(title)
	for lv := uint8(0); lv < 3; lv++ {
		if !cfg.Model.Supports(lv) {
			continue
		}
		o := XferOpts{Reliability: reliabilityLevel(lv)}
		var s *bench.Series
		var err error
		if bandwidthMode {
			s, _, err = BandwidthSweep(cfg, sizes, o)
		} else {
			s, _, err = LatencySweep(cfg, sizes, o)
		}
		if err != nil {
			return g, err
		}
		s.Name = reliabilityLevel(lv).String()
		g.Add(s)
	}
	return g, nil
}

func seriesName(cfg Config, o XferOpts) string {
	name := cfg.Model.Name
	if o.Mode == Blocking {
		name += " blocking"
	}
	return name
}
