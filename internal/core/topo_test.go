package core

import (
	"testing"

	"vibe/internal/metrics"
	"vibe/internal/provider"
)

// TestFatTreeIncast128 is the routed-fabric acceptance run: a 128-node
// fat-tree incast with finite switch buffers must complete, with credit
// backpressure (not queue growth) absorbing the overload, and with per-hop
// link stats and message spans populated on the routed paths.
func TestFatTreeIncast128(t *testing.T) {
	m := provider.CLAN()
	m.Network.Topology = "fattree"
	m.Network.TopologyDegree = 8 // 16 leaves + 8 spines for 128 hosts
	m.Network.SwitchBufPkts = 8

	cfg := DefaultConfig(m)
	col := metrics.NewCollector()
	cfg.Instr = &Instr{Metrics: col, SpanSample: 1}

	const senders, msgs, size = 127, 4, 1024
	r, err := IncastRun(cfg, senders, msgs, size)
	if err != nil {
		t.Fatalf("incast failed: %v", err)
	}
	if r.MBps <= 0 || r.ElapsedUs <= 0 {
		t.Fatalf("no goodput measured: %+v", r)
	}
	// Finite buffers must have exerted backpressure without ever exceeding
	// their bound: congestion became stalls, not unbounded queues.
	if r.CreditStalls == 0 {
		t.Fatal("127-to-1 incast through 8-packet buffers produced no credit stalls")
	}
	if r.MaxQueue > m.Network.SwitchBufPkts {
		t.Fatalf("max queue %d exceeds buffer bound %d", r.MaxQueue, m.Network.SwitchBufPkts)
	}

	snap := col.Snapshot()
	get := func(k string) float64 {
		v, ok := snap.Get(k)
		if !ok {
			t.Fatalf("metric %q missing", k)
		}
		return v
	}
	// Conservation on the routed path: reliable delivery means nothing is
	// lost, so per-port totals must balance exactly.
	if d, s := get("fabric.delivered"), get("fabric.sent"); d != s {
		t.Fatalf("delivered %v != sent %v (nothing should drop)", d, s)
	}
	if get("fabric.credit_stalls") == 0 {
		t.Fatal("fabric.credit_stalls metric not populated")
	}
	// The spine all flows share (spine 0 serves host 0 under D-mod-k)
	// forwarded traffic: per-switch stats are live on routed paths.
	if get("switch16.tx_packets") == 0 {
		t.Fatal("hot spine forwarded no packets")
	}
	// Per-link stats on a routed path: the receiver's link saw the data.
	if get("link0.rx_bytes") < float64(senders*msgs*size) {
		t.Fatalf("receiver rx_bytes %v < payload %d", get("link0.rx_bytes"), senders*msgs*size)
	}
	// Spans sampled at 1-in-1 must have completed on routed paths.
	if get("span.completed") == 0 {
		t.Fatal("no spans completed")
	}
}

// TestTopologyExperimentsQuick smoke-runs the three routed-topology
// registry experiments at quick scale and checks each produced plottable,
// congestion-bearing output.
func TestTopologyExperimentsQuick(t *testing.T) {
	sc := DefaultScenario(true)
	for _, id := range []string{"XINCAST", "XALLTOALL", "XHOTSPOT"} {
		exp, err := ExperimentByID(id)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := exp.Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rep.Groups) == 0 || len(rep.Groups[0].Series) == 0 {
			t.Fatalf("%s: no series", id)
		}
		for _, p := range rep.Groups[0].Series[0].Points {
			if p.Y <= 0 {
				t.Errorf("%s: non-positive goodput at x=%v", id, p.X)
			}
		}
	}
}

// TestTopologyOverrideWins pins the scenario-over-default precedence: a
// NetTopology override redirects the topology experiments' fabric.
func TestTopologyOverrideWins(t *testing.T) {
	spec := ScenarioSpec{}
	spec.Set = map[string]string{"NetTopology": "torus3d", "NetTopoDegree": "2", "NetSwitchBufPkts": "4"}
	sc, err := NewScenario(spec, true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := topoConfig(sc, "fattree", 4, 8)
	if cfg.Model.Network.Topology != "torus3d" || cfg.Model.Network.TopologyDegree != 2 || cfg.Model.Network.SwitchBufPkts != 4 {
		t.Fatalf("override lost: %+v", cfg.Model.Network)
	}
}
