package core

import (
	"fmt"

	"vibe/internal/sim"
	"vibe/internal/via"
)

// bandwidth implements the suite's streaming measurement: the sender
// pushes cfg.BWMessages back-to-back messages of the given size and stops
// its timer when the receiver's final acknowledgment message arrives, per
// §3.2.1. XferOpts vary the same components as the latency tests; Window
// additionally bounds the sender pipeline (BWpipe).
func bandwidth(cfg Config, size int, o XferOpts) (XferResult, error) {
	o = o.normalized()
	sys := via.NewSystemProc(cfg.Model, 2, cfg.Seed, cfg.ProcModel)
	defer sys.Close()
	cfg.instrument(sys)
	res := XferResult{Size: size}
	warm := cfg.Warmup
	total := cfg.BWMessages

	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
		sys.Eng.Stop()
	}

	var x rdmaXchg
	var receiverReady bool

	sys.Go(0, "bw-sender", func(ctx *via.Ctx) {
		// The sender's receive pool holds only the tiny final ack.
		ep, err := setup(ctx, cfg, o, size, 4, false, true, 1)
		if err != nil {
			fail(err)
			return
		}
		if err := ep.postRecv(ep.recv[0], 4); err != nil {
			fail(err)
			return
		}
		x.cli = nil // sender's pool is never an RDMA target here
		for !receiverReady {
			ctx.Sleep(10 * sim.Microsecond)
		}

		sendOne := func(i int, drain bool) error {
			bi := o.pickBuf(i)
			if err := ep.postSend(ep.send[bi], size, bi, x.srv); err != nil {
				return err
			}
			if !drain {
				return checkOK(ep.waitSend())
			}
			return nil
		}
		// Warmup primes NIC caches outside the timed window.
		for i := 0; i < warm; i++ {
			if err := sendOne(i, false); err != nil {
				fail(err)
				return
			}
		}

		t0 := ctx.Now()
		meter := ctx.Host.CPU.StartMeter()
		outstanding := 0
		for i := 0; i < total; i++ {
			if err := sendOne(warm+i, true); err != nil {
				fail(err)
				return
			}
			outstanding++
			// Opportunistically retire completed sends.
			for {
				d, ok := ep.vi.SendDone(ctx)
				if !ok {
					break
				}
				if d.Status != via.StatusSuccess {
					fail(fmt.Errorf("vibe bw: send completed with %v", d.Status))
					return
				}
				outstanding--
			}
			for o.Window > 0 && outstanding >= o.Window {
				if err := checkOK(ep.waitSend()); err != nil {
					fail(err)
					return
				}
				outstanding--
			}
		}
		// The clock stops when the receiver's ack lands (the paper's
		// protocol), which covers all in-flight messages.
		if err := checkOK(ep.waitRecv()); err != nil {
			fail(fmt.Errorf("vibe bw: final ack: %w", err))
			return
		}
		elapsed := ctx.Now().Sub(t0)
		if elapsed > 0 {
			res.MBps = float64(size) * float64(total) / elapsed.Seconds() / 1e6
		}
		res.CPUUtil = meter.Utilization()
	})

	sys.Go(1, "bw-receiver", func(ctx *via.Ctx) {
		ep, err := setup(ctx, cfg, o, 4, size, false, false, 0)
		if err != nil {
			fail(err)
			return
		}
		// Pre-post every receive, as the paper's test does.
		for i := 0; i < warm+total; i++ {
			if err := ep.postRecv(ep.recv[o.pickBuf(i)], size); err != nil {
				fail(err)
				return
			}
		}
		if o.RDMA {
			x.srv = addressSegments(ep.recv)
		}
		receiverReady = true
		for i := 0; i < warm+total; i++ {
			if err := checkOK(ep.waitRecv()); err != nil {
				fail(fmt.Errorf("vibe bw: recv %d: %w", i, err))
				return
			}
		}
		// Final acknowledgment message back to the sender.
		if err := ep.postSend(ep.send[0], 4, 0, nil); err != nil {
			fail(err)
			return
		}
		if err := checkOK(ep.waitSend()); err != nil {
			fail(err)
		}
	})

	if err := sys.Run(); err != nil {
		return res, err
	}
	return res, runErr
}
