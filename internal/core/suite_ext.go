package core

import (
	"fmt"

	"vibe/internal/bench"
	"vibe/internal/provider"
	"vibe/internal/sim"
	"vibe/internal/table"
)

// The §3.2.5 benchmarks: the paper defers their results to the companion
// technical report; the suite implements them in full.

func expXSEG() *Experiment {
	return &Experiment{
		ID:    "XSEG",
		Title: "3.2.5: impact of multiple data segments (LATseg)",
		PaperClaim: "Gather/scatter across more data segments adds per-segment " +
			"descriptor-processing cost on every provider.",
		Run: func(sc *Scenario) (*Report, error) {
			g := bench.NewGroup("latency vs data segments (4KB messages)")
			for _, m := range provider.All() {
				cfg := sc.Config(m)
				segs := []int{1, 2, 4}
				if cfg.Model.MaxSegments >= 8 && !sc.Quick {
					segs = append(segs, 8)
				}
				s := bench.NewSeries(m.Name, "data segments", "latency (us)")
				for _, k := range segs {
					r, err := Latency(cfg, 4096, XferOpts{Segments: k})
					if err != nil {
						return nil, err
					}
					s.Add(float64(k), r.LatencyUs)
				}
				g.Add(s)
			}
			return &Report{Groups: []*bench.Group{g}}, nil
		},
	}
}

func expXASY() *Experiment {
	return &Experiment{
		ID:    "XASY",
		Title: "3.2.5: impact of asynchronous message handling (LATasy)",
		PaperClaim: "Handling receives through an asynchronous completion " +
			"handler adds the provider's dispatch cost to every message " +
			"relative to synchronous polling.",
		Run: func(sc *Scenario) (*Report, error) {
			t := table.New("latency, polling vs notify handler (us)",
				"Provider", "Size", "Polling", "Notify", "Delta")
			for _, m := range provider.All() {
				cfg := sc.Config(m)
				for _, size := range []int{4, 4096} {
					base, err := Latency(cfg, size, XferOpts{})
					if err != nil {
						return nil, err
					}
					asy, err := Latency(cfg, size, XferOpts{Notify: true})
					if err != nil {
						return nil, err
					}
					t.AddRow(m.Name, size, base.LatencyUs, asy.LatencyUs, asy.LatencyUs-base.LatencyUs)
				}
			}
			return &Report{Tables: []*table.Table{t}}, nil
		},
	}
}

func expXRDMA() *Experiment {
	return &Experiment{
		ID:    "XRDMA",
		Title: "3.2.5: impact of RDMA operations (LATrdma/BWrdma)",
		PaperClaim: "RDMA write avoids receive-descriptor processing at the " +
			"target, shaving latency where the provider offloads it.",
		Run: func(sc *Scenario) (*Report, error) {
			lat := bench.NewGroup("RDMA-write latency vs send/recv latency")
			for _, m := range provider.All() {
				cfg := sc.Config(m)
				sr, _, err := LatencySweep(cfg, ladder(sc.Quick), XferOpts{})
				if err != nil {
					return nil, err
				}
				sr.Name = m.Name + " send/recv"
				rd, _, err := LatencySweep(cfg, ladder(sc.Quick), XferOpts{RDMA: true})
				if err != nil {
					return nil, err
				}
				rd.Name = m.Name + " rdma-write"
				lat.Add(sr, rd)
			}
			return &Report{Groups: []*bench.Group{lat}}, nil
		},
	}
}

func expXPIPE() *Experiment {
	return &Experiment{
		ID:    "XPIPE",
		Title: "3.2.5: impact of sender pipeline length (BWpipe)",
		PaperClaim: "Bandwidth rises with the number of outstanding sends until " +
			"the wire (or the host software path) saturates.",
		Run: func(sc *Scenario) (*Report, error) {
			g := bench.NewGroup("bandwidth vs pipeline length (4KB messages)")
			windows := []int{1, 2, 4, 8, 16, 32}
			if sc.Quick {
				windows = []int{1, 4, 16}
			}
			for _, m := range provider.All() {
				cfg := sc.Config(m)
				s, err := PipelineSweep(cfg, 4096, windows)
				if err != nil {
					return nil, err
				}
				g.Add(s)
			}
			return &Report{Groups: []*bench.Group{g}}, nil
		},
	}
}

func expXMTU() *Experiment {
	return &Experiment{
		ID:    "XMTU",
		Title: "3.2.5: impact of maximum transfer size (LATmtu)",
		PaperClaim: "Latency steps up at wire-MTU boundaries as messages start " +
			"to fragment; the step size reflects per-fragment costs.",
		Run: func(sc *Scenario) (*Report, error) {
			g := bench.NewGroup("latency around wire-MTU boundaries")
			for _, m := range provider.All() {
				cfg := sc.Config(m)
				s, _, err := LatencySweep(cfg, MTULadder(cfg.Model.WireMTU), XferOpts{})
				if err != nil {
					return nil, err
				}
				s.Name = fmt.Sprintf("%s (MTU %dB)", m.Name, cfg.Model.WireMTU)
				g.Add(s)
			}
			return &Report{Groups: []*bench.Group{g}}, nil
		},
	}
}

func expXREL() *Experiment {
	return &Experiment{
		ID:    "XREL",
		Title: "3.2.5: impact of reliability levels (LATrel/BWrel)",
		PaperClaim: "Reliable modes pay ack processing; Reliable Reception " +
			"completes sends only after remote memory placement, costing the " +
			"most.",
		Run: func(sc *Scenario) (*Report, error) {
			var groups []*bench.Group
			for _, m := range provider.All() {
				cfg := sc.Config(m)
				g, err := ReliabilitySweep(cfg, ladder(sc.Quick), false)
				if err != nil {
					return nil, err
				}
				groups = append(groups, g)
			}
			return &Report{Groups: groups, Notes: []string{
				"Send-completion semantics differ per level; one-way message latency " +
					"is dominated by the data path, so the curves sit close while " +
					"send-completion times diverge (see BenchmarkReliability).",
			}}, nil
		},
	}
}

// --- Ablations (DESIGN.md) ---

func expATLB() *Experiment {
	return &Experiment{
		ID:    "ATLB",
		Title: "Ablation: NIC translation-cache capacity (BVIA, 0% reuse)",
		PaperClaim: "(no paper counterpart) How large must the NIC translation " +
			"cache be before the Figure 5 reuse sensitivity disappears?",
		Run: func(sc *Scenario) (*Report, error) {
			t := table.New("0%-reuse latency @28KB vs TLB capacity (us)",
				"TLB entries", "latency", "vs 100% reuse")
			base := sc.Config(provider.BVIA())
			ref, err := Latency(base, 28672, XferOpts{})
			if err != nil {
				return nil, err
			}
			caps := []int{8, 32, 128, 1024}
			if sc.Quick {
				caps = []int{32, 1024}
			}
			for _, c := range caps {
				m := provider.BVIA()
				m.TLBCapacity = c
				cfg := sc.Config(m)
				// Warm every pool buffer before timing so first-touch
				// misses do not pollute the steady-state comparison.
				cfg.Warmup = 20
				r, err := Latency(cfg, 28672, XferOpts{VaryBuffers: true, ReusePct: 0, PoolBuffers: 16})
				if err != nil {
					return nil, err
				}
				t.AddRow(c, r.LatencyUs, r.LatencyUs-ref.LatencyUs)
			}
			return &Report{Tables: []*table.Table{t}, Notes: []string{
				"The test cycles a pool of 16 seven-page send buffers and 16 receive " +
					"buffers per side; once the cache holds the working set the penalty " +
					"collapses to zero.",
			}}, nil
		},
	}
}

func expAXLAT() *Experiment {
	return &Experiment{
		ID:    "AXLAT",
		Title: "Ablation: the four address-translation designs of [5]",
		PaperClaim: "(design comparison the paper cites) host-vs-NIC " +
			"translation x host-vs-NIC tables, on an otherwise identical NIC.",
		Run: func(sc *Scenario) (*Report, error) {
			t := table.New("0%-reuse latency @28KB per translation design (us)",
				"Design", "latency")
			type design struct {
				name  string
				tweak func(*provider.Model)
			}
			designs := []design{
				{"host translation (tables in host memory)", func(m *provider.Model) {
					m.TranslationAt = provider.TranslateAtHost
					m.HostXlatePerPage = us2(0.7)
				}},
				{"NIC translation, tables in host memory (BVIA)", func(m *provider.Model) {}},
				{"NIC translation, tables in NIC memory (cLAN-style)", func(m *provider.Model) {
					m.TablesAt = provider.TablesInNICMemory
					m.XlateNICTable = us2(0.3)
				}},
				{"NIC translation, large on-NIC cache", func(m *provider.Model) {
					m.TLBCapacity = 4096
				}},
			}
			for _, d := range designs {
				m := provider.BVIA()
				d.tweak(m)
				cfg := sc.Config(m)
				r, err := Latency(cfg, 28672, XferOpts{VaryBuffers: true, ReusePct: 0})
				if err != nil {
					return nil, err
				}
				t.AddRow(d.name, r.LatencyUs)
			}
			return &Report{Tables: []*table.Table{t}}, nil
		},
	}
}

func expADOOR() *Experiment {
	return &Experiment{
		ID:    "ADOOR",
		Title: "Ablation: doorbell implementation (M-VIA)",
		PaperClaim: "(no paper counterpart) How much of M-VIA's small-message " +
			"latency is the system-call doorbell?",
		Run: func(sc *Scenario) (*Report, error) {
			t := table.New("4B latency vs doorbell cost (us)", "Doorbell", "latency")
			for _, d := range []struct {
				name string
				us   float64
			}{{"syscall trap (3.5us, M-VIA)", 3.5}, {"kernel fast path (1.0us)", 1.0}, {"memory-mapped (0.2us)", 0.2}} {
				m := provider.MVIA()
				m.DoorbellCost = us2(d.us)
				r, err := Latency(sc.Config(m), 4, XferOpts{})
				if err != nil {
					return nil, err
				}
				t.AddRow(d.name, r.LatencyUs)
			}
			return &Report{Tables: []*table.Table{t}}, nil
		},
	}
}

func expAPOLL() *Experiment {
	return &Experiment{
		ID:    "APOLL",
		Title: "Ablation: firmware poll-sweep cost per VI (BVIA)",
		PaperClaim: "(no paper counterpart) Sensitivity of the Figure 6 slope " +
			"to the per-VI polling cost.",
		Run: func(sc *Scenario) (*Report, error) {
			t := table.New("4B latency with 16 open VIs vs poll cost (us)",
				"Poll cost per VI", "latency")
			for _, c := range []float64{0, 1, 3, 6} {
				m := provider.BVIA()
				m.PollPerVI = us2(c)
				r, err := Latency(sc.Config(m), 4, XferOpts{ActiveVIs: 16})
				if err != nil {
					return nil, err
				}
				t.AddRow(fmt.Sprintf("%.0fus", c), r.LatencyUs)
			}
			return &Report{Tables: []*table.Table{t}}, nil
		},
	}
}

// us2 builds microsecond durations (suite-local shorthand).
func us2(v float64) sim.Duration { return sim.Microseconds(v) }
