package core

import (
	"fmt"

	"vibe/internal/bench"
	"vibe/internal/provider"
	"vibe/internal/via"
)

// LossSweep measures reliable-delivery bandwidth as the fabric drops an
// increasing fraction of packets — the failure-injection companion to the
// reliability benchmark: each lost fragment costs a retransmission
// timeout, so goodput collapses fast even at low loss rates.
func LossSweep(cfg Config, size int, rates []float64) (*bench.Series, error) {
	s := bench.NewSeries(cfg.Model.Name, "packet loss rate (%)", "bandwidth (MB/s)")
	for _, rate := range rates {
		m := cfg.Model.Clone()
		m.Network.DropRate = rate
		c := cfg
		c.Model = m
		r, err := bandwidth(c, size, XferOpts{Reliability: via.ReliableDelivery})
		if err != nil {
			return s, fmt.Errorf("loss sweep %s rate %.3f: %w", cfg.Model.Name, rate, err)
		}
		s.Add(rate*100, r.MBps)
	}
	return s, nil
}

func expXLOSS() *Experiment {
	return &Experiment{
		ID:    "XLOSS",
		Title: "Extension: reliable-delivery goodput under packet loss",
		PaperClaim: "(failure-injection extension of the §3.2.5 reliability " +
			"benchmark) Each lost fragment stalls the go-back-N window for a " +
			"retransmission timeout and forces duplicate traffic, so goodput " +
			"degrades steeply with loss.",
		Run: func(sc *Scenario) (*Report, error) {
			rates := []float64{0, 0.02, 0.05, 0.1}
			if sc.Quick {
				rates = []float64{0, 0.01}
			}
			g := bench.NewGroup("reliable 4KB goodput vs loss rate")
			for _, m := range provider.All() {
				cfg := sc.Config(m)
				// The bandwidth formula carries a constant final-ack tail, so
				// MB/s depends on the message count. Pin the run shape (unless
				// the scenario overrides it) so quick and full modes agree
				// byte-for-byte at shared rates — the zero-loss point anchors
				// both curves, and quick mode stays comparable to full.
				if sc.Spec.Run.Warmup == 0 {
					cfg.Warmup = 5
				}
				if sc.Spec.Run.BWMessages == 0 {
					cfg.BWMessages = 40
				}
				s, err := LossSweep(cfg, 4096, rates)
				if err != nil {
					return nil, err
				}
				g.Add(s)
			}
			return &Report{Groups: []*bench.Group{g}, Notes: []string{
				"The pinned 40-message run gives each curve a handful of loss " +
					"coin flips, so a provider can get lucky at low rates " +
					"(single-fragment bvia/clan streams may see no drops at all); " +
					"by 10% every provider has lost fragments and goodput " +
					"collapses 3-5x, each loss stalling the go-back-N window for " +
					"a full retransmission timeout. M-VIA fragments 4KB across " +
					"its 1500B MTU, so it sees ~3x the coin flips and degrades " +
					"first.",
			}}, nil
		},
	}
}
