package core

import (
	"strconv"
	"testing"
)

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	wantIDs := []string{"T1", "F1", "F2", "F3", "F4", "F5", "F6", "F7", "TCQ",
		"XSEG", "XASY", "XRDMA", "XPIPE", "XMTU", "XREL", "XLOSS", "XFAULT",
		"XINCAST", "XALLTOALL", "XHOTSPOT", "XFAILOVER",
		"PMMP", "PMGP", "PMEAGER", "PMSOCK", "PMDSM", "EXTPROV",
		"ATLB", "AXLAT", "ADOOR", "APOLL", "BREAK"}
	if len(exps) != len(wantIDs) {
		t.Fatalf("registry has %d experiments, want %d", len(exps), len(wantIDs))
	}
	for i, id := range wantIDs {
		if exps[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, exps[i].ID, id)
		}
		if exps[i].Title == "" || exps[i].PaperClaim == "" || exps[i].Run == nil {
			t.Errorf("experiment %s incomplete", id)
		}
	}
	if _, err := ExperimentByID("T1"); err != nil {
		t.Error(err)
	}
	if _, err := ExperimentByID("NOPE"); err == nil {
		t.Error("unknown id accepted")
	}
}

// Each experiment must run to completion in quick mode and produce
// something (a table or a series group with points).
func TestEveryExperimentRunsQuick(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(DefaultScenario(true))
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(rep.Tables) == 0 && len(rep.Groups) == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
			for _, tb := range rep.Tables {
				if len(tb.Rows) == 0 {
					t.Errorf("%s: empty table %q", e.ID, tb.Title)
				}
			}
			for _, g := range rep.Groups {
				if len(g.Series) == 0 {
					t.Errorf("%s: empty group %q", e.ID, g.Title)
				}
				for _, s := range g.Series {
					if len(s.Points) == 0 {
						t.Errorf("%s: empty series %q in %q", e.ID, s.Name, g.Title)
					}
				}
			}
		})
	}
}

// The ablations must show their effects even in quick mode.
func TestAblationEffects(t *testing.T) {
	t.Run("ATLB", func(t *testing.T) {
		rep, err := ExperimentMust(t, "ATLB").Run(DefaultScenario(true))
		if err != nil {
			t.Fatal(err)
		}
		rows := rep.Tables[0].Rows
		first, last := rows[0], rows[len(rows)-1]
		if first[2] == last[2] {
			t.Errorf("TLB capacity had no effect: %v vs %v", first, last)
		}
	})
	t.Run("ADOOR", func(t *testing.T) {
		rep, err := ExperimentMust(t, "ADOOR").Run(DefaultScenario(true))
		if err != nil {
			t.Fatal(err)
		}
		rows := rep.Tables[0].Rows
		if cell(t, rows[0][1]) <= cell(t, rows[len(rows)-1][1]) {
			t.Errorf("cheaper doorbell should lower latency: %v", rows)
		}
	})
	t.Run("APOLL", func(t *testing.T) {
		rep, err := ExperimentMust(t, "APOLL").Run(DefaultScenario(true))
		if err != nil {
			t.Fatal(err)
		}
		rows := rep.Tables[0].Rows
		if cell(t, rows[0][1]) >= cell(t, rows[len(rows)-1][1]) {
			t.Errorf("higher poll cost should raise latency: %v", rows)
		}
	})
}

// cell parses a numeric table cell.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("non-numeric cell %q", s)
	}
	return v
}

// ExperimentMust fetches an experiment by id, failing the test otherwise.
func ExperimentMust(t *testing.T, id string) *Experiment {
	t.Helper()
	e, err := ExperimentByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
