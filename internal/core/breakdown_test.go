package core

import (
	"testing"

	"vibe/internal/provider"
)

func TestBreakdownMatchesMeasurement(t *testing.T) {
	// The analytic decomposition must track the measured latency closely
	// at the sizes where pipelining is simple (one fragment, or deep
	// pipelines), and within a loose bound everywhere.
	for _, m := range provider.All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			for _, tc := range []struct {
				size int
				tol  float64
			}{{4, 0.12}, {28672, 0.10}} {
				an, me, re, err := ValidateBreakdown(quickCfg(m), tc.size)
				if err != nil {
					t.Fatal(err)
				}
				if re > tc.tol {
					t.Errorf("size %d: analytic %.1f vs measured %.1f (%.0f%% > %.0f%%)",
						tc.size, an, me, re*100, tc.tol*100)
				}
			}
		})
	}
}

func TestBreakdownIdentifiesBottlenecks(t *testing.T) {
	// The paper's use case: the dominant component at 28KB must match
	// each provider's known bottleneck.
	dominant := func(m *provider.Model, size int) string {
		b := AnalyzeLatency(m, size)
		best, bestUs := "", -1.0
		for _, c := range b.components() {
			if c.Us > bestUs {
				best, bestUs = c.Name, c.Us
			}
		}
		return best
	}
	if got := dominant(provider.MVIA(), 28672); got != "host post (copies, doorbell)" {
		t.Errorf("mvia 28KB bottleneck = %q, want the kernel copies", got)
	}
	if got := dominant(provider.CLAN(), 28672); got != "wire (critical path)" {
		t.Errorf("clan 28KB bottleneck = %q, want the wire", got)
	}
	// BVIA's large-message budget is data movement (its DMA engines and
	// firmware pace the pipeline, not the Myrinet wire).
	if got := dominant(provider.BVIA(), 28672); got != "DMA (critical path)" {
		t.Errorf("bvia 28KB bottleneck = %q, want DMA", got)
	}
}

func TestBreakdownComponentsNonNegativeAndSum(t *testing.T) {
	for _, m := range provider.All() {
		for _, size := range []int{0, 4, 1500, 4096, 28672} {
			b := AnalyzeLatency(m, size)
			sum := 0.0
			for _, c := range b.components() {
				if c.Us < 0 {
					t.Errorf("%s size %d: component %q negative (%.2f)", m.Name, size, c.Name, c.Us)
				}
				sum += c.Us
			}
			if diff := sum - b.TotalUs; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%s size %d: components sum %.3f != total %.3f", m.Name, size, sum, b.TotalUs)
			}
		}
	}
}
