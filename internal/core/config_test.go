package core

import (
	"testing"
	"testing/quick"
)

func TestNormalizedDefaults(t *testing.T) {
	o := XferOpts{}.normalized()
	if o.ActiveVIs != 1 || o.Segments != 1 || o.ReusePct != 100 || o.PoolBuffers != 1 {
		t.Fatalf("base normalization wrong: %+v", o)
	}
	v := XferOpts{VaryBuffers: true}.normalized()
	if v.PoolBuffers != 64 {
		t.Fatalf("vary-buffers pool default = %d", v.PoolBuffers)
	}
	k := XferOpts{VaryBuffers: true, PoolBuffers: 8}.normalized()
	if k.PoolBuffers != 8 {
		t.Fatalf("explicit pool overridden: %d", k.PoolBuffers)
	}
}

func TestReusePatternExactFraction(t *testing.T) {
	// Over any window of 100 iterations, exactly ReusePct reuse the base
	// buffer (Bresenham spreading).
	for _, pct := range []int{0, 25, 50, 75, 100} {
		o := XferOpts{VaryBuffers: true, ReusePct: pct}.normalized()
		reused := 0
		for i := 0; i < 100; i++ {
			if o.reuseBase(i) {
				reused++
			}
		}
		if reused != pct {
			t.Errorf("ReusePct=%d: %d/100 iterations reused", pct, reused)
		}
	}
}

func TestReusePatternSpreadEvenly(t *testing.T) {
	// 50% reuse must alternate, not burst.
	o := XferOpts{VaryBuffers: true, ReusePct: 50}.normalized()
	run := 0
	for i := 0; i < 200; i++ {
		if o.reuseBase(i) {
			run++
			if run > 1 {
				t.Fatalf("50%% reuse produced a run of %d consecutive reuses at %d", run, i)
			}
		} else {
			run = 0
		}
	}
}

func TestPickBufProperties(t *testing.T) {
	f := func(pct8, pool8 uint8, i uint16) bool {
		o := XferOpts{
			VaryBuffers: true,
			ReusePct:    int(pct8) % 101,
			PoolBuffers: int(pool8%32) + 2,
		}.normalized()
		bi := o.pickBuf(int(i))
		if bi < 0 || bi >= o.PoolBuffers {
			return false
		}
		// Reused iterations always pick buffer 0; others never do.
		if o.reuseBase(int(i)) != (bi == 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBaseOptsAlwaysPickBufferZero(t *testing.T) {
	o := XferOpts{}.normalized()
	for i := 0; i < 50; i++ {
		if o.pickBuf(i) != 0 {
			t.Fatalf("base config picked pool buffer %d", o.pickBuf(i))
		}
	}
}

func TestCompletionModeString(t *testing.T) {
	if Polling.String() != "polling" || Blocking.String() != "blocking" {
		t.Fatal("mode names")
	}
}
