// Package core implements VIBe, the paper's contribution: a
// micro-benchmark suite for evaluating VIA implementations. The suite has
// the paper's three categories — non-data-transfer benchmarks (VI,
// connection, memory-registration and CQ costs), data-transfer benchmarks
// (latency, bandwidth and CPU utilization under systematically varied VIA
// components), and programming-model benchmarks (client-server
// transactions) — plus the §3.2.5 extensions (segments, asynchronous
// handling, RDMA, pipeline length, MTU, reliability).
//
// Every benchmark runs against a simulated VIA provider (internal/via +
// internal/provider) and reports results in the paper's units:
// microseconds, MB/s, CPU utilization fraction, transactions/second.
package core

import (
	"vibe/internal/fault"
	"vibe/internal/provider"
	"vibe/internal/sim"
	"vibe/internal/via"
)

// CompletionMode selects how benchmarks check for completed descriptors.
type CompletionMode int

const (
	// Polling spins on the work queue (VipSendDone/VipRecvDone loops):
	// lowest latency, 100% CPU.
	Polling CompletionMode = iota
	// Blocking sleeps in VipSendWait/VipRecvWait: the CPU idles, waking
	// costs an interrupt.
	Blocking
)

func (m CompletionMode) String() string {
	if m == Blocking {
		return "blocking"
	}
	return "polling"
}

// Config carries the run parameters shared by all benchmarks.
type Config struct {
	Model *provider.Model
	Seed  int64

	// Iters is the number of timed round trips per latency point; Warmup
	// round trips run first and are excluded (they prime NIC caches).
	Iters  int
	Warmup int

	// BWMessages is the number of back-to-back messages per bandwidth
	// point.
	BWMessages int

	// NonDataReps is how many times each non-data-transfer operation is
	// repeated and averaged.
	NonDataReps int

	// Timeout bounds every blocking call in the harness.
	Timeout sim.Duration

	// ProcModel selects how the simulated NIC engines execute (event-loop
	// actors by default, goroutine processes for equivalence testing).
	// Observationally invisible: results are byte-identical either way.
	ProcModel via.ProcModel

	// Instr, when non-nil, attaches instrumentation (metrics collection,
	// tracing) to every system the experiments build. See Instr.
	Instr *Instr

	// Fault, when non-nil, is the fault plan installed into every system
	// the experiments build. Each system compiles its own injector, so
	// plans replay identically across experiments and runs. Empty plans
	// are zero-cost: results stay byte-identical to a plan-free run.
	Fault *fault.Plan
}

// DefaultConfig returns the configuration used for the paper
// reproduction.
func DefaultConfig(m *provider.Model) Config {
	return Config{
		Model:       m,
		Seed:        1,
		Iters:       60,
		Warmup:      10,
		BWMessages:  150,
		NonDataReps: 8,
		Timeout:     30 * sim.Second,
	}
}

// XferOpts vary exactly one (or more) VIA components relative to the base
// configuration of §3.2.1: 100% buffer reuse, one data segment, no
// completion queue, one VI, no notify mechanism, unreliable delivery,
// send/receive transfers, polling.
type XferOpts struct {
	Mode CompletionMode

	// RecvViaCQ checks receive completions through a completion queue
	// (LATcq/BWcq).
	RecvViaCQ bool

	// VaryBuffers enables the buffer-reuse experiments (LATxlat): each
	// round trip uses the base buffer with probability ReusePct/100 and a
	// fresh pool buffer otherwise. PoolBuffers sizes the pre-registered
	// pool (default 64).
	VaryBuffers bool
	ReusePct    int
	PoolBuffers int

	// ActiveVIs opens this many VI pairs (default 1); traffic flows on
	// the first (LATnvi).
	ActiveVIs int

	// Segments splits each message across this many data segments
	// (LATseg; default 1).
	Segments int

	// Reliability selects the VIA reliability level (LATrel; default
	// Unreliable).
	Reliability via.ReliabilityLevel

	// RDMA transfers data with RDMA writes carrying immediate data
	// instead of send/receive (LATrdma).
	RDMA bool

	// Notify makes the server handle receives through an asynchronous
	// completion handler instead of waiting (LATasy).
	Notify bool

	// Window bounds outstanding sends in bandwidth tests (BWpipe);
	// 0 means unbounded.
	Window int
}

func (o XferOpts) normalized() XferOpts {
	if o.ActiveVIs < 1 {
		o.ActiveVIs = 1
	}
	if o.Segments < 1 {
		o.Segments = 1
	}
	if o.VaryBuffers && o.PoolBuffers < 2 {
		o.PoolBuffers = 64
	}
	if !o.VaryBuffers {
		o.ReusePct = 100
		o.PoolBuffers = 1
	}
	return o
}

// reuseBase reports whether round trip i reuses the base buffer under the
// Bresenham spreading of ReusePct (evenly interleaved rather than bursty).
func (o XferOpts) reuseBase(i int) bool {
	if !o.VaryBuffers {
		return true
	}
	r := o.ReusePct
	return (i+1)*r/100 > i*r/100
}

// pickBuf selects the buffer index in a pool for round trip i.
func (o XferOpts) pickBuf(i int) int {
	if o.reuseBase(i) {
		return 0
	}
	return 1 + i%(o.PoolBuffers-1)
}
