package core

import (
	"testing"

	"vibe/internal/mp"
	"vibe/internal/provider"
	"vibe/internal/stream"
)

func TestMPLatencyTracksRawVIA(t *testing.T) {
	cfg := quickCfg(provider.CLAN())
	raw, _, err := LatencySweep(cfg, []int{1024}, XferOpts{})
	if err != nil {
		t.Fatal(err)
	}
	mpl, err := MPLatency(cfg, []int{1024}, mp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rawUs, mpUs := raw.MustAt(1024), mpl.MustAt(1024)
	if mpUs <= rawUs {
		t.Errorf("mp layer (%.1f) cannot beat raw VIA (%.1f)", mpUs, rawUs)
	}
	if mpUs > rawUs+30 {
		t.Errorf("mp eager overhead too large: raw %.1f vs mp %.1f", rawUs, mpUs)
	}
}

func TestMPLatencyEagerVsRendezvous(t *testing.T) {
	// On the copy-bound provider, rendezvous must beat eager for large
	// messages — the crossover VIBe's copy costs predict.
	cfg := quickCfg(provider.MVIA())
	const size = 16 * 1024
	small := mp.DefaultConfig()
	small.EagerLimit = 4 * 1024 // forces rendezvous at 16KB
	big := mp.DefaultConfig()
	big.EagerLimit = 32 * 1024 // forces eager at 16KB
	rdv, err := mpPingPong(cfg, size, small)
	if err != nil {
		t.Fatal(err)
	}
	eager, err := mpPingPong(cfg, size, big)
	if err != nil {
		t.Fatal(err)
	}
	if rdv >= eager {
		t.Errorf("rendezvous (%.1f) should beat eager (%.1f) at 16KB on mvia", rdv, eager)
	}
}

func TestGPLatencyPathDifference(t *testing.T) {
	// BVIA's daemon-serviced get must cost far more than its one-sided
	// put; on cLAN (hardware read) the two are comparable.
	cfgB := quickCfg(provider.BVIA())
	putB, getB, err := GPLatency(cfgB, 64)
	if err != nil {
		t.Fatal(err)
	}
	if getB < putB*2 {
		t.Errorf("bvia serviced get (%.1f) should dwarf put (%.1f)", getB, putB)
	}
	cfgC := quickCfg(provider.CLAN())
	putC, getC, err := GPLatency(cfgC, 64)
	if err != nil {
		t.Fatal(err)
	}
	if getC > putC*2 {
		t.Errorf("clan hardware get (%.1f) should be near put (%.1f)", getC, putC)
	}
}

func TestStreamThroughputBelowRaw(t *testing.T) {
	cfg := quickCfg(provider.CLAN())
	raw, _, err := BandwidthSweep(cfg, []int{28672}, XferOpts{})
	if err != nil {
		t.Fatal(err)
	}
	tput, err := StreamThroughput(cfg, 256<<10, stream.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tput <= 0 || tput >= raw.MustAt(28672) {
		t.Errorf("stream throughput %.1f vs raw %.1f: byte semantics must cost something",
			tput, raw.MustAt(28672))
	}
	// But not more than the two staging copies' worth (~100 MB/s each
	// side bounds it near 50; allow generous slack below that).
	if tput < 25 {
		t.Errorf("stream throughput %.1f MB/s implausibly low", tput)
	}
}

func TestStreamPingPongAboveRawLatency(t *testing.T) {
	cfg := quickCfg(provider.CLAN())
	raw, _, err := LatencySweep(cfg, []int{1024}, XferOpts{})
	if err != nil {
		t.Fatal(err)
	}
	sock, err := StreamPingPong(cfg, 1024, stream.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sock <= raw.MustAt(1024) {
		t.Errorf("stream latency %.1f cannot beat raw %.1f", sock, raw.MustAt(1024))
	}
}

func TestDSMLockContentionGrowsWithNodes(t *testing.T) {
	cfg := quickCfg(provider.CLAN())
	two, _, err := DSMLockContention(cfg, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	four, _, err := DSMLockContention(cfg, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if two <= 0 || four <= two {
		t.Errorf("contention should grow with nodes: 2=%.1f 4=%.1f", two, four)
	}
}

func TestLossSweepDegradesGoodput(t *testing.T) {
	cfg := quickCfg(provider.CLAN())
	// 10%: high enough that the short quick-mode run sees drops at any
	// seed (a 2% rate can draw zero losses over ~100 packets).
	s, err := LossSweep(cfg, 4096, []float64{0, 0.10})
	if err != nil {
		t.Fatal(err)
	}
	clean, lossy := s.MustAt(0), s.MustAt(10)
	if lossy >= clean*0.9 {
		t.Errorf("10%% loss should reduce goodput: %.1f -> %.1f", clean, lossy)
	}
	if lossy <= 0 {
		t.Errorf("goodput collapsed to zero under loss")
	}
}

func TestLossSweepDoesNotMutateSharedModel(t *testing.T) {
	cfg := quickCfg(provider.CLAN())
	if _, err := LossSweep(cfg, 4096, []float64{0.02}); err != nil {
		t.Fatal(err)
	}
	if cfg.Model.Network.DropRate != 0 {
		t.Fatalf("LossSweep mutated the caller's model: DropRate=%v", cfg.Model.Network.DropRate)
	}
}
