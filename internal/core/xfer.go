package core

import (
	"fmt"

	"vibe/internal/cpu"
	"vibe/internal/fabric"
	"vibe/internal/sim"
	"vibe/internal/via"
	"vibe/internal/vmem"
)

// XferResult is one data-transfer measurement in the paper's units.
type XferResult struct {
	Size      int
	RTTus     float64 // request-reply round trip
	LatencyUs float64 // one-way latency (RTT/2 for symmetric ping-pong)
	MBps      float64 // bandwidth runs only
	CPUUtil   float64 // sender/client CPU utilization in [0,1]
	TPS       float64 // transactions per second (client-server)
}

// regBuf is a registered buffer.
type regBuf struct {
	buf *vmem.Buffer
	h   via.MemHandle
}

// endpoint bundles one side's VIA objects and buffer pools.
type endpoint struct {
	ctx    *via.Ctx
	nic    *via.Nic
	vi     *via.Vi
	extras []*via.Vi
	cq     *via.CQ
	send   []regBuf
	recv   []regBuf
	o      XferOpts
	cfg    Config
}

// rdmaXchg carries each side's receive-pool addresses to the other for
// RDMA transfers (the address exchange a real application would do over an
// initial send/receive).
type rdmaXchg struct {
	cli, srv []via.AddressSegment
}

func makePool(ctx *via.Ctx, nic *via.Nic, count, size int) ([]regBuf, error) {
	if size < 4 {
		size = 4
	}
	pool := make([]regBuf, count)
	for i := range pool {
		buf := ctx.Malloc(size)
		h, err := nic.RegisterMem(ctx, buf)
		if err != nil {
			return nil, err
		}
		pool[i] = regBuf{buf: buf, h: h}
	}
	return pool, nil
}

// addressSegments exports a pool for RDMA targeting.
func addressSegments(pool []regBuf) []via.AddressSegment {
	segs := make([]via.AddressSegment, len(pool))
	for i, b := range pool {
		segs[i] = via.AddressSegment{Addr: b.buf.Addr(), Handle: b.h}
	}
	return segs
}

// setup creates the endpoint: CQ if requested, ActiveVIs connected VI
// pairs (traffic uses the first), and the send/receive buffer pools.
// share aliases the receive pool to the send pool, matching the paper's
// base setup where one user buffer serves as both.
func setup(ctx *via.Ctx, cfg Config, o XferOpts, sendSize, recvSize int, share, isClient bool, peer fabric.NodeID) (*endpoint, error) {
	ep := &endpoint{ctx: ctx, nic: ctx.OpenNic(), o: o, cfg: cfg}
	var err error
	if o.RecvViaCQ {
		if ep.cq, err = ep.nic.CreateCQ(ctx, 4096); err != nil {
			return nil, err
		}
	}
	attrs := via.ViAttributes{Reliability: o.Reliability, EnableRdmaWrite: o.RDMA}
	for k := 0; k < o.ActiveVIs; k++ {
		var recvCQ *via.CQ
		if k == 0 {
			recvCQ = ep.cq
		}
		vi, err := ep.nic.CreateVi(ctx, attrs, nil, recvCQ)
		if err != nil {
			return nil, err
		}
		disc := fmt.Sprintf("vi-%d", k)
		if isClient {
			if err := vi.ConnectRequest(ctx, peer, disc, cfg.Timeout); err != nil {
				return nil, fmt.Errorf("connect %s: %w", disc, err)
			}
		} else {
			req, err := ep.nic.ConnectWait(ctx, disc, cfg.Timeout)
			if err != nil {
				return nil, fmt.Errorf("wait %s: %w", disc, err)
			}
			if err := req.Accept(ctx, vi); err != nil {
				return nil, fmt.Errorf("accept %s: %w", disc, err)
			}
		}
		if k == 0 {
			ep.vi = vi
		} else {
			ep.extras = append(ep.extras, vi)
		}
	}

	poolN := o.PoolBuffers
	if share {
		size := sendSize
		if recvSize > size {
			size = recvSize
		}
		if ep.send, err = makePool(ctx, ep.nic, poolN, size); err != nil {
			return nil, err
		}
		ep.recv = ep.send
		return ep, nil
	}
	if ep.send, err = makePool(ctx, ep.nic, poolN, sendSize); err != nil {
		return nil, err
	}
	if ep.recv, err = makePool(ctx, ep.nic, poolN, recvSize); err != nil {
		return nil, err
	}
	return ep, nil
}

// segments splits buffer b into k contiguous data segments covering
// exactly n bytes.
func segments(b regBuf, n, k int) []via.DataSegment {
	if n > 0 && k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	segs := make([]via.DataSegment, 0, k)
	base := n / k
	off := 0
	for i := 0; i < k; i++ {
		l := base
		if i == k-1 {
			l = n - off
		}
		segs = append(segs, via.DataSegment{Addr: b.buf.AddrAt(off), Handle: b.h, Length: l})
		off += l
	}
	return segs
}

// postRecv posts a receive descriptor sized for an n-byte message into
// pool buffer b.
func (ep *endpoint) postRecv(b regBuf, n int) error {
	d := &via.Descriptor{Segs: segments(b, n, ep.o.Segments)}
	return ep.vi.PostRecv(ep.ctx, d)
}

// postSend posts the send (or RDMA write) of n bytes from pool buffer b.
// For RDMA, the write targets the peer's receive-pool buffer of the same
// index, carrying immediate data so the peer's posted descriptor
// completes. With no peer pool (control messages like the bandwidth ack),
// a plain send is used even in RDMA mode.
func (ep *endpoint) postSend(b regBuf, n, poolIdx int, peerRecv []via.AddressSegment) error {
	d := &via.Descriptor{Op: via.OpSend, Segs: segments(b, n, ep.o.Segments)}
	if ep.o.RDMA && peerRecv != nil {
		d.Op = via.OpRdmaWrite
		r := peerRecv[poolIdx]
		d.Remote = &r
		d.ImmediateData = uint32(poolIdx)
		d.HasImmediate = true
	}
	return ep.vi.PostSend(ep.ctx, d)
}

// waitSend completes the head send descriptor per the configured mode.
func (ep *endpoint) waitSend() (*via.Descriptor, error) {
	if ep.o.Mode == Blocking {
		return ep.vi.SendWait(ep.ctx, ep.cfg.Timeout)
	}
	return ep.vi.SendWaitPoll(ep.ctx)
}

// waitRecv completes the head receive descriptor per the configured mode,
// going through the completion queue when configured.
func (ep *endpoint) waitRecv() (*via.Descriptor, error) {
	if ep.o.RecvViaCQ {
		var err error
		if ep.o.Mode == Blocking {
			_, err = ep.cq.Wait(ep.ctx, ep.cfg.Timeout)
		} else {
			_, err = ep.cq.WaitPoll(ep.ctx)
		}
		if err != nil {
			return nil, err
		}
		d, ok := ep.vi.RecvDone(ep.ctx)
		if !ok {
			return nil, fmt.Errorf("vibe: CQ entry without completed descriptor")
		}
		return d, nil
	}
	if ep.o.Mode == Blocking {
		return ep.vi.RecvWait(ep.ctx, ep.cfg.Timeout)
	}
	return ep.vi.RecvWaitPoll(ep.ctx)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// checkOK fails on transport-level descriptor errors so miscalibrated
// benchmarks surface loudly.
func checkOK(d *via.Descriptor, err error) error {
	if err != nil {
		return err
	}
	if d.Status != via.StatusSuccess {
		return fmt.Errorf("vibe: descriptor completed with %v", d.Status)
	}
	return nil
}

// roundTrip is the suite's core engine: a synchronous request/reply loop
// between two nodes, parameterized by XferOpts. Ping-pong latency,
// CQ/buffer-reuse/multi-VI/segment/RDMA/reliability variants, and the
// client-server benchmark are all instances of it.
func roundTrip(cfg Config, reqSize, replySize int, separateBufs bool, o XferOpts) (XferResult, error) {
	o = o.normalized()
	sys := via.NewSystemProc(cfg.Model, 2, cfg.Seed, cfg.ProcModel)
	defer sys.Close()
	cfg.instrument(sys)
	total := cfg.Warmup + cfg.Iters
	res := XferResult{Size: reqSize}

	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
		sys.Eng.Stop()
	}
	// The base setup uses one user buffer as both send and receive buffer
	// (§3.2.1); the buffer-reuse and RDMA experiments use distinct send
	// and receive buffers (§3.2.2).
	share := !separateBufs && !o.RDMA && !o.VaryBuffers

	var x rdmaXchg
	var cliReady, srvReady bool

	sys.Go(0, "vibe-client", func(ctx *via.Ctx) {
		ep, err := setup(ctx, cfg, o, reqSize, replySize, share, true, 1)
		if err != nil {
			fail(err)
			return
		}
		if o.RDMA {
			x.cli = addressSegments(ep.recv)
			cliReady = true
			for !srvReady {
				ctx.Sleep(10 * sim.Microsecond)
			}
		}
		var t0 sim.Time
		var meter *cpu.Meter
		for i := 0; i < total; i++ {
			if i == cfg.Warmup {
				t0 = ctx.Now()
				meter = ctx.Host.CPU.StartMeter()
			}
			bi := o.pickBuf(i)
			if err := ep.postRecv(ep.recv[bi], replySize); err != nil {
				fail(err)
				return
			}
			if err := ep.postSend(ep.send[bi], reqSize, bi, x.srv); err != nil {
				fail(err)
				return
			}
			if err := checkOK(ep.waitSend()); err != nil {
				fail(fmt.Errorf("client send %d: %w", i, err))
				return
			}
			if err := checkOK(ep.waitRecv()); err != nil {
				fail(fmt.Errorf("client recv %d: %w", i, err))
				return
			}
		}
		rtt := ctx.Now().Sub(t0)
		res.RTTus = rtt.Micros() / float64(cfg.Iters)
		res.LatencyUs = res.RTTus / 2
		res.CPUUtil = meter.Utilization()
		if res.RTTus > 0 {
			res.TPS = 1e6 / res.RTTus
		}
	})

	sys.Go(1, "vibe-server", func(ctx *via.Ctx) {
		ep, err := setup(ctx, cfg, o, replySize, reqSize, share, false, 0)
		if err != nil {
			fail(err)
			return
		}
		if o.RDMA {
			x.srv = addressSegments(ep.recv)
			srvReady = true
			for !cliReady {
				ctx.Sleep(10 * sim.Microsecond)
			}
		}
		if o.Notify {
			ep.serveNotify(total, reqSize, replySize, &x, fail)
			return
		}
		if err := ep.postRecv(ep.recv[o.pickBuf(0)], reqSize); err != nil {
			fail(err)
			return
		}
		for i := 0; i < total; i++ {
			if err := checkOK(ep.waitRecv()); err != nil {
				fail(fmt.Errorf("server recv %d: %w", i, err))
				return
			}
			if i+1 < total {
				if err := ep.postRecv(ep.recv[o.pickBuf(i+1)], reqSize); err != nil {
					fail(err)
					return
				}
			}
			bi := o.pickBuf(i)
			if err := ep.postSend(ep.send[bi], replySize, bi, x.cli); err != nil {
				fail(err)
				return
			}
			if err := checkOK(ep.waitSend()); err != nil {
				fail(fmt.Errorf("server send %d: %w", i, err))
				return
			}
		}
	})

	if err := sys.Run(); err != nil {
		return res, err
	}
	return res, runErr
}

// serveNotify is the server loop of the asynchronous-message benchmark:
// each completed receive is handled by an upcall that posts the next
// receive and sends the reply.
func (ep *endpoint) serveNotify(total, reqSize, replySize int, x *rdmaXchg, fail func(error)) {
	o := ep.o
	done := 0
	ep.vi.SetRecvNotify(func(hctx *via.Ctx, d *via.Descriptor) {
		i := done
		done++
		if d.Status != via.StatusSuccess {
			fail(fmt.Errorf("vibe notify: descriptor %v", d.Status))
			return
		}
		// Handlers run with their own context; redirect the endpoint's
		// posting calls through it for this upcall.
		hep := *ep
		hep.ctx = hctx
		if i+1 < total {
			if err := hep.postRecv(ep.recv[o.pickBuf(i+1)], reqSize); err != nil {
				fail(err)
				return
			}
		}
		bi := o.pickBuf(i)
		if err := hep.postSend(ep.send[bi], replySize, bi, x.cli); err != nil {
			fail(err)
			return
		}
		if err := checkOK(hep.waitSend()); err != nil {
			fail(err)
		}
	})
	if err := ep.postRecv(ep.recv[o.pickBuf(0)], reqSize); err != nil {
		fail(err)
		return
	}
	for done < total {
		ep.ctx.Sleep(20 * sim.Microsecond)
	}
}
