package core

import (
	"encoding/json"
	"fmt"
	"os"

	"vibe/internal/fault"
	"vibe/internal/provider"
	"vibe/internal/via"
)

// RunOverrides adjusts the run configuration of a scenario. Zero fields
// keep the (quick- or full-mode) defaults.
type RunOverrides struct {
	Seed        int64 `json:"seed,omitempty"`
	Iters       int   `json:"iters,omitempty"`
	Warmup      int   `json:"warmup,omitempty"`
	BWMessages  int   `json:"bw_messages,omitempty"`
	NonDataReps int   `json:"nondata_reps,omitempty"`
}

// IsZero reports whether every override keeps its default.
func (r RunOverrides) IsZero() bool { return r == RunOverrides{} }

// ScenarioSpec is the serializable scenario description: a provider
// derivation (base model + parameter overrides) plus run-config
// adjustments and an optional fault plan. It is the on-disk
// scenario-file schema:
//
//	{"base": "clan", "set": {"DoorbellCost": "2us"}, "run": {"iters": 100},
//	 "fault": {"seed": 7, "faults": [{"kind": "drop-nth", "nth": 40}]}}
type ScenarioSpec struct {
	provider.Scenario
	Run   RunOverrides `json:"run,omitzero"`
	Fault *fault.Plan  `json:"fault,omitempty"`
}

// Save writes the spec as indented JSON — the file format
// LoadScenarioSpec reads. It shadows the embedded provider.Scenario.Save,
// which would silently drop the run overrides.
func (s ScenarioSpec) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Scenario is a compiled scenario: the spec plus pre-validated overrides
// and the quick/full mode flag. It is the value threaded through the
// experiment registry — every experiment derives its models and run
// configurations from it, so one scenario value redefines the whole
// suite's design point.
type Scenario struct {
	Spec  ScenarioSpec
	Quick bool

	// Instr, when set, is copied into every Config the scenario builds, so
	// all experiments run against it report into the same sinks. It is not
	// part of the serialized spec.
	Instr *Instr

	// ProcModel is copied into every Config the scenario builds, selecting
	// how the simulated NIC engines execute. Not part of the serialized
	// spec: both models are byte-identical, so the choice is a harness
	// concern (equivalence testing), never a scenario design point.
	ProcModel via.ProcModel

	ovs []provider.Override
}

// NewScenario compiles a spec, validating the base model name (when set)
// and every override against the provider parameter catalog.
func NewScenario(spec ScenarioSpec, quick bool) (*Scenario, error) {
	if spec.Base != "" {
		if _, err := provider.ByNameExtended(spec.Base); err != nil {
			return nil, err
		}
	}
	ovs, err := spec.Compile()
	if err != nil {
		return nil, err
	}
	if err := spec.Fault.Validate(); err != nil {
		return nil, err
	}
	return &Scenario{Spec: spec, Quick: quick, ovs: ovs}, nil
}

// DefaultScenario is the unmodified suite configuration: no base pin, no
// overrides, paper-reproduction run parameters.
func DefaultScenario(quick bool) *Scenario {
	sc, err := NewScenario(ScenarioSpec{}, quick)
	if err != nil {
		panic(err) // empty spec cannot fail to compile
	}
	return sc
}

// LoadScenarioSpec reads and parses a scenario file without compiling it,
// for callers that merge further overrides (e.g. -set flags) on top.
func LoadScenarioSpec(path string) (ScenarioSpec, error) {
	var spec ScenarioSpec
	data, err := os.ReadFile(path)
	if err != nil {
		return spec, err
	}
	if err := json.Unmarshal(data, &spec); err != nil {
		return spec, fmt.Errorf("core: scenario %s: %w", path, err)
	}
	return spec, nil
}

// LoadScenario reads, parses and compiles a scenario file.
func LoadScenario(path string, quick bool) (*Scenario, error) {
	spec, err := LoadScenarioSpec(path)
	if err != nil {
		return nil, err
	}
	sc, err := NewScenario(spec, quick)
	if err != nil {
		return nil, fmt.Errorf("core: scenario %s: %w", path, err)
	}
	return sc, nil
}

// Label names the scenario for display and provenance.
func (sc *Scenario) Label() string { return sc.Spec.Label() }

// Model returns a copy of m with the scenario's overrides applied.
// Overrides were validated at compile time, so derivation cannot fail.
func (sc *Scenario) Model(m *provider.Model) *provider.Model {
	d := m.Clone()
	for _, o := range sc.ovs {
		o.Apply(d)
	}
	return d
}

// Config builds the run configuration for the scenario-derived variant of
// m: the base-model clone with overrides applied, the quick or full sweep
// sizes, and any run-config adjustments from the spec.
func (sc *Scenario) Config(m *provider.Model) Config {
	cfg := DefaultConfig(sc.Model(m))
	if sc.Quick {
		cfg.Iters = 20
		cfg.Warmup = 5
		cfg.BWMessages = 40
		cfg.NonDataReps = 3
	}
	r := sc.Spec.Run
	if r.Seed != 0 {
		cfg.Seed = r.Seed
	}
	if r.Iters > 0 {
		cfg.Iters = r.Iters
	}
	if r.Warmup > 0 {
		cfg.Warmup = r.Warmup
	}
	if r.BWMessages > 0 {
		cfg.BWMessages = r.BWMessages
	}
	if r.NonDataReps > 0 {
		cfg.NonDataReps = r.NonDataReps
	}
	cfg.Instr = sc.Instr
	cfg.Fault = sc.Spec.Fault
	cfg.ProcModel = sc.ProcModel
	return cfg
}

// BaseConfig resolves the scenario's pinned base model and builds its
// configuration; it errors when the spec names no base.
func (sc *Scenario) BaseConfig() (Config, error) {
	if sc.Spec.Base == "" {
		return Config{}, fmt.Errorf("core: scenario %q pins no base model", sc.Label())
	}
	m, err := provider.ByNameExtended(sc.Spec.Base)
	if err != nil {
		return Config{}, err
	}
	return sc.Config(m), nil
}
