package core

import (
	"testing"

	"vibe/internal/provider"
	"vibe/internal/via"
)

func latAt(t *testing.T, m *provider.Model, size int, o XferOpts) XferResult {
	t.Helper()
	r, err := Latency(quickCfg(m), size, o)
	if err != nil {
		t.Fatalf("latency %s %d: %v", m.Name, size, err)
	}
	return r
}

func bwAt(t *testing.T, m *provider.Model, size int, o XferOpts) XferResult {
	t.Helper()
	r, err := Bandwidth(quickCfg(m), size, o)
	if err != nil {
		t.Fatalf("bandwidth %s %d: %v", m.Name, size, err)
	}
	return r
}

// --- Figure 3 shapes: base latency and bandwidth with polling ---

func TestFig3SmallMessageLatencyOrdering(t *testing.T) {
	clan := latAt(t, provider.CLAN(), 4, XferOpts{})
	mvia := latAt(t, provider.MVIA(), 4, XferOpts{})
	bvia := latAt(t, provider.BVIA(), 4, XferOpts{})
	// cLAN lowest; M-VIA below BVIA for short messages.
	if !(clan.LatencyUs < mvia.LatencyUs && mvia.LatencyUs < bvia.LatencyUs) {
		t.Errorf("small-message ordering clan < mvia < bvia violated: %.1f %.1f %.1f",
			clan.LatencyUs, mvia.LatencyUs, bvia.LatencyUs)
	}
	// Rough magnitudes from the paper's era: clan ~8-10us, mvia ~15-25us,
	// bvia ~20-35us.
	if clan.LatencyUs < 5 || clan.LatencyUs > 12 {
		t.Errorf("clan 4B latency %.1fus outside plausible band", clan.LatencyUs)
	}
	if mvia.LatencyUs < 12 || mvia.LatencyUs > 28 {
		t.Errorf("mvia 4B latency %.1fus outside plausible band", mvia.LatencyUs)
	}
	if bvia.LatencyUs < 18 || bvia.LatencyUs > 40 {
		t.Errorf("bvia 4B latency %.1fus outside plausible band", bvia.LatencyUs)
	}
}

func TestFig3LargeMessageLatencyCrossover(t *testing.T) {
	// BVIA outperforms M-VIA for longer messages (M-VIA's extra copies).
	mvia := latAt(t, provider.MVIA(), 28672, XferOpts{})
	bvia := latAt(t, provider.BVIA(), 28672, XferOpts{})
	if !(bvia.LatencyUs < mvia.LatencyUs) {
		t.Errorf("bvia (%.0f) should beat mvia (%.0f) at 28KB", bvia.LatencyUs, mvia.LatencyUs)
	}
	if mvia.LatencyUs < 2*bvia.LatencyUs {
		t.Errorf("mvia/bvia large-message gap too small: %.0f vs %.0f", mvia.LatencyUs, bvia.LatencyUs)
	}
}

func TestFig3LatencyMonotonicInSize(t *testing.T) {
	for _, m := range provider.All() {
		lat, _, err := LatencySweep(quickCfg(m), []int{4, 1024, 4096, 28672}, XferOpts{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(lat.Points); i++ {
			if lat.Points[i].Y <= lat.Points[i-1].Y {
				t.Errorf("%s latency not increasing at %g", m.Name, lat.Points[i].X)
			}
		}
	}
}

func TestFig3BandwidthOrdering(t *testing.T) {
	// Large messages: BVIA > cLAN > M-VIA (the paper's "BVIA outperforms
	// both for large messages").
	bvia := bwAt(t, provider.BVIA(), 28672, XferOpts{})
	clan := bwAt(t, provider.CLAN(), 28672, XferOpts{})
	mvia := bwAt(t, provider.MVIA(), 28672, XferOpts{})
	if !(bvia.MBps > clan.MBps && clan.MBps > mvia.MBps) {
		t.Errorf("28KB bandwidth ordering bvia > clan > mvia violated: %.0f %.0f %.0f",
			bvia.MBps, clan.MBps, mvia.MBps)
	}
	// Mid-range: cLAN superiority (paper: "for a large range of sizes").
	clanMid := bwAt(t, provider.CLAN(), 1024, XferOpts{})
	bviaMid := bwAt(t, provider.BVIA(), 1024, XferOpts{})
	mviaMid := bwAt(t, provider.MVIA(), 1024, XferOpts{})
	if !(clanMid.MBps > bviaMid.MBps && clanMid.MBps > mviaMid.MBps) {
		t.Errorf("1KB bandwidth: clan should lead: clan=%.0f bvia=%.0f mvia=%.0f",
			clanMid.MBps, bviaMid.MBps, mviaMid.MBps)
	}
	// Plateaus in plausible bands: mvia ~45-60, bvia ~120-145, clan ~105-125.
	if mvia.MBps < 40 || mvia.MBps > 65 {
		t.Errorf("mvia plateau %.0f MB/s implausible", mvia.MBps)
	}
	if bvia.MBps < 115 || bvia.MBps > 150 {
		t.Errorf("bvia plateau %.0f MB/s implausible", bvia.MBps)
	}
	if clan.MBps < 100 || clan.MBps > 130 {
		t.Errorf("clan plateau %.0f MB/s implausible", clan.MBps)
	}
}

func TestPollingCPUIsFullyBusy(t *testing.T) {
	for _, m := range provider.All() {
		r := latAt(t, m, 1024, XferOpts{})
		if r.CPUUtil < 0.99 {
			t.Errorf("%s polling CPU utilization %.2f, want ~1.0", m.Name, r.CPUUtil)
		}
	}
}

// --- Figure 4 shapes: blocking ---

func TestFig4BlockingRaisesLatency(t *testing.T) {
	for _, m := range provider.All() {
		poll := latAt(t, m, 4, XferOpts{})
		block := latAt(t, m, 4, XferOpts{Mode: Blocking})
		if block.LatencyUs < poll.LatencyUs+3 {
			t.Errorf("%s blocking (%.1f) should significantly exceed polling (%.1f)",
				m.Name, block.LatencyUs, poll.LatencyUs)
		}
	}
}

func TestFig4BlockingCPU(t *testing.T) {
	var utils = map[string]float64{}
	for _, m := range provider.All() {
		r := latAt(t, m, 4, XferOpts{Mode: Blocking})
		if r.CPUUtil >= 0.9 {
			t.Errorf("%s blocking CPU %.2f: should be well below polling", m.Name, r.CPUUtil)
		}
		utils[m.Name] = r.CPUUtil
	}
	// M-VIA (kernel emulation) highest for small messages.
	if !(utils["mvia"] > utils["bvia"] && utils["mvia"] > utils["clan"]) {
		t.Errorf("mvia should have the highest blocking CPU at 4B: %v", utils)
	}
}

// --- Figure 5 shapes: buffer reuse (address translation) ---

func TestFig5BviaReuseSensitivity(t *testing.T) {
	m := provider.BVIA()
	base := latAt(t, m, 28672, XferOpts{})
	noReuse := latAt(t, m, 28672, XferOpts{VaryBuffers: true, ReusePct: 0})
	if noReuse.LatencyUs < base.LatencyUs+40 {
		t.Errorf("bvia 0%%-reuse latency %.0f should far exceed base %.0f",
			noReuse.LatencyUs, base.LatencyUs)
	}
	// Impact is more severe (in absolute us) for large messages: more
	// pages per message.
	smallBase := latAt(t, m, 4, XferOpts{})
	smallNoReuse := latAt(t, m, 4, XferOpts{VaryBuffers: true, ReusePct: 0})
	largeDelta := noReuse.LatencyUs - base.LatencyUs
	smallDelta := smallNoReuse.LatencyUs - smallBase.LatencyUs
	if largeDelta <= smallDelta {
		t.Errorf("reuse impact should grow with size: 4B delta %.1f, 28KB delta %.1f",
			smallDelta, largeDelta)
	}
	// Bandwidth drops too.
	bwBase := bwAt(t, m, 28672, XferOpts{})
	bwNo := bwAt(t, m, 28672, XferOpts{VaryBuffers: true, ReusePct: 0})
	if bwNo.MBps >= bwBase.MBps*0.9 {
		t.Errorf("bvia 0%%-reuse bandwidth %.0f should drop well below base %.0f",
			bwNo.MBps, bwBase.MBps)
	}
}

func TestFig5ReuseMonotonicAtSmallSizes(t *testing.T) {
	// At one-page messages the pool always outlives the TLB, so latency
	// falls monotonically as reuse rises.
	m := provider.BVIA()
	prev := -1.0
	for _, pct := range []int{100, 75, 50, 25, 0} {
		r := latAt(t, m, 4, XferOpts{VaryBuffers: true, ReusePct: pct})
		if prev > 0 && r.LatencyUs < prev {
			t.Errorf("latency at %d%% reuse (%.1f) below %.1f at higher reuse", pct, r.LatencyUs, prev)
		}
		prev = r.LatencyUs
	}
}

func TestFig5OthersInsensitive(t *testing.T) {
	for _, m := range []*provider.Model{provider.MVIA(), provider.CLAN()} {
		base := latAt(t, m, 28672, XferOpts{})
		noReuse := latAt(t, m, 28672, XferOpts{VaryBuffers: true, ReusePct: 0})
		if noReuse.LatencyUs > base.LatencyUs*1.02 {
			t.Errorf("%s should be reuse-insensitive: base %.1f vs 0%% %.1f",
				m.Name, base.LatencyUs, noReuse.LatencyUs)
		}
	}
}

// --- Figure 6 shapes: multiple VIs ---

func TestFig6BviaMultiViDegradation(t *testing.T) {
	m := provider.BVIA()
	one := latAt(t, m, 4, XferOpts{ActiveVIs: 1})
	sixteen := latAt(t, m, 4, XferOpts{ActiveVIs: 16})
	if sixteen.LatencyUs < one.LatencyUs*2 {
		t.Errorf("bvia 16-VI latency %.1f should be >=2x the 1-VI %.1f",
			sixteen.LatencyUs, one.LatencyUs)
	}
	// Monotone in VI count.
	prev := 0.0
	for _, n := range []int{1, 2, 4, 8, 16} {
		r := latAt(t, m, 4, XferOpts{ActiveVIs: n})
		if r.LatencyUs <= prev {
			t.Errorf("bvia latency not increasing at %d VIs", n)
		}
		prev = r.LatencyUs
	}
	// Bandwidth drops.
	bw1 := bwAt(t, m, 4096, XferOpts{ActiveVIs: 1})
	bw16 := bwAt(t, m, 4096, XferOpts{ActiveVIs: 16})
	if bw16.MBps >= bw1.MBps*0.7 {
		t.Errorf("bvia 16-VI bandwidth %.0f should drop well below %.0f", bw16.MBps, bw1.MBps)
	}
}

func TestFig6OthersInsensitive(t *testing.T) {
	for _, m := range []*provider.Model{provider.MVIA(), provider.CLAN()} {
		one := latAt(t, m, 4, XferOpts{ActiveVIs: 1})
		sixteen := latAt(t, m, 4, XferOpts{ActiveVIs: 16})
		if sixteen.LatencyUs > one.LatencyUs*1.02 {
			t.Errorf("%s should be VI-count-insensitive: %.1f vs %.1f",
				m.Name, one.LatencyUs, sixteen.LatencyUs)
		}
	}
}

// --- §4.3.3: CQ overhead ---

func TestCQOverheadBands(t *testing.T) {
	deltas := map[string]float64{}
	for _, m := range provider.All() {
		_, _, d, err := CQOverhead(quickCfg(m), []int{4})
		if err != nil {
			t.Fatal(err)
		}
		deltas[m.Name] = d.Points[0].Y
	}
	if deltas["bvia"] < 2 || deltas["bvia"] > 5 {
		t.Errorf("bvia CQ overhead %.1fus outside the paper's 2-5us", deltas["bvia"])
	}
	for _, name := range []string{"mvia", "clan"} {
		if deltas[name] > 1 {
			t.Errorf("%s CQ overhead %.1fus should be negligible", name, deltas[name])
		}
	}
}

// --- Figure 7 shapes: client-server ---

func TestFig7ClientServerShapes(t *testing.T) {
	tps := func(m *provider.Model, req, reply int) float64 {
		r, err := Transaction(quickCfg(m), req, reply)
		if err != nil {
			t.Fatalf("%s cs %d/%d: %v", m.Name, req, reply, err)
		}
		return r.TPS
	}
	clan16 := tps(provider.CLAN(), 16, 16)
	mvia16 := tps(provider.MVIA(), 16, 16)
	bvia16 := tps(provider.BVIA(), 16, 16)
	// cLAN dominates; the paper's peak is ~55K/s at 16B requests.
	if !(clan16 > mvia16 && clan16 > bvia16) {
		t.Errorf("clan should lead at 16B: %.0f vs %.0f/%.0f", clan16, mvia16, bvia16)
	}
	if clan16 < 45000 || clan16 > 70000 {
		t.Errorf("clan 16B peak %.0f tx/s outside the paper's ~55K band", clan16)
	}
	// M-VIA beats BVIA for short replies; BVIA wins mid-size.
	if !(mvia16 > bvia16) {
		t.Errorf("mvia (%.0f) should beat bvia (%.0f) at 16B replies", mvia16, bvia16)
	}
	mviaMid := tps(provider.MVIA(), 16, 4096)
	bviaMid := tps(provider.BVIA(), 16, 4096)
	if !(bviaMid > mviaMid) {
		t.Errorf("bvia (%.0f) should beat mvia (%.0f) at 4KB replies", bviaMid, mviaMid)
	}
	// Larger requests shift every curve down.
	clan256 := tps(provider.CLAN(), 256, 16)
	if !(clan256 < clan16) {
		t.Errorf("256B requests (%.0f) should be slower than 16B (%.0f)", clan256, clan16)
	}
}

// --- cross-cutting properties ---

func TestLatencyDeterminism(t *testing.T) {
	a := latAt(t, provider.BVIA(), 1024, XferOpts{VaryBuffers: true, ReusePct: 50})
	b := latAt(t, provider.BVIA(), 1024, XferOpts{VaryBuffers: true, ReusePct: 50})
	if a != b {
		t.Fatalf("non-deterministic latency: %+v vs %+v", a, b)
	}
}

func TestBlockingAndCQComposition(t *testing.T) {
	// The suite's opts compose: blocking + CQ must still complete and
	// cost more than either alone.
	m := provider.BVIA()
	base := latAt(t, m, 1024, XferOpts{})
	both := latAt(t, m, 1024, XferOpts{Mode: Blocking, RecvViaCQ: true})
	if both.LatencyUs <= base.LatencyUs {
		t.Errorf("blocking+CQ (%.1f) should exceed base (%.1f)", both.LatencyUs, base.LatencyUs)
	}
}

func TestReliabilityLatencyOrdering(t *testing.T) {
	m := provider.CLAN()
	u := latAt(t, m, 1024, XferOpts{})
	rd := latAt(t, m, 1024, XferOpts{Reliability: via.ReliableDelivery})
	if rd.LatencyUs < u.LatencyUs {
		t.Errorf("reliable delivery (%.1f) should not beat unreliable (%.1f)",
			rd.LatencyUs, u.LatencyUs)
	}
}

func TestSegmentsAddCost(t *testing.T) {
	for _, m := range provider.All() {
		one := latAt(t, m, 4096, XferOpts{Segments: 1})
		four := latAt(t, m, 4096, XferOpts{Segments: 4})
		if four.LatencyUs <= one.LatencyUs {
			t.Errorf("%s: 4 segments (%.1f) should cost more than 1 (%.1f)",
				m.Name, four.LatencyUs, one.LatencyUs)
		}
	}
}

func TestNotifyAddsDispatchCost(t *testing.T) {
	m := provider.CLAN()
	sync := latAt(t, m, 64, XferOpts{})
	asy := latAt(t, m, 64, XferOpts{Notify: true})
	if asy.LatencyUs <= sync.LatencyUs {
		t.Errorf("notify (%.1f) should cost more than polling (%.1f)",
			asy.LatencyUs, sync.LatencyUs)
	}
}

func TestRDMATransfersWork(t *testing.T) {
	for _, m := range provider.All() {
		r := latAt(t, m, 4096, XferOpts{RDMA: true})
		if r.LatencyUs <= 0 {
			t.Errorf("%s RDMA latency %.1f", m.Name, r.LatencyUs)
		}
	}
}

func TestPipelineBandwidthMonotone(t *testing.T) {
	s, err := PipelineSweep(quickCfg(provider.CLAN()), 4096, []int{1, 2, 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Y < s.Points[i-1].Y*0.99 {
			t.Errorf("bandwidth fell with deeper pipeline: %v", s.Points)
		}
	}
	if s.Points[len(s.Points)-1].Y < s.Points[0].Y*1.5 {
		t.Errorf("pipelining should raise bandwidth substantially: %v", s.Points)
	}
}

func TestWindowOneIsSlowerThanUnbounded(t *testing.T) {
	// With unreliable delivery a send completes when the last fragment
	// leaves the adapter, so window-1 stalls the host on the adapter
	// drain; with reliable delivery it additionally waits for the ack
	// round trip. Both must fall well below the unbounded pipeline.
	m := provider.CLAN()
	free := bwAt(t, m, 4096, XferOpts{})
	w1 := bwAt(t, m, 4096, XferOpts{Window: 1})
	if w1.MBps >= free.MBps*0.8 {
		t.Errorf("window-1 bandwidth %.0f too close to unbounded %.0f", w1.MBps, free.MBps)
	}
	w1rel := bwAt(t, m, 4096, XferOpts{Window: 1, Reliability: via.ReliableDelivery})
	if w1rel.MBps >= w1.MBps {
		t.Errorf("reliable window-1 (%.0f) should be slower than unreliable (%.0f): it waits for acks",
			w1rel.MBps, w1.MBps)
	}
	// Reliable window-1 is ack-round-trip bound.
	lat := latAt(t, m, 4096, XferOpts{})
	bound := 4096.0 / lat.LatencyUs * 1.5
	if w1rel.MBps > bound {
		t.Errorf("reliable window-1 bandwidth %.0f exceeds RTT-ish bound %.0f", w1rel.MBps, bound)
	}
}

func TestMTULadderShape(t *testing.T) {
	l := MTULadder(4096)
	if len(l) != 8 || l[2] != 4096 || l[3] != 4100 {
		t.Fatalf("MTULadder = %v", l)
	}
	// Crossing the MTU boundary costs a visible step (a second fragment).
	m := provider.BVIA()
	at := latAt(t, m, 4096, XferOpts{})
	over := latAt(t, m, 4100, XferOpts{})
	if over.LatencyUs-at.LatencyUs < 3 {
		t.Errorf("MTU crossing step too small: %.1f -> %.1f", at.LatencyUs, over.LatencyUs)
	}
}
