package core

import (
	"fmt"

	"vibe/internal/bench"
	"vibe/internal/via"
)

// reliabilityLevel converts the model bitmask index back to the VIA type.
func reliabilityLevel(lv uint8) via.ReliabilityLevel { return via.ReliabilityLevel(lv) }

// ClientServer is the programming-model micro-benchmark of §3.3.1: a
// synchronous request/reply transaction loop with a fixed request size and
// varying reply sizes, using two distinct buffers. It reports sustained
// transactions per second for each reply size (Figure 7).
func ClientServer(cfg Config, reqSize int, replySizes []int) (*bench.Series, error) {
	s := bench.NewSeries(
		fmt.Sprintf("%s %dB requests", cfg.Model.Name, reqSize),
		"response message size (bytes)", "transactions per second")
	for _, reply := range replySizes {
		r, err := roundTrip(cfg, reqSize, reply, true /* separate buffers */, XferOpts{})
		if err != nil {
			return s, fmt.Errorf("client-server req=%d reply=%d: %w", reqSize, reply, err)
		}
		s.Add(float64(reply), r.TPS)
	}
	return s, nil
}

// Transaction measures one client-server point, returning the full result
// (RTT, transactions/sec, client CPU).
func Transaction(cfg Config, reqSize, replySize int) (XferResult, error) {
	return roundTrip(cfg, reqSize, replySize, true, XferOpts{})
}
