package core

import (
	"fmt"

	"vibe/internal/bench"
	"vibe/internal/getput"
	"vibe/internal/mp"
	"vibe/internal/provider"
	"vibe/internal/table"
	"vibe/internal/via"
)

// The programming-model benchmarks the paper's §5 plans to add to VIBe
// ("micro-benchmarks for distributed memory (MPI), distributed
// shared-memory, and get/put programming models"): measurements of the
// message-passing layer (internal/mp) and the get/put layer
// (internal/getput) built on the same simulated providers.

// MPLatency measures the message-passing layer's ping-pong latency for a
// size ladder.
func MPLatency(cfg Config, sizes []int, mpCfg mp.Config) (*bench.Series, error) {
	s := bench.NewSeries(cfg.Model.Name+" mp", "message size (bytes)", "latency (us)")
	for _, size := range sizes {
		lat, err := mpPingPong(cfg, size, mpCfg)
		if err != nil {
			return s, fmt.Errorf("mp latency %s %d: %w", cfg.Model.Name, size, err)
		}
		s.Add(float64(size), lat)
	}
	return s, nil
}

// mpPingPong runs one ping-pong measurement over the mp layer.
func mpPingPong(cfg Config, size int, mpCfg mp.Config) (float64, error) {
	sys := via.NewSystemProc(cfg.Model, 2, cfg.Seed, cfg.ProcModel)
	defer sys.Close()
	cfg.instrument(sys)
	w := mp.NewWorld(sys, mpCfg)
	total := cfg.Warmup + cfg.Iters
	var lat float64
	var runErr error
	w.Run(func(ctx *via.Ctx, ep *mp.Endpoint) {
		buf := ctx.Malloc(max(size, 1))
		other := 1 - ep.Rank()
		var t0 = ctx.Now()
		for i := 0; i < total; i++ {
			if i == cfg.Warmup && ep.Rank() == 0 {
				t0 = ctx.Now()
			}
			if ep.Rank() == 0 {
				if err := ep.Send(ctx, other, 1, buf, size); err != nil {
					runErr = err
					return
				}
				if _, _, err := ep.Recv(ctx, other, 1); err != nil {
					runErr = err
					return
				}
			} else {
				if _, _, err := ep.Recv(ctx, other, 1); err != nil {
					runErr = err
					return
				}
				if err := ep.Send(ctx, other, 1, buf, size); err != nil {
					runErr = err
					return
				}
			}
		}
		if ep.Rank() == 0 {
			lat = ctx.Now().Sub(t0).Micros() / float64(cfg.Iters) / 2
		}
	})
	if err := sys.Run(); err != nil {
		return 0, err
	}
	return lat, runErr
}

// GPLatency measures put and get latency over the get/put layer.
func GPLatency(cfg Config, size int) (putUs, getUs float64, err error) {
	sys := via.NewSystemProc(cfg.Model, 2, cfg.Seed, cfg.ProcModel)
	defer sys.Close()
	cfg.instrument(sys)
	f := getput.NewFabric(sys, getput.DefaultConfig())
	var ready bool
	var runErr error
	f.Run(func(ctx *via.Ctx, nd *getput.Node) {
		nic := ctx.OpenNic()
		if nd.Me() == 1 {
			region := ctx.Malloc(max(size, 4096))
			if e := nd.Expose(ctx, "bench", region); e != nil {
				runErr = e
				return
			}
			ready = true
			// Idle long enough for the measurement; serviced gets run on
			// the daemon.
			ctx.Sleep(2_000_000_000) // 2s of virtual time
			return
		}
		for !ready {
			ctx.Sleep(100_000) // 100us
		}
		src := ctx.Malloc(max(size, 4))
		sh, e := nic.RegisterMem(ctx, src)
		if e != nil {
			runErr = e
			return
		}
		// Warm the lookup cache, then time puts.
		for i := 0; i < cfg.Warmup; i++ {
			if e := nd.Put(ctx, 1, "bench", 0, src, size, sh); e != nil {
				runErr = e
				return
			}
		}
		t0 := ctx.Now()
		for i := 0; i < cfg.Iters; i++ {
			if e := nd.Put(ctx, 1, "bench", 0, src, size, sh); e != nil {
				runErr = e
				return
			}
		}
		putUs = ctx.Now().Sub(t0).Micros() / float64(cfg.Iters)

		dst := ctx.Malloc(max(size, 4))
		dh, e := nic.RegisterMem(ctx, dst)
		if e != nil {
			runErr = e
			return
		}
		for i := 0; i < cfg.Warmup; i++ {
			if e := nd.Get(ctx, 1, "bench", 0, size, dst, dh); e != nil {
				runErr = e
				return
			}
		}
		t1 := ctx.Now()
		for i := 0; i < cfg.Iters; i++ {
			if e := nd.Get(ctx, 1, "bench", 0, size, dst, dh); e != nil {
				runErr = e
				return
			}
		}
		getUs = ctx.Now().Sub(t1).Micros() / float64(cfg.Iters)
		sys.Eng.Stop() // do not wait out the owner's idle sleep
	})
	if err := sys.Run(); err != nil {
		return 0, 0, err
	}
	return putUs, getUs, runErr
}

func expPMMP() *Experiment {
	return &Experiment{
		ID:    "PMMP",
		Title: "PM: message-passing layer latency vs raw VIA (future work of §5)",
		PaperClaim: "(planned in the paper) A message-passing layer should track " +
			"raw VIA latency closely in its eager range and pay a rendezvous " +
			"round trip beyond the eager limit, where zero-copy RDMA then wins " +
			"back the copy costs on large messages.",
		Run: func(sc *Scenario) (*Report, error) {
			g := bench.NewGroup("mp layer latency vs raw VIA")
			for _, m := range provider.All() {
				cfg := sc.Config(m)
				raw, _, err := LatencySweep(cfg, ladder(sc.Quick), XferOpts{})
				if err != nil {
					return nil, err
				}
				raw.Name = m.Name + " raw VIA"
				mpl, err := MPLatency(cfg, ladder(sc.Quick), mp.DefaultConfig())
				if err != nil {
					return nil, err
				}
				g.Add(raw, mpl)
			}
			return &Report{Groups: []*bench.Group{g}, Notes: []string{
				"mp overhead = header staging + matching for eager sizes; RTS/CTS " +
					"round trip + registration(cached) for rendezvous sizes.",
			}}, nil
		},
	}
}

func expPMGP() *Experiment {
	return &Experiment{
		ID:    "PMGP",
		Title: "PM: get/put layer latency (future work of §5)",
		PaperClaim: "(planned in the paper) One-sided puts cost a wire one-way " +
			"plus reliability ack; gets are cheap where the NIC reads (cLAN, " +
			"M-VIA) and pay a daemon-serviced round trip on Berkeley VIA.",
		Run: func(sc *Scenario) (*Report, error) {
			t := table.New("get/put latency (us)", "Provider", "Size", "Put", "Get", "Get path")
			sizes := []int{64, 4096}
			if !sc.Quick {
				sizes = append(sizes, 28672)
			}
			for _, m := range provider.All() {
				cfg := sc.Config(m)
				path := "rdma-read"
				if !cfg.Model.SupportsRDMARead {
					path = "daemon-serviced"
				}
				for _, size := range sizes {
					put, get, err := GPLatency(cfg, size)
					if err != nil {
						return nil, err
					}
					t.AddRow(m.Name, size, put, get, path)
				}
			}
			return &Report{Tables: []*table.Table{t}}, nil
		},
	}
}

func expPMEAGER() *Experiment {
	return &Experiment{
		ID:    "PMEAGER",
		Title: "PM ablation: eager-limit crossover in the mp layer",
		PaperClaim: "(design guidance VIBe enables) The optimal eager/rendezvous " +
			"switch point balances the copy cost VIBe measures against the " +
			"rendezvous round trip; sweeping the limit exposes the crossover.",
		Run: func(sc *Scenario) (*Report, error) {
			cfg := sc.Config(provider.MVIA()) // copies make the effect starkest
			const size = 16 * 1024
			t := table.New(fmt.Sprintf("mp 16KB latency vs eager limit (%s)", cfg.Model.Name),
				"Eager limit", "Protocol", "Latency (us)")
			limits := []int{4 * 1024, 32 * 1024}
			if !sc.Quick {
				limits = []int{2 * 1024, 8 * 1024, 32 * 1024}
			}
			for _, lim := range limits {
				mpCfg := mp.DefaultConfig()
				mpCfg.EagerLimit = lim
				lat, err := mpPingPong(cfg, size, mpCfg)
				if err != nil {
					return nil, err
				}
				proto := "eager (copy)"
				if size > lim {
					proto = "rendezvous (zero-copy)"
				}
				t.AddRow(lim, proto, lat)
			}
			return &Report{Tables: []*table.Table{t}}, nil
		},
	}
}
