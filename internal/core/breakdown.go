package core

import (
	"fmt"

	"vibe/internal/provider"
	"vibe/internal/table"
	"vibe/internal/vmem"
)

// Breakdown decomposes one-way base-configuration latency into the
// pipeline components of the provider model — the "identify how much time
// is spent in each of the components and pinpoint the bottlenecks" use
// the paper's §3 promises for VIBe. The decomposition is analytic (from
// the cost model), and ValidateBreakdown checks it against the measured
// ping-pong latency, so a drifting engine cannot silently invalidate it.
type Breakdown struct {
	Size int

	HostPost     float64 // descriptor build + doorbell (+ copies/translation on M-VIA)
	NicSend      float64 // doorbell processing, descriptor fetch, per-fragment work
	Translation  float64 // NIC-side address translation (steady state: hits)
	DMA          float64 // host<->NIC data movement, both sides, critical path
	Wire         float64 // serialization + links + switch, critical path
	NicRecv      float64 // receive-side per-fragment work
	HostComplete float64 // completion write + status check (+ receive copy on M-VIA)

	TotalUs float64
}

// components returns the labeled values in presentation order.
func (b Breakdown) components() []struct {
	Name string
	Us   float64
} {
	return []struct {
		Name string
		Us   float64
	}{
		{"host post (copies, doorbell)", b.HostPost},
		{"NIC send (doorbell, fetch, fragments)", b.NicSend},
		{"address translation", b.Translation},
		{"DMA (critical path)", b.DMA},
		{"wire (critical path)", b.Wire},
		{"NIC receive", b.NicRecv},
		{"completion + check (+ recv copy)", b.HostComplete},
	}
}

// AnalyzeLatency computes the one-way latency breakdown for the base
// configuration (100% reuse, one segment, polling) at the given size.
// Fragments pipeline across the DMA/wire/DMA stages, so only the first
// fragment's full traversal plus the remaining fragments' bottleneck
// stage land on the critical path; the decomposition attributes the
// pipelined portion to its bottleneck stage.
func AnalyzeLatency(m *provider.Model, size int) Breakdown {
	us := func(d interface{ Micros() float64 }) float64 { return d.Micros() }
	b := Breakdown{Size: size}

	frags := (size + m.WireMTU - 1) / m.WireMTU
	if size == 0 {
		frags = 1
	}
	pages := (size + vmem.PageSize - 1) / vmem.PageSize
	if pages == 0 {
		pages = 1
	}

	// Host posting path (the receive pre-post is off the critical path in
	// the ping-pong steady state, but the send post is on it).
	b.HostPost = us(m.PostSendCost) + us(m.DoorbellCost)
	if m.HostCopies {
		b.HostPost += float64(size) * us(m.CopyPerByte)
	}
	if m.TranslationAt == provider.TranslateAtHost {
		b.HostPost += float64(pages) * us(m.HostXlatePerPage)
	}

	// NIC send engine: one doorbell+fetch, then per-fragment work. The
	// per-fragment processing serializes on the NIC processor.
	b.NicSend = us(m.DoorbellProc) + us(m.DescFetch) + float64(frags)*us(m.PerFragment)

	// Steady-state translation: hits (base configuration reuses one
	// buffer, so the cache holds it after warmup).
	if m.TranslationAt == provider.TranslateAtNIC {
		perPage := us(m.XlateHit)
		if m.TablesAt == provider.TablesInNICMemory {
			perPage = us(m.XlateNICTable)
		}
		b.Translation = float64(pages) * perPage * 2 // send and receive sides
	}

	// DMA and wire: fragments pipeline. First fragment traverses
	// everything; later fragments add only the bottleneck stage.
	fragBytes := size
	if fragBytes > m.WireMTU {
		fragBytes = m.WireMTU
	}
	dmaFrag := float64(fragBytes) * us(m.DMAPerByte)
	serFrag := m.Network.SerializationTime(fragBytes + dataHeaderApprox).Micros()
	fixedWire := m.Network.LinkLatency.Micros()*2 + m.Network.SwitchLatency.Micros()

	bottleneck := serFrag
	nicStage := us(m.PerFragment) + dmaFrag
	if nicStage > bottleneck {
		bottleneck = nicStage
	}
	b.DMA = dmaFrag * 2 // first fragment, both crossings
	b.Wire = serFrag + fixedWire
	if frags > 1 {
		// Remaining fragments ride the bottleneck stage; attribute them
		// to wire or DMA according to which bounds the pipeline.
		extra := float64(frags-1) * bottleneck
		if nicStage > serFrag {
			b.DMA += extra
			// The NIC per-fragment share was already counted in NicSend;
			// subtract it to avoid double counting.
			b.DMA -= float64(frags-1) * us(m.PerFragment)
		} else {
			b.Wire += extra
		}
	}

	b.NicRecv = float64(frags) * us(m.PerFragmentRecv)
	b.HostComplete = us(m.CompletionWrite) + us(m.CheckCost)
	if m.HostCopies {
		// Only the final fragment's copy delays completion; earlier
		// copies overlap fragment arrival.
		tail := size % m.WireMTU
		if tail == 0 && size > 0 {
			tail = m.WireMTU
		}
		b.HostComplete += float64(tail) * us(m.CopyPerByte)
	}

	for _, c := range b.components() {
		b.TotalUs += c.Us
	}
	return b
}

// dataHeaderApprox mirrors the engine's per-packet wire header.
const dataHeaderApprox = 32

// ValidateBreakdown measures the actual base latency and reports the
// relative error of the analytic total.
func ValidateBreakdown(cfg Config, size int) (analytic, measured, relErr float64, err error) {
	b := AnalyzeLatency(cfg.Model, size)
	r, err := Latency(cfg, size, XferOpts{})
	if err != nil {
		return 0, 0, 0, err
	}
	analytic, measured = b.TotalUs, r.LatencyUs
	if measured > 0 {
		relErr = (analytic - measured) / measured
		if relErr < 0 {
			relErr = -relErr
		}
	}
	return analytic, measured, relErr, nil
}

func expBREAK() *Experiment {
	return &Experiment{
		ID:    "BREAK",
		Title: "Component breakdown: where one-way latency goes",
		PaperClaim: "(the §3 use case: 'identify how much time is spent in each " +
			"of the components... and pinpoint the bottlenecks') M-VIA's budget " +
			"is dominated by kernel copies at large sizes and the syscall " +
			"doorbell at small; Berkeley VIA's by LANai per-fragment firmware; " +
			"cLAN's by the wire itself.",
		Run: func(sc *Scenario) (*Report, error) {
			var tables []*table.Table
			sizes := []int{4, 4096, 28672}
			if sc.Quick {
				sizes = []int{4, 28672}
			}
			for _, m := range provider.All() {
				cfg := sc.Config(m)
				headers := append([]string{"component"}, sizeHeaders(sizes)...)
				t := table.New(fmt.Sprintf("%s one-way latency breakdown (us)", m.Name), headers...)
				rows := map[string][]interface{}{}
				var order []string
				for _, size := range sizes {
					b := AnalyzeLatency(cfg.Model, size)
					for _, c := range b.components() {
						if _, ok := rows[c.Name]; !ok {
							order = append(order, c.Name)
							rows[c.Name] = []interface{}{c.Name}
						}
						rows[c.Name] = append(rows[c.Name], c.Us)
					}
					if _, ok := rows["TOTAL (analytic)"]; !ok {
						order = append(order, "TOTAL (analytic)", "measured", "error")
						rows["TOTAL (analytic)"] = []interface{}{"TOTAL (analytic)"}
						rows["measured"] = []interface{}{"measured"}
						rows["error"] = []interface{}{"error"}
					}
					an, me, re, err := ValidateBreakdown(cfg, size)
					if err != nil {
						return nil, err
					}
					rows["TOTAL (analytic)"] = append(rows["TOTAL (analytic)"], an)
					rows["measured"] = append(rows["measured"], me)
					rows["error"] = append(rows["error"], fmt.Sprintf("%.1f%%", re*100))
				}
				for _, name := range order {
					t.AddRow(rows[name]...)
				}
				tables = append(tables, t)
			}
			return &Report{Tables: tables, Notes: []string{
				"The analytic totals come from the cost model; 'measured' runs the " +
					"actual ping-pong. Residual error reflects pipelining effects the " +
					"closed form approximates.",
			}}, nil
		},
	}
}

func sizeHeaders(sizes []int) []string {
	var hs []string
	for _, s := range sizes {
		hs = append(hs, fmt.Sprintf("%dB", s))
	}
	return hs
}
