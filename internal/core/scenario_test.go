package core

import (
	"path/filepath"
	"reflect"
	"testing"

	"vibe/internal/provider"
)

func TestDefaultScenarioMatchesLegacyConfig(t *testing.T) {
	m := provider.CLAN()
	for _, quick := range []bool{false, true} {
		got := DefaultScenario(quick).Config(m)
		want := DefaultConfig(m)
		if quick {
			want.Iters, want.Warmup, want.BWMessages, want.NonDataReps = 20, 5, 40, 3
		}
		// The scenario config derives a clone; compare by value.
		if *got.Model != *want.Model {
			t.Fatalf("quick=%v: derived model differs from the base", quick)
		}
		got.Model, want.Model = nil, nil
		if got != want {
			t.Fatalf("quick=%v: config = %+v, want %+v", quick, got, want)
		}
	}
}

func TestScenarioConfigAppliesOverrides(t *testing.T) {
	sc, err := NewScenario(ScenarioSpec{
		Scenario: provider.Scenario{Set: map[string]string{"DoorbellCost": "2us"}},
		Run:      RunOverrides{Seed: 7, Iters: 33, Warmup: 4, BWMessages: 11, NonDataReps: 2},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	base := provider.CLAN()
	cfg := sc.Config(base)
	if got := cfg.Model.DoorbellCost.Micros(); got != 2 {
		t.Fatalf("DoorbellCost = %vus, want 2", got)
	}
	if base.DoorbellCost == cfg.Model.DoorbellCost {
		t.Fatal("override leaked into the base model")
	}
	if cfg.Seed != 7 || cfg.Iters != 33 || cfg.Warmup != 4 || cfg.BWMessages != 11 || cfg.NonDataReps != 2 {
		t.Fatalf("run overrides not applied: %+v", cfg)
	}
}

func TestNewScenarioValidatesUpFront(t *testing.T) {
	if _, err := NewScenario(ScenarioSpec{
		Scenario: provider.Scenario{Base: "nope"},
	}, false); err == nil {
		t.Fatal("unknown base accepted")
	}
	if _, err := NewScenario(ScenarioSpec{
		Scenario: provider.Scenario{Set: map[string]string{"DoorbellCost": "soon"}},
	}, false); err == nil {
		t.Fatal("bad override value accepted")
	}
}

func TestExpandSweeps(t *testing.T) {
	specs, err := ExpandSweeps(ScenarioSpec{}, []string{"TLBCapacity=8,32", "WireMTU=1500,4096,9000"})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 6 {
		t.Fatalf("grid has %d cells, want 6", len(specs))
	}
	// First directive varies slowest; the last axis is the fast one.
	wantNames := []string{
		"TLBCapacity=8,WireMTU=1500", "TLBCapacity=8,WireMTU=4096", "TLBCapacity=8,WireMTU=9000",
		"TLBCapacity=32,WireMTU=1500", "TLBCapacity=32,WireMTU=4096", "TLBCapacity=32,WireMTU=9000",
	}
	for i, spec := range specs {
		if spec.Name != wantNames[i] {
			t.Fatalf("cell %d = %q, want %q", i, spec.Name, wantNames[i])
		}
	}
	// Cells inherit and extend the base's overrides without sharing maps.
	base := ScenarioSpec{Scenario: provider.Scenario{Name: "tuned", Set: map[string]string{"DoorbellCost": "2us"}}}
	specs, err = ExpandSweeps(base, []string{"TLBCapacity=8,32"})
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Name != "tuned:TLBCapacity=8" {
		t.Fatalf("cell name = %q", specs[0].Name)
	}
	specs[0].Set["DoorbellCost"] = "overwritten"
	if specs[1].Set["DoorbellCost"] != "2us" || base.Set["DoorbellCost"] != "2us" {
		t.Fatal("sweep cells share the override map")
	}

	for _, bad := range [][]string{
		{"TLBCapacity"},         // no '='
		{"TLBCapacity="},        // no values
		{"NoSuchKnob=1,2"},      // unknown parameter
		{"TLBCapacity=8,,32"},   // empty value
		{"TLBCapacity=8,large"}, // invalid value
	} {
		if _, err := ExpandSweeps(ScenarioSpec{}, bad); err == nil {
			t.Errorf("ExpandSweeps(%v) accepted", bad)
		}
	}
}

// TestScenarioFileRoundTripRunsIdentically is the round-trip property the
// scenario subsystem promises: serializing a scenario to JSON, loading it
// back, and running an experiment must produce results identical to the
// in-memory scenario.
func TestScenarioFileRoundTripRunsIdentically(t *testing.T) {
	spec := ScenarioSpec{
		Scenario: provider.Scenario{
			Name: "roundtrip",
			Base: "clan",
			Set:  map[string]string{"DoorbellCost": "2us", "TLBCapacity": "16"},
		},
		Run: RunOverrides{Seed: 3, Iters: 10, Warmup: 2, BWMessages: 8, NonDataReps: 2},
	}
	inMem, err := NewScenario(spec, true)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sc.json")
	if err := spec.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadScenario(path, true)
	if err != nil {
		t.Fatal(err)
	}

	e := ExperimentMust(t, "F1")
	rep1, err := e.Run(inMem)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := e.Run(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatal("loaded scenario produced different results than the in-memory one")
	}

	// And the loaded spec itself must be the one we saved.
	if !reflect.DeepEqual(loaded.Spec, inMem.Spec) {
		t.Fatalf("spec round trip: %+v -> %+v", inMem.Spec, loaded.Spec)
	}
}
