package core

import (
	"math"
	"testing"

	"vibe/internal/provider"
)

// quickCfg shrinks sweeps for unit tests.
func quickCfg(m *provider.Model) Config {
	return cfgFor(m, true)
}

// within asserts |got-want| <= tol.
func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.3f, want %.3f (±%.3f)", name, got, want, tol)
	}
}

// Table 1 of the paper, the calibration ground truth.
var table1 = map[string]NonDataCosts{
	"mvia": {CreateVi: 93, DestroyVi: 0.19, EstablishConn: 6465, TeardownConn: 3, CreateCq: 17, DestroyCq: 8.44},
	"bvia": {CreateVi: 28, DestroyVi: 0.19, EstablishConn: 496, TeardownConn: 9, CreateCq: 206, DestroyCq: 35},
	"clan": {CreateVi: 3, DestroyVi: 0.11, EstablishConn: 2454, TeardownConn: 155, CreateCq: 54, DestroyCq: 15},
}

func TestTable1Calibration(t *testing.T) {
	for _, m := range provider.All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			got, err := NonData(quickCfg(m))
			if err != nil {
				t.Fatal(err)
			}
			want := table1[m.Name]
			within(t, "CreateVi", got.CreateVi, want.CreateVi, 0.5)
			within(t, "DestroyVi", got.DestroyVi, want.DestroyVi, 0.05)
			// Connection establishment crosses the simulated network, so
			// allow 1%.
			within(t, "EstablishConn", got.EstablishConn, want.EstablishConn, want.EstablishConn*0.01)
			within(t, "TeardownConn", got.TeardownConn, want.TeardownConn, 0.5)
			within(t, "CreateCq", got.CreateCq, want.CreateCq, 0.5)
			within(t, "DestroyCq", got.DestroyCq, want.DestroyCq, 0.5)
		})
	}
}

func TestTable1Orderings(t *testing.T) {
	costs := map[string]NonDataCosts{}
	for _, m := range provider.All() {
		c, err := NonData(quickCfg(m))
		if err != nil {
			t.Fatal(err)
		}
		costs[m.Name] = c
	}
	// The paper's headline observations.
	if !(costs["mvia"].EstablishConn > costs["clan"].EstablishConn &&
		costs["clan"].EstablishConn > costs["bvia"].EstablishConn) {
		t.Error("connection cost ordering mvia > clan > bvia violated")
	}
	if !(costs["bvia"].CreateCq > costs["clan"].CreateCq &&
		costs["clan"].CreateCq > costs["mvia"].CreateCq) {
		t.Error("CQ creation ordering bvia > clan > mvia violated")
	}
	if !(costs["clan"].CreateVi < costs["bvia"].CreateVi &&
		costs["bvia"].CreateVi < costs["mvia"].CreateVi) {
		t.Error("VI creation ordering clan < bvia < mvia violated")
	}
	if !(costs["clan"].TeardownConn > costs["bvia"].TeardownConn) {
		t.Error("cLAN teardown should be the most expensive")
	}
}

// Figure 1: BVIA registration is the most expensive for small buffers;
// M-VIA's per-page slope crosses it by ~20KB.
func TestFig1MemRegistrationShape(t *testing.T) {
	series := map[string]map[float64]float64{}
	for _, m := range provider.All() {
		s, err := MemRegister(quickCfg(m), RegLadder())
		if err != nil {
			t.Fatal(err)
		}
		pts := map[float64]float64{}
		for _, p := range s.Points {
			pts[p.X] = p.Y
		}
		series[m.Name] = pts
	}
	for _, small := range []float64{16, 1024, 4096} {
		if !(series["bvia"][small] > series["mvia"][small] &&
			series["bvia"][small] > series["clan"][small]) {
			t.Errorf("BVIA should be most expensive at %gB: bvia=%.1f mvia=%.1f clan=%.1f",
				small, series["bvia"][small], series["mvia"][small], series["clan"][small])
		}
	}
	// M-VIA overtakes BVIA at the top of the ladder (paper: "more
	// expensive in BVIA for messages of up to 20 KB").
	if !(series["mvia"][28672] > series["bvia"][28672]) {
		t.Errorf("M-VIA should cross BVIA by 28KB: mvia=%.1f bvia=%.1f",
			series["mvia"][28672], series["bvia"][28672])
	}
	// Registration cost grows with size for every provider.
	for name, pts := range series {
		if !(pts[28672] > pts[16]) {
			t.Errorf("%s registration not growing with size", name)
		}
	}
	// Costs stay in the paper's plotted range (up to ~35us).
	for name, pts := range series {
		for x, y := range pts {
			if y > 40 {
				t.Errorf("%s registration at %gB = %.1fus exceeds the paper's range", name, x, y)
			}
		}
	}
}

// Figure 2: deregistration is much cheaper than registration, flat in
// size, below 16us even for 32MB; BVIA most expensive, M-VIA cheapest.
func TestFig2MemDeregistrationShape(t *testing.T) {
	sizes := append(RegLadder(), 32<<20)
	for _, m := range provider.All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			reg, err := MemRegister(quickCfg(m), []int{28672})
			if err != nil {
				t.Fatal(err)
			}
			dereg, err := MemDeregister(quickCfg(m), sizes)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range dereg.Points {
				if p.Y >= 16 {
					t.Errorf("dereg at %gB = %.1fus, paper bound is <16us", p.X, p.Y)
				}
			}
			if dereg.MaxY() >= reg.Points[0].Y {
				t.Errorf("dereg (%.1f) should be cheaper than 28KB registration (%.1f)",
					dereg.MaxY(), reg.Points[0].Y)
			}
			// Flat: 32MB within 2us of 16B.
			first := dereg.Points[0].Y
			last := dereg.Points[len(dereg.Points)-1].Y
			if math.Abs(last-first) > 2 {
				t.Errorf("dereg not flat: %.2f at 16B vs %.2f at 32MB", first, last)
			}
		})
	}
	bv, _ := MemDeregister(quickCfg(provider.BVIA()), []int{4096})
	mv, _ := MemDeregister(quickCfg(provider.MVIA()), []int{4096})
	cl, _ := MemDeregister(quickCfg(provider.CLAN()), []int{4096})
	if !(bv.Points[0].Y > cl.Points[0].Y && cl.Points[0].Y > mv.Points[0].Y) {
		t.Errorf("dereg ordering bvia > clan > mvia violated: %.1f %.1f %.1f",
			bv.Points[0].Y, cl.Points[0].Y, mv.Points[0].Y)
	}
}

func TestNonDataDeterminism(t *testing.T) {
	a, err := NonData(quickCfg(provider.BVIA()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NonData(quickCfg(provider.BVIA()))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("non-deterministic NonData: %+v vs %+v", a, b)
	}
}
