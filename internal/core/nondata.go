package core

import (
	"fmt"

	"vibe/internal/bench"
	"vibe/internal/sim"
	"vibe/internal/via"
)

// NonDataCosts are the Table 1 measurements: average cost of each basic
// non-data-transfer operation, in microseconds.
type NonDataCosts struct {
	CreateVi      float64
	DestroyVi     float64
	EstablishConn float64
	TeardownConn  float64
	CreateCq      float64
	DestroyCq     float64
}

// NonData measures the Table 1 operations by timing them inside the
// simulation, repeated cfg.NonDataReps times and averaged. Connection
// establishment is what the client observes between issuing
// ConnectRequest and it returning; teardown is the client's Disconnect
// call.
func NonData(cfg Config) (NonDataCosts, error) {
	sys := via.NewSystemProc(cfg.Model, 2, cfg.Seed, cfg.ProcModel)
	defer sys.Close()
	cfg.instrument(sys)
	var out NonDataCosts
	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
		sys.Eng.Stop()
	}
	reps := cfg.NonDataReps
	if reps < 1 {
		reps = 1
	}

	timeIt := func(ctx *via.Ctx, fn func() error) (float64, error) {
		t0 := ctx.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		return ctx.Now().Sub(t0).Micros(), nil
	}

	sys.Go(0, "nondata-client", func(ctx *via.Ctx) {
		nic := ctx.OpenNic()
		var sumCreate, sumDestroy, sumConn, sumTear, sumCqC, sumCqD float64
		for r := 0; r < reps; r++ {
			var vi *via.Vi
			us, err := timeIt(ctx, func() (e error) {
				vi, e = nic.CreateVi(ctx, via.ViAttributes{}, nil, nil)
				return
			})
			if err != nil {
				fail(err)
				return
			}
			sumCreate += us

			disc := fmt.Sprintf("nd-%d", r)
			us, err = timeIt(ctx, func() error {
				return vi.ConnectRequest(ctx, 1, disc, cfg.Timeout)
			})
			if err != nil {
				fail(err)
				return
			}
			sumConn += us

			us, err = timeIt(ctx, func() error { return vi.Disconnect(ctx) })
			if err != nil {
				fail(err)
				return
			}
			sumTear += us

			us, err = timeIt(ctx, func() error { return vi.Destroy(ctx) })
			if err != nil {
				fail(err)
				return
			}
			sumDestroy += us

			var cq *via.CQ
			us, err = timeIt(ctx, func() (e error) {
				cq, e = nic.CreateCQ(ctx, 64)
				return
			})
			if err != nil {
				fail(err)
				return
			}
			sumCqC += us

			us, err = timeIt(ctx, func() error { return cq.Destroy(ctx) })
			if err != nil {
				fail(err)
				return
			}
			sumCqD += us
		}
		n := float64(reps)
		out = NonDataCosts{
			CreateVi:      sumCreate / n,
			DestroyVi:     sumDestroy / n,
			EstablishConn: sumConn / n,
			TeardownConn:  sumTear / n,
			CreateCq:      sumCqC / n,
			DestroyCq:     sumCqD / n,
		}
	})

	sys.Go(1, "nondata-server", func(ctx *via.Ctx) {
		nic := ctx.OpenNic()
		for r := 0; r < reps; r++ {
			vi, err := nic.CreateVi(ctx, via.ViAttributes{}, nil, nil)
			if err != nil {
				fail(err)
				return
			}
			req, err := nic.ConnectWait(ctx, fmt.Sprintf("nd-%d", r), cfg.Timeout)
			if err != nil {
				fail(err)
				return
			}
			if err := req.Accept(ctx, vi); err != nil {
				fail(err)
				return
			}
			// Wait for the client's disconnect to arrive before reusing
			// state for the next repetition.
			for vi.State() == via.ViConnected {
				ctx.Sleep(10 * sim.Microsecond)
			}
			if err := vi.Destroy(ctx); err != nil {
				fail(err)
				return
			}
		}
	})

	if err := sys.Run(); err != nil {
		return out, err
	}
	return out, runErr
}

// RegLadder is the buffer-length x-axis of Figures 1 and 2.
func RegLadder() []int {
	return []int{16, 64, 256, 1024, 4096, 12288, 20480, 28672}
}

// MemRegister measures the cost of registering a fresh buffer of each
// size (Figure 1). Every repetition registers a different buffer, so no
// caching can hide the work.
func MemRegister(cfg Config, sizes []int) (*bench.Series, error) {
	return memRegDereg(cfg, sizes, fmt.Sprintf("%s", cfg.Model.Name), false)
}

// MemDeregister measures the cost of deregistering regions of each size
// (Figure 2).
func MemDeregister(cfg Config, sizes []int) (*bench.Series, error) {
	return memRegDereg(cfg, sizes, fmt.Sprintf("%s", cfg.Model.Name), true)
}

func memRegDereg(cfg Config, sizes []int, name string, dereg bool) (*bench.Series, error) {
	ylabel := "registration cost (us)"
	if dereg {
		ylabel = "deregistration cost (us)"
	}
	s := bench.NewSeries(name, "buffer length (bytes)", ylabel)
	reps := cfg.NonDataReps
	if reps < 1 {
		reps = 1
	}
	sys := via.NewSystemProc(cfg.Model, 1, cfg.Seed, cfg.ProcModel)
	defer sys.Close()
	cfg.instrument(sys)
	var runErr error
	sys.Go(0, "memreg", func(ctx *via.Ctx) {
		nic := ctx.OpenNic()
		for _, size := range sizes {
			var sum float64
			for r := 0; r < reps; r++ {
				buf := ctx.Malloc(size)
				t0 := ctx.Now()
				h, err := nic.RegisterMem(ctx, buf)
				if err != nil {
					runErr = err
					return
				}
				regUs := ctx.Now().Sub(t0).Micros()
				t1 := ctx.Now()
				if err := nic.DeregisterMem(ctx, h); err != nil {
					runErr = err
					return
				}
				deregUs := ctx.Now().Sub(t1).Micros()
				if dereg {
					sum += deregUs
				} else {
					sum += regUs
				}
			}
			s.Add(float64(size), sum/float64(reps))
		}
	})
	if err := sys.Run(); err != nil {
		return s, err
	}
	return s, runErr
}
