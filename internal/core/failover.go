package core

import (
	"fmt"
	"strings"

	"vibe/internal/bench"
	"vibe/internal/fault"
	"vibe/internal/provider"
	"vibe/internal/sim"
	"vibe/internal/table"
	"vibe/internal/via"
)

// FailoverResult is one fabric-outage measurement: the usual routed
// goodput numbers plus the recovery evidence — how many packets left
// their primary path, how many found no path at all, and what the
// reliability layer had to do about it.
type FailoverResult struct {
	TopoResult

	SendOK       uint64 // sends completed StatusSuccess
	SendFailed   uint64 // sends completed Flushed or TransportError
	PostRejected uint64 // posts refused (connection no longer usable)

	Retransmits uint64 // go-back-N retransmissions, all NICs
	Rerouted    uint64 // packets carried over a non-primary path
	Unroutable  uint64 // packets dropped with every candidate path dead
	Callbacks   uint64 // asynchronous error callbacks fired
	ConnBroken  bool   // any VI escalated to the error state

	// RerouteLatencyUs is how long after the outage began the first
	// packet was steered onto an alternate path (-1: never rerouted).
	RerouteLatencyUs float64
}

// failoverStreamStart is the virtual time the senders begin streaming:
// past the slowest provider's connection storm, so outage windows land
// at identical stream offsets on every model.
const failoverStreamStart = 50 * sim.Millisecond

// failoverGap paces each sender's open-loop stream.
const failoverGap = 250 * sim.Microsecond

// FailoverRun drives a paced incast — senders hosts each streaming msgs
// reliable RDMA writes of the given size at host 0 — while cfg.Fault's
// outage plan is active, and reports how routing and the reliability
// layer absorbed it. Posts follow an absolute open-loop schedule, so an
// outage delays the wire, never the offered load. outageStart anchors
// the reroute-latency measurement (pass 0 for fault-free runs). Every
// wait is bounded, so the run terminates whatever the plan severs.
func FailoverRun(cfg Config, senders, msgs, size int, outageStart sim.Time) (FailoverResult, error) {
	res := FailoverResult{
		TopoResult:       TopoResult{Hosts: senders + 1, Messages: senders * msgs, Size: size},
		RerouteLatencyUs: -1,
	}
	sys := via.NewSystemProc(cfg.Model, senders+1, cfg.Seed, cfg.ProcModel)
	defer sys.Close()
	cfg.instrument(sys)

	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
		sys.Eng.Stop()
	}
	onError := func(*via.Ctx, via.ErrorEvent) {
		res.Callbacks++
		res.ConnBroken = true
	}
	attrs := via.ViAttributes{Reliability: via.ReliableDelivery, EnableRdmaWrite: true}
	targets := make([]via.AddressSegment, senders+1)
	var registered int
	t0 := sim.Time(0).Add(failoverStreamStart)
	var t1 sim.Time

	// Recovery from an outage is bounded by the full backoff ladder; a
	// drain longer than that means the descriptor is stuck.
	drainBound := 500 * sim.Millisecond

	for s := 1; s <= senders; s++ {
		s := s
		disc := fmt.Sprintf("fo-%d", s)
		sys.Go(0, "fo-sink-"+disc, func(ctx *via.Ctx) {
			nic := ctx.OpenNic()
			nic.SetErrorCallback(onError)
			vi, err := nic.CreateVi(ctx, attrs, nil, nil)
			if err != nil {
				fail(err)
				return
			}
			buf := ctx.Malloc(size)
			h, err := nic.RegisterMem(ctx, buf)
			if err != nil {
				fail(err)
				return
			}
			targets[s] = via.AddressSegment{Addr: buf.Addr(), Handle: h}
			registered++
			req, err := nic.ConnectWait(ctx, disc, cfg.Timeout)
			if err != nil {
				fail(fmt.Errorf("wait %s: %w", disc, err))
				return
			}
			if err := req.Accept(ctx, vi); err != nil {
				fail(fmt.Errorf("accept %s: %w", disc, err))
			}
		})
		sys.Go(s, "fo-src-"+disc, func(ctx *via.Ctx) {
			nic := ctx.OpenNic()
			nic.SetErrorCallback(onError)
			vi, err := nic.CreateVi(ctx, attrs, nil, nil)
			if err != nil {
				fail(err)
				return
			}
			if err := vi.ConnectRequest(ctx, 0, disc, cfg.Timeout); err != nil {
				fail(fmt.Errorf("connect %s: %w", disc, err))
				return
			}
			for registered < senders { // address exchange
				ctx.Sleep(10 * sim.Microsecond)
			}
			buf := ctx.Malloc(size)
			h, err := nic.RegisterMem(ctx, buf)
			if err != nil {
				fail(err)
				return
			}
			if d := t0.Sub(ctx.Now()); d > 0 {
				ctx.Sleep(d)
			}
			remote := targets[s]
			classify := func(d *via.Descriptor) {
				if d.Status == via.StatusSuccess {
					res.SendOK++
				} else {
					res.SendFailed++
				}
				if now := ctx.Now(); now > t1 {
					t1 = now
				}
			}
			posted, done := 0, 0
			start := ctx.Now()
			for i := 0; i < msgs; i++ {
				if next := start.Add(sim.Duration(i) * failoverGap); next > ctx.Now() {
					ctx.Sleep(next.Sub(ctx.Now()))
				}
				d := &via.Descriptor{
					Op:     via.OpRdmaWrite,
					Segs:   []via.DataSegment{{Addr: buf.Addr(), Handle: h, Length: size}},
					Remote: &remote,
				}
				if err := vi.PostSend(ctx, d); err != nil {
					res.PostRejected++
				} else {
					posted++
				}
				for {
					d, ok := vi.SendDone(ctx)
					if !ok {
						break
					}
					classify(d)
					done++
				}
			}
			for done < posted {
				d, err := vi.SendWait(ctx, drainBound)
				if err != nil {
					break // timed out or queue flushed empty: stuck sends stay unaccounted
				}
				classify(d)
				done++
			}
		})
	}
	if err := sys.Run(); err != nil && runErr == nil {
		runErr = err
	}
	res.Messages = int(res.SendOK)
	res.CreditStalls = sys.Net.CreditStalls()
	res.MaxQueue = sys.Net.MaxQueueDepth()
	res.Rerouted = sys.Net.Rerouted
	res.Unroutable = sys.Net.Unroutable
	if at, ok := sys.Net.FirstRerouteAt(); ok {
		res.RerouteLatencyUs = at.Sub(outageStart).Micros()
	}
	for k, v := range sys.CollectMetrics().Map() {
		if strings.HasSuffix(k, "window.retransmits") {
			res.Retransmits += uint64(v)
		}
	}
	res.finish(t0, t1)
	return res, runErr
}

// failoverCase is one XFAILOVER scenario: an outage plan over the
// fat-tree's spines plus the instant it begins.
type failoverCase struct {
	name  string
	plan  *fault.Plan
	start sim.Time
}

// failoverConfig shapes the XFAILOVER fabric: a fat-tree with two spines
// (degree 2), so host 0's primary spine has exactly one same-cost
// alternate, and 8-packet switch buffers. A scenario that already
// selects a topology wins, like the other topology experiments.
func failoverConfig(sc *Scenario, m *provider.Model) Config {
	cfg := sc.Config(m)
	if cfg.Model.Network.Topology == "" {
		cfg.Model.Network.Topology = "fattree"
		cfg.Model.Network.TopologyDegree = 2
		cfg.Model.Network.SwitchBufPkts = 8
	}
	return cfg
}

func expXFAILOVER() *Experiment {
	return &Experiment{
		ID:    "XFAILOVER",
		Title: "Extension: spine outage mid-incast — failover routing and recovery",
		PaperClaim: "(robustness extension) Killing the spine an incast routes " +
			"through must not kill the workload: multipath failover steers " +
			"every packet onto the surviving spine within one send, and even " +
			"a full spine blackout shorter than the retransmission ladder is " +
			"absorbed by go-back-N recovery with zero application-visible " +
			"errors — the transport-recovery behavior the VIA error model " +
			"prescribes, now exercised by the fabric itself.",
		Run: func(sc *Scenario) (*Report, error) {
			const senders, size = 4, 2048
			msgs := 120
			if sc.Quick {
				msgs = 40
			}
			// 5 hosts at degree 2: leaves 0-2, spines 3-4; host 0's
			// destination-mod-k primary spine is switch 3.
			const leaves = 3
			prim, altn := leaves, leaves+1
			outage := sim.Time(0).Add(52 * sim.Millisecond)
			cases := []failoverCase{
				{"clean", nil, 0},
				{"spine-down", &fault.Plan{Faults: []fault.Spec{
					{Kind: fault.KindSwitchDown, Switch: &prim, Start: "52ms", End: "56ms"},
				}}, outage},
				{"blackout", &fault.Plan{Faults: []fault.Spec{
					{Kind: fault.KindSwitchDown, Switch: &prim, Start: "52ms", End: "54ms"},
					{Kind: fault.KindSwitchDown, Switch: &altn, Start: "52ms", End: "54ms"},
				}}, outage},
			}
			var tables []*table.Table
			g := bench.NewGroup("spine-outage goodput (4 -> 1 paced incast)")
			for _, m := range provider.All() {
				t := table.New(
					fmt.Sprintf("%s: %dx%d 2KB reliable RDMA writes, spine outage at 52ms", m.Name, senders, msgs),
					"Case", "Goodput (MB/s)", "Dip %", "Reroute (us)", "Rerouted", "Unroutable", "Retransmits", "Conn broken")
				s := bench.NewSeries(m.Name, "case (0 clean, 1 spine-down, 2 blackout)", "goodput (MB/s)")
				var clean float64
				for ci, fc := range cases {
					cfg := failoverConfig(sc, m)
					cfg.Fault = fc.plan
					r, err := FailoverRun(cfg, senders, msgs, size, fc.start)
					if err != nil {
						return nil, fmt.Errorf("xfailover %s %s: %w", m.Name, fc.name, err)
					}
					if fc.name == "clean" {
						clean = r.MBps
					}
					dip := 0.0
					if clean > 0 {
						dip = (clean - r.MBps) / clean * 100
					}
					broken := "no"
					if r.ConnBroken {
						broken = "yes"
					}
					s.Add(float64(ci), r.MBps)
					t.AddRow(fc.name, r.MBps, dip, r.RerouteLatencyUs,
						float64(r.Rerouted), float64(r.Unroutable), float64(r.Retransmits), broken)
				}
				tables = append(tables, t)
				g.Add(s)
			}
			return &Report{Groups: []*bench.Group{g}, Tables: tables, Notes: []string{
				"Routes are picked per send, so a dead spine diverts traffic " +
					"within one message gap (the reroute column is the lag from " +
					"outage start to the first diverted packet) and nothing is " +
					"lost — the goodput dip comes only from sharing the " +
					"surviving spine. The blackout leaves cross-leaf packets " +
					"unroutable for 2ms; shorter than every provider's " +
					"retransmission ladder, so go-back-N absorbs it: " +
					"retransmits rise, no error callback fires, and goodput " +
					"recovers without operator-visible failures.",
			}}, nil
		},
	}
}
