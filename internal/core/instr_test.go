package core

import (
	"strings"
	"testing"

	"vibe/internal/metrics"
	"vibe/internal/prof"
	"vibe/internal/provider"
	"vibe/internal/trace"
	"vibe/internal/via"
)

// instrSweep runs one reliable latency sweep on BVIA (NIC TLB with
// host-resident tables, so every metric family is exercised) with the
// given instrumentation attached.
func instrSweep(t *testing.T, instr *Instr) (lat, cpuU []float64) {
	t.Helper()
	cfg := DefaultConfig(provider.BVIA())
	cfg.Iters, cfg.Warmup = 12, 3
	cfg.Instr = instr
	l, c, err := LatencySweep(cfg, []int{4, 4096}, XferOpts{Reliability: via.ReliableDelivery})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range l.Points {
		lat = append(lat, p.Y)
	}
	for _, p := range c.Points {
		cpuU = append(cpuU, p.Y)
	}
	return lat, cpuU
}

// TestInstrumentationZeroOverhead is the tentpole's regression guard:
// attaching metrics collection, tracing, span recording, and profiling
// must not change a single result bit. Counters and spans never touch
// virtual time, and all benchmark outputs derive from virtual time alone
// — so the comparison is exact equality, not a tolerance.
func TestInstrumentationZeroOverhead(t *testing.T) {
	baseLat, baseCPU := instrSweep(t, nil)

	col := metrics.NewCollector()
	rec := &trace.Recorder{Limit: 1 << 16}
	profile := prof.New()
	instLat, instCPU := instrSweep(t, &Instr{
		Metrics:    col,
		Trace:      rec,
		SpanSample: 1,
		Profile:    profile.Scope("test"),
	})

	for i := range baseLat {
		if instLat[i] != baseLat[i] {
			t.Errorf("latency[%d]: instrumented %v != bare %v", i, instLat[i], baseLat[i])
		}
		if instCPU[i] != baseCPU[i] {
			t.Errorf("cpu[%d]: instrumented %v != bare %v", i, instCPU[i], baseCPU[i])
		}
	}
	if rec.Len() == 0 {
		t.Error("trace recorder captured nothing")
	}
	if col.Systems() == 0 {
		t.Error("collector merged no systems")
	}
	if profile.Len() == 0 {
		t.Error("profiler attributed nothing")
	}
	if v, ok := col.Snapshot().Get("span.completed"); !ok || v == 0 {
		t.Error("span recording enabled but no spans completed")
	}
}

// TestInstrumentationCoverage checks the collector sees every component
// family the metrics layer promises: engine, CPUs, TLB, reliability
// window, NIC data path, VIPL counters, and the fabric.
func TestInstrumentationCoverage(t *testing.T) {
	col := metrics.NewCollector()
	instrSweep(t, &Instr{Metrics: col, SpanSample: 1})

	snap := col.Snapshot()
	mustHave := []string{
		"sim.events_dispatched",
		"cpu0.busy_ns",
		"cpu1.spin_ns",
		"nic0.tlb.misses",
		"nic0.window.acked",
		"nic0.frags.sent",
		"nic0.busy.doorbell_ns",
		"nic0.busy.dma_ns",
		"nic1.dma.bytes_in",
		"via0.sends_posted",
		"via1.recvs_completed",
		"link0.tx_bytes",
		"fabric.bytes",
		"span.sampled",
		"span.send.total_ns",
		"span.send.wire_ns",
		"span.recv.total_ns",
	}
	for _, key := range mustHave {
		v, ok := snap.Get(key)
		if !ok {
			t.Errorf("metric %q missing from snapshot", key)
			continue
		}
		if v == 0 && !strings.Contains(key, "window") {
			t.Errorf("metric %q is zero; expected activity", key)
		}
	}
	// A reliable sweep must actually ack through the window.
	if v, _ := snap.Get("nic0.window.acked"); v == 0 {
		t.Error("reliable sweep produced no window acks")
	}
	// The flattened form must expose histogram percentiles.
	m := snap.Map()
	for _, k := range []string{"span.send.total_ns.p50", "span.send.total_ns.p99", "span.send.dma_ns.p90"} {
		if m[k] <= 0 {
			t.Errorf("flattened percentile %q = %v, want > 0", k, m[k])
		}
	}
}
