package core

import (
	"fmt"
	"io"

	"vibe/internal/bench"
	"vibe/internal/provider"
	"vibe/internal/sim"
	"vibe/internal/stream"
	"vibe/internal/via"
)

// StreamThroughput measures the sockets-like layer's one-way throughput:
// the writer pushes totalBytes as fast as the window allows and the
// reader drains continuously; MB/s is measured at the reader.
func StreamThroughput(cfg Config, totalBytes int, scfg stream.Config) (float64, error) {
	sys := via.NewSystemProc(cfg.Model, 2, cfg.Seed, cfg.ProcModel)
	defer sys.Close()
	cfg.instrument(sys)
	var mbps float64
	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
		sys.Eng.Stop()
	}

	sys.Go(0, "sock-writer", func(ctx *via.Ctx) {
		c, err := stream.Dial(ctx, 1, "tput", scfg)
		if err != nil {
			fail(err)
			return
		}
		chunk := make([]byte, 16*1024)
		sent := 0
		for sent < totalBytes {
			n := len(chunk)
			if sent+n > totalBytes {
				n = totalBytes - sent
			}
			if _, err := c.Write(ctx, chunk[:n]); err != nil {
				fail(err)
				return
			}
			sent += n
		}
		if err := c.Close(ctx); err != nil {
			fail(err)
		}
	})
	sys.Go(1, "sock-reader", func(ctx *via.Ctx) {
		c, err := stream.Listen(ctx, "tput", scfg)
		if err != nil {
			fail(err)
			return
		}
		buf := make([]byte, 16*1024)
		t0 := ctx.Now()
		got := 0
		for {
			n, err := c.Read(ctx, buf)
			got += n
			if err == io.EOF {
				break
			}
			if err != nil {
				fail(err)
				return
			}
		}
		elapsed := ctx.Now().Sub(t0)
		if got != totalBytes {
			fail(fmt.Errorf("stream throughput: read %d of %d bytes", got, totalBytes))
			return
		}
		if elapsed > 0 {
			mbps = float64(got) / elapsed.Seconds() / 1e6
		}
	})
	if err := sys.Run(); err != nil {
		return 0, err
	}
	return mbps, runErr
}

// StreamPingPong measures the layer's request/reply latency for n-byte
// messages (one-way, RTT/2).
func StreamPingPong(cfg Config, n int, scfg stream.Config) (float64, error) {
	sys := via.NewSystemProc(cfg.Model, 2, cfg.Seed, cfg.ProcModel)
	defer sys.Close()
	cfg.instrument(sys)
	total := cfg.Warmup + cfg.Iters
	var lat float64
	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
		sys.Eng.Stop()
	}
	echo := func(ctx *via.Ctx, c *stream.Conn, initiator bool) {
		buf := make([]byte, n)
		var t0 sim.Time
		for i := 0; i < total; i++ {
			if initiator {
				if i == cfg.Warmup {
					t0 = ctx.Now()
				}
				if _, err := c.Write(ctx, buf); err != nil {
					fail(err)
					return
				}
			}
			got := 0
			for got < n {
				k, err := c.Read(ctx, buf[got:])
				if err != nil {
					fail(err)
					return
				}
				got += k
			}
			if !initiator {
				if _, err := c.Write(ctx, buf); err != nil {
					fail(err)
					return
				}
			}
		}
		if initiator {
			lat = ctx.Now().Sub(t0).Micros() / float64(cfg.Iters) / 2
		}
	}
	sys.Go(0, "sock-client", func(ctx *via.Ctx) {
		c, err := stream.Dial(ctx, 1, "pp", scfg)
		if err != nil {
			fail(err)
			return
		}
		echo(ctx, c, true)
	})
	sys.Go(1, "sock-server", func(ctx *via.Ctx) {
		c, err := stream.Listen(ctx, "pp", scfg)
		if err != nil {
			fail(err)
			return
		}
		echo(ctx, c, false)
	})
	if err := sys.Run(); err != nil {
		return 0, err
	}
	return lat, runErr
}

func expPMSOCK() *Experiment {
	return &Experiment{
		ID:    "PMSOCK",
		Title: "PM: sockets-like stream layer (the paper's reference [17])",
		PaperClaim: "(the sockets-over-VIA model the paper cites) A copy-based " +
			"byte-stream layer keeps most of the raw bandwidth on offloaded " +
			"NICs and adds its staging-copy costs on both sides; small-message " +
			"latency pays header processing and window accounting.",
		Run: func(sc *Scenario) (*Report, error) {
			g := bench.NewGroup("stream layer vs raw VIA")
			latG := bench.NewGroup("stream latency vs raw VIA")
			total := 2 << 20
			if sc.Quick {
				total = 256 << 10
			}
			for _, m := range provider.All() {
				cfg := sc.Config(m)
				raw, _, err := BandwidthSweep(cfg, []int{28672}, XferOpts{})
				if err != nil {
					return nil, err
				}
				tput, err := StreamThroughput(cfg, total, stream.DefaultConfig())
				if err != nil {
					return nil, err
				}
				s := bench.NewSeries(m.Name, "series", "MB/s")
				s.Add(0, raw.MustAt(28672))
				s.Add(1, tput)
				s.Name = fmt.Sprintf("%s raw %.0f MB/s -> stream %.0f MB/s", m.Name, raw.MustAt(28672), tput)
				g.Add(s)

				rawLat, _, err := LatencySweep(cfg, []int{1024}, XferOpts{})
				if err != nil {
					return nil, err
				}
				sockLat, err := StreamPingPong(cfg, 1024, stream.DefaultConfig())
				if err != nil {
					return nil, err
				}
				l := bench.NewSeries(fmt.Sprintf("%s raw %.1fus -> stream %.1fus",
					m.Name, rawLat.MustAt(1024), sockLat), "series", "us")
				l.Add(0, rawLat.MustAt(1024))
				l.Add(1, sockLat)
				latG.Add(l)
			}
			return &Report{Groups: []*bench.Group{g, latG}}, nil
		},
	}
}
