package core

import (
	"testing"

	"vibe/internal/fault"
	"vibe/internal/provider"
	"vibe/internal/via"
)

// rtoFabric shapes the outage-vs-RTO fabric: a degenerate 2-host fat-tree
// (leaves 0,1; spine 2) with no alternate path, so a spine outage is a
// full partition the reliability layer alone must ride out.
func rtoFabric(m *provider.Model) *provider.Model {
	m.Network.Topology = "fattree"
	m.Network.TopologyDegree = 1
	m.Network.SwitchBufPkts = 8
	return m
}

// spinePlan kills the 2-host fat-tree's only spine for the given window.
func spinePlan(start, end string) *fault.Plan {
	sw := 2
	return &fault.Plan{Faults: []fault.Spec{
		{Kind: fault.KindSwitchDown, Switch: &sw, Start: start, End: end},
	}}
}

// TestOutageVsRTOLadder pins the end-to-end survival semantics of fabric
// outages against the retransmission ladder, for every reliable provider
// under both process models:
//
//   - an outage shorter than retransmission exhaustion is absorbed by
//     go-back-N — every send and receive completes, no error callback, no
//     application-visible failure;
//   - an outage outlasting the full ladder severs the connection — exactly
//     one error callback fires and the remaining sends flush with errors.
//
// The two process models must also agree on the exact outcome counts,
// since everything here is deterministic.
func TestOutageVsRTOLadder(t *testing.T) {
	const msgs, size = 40, 2048
	short := spinePlan("11ms", "12.5ms") // inside every provider's ladder
	long := spinePlan("11ms", "400ms")   // outlasts every provider's ladder

	for _, mk := range provider.All() {
		if !mk.Supports(uint8(via.ReliableDelivery)) {
			continue
		}
		t.Run(mk.Name, func(t *testing.T) {
			var got [2][2]FaultOutcome // [short,long][actor,goroutine]
			for pi, pm := range []via.ProcModel{via.ModelActor, via.ModelGoroutine} {
				run := func(plan *fault.Plan) FaultOutcome {
					cfg := DefaultConfig(rtoFabric(mk.Clone()))
					cfg.ProcModel = pm
					cfg.Fault = plan
					out, err := FaultRun(cfg, size, msgs, via.ReliableDelivery)
					if err != nil {
						t.Fatalf("%v: %v", pm, err)
					}
					return out
				}

				s := run(short)
				got[0][pi] = s
				if s.Callbacks != 0 || s.ConnBroken {
					t.Errorf("%v short outage: %d callbacks, broken=%v — want none", pm, s.Callbacks, s.ConnBroken)
				}
				if s.SendFailed != 0 || s.PostRejected != 0 || s.RecvFailed != 0 {
					t.Errorf("%v short outage: failures visible (sends %d, posts %d, recvs %d)",
						pm, s.SendFailed, s.PostRejected, s.RecvFailed)
				}
				if s.SendOK != msgs || s.RecvOK != msgs {
					t.Errorf("%v short outage: %d/%d sends, %d/%d recvs completed",
						pm, s.SendOK, msgs, s.RecvOK, msgs)
				}

				l := run(long)
				got[1][pi] = l
				if l.Callbacks != 1 || !l.ConnBroken {
					t.Errorf("%v long outage: %d callbacks, broken=%v — want exactly 1, broken", pm, l.Callbacks, l.ConnBroken)
				}
				if l.SendFailed == 0 {
					t.Errorf("%v long outage: no sends flushed with errors", pm)
				}
				if l.SendOK >= msgs {
					t.Errorf("%v long outage: all %d sends succeeded through a severed connection", pm, l.SendOK)
				}
			}
			for i, name := range []string{"short", "long"} {
				if got[i][0] != got[i][1] {
					t.Errorf("%s outage: process models disagree: actor=%+v goroutine=%+v",
						name, got[i][0], got[i][1])
				}
			}
		})
	}
}

// TestXFailoverQuick smoke-runs the XFAILOVER registry experiment at quick
// scale: every provider must survive both the single-spine outage and the
// blackout with no broken connections, and the spine-down case must show
// actual rerouting.
func TestXFailoverQuick(t *testing.T) {
	exp, err := ExperimentByID("XFAILOVER")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := exp.Run(DefaultScenario(true))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != len(provider.All()) {
		t.Fatalf("got %d tables, want one per provider", len(rep.Tables))
	}
	for _, tb := range rep.Tables {
		rows := tb.Rows
		if len(rows) != 3 {
			t.Fatalf("%s: %d rows, want clean/spine-down/blackout", tb.Title, len(rows))
		}
		for _, row := range rows {
			if broken := row[len(row)-1]; broken != "no" {
				t.Errorf("%s %v: connection broke during a survivable outage", tb.Title, row[0])
			}
		}
		// spine-down: packets actually left the primary path.
		if rows[1][4] == "0" {
			t.Errorf("%s: spine-down rerouted nothing: %v", tb.Title, rows[1])
		}
	}
}
