package core

import "testing"

// XLOSS pins its run shape (warmup, message count) precisely so that
// quick mode stays comparable to a full run: both sweeps share the
// zero-loss anchor point, which must agree byte-for-byte.
func TestXLOSSQuickAndFullAgreeAtZeroLoss(t *testing.T) {
	e := ExperimentMust(t, "XLOSS")
	quick, err := e.Run(DefaultScenario(true))
	if err != nil {
		t.Fatal(err)
	}
	full, err := e.Run(DefaultScenario(false))
	if err != nil {
		t.Fatal(err)
	}
	qg, fg := quick.Groups[0], full.Groups[0]
	if len(qg.Series) != len(fg.Series) {
		t.Fatalf("series count: quick %d, full %d", len(qg.Series), len(fg.Series))
	}
	for i, qs := range qg.Series {
		fs := fg.Series[i]
		if qs.Name != fs.Name {
			t.Fatalf("series %d name: quick %q, full %q", i, qs.Name, fs.Name)
		}
		qy, qok := qs.At(0)
		fy, fok := fs.At(0)
		if !qok || !fok {
			t.Fatalf("%s: missing zero-loss point (quick %v, full %v)", qs.Name, qok, fok)
		}
		if qy != fy {
			t.Errorf("%s: zero-loss bandwidth differs: quick %v, full %v", qs.Name, qy, fy)
		}
	}
}
