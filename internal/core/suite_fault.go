package core

import (
	"fmt"

	"vibe/internal/fault"
	"vibe/internal/provider"
	"vibe/internal/sim"
	"vibe/internal/table"
	"vibe/internal/via"
)

// FaultOutcome summarizes how a paced streaming transfer fared under a
// fault plan: completions by terminal status on both sides, posts the
// provider rejected after the connection left the connected state, and
// whether the asynchronous error handler fired.
type FaultOutcome struct {
	SendOK       uint64 // sends completed StatusSuccess
	SendFailed   uint64 // sends completed Flushed or TransportError
	RecvOK       uint64 // receives completed StatusSuccess
	RecvFailed   uint64 // receives completed with an error status
	PostRejected uint64 // PostSend calls refused (connection no longer usable)
	Callbacks    uint64 // asynchronous error callbacks fired, both sides
	ConnBroken   bool   // either side's error callback fired
}

// xfaultStreamStart is the virtual time at which the FaultRun client
// begins streaming. It is past the slowest provider's connection setup,
// so time-windowed faults land at the same stream offset on every model.
const xfaultStreamStart = 10 * sim.Millisecond

// xfaultGap paces the stream: one message every gap keeps the transfer
// spread over several milliseconds so windowed faults overlap it.
const xfaultGap = 250 * sim.Microsecond

// FaultRun streams msgs messages of the given size over a single VI at
// the requested reliability level while cfg.Fault is active, and reports
// how the transfer degraded. Every wait is bounded, so the run
// terminates no matter what the plan drops, stalls or severs.
func FaultRun(cfg Config, size, msgs int, rel via.ReliabilityLevel) (FaultOutcome, error) {
	o := XferOpts{Reliability: rel}.normalized()
	sys := via.NewSystemProc(cfg.Model, 2, cfg.Seed, cfg.ProcModel)
	defer sys.Close()
	cfg.instrument(sys)
	var out FaultOutcome

	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
		sys.Eng.Stop()
	}
	onError := func(*via.Ctx, via.ErrorEvent) {
		out.Callbacks++
		out.ConnBroken = true
	}

	// Recovery from a mid-stream fault is bounded by the full backoff
	// ladder; a drain longer than that means the descriptor is stuck.
	drainBound := 500 * sim.Millisecond
	var receiverReady bool

	sys.Go(0, "fault-client", func(ctx *via.Ctx) {
		ep, err := setup(ctx, cfg, o, size, 4, false, true, 1)
		if err != nil {
			fail(err)
			return
		}
		ep.nic.SetErrorCallback(onError)
		for !receiverReady {
			ctx.Sleep(10 * sim.Microsecond)
		}
		if d := sim.Time(xfaultStreamStart).Sub(ctx.Now()); d > 0 {
			ctx.Sleep(d)
		}
		classify := func(d *via.Descriptor) {
			if d.Status == via.StatusSuccess {
				out.SendOK++
			} else {
				out.SendFailed++
			}
		}
		posted, done := 0, 0
		for i := 0; i < msgs; i++ {
			if err := ep.postSend(ep.send[0], size, 0, nil); err != nil {
				out.PostRejected++
			} else {
				posted++
			}
			for {
				d, ok := ep.vi.SendDone(ctx)
				if !ok {
					break
				}
				classify(d)
				done++
			}
			ctx.Sleep(xfaultGap)
		}
		for done < posted {
			d, err := ep.vi.SendWait(ctx, drainBound)
			if err != nil {
				break // timed out or queue flushed empty: stuck sends stay unaccounted
			}
			classify(d)
			done++
		}
	})

	sys.Go(1, "fault-server", func(ctx *via.Ctx) {
		ep, err := setup(ctx, cfg, o, 4, size, false, false, 0)
		if err != nil {
			fail(err)
			return
		}
		ep.nic.SetErrorCallback(onError)
		for i := 0; i < msgs; i++ {
			if err := ep.postRecv(ep.recv[0], size); err != nil {
				fail(err)
				return
			}
		}
		receiverReady = true
		for i := 0; i < msgs; i++ {
			d, err := ep.vi.RecvWait(ctx, drainBound)
			if err != nil {
				break // lost tail (unreliable) or flushed-empty queue
			}
			if d.Status == via.StatusSuccess {
				out.RecvOK++
			} else {
				out.RecvFailed++
			}
		}
	})

	if err := sys.Run(); err != nil {
		return out, err
	}
	return out, runErr
}

// xfaultCase is one row family of the XFAULT table: a named deterministic
// fault plan exercising a single fault kind.
type xfaultCase struct {
	name string
	plan *fault.Plan
}

// xfaultCases covers every fault kind the plan schema knows, each with
// fixed parameters (and a fixed plan seed for the probabilistic ones) so
// reruns reproduce byte-identical outcome tables. Windowed faults are
// placed relative to xfaultStreamStart.
func xfaultCases() []xfaultCase {
	n25 := uint64(25)
	f20, t30 := uint64(20), uint64(30)
	return []xfaultCase{
		{"none", nil},
		{fault.KindDropNth, &fault.Plan{Faults: []fault.Spec{{Kind: fault.KindDropNth, Nth: &n25}}}},
		{fault.KindDropRange, &fault.Plan{Faults: []fault.Spec{{Kind: fault.KindDropRange, From: &f20, To: &t30}}}},
		{fault.KindDrop, &fault.Plan{Seed: 11, Faults: []fault.Spec{{Kind: fault.KindDrop, Prob: 0.08}}}},
		{fault.KindCorrupt, &fault.Plan{Seed: 12, Faults: []fault.Spec{{Kind: fault.KindCorrupt, Prob: 0.08}}}},
		{fault.KindDuplicate, &fault.Plan{Seed: 13, Faults: []fault.Spec{{Kind: fault.KindDuplicate, Prob: 0.10}}}},
		{fault.KindDelay, &fault.Plan{Seed: 14, Faults: []fault.Spec{{Kind: fault.KindDelay, Prob: 0.25, Delay: "40us"}}}},
		{fault.KindJitter, &fault.Plan{Seed: 15, Faults: []fault.Spec{{Kind: fault.KindJitter, Prob: 0.25, Delay: "80us"}}}},
		{fault.KindLinkDown, &fault.Plan{Faults: []fault.Spec{{Kind: fault.KindLinkDown, Start: "11ms", End: "12.5ms"}}}},
		// A partition outlasting the whole backoff ladder: reliable VIs
		// exhaust retransmission, sever the connection and flush; the
		// unreliable level keeps completing sends into the void.
		{"partition", &fault.Plan{Faults: []fault.Spec{{Kind: fault.KindLinkDown, Start: "11ms", End: "400ms"}}}},
		{fault.KindDoorbellStall, &fault.Plan{Seed: 16, Faults: []fault.Spec{{Kind: fault.KindDoorbellStall, Prob: 0.10, Delay: "30us"}}}},
		{fault.KindDMAStall, &fault.Plan{Seed: 17, Faults: []fault.Spec{{Kind: fault.KindDMAStall, Prob: 0.10, Delay: "20us"}}}},
	}
}

func expXFAULT() *Experiment {
	return &Experiment{
		ID:    "XFAULT",
		Title: "Extension: fault kinds vs reliability levels (error semantics)",
		PaperClaim: "(robustness extension) The VIA spec's Table 1 guarantees " +
			"dictate how each reliability level degrades: unreliable VIs drop " +
			"faulted data silently while sends still succeed; reliable delivery " +
			"retransmits through transient faults and severs the connection " +
			"only on exhaustion; reliable reception additionally delivers " +
			"without gaps or duplicates.",
		Run: func(sc *Scenario) (*Report, error) {
			msgs := 40
			if sc.Quick {
				msgs = 12
			}
			levels := []via.ReliabilityLevel{via.Unreliable, via.ReliableDelivery, via.ReliableReception}
			var tables []*table.Table
			for _, m := range provider.All() {
				t := table.New(
					fmt.Sprintf("%s: %d x 2KB paced stream under fault plans", m.Name, msgs),
					"Fault x reliability", "sends ok", "sends failed", "recvs ok", "recvs failed", "posts rejected", "conn broken")
				for _, fc := range xfaultCases() {
					for _, lv := range levels {
						cfg := sc.Config(m)
						if !cfg.Model.Supports(uint8(lv)) {
							continue
						}
						cfg.Fault = fc.plan
						res, err := FaultRun(cfg, 2048, msgs, lv)
						if err != nil {
							return nil, fmt.Errorf("xfault %s %s %s: %w", m.Name, fc.name, lv, err)
						}
						broken := "no"
						if res.ConnBroken {
							broken = "yes"
						}
						t.AddRow(fmt.Sprintf("%s / %s", fc.name, lv),
							float64(res.SendOK), float64(res.SendFailed),
							float64(res.RecvOK), float64(res.RecvFailed),
							float64(res.PostRejected), broken)
					}
				}
				tables = append(tables, t)
			}
			return &Report{Tables: tables, Notes: []string{
				"Duplicated packets can complete an extra posted receive on " +
					"unreliable VIs (no sequence check); the reliable levels " +
					"discard them, so recv counts never exceed sends there.",
			}}, nil
		},
	}
}
