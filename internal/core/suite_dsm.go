package core

import (
	"encoding/binary"
	"fmt"

	"vibe/internal/dsm"
	"vibe/internal/provider"
	"vibe/internal/table"
	"vibe/internal/via"
)

// DSMLockContention measures the distributed-shared-memory layer: the
// time per lock-protected read-modify-write of a shared counter as the
// node count grows — the critical-section cost a DSM application pays,
// combining lock-manager round trips, cache invalidation, page refetch,
// and dirty-page flush.
func DSMLockContention(cfg Config, nodes, incsPerNode int) (usPerOp float64, fetches uint64, err error) {
	sys := via.NewSystemProc(cfg.Model, nodes, cfg.Seed, cfg.ProcModel)
	defer sys.Close()
	cfg.instrument(sys)
	w := dsm.New(sys, dsm.DefaultConfig())
	var runErr error
	var elapsedUs float64
	var totalFetches uint64
	w.Run(func(ctx *via.Ctx, d *dsm.Node) {
		fail := func(e error) {
			if runErr == nil {
				runErr = e
			}
		}
		if e := d.Alloc(ctx, "ctr", 1); e != nil {
			fail(e)
			return
		}
		if e := d.Barrier(ctx); e != nil {
			fail(e)
			return
		}
		start := ctx.Now()
		buf := make([]byte, 8)
		for i := 0; i < incsPerNode; i++ {
			if e := d.Acquire(ctx, 1); e != nil {
				fail(e)
				return
			}
			if e := d.Read(ctx, "ctr", 0, buf); e != nil {
				fail(e)
				return
			}
			binary.LittleEndian.PutUint64(buf, binary.LittleEndian.Uint64(buf)+1)
			if e := d.Write(ctx, "ctr", 0, buf); e != nil {
				fail(e)
				return
			}
			if e := d.Release(ctx, 1); e != nil {
				fail(e)
				return
			}
		}
		if e := d.Barrier(ctx); e != nil {
			fail(e)
			return
		}
		if d.Me() == 0 {
			if e := d.Read(ctx, "ctr", 0, buf); e != nil {
				fail(e)
				return
			}
			if got := binary.LittleEndian.Uint64(buf); got != uint64(nodes*incsPerNode) {
				fail(fmt.Errorf("dsm counter = %d, want %d", got, nodes*incsPerNode))
				return
			}
			elapsedUs = ctx.Now().Sub(start).Micros()
		}
		totalFetches += d.PageFetches
	})
	if e := sys.Run(); e != nil {
		return 0, 0, e
	}
	if runErr != nil {
		return 0, 0, runErr
	}
	return elapsedUs / float64(nodes*incsPerNode), totalFetches, nil
}

func expPMDSM() *Experiment {
	return &Experiment{
		ID:    "PMDSM",
		Title: "PM: distributed-shared-memory layer (the paper's [7])",
		PaperClaim: "(the TreadMarks-over-VIA system the paper's authors built) " +
			"A lock-protected shared-counter update costs a lock round trip plus " +
			"a page fetch plus a flush; the underlying VIA's latency and RDMA " +
			"capabilities set the price, so cLAN-class hardware should halve " +
			"M-VIA's critical-section time.",
		Run: func(sc *Scenario) (*Report, error) {
			t := table.New("DSM lock-protected counter increment (us/op)",
				"Provider", "2 nodes", "3 nodes", "4 nodes")
			incs := 20
			if sc.Quick {
				incs = 8
			}
			for _, m := range provider.All() {
				cfg := sc.Config(m)
				row := []interface{}{m.Name}
				for _, n := range []int{2, 3, 4} {
					us, _, err := DSMLockContention(cfg, n, incs)
					if err != nil {
						return nil, err
					}
					row = append(row, us)
				}
				t.AddRow(row...)
			}
			return &Report{Tables: []*table.Table{t}, Notes: []string{
				"Each op = acquire (manager round trip) + invalidate + page " +
					"refetch (one-sided get) + write + flush (one-sided put + fence) " +
					"+ release. Berkeley VIA pays extra for its daemon-serviced gets.",
			}}, nil
		},
	}
}
