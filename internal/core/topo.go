package core

import (
	"fmt"

	"vibe/internal/fabric"
	"vibe/internal/sim"
	"vibe/internal/via"
)

// TopoResult is one routed-fabric workload measurement: how fast the
// collective finished and how hard the switch fabric worked to carry it.
type TopoResult struct {
	Hosts     int
	Messages  int // total messages carried
	Size      int
	ElapsedUs float64 // timed region: first post to last completion
	MBps      float64 // aggregate goodput over the timed region

	// Fabric congestion evidence, from the switch credit accounting.
	CreditStalls uint64
	MaxQueue     int
}

// finish computes the derived fields from the timed region.
func (r *TopoResult) finish(t0, t1 sim.Time) {
	el := t1.Sub(t0)
	r.ElapsedUs = el.Micros()
	if el > 0 {
		r.MBps = float64(r.Messages) * float64(r.Size) / (float64(el) / float64(sim.Second)) / 1e6
	}
}

// IncastRun drives the N-to-1 incast on whatever topology cfg.Model
// selects: senders hosts each stream msgs reliable RDMA writes of the
// given size at host 0, bulk-posting then reaping, so the fabric (not the
// applications) sets the pace. On a fat-tree the destination-based spine
// selection funnels every flow through one spine and the receiver's
// downlink — the canonical congestion benchmark for a routed fabric.
func IncastRun(cfg Config, senders, msgs, size int) (TopoResult, error) {
	res := TopoResult{Hosts: senders + 1, Messages: senders * msgs, Size: size}
	sys := via.NewSystemProc(cfg.Model, senders+1, cfg.Seed, cfg.ProcModel)
	defer sys.Close()
	cfg.instrument(sys)

	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
		sys.Eng.Stop()
	}
	attrs := via.ViAttributes{Reliability: via.ReliableDelivery, EnableRdmaWrite: true}
	targets := make([]via.AddressSegment, senders+1)
	var registered int
	var started bool
	var t0, t1 sim.Time

	for s := 1; s <= senders; s++ {
		s := s
		disc := fmt.Sprintf("inc-%d", s)
		sys.Go(0, "sink-"+disc, func(ctx *via.Ctx) {
			nic := ctx.OpenNic()
			vi, err := nic.CreateVi(ctx, attrs, nil, nil)
			if err != nil {
				fail(err)
				return
			}
			buf := ctx.Malloc(size)
			h, err := nic.RegisterMem(ctx, buf)
			if err != nil {
				fail(err)
				return
			}
			targets[s] = via.AddressSegment{Addr: buf.Addr(), Handle: h}
			registered++
			req, err := nic.ConnectWait(ctx, disc, cfg.Timeout)
			if err != nil {
				fail(fmt.Errorf("wait %s: %w", disc, err))
				return
			}
			if err := req.Accept(ctx, vi); err != nil {
				fail(fmt.Errorf("accept %s: %w", disc, err))
			}
		})
		sys.Go(s, "src-"+disc, func(ctx *via.Ctx) {
			nic := ctx.OpenNic()
			vi, err := nic.CreateVi(ctx, attrs, nil, nil)
			if err != nil {
				fail(err)
				return
			}
			if err := vi.ConnectRequest(ctx, 0, disc, cfg.Timeout); err != nil {
				fail(fmt.Errorf("connect %s: %w", disc, err))
				return
			}
			for registered < senders { // address exchange
				ctx.Sleep(10 * sim.Microsecond)
			}
			buf := ctx.Malloc(size)
			h, err := nic.RegisterMem(ctx, buf)
			if err != nil {
				fail(err)
				return
			}
			// The first sender to reach the post loop opens the timed
			// region; the burst is simultaneous within one sleep quantum.
			if !started {
				started = true
				t0 = ctx.Now()
			}
			remote := targets[s]
			for i := 0; i < msgs; i++ {
				d := &via.Descriptor{
					Op:     via.OpRdmaWrite,
					Segs:   []via.DataSegment{{Addr: buf.Addr(), Handle: h, Length: size}},
					Remote: &remote,
				}
				if err := vi.PostSend(ctx, d); err != nil {
					fail(fmt.Errorf("%s post %d: %w", disc, i, err))
					return
				}
			}
			for i := 0; i < msgs; i++ {
				d, err := vi.SendWait(ctx, cfg.Timeout)
				if err != nil {
					fail(fmt.Errorf("%s reap %d: %w", disc, i, err))
					return
				}
				if d.Status != via.StatusSuccess {
					fail(fmt.Errorf("%s write %d completed %v", disc, i, d.Status))
					return
				}
			}
			if now := ctx.Now(); now > t1 {
				t1 = now
			}
		})
	}
	if err := sys.Run(); err != nil && runErr == nil {
		runErr = err
	}
	res.CreditStalls = sys.Net.CreditStalls()
	res.MaxQueue = sys.Net.MaxQueueDepth()
	res.finish(t0, t1)
	return res, runErr
}

// AllToAllRun drives the complete exchange: every one of hosts peers
// streams msgs reliable RDMA writes of the given size to every other
// peer, destinations walked in the staggered order (self+k) mod hosts so
// the instantaneous traffic matrix is a rotating permutation rather than
// a synchronized incast. On a torus this exercises every ring direction;
// aggregate goodput measures how much of the bisection the routing
// actually extracts.
func AllToAllRun(cfg Config, hosts, msgs, size int) (TopoResult, error) {
	res := TopoResult{Hosts: hosts, Messages: hosts * (hosts - 1) * msgs, Size: size}
	sys := via.NewSystemProc(cfg.Model, hosts, cfg.Seed, cfg.ProcModel)
	defer sys.Close()
	cfg.instrument(sys)

	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
		sys.Eng.Stop()
	}
	attrs := via.ViAttributes{Reliability: via.ReliableDelivery, EnableRdmaWrite: true}

	// targets[i][j]: host i's sink window for writes arriving from j.
	targets := make([][]via.AddressSegment, hosts)
	for i := range targets {
		targets[i] = make([]via.AddressSegment, hosts)
	}
	var ready int // hosts that have registered all their sinks
	var started bool
	var t0, t1 sim.Time

	for i := 0; i < hosts; i++ {
		i := i
		sys.Go(i, fmt.Sprintf("a2a-%d", i), func(ctx *via.Ctx) {
			nic := ctx.OpenNic()
			// One VI pair per ordered peer; the lower-numbered host plays
			// the connect side of each pair.
			vis := make([]*via.Vi, hosts)
			for j := 0; j < hosts; j++ {
				if j == i {
					continue
				}
				vi, err := nic.CreateVi(ctx, attrs, nil, nil)
				if err != nil {
					fail(err)
					return
				}
				lo, hi := i, j
				if lo > hi {
					lo, hi = hi, lo
				}
				disc := fmt.Sprintf("a2a-%d-%d", lo, hi)
				if i < j {
					if err := vi.ConnectRequest(ctx, fabric.NodeID(j), disc, cfg.Timeout); err != nil {
						fail(fmt.Errorf("connect %s: %w", disc, err))
						return
					}
				} else {
					req, err := nic.ConnectWait(ctx, disc, cfg.Timeout)
					if err != nil {
						fail(fmt.Errorf("wait %s: %w", disc, err))
						return
					}
					if err := req.Accept(ctx, vi); err != nil {
						fail(fmt.Errorf("accept %s: %w", disc, err))
						return
					}
				}
				vis[j] = vi
				sink := ctx.Malloc(size)
				h, err := nic.RegisterMem(ctx, sink)
				if err != nil {
					fail(err)
					return
				}
				targets[i][j] = via.AddressSegment{Addr: sink.Addr(), Handle: h}
			}
			ready++
			for ready < hosts { // barrier: all windows published
				ctx.Sleep(10 * sim.Microsecond)
			}
			src := ctx.Malloc(size)
			h, err := nic.RegisterMem(ctx, src)
			if err != nil {
				fail(err)
				return
			}
			if !started {
				started = true
				t0 = ctx.Now()
			}
			// Staggered destination walk: round k sends to (i+k) mod hosts.
			for k := 1; k < hosts; k++ {
				j := (i + k) % hosts
				remote := targets[j][i]
				for n := 0; n < msgs; n++ {
					d := &via.Descriptor{
						Op:     via.OpRdmaWrite,
						Segs:   []via.DataSegment{{Addr: src.Addr(), Handle: h, Length: size}},
						Remote: &remote,
					}
					if err := vis[j].PostSend(ctx, d); err != nil {
						fail(fmt.Errorf("a2a %d->%d post %d: %w", i, j, n, err))
						return
					}
				}
				for n := 0; n < msgs; n++ {
					d, err := vis[j].SendWait(ctx, cfg.Timeout)
					if err != nil {
						fail(fmt.Errorf("a2a %d->%d reap %d: %w", i, j, n, err))
						return
					}
					if d.Status != via.StatusSuccess {
						fail(fmt.Errorf("a2a %d->%d write %d completed %v", i, j, n, d.Status))
						return
					}
				}
			}
			if now := ctx.Now(); now > t1 {
				t1 = now
			}
		})
	}
	if err := sys.Run(); err != nil && runErr == nil {
		runErr = err
	}
	res.CreditStalls = sys.Net.CreditStalls()
	res.MaxQueue = sys.Net.MaxQueueDepth()
	res.finish(t0, t1)
	return res, runErr
}

// HotspotRun offers an aggregate load of offered x the link bandwidth at
// host 0 from every other host, as paced unreliable sends, and measures
// the goodput the fabric actually delivers. Below saturation goodput
// tracks the offer; past it the receiver's downlink caps throughput and —
// with finite switch buffers — credit backpressure, not queue growth,
// absorbs the excess.
func HotspotRun(cfg Config, senders, msgs, size int, offered float64) (TopoResult, error) {
	res := TopoResult{Hosts: senders + 1, Messages: senders * msgs, Size: size}
	sys := via.NewSystemProc(cfg.Model, senders+1, cfg.Seed, cfg.ProcModel)
	defer sys.Close()
	cfg.instrument(sys)

	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
		sys.Eng.Stop()
	}
	attrs := via.ViAttributes{Reliability: via.Unreliable}

	// Per-sender message gap hitting the aggregate offered fraction of the
	// receiver's link bandwidth.
	perSenderBps := offered * cfg.Model.Network.BandwidthBps / float64(senders)
	gap := sim.Duration(float64(size*8) / perSenderBps * float64(sim.Second))

	var connected int
	var started bool
	var t0, t1 sim.Time
	var recvOK uint64

	for s := 1; s <= senders; s++ {
		s := s
		disc := fmt.Sprintf("hot-%d", s)
		sys.Go(0, "hot-sink-"+disc, func(ctx *via.Ctx) {
			nic := ctx.OpenNic()
			vi, err := nic.CreateVi(ctx, attrs, nil, nil)
			if err != nil {
				fail(err)
				return
			}
			buf := ctx.Malloc(size)
			h, err := nic.RegisterMem(ctx, buf)
			if err != nil {
				fail(err)
				return
			}
			req, err := nic.ConnectWait(ctx, disc, cfg.Timeout)
			if err != nil {
				fail(fmt.Errorf("wait %s: %w", disc, err))
				return
			}
			if err := req.Accept(ctx, vi); err != nil {
				fail(fmt.Errorf("accept %s: %w", disc, err))
				return
			}
			// Pre-post the whole stream so no frame dies for lack of a
			// descriptor — losses, if any, are the fabric's doing.
			for i := 0; i < msgs; i++ {
				d := &via.Descriptor{Segs: []via.DataSegment{{Addr: buf.Addr(), Handle: h, Length: size}}}
				if err := vi.PostRecv(ctx, d); err != nil {
					fail(err)
					return
				}
			}
			connected++
			// Unreliable tail loss is legitimate: bound each wait and stop
			// reaping when the stream has clearly ended.
			for i := 0; i < msgs; i++ {
				d, err := vi.RecvWait(ctx, 100*sim.Millisecond)
				if err != nil {
					break
				}
				if d.Status == via.StatusSuccess {
					recvOK++
				}
				if now := ctx.Now(); now > t1 {
					t1 = now
				}
			}
		})
		sys.Go(s, "hot-src-"+disc, func(ctx *via.Ctx) {
			nic := ctx.OpenNic()
			vi, err := nic.CreateVi(ctx, attrs, nil, nil)
			if err != nil {
				fail(err)
				return
			}
			if err := vi.ConnectRequest(ctx, 0, disc, cfg.Timeout); err != nil {
				fail(fmt.Errorf("connect %s: %w", disc, err))
				return
			}
			buf := ctx.Malloc(size)
			h, err := nic.RegisterMem(ctx, buf)
			if err != nil {
				fail(err)
				return
			}
			for connected < senders { // all streams armed before load starts
				ctx.Sleep(10 * sim.Microsecond)
			}
			if !started {
				started = true
				t0 = ctx.Now()
			}
			// Open-loop pacing: each post has an absolute deadline start+i*gap,
			// so fabric backpressure delays the wire, never the offered
			// schedule — overdriving past saturation stays overdriven.
			// Completions are reaped opportunistically and drained at the end.
			start := ctx.Now()
			reaped := 0
			for i := 0; i < msgs; i++ {
				if next := start.Add(sim.Duration(i) * gap); next > ctx.Now() {
					ctx.Sleep(next.Sub(ctx.Now()))
				}
				d := &via.Descriptor{Segs: []via.DataSegment{{Addr: buf.Addr(), Handle: h, Length: size}}}
				if err := vi.PostSend(ctx, d); err != nil {
					fail(fmt.Errorf("%s post %d: %w", disc, i, err))
					return
				}
				for {
					d, ok := vi.SendDone(ctx)
					if !ok {
						break
					}
					if d.Status != via.StatusSuccess {
						fail(fmt.Errorf("%s send completed %v", disc, d.Status))
						return
					}
					reaped++
				}
			}
			for ; reaped < msgs; reaped++ {
				if err := checkOK(vi.SendWait(ctx, cfg.Timeout)); err != nil {
					fail(fmt.Errorf("%s reap: %w", disc, err))
					return
				}
			}
		})
	}
	if err := sys.Run(); err != nil && runErr == nil {
		runErr = err
	}
	res.Messages = int(recvOK)
	res.CreditStalls = sys.Net.CreditStalls()
	res.MaxQueue = sys.Net.MaxQueueDepth()
	res.finish(t0, t1)
	return res, runErr
}
