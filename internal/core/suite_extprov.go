package core

import (
	"vibe/internal/provider"
	"vibe/internal/table"
)

// expEXTPROV runs the headline VIBe measurements across the extended
// provider set — the paper's three systems plus the FirmVIA ([8]) and
// InfiniBand (§5) approximations — demonstrating the suite doing what it
// was built for: characterizing a *new* implementation against known
// ones.
func expEXTPROV() *Experiment {
	return &Experiment{
		ID:    "EXTPROV",
		Title: "Extended providers: VIBe headline numbers for FirmVIA and IBA",
		PaperClaim: "(the paper's reference [8] and §5 future work) FirmVIA's " +
			"microcoded data path should land between Berkeley VIA and cLAN; a " +
			"first-generation IBA adapter should beat all three on every " +
			"headline number except connection setup.",
		Run: func(sc *Scenario) (*Report, error) {
			t := table.New("VIBe headline numbers across five implementations",
				"Provider", "4B lat (us)", "28KB lat (us)", "28KB BW (MB/s)",
				"Conn est (us)", "CQ ovh (us)", "Reuse-sensitive", "VI-sensitive")
			for _, m := range provider.Extended() {
				cfg := sc.Config(m)
				lat, _, err := LatencySweep(cfg, []int{4, 28672}, XferOpts{})
				if err != nil {
					return nil, err
				}
				bw, _, err := BandwidthSweep(cfg, []int{28672}, XferOpts{})
				if err != nil {
					return nil, err
				}
				nd, err := NonData(cfg)
				if err != nil {
					return nil, err
				}
				_, _, cqd, err := CQOverhead(cfg, []int{4})
				if err != nil {
					return nil, err
				}
				base, err := Latency(cfg, 28672, XferOpts{})
				if err != nil {
					return nil, err
				}
				reuse, err := Latency(cfg, 28672, XferOpts{VaryBuffers: true, ReusePct: 0})
				if err != nil {
					return nil, err
				}
				multi, err := Latency(cfg, 4, XferOpts{ActiveVIs: 16})
				if err != nil {
					return nil, err
				}
				small, err := Latency(cfg, 4, XferOpts{})
				if err != nil {
					return nil, err
				}
				sensitive := func(delta float64) string {
					if delta > 2 {
						return "yes"
					}
					return "no"
				}
				t.AddRow(m.Name,
					lat.MustAt(4), lat.MustAt(28672), bw.MustAt(28672),
					nd.EstablishConn, cqd.MustAt(4),
					sensitive(reuse.LatencyUs-base.LatencyUs),
					sensitive(multi.LatencyUs-small.LatencyUs))
			}
			return &Report{Tables: []*table.Table{t}, Notes: []string{
				"firmvia and iba are approximations from the cited papers' published " +
					"numbers, not calibration targets; the paper's three providers are " +
					"calibrated (see T1/F1-F7).",
			}}, nil
		},
	}
}
