package core

import (
	"fmt"

	"vibe/internal/bench"
	"vibe/internal/provider"
	"vibe/internal/table"
)

// Report is the output of one experiment: tables and/or series groups,
// plus notes comparing against the paper.
type Report struct {
	ID         string
	Title      string
	PaperClaim string
	Tables     []*table.Table
	Groups     []*bench.Group
	Notes      []string
}

// Experiment regenerates one paper artifact (table or figure) or one
// ablation. Run receives the scenario whose design point the experiment
// should measure: experiments derive every model and configuration from
// it, so parameter overrides and sweeps apply to the entire registry
// without per-experiment wiring.
type Experiment struct {
	ID         string
	Title      string
	PaperClaim string
	Run        func(sc *Scenario) (*Report, error)
}

// cfgFor builds the default-scenario run configuration (tests and
// benchmarks that don't vary parameters).
func cfgFor(m *provider.Model, quick bool) Config {
	return DefaultScenario(quick).Config(m)
}

func ladder(quick bool) []int {
	if quick {
		return bench.SmallLadder()
	}
	return bench.SizeLadder()
}

// Experiments returns the registry, in the paper's presentation order
// followed by the §3.2.5 extensions and the ablations from DESIGN.md.
func Experiments() []*Experiment {
	return []*Experiment{
		expT1(), expF1(), expF2(), expF3(), expF4(), expF5(), expF6(), expF7(),
		expTCQ(),
		expXSEG(), expXASY(), expXRDMA(), expXPIPE(), expXMTU(), expXREL(), expXLOSS(), expXFAULT(),
		expXINCAST(), expXALLTOALL(), expXHOTSPOT(), expXFAILOVER(),
		expPMMP(), expPMGP(), expPMEAGER(), expPMSOCK(), expPMDSM(),
		expEXTPROV(),
		expATLB(), expAXLAT(), expADOOR(), expAPOLL(),
		expBREAK(),
	}
}

// ExperimentByID returns the experiment with the given id.
func ExperimentByID(id string) (*Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return nil, fmt.Errorf("vibe: unknown experiment %q", id)
}

func expT1() *Experiment {
	return &Experiment{
		ID:    "T1",
		Title: "Table 1: non-data transfer micro-benchmarks (us)",
		PaperClaim: "Connection establishment is extremely expensive on cLAN " +
			"(2454us) and worst on M-VIA (6465us); CQ creation is most " +
			"expensive on BVIA (206us); VI creation is cheapest on cLAN (3us).",
		Run: func(sc *Scenario) (*Report, error) {
			t := table.New("Table 1 (reproduced)", "Operation", "M-VIA", "BVIA", "cLAN")
			var costs []NonDataCosts
			for _, m := range provider.All() {
				c, err := NonData(sc.Config(m))
				if err != nil {
					return nil, err
				}
				costs = append(costs, c)
			}
			row := func(name string, f func(NonDataCosts) float64) {
				t.AddRow(name, f(costs[0]), f(costs[1]), f(costs[2]))
			}
			row("Creating VI", func(c NonDataCosts) float64 { return c.CreateVi })
			row("Destroying VI", func(c NonDataCosts) float64 { return c.DestroyVi })
			row("Establishing Connection", func(c NonDataCosts) float64 { return c.EstablishConn })
			row("Tearing Down Connection", func(c NonDataCosts) float64 { return c.TeardownConn })
			row("Creating CQ", func(c NonDataCosts) float64 { return c.CreateCq })
			row("Destroying CQ", func(c NonDataCosts) float64 { return c.DestroyCq })
			return &Report{Tables: []*table.Table{t}}, nil
		},
	}
}

func expF1() *Experiment {
	return &Experiment{
		ID:    "F1",
		Title: "Figure 1: memory registration cost vs buffer length",
		PaperClaim: "Registration is most expensive on BVIA for buffers up to " +
			"~20KB (flat ~21us base); M-VIA is cheap for small buffers but grows " +
			"steeply per page and crosses BVIA around 20KB; costs reach ~35us.",
		Run: func(sc *Scenario) (*Report, error) {
			g := bench.NewGroup("memory registration cost")
			for _, m := range provider.All() {
				s, err := MemRegister(sc.Config(m), RegLadder())
				if err != nil {
					return nil, err
				}
				g.Add(s)
			}
			return &Report{Groups: []*bench.Group{g}}, nil
		},
	}
}

func expF2() *Experiment {
	return &Experiment{
		ID:    "F2",
		Title: "Figure 2: memory deregistration cost vs buffer length",
		PaperClaim: "Deregistration is much cheaper than registration and " +
			"essentially flat in region size (below ~16us even for 32MB); " +
			"BVIA is the most expensive, M-VIA the cheapest.",
		Run: func(sc *Scenario) (*Report, error) {
			sizes := append(RegLadder(), 1<<20, 32<<20)
			g := bench.NewGroup("memory deregistration cost")
			for _, m := range provider.All() {
				s, err := MemDeregister(sc.Config(m), sizes)
				if err != nil {
					return nil, err
				}
				g.Add(s)
			}
			return &Report{Groups: []*bench.Group{g}}, nil
		},
	}
}

func expF3() *Experiment {
	return &Experiment{
		ID:    "F3",
		Title: "Figure 3: base latency and bandwidth with polling",
		PaperClaim: "cLAN has the lowest latency; M-VIA beats BVIA for short " +
			"messages but loses for long ones (extra kernel copies); cLAN has the " +
			"best bandwidth over most sizes but BVIA wins for large messages.",
		Run: func(sc *Scenario) (*Report, error) {
			lat := bench.NewGroup("base latency, polling (LATbase)")
			bw := bench.NewGroup("base bandwidth, polling (BWbase)")
			for _, m := range provider.All() {
				cfg := sc.Config(m)
				l, _, err := LatencySweep(cfg, ladder(sc.Quick), XferOpts{})
				if err != nil {
					return nil, err
				}
				b, _, err := BandwidthSweep(cfg, ladder(sc.Quick), XferOpts{})
				if err != nil {
					return nil, err
				}
				lat.Add(l)
				bw.Add(b)
			}
			return &Report{Groups: []*bench.Group{lat, bw},
				Notes: []string{"CPU utilization with polling is 100% for all providers (not shown, as in the paper)."}}, nil
		},
	}
}

func expF4() *Experiment {
	return &Experiment{
		ID:    "F4",
		Title: "Figure 4: base latency and CPU utilization with blocking",
		PaperClaim: "Blocking latency is significantly higher than polling; CPU " +
			"utilizations are comparable across implementations for most sizes, " +
			"with M-VIA (kernel emulation) highest for small messages.",
		Run: func(sc *Scenario) (*Report, error) {
			lat := bench.NewGroup("base latency, blocking (LATbase-block)")
			cpuG := bench.NewGroup("CPU utilization, blocking (CPUbase-block)")
			for _, m := range provider.All() {
				cfg := sc.Config(m)
				l, c, err := LatencySweep(cfg, ladder(sc.Quick), XferOpts{Mode: Blocking})
				if err != nil {
					return nil, err
				}
				lat.Add(l)
				cpuG.Add(c)
			}
			return &Report{Groups: []*bench.Group{lat, cpuG},
				Notes: []string{"Bandwidth with blocking is similar to polling (not shown, as in the paper)."}}, nil
		},
	}
}

func expF5() *Experiment {
	return &Experiment{
		ID:    "F5",
		Title: "Figure 5: latency and bandwidth vs % buffer reuse (BVIA)",
		PaperClaim: "On BVIA (NIC translation, tables in host memory, small NIC " +
			"cache), lowering buffer reuse raises latency and lowers bandwidth " +
			"substantially, worst for large (multi-page) messages; M-VIA and cLAN " +
			"are insensitive.",
		Run: func(sc *Scenario) (*Report, error) {
			cfg := sc.Config(provider.BVIA())
			pcts := []int{0, 25, 50, 75, 100}
			if sc.Quick {
				pcts = []int{0, 50, 100}
			}
			latG, err := ReuseSweep(cfg, ladder(sc.Quick), pcts, false)
			if err != nil {
				return nil, err
			}
			bwG, err := ReuseSweep(cfg, ladder(sc.Quick), pcts, true)
			if err != nil {
				return nil, err
			}
			notes := []string{}
			for _, m := range []*provider.Model{provider.MVIA(), provider.CLAN()} {
				c := sc.Config(m)
				g, err := ReuseSweep(c, []int{28672}, []int{0, 100}, false)
				if err != nil {
					return nil, err
				}
				notes = append(notes, fmt.Sprintf(
					"%s @28KB: 0%% reuse %.1fus vs 100%% reuse %.1fus (insensitive, not plotted, as in the paper)",
					m.Name, g.Series[0].Points[0].Y, g.Series[1].Points[0].Y))
			}
			return &Report{Groups: []*bench.Group{latG, bwG}, Notes: notes}, nil
		},
	}
}

func expF6() *Experiment {
	return &Experiment{
		ID:    "F6",
		Title: "Figure 6: latency and bandwidth vs number of active VIs (BVIA)",
		PaperClaim: "BVIA firmware polls all VIs' send structures, so latency " +
			"rises and bandwidth falls significantly with the number of open VIs; " +
			"M-VIA and cLAN are insensitive.",
		Run: func(sc *Scenario) (*Report, error) {
			cfg := sc.Config(provider.BVIA())
			vis := []int{1, 2, 4, 8, 16, 32}
			if sc.Quick {
				vis = []int{1, 4, 16}
			}
			latG, err := MultiViSweep(cfg, ladder(sc.Quick), vis, false)
			if err != nil {
				return nil, err
			}
			bwG, err := MultiViSweep(cfg, ladder(sc.Quick), vis, true)
			if err != nil {
				return nil, err
			}
			notes := []string{}
			for _, m := range []*provider.Model{provider.MVIA(), provider.CLAN()} {
				c := sc.Config(m)
				g, err := MultiViSweep(c, []int{4}, []int{1, 16}, false)
				if err != nil {
					return nil, err
				}
				notes = append(notes, fmt.Sprintf(
					"%s @4B: 1 VI %.1fus vs 16 VIs %.1fus (insensitive, not plotted, as in the paper)",
					m.Name, g.Series[0].Points[0].Y, g.Series[1].Points[0].Y))
			}
			return &Report{Groups: []*bench.Group{latG, bwG}, Notes: notes}, nil
		},
	}
}

func expF7() *Experiment {
	return &Experiment{
		ID:    "F7",
		Title: "Figure 7: client-server transactions/sec (requests 16B and 256B)",
		PaperClaim: "cLAN sustains the most transactions (~55K/s at 16B); M-VIA " +
			"beats BVIA for short replies, BVIA wins for mid-size replies; for " +
			"long replies the paper reports them converging.",
		Run: func(sc *Scenario) (*Report, error) {
			g := bench.NewGroup("client-server transactions per second")
			for _, m := range provider.All() {
				cfg := sc.Config(m)
				for _, req := range []int{16, 256} {
					s, err := ClientServer(cfg, req, ladder(sc.Quick))
					if err != nil {
						return nil, err
					}
					s.Name = fmt.Sprintf("%s %dB", m.Name, req)
					g.Add(s)
				}
			}
			return &Report{Groups: []*bench.Group{g}, Notes: []string{
				"Deviation: at 28KB replies our M-VIA stays ~2.5x below BVIA " +
					"(its kernel copies bound large transfers), where the paper " +
					"reports them similar; all other orderings match. See EXPERIMENTS.md.",
			}}, nil
		},
	}
}

func expTCQ() *Experiment {
	return &Experiment{
		ID:    "TCQ",
		Title: "Section 4.3.3: completion queue overhead",
		PaperClaim: "Checking receive completions through a CQ costs 2-5us on " +
			"BVIA and is negligible on M-VIA and cLAN.",
		Run: func(sc *Scenario) (*Report, error) {
			t := table.New("CQ overhead (LATcq - LATbase, us)", "Provider", "4B", "1KB", "28KB")
			for _, m := range provider.All() {
				cfg := sc.Config(m)
				_, _, d, err := CQOverhead(cfg, []int{4, 1024, 28672})
				if err != nil {
					return nil, err
				}
				t.AddRow(m.Name, d.Points[0].Y, d.Points[1].Y, d.Points[2].Y)
			}
			return &Report{Tables: []*table.Table{t}}, nil
		},
	}
}
