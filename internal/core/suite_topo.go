package core

import (
	"fmt"

	"vibe/internal/bench"
	"vibe/internal/provider"
	"vibe/internal/table"
)

// topoConfig builds the cLAN-derived configuration the topology
// experiments run on, defaulting the fabric to the named topology shape.
// A scenario that already selects a topology (NetTopology override or
// scenario file) wins, so sweeps over topology parameters work like any
// other parameter study.
func topoConfig(sc *Scenario, topo string, degree, bufPkts int) Config {
	cfg := sc.Config(provider.CLAN())
	if cfg.Model.Network.Topology == "" {
		cfg.Model.Network.Topology = topo
		cfg.Model.Network.TopologyDegree = degree
		cfg.Model.Network.SwitchBufPkts = bufPkts
	}
	return cfg
}

func expXINCAST() *Experiment {
	return &Experiment{
		ID:    "XINCAST",
		Title: "Extension: fat-tree incast goodput vs sender count",
		PaperClaim: "(routed-fabric extension) N senders streaming reliable RDMA " +
			"writes at one receiver share its downlink: aggregate goodput " +
			"holds near the link rate at small N, then degrades as inflated " +
			"round trips trigger go-back-N retransmissions — the classic " +
			"incast collapse — while finite switch buffers keep the overload " +
			"visible as credit stalls, not queue growth.",
		Run: func(sc *Scenario) (*Report, error) {
			senders := []int{4, 8, 16, 32}
			msgs := 30
			if sc.Quick {
				senders = []int{4, 8}
				msgs = 10
			}
			const size = 2048
			s := bench.NewSeries("clan fat-tree", "senders", "aggregate goodput (MB/s)")
			t := table.New("fat-tree incast (2KB reliable RDMA writes)",
				"Senders", "Goodput (MB/s)", "Elapsed (us)", "Credit stalls", "Max queue")
			for _, n := range senders {
				cfg := topoConfig(sc, "fattree", 4, 8)
				r, err := IncastRun(cfg, n, msgs, size)
				if err != nil {
					return nil, fmt.Errorf("xincast %d senders: %w", n, err)
				}
				s.Add(float64(n), r.MBps)
				t.AddRow(float64(n), r.MBps, r.ElapsedUs, float64(r.CreditStalls), float64(r.MaxQueue))
			}
			g := bench.NewGroup("fat-tree incast goodput")
			g.Add(s)
			return &Report{Groups: []*bench.Group{g}, Tables: []*table.Table{t}, Notes: []string{
				"Destination-based spine selection funnels every flow through " +
					"one spine, so the receiver's downlink is the bottleneck at " +
					"any sender count; max queue depth stays at the configured " +
					"8-packet buffer bound while credit stalls grow with overload. " +
					"Past ~8 senders the backpressured round trips exceed the " +
					"reliability layer's timeout and go-back-N retransmissions " +
					"eat into delivered goodput — congestion collapse, emergent " +
					"rather than scripted.",
			}}, nil
		},
	}
}

func expXALLTOALL() *Experiment {
	return &Experiment{
		ID:    "XALLTOALL",
		Title: "Extension: 3D-torus all-to-all aggregate bandwidth vs message size",
		PaperClaim: "(routed-fabric extension) The staggered complete exchange " +
			"spreads a rotating permutation over the torus rings: aggregate " +
			"bandwidth scales with message size as per-message overheads " +
			"amortize, then collapses once multi-fragment messages overrun " +
			"the finite switch buffers and retransmissions dominate.",
		Run: func(sc *Scenario) (*Report, error) {
			sizes := []int{256, 1024, 4096, 16384}
			msgs := 8
			if sc.Quick {
				sizes = []int{256, 4096}
				msgs = 4
			}
			const hosts = 8 // a 2x2x2 cube at one host per switch
			s := bench.NewSeries("clan 3D torus", "message size (bytes)", "aggregate bandwidth (MB/s)")
			for _, size := range sizes {
				cfg := topoConfig(sc, "torus3d", 1, 8)
				r, err := AllToAllRun(cfg, hosts, msgs, size)
				if err != nil {
					return nil, fmt.Errorf("xalltoall %dB: %w", size, err)
				}
				s.Add(float64(size), r.MBps)
			}
			g := bench.NewGroup("3D-torus all-to-all bandwidth (8 hosts)")
			g.Add(s)
			return &Report{Groups: []*bench.Group{g}, Notes: []string{
				"Dimension-order routing sends each round of the rotation over " +
					"a distinct set of ring links, so the exchange uses the " +
					"torus bisection concurrently rather than serializing " +
					"through one switch as the crossbar would. The largest " +
					"size fragments into multiple MTU packets per write; the " +
					"burst overruns the 8-packet switch buffers, round trips " +
					"stretch past the retransmission timeout, and goodput " +
					"collapses — the same emergent mechanism as XINCAST.",
			}}, nil
		},
	}
}

func expXHOTSPOT() *Experiment {
	return &Experiment{
		ID:    "XHOTSPOT",
		Title: "Extension: dragonfly hotspot goodput vs offered load",
		PaperClaim: "(routed-fabric extension) Paced unreliable streams aimed at " +
			"one host track the offered load until the hotspot's link " +
			"saturates, then goodput flattens at the link rate: finite switch " +
			"buffers convert the excess into credit backpressure instead of " +
			"unbounded queues.",
		Run: func(sc *Scenario) (*Report, error) {
			offered := []float64{0.25, 0.5, 0.75, 1.0, 1.25, 1.5}
			msgs := 60
			if sc.Quick {
				offered = []float64{0.5, 1.5}
				msgs = 30
			}
			const senders, size = 5, 1024 // 6 hosts: 3 dragonfly groups of 2 routers
			good := bench.NewSeries("clan dragonfly", "offered load (fraction of link bw)", "goodput (MB/s)")
			stalls := bench.NewSeries("clan dragonfly", "offered load (fraction of link bw)", "credit stalls")
			for _, x := range offered {
				cfg := topoConfig(sc, "dragonfly", 1, 8)
				r, err := HotspotRun(cfg, senders, msgs, size, x)
				if err != nil {
					return nil, fmt.Errorf("xhotspot load %.2f: %w", x, err)
				}
				good.Add(x, r.MBps)
				stalls.Add(x, float64(r.CreditStalls))
			}
			gg := bench.NewGroup("dragonfly hotspot goodput (5 senders -> 1)")
			gg.Add(good)
			gs := bench.NewGroup("dragonfly hotspot credit stalls")
			gs.Add(stalls)
			return &Report{Groups: []*bench.Group{gg, gs}, Notes: []string{
				"All five streams cross the destination router, so its " +
					"attachment link is the hotspot; past saturation the " +
					"credit-stall count rises steeply while goodput stays " +
					"pinned near the link rate.",
			}}, nil
		},
	}
}
