package core

import (
	"vibe/internal/metrics"
	"vibe/internal/prof"
	"vibe/internal/trace"
	"vibe/internal/via"
)

// Instr carries the optional instrumentation sinks of a run. A nil Instr
// (or nil/zero fields) means no collection: the simulated systems still
// count everything — counters never touch virtual time — but nobody reads
// them, so results are byte-identical with and without instrumentation
// (see TestInstrumentationZeroOverhead).
//
// The metrics collector and profile are safe to share across the parallel
// runner's workers; the trace recorder is single-writer and requires
// workers=1.
type Instr struct {
	Metrics *metrics.Collector
	Trace   *trace.Recorder

	// SpanSample enables message-lifecycle span recording, sampling every
	// Nth message per system (1 = every message; 0 disables). Spans feed
	// per-phase latency histograms into Metrics and complete events into
	// Trace; they accumulate but never sleep, so simulated time is
	// unchanged at any sampling rate.
	SpanSample int

	// Profile, when set, receives each system's per-component virtual-time
	// attribution as folded stacks.
	Profile *prof.Scope
}

// instrument attaches the config's instrumentation sinks and fault plan
// to a freshly built system. Every experiment calls it right after
// via.NewSystem, so one Config.Fault reaches every simulation a scenario
// runs.
func (c Config) instrument(sys *via.System) {
	if c.Fault != nil {
		sys.InstallFaults(c.Fault)
	}
	if c.Instr == nil {
		return
	}
	if c.Instr.Metrics != nil {
		sys.SetCollector(c.Instr.Metrics)
	}
	if c.Instr.Trace != nil {
		sys.Eng.SetTracer(c.Instr.Trace.ForSystem())
	}
	if c.Instr.SpanSample > 0 {
		sys.EnableSpans(c.Instr.SpanSample)
	}
	if c.Instr.Profile != nil {
		sys.SetProfile(c.Instr.Profile)
	}
}

// ProfiledExperiments wraps each experiment so its runs attribute
// virtual time into p under the experiment's ID — the per-experiment
// breakdown vibe-report renders and -profile-out writes. The original
// experiments and the caller's scenario are not modified.
func ProfiledExperiments(exps []*Experiment, p *prof.Profile) []*Experiment {
	out := make([]*Experiment, len(exps))
	for i, e := range exps {
		e := e
		w := *e
		w.Run = func(sc *Scenario) (*Report, error) {
			s := *sc
			var in Instr
			if s.Instr != nil {
				in = *s.Instr
			}
			in.Profile = p.Scope(e.ID)
			s.Instr = &in
			return e.Run(&s)
		}
		out[i] = &w
	}
	return out
}
