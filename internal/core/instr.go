package core

import (
	"vibe/internal/metrics"
	"vibe/internal/trace"
	"vibe/internal/via"
)

// Instr carries the optional instrumentation sinks of a run. A nil Instr
// (or nil fields) means no collection: the simulated systems still count
// everything — counters never touch virtual time — but nobody reads them,
// so results are byte-identical with and without instrumentation (see
// TestInstrumentationZeroOverhead).
//
// The metrics collector is safe to share across the parallel runner's
// workers; the trace recorder is single-writer and requires workers=1.
type Instr struct {
	Metrics *metrics.Collector
	Trace   *trace.Recorder
}

// instrument attaches the config's instrumentation sinks and fault plan
// to a freshly built system. Every experiment calls it right after
// via.NewSystem, so one Config.Fault reaches every simulation a scenario
// runs.
func (c Config) instrument(sys *via.System) {
	if c.Fault != nil {
		sys.InstallFaults(c.Fault)
	}
	if c.Instr == nil {
		return
	}
	if c.Instr.Metrics != nil {
		sys.SetCollector(c.Instr.Metrics)
	}
	if c.Instr.Trace != nil {
		sys.Eng.SetTracer(c.Instr.Trace.ForSystem())
	}
}
