package core

import (
	"fmt"
	"strings"

	"vibe/internal/provider"
)

// ExpandSweeps turns repeated "param=v1,v2,v3" sweep directives into the
// cross-product grid of scenario specs derived from base. Parameter names
// and values are validated against the provider catalog up front, so a
// typo fails before any cell runs. Cell order is the natural grid order:
// the first directive varies slowest. Each cell's Name records its
// coordinates ("TLBCapacity=8,WireMTU=1500"), prefixed by the base
// scenario's name when it has one.
func ExpandSweeps(base ScenarioSpec, sweeps []string) ([]ScenarioSpec, error) {
	if len(sweeps) == 0 {
		return []ScenarioSpec{base}, nil
	}
	type axis struct {
		name   string
		values []string
	}
	axes := make([]axis, 0, len(sweeps))
	cells := 1
	for _, s := range sweeps {
		name, list, ok := strings.Cut(s, "=")
		if !ok || strings.TrimSpace(name) == "" || strings.TrimSpace(list) == "" {
			return nil, fmt.Errorf("core: bad -sweep %q (want param=v1,v2,...)", s)
		}
		p, err := provider.ParamByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		var values []string
		for _, v := range strings.Split(list, ",") {
			v = strings.TrimSpace(v)
			if v == "" {
				return nil, fmt.Errorf("core: empty value in -sweep %q", s)
			}
			if _, err := provider.CompileOverrides(map[string]string{p.Name: v}); err != nil {
				return nil, err
			}
			values = append(values, v)
		}
		axes = append(axes, axis{name: p.Name, values: values})
		cells *= len(values)
	}

	specs := make([]ScenarioSpec, 0, cells)
	coords := make([]int, len(axes))
	for {
		cell := base
		cell.Set = make(map[string]string, len(base.Set)+len(axes))
		for k, v := range base.Set {
			cell.Set[k] = v
		}
		parts := make([]string, len(axes))
		for i, a := range axes {
			v := a.values[coords[i]]
			cell.Set[a.name] = v
			parts[i] = a.name + "=" + v
		}
		cell.Name = strings.Join(parts, ",")
		if base.Name != "" {
			cell.Name = base.Name + ":" + cell.Name
		}
		specs = append(specs, cell)

		// Odometer increment, last axis fastest.
		i := len(axes) - 1
		for ; i >= 0; i-- {
			coords[i]++
			if coords[i] < len(axes[i].values) {
				break
			}
			coords[i] = 0
		}
		if i < 0 {
			return specs, nil
		}
	}
}

// CompileScenarios compiles a list of specs with a shared quick flag.
func CompileScenarios(specs []ScenarioSpec, quick bool) ([]*Scenario, error) {
	scs := make([]*Scenario, len(specs))
	for i, spec := range specs {
		sc, err := NewScenario(spec, quick)
		if err != nil {
			return nil, err
		}
		scs[i] = sc
	}
	return scs, nil
}
