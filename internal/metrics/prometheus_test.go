package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
)

// promSnapshot builds a snapshot with all three kinds.
func promSnapshot() Snapshot {
	r := New()
	r.Add("nic0.tlb.miss", 7)
	r.Gauge("sim.heap_max", 34)
	r.Observe("span.send.total_ns", 100)
	r.Observe("span.send.total_ns", 100)
	r.Observe("span.send.total_ns", 90000)
	return r.Snapshot()
}

// TestWritePrometheusFormat validates the exposition output line by line:
// legal metric names, HELP/TYPE headers per family, counter and gauge
// samples, and the histogram's cumulative _bucket/_sum/_count series
// ending in +Inf.
func TestWritePrometheusFormat(t *testing.T) {
	var b bytes.Buffer
	if err := promSnapshot().WritePrometheus(&b, "vibe"); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE vibe_nic0_tlb_miss counter\n",
		"vibe_nic0_tlb_miss 7\n",
		"# TYPE vibe_sim_heap_max gauge\n",
		"vibe_sim_heap_max 34\n",
		"# TYPE vibe_span_send_total_ns histogram\n",
		"vibe_span_send_total_ns_bucket{le=\"+Inf\"} 3\n",
		"vibe_span_send_total_ns_sum 90200\n",
		"vibe_span_send_total_ns_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Every non-comment line must be "name[{le="..."}] value" with a legal
	// name and a parseable value; buckets must be cumulative.
	var lastCum int64 = -1
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		base := name
		if i := strings.IndexByte(name, '{'); i >= 0 {
			base = name[:i]
			if !strings.HasSuffix(base, "_bucket") {
				t.Fatalf("labels on a non-bucket sample: %q", line)
			}
			cum, err := strconv.ParseInt(val, 10, 64)
			if err != nil || cum < lastCum {
				t.Fatalf("bucket counts not cumulative at %q (prev %d)", line, lastCum)
			}
			lastCum = cum
		}
		for i := 0; i < len(base); i++ {
			c := base[i]
			legal := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
				(i > 0 && c >= '0' && c <= '9')
			if !legal {
				t.Fatalf("illegal metric name %q", base)
			}
		}
	}

	// Deterministic: a second write is byte-identical.
	var b2 bytes.Buffer
	if err := promSnapshot().WritePrometheus(&b2, "vibe"); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Fatal("two writes of the same snapshot differ")
	}
}

// TestWritePrometheusBucketBounds checks the le values are the layout's
// exact bucket upper bounds: observations land strictly below their le,
// and the +Inf count equals the total.
func TestWritePrometheusBucketBounds(t *testing.T) {
	var h Hist
	h.Observe(3) // unit bucket [3,4)
	h.Observe(1000)
	r := New()
	r.SetHist("lat", &h)

	var b bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&b, ""); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `lat_bucket{le="4"} 1`) {
		t.Fatalf("unit bucket bound wrong:\n%s", out)
	}
	// 1000 lands in the bucket [1024-?) — its upper bound comes from
	// histBounds; recompute and expect that exact le.
	_, hi := histBounds(histBucket(1000))
	if !strings.Contains(out, fmt.Sprintf("lat_bucket{le=%q} 2", promValue(hi))) {
		t.Fatalf("log bucket bound %g missing:\n%s", hi, out)
	}
	if !strings.Contains(out, `lat_bucket{le="+Inf"} 2`) {
		t.Fatalf("+Inf bucket wrong:\n%s", out)
	}
}

// TestPromName pins the sanitization rules.
func TestPromName(t *testing.T) {
	for _, tc := range []struct{ prefix, key, want string }{
		{"vibe", "nic0.tlb.miss", "vibe_nic0_tlb_miss"},
		{"vibe", "span.send.dma_ns", "vibe_span_send_dma_ns"},
		{"", "cpu0.busy_ns", "cpu0_busy_ns"},
		{"", "0weird-key", "_0weird_key"},
		{"v", "a b:c", "v_a_b_c"},
	} {
		if got := PromName(tc.prefix, tc.key); got != tc.want {
			t.Errorf("PromName(%q, %q) = %q, want %q", tc.prefix, tc.key, got, tc.want)
		}
	}
}

// TestSnapshotWriteJSON checks the -metrics-out format: key-sorted JSON
// that round-trips to exactly Snapshot.Map() — the same numbers Render
// displays — with histogram summary flattening, byte-identical across
// writes.
func TestSnapshotWriteJSON(t *testing.T) {
	snap := promSnapshot()
	var b bytes.Buffer
	if err := snap.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var got map[string]float64
	if err := json.Unmarshal(b.Bytes(), &got); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v", err)
	}
	want := snap.Map()
	if len(got) != len(want) {
		t.Fatalf("round-trip has %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		gv, ok := got[k]
		if !ok || gv != v || math.IsNaN(gv) {
			t.Fatalf("key %s = %v (ok=%v), want %v", k, gv, ok, v)
		}
	}
	for _, k := range []string{"span.send.total_ns.p50", "span.send.total_ns.p99",
		"span.send.total_ns.max", "span.send.total_ns.count"} {
		if _, ok := got[k]; !ok {
			t.Fatalf("histogram summary key %s missing", k)
		}
	}
	// Key order in the emitted bytes is sorted (encoding/json maps), so a
	// rewrite is byte-identical.
	var b2 bytes.Buffer
	if err := snap.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), b2.Bytes()) {
		t.Fatal("two WriteJSON passes differ")
	}
}
