package metrics

import (
	"encoding/json"
	"io"
)

// WriteJSON writes the snapshot as key-sorted, indented JSON — the
// machine-readable sibling of Render, and exactly the map embedded in
// saved result sets: histograms flatten to their .p50/.p90/.p99/.max/
// .count summary keys (see Map). encoding/json emits map keys sorted, so
// two writes of the same snapshot are byte-identical.
func (s Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s.Map(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// MergedSnapshot folds the snapshots of every non-nil collector into one:
// the cross-scenario roll-up the CLIs write for -metrics-out. Counters sum,
// gauges take the max, histograms merge bucket-wise — the same semantics a
// single collector applies across workers.
func MergedSnapshot(cols ...*Collector) Snapshot {
	agg := NewCollector()
	for _, c := range cols {
		if c != nil {
			agg.Merge(c.Snapshot())
		}
	}
	return agg.Snapshot()
}
