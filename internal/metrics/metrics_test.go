package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryCountersAndGauges(t *testing.T) {
	r := New()
	r.Add("nic0.tlb.miss", 3)
	r.Add("nic0.tlb.miss", 2)
	r.AddUint("nic0.tlb.hit", 7)
	r.Gauge("sim.heap_high_water", 12)
	r.GaugeMax("sim.heap_high_water", 9)  // lower: ignored
	r.GaugeMax("sim.heap_high_water", 40) // higher: taken
	s := r.Snapshot()
	if v, ok := s.Get("nic0.tlb.miss"); !ok || v != 5 {
		t.Fatalf("miss = %v, %v", v, ok)
	}
	if v, _ := s.Get("nic0.tlb.hit"); v != 7 {
		t.Fatalf("hit = %v", v)
	}
	if v, _ := s.Get("sim.heap_high_water"); v != 40 {
		t.Fatalf("high water = %v", v)
	}
	if _, ok := s.Get("absent"); ok {
		t.Fatal("absent key found")
	}
}

func TestSnapshotSortedAndDiff(t *testing.T) {
	r := New()
	r.Add("b.x", 10)
	r.Add("a.y", 1)
	r.Gauge("a.depth", 5)
	before := r.Snapshot()
	for i := 1; i < len(before); i++ {
		if before[i-1].Key >= before[i].Key {
			t.Fatalf("snapshot not sorted: %v", before)
		}
	}
	r.Add("b.x", 4)
	r.Gauge("a.depth", 9)
	d := r.Snapshot().Diff(before)
	if v, _ := d.Get("b.x"); v != 4 {
		t.Fatalf("counter diff = %v", v)
	}
	if v, _ := d.Get("a.y"); v != 0 {
		t.Fatalf("unchanged counter diff = %v", v)
	}
	if v, _ := d.Get("a.depth"); v != 9 {
		t.Fatalf("gauge keeps current value, got %v", v)
	}
}

func TestJoinAndComponent(t *testing.T) {
	if k := Join("nic0", "tlb", "miss"); k != "nic0.tlb.miss" {
		t.Fatalf("join = %q", k)
	}
	if c := Component("nic0.tlb.miss"); c != "nic0" {
		t.Fatalf("component = %q", c)
	}
	if c := Component("flat"); c != "flat" {
		t.Fatalf("component = %q", c)
	}
}

func TestRenderGroupsByComponent(t *testing.T) {
	r := New()
	r.Add("cpu0.busy_ns", 100)
	r.Add("cpu0.spin_waits", 2)
	r.Add("fabric.bytes", 4096)
	var b strings.Builder
	r.Snapshot().Render(&b)
	out := b.String()
	for _, want := range []string{"cpu0\n", "busy_ns", "fabric\n", "4096"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCollectorMerge(t *testing.T) {
	c := NewCollector()
	r1 := New()
	r1.Add("nic0.dma.bytes_out", 100)
	r1.Gauge("sim.heap_high_water", 8)
	r2 := New()
	r2.Add("nic0.dma.bytes_out", 50)
	r2.Gauge("sim.heap_high_water", 21)
	c.Merge(r1.Snapshot())
	c.Merge(r2.Snapshot())
	s := c.Snapshot()
	if v, _ := s.Get("nic0.dma.bytes_out"); v != 150 {
		t.Fatalf("merged counter = %v", v)
	}
	if v, _ := s.Get("sim.heap_high_water"); v != 21 {
		t.Fatalf("merged gauge = %v", v)
	}
	if c.Systems() != 2 {
		t.Fatalf("systems = %d", c.Systems())
	}
}

// TestCollectorConcurrent exercises Merge from many goroutines; the race
// detector (make race) proves the collector safe under the parallel
// runner.
func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	const workers, per = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r := New()
				r.Add("x.count", 1)
				r.GaugeMax("x.peak", float64(i))
				c.Merge(r.Snapshot())
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if v, _ := s.Get("x.count"); v != workers*per {
		t.Fatalf("count = %v, want %d", v, workers*per)
	}
	if v, _ := s.Get("x.peak"); v != per-1 {
		t.Fatalf("peak = %v", v)
	}
}
