package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// TestHistBucketBounds checks every bucket index round-trips: a value maps
// to a bucket whose [lo, hi) range contains it, and bucket ranges tile the
// axis without gaps.
func TestHistBucketBounds(t *testing.T) {
	// Values here are exactly representable as float64 so the [lo, hi)
	// containment check is not confused by conversion rounding (bucketing
	// itself is pure uint64 arithmetic).
	for _, v := range []uint64{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 100, 1023, 1024, 1 << 20, 1 << 40, 1 << 62, (1 << 62) + (1 << 61)} {
		idx := histBucket(v)
		if idx < 0 || idx >= HistBuckets {
			t.Fatalf("histBucket(%d) = %d out of range", v, idx)
		}
		lo, hi := histBounds(idx)
		if float64(v) < lo || float64(v) >= hi {
			t.Errorf("v=%d in bucket %d with bounds [%g, %g)", v, idx, lo, hi)
		}
	}
	// Ranges tile: each bucket's hi is the next bucket's lo.
	for i := 0; i < histBucket(math.MaxInt64); i++ {
		_, hi := histBounds(i)
		lo, _ := histBounds(i + 1)
		if hi != lo {
			t.Fatalf("gap between buckets %d and %d: hi=%g lo=%g", i, i+1, hi, lo)
		}
	}
}

// TestHistQuantile checks the estimator against a known distribution: with
// log-spaced buckets the estimate must land within one sub-bucket (a
// factor of 1+1/histSub) of the true quantile, and p100 is exact.
func TestHistQuantile(t *testing.T) {
	var h Hist
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 500}, {0.90, 900}, {0.99, 990}, {1.0, 1000},
	} {
		got := h.Quantile(tc.q)
		if got < tc.want/1.30 || got > tc.want*1.30 {
			t.Errorf("Quantile(%g) = %g, want within 30%% of %g", tc.q, got, tc.want)
		}
	}
	if h.Max() != 1000 {
		t.Errorf("Max = %g, want exact 1000", h.Max())
	}
	if got := h.Quantile(1.0); got != 1000 {
		t.Errorf("Quantile(1.0) = %g, want clamped to max", got)
	}
	if m := h.Mean(); m != 500.5 {
		t.Errorf("Mean = %g, want 500.5", m)
	}
}

// TestHistObserveClamps checks negative and NaN observations clamp to zero
// instead of corrupting the distribution.
func TestHistObserveClamps(t *testing.T) {
	var h Hist
	h.Observe(-5)
	h.Observe(math.NaN())
	if h.Count() != 2 || h.Sum() != 0 || h.Max() != 0 {
		t.Errorf("clamped hist: count=%d sum=%g max=%g", h.Count(), h.Sum(), h.Max())
	}
}

// TestHistCollectorMerge checks the across-workers path: two registries
// observing disjoint halves of a population merge into the same
// distribution one registry observing all of it would have.
func TestHistCollectorMerge(t *testing.T) {
	r1, r2, all := New(), New(), New()
	for i := 1; i <= 100; i++ {
		all.Observe("lat", float64(i*10))
		if i%2 == 0 {
			r1.Observe("lat", float64(i*10))
		} else {
			r2.Observe("lat", float64(i*10))
		}
	}
	col := NewCollector()
	col.Merge(r1.Snapshot())
	col.Merge(r2.Snapshot())
	merged := col.Snapshot()
	want := all.Snapshot()

	mh, wh := merged[0].Hist, want[0].Hist
	if mh.Count() != wh.Count() || mh.Sum() != wh.Sum() || mh.Max() != wh.Max() {
		t.Fatalf("merged count/sum/max = %d/%g/%g, want %d/%g/%g",
			mh.Count(), mh.Sum(), mh.Max(), wh.Count(), wh.Sum(), wh.Max())
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if mh.Quantile(q) != wh.Quantile(q) {
			t.Errorf("Quantile(%g): merged %g != single %g", q, mh.Quantile(q), wh.Quantile(q))
		}
	}
	if merged[0].Value != float64(mh.Count()) {
		t.Errorf("hist sample Value = %g, want count %d", merged[0].Value, mh.Count())
	}
}

// TestHistSnapshotImmutable checks snapshots are isolated from later
// recording and later merges — the aliasing bugs a shared *Hist would
// cause.
func TestHistSnapshotImmutable(t *testing.T) {
	r := New()
	r.Observe("h", 10)
	snap := r.Snapshot()
	r.Observe("h", 1e6)
	if snap[0].Hist.Count() != 1 || snap[0].Hist.Max() != 10 {
		t.Error("registry snapshot mutated by later Observe")
	}

	col := NewCollector()
	col.Merge(snap)
	merged := col.Snapshot()
	col.Merge(snap)
	if merged[0].Hist.Count() != 1 {
		t.Error("collector snapshot mutated by later Merge")
	}
	if snap[0].Hist.Count() != 1 {
		t.Error("source snapshot mutated by Merge")
	}
}

// TestHistMap checks the flattened form embedded in result sets: the five
// summary sub-keys, and plain keys untouched.
func TestHistMap(t *testing.T) {
	r := New()
	r.Add("n", 3)
	for i := 0; i < 10; i++ {
		r.Observe("lat_ns", 100)
	}
	m := r.Snapshot().Map()
	if m["n"] != 3 {
		t.Errorf("counter key: %v", m["n"])
	}
	for _, k := range []string{"lat_ns.p50", "lat_ns.p90", "lat_ns.p99", "lat_ns.max", "lat_ns.count"} {
		if _, ok := m[k]; !ok {
			t.Errorf("missing flattened key %q", k)
		}
	}
	if m["lat_ns.count"] != 10 || m["lat_ns.max"] != 100 {
		t.Errorf("count=%g max=%g", m["lat_ns.count"], m["lat_ns.max"])
	}
	if _, ok := m["lat_ns"]; ok {
		t.Error("histogram key leaked unflattened into the map")
	}
}

// TestSnapshotRenderDeterministic is the ordering regression guard: a
// snapshot with every kind present renders — and JSON-embeds — to the
// exact same bytes twice in a row, and across two collectors fed the same
// snapshots in different orders. Key order comes from the single sort at
// snapshot time, never from map iteration.
func TestSnapshotRenderDeterministic(t *testing.T) {
	build := func() Snapshot {
		r := New()
		r.Gauge("sim.heap_high_water", 42)
		r.Add("nic0.doorbells", 7)
		r.Add("nic1.doorbells", 9)
		r.AddUint("fabric.bytes", 1<<20)
		for i := 0; i < 50; i++ {
			r.Observe("span.send.total_ns", float64(1000+i*37))
			r.Observe("span.recv.dma_ns", float64(10+i))
		}
		return r.Snapshot()
	}

	c1, c2 := NewCollector(), NewCollector()
	a, b := build(), build()
	c1.Merge(a)
	c1.Merge(b)
	c2.Merge(b)
	c2.Merge(a)

	render := func(c *Collector) []byte {
		var buf bytes.Buffer
		c.Snapshot().Render(&buf)
		return buf.Bytes()
	}
	r1a, r1b, r2 := render(c1), render(c1), render(c2)
	if !bytes.Equal(r1a, r1b) {
		t.Error("two renders of the same collector differ")
	}
	if !bytes.Equal(r1a, r2) {
		t.Error("merge order changed the rendered bytes")
	}

	j1, err := json.Marshal(c1.Snapshot().Map())
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(c2.Snapshot().Map())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Error("JSON embedding differs across merge orders")
	}
}
