package metrics

import (
	"math"
	"testing"
)

// TestQuantileEmptyHist pins the NaN policy for the degenerate case: an
// empty histogram reports 0 — never NaN — for every quantile and summary
// stat, so flattened result-set keys stay finite and diffable at tol 0.
func TestQuantileEmptyHist(t *testing.T) {
	var h Hist
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v != 0 || math.IsNaN(v) {
			t.Errorf("empty Quantile(%g) = %v, want 0", q, v)
		}
	}
	if h.Mean() != 0 || h.Max() != 0 || h.Sum() != 0 {
		t.Errorf("empty summary = mean %g max %g sum %g, want zeros", h.Mean(), h.Max(), h.Sum())
	}

	// The flattened map and exposition formats inherit the policy.
	r := New()
	r.SetHist("lat", &h)
	for k, v := range r.Snapshot().Map() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("flattened key %s = %v, want finite", k, v)
		}
	}
}

// TestQuantileSingleSample checks a one-observation histogram: every
// quantile reports the sample's bucket clamped to the exact max, so p50 ==
// p99 == max == the observation for values that start a bucket, and never
// exceeds the true max otherwise.
func TestQuantileSingleSample(t *testing.T) {
	for _, obs := range []float64{0, 1, 3, 1000, 1 << 30} {
		var h Hist
		h.Observe(obs)
		for _, q := range []float64{0.5, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if math.IsNaN(v) || v > obs {
				t.Errorf("obs %g: Quantile(%g) = %g, want <= max and finite", obs, q, v)
			}
			lo, _ := histBounds(histBucket(uint64(obs)))
			if v < lo {
				t.Errorf("obs %g: Quantile(%g) = %g below bucket lo %g", obs, q, v, lo)
			}
		}
		if h.Quantile(1) != obs || h.Max() != obs || h.Mean() != obs {
			t.Errorf("obs %g: p100/max/mean = %g/%g/%g, want the sample",
				obs, h.Quantile(1), h.Max(), h.Mean())
		}
	}
}

// TestCollectorMergeSemanticsByKind pins the per-kind merge rules side by
// side: counter keys sum across systems, gauge keys take the max (so a
// later, smaller gauge cannot lower a peak), and a key present in only one
// snapshot survives unchanged.
func TestCollectorMergeSemanticsByKind(t *testing.T) {
	c := NewCollector()

	r1 := New()
	r1.Add("work.items", 10)
	r1.Gauge("peak.depth", 9)
	r1.Gauge("only.first", 5)
	r2 := New()
	r2.Add("work.items", 32)
	r2.Gauge("peak.depth", 4) // smaller: must NOT win
	r2.Add("only.second", 1)

	c.Merge(r1.Snapshot())
	c.Merge(r2.Snapshot())
	s := c.Snapshot()

	for _, tc := range []struct {
		key  string
		want float64
	}{
		{"work.items", 42}, // counter: sum
		{"peak.depth", 9},  // gauge: max, not last-write
		{"only.first", 5},  // singleton gauge survives
		{"only.second", 1}, // singleton counter survives
	} {
		if v, ok := s.Get(tc.key); !ok || v != tc.want {
			t.Errorf("%s = %v (ok=%v), want %v", tc.key, v, ok, tc.want)
		}
	}

	// Kind metadata survives the merge — a downstream WritePrometheus must
	// still see gauge vs counter to emit the right TYPE line.
	for _, x := range s {
		switch x.Key {
		case "peak.depth", "only.first":
			if x.Kind != Gauge {
				t.Errorf("%s merged as %v, want Gauge", x.Key, x.Kind)
			}
		case "work.items", "only.second":
			if x.Kind != Counter {
				t.Errorf("%s merged as %v, want Counter", x.Key, x.Kind)
			}
		}
	}
}

// TestCollectorMergeEmptyHist checks merging snapshots that carry an empty
// histogram: the merged histogram stays empty, reports 0 quantiles, and the
// hist sample Value (the count) is 0 — no NaN can enter a result set
// through the collector.
func TestCollectorMergeEmptyHist(t *testing.T) {
	mk := func() Snapshot {
		r := New()
		r.SetHist("lat", &Hist{})
		return r.Snapshot()
	}
	c := NewCollector()
	c.Merge(mk())
	c.Merge(mk())
	s := c.Snapshot()
	if len(s) != 1 || s[0].Hist == nil {
		t.Fatalf("merged snapshot = %+v", s)
	}
	if s[0].Hist.Count() != 0 || s[0].Hist.Quantile(0.99) != 0 || s[0].Value != 0 {
		t.Errorf("merged empty hist: count=%d p99=%g value=%g, want zeros",
			s[0].Hist.Count(), s[0].Hist.Quantile(0.99), s[0].Value)
	}
}
