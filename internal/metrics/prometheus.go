package metrics

import (
	"fmt"
	"io"
	"strconv"
)

// PromContentType is the Content-Type of the text exposition format this
// file emits, for HTTP handlers serving a /metrics endpoint.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): one family per key, prefixed and sanitized into
// a legal metric name. Counters and gauges emit a single sample;
// histograms expand into the conventional cumulative series —
// <name>_bucket{le="..."} per occupied bucket plus the +Inf bucket,
// <name>_sum and <name>_count — using the log-spaced layout's exact
// bucket upper bounds as le values, so a scraper's quantile estimates
// match Hist.Quantile's.
//
// The snapshot is key-sorted, so two writes of the same snapshot are
// byte-identical. A key that sanitizes into an already-emitted name (two
// keys differing only in punctuation) is skipped: exposition forbids
// duplicate families, and key schemas never do this in practice.
func (s Snapshot) WritePrometheus(w io.Writer, prefix string) error {
	seen := make(map[string]bool, len(s))
	for _, x := range s {
		name := PromName(prefix, x.Key)
		if seen[name] {
			continue
		}
		seen[name] = true
		var err error
		switch {
		case x.Kind == Histogram && x.Hist != nil:
			err = writePromHist(w, name, x.Key, x.Hist)
		case x.Kind == Gauge:
			_, err = fmt.Fprintf(w, "# HELP %s VIBe gauge %s\n# TYPE %s gauge\n%s %s\n",
				name, x.Key, name, name, promValue(x.Value))
		default:
			_, err = fmt.Fprintf(w, "# HELP %s VIBe counter %s\n# TYPE %s counter\n%s %s\n",
				name, x.Key, name, name, promValue(x.Value))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePromHist(w io.Writer, name, key string, h *Hist) error {
	if _, err := fmt.Fprintf(w, "# HELP %s VIBe histogram %s (virtual-time ns)\n# TYPE %s histogram\n",
		name, key, name); err != nil {
		return err
	}
	cum := uint64(0)
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		_, hi := histBounds(i)
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promValue(hi), cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
		name, h.count, name, promValue(h.sum), name, h.count)
	return err
}

// PromName sanitizes a dot-separated metric key into a legal Prometheus
// metric name under the given prefix: every byte outside [a-zA-Z0-9_] —
// dots included — becomes '_'. With an empty prefix a leading digit gets
// a '_' prepended so the name stays legal.
func PromName(prefix, key string) string {
	b := make([]byte, 0, len(prefix)+1+len(key))
	if prefix != "" {
		b = append(b, prefix...)
		b = append(b, '_')
	} else if len(key) > 0 && key[0] >= '0' && key[0] <= '9' {
		b = append(b, '_')
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	return string(b)
}

// promValue renders a sample value the way Prometheus parsers expect:
// shortest exact float representation, no exponent surprises for whole
// numbers.
func promValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
