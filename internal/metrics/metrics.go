// Package metrics is the simulator's counter/gauge registry: the unified
// observability layer that surfaces the per-component costs the paper
// decomposes (doorbell processing, descriptor fetch, address translation,
// DMA, ACK/retransmit — Figures 1-7, Table 1) from the components that
// already measure them.
//
// Keys are hierarchical, dot-separated names like "nic0.tlb.miss",
// "cpu1.busy_ns" or "link0.tx_bytes"; the first segment identifies the
// component instance, so snapshots render naturally as per-component
// tables. A Registry is deliberately lock-free: it lives inside one
// single-threaded discrete-event simulation. Cross-simulation aggregation
// (the parallel experiment runner merges many systems' snapshots) goes
// through Collector, which is mutex-guarded.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Kind distinguishes monotonically accumulating counters from level-valued
// gauges. The distinction matters when snapshots are diffed (counters
// subtract, gauges don't) and merged (counters sum, gauges take the max —
// the natural combination for high-water marks).
type Kind uint8

const (
	// Counter accumulates: events dispatched, bytes DMAed, retransmits.
	Counter Kind = iota
	// Gauge is a level or high-water mark: heap depth, hit rate.
	Gauge
	// Histogram is a log-bucketed latency distribution (see hist.go).
	// Merging sums buckets; diffing keeps the current distribution.
	Histogram
)

func (k Kind) String() string {
	switch k {
	case Gauge:
		return "gauge"
	case Histogram:
		return "histogram"
	}
	return "counter"
}

// Sample is one named value in a snapshot. Histogram samples carry their
// distribution in Hist and expose the observation count as Value.
type Sample struct {
	Key   string
	Kind  Kind
	Value float64
	Hist  *Hist
}

// Join builds a hierarchical key from parts: Join("nic0", "tlb", "miss")
// is "nic0.tlb.miss".
func Join(parts ...string) string { return strings.Join(parts, ".") }

// Component returns the first segment of a key — the component instance
// it belongs to ("nic0.tlb.miss" -> "nic0").
func Component(key string) string {
	if i := strings.IndexByte(key, '.'); i >= 0 {
		return key[:i]
	}
	return key
}

// Registry is a single-threaded counter/gauge store. The zero value is
// ready to use; methods must not be called concurrently (use Collector to
// aggregate across goroutines).
type Registry struct {
	idx map[string]int
	s   []Sample
}

// New returns an empty registry.
func New() *Registry { return &Registry{} }

func (r *Registry) slot(key string, kind Kind) *Sample {
	if i, ok := r.idx[key]; ok {
		return &r.s[i]
	}
	if r.idx == nil {
		r.idx = make(map[string]int)
	}
	r.idx[key] = len(r.s)
	r.s = append(r.s, Sample{Key: key, Kind: kind})
	return &r.s[len(r.s)-1]
}

// Add accumulates delta into the counter named key, creating it at zero on
// first use.
func (r *Registry) Add(key string, delta float64) {
	r.slot(key, Counter).Value += delta
}

// AddUint is Add for the uint64 counters the components keep natively.
func (r *Registry) AddUint(key string, delta uint64) {
	r.slot(key, Counter).Value += float64(delta)
}

// Gauge sets the gauge named key to v.
func (r *Registry) Gauge(key string, v float64) {
	r.slot(key, Gauge).Value = v
}

// GaugeMax raises the gauge named key to v if v is higher — the high-water
// update.
func (r *Registry) GaugeMax(key string, v float64) {
	s := r.slot(key, Gauge)
	if v > s.Value {
		s.Value = v
	}
}

// Observe records one observation into the histogram named key, creating
// it on first use.
func (r *Registry) Observe(key string, v float64) {
	s := r.slot(key, Histogram)
	if s.Hist == nil {
		s.Hist = &Hist{}
	}
	s.Hist.Observe(v)
	s.Value = float64(s.Hist.Count())
}

// SetHist installs a copy of h as the histogram named key. Components that
// maintain their own Hist values (e.g. the span tracker) publish them into
// a collection registry this way.
func (r *Registry) SetHist(key string, h *Hist) {
	s := r.slot(key, Histogram)
	s.Hist = h.Clone()
	s.Value = float64(h.Count())
}

// Len reports the number of distinct keys.
func (r *Registry) Len() int { return len(r.s) }

// Snapshot returns a copy of the registry's current state, sorted by key.
// Histograms are deep-copied, so a snapshot is immutable even if the
// registry keeps recording. Snapshots taken at different virtual-time
// marks can be diffed to isolate a phase's contribution.
func (r *Registry) Snapshot() Snapshot {
	out := make(Snapshot, len(r.s))
	copy(out, r.s)
	for i := range out {
		if out[i].Hist != nil {
			out[i].Hist = out[i].Hist.Clone()
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Snapshot is an immutable, key-sorted view of a registry (or of a
// collector's merged state).
type Snapshot []Sample

// Get returns the value of key and whether it is present.
func (s Snapshot) Get(key string) (float64, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i].Key >= key })
	if i < len(s) && s[i].Key == key {
		return s[i].Value, true
	}
	return 0, false
}

// Diff returns s relative to an earlier snapshot prev: counters are
// subtracted (their growth over the interval), gauges and histograms keep
// their current value (a distribution has no meaningful subtraction).
// Keys only in prev are dropped; keys only in s appear unchanged.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	at := make(map[string]float64, len(prev))
	for _, p := range prev {
		if p.Kind == Counter {
			at[p.Key] = p.Value
		}
	}
	out := make(Snapshot, len(s))
	copy(out, s)
	for i := range out {
		if out[i].Kind == Counter {
			out[i].Value -= at[out[i].Key]
		}
	}
	return out
}

// Map flattens the snapshot to a plain key->value map, the form embedded
// in saved result sets. Histograms flatten to their summary statistics:
// key.p50, key.p90, key.p99, key.max and key.count.
func (s Snapshot) Map() map[string]float64 {
	m := make(map[string]float64, len(s))
	for _, x := range s {
		if x.Kind == Histogram && x.Hist != nil {
			m[x.Key+".p50"] = x.Hist.Quantile(0.50)
			m[x.Key+".p90"] = x.Hist.Quantile(0.90)
			m[x.Key+".p99"] = x.Hist.Quantile(0.99)
			m[x.Key+".max"] = x.Hist.Max()
			m[x.Key+".count"] = float64(x.Hist.Count())
			continue
		}
		m[x.Key] = x.Value
	}
	return m
}

// Render writes the snapshot as a per-component table: one block per
// leading key segment, metrics listed under it. The snapshot is already
// key-sorted (Snapshot construction sorts exactly once), so two renders
// of the same snapshot are byte-identical. Histograms render as their
// percentile summary.
func (s Snapshot) Render(w io.Writer) {
	last := ""
	for _, x := range s {
		comp := Component(x.Key)
		if comp != last {
			if last != "" {
				fmt.Fprintln(w)
			}
			fmt.Fprintf(w, "%s\n", comp)
			last = comp
		}
		name := x.Key
		if len(comp) < len(name) {
			name = name[len(comp)+1:]
		}
		if x.Kind == Histogram && x.Hist != nil {
			h := x.Hist
			fmt.Fprintf(w, "  %-28s p50=%s p90=%s p99=%s max=%s n=%d\n", name,
				formatValue(h.Quantile(0.50)), formatValue(h.Quantile(0.90)),
				formatValue(h.Quantile(0.99)), formatValue(h.Max()), h.Count())
			continue
		}
		fmt.Fprintf(w, "  %-28s %s\n", name, formatValue(x.Value))
	}
}

// formatValue prints whole numbers without a fraction and everything else
// with enough precision to be useful.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}

// Collector aggregates snapshots from many independent simulations. It is
// safe for concurrent use: the parallel experiment runner merges cell
// results from its worker goroutines.
type Collector struct {
	mu      sync.Mutex
	systems int
	idx     map[string]int
	s       []Sample
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Merge folds one system's snapshot into the aggregate: counters sum,
// gauges keep the maximum observed (high-water semantics), histograms
// merge bucket-wise so percentiles aggregate across workers.
func (c *Collector) Merge(snap Snapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.systems++
	if c.idx == nil {
		c.idx = make(map[string]int)
	}
	for _, x := range snap {
		i, ok := c.idx[x.Key]
		if !ok {
			c.idx[x.Key] = len(c.s)
			if x.Hist != nil {
				// Own a private copy: later merges mutate it, and the
				// caller's snapshot must stay immutable.
				x.Hist = x.Hist.Clone()
			}
			c.s = append(c.s, x)
			continue
		}
		switch x.Kind {
		case Counter:
			c.s[i].Value += x.Value
		case Histogram:
			if x.Hist == nil {
				break
			}
			if c.s[i].Hist == nil {
				c.s[i].Hist = x.Hist.Clone()
			} else {
				c.s[i].Hist.MergeFrom(x.Hist)
			}
			c.s[i].Value = float64(c.s[i].Hist.Count())
		default:
			if x.Value > c.s[i].Value {
				c.s[i].Value = x.Value
			}
		}
	}
}

// Systems reports how many snapshots have been merged.
func (c *Collector) Systems() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.systems
}

// Snapshot returns the merged state, sorted by key. Histograms are
// deep-copied so the snapshot stays stable across further merges.
func (c *Collector) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(Snapshot, len(c.s))
	copy(out, c.s)
	for i := range out {
		if out[i].Hist != nil {
			out[i].Hist = out[i].Hist.Clone()
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
