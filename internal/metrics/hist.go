package metrics

import (
	"math"
	"math/bits"
)

// Histogram bucket layout: fixed log-spaced buckets over virtual-time
// nanoseconds. Values below histSub land in exact unit buckets; above
// that, every power-of-two octave splits into histSub log-spaced
// sub-buckets (the two bits after the leading one select the sub-bucket),
// so quantile estimates carry at most one sub-bucket of relative error
// (~19%) at any magnitude. The layout is fixed at compile time: recording
// is a shift, a mask, and an array increment — no allocation, no locks,
// and (like every metric in this package) no virtual time.
const (
	histSubBits = 2
	histSub     = 1 << histSubBits

	// HistBuckets covers every non-negative int64 nanosecond value.
	HistBuckets = (64-histSubBits)*histSub + histSub
)

// histBucket maps a value to its bucket index.
func histBucket(v uint64) int {
	if v < histSub {
		return int(v)
	}
	b := bits.Len64(v)
	sub := (v >> uint(b-1-histSubBits)) & (histSub - 1)
	return (b-histSubBits)*histSub + int(sub)
}

// histBounds returns the half-open value range [lo, hi) of bucket idx.
func histBounds(idx int) (lo, hi float64) {
	if idx < histSub {
		return float64(idx), float64(idx + 1)
	}
	o := idx >> histSubBits
	sub := idx & (histSub - 1)
	b := o + histSubBits
	l := (uint64(1) << uint(b-1)) | (uint64(sub) << uint(b-1-histSubBits))
	w := uint64(1) << uint(b-1-histSubBits)
	return float64(l), float64(l) + float64(w)
}

// Hist is a fixed-bucket log-spaced histogram of virtual-time
// nanoseconds. The zero value is ready to use. Like Registry, a Hist is
// single-writer: one simulation records into it; cross-worker aggregation
// merges snapshots through Collector.
type Hist struct {
	counts [HistBuckets]uint64
	count  uint64
	sum    float64
	max    float64
}

// Observe records one value. Negative and NaN observations clamp to zero
// (durations cannot be negative; the clamp keeps a bad input from
// poisoning the whole distribution).
func (h *Hist) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	h.counts[histBucket(uint64(v))]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of observations.
func (h *Hist) Count() uint64 { return h.count }

// Sum reports the sum of all observations.
func (h *Hist) Sum() float64 { return h.sum }

// Max reports the largest observation (exact, not bucketed).
func (h *Hist) Max() float64 { return h.max }

// Mean reports the average observation, 0 when empty.
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation inside the covering bucket, clamped to the exact maximum.
//
// NaN policy: a histogram never reports NaN. An empty histogram reports 0
// for every quantile (and Mean/Max/Sum are 0), a single-sample histogram
// reports that sample's bucket clamped to the exact max for every
// quantile, and NaN observations were already clamped to 0 by Observe —
// so flattened summary keys (Snapshot.Map) and rendered tables stay
// finite and diffable.
func (h *Hist) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := q * float64(h.count)
	if target < 1 {
		target = 1
	}
	cum := 0.0
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += float64(c)
		if cum >= target {
			lo, hi := histBounds(i)
			frac := (target - (cum - float64(c))) / float64(c)
			v := lo + (hi-lo)*frac
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Clone returns an independent copy.
func (h *Hist) Clone() *Hist {
	c := *h
	return &c
}

// MergeFrom folds o's observations into h (bucket-wise sums; the max is
// the max of the two). This is the across-workers combination Collector
// applies.
func (h *Hist) MergeFrom(o *Hist) {
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}
