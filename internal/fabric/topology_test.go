package fabric

import (
	"reflect"
	"testing"

	"vibe/internal/sim"
)

func routeOf(t *testing.T, topo Topology, src, dst NodeID) []SwitchID {
	t.Helper()
	r := topo.Route(nil, src, dst)
	if len(r) == 0 {
		t.Fatalf("%s: empty route %d->%d", topo.Name(), src, dst)
	}
	if r[0] != topo.HostSwitch(src) || r[len(r)-1] != topo.HostSwitch(dst) {
		t.Fatalf("%s: route %d->%d = %v does not span host switches %d..%d",
			topo.Name(), src, dst, r, topo.HostSwitch(src), topo.HostSwitch(dst))
	}
	return r
}

func TestFatTreeRoutes(t *testing.T) {
	// 8 hosts, 2 per leaf: leaves 0..3, spines 4..5.
	ft := NewFatTree(8, 2)
	if ft.Switches() != 6 {
		t.Fatalf("switches = %d, want 6", ft.Switches())
	}
	cases := []struct {
		src, dst NodeID
		want     []SwitchID
	}{
		{0, 1, []SwitchID{0}},       // same leaf: one hop
		{0, 5, []SwitchID{0, 5, 2}}, // spine = 4 + dst%2 = 5
		{7, 2, []SwitchID{3, 4, 1}}, // spine = 4 + 2%2 = 4
		{6, 0, []SwitchID{3, 4, 0}}, // all traffic to host 0 shares spine 4
		{2, 0, []SwitchID{1, 4, 0}}, // ... from every leaf (D-mod-k incast hotspot)
	}
	for _, c := range cases {
		if got := routeOf(t, ft, c.src, c.dst); !reflect.DeepEqual(got, c.want) {
			t.Errorf("route %d->%d = %v, want %v", c.src, c.dst, got, c.want)
		}
	}
}

func TestDragonflyRoutes(t *testing.T) {
	// 6 hosts, 1 per router: a=2 routers per group, 3 groups; router r of
	// group g is switch g*2+r, and each router owns one global link.
	df := NewDragonfly(6, 1)
	if df.Switches() != 6 {
		t.Fatalf("switches = %d, want 6", df.Switches())
	}
	cases := []struct {
		src, dst NodeID
		want     []SwitchID
	}{
		{0, 1, []SwitchID{0, 1}},       // intra-group local link
		{0, 2, []SwitchID{0, 2}},       // src router is the gateway, dst router too
		{1, 4, []SwitchID{1, 4}},       // router 1 owns the g0<->g2 link
		{0, 5, []SwitchID{0, 1, 4, 5}}, // local, global, local: the full 3-hop path
		{5, 0, []SwitchID{5, 4, 1, 0}}, // reverse path is the mirror (same link both ways)
	}
	for _, c := range cases {
		if got := routeOf(t, df, c.src, c.dst); !reflect.DeepEqual(got, c.want) {
			t.Errorf("route %d->%d = %v, want %v", c.src, c.dst, got, c.want)
		}
	}
}

func TestTorusRoutes(t *testing.T) {
	// 27 hosts, 1 per switch: a 3x3x3 cube, switch (x,y,z) = (z*3+y)*3+x.
	ts := NewTorus3D(27, 1)
	if ts.Switches() != 27 {
		t.Fatalf("switches = %d, want 27", ts.Switches())
	}
	cases := []struct {
		src, dst NodeID
		want     []SwitchID
	}{
		{0, 1, []SwitchID{0, 1}},           // +x, one step
		{0, 2, []SwitchID{0, 2}},           // wraparound: -x is shorter than +x+x
		{0, 13, []SwitchID{0, 1, 4, 13}},   // dimension order: X then Y then Z
		{26, 0, []SwitchID{26, 24, 18, 0}}, // all three dims wrap (+1 each ring)
	}
	for _, c := range cases {
		if got := routeOf(t, ts, c.src, c.dst); !reflect.DeepEqual(got, c.want) {
			t.Errorf("route %d->%d = %v, want %v", c.src, c.dst, got, c.want)
		}
	}

	// Even side: an exactly-opposite pair ties, and the tie breaks toward
	// +1 so both directions of the same pair route deterministically.
	even := NewTorus3D(64, 1)
	if got, want := routeOf(t, even, 0, 2), []SwitchID{0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("tie-break route 0->2 = %v, want %v", got, want)
	}

	// Multiple hosts per switch share its attachment point.
	multi := NewTorus3D(16, 2)
	if multi.Switches() != 8 {
		t.Fatalf("16 hosts at 2/switch: switches = %d, want 8", multi.Switches())
	}
	if multi.HostSwitch(3) != 1 || multi.HostSwitch(15) != 7 {
		t.Fatalf("host mapping = %d,%d, want 1,7", multi.HostSwitch(3), multi.HostSwitch(15))
	}
	// Same-switch hosts never call Route in the fabric; spot-check the
	// adjacent-switch case still holds with hostsPer > 1.
	if got, want := routeOf(t, multi, 0, 2), []SwitchID{0, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("route 0->2 = %v, want %v", got, want)
	}
}

// fatTreeParams: testParams on a degenerate fat-tree with one host per
// leaf, so every cross-host packet crosses leaf -> spine -> leaf.
func fatTreeParams(buf int) Params {
	p := testParams()
	p.Topology = TopoFatTree
	p.TopologyDegree = 1
	p.SwitchBufPkts = buf
	return p
}

func TestFatTreeMultiHopTiming(t *testing.T) {
	// 2 hosts, 1 per leaf: route is [leaf0, spine, leaf1] — three
	// store-and-forward stages after the NIC.
	e := sim.NewEngine(1)
	nw := New(e, 2, fatTreeParams(0))
	var arrival sim.Time
	e.At(0, func() {
		if txDone := nw.Send(0, 1, 1000, "hop"); txDone != 8000 {
			t.Errorf("txDone = %v, want 8000ns", txDone)
		}
	})
	e.Spawn("rx", func(p *sim.Proc) {
		nw.Inbox(1).Pop(p)
		arrival = p.Now()
	})
	e.MustRun()
	// Store-and-forward over 3 switches: 4 serializations (NIC + 3 switch
	// egresses) + 4 link hops + 3 switch delays
	//   = 4*8000 + 4*1000 + 3*500 = 37500ns.
	if arrival != 37500 {
		t.Fatalf("arrival = %v, want 37500ns", arrival)
	}
	if nw.SerTime != 32000 {
		t.Fatalf("SerTime = %v, want 32000ns (4 serializations)", nw.SerTime)
	}
	if nw.PropTime != 5500 {
		t.Fatalf("PropTime = %v, want 5500ns (4 links + 3 switches)", nw.PropTime)
	}
	// Spine forwarded the packet; its stats say so.
	spine := nw.SwitchStats(2)
	if spine.TxPackets != 1 || spine.TxBytes != 1000 {
		t.Fatalf("spine stats = %+v", spine)
	}
	checkConservation(t, nw)
}

func TestTorusMultiHopTiming(t *testing.T) {
	// 2 hosts on a side-2 torus: hosts 0,1 attach to adjacent switches, so
	// the route is [sw0, sw1] — two stages.
	p := testParams()
	p.Topology = TopoTorus3D
	e := sim.NewEngine(1)
	nw := New(e, 2, p)
	var arrival sim.Time
	e.At(0, func() { nw.Send(0, 1, 1000, "ring") })
	e.Spawn("rx", func(pr *sim.Proc) {
		nw.Inbox(1).Pop(pr)
		arrival = pr.Now()
	})
	e.MustRun()
	// 3 serializations + 3 links + 2 switch delays
	//   = 24000 + 3000 + 1000 = 28000ns.
	if arrival != 28000 {
		t.Fatalf("arrival = %v, want 28000ns", arrival)
	}
	checkConservation(t, nw)
}

func TestCreditBackpressureStallsSender(t *testing.T) {
	// One-packet output buffers on the degenerate fat-tree: the second
	// packet cannot even start serializing at the NIC until the first has
	// fully left the first switch's output queue.
	e := sim.NewEngine(1)
	nw := New(e, 2, fatTreeParams(1))
	var tx2 sim.Time
	var arrivals []sim.Time
	e.At(0, func() {
		nw.Send(0, 1, 1000, 1)
		tx2 = nw.Send(0, 1, 1000, 2)
	})
	e.Spawn("rx", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			nw.Inbox(1).Pop(p)
			arrivals = append(arrivals, p.Now())
		}
	})
	e.MustRun()
	// Packet 1's leaf-egress transmit completes at 17500 (8000 NIC ser +
	// 1500 link+switch + 8000 switch ser); only then does packet 2 get the
	// leaf's single buffer slot, so its NIC serialization runs 17500..25500
	// instead of the unbounded 8000..16000.
	if tx2 != 25500 {
		t.Fatalf("stalled txDone = %v, want 25500ns", tx2)
	}
	// Packet 1 is undisturbed; packet 2 trails it by one full store-and-
	// forward pipeline restart.
	if arrivals[0] != 37500 || arrivals[1] != 55000 {
		t.Fatalf("arrivals = %v, want [37500ns 55000ns]", arrivals)
	}
	if nw.CreditStalls() != 1 {
		t.Fatalf("credit stalls = %d, want 1", nw.CreditStalls())
	}
	if got := nw.MaxQueueDepth(); got != 1 {
		t.Fatalf("max queue depth = %d, want 1 (buffer bound)", got)
	}
	checkConservation(t, nw)
}

func TestFiniteBuffersBoundQueueDepth(t *testing.T) {
	// A burst far larger than the buffers: occupancy must never exceed
	// SwitchBufPkts anywhere — backpressure, not buffering, absorbs it.
	const bufPkts = 2
	e := sim.NewEngine(1)
	nw := New(e, 4, fatTreeParams(bufPkts))
	e.At(0, func() {
		for i := 0; i < 24; i++ {
			nw.Send(NodeID(1+i%3), 0, 1000, i)
		}
	})
	e.Spawn("rx", func(p *sim.Proc) {
		for i := 0; i < 24; i++ {
			nw.Inbox(0).Pop(p)
		}
	})
	e.MustRun()
	if got := nw.MaxQueueDepth(); got > bufPkts {
		t.Fatalf("max queue depth %d exceeds buffer bound %d", got, bufPkts)
	}
	if nw.CreditStalls() == 0 {
		t.Fatal("24-packet incast through 2-packet buffers produced no credit stalls")
	}
	checkConservation(t, nw)
}

// runTopoTrace runs a fixed multi-sender pattern and returns the arrival
// times plus headline counters, for determinism comparison.
func runTopoTrace(t *testing.T, p Params, seed int64) ([]sim.Time, [2]uint64) {
	t.Helper()
	e := sim.NewEngine(seed)
	nw := New(e, 6, p)
	const n = 18
	e.At(0, func() {
		for i := 0; i < n; i++ {
			nw.Send(NodeID(1+i%5), 0, 256+64*(i%3), i)
		}
	})
	var arrivals []sim.Time
	e.Spawn("rx", func(pr *sim.Proc) {
		for i := 0; i < n; i++ {
			nw.Inbox(0).Pop(pr)
			arrivals = append(arrivals, pr.Now())
		}
	})
	e.MustRun()
	return arrivals, [2]uint64{nw.Delivered, nw.CreditStalls()}
}

func TestRoutedFabricDeterminism(t *testing.T) {
	for _, topo := range []string{TopoFatTree, TopoDragonfly, TopoTorus3D} {
		p := testParams()
		p.Topology = topo
		p.TopologyDegree = 1
		p.SwitchBufPkts = 2
		a1, c1 := runTopoTrace(t, p, 7)
		a2, c2 := runTopoTrace(t, p, 7)
		if !reflect.DeepEqual(a1, a2) || c1 != c2 {
			t.Errorf("%s: identical runs diverged: %v/%v vs %v/%v", topo, a1, c1, a2, c2)
		}
	}
}

func TestBuildTopologySelection(t *testing.T) {
	for _, name := range TopologyNames() {
		p := Params{Topology: name}
		if got := BuildTopology(p, 8).Name(); got != name {
			t.Errorf("BuildTopology(%q).Name() = %q", name, got)
		}
	}
	if got := BuildTopology(Params{}, 4).Name(); got != TopoCrossbar {
		t.Errorf("default topology = %q, want crossbar", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic on unknown topology")
		}
	}()
	BuildTopology(Params{Topology: "moebius"}, 4)
}
