// Package fabric models the interconnect of the simulated cluster: hosts
// attached through full-duplex links to a switched fabric, with per-link
// bandwidth serialization, propagation latency, per-switch forwarding
// delay, finite output buffers with credit-based backpressure, and
// optional loss injection. The default topology is a single crossbar
// switch; fat-tree, dragonfly, and 3D-torus graphs route packets across
// multiple switches, each hop serializing on its own output port so
// congestion is emergent rather than modeled (see Topology).
//
// The fabric is deliberately protocol-agnostic: it moves opaque payloads of
// a declared wire size between node inboxes. The NIC models in
// internal/via implement framing, fragmentation and reliability on top.
package fabric

import (
	"fmt"
	"math"

	"vibe/internal/sim"
)

// NodeID identifies a host attached to the fabric.
type NodeID int

// Params describes the physical characteristics of a network. All three of
// the paper's interconnects (Myrinet, Gigabit Ethernet, Giganet cLAN) are
// instances of this shape with different constants.
type Params struct {
	Name string

	// BandwidthBps is the link bandwidth in bits per second. Every link
	// (host-switch, switch-switch, switch-host) runs at this rate.
	BandwidthBps float64

	// LinkLatency is the propagation delay of one link hop.
	LinkLatency sim.Duration

	// SwitchLatency is a switch's store-and-forward/arbitration delay,
	// paid once per switch traversed.
	SwitchLatency sim.Duration

	// FrameOverhead is the per-packet wire framing in bytes (headers,
	// preamble, CRC) added to every packet's serialization time.
	FrameOverhead int

	// DropRate is the probability that any given packet is silently lost.
	// Real SANs are nearly lossless; reliability benchmarks raise this to
	// exercise retransmission.
	DropRate float64

	// Topology selects the switch graph: "" or "crossbar" (one central
	// switch, the default), "fattree", "dragonfly", or "torus3d". See
	// BuildTopology.
	Topology string

	// TopologyDegree is the host-attachment arity of routed topologies:
	// hosts per leaf (and the spine count) for fattree, hosts per router
	// for dragonfly, hosts per switch for torus3d. 0 picks the topology
	// default.
	TopologyDegree int

	// SwitchBufPkts bounds every switch output port's queue, in packets.
	// A full queue withholds transmit credit from the upstream stage, so
	// congestion backpressures hop by hop all the way to the sending NIC
	// (whose Send return value moves out accordingly). 0 means unbounded
	// ideal switches — the crossbar baseline behavior.
	SwitchBufPkts int

	// RoutePolicy selects how Send picks among a topology's candidate
	// paths: "" or "failover" (deterministic — the primary path unless an
	// element oracle reports a switch or inter-switch link down, then the
	// first alive alternate in candidate order), or "adaptive"
	// (least-queued — the alive candidate whose output ports carry the
	// least pending work, ties to the lowest candidate index). With no
	// oracle installed, failover is byte-identical to the pre-multipath
	// single-path routing.
	RoutePolicy string
}

// Route policies (see Params.RoutePolicy).
const (
	RouteFailover = "failover"
	RouteAdaptive = "adaptive"
)

// RoutePolicyNames lists the route policies in canonical order.
func RoutePolicyNames() []string { return []string{RouteFailover, RouteAdaptive} }

// SerializationTime reports how long a payload of n bytes occupies a link.
func (p *Params) SerializationTime(n int) sim.Duration {
	bits := float64(n+p.FrameOverhead) * 8
	return sim.Duration(bits / p.BandwidthBps * float64(sim.Second))
}

// Delivery is what arrives in a node's inbox. Inboxes carry *Delivery
// values drawn from a network-local free list; the receiver hands each one
// back with Recycle once it has read the fields.
type Delivery struct {
	Src     NodeID
	Dst     NodeID
	Size    int // wire payload bytes (excluding frame overhead)
	Payload interface{}

	// Corrupted marks a packet whose frame check failed in flight. The
	// fabric still delivers it — detection happens at the receiving NIC,
	// which discards the frame — so corruption costs wire time, exactly
	// like a real CRC drop.
	Corrupted bool

	// Shared marks a delivery whose Payload is aliased by another copy
	// (fault-injected duplication). Receivers must not recycle shared
	// payloads back into sender-owned free lists.
	Shared bool

	// recycled guards against double Recycle: set when the delivery is
	// handed back, cleared when it is drawn again.
	recycled bool
}

// DropFilter decides whether a particular packet should be lost. It runs
// after the injector chain and before the random drop check; returning
// true drops the packet. The index is a global packet sequence number, so
// tests can target exact packets.
type DropFilter func(index uint64, d Delivery) bool

// DropCause classifies why the fabric dropped a packet.
type DropCause int

const (
	// DropCauseFault: an injector chain verdict (fault plans, link outages).
	DropCauseFault DropCause = iota
	// DropCauseFilter: the SetDropFilter callback.
	DropCauseFilter
	// DropCauseRate: the probabilistic Params.DropRate coin.
	DropCauseRate

	dropCauses
)

// String names the cause for metrics keys and error messages.
func (c DropCause) String() string {
	switch c {
	case DropCauseFault:
		return "fault"
	case DropCauseFilter:
		return "filter"
	case DropCauseRate:
		return "rate"
	}
	return "unknown"
}

// PacketFault is an injector's verdict on one packet. The zero value means
// "deliver untouched". Verdicts from a chain of injectors combine: any
// drop wins, corruption and duplication accumulate, delays add.
type PacketFault struct {
	Drop       bool
	Corrupt    bool
	Duplicates int
	Delay      sim.Duration
}

// merge combines two verdicts on the same packet.
func (f PacketFault) merge(g PacketFault) PacketFault {
	f.Drop = f.Drop || g.Drop
	f.Corrupt = f.Corrupt || g.Corrupt
	f.Duplicates += g.Duplicates
	f.Delay += g.Delay
	return f
}

// PacketInjector inspects every packet entering the fabric and returns a
// fault verdict. Injectors run on the sender's side before loss checks;
// index is the same global packet sequence number DropFilter sees.
type PacketInjector interface {
	InjectPacket(index uint64, now sim.Time, d *Delivery) PacketFault
}

// ElementOracle answers fabric-element liveness questions at an instant;
// a compiled fault plan implements it for switch-down and
// switch-link-down specs. Liveness is consulted synchronously when Send
// resolves a route — packets already in flight deliver normally, the way
// a real fabric drains wires behind a failing crossbar — and the oracle
// must be a pure function of its arguments so both process models and
// repeated runs see identical routes.
type ElementOracle interface {
	// SwitchDown reports whether switch s is dead at now.
	SwitchDown(s int, now sim.Time) bool
	// SwitchLinkDown reports whether the inter-switch link {a, b} is dead
	// at now. Implementations must be order-insensitive in (a, b).
	SwitchLinkDown(a, b int, now sim.Time) bool
}

type port struct {
	up   *sim.Pipe // node -> switch
	down *sim.Pipe // switch -> node
	in   *sim.Queue[*Delivery]

	// wire is the down link's in-flight FIFO: packets waiting for their
	// delivery instant, consumed from wireHead. One standing engine event
	// per port (armed, firing deliver) walks it instead of one event per
	// packet — see Network.enqueue.
	wire     []flight
	wireHead int
	armed    bool
	deliver  func()

	// Per-link traffic counters (wire payload bytes, like BytesSent).
	txPkts, txBytes uint64
	rxPkts, rxBytes uint64

	// rxCorrupt splits rxPkts: frames that arrived with a failed check
	// and will be discarded by the receiving NIC, so consumed packets
	// reconcile as rxPkts - rxCorrupt.
	rxCorrupt uint64

	// Drops of packets this node transmitted, split by cause.
	drops [dropCauses]uint64
}

// flight is one packet in a port's in-flight FIFO.
type flight struct {
	d  *Delivery
	at sim.Time
}

// LinkStats is one attached link's traffic totals. Drops are attributed
// to the transmitting link, split by cause; Dropped is their sum.
// Delivered packets obey Sent - Dropped + Duplicated = Delivered when
// summed across all links (per-port conservation).
type LinkStats struct {
	TxPackets, TxBytes uint64
	RxPackets, RxBytes uint64

	// RxCorrupt counts received frames whose check failed in flight; they
	// are included in RxPackets/RxBytes (they cost wire time) but the NIC
	// discards them before protocol processing.
	RxCorrupt uint64

	Dropped       uint64
	DroppedFault  uint64 // injector chain (fault plans, link outages)
	DroppedFilter uint64 // SetDropFilter callback
	DroppedRate   uint64 // probabilistic Params.DropRate
}

// timeNever marks an output-queue slot as occupied while its release
// instant is still being computed (the whole path resolves within one
// Send call, so the sentinel never escapes).
const timeNever = sim.Time(math.MaxInt64)

// outPort is one switch output queue: the transmit pipe serializing onto
// the outgoing link plus, when the fabric has finite buffers, a credit
// ring of occupied-slot release instants.
type outPort struct {
	pipe *sim.Pipe

	// rel holds the release instant of each occupied buffer slot;
	// len(rel) == Params.SwitchBufPkts. nil means unbounded.
	rel []sim.Time

	txPkts, txBytes uint64

	// Credit accounting: how often (and for how long) an upstream stage
	// had to wait for a free slot in this queue, and the deepest
	// occupancy an admission observed (finite buffers only).
	creditStalls uint64
	stallTime    sim.Duration
	maxQueue     int
}

// claim reserves a buffer slot for a packet whose upstream transmit is
// ready at the given instant. It returns the (possibly credit-delayed)
// transmit start and the slot index to release once the packet has fully
// left this queue. Unbounded queues grant immediately with slot -1.
func (q *outPort) claim(ready sim.Time) (sim.Time, int) {
	if q.rel == nil {
		return ready, -1
	}
	best := 0
	for i := 1; i < len(q.rel); i++ {
		if q.rel[i] < q.rel[best] {
			best = i
		}
	}
	start := ready
	if free := q.rel[best]; free > ready {
		start = free
		q.creditStalls++
		q.stallTime += free.Sub(ready)
	}
	depth := 1
	for _, r := range q.rel {
		if r > start {
			depth++
		}
	}
	if depth > q.maxQueue {
		q.maxQueue = depth
	}
	q.rel[best] = timeNever
	return start, best
}

// release frees a claimed slot at the instant the packet finishes
// transmitting out of the queue.
func (q *outPort) release(slot int, at sim.Time) {
	if slot >= 0 {
		q.rel[slot] = at
	}
}

// swNode is one switch: its output ports, created lazily as routes first
// use them, keyed by next-hop switch (int(SwitchID)) or attached host
// (Switches() + int(NodeID)).
type swNode struct {
	outs map[int]*outPort
}

// SwitchStats aggregates one switch's output-port activity.
type SwitchStats struct {
	Ports     int // output ports traffic has used
	TxPackets uint64
	TxBytes   uint64

	// CreditStalls/StallTime: admissions that waited for a buffer slot in
	// one of this switch's output queues, and their total wait.
	CreditStalls uint64
	StallTime    sim.Duration

	// MaxQueue is the deepest output-queue occupancy observed (finite
	// buffers only; 0 when SwitchBufPkts is unbounded).
	MaxQueue int
}

// Network is the switched interconnect: hosts attached to a Topology of
// switches (a single crossbar by default).
type Network struct {
	eng    *sim.Engine
	params Params
	ports  []*port

	topo     Topology
	switches []*swNode

	// route/path/alt are per-Send scratch (the engine is single-threaded).
	route []SwitchID
	path  []*outPort
	alt   []SwitchID

	dropFilter DropFilter
	injectors  []PacketInjector

	// oracle (when installed) reports dead switches/links at route-pick
	// time; adaptive selects the least-queued candidate path instead of
	// the deterministic failover order.
	oracle   ElementOracle
	adaptive bool

	// firstReroute is the instant the first packet left its primary path
	// (valid when hasReroute).
	firstReroute sim.Time
	hasReroute   bool

	// delFree recycles Delivery objects so the per-packet hot path does
	// not allocate. Engine-local: the simulation is single-threaded.
	delFree []*Delivery

	// Counters for tests and reporting. Dropped is the total across all
	// causes; droppedBy splits it (see DroppedBy). With fault-injected
	// duplication, Delivered = Sent - Dropped + Duplicated.
	Sent       uint64
	Delivered  uint64
	Dropped    uint64
	BytesSent  uint64
	Duplicated uint64 // extra copies scheduled by injectors
	Corrupted  uint64 // packets marked corrupt in flight

	// Rerouted counts packets sent over a non-primary candidate path
	// (failover around a dead element, or an adaptive least-queued pick);
	// Unroutable counts packets dropped because every candidate path
	// crossed a dead element. Unroutable drops are included in Dropped
	// under DropCauseFault.
	Rerouted   uint64
	Unroutable uint64

	droppedBy [dropCauses]uint64

	// SerTime accumulates link occupancy spent serializing packets (every
	// hop's link); PropTime accumulates the propagation plus switch
	// latency of packets that were actually forwarded. Together they split
	// wire time into the bandwidth-bound and distance-bound parts.
	SerTime  sim.Duration
	PropTime sim.Duration
}

// New creates a network with n nodes attached to e, on the topology
// params selects (the single crossbar when unset).
func New(e *sim.Engine, n int, params Params) *Network {
	if n < 1 {
		panic("fabric: need at least one node")
	}
	nw := &Network{eng: e, params: params}
	switch params.RoutePolicy {
	case "", RouteFailover:
	case RouteAdaptive:
		nw.adaptive = true
	default:
		panic(fmt.Sprintf("fabric: unknown route policy %q", params.RoutePolicy))
	}
	for i := 0; i < n; i++ {
		p := &port{
			up:   sim.NewPipe(e),
			down: sim.NewPipe(e),
			in:   sim.NewQueue[*Delivery](e),
		}
		p.deliver = func() { nw.deliverNext(p) }
		nw.ports = append(nw.ports, p)
	}
	nw.topo = BuildTopology(params, n)
	nw.switches = make([]*swNode, nw.topo.Switches())
	for i := range nw.switches {
		nw.switches[i] = &swNode{outs: make(map[int]*outPort)}
	}
	return nw
}

// Params returns the network's physical parameters.
func (nw *Network) Params() Params { return nw.params }

// Nodes reports the number of attached nodes.
func (nw *Network) Nodes() int { return len(nw.ports) }

// Topology returns the switch graph packets route over.
func (nw *Network) Topology() Topology { return nw.topo }

// Switches reports the number of switches in the topology.
func (nw *Network) Switches() int { return len(nw.switches) }

// Inbox returns the delivery queue for node id. NIC receive engines block
// on it.
func (nw *Network) Inbox(id NodeID) *sim.Queue[*Delivery] {
	return nw.port(id).in
}

// SetDropFilter installs (or, with nil, removes) a deterministic loss
// filter.
func (nw *Network) SetDropFilter(f DropFilter) { nw.dropFilter = f }

// AddInjector appends an injector to the fault chain. Injectors run in
// installation order on every packet, before the drop filter and the
// random loss check.
func (nw *Network) AddInjector(inj PacketInjector) {
	nw.injectors = append(nw.injectors, inj)
}

// SetElementOracle installs (or, with nil, removes) the fabric-element
// liveness oracle consulted at route-pick time.
func (nw *Network) SetElementOracle(o ElementOracle) { nw.oracle = o }

// FirstRerouteAt reports the instant the first packet left its primary
// path, and whether any has.
func (nw *Network) FirstRerouteAt() (sim.Time, bool) {
	return nw.firstReroute, nw.hasReroute
}

// DroppedBy reports how many packets were dropped for the given cause.
func (nw *Network) DroppedBy(c DropCause) uint64 {
	if c < 0 || c >= dropCauses {
		return 0
	}
	return nw.droppedBy[c]
}

// LinkStats reports node id's link traffic totals.
func (nw *Network) LinkStats(id NodeID) LinkStats {
	p := nw.port(id)
	return LinkStats{
		TxPackets: p.txPkts, TxBytes: p.txBytes,
		RxPackets: p.rxPkts, RxBytes: p.rxBytes,
		RxCorrupt:     p.rxCorrupt,
		Dropped:       p.drops[DropCauseFault] + p.drops[DropCauseFilter] + p.drops[DropCauseRate],
		DroppedFault:  p.drops[DropCauseFault],
		DroppedFilter: p.drops[DropCauseFilter],
		DroppedRate:   p.drops[DropCauseRate],
	}
}

// SwitchStats reports switch s's aggregated output-port activity.
func (nw *Network) SwitchStats(s SwitchID) SwitchStats {
	if int(s) < 0 || int(s) >= len(nw.switches) {
		panic(fmt.Sprintf("fabric: no switch %d", s))
	}
	var st SwitchStats
	sw := nw.switches[s]
	st.Ports = len(sw.outs)
	for _, q := range sw.outs {
		st.TxPackets += q.txPkts
		st.TxBytes += q.txBytes
		st.CreditStalls += q.creditStalls
		st.StallTime += q.stallTime
		if q.maxQueue > st.MaxQueue {
			st.MaxQueue = q.maxQueue
		}
	}
	return st
}

// MaxQueueDepth reports the deepest switch output-queue occupancy seen
// anywhere in the fabric (0 with unbounded buffers). With finite buffers
// it can never exceed Params.SwitchBufPkts — backpressure, not buffering,
// absorbs congestion.
func (nw *Network) MaxQueueDepth() int {
	max := 0
	for _, sw := range nw.switches {
		for _, q := range sw.outs {
			if q.maxQueue > max {
				max = q.maxQueue
			}
		}
	}
	return max
}

// CreditStalls reports the total number of times any fabric stage waited
// for a downstream buffer slot.
func (nw *Network) CreditStalls() uint64 {
	var n uint64
	for _, sw := range nw.switches {
		for _, q := range sw.outs {
			n += q.creditStalls
		}
	}
	return n
}

func (nw *Network) port(id NodeID) *port {
	if int(id) < 0 || int(id) >= len(nw.ports) {
		panic(fmt.Sprintf("fabric: no node %d", id))
	}
	return nw.ports[id]
}

// switchOut returns (creating on first use) switch s's output port under
// the given key. Host-attachment ports transmit on the host's down pipe —
// the same serializer the crossbar used — so per-host delivery ordering
// and LinkStats are identical whatever graph sits upstream.
func (nw *Network) switchOut(s SwitchID, key int, pipe *sim.Pipe) *outPort {
	sw := nw.switches[s]
	q := sw.outs[key]
	if q == nil {
		if pipe == nil {
			pipe = sim.NewPipe(nw.eng)
		}
		q = &outPort{pipe: pipe}
		if b := nw.params.SwitchBufPkts; b > 0 {
			q.rel = make([]sim.Time, b)
		}
		sw.outs[key] = q
	}
	return q
}

// getDelivery draws a Delivery from the free list, allocating on miss.
func (nw *Network) getDelivery() *Delivery {
	if n := len(nw.delFree); n > 0 {
		d := nw.delFree[n-1]
		nw.delFree[n-1] = nil
		nw.delFree = nw.delFree[:n-1]
		d.recycled = false
		return d
	}
	return &Delivery{}
}

// Recycle returns a delivery popped from an inbox to the network's free
// list. The caller must not retain d (or read it again) afterwards.
// Shared deliveries (aliased payloads from fault-injected duplication)
// are cleared but never re-pooled: another copy holding the same payload
// may still be in flight, and re-pooling the wrapper would let a fresh
// packet alias it. Recycling the same delivery twice panics.
func (nw *Network) Recycle(d *Delivery) {
	if d.recycled {
		panic("fabric: delivery recycled twice")
	}
	shared := d.Shared
	*d = Delivery{recycled: true}
	if shared {
		return
	}
	nw.delFree = append(nw.delFree, d)
}

// Send injects a packet from src toward dst. It does not block the
// caller: link occupancy is modeled with pipes and the delivery is
// scheduled as an engine event. Send returns the instant the packet
// finishes serializing onto the source link (when the sending NIC's
// transmitter is free again); with finite switch buffers that instant
// includes any wait for a first-hop output credit, which is how fabric
// congestion backpressures the sending NIC.
//
// Loopback (src == dst) is NIC-local: the frame serializes once through
// the adapter's transmit path and is handed straight to its own receive
// path — no switch traversal, no link propagation, no PropTime. Loopback
// packets still run the injector chain and the loss checks.
func (nw *Network) Send(src, dst NodeID, size int, payload interface{}) sim.Time {
	sp := nw.port(src)
	ser := nw.params.SerializationTime(size)

	nw.Sent++
	nw.BytesSent += uint64(size)
	sp.txPkts++
	sp.txBytes += uint64(size)

	idx := nw.Sent - 1
	d := nw.getDelivery()
	d.Src, d.Dst, d.Size, d.Payload = src, dst, size, payload

	// Tracing() guard: argument materialization must stay off the
	// uninstrumented hot path, and emission never touches virtual time.
	if nw.eng.Tracing() {
		nw.eng.Tracef("link%d: tx dst=%d %dB", src, dst, size)
	}

	// Fault chain first: an injected drop models a deliberate outage and
	// pre-empts the (rng-consuming) random loss check. Dropped packets
	// still cost serialization time on the source link.
	var f PacketFault
	for _, inj := range nw.injectors {
		f = f.merge(inj.InjectPacket(idx, nw.eng.Now(), d))
	}
	switch {
	case f.Drop:
		return nw.drop(sp, d, DropCauseFault, ser)
	case nw.dropFilter != nil && nw.dropFilter(idx, *d):
		return nw.drop(sp, d, DropCauseFilter, ser)
	case nw.params.DropRate > 0 && nw.eng.Rand().Float64() < nw.params.DropRate:
		return nw.drop(sp, d, DropCauseRate, ser)
	}
	if f.Corrupt {
		d.Corrupted = true
		nw.Corrupted++
	}
	copies := 1
	if f.Duplicates > 0 {
		copies += f.Duplicates
		d.Shared = true
		nw.Duplicated += uint64(f.Duplicates)
	}
	if src == dst {
		return nw.sendLocal(sp, d, ser, f.Delay, copies)
	}
	return nw.sendRouted(sp, d, ser, f.Delay, copies)
}

// sendLocal is the loopback path: the frame occupies the node's transmit
// serializer once and arrives back on the same node at that instant
// (plus any injected delay). Delivery uses a dedicated event rather than
// the down-link FIFO, whose instants it would interleave with
// non-monotonically.
func (nw *Network) sendLocal(sp *port, d *Delivery, ser, delay sim.Duration, copies int) sim.Time {
	txDone := sp.up.Occupy(ser)
	nw.SerTime += ser
	at := txDone.Add(delay)
	for c := 0; c < copies; c++ {
		dc := d
		if c > 0 {
			dc = nw.getDelivery()
			*dc = *d
		}
		nw.eng.At(at, func() { nw.deliverNow(sp, dc) })
	}
	return txDone
}

// sendRouted carries a packet over its deterministic switch path with
// per-hop store-and-forward: each stage begins transmitting once the
// whole packet has arrived (link propagation plus switch delay behind
// it), once its own transmitter is idle, and — with finite buffers —
// once the downstream output queue grants a slot. A packet's slot in
// each queue is released only when it has fully left that queue, so a
// congested port stalls the whole upstream chain, emergently.
func (nw *Network) sendRouted(sp *port, d *Delivery, ser, delay sim.Duration, copies int) sim.Time {
	dp := nw.port(d.Dst)
	route := nw.pickRoute(d.Src, d.Dst)
	if route == nil {
		// Every candidate path crosses a dead element: the packet is lost
		// inside the fabric. The reliability layer sees it exactly like
		// any injected loss — retransmission, then escalation if the
		// outage outlasts the RTO ladder.
		nw.Unroutable++
		return nw.drop(sp, d, DropCauseFault, ser)
	}
	hops := len(route)

	// Resolve the output queue each switch transmits from: queue i
	// forwards toward route[i+1], the last one toward the host.
	path := nw.path[:0]
	for i, s := range route {
		if i+1 < hops {
			path = append(path, nw.switchOut(s, int(route[i+1]), nil))
		} else {
			path = append(path, nw.switchOut(s, len(nw.switches)+int(d.Dst), dp.down))
		}
	}
	nw.path = path

	// Stage 0: the host NIC transmits into the first switch, gated by
	// that switch's output credit. The injected delay lands at the first
	// switch, like the crossbar's.
	start, slot := path[0].claim(nw.eng.Now())
	txDone := sp.up.OccupyFrom(start, ser)
	nw.SerTime += ser
	atFirst := txDone.Add(nw.params.LinkLatency).Add(nw.params.SwitchLatency).Add(delay)

	prop := sim.Duration(hops+1)*nw.params.LinkLatency + sim.Duration(hops)*nw.params.SwitchLatency
	heldQ, heldSlot := path[0], slot
	for c := 0; c < copies; c++ {
		dc := d
		if c > 0 {
			dc = nw.getDelivery()
			*dc = *d
			// A duplicate materializes inside the first switch: it holds
			// no slot there (fault copies overcommit the buffer) and
			// queues behind the original on every outgoing link.
			heldQ, heldSlot = nil, -1
		}
		ready := atFirst
		for i := 0; i < hops; i++ {
			q := path[i]
			start := ready
			var nq *outPort
			nslot := -1
			if i+1 < hops {
				nq = path[i+1]
				start, nslot = nq.claim(ready)
			}
			out := q.pipe.OccupyFrom(start, ser)
			q.txPkts++
			q.txBytes += uint64(d.Size)
			nw.SerTime += ser
			if nw.eng.Tracing() {
				// The forward span covers the hop's serialization window
				// [out-ser, out), placed on the switch's own track.
				nw.eng.TraceSpanf(out.Add(-ser), ser, "switch%d: fwd dst=%d %dB hop=%d/%d",
					route[i], d.Dst, d.Size, i+1, hops)
			}
			if heldQ != nil {
				heldQ.release(heldSlot, out)
			}
			heldQ, heldSlot = nq, nslot
			ready = out.Add(nw.params.LinkLatency)
			if i+1 < hops {
				ready = ready.Add(nw.params.SwitchLatency)
			}
		}
		nw.PropTime += prop
		nw.enqueue(dp, dc, ready)
	}
	return txDone
}

// pickRoute resolves the switch path a packet takes right now, applying
// the route policy. With no oracle and the default failover policy this
// is exactly the topology's primary route — the pre-multipath behavior,
// byte for byte. It returns nil when every candidate path crosses a dead
// element. The returned slice is nw.route scratch.
func (nw *Network) pickRoute(src, dst NodeID) []SwitchID {
	if nw.oracle == nil && !nw.adaptive {
		nw.route = nw.topo.Route(nw.route[:0], src, dst)
		return nw.route
	}
	now := nw.eng.Now()
	n := nw.topo.AltRoutes(src, dst)
	if !nw.adaptive {
		for k := 0; k < n; k++ {
			nw.route = nw.topo.AltRoute(nw.route[:0], src, dst, k)
			if nw.pathAlive(nw.route, now) {
				if k > 0 {
					nw.noteReroute(now)
				}
				return nw.route
			}
		}
		return nil
	}
	best := -1
	var bestCost sim.Duration
	for k := 0; k < n; k++ {
		nw.alt = nw.topo.AltRoute(nw.alt[:0], src, dst, k)
		if !nw.pathAlive(nw.alt, now) {
			continue
		}
		if c := nw.pathCost(nw.alt, dst, now); best < 0 || c < bestCost {
			best, bestCost = k, c
		}
	}
	if best < 0 {
		return nil
	}
	if best > 0 {
		nw.noteReroute(now)
	}
	nw.route = nw.topo.AltRoute(nw.route[:0], src, dst, best)
	return nw.route
}

// pathAlive reports whether every switch and inter-switch link on the
// route is up according to the oracle (trivially true without one).
func (nw *Network) pathAlive(route []SwitchID, now sim.Time) bool {
	if nw.oracle == nil {
		return true
	}
	for i, s := range route {
		if nw.oracle.SwitchDown(int(s), now) {
			return false
		}
		if i > 0 && nw.oracle.SwitchLinkDown(int(route[i-1]), int(s), now) {
			return false
		}
	}
	return true
}

// pathCost is the adaptive policy's congestion estimate for a candidate
// path: the pending transmit work on each hop's output port (serializer
// busy time past now plus the residual occupancy of every claimed buffer
// slot). Ports no traffic has used yet cost nothing; the map is read
// without instantiating them, so probing a path leaves no trace.
func (nw *Network) pathCost(route []SwitchID, dst NodeID, now sim.Time) sim.Duration {
	var cost sim.Duration
	hops := len(route)
	for i, s := range route {
		key := len(nw.switches) + int(dst)
		if i+1 < hops {
			key = int(route[i+1])
		}
		q := nw.switches[s].outs[key]
		if q == nil {
			continue
		}
		if free := q.pipe.FreeAt(); free > now {
			cost += free.Sub(now)
		}
		for _, r := range q.rel {
			if r > now && r != timeNever {
				cost += r.Sub(now)
			}
		}
	}
	return cost
}

// noteReroute accounts one packet leaving its primary path.
func (nw *Network) noteReroute(now sim.Time) {
	nw.Rerouted++
	if !nw.hasReroute {
		nw.hasReroute = true
		nw.firstReroute = now
	}
}

// LeakedCredits reports switch buffer slots still holding the in-flight
// claim sentinel. Send resolves every claim and release synchronously
// within one call, so a nonzero count between Sends means a claimed slot
// was never released — a credit leak that would throttle the port
// forever.
func (nw *Network) LeakedCredits() int {
	n := 0
	for _, sw := range nw.switches {
		for _, q := range sw.outs {
			for _, r := range q.rel {
				if r == timeNever {
					n++
				}
			}
		}
	}
	return n
}

// deliverNow hands one packet to a node's inbox with the fabric's
// delivery accounting.
func (nw *Network) deliverNow(p *port, d *Delivery) {
	nw.Delivered++
	p.rxPkts++
	p.rxBytes += uint64(d.Size)
	if nw.eng.Tracing() {
		nw.eng.Tracef("link%d: rx src=%d %dB", d.Dst, d.Src, d.Size)
	}
	if d.Corrupted {
		p.rxCorrupt++
	}
	p.in.Push(d)
}

// enqueue appends the packet to dst's in-flight FIFO and arms the port's
// delivery event if it is idle. Per-port delivery instants are monotonic
// (the down link's Pipe hands out non-decreasing completion times), so a
// FIFO walked by one standing event per port delivers every packet at
// exactly the instant a per-packet event would — but an incast burst
// keeps O(ports) events in the heap instead of O(in-flight packets),
// so sifts stay shallow, and the preallocated per-port callback replaces
// a fresh closure per packet.
func (nw *Network) enqueue(dp *port, d *Delivery, at sim.Time) {
	if n := len(dp.wire); n > dp.wireHead && at < dp.wire[n-1].at {
		panic("fabric: per-port delivery instants not monotonic")
	}
	dp.wire = append(dp.wire, flight{d, at})
	if !dp.armed {
		dp.armed = true
		nw.eng.At(at, dp.deliver)
	}
}

// deliverNext fires at the head packet's delivery instant: it hands the
// packet to the inbox and re-arms for the next one. The next event is
// scheduled before the inbox push so that a same-instant follower keeps
// its place ahead of any receiver wake the push schedules — the dispatch
// order per-packet events produced.
func (nw *Network) deliverNext(dp *port) {
	f := dp.wire[dp.wireHead]
	dp.wire[dp.wireHead] = flight{}
	dp.wireHead++
	if dp.wireHead == len(dp.wire) {
		dp.wire = dp.wire[:0]
		dp.wireHead = 0
		dp.armed = false
	} else {
		nw.eng.At(dp.wire[dp.wireHead].at, dp.deliver)
	}
	nw.deliverNow(dp, f.d)
}

// drop records a dropped packet under its cause and recycles the
// delivery. The source link still serializes the doomed frame, exactly
// as the wire would.
func (nw *Network) drop(sp *port, d *Delivery, cause DropCause, ser sim.Duration) sim.Time {
	txDone := sp.up.Occupy(ser)
	nw.SerTime += ser
	nw.Dropped++
	nw.droppedBy[cause]++
	sp.drops[cause]++
	nw.Recycle(d)
	return txDone
}
