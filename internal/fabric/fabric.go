// Package fabric models the interconnect of the simulated cluster: hosts
// attached through full-duplex links to a central crossbar switch, with
// per-link bandwidth serialization, propagation latency, a switch
// forwarding delay, and optional loss injection.
//
// The fabric is deliberately protocol-agnostic: it moves opaque payloads of
// a declared wire size between node inboxes. The NIC models in
// internal/via implement framing, fragmentation and reliability on top.
package fabric

import (
	"fmt"

	"vibe/internal/sim"
)

// NodeID identifies a host attached to the fabric.
type NodeID int

// Params describes the physical characteristics of a network. All three of
// the paper's interconnects (Myrinet, Gigabit Ethernet, Giganet cLAN) are
// instances of this shape with different constants.
type Params struct {
	Name string

	// BandwidthBps is the link bandwidth in bits per second. Both link
	// halves (host-switch, switch-host) run at this rate.
	BandwidthBps float64

	// LinkLatency is the propagation delay of one link hop.
	LinkLatency sim.Duration

	// SwitchLatency is the switch's store-and-forward/arbitration delay.
	SwitchLatency sim.Duration

	// FrameOverhead is the per-packet wire framing in bytes (headers,
	// preamble, CRC) added to every packet's serialization time.
	FrameOverhead int

	// DropRate is the probability that any given packet is silently lost.
	// Real SANs are nearly lossless; reliability benchmarks raise this to
	// exercise retransmission.
	DropRate float64
}

// SerializationTime reports how long a payload of n bytes occupies a link.
func (p *Params) SerializationTime(n int) sim.Duration {
	bits := float64(n+p.FrameOverhead) * 8
	return sim.Duration(bits / p.BandwidthBps * float64(sim.Second))
}

// Delivery is what arrives in a node's inbox. Inboxes carry *Delivery
// values drawn from a network-local free list; the receiver hands each one
// back with Recycle once it has read the fields.
type Delivery struct {
	Src     NodeID
	Dst     NodeID
	Size    int // wire payload bytes (excluding frame overhead)
	Payload interface{}

	// Corrupted marks a packet whose frame check failed in flight. The
	// fabric still delivers it — detection happens at the receiving NIC,
	// which discards the frame — so corruption costs wire time, exactly
	// like a real CRC drop.
	Corrupted bool

	// Shared marks a delivery whose Payload is aliased by another copy
	// (fault-injected duplication). Receivers must not recycle shared
	// payloads back into sender-owned free lists.
	Shared bool
}

// DropFilter decides whether a particular packet should be lost. It runs
// after the injector chain and before the random drop check; returning
// true drops the packet. The index is a global packet sequence number, so
// tests can target exact packets.
type DropFilter func(index uint64, d Delivery) bool

// DropCause classifies why the fabric dropped a packet.
type DropCause int

const (
	// DropCauseFault: an injector chain verdict (fault plans, link outages).
	DropCauseFault DropCause = iota
	// DropCauseFilter: the SetDropFilter callback.
	DropCauseFilter
	// DropCauseRate: the probabilistic Params.DropRate coin.
	DropCauseRate

	dropCauses
)

// String names the cause for metrics keys and error messages.
func (c DropCause) String() string {
	switch c {
	case DropCauseFault:
		return "fault"
	case DropCauseFilter:
		return "filter"
	case DropCauseRate:
		return "rate"
	}
	return "unknown"
}

// PacketFault is an injector's verdict on one packet. The zero value means
// "deliver untouched". Verdicts from a chain of injectors combine: any
// drop wins, corruption and duplication accumulate, delays add.
type PacketFault struct {
	Drop       bool
	Corrupt    bool
	Duplicates int
	Delay      sim.Duration
}

// merge combines two verdicts on the same packet.
func (f PacketFault) merge(g PacketFault) PacketFault {
	f.Drop = f.Drop || g.Drop
	f.Corrupt = f.Corrupt || g.Corrupt
	f.Duplicates += g.Duplicates
	f.Delay += g.Delay
	return f
}

// PacketInjector inspects every packet entering the fabric and returns a
// fault verdict. Injectors run on the sender's side before loss checks;
// index is the same global packet sequence number DropFilter sees.
type PacketInjector interface {
	InjectPacket(index uint64, now sim.Time, d *Delivery) PacketFault
}

type port struct {
	up   *sim.Pipe // node -> switch
	down *sim.Pipe // switch -> node
	in   *sim.Queue[*Delivery]

	// wire is the down link's in-flight FIFO: packets waiting for their
	// delivery instant, consumed from wireHead. One standing engine event
	// per port (armed, firing deliver) walks it instead of one event per
	// packet — see Network.enqueue.
	wire     []flight
	wireHead int
	armed    bool
	deliver  func()

	// Per-link traffic counters (wire payload bytes, like BytesSent).
	txPkts, txBytes uint64
	rxPkts, rxBytes uint64

	// Drops of packets this node transmitted, split by cause.
	drops [dropCauses]uint64
}

// flight is one packet in a port's in-flight FIFO.
type flight struct {
	d  *Delivery
	at sim.Time
}

// LinkStats is one attached link's traffic totals. Drops are attributed
// to the transmitting link, split by cause; Dropped is their sum.
type LinkStats struct {
	TxPackets, TxBytes uint64
	RxPackets, RxBytes uint64

	Dropped       uint64
	DroppedFault  uint64 // injector chain (fault plans, link outages)
	DroppedFilter uint64 // SetDropFilter callback
	DroppedRate   uint64 // probabilistic Params.DropRate
}

// Network is a star topology: every node connects to one crossbar switch.
type Network struct {
	eng    *sim.Engine
	params Params
	ports  []*port

	dropFilter DropFilter
	injectors  []PacketInjector

	// delFree recycles Delivery objects so the per-packet hot path does
	// not allocate. Engine-local: the simulation is single-threaded.
	delFree []*Delivery

	// Counters for tests and reporting. Dropped is the total across all
	// causes; droppedBy splits it (see DroppedBy). With fault-injected
	// duplication, Delivered = Sent - Dropped + Duplicated.
	Sent       uint64
	Delivered  uint64
	Dropped    uint64
	BytesSent  uint64
	Duplicated uint64 // extra copies scheduled by injectors
	Corrupted  uint64 // packets marked corrupt in flight

	droppedBy [dropCauses]uint64

	// SerTime accumulates link occupancy spent serializing packets (both
	// link halves); PropTime accumulates the propagation plus switch
	// latency of packets that were actually forwarded. Together they split
	// wire time into the bandwidth-bound and distance-bound parts.
	SerTime  sim.Duration
	PropTime sim.Duration
}

// New creates a network with n nodes attached to e.
func New(e *sim.Engine, n int, params Params) *Network {
	if n < 1 {
		panic("fabric: need at least one node")
	}
	nw := &Network{eng: e, params: params}
	for i := 0; i < n; i++ {
		p := &port{
			up:   sim.NewPipe(e),
			down: sim.NewPipe(e),
			in:   sim.NewQueue[*Delivery](e),
		}
		p.deliver = func() { nw.deliverNext(p) }
		nw.ports = append(nw.ports, p)
	}
	return nw
}

// Params returns the network's physical parameters.
func (nw *Network) Params() Params { return nw.params }

// Nodes reports the number of attached nodes.
func (nw *Network) Nodes() int { return len(nw.ports) }

// Inbox returns the delivery queue for node id. NIC receive engines block
// on it.
func (nw *Network) Inbox(id NodeID) *sim.Queue[*Delivery] {
	return nw.port(id).in
}

// SetDropFilter installs (or, with nil, removes) a deterministic loss
// filter.
func (nw *Network) SetDropFilter(f DropFilter) { nw.dropFilter = f }

// AddInjector appends an injector to the fault chain. Injectors run in
// installation order on every packet, before the drop filter and the
// random loss check.
func (nw *Network) AddInjector(inj PacketInjector) {
	nw.injectors = append(nw.injectors, inj)
}

// DroppedBy reports how many packets were dropped for the given cause.
func (nw *Network) DroppedBy(c DropCause) uint64 {
	if c < 0 || c >= dropCauses {
		return 0
	}
	return nw.droppedBy[c]
}

// LinkStats reports node id's link traffic totals.
func (nw *Network) LinkStats(id NodeID) LinkStats {
	p := nw.port(id)
	return LinkStats{
		TxPackets: p.txPkts, TxBytes: p.txBytes,
		RxPackets: p.rxPkts, RxBytes: p.rxBytes,
		Dropped:       p.drops[DropCauseFault] + p.drops[DropCauseFilter] + p.drops[DropCauseRate],
		DroppedFault:  p.drops[DropCauseFault],
		DroppedFilter: p.drops[DropCauseFilter],
		DroppedRate:   p.drops[DropCauseRate],
	}
}

func (nw *Network) port(id NodeID) *port {
	if int(id) < 0 || int(id) >= len(nw.ports) {
		panic(fmt.Sprintf("fabric: no node %d", id))
	}
	return nw.ports[id]
}

// getDelivery draws a Delivery from the free list, allocating on miss.
func (nw *Network) getDelivery() *Delivery {
	if n := len(nw.delFree); n > 0 {
		d := nw.delFree[n-1]
		nw.delFree[n-1] = nil
		nw.delFree = nw.delFree[:n-1]
		return d
	}
	return &Delivery{}
}

// Recycle returns a delivery popped from an inbox to the network's free
// list. The caller must not retain d (or read it again) afterwards.
func (nw *Network) Recycle(d *Delivery) {
	*d = Delivery{}
	nw.delFree = append(nw.delFree, d)
}

// Send injects a packet from src. It does not block the caller: link
// occupancy is modeled with pipes and the delivery is scheduled as an
// engine event. Send returns the instant the packet finishes serializing
// onto the source link (when the sending NIC's transmitter is free again).
func (nw *Network) Send(src, dst NodeID, size int, payload interface{}) sim.Time {
	sp, dp := nw.port(src), nw.port(dst)
	ser := nw.params.SerializationTime(size)

	txDone := sp.up.Occupy(ser)
	nw.Sent++
	nw.BytesSent += uint64(size)
	nw.SerTime += ser
	sp.txPkts++
	sp.txBytes += uint64(size)

	idx := nw.Sent - 1
	d := nw.getDelivery()
	d.Src, d.Dst, d.Size, d.Payload = src, dst, size, payload

	// Fault chain first: an injected drop models a deliberate outage and
	// pre-empts the (rng-consuming) random loss check.
	var f PacketFault
	for _, inj := range nw.injectors {
		f = f.merge(inj.InjectPacket(idx, nw.eng.Now(), d))
	}
	switch {
	case f.Drop:
		return nw.drop(sp, d, DropCauseFault, txDone)
	case nw.dropFilter != nil && nw.dropFilter(idx, *d):
		return nw.drop(sp, d, DropCauseFilter, txDone)
	case nw.params.DropRate > 0 && nw.eng.Rand().Float64() < nw.params.DropRate:
		return nw.drop(sp, d, DropCauseRate, txDone)
	}
	if f.Corrupt {
		d.Corrupted = true
		nw.Corrupted++
	}
	copies := 1
	if f.Duplicates > 0 {
		copies += f.Duplicates
		d.Shared = true
		nw.Duplicated += uint64(f.Duplicates)
	}

	// Store-and-forward: the switch begins forwarding after the whole
	// packet has arrived (plus any injected delay), and the destination
	// link serializes it again. Duplicate copies queue behind the
	// original on the destination link.
	atSwitch := txDone.Add(nw.params.LinkLatency).Add(nw.params.SwitchLatency).Add(f.Delay)
	for c := 0; c < copies; c++ {
		dc := d
		if c > 0 {
			dc = nw.getDelivery()
			*dc = *d
		}
		rxDone := dp.down.OccupyFrom(atSwitch, ser)
		deliverAt := rxDone.Add(nw.params.LinkLatency)
		nw.SerTime += ser
		nw.PropTime += 2*nw.params.LinkLatency + nw.params.SwitchLatency
		nw.enqueue(dp, dc, deliverAt)
	}
	return txDone
}

// enqueue appends the packet to dst's in-flight FIFO and arms the port's
// delivery event if it is idle. Per-port delivery instants are monotonic
// (the down link's Pipe hands out non-decreasing completion times), so a
// FIFO walked by one standing event per port delivers every packet at
// exactly the instant a per-packet event would — but an incast burst
// keeps O(ports) events in the heap instead of O(in-flight packets),
// so sifts stay shallow, and the preallocated per-port callback replaces
// a fresh closure per packet.
func (nw *Network) enqueue(dp *port, d *Delivery, at sim.Time) {
	if n := len(dp.wire); n > dp.wireHead && at < dp.wire[n-1].at {
		panic("fabric: per-port delivery instants not monotonic")
	}
	dp.wire = append(dp.wire, flight{d, at})
	if !dp.armed {
		dp.armed = true
		nw.eng.At(at, dp.deliver)
	}
}

// deliverNext fires at the head packet's delivery instant: it hands the
// packet to the inbox and re-arms for the next one. The next event is
// scheduled before the inbox push so that a same-instant follower keeps
// its place ahead of any receiver wake the push schedules — the dispatch
// order per-packet events produced.
func (nw *Network) deliverNext(dp *port) {
	f := dp.wire[dp.wireHead]
	dp.wire[dp.wireHead] = flight{}
	dp.wireHead++
	if dp.wireHead == len(dp.wire) {
		dp.wire = dp.wire[:0]
		dp.wireHead = 0
		dp.armed = false
	} else {
		nw.eng.At(dp.wire[dp.wireHead].at, dp.deliver)
	}
	nw.Delivered++
	dp.rxPkts++
	dp.rxBytes += uint64(f.d.Size)
	dp.in.Push(f.d)
}

// drop records a dropped packet under its cause and recycles the delivery.
func (nw *Network) drop(sp *port, d *Delivery, cause DropCause, txDone sim.Time) sim.Time {
	nw.Dropped++
	nw.droppedBy[cause]++
	sp.drops[cause]++
	nw.Recycle(d)
	return txDone
}
