package fabric

import (
	"testing"

	"vibe/internal/sim"
)

// testParams: 1 Gb/s, 1us links, 500ns switch, no framing overhead so the
// arithmetic below is exact.
func testParams() Params {
	return Params{
		Name:          "test",
		BandwidthBps:  1e9,
		LinkLatency:   sim.Microsecond,
		SwitchLatency: 500 * sim.Nanosecond,
	}
}

func TestSerializationTime(t *testing.T) {
	p := testParams()
	// 1000 bytes at 1 Gb/s = 8000 ns.
	if got := p.SerializationTime(1000); got != 8000 {
		t.Fatalf("ser = %v, want 8000ns", got)
	}
	p.FrameOverhead = 50
	if got := p.SerializationTime(1000); got != 8400 {
		t.Fatalf("ser with overhead = %v, want 8400ns", got)
	}
}

func TestEndToEndDeliveryTime(t *testing.T) {
	e := sim.NewEngine(1)
	nw := New(e, 2, testParams())
	var arrival sim.Time
	var got Delivery
	e.At(0, func() {
		txDone := nw.Send(0, 1, 1000, "hello")
		// Source serialization of 1000B = 8000ns.
		if txDone != 8000 {
			t.Errorf("txDone = %v, want 8000ns", txDone)
		}
	})
	e.Spawn("rx", func(p *sim.Proc) {
		got = *nw.Inbox(1).Pop(p)
		arrival = p.Now()
	})
	e.MustRun()
	// 8000 (ser up) + 1000 (link) + 500 (switch) + 8000 (ser down) + 1000
	// (link) = 18500ns.
	if arrival != 18500 {
		t.Fatalf("arrival = %v, want 18500ns", arrival)
	}
	if got.Payload.(string) != "hello" || got.Src != 0 || got.Dst != 1 || got.Size != 1000 {
		t.Fatalf("delivery = %+v", got)
	}
}

func TestBackToBackPacketsSerializeOnUplink(t *testing.T) {
	e := sim.NewEngine(1)
	nw := New(e, 2, testParams())
	var arrivals []sim.Time
	e.At(0, func() {
		nw.Send(0, 1, 1000, 1)
		nw.Send(0, 1, 1000, 2)
	})
	e.Spawn("rx", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			nw.Inbox(1).Pop(p)
			arrivals = append(arrivals, p.Now())
		}
	})
	e.MustRun()
	// Second packet is pipelined behind the first: it leaves the source at
	// 16000, and the downlink is free when it gets there, so arrivals are
	// spaced by exactly one serialization time.
	if arrivals[0] != 18500 || arrivals[1] != 26500 {
		t.Fatalf("arrivals = %v, want [18500ns 26500ns]", arrivals)
	}
}

func TestDistinctSourcesContendOnDownlink(t *testing.T) {
	e := sim.NewEngine(1)
	nw := New(e, 3, testParams())
	var arrivals []sim.Time
	e.At(0, func() {
		nw.Send(0, 2, 1000, "a")
		nw.Send(1, 2, 1000, "b")
	})
	e.Spawn("rx", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			nw.Inbox(2).Pop(p)
			arrivals = append(arrivals, p.Now())
		}
	})
	e.MustRun()
	// Both arrive at the switch at 9500; the shared downlink serializes
	// them: first done at 17500(+1000 link), second at 25500(+1000).
	if arrivals[0] != 18500 || arrivals[1] != 26500 {
		t.Fatalf("arrivals = %v, want [18500ns 26500ns]", arrivals)
	}
}

func TestDropFilter(t *testing.T) {
	e := sim.NewEngine(1)
	nw := New(e, 2, testParams())
	nw.SetDropFilter(func(index uint64, d Delivery) bool { return index == 0 })
	received := 0
	e.At(0, func() {
		nw.Send(0, 1, 100, "lost")
		nw.Send(0, 1, 100, "kept")
	})
	e.Spawn("rx", func(p *sim.Proc) {
		d := nw.Inbox(1).Pop(p)
		if d.Payload.(string) != "kept" {
			t.Errorf("got dropped packet %v", d.Payload)
		}
		received++
	})
	e.MustRun()
	if received != 1 || nw.Dropped != 1 || nw.Sent != 2 || nw.Delivered != 1 {
		t.Fatalf("received=%d dropped=%d sent=%d delivered=%d", received, nw.Dropped, nw.Sent, nw.Delivered)
	}
}

func TestRandomDropRateIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) uint64 {
		e := sim.NewEngine(seed)
		p := testParams()
		p.DropRate = 0.5
		nw := New(e, 2, p)
		e.At(0, func() {
			for i := 0; i < 100; i++ {
				nw.Send(0, 1, 10, i)
			}
		})
		// No receiver needed: Push never blocks, and unread inbox items do
		// not count as a deadlock.
		e.MustRun()
		return nw.Dropped
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatalf("same seed, different drops: %d vs %d", a, b)
	}
	if a == 0 || a == 100 {
		t.Fatalf("droprate 0.5 dropped %d of 100", a)
	}
	c := run(8)
	// Different seeds will almost surely differ; not asserting, just
	// exercising the path.
	_ = c
}

func TestBytesSentCounter(t *testing.T) {
	e := sim.NewEngine(1)
	nw := New(e, 2, testParams())
	e.At(0, func() {
		nw.Send(0, 1, 300, nil)
		nw.Send(0, 1, 200, nil)
	})
	e.MustRun()
	if nw.BytesSent != 500 {
		t.Fatalf("BytesSent = %d", nw.BytesSent)
	}
}

func TestBadNodePanics(t *testing.T) {
	e := sim.NewEngine(1)
	nw := New(e, 2, testParams())
	defer func() {
		if recover() == nil {
			t.Error("no panic for bad node id")
		}
	}()
	nw.Inbox(5)
}

func TestDeliveryRecycling(t *testing.T) {
	e := sim.NewEngine(1)
	nw := New(e, 2, testParams())
	var first, second *Delivery
	e.At(0, func() { nw.Send(0, 1, 100, "one") })
	e.At(1000000, func() { nw.Send(0, 1, 100, "two") })
	e.Spawn("rx", func(p *sim.Proc) {
		first = nw.Inbox(1).Pop(p)
		if first.Payload.(string) != "one" {
			t.Errorf("first payload = %v", first.Payload)
		}
		nw.Recycle(first)
		second = nw.Inbox(1).Pop(p)
		if second.Payload.(string) != "two" {
			t.Errorf("second payload = %v", second.Payload)
		}
	})
	e.MustRun()
	if first != second {
		t.Fatal("recycled delivery was not reused")
	}
}

func TestSelfSend(t *testing.T) {
	// Loopback (a process sending to a VI on the same node) is NIC-local:
	// the frame serializes once through the transmit path and arrives the
	// instant serialization ends — no switch hop, no link propagation.
	e := sim.NewEngine(1)
	nw := New(e, 1, testParams())
	var arrival sim.Time
	e.At(0, func() {
		if txDone := nw.Send(0, 0, 1000, "loop"); txDone != 8000 {
			t.Errorf("txDone = %v, want 8000ns", txDone)
		}
	})
	e.Spawn("rx", func(p *sim.Proc) {
		d := nw.Inbox(0).Pop(p)
		arrival = p.Now()
		if d.Payload.(string) != "loop" || d.Src != 0 || d.Dst != 0 {
			t.Errorf("delivery = %+v", d)
		}
	})
	e.MustRun()
	// One serialization (8000ns), nothing else: the packet never crosses
	// a link or a switch.
	if arrival != 8000 {
		t.Fatalf("arrival = %v, want 8000ns", arrival)
	}
	if nw.PropTime != 0 {
		t.Fatalf("loopback accrued propagation time %v", nw.PropTime)
	}
	if nw.SerTime != 8000 {
		t.Fatalf("SerTime = %v, want 8000ns", nw.SerTime)
	}
	checkConservation(t, nw)
}

// checkConservation asserts the per-port accounting identity: summed over
// every link, Delivered = Sent - Dropped + Duplicated, and the fabric
// totals agree with the per-port counters.
func checkConservation(t *testing.T, nw *Network) {
	t.Helper()
	var tx, rx, drops uint64
	for id := 0; id < nw.Nodes(); id++ {
		ls := nw.LinkStats(NodeID(id))
		tx += ls.TxPackets
		rx += ls.RxPackets
		drops += ls.Dropped
	}
	if tx != nw.Sent || rx != nw.Delivered || drops != nw.Dropped {
		t.Fatalf("per-port totals tx=%d rx=%d drops=%d vs fabric sent=%d delivered=%d dropped=%d",
			tx, rx, drops, nw.Sent, nw.Delivered, nw.Dropped)
	}
	if rx != tx-drops+nw.Duplicated {
		t.Fatalf("conservation violated: delivered %d != sent %d - dropped %d + duplicated %d",
			rx, tx, drops, nw.Duplicated)
	}
}

// corruptInjector corrupts every packet whose index is in the set;
// duplicates every packet whose index is in dup.
type testInjector struct {
	corrupt map[uint64]bool
	dup     map[uint64]int
}

func (ti *testInjector) InjectPacket(index uint64, _ sim.Time, _ *Delivery) PacketFault {
	return PacketFault{Corrupt: ti.corrupt[index], Duplicates: ti.dup[index]}
}

func TestRxCorruptAccounting(t *testing.T) {
	e := sim.NewEngine(1)
	nw := New(e, 2, testParams())
	nw.AddInjector(&testInjector{corrupt: map[uint64]bool{1: true}})
	e.At(0, func() {
		nw.Send(0, 1, 100, "clean")
		nw.Send(0, 1, 100, "doomed")
	})
	e.MustRun()
	ls := nw.LinkStats(1)
	if ls.RxPackets != 2 || ls.RxCorrupt != 1 {
		t.Fatalf("rx=%d corrupt=%d, want 2/1", ls.RxPackets, ls.RxCorrupt)
	}
	// Corrupted frames cost wire time (RxPackets includes them); consumed
	// packets reconcile as RxPackets - RxCorrupt.
	if got := ls.RxPackets - ls.RxCorrupt; got != 1 {
		t.Fatalf("consumable packets = %d, want 1", got)
	}
	if nw.Corrupted != 1 {
		t.Fatalf("Corrupted = %d, want 1", nw.Corrupted)
	}
	checkConservation(t, nw)
}

func TestConservationUnderDropsAndDuplicates(t *testing.T) {
	e := sim.NewEngine(3)
	p := testParams()
	p.DropRate = 0.3
	nw := New(e, 3, p)
	nw.AddInjector(&testInjector{dup: map[uint64]int{4: 1, 9: 2}})
	e.At(0, func() {
		for i := 0; i < 30; i++ {
			nw.Send(NodeID(i%2), 2, 64, i)
		}
	})
	e.MustRun()
	if nw.Dropped == 0 || nw.Duplicated == 0 {
		t.Fatalf("want both drops (%d) and duplicates (%d) exercised", nw.Dropped, nw.Duplicated)
	}
	checkConservation(t, nw)
}

func TestRecycleSharedNeverRepooled(t *testing.T) {
	e := sim.NewEngine(1)
	nw := New(e, 2, testParams())
	nw.AddInjector(&testInjector{dup: map[uint64]int{0: 1}})
	var got []*Delivery
	e.At(0, func() { nw.Send(0, 1, 100, "dup") })
	e.Spawn("rx", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			got = append(got, nw.Inbox(1).Pop(p))
		}
	})
	e.MustRun()
	if len(got) != 2 || !got[0].Shared || !got[1].Shared {
		t.Fatalf("deliveries = %+v", got)
	}
	// Recycling an aliased (Shared) delivery must not re-pool it: the
	// other copy still references the same payload, and a re-pooled
	// wrapper would let a fresh packet alias it.
	nw.Recycle(got[0])
	nw.Recycle(got[1])
	if len(nw.delFree) != 0 {
		t.Fatalf("shared deliveries re-pooled: free list %d", len(nw.delFree))
	}
}

func TestDoubleRecyclePanics(t *testing.T) {
	e := sim.NewEngine(1)
	nw := New(e, 2, testParams())
	var d *Delivery
	e.At(0, func() { nw.Send(0, 1, 100, "x") })
	e.Spawn("rx", func(p *sim.Proc) { d = nw.Inbox(1).Pop(p) })
	e.MustRun()
	nw.Recycle(d)
	defer func() {
		if recover() == nil {
			t.Error("no panic on double recycle")
		}
	}()
	nw.Recycle(d)
}
