package fabric

import (
	"testing"

	"vibe/internal/sim"
)

// testParams: 1 Gb/s, 1us links, 500ns switch, no framing overhead so the
// arithmetic below is exact.
func testParams() Params {
	return Params{
		Name:          "test",
		BandwidthBps:  1e9,
		LinkLatency:   sim.Microsecond,
		SwitchLatency: 500 * sim.Nanosecond,
	}
}

func TestSerializationTime(t *testing.T) {
	p := testParams()
	// 1000 bytes at 1 Gb/s = 8000 ns.
	if got := p.SerializationTime(1000); got != 8000 {
		t.Fatalf("ser = %v, want 8000ns", got)
	}
	p.FrameOverhead = 50
	if got := p.SerializationTime(1000); got != 8400 {
		t.Fatalf("ser with overhead = %v, want 8400ns", got)
	}
}

func TestEndToEndDeliveryTime(t *testing.T) {
	e := sim.NewEngine(1)
	nw := New(e, 2, testParams())
	var arrival sim.Time
	var got Delivery
	e.At(0, func() {
		txDone := nw.Send(0, 1, 1000, "hello")
		// Source serialization of 1000B = 8000ns.
		if txDone != 8000 {
			t.Errorf("txDone = %v, want 8000ns", txDone)
		}
	})
	e.Spawn("rx", func(p *sim.Proc) {
		got = *nw.Inbox(1).Pop(p)
		arrival = p.Now()
	})
	e.MustRun()
	// 8000 (ser up) + 1000 (link) + 500 (switch) + 8000 (ser down) + 1000
	// (link) = 18500ns.
	if arrival != 18500 {
		t.Fatalf("arrival = %v, want 18500ns", arrival)
	}
	if got.Payload.(string) != "hello" || got.Src != 0 || got.Dst != 1 || got.Size != 1000 {
		t.Fatalf("delivery = %+v", got)
	}
}

func TestBackToBackPacketsSerializeOnUplink(t *testing.T) {
	e := sim.NewEngine(1)
	nw := New(e, 2, testParams())
	var arrivals []sim.Time
	e.At(0, func() {
		nw.Send(0, 1, 1000, 1)
		nw.Send(0, 1, 1000, 2)
	})
	e.Spawn("rx", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			nw.Inbox(1).Pop(p)
			arrivals = append(arrivals, p.Now())
		}
	})
	e.MustRun()
	// Second packet is pipelined behind the first: it leaves the source at
	// 16000, and the downlink is free when it gets there, so arrivals are
	// spaced by exactly one serialization time.
	if arrivals[0] != 18500 || arrivals[1] != 26500 {
		t.Fatalf("arrivals = %v, want [18500ns 26500ns]", arrivals)
	}
}

func TestDistinctSourcesContendOnDownlink(t *testing.T) {
	e := sim.NewEngine(1)
	nw := New(e, 3, testParams())
	var arrivals []sim.Time
	e.At(0, func() {
		nw.Send(0, 2, 1000, "a")
		nw.Send(1, 2, 1000, "b")
	})
	e.Spawn("rx", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			nw.Inbox(2).Pop(p)
			arrivals = append(arrivals, p.Now())
		}
	})
	e.MustRun()
	// Both arrive at the switch at 9500; the shared downlink serializes
	// them: first done at 17500(+1000 link), second at 25500(+1000).
	if arrivals[0] != 18500 || arrivals[1] != 26500 {
		t.Fatalf("arrivals = %v, want [18500ns 26500ns]", arrivals)
	}
}

func TestDropFilter(t *testing.T) {
	e := sim.NewEngine(1)
	nw := New(e, 2, testParams())
	nw.SetDropFilter(func(index uint64, d Delivery) bool { return index == 0 })
	received := 0
	e.At(0, func() {
		nw.Send(0, 1, 100, "lost")
		nw.Send(0, 1, 100, "kept")
	})
	e.Spawn("rx", func(p *sim.Proc) {
		d := nw.Inbox(1).Pop(p)
		if d.Payload.(string) != "kept" {
			t.Errorf("got dropped packet %v", d.Payload)
		}
		received++
	})
	e.MustRun()
	if received != 1 || nw.Dropped != 1 || nw.Sent != 2 || nw.Delivered != 1 {
		t.Fatalf("received=%d dropped=%d sent=%d delivered=%d", received, nw.Dropped, nw.Sent, nw.Delivered)
	}
}

func TestRandomDropRateIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) uint64 {
		e := sim.NewEngine(seed)
		p := testParams()
		p.DropRate = 0.5
		nw := New(e, 2, p)
		e.At(0, func() {
			for i := 0; i < 100; i++ {
				nw.Send(0, 1, 10, i)
			}
		})
		// No receiver needed: Push never blocks, and unread inbox items do
		// not count as a deadlock.
		e.MustRun()
		return nw.Dropped
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatalf("same seed, different drops: %d vs %d", a, b)
	}
	if a == 0 || a == 100 {
		t.Fatalf("droprate 0.5 dropped %d of 100", a)
	}
	c := run(8)
	// Different seeds will almost surely differ; not asserting, just
	// exercising the path.
	_ = c
}

func TestBytesSentCounter(t *testing.T) {
	e := sim.NewEngine(1)
	nw := New(e, 2, testParams())
	e.At(0, func() {
		nw.Send(0, 1, 300, nil)
		nw.Send(0, 1, 200, nil)
	})
	e.MustRun()
	if nw.BytesSent != 500 {
		t.Fatalf("BytesSent = %d", nw.BytesSent)
	}
}

func TestBadNodePanics(t *testing.T) {
	e := sim.NewEngine(1)
	nw := New(e, 2, testParams())
	defer func() {
		if recover() == nil {
			t.Error("no panic for bad node id")
		}
	}()
	nw.Inbox(5)
}

func TestDeliveryRecycling(t *testing.T) {
	e := sim.NewEngine(1)
	nw := New(e, 2, testParams())
	var first, second *Delivery
	e.At(0, func() { nw.Send(0, 1, 100, "one") })
	e.At(1000000, func() { nw.Send(0, 1, 100, "two") })
	e.Spawn("rx", func(p *sim.Proc) {
		first = nw.Inbox(1).Pop(p)
		if first.Payload.(string) != "one" {
			t.Errorf("first payload = %v", first.Payload)
		}
		nw.Recycle(first)
		second = nw.Inbox(1).Pop(p)
		if second.Payload.(string) != "two" {
			t.Errorf("second payload = %v", second.Payload)
		}
	})
	e.MustRun()
	if first != second {
		t.Fatal("recycled delivery was not reused")
	}
}

func TestSelfSend(t *testing.T) {
	// Loopback through the switch still works (a process sending to a VI
	// on the same node).
	e := sim.NewEngine(1)
	nw := New(e, 1, testParams())
	got := false
	e.At(0, func() { nw.Send(0, 0, 100, "loop") })
	e.Spawn("rx", func(p *sim.Proc) {
		nw.Inbox(0).Pop(p)
		got = true
	})
	e.MustRun()
	if !got {
		t.Fatal("loopback packet not delivered")
	}
}
