package fabric

import "fmt"

// SwitchID identifies one switch in the fabric's topology.
type SwitchID int

// Topology describes the switch graph of the interconnect: how many
// switches exist, which switch each host hangs off, and the
// deterministic switch paths between any two hosts. Implementations must
// be pure functions of their construction parameters — routing decisions
// consume no randomness and depend on no traffic state — so simulations
// stay byte-reproducible across runs and process models.
type Topology interface {
	Name() string

	// Switches reports the number of switches in the graph.
	Switches() int

	// HostSwitch returns the switch host h attaches to.
	HostSwitch(h NodeID) SwitchID

	// Route appends the switch path from src to dst to buf and returns
	// the extended slice. The path starts at HostSwitch(src), ends at
	// HostSwitch(dst), and every consecutive pair is a physical
	// switch-to-switch link. It is never empty and never called with
	// src == dst (loopback is NIC-local and skips the fabric).
	Route(buf []SwitchID, src, dst NodeID) []SwitchID

	// AltRoutes reports how many candidate paths the topology enumerates
	// from src to dst (always >= 1). Candidate 0 is the primary path
	// Route returns; higher candidates are deterministic alternates the
	// routing policy can fail over to (other fat-tree spines, the other
	// torus ring direction, dragonfly detours through a third router or
	// group). Alternates need not be minimal, but obey the same physical-
	// link contract as Route.
	AltRoutes(src, dst NodeID) int

	// AltRoute appends candidate k (0 <= k < AltRoutes(src, dst)) of the
	// src->dst paths to buf and returns the extended slice. AltRoute with
	// k == 0 is exactly Route.
	AltRoute(buf []SwitchID, src, dst NodeID, k int) []SwitchID
}

// BuildTopology constructs the topology p selects for a fabric of the
// given host count. An empty Params.Topology means the classic single
// crossbar. A zero Params.TopologyDegree picks each topology's default
// arity. Unknown names panic: topology selection is validated when
// scenarios compile, so reaching here with a bad name is a programming
// error.
func BuildTopology(p Params, hosts int) Topology {
	deg := p.TopologyDegree
	switch p.Topology {
	case "", TopoCrossbar:
		return Crossbar{}
	case TopoFatTree:
		if deg <= 0 {
			deg = 4
		}
		return NewFatTree(hosts, deg)
	case TopoDragonfly:
		if deg <= 0 {
			deg = 2
		}
		return NewDragonfly(hosts, deg)
	case TopoTorus3D:
		if deg <= 0 {
			deg = 1
		}
		return NewTorus3D(hosts, deg)
	default:
		panic(fmt.Sprintf("fabric: unknown topology %q", p.Topology))
	}
}

// Topology names accepted by Params.Topology.
const (
	TopoCrossbar  = "crossbar"
	TopoFatTree   = "fattree"
	TopoDragonfly = "dragonfly"
	TopoTorus3D   = "torus3d"
)

// TopologyNames lists the accepted Params.Topology values.
func TopologyNames() []string {
	return []string{TopoCrossbar, TopoFatTree, TopoDragonfly, TopoTorus3D}
}

// Crossbar is the default topology: every host attaches to one central
// switch and every route is a single hop. It is what the original
// star-fabric model was, expressed as a Topology.
type Crossbar struct{}

// Name implements Topology.
func (Crossbar) Name() string { return TopoCrossbar }

// Switches implements Topology.
func (Crossbar) Switches() int { return 1 }

// HostSwitch implements Topology.
func (Crossbar) HostSwitch(NodeID) SwitchID { return 0 }

// Route implements Topology.
func (Crossbar) Route(buf []SwitchID, _, _ NodeID) []SwitchID {
	return append(buf, 0)
}

// AltRoutes implements Topology: a single switch has a single path.
func (Crossbar) AltRoutes(_, _ NodeID) int { return 1 }

// AltRoute implements Topology.
func (Crossbar) AltRoute(buf []SwitchID, _, _ NodeID, _ int) []SwitchID {
	return append(buf, 0)
}

// FatTree is a two-level folded Clos: leaves attach hosts, spines
// connect leaves. The arity sets both the hosts per leaf and the spine
// count (each leaf has one uplink per spine), so the tree has full
// bisection bandwidth when traffic spreads across spines — and a single
// hot spine when it does not, which incast routing deliberately creates.
type FatTree struct {
	arity  int // hosts per leaf, and the spine count
	leaves int
}

// NewFatTree builds a fat-tree for the given host count with the given
// hosts-per-leaf arity.
func NewFatTree(hosts, arity int) *FatTree {
	if hosts < 1 || arity < 1 {
		panic(fmt.Sprintf("fabric: bad fat-tree shape (hosts %d, arity %d)", hosts, arity))
	}
	return &FatTree{arity: arity, leaves: (hosts + arity - 1) / arity}
}

// Name implements Topology.
func (t *FatTree) Name() string { return TopoFatTree }

// Switches reports leaves then spines: leaf i is switch i, spine j is
// switch leaves+j.
func (t *FatTree) Switches() int { return t.leaves + t.arity }

// HostSwitch implements Topology: hosts fill leaves in order.
func (t *FatTree) HostSwitch(h NodeID) SwitchID { return SwitchID(int(h) / t.arity) }

// Route implements Topology with deterministic up/down routing: same
// leaf is one hop; otherwise up to the spine selected by the destination
// (D-mod-k), then down. Destination-based spine selection concentrates
// all traffic toward one host on one spine — the worst case for incast,
// which is exactly the congestion the routed fabric exists to surface.
func (t *FatTree) Route(buf []SwitchID, src, dst NodeID) []SwitchID {
	return t.AltRoute(buf, src, dst, 0)
}

// AltRoutes implements Topology: cross-leaf pairs have one candidate per
// spine (every leaf uplinks to every spine), same-leaf pairs just one.
func (t *FatTree) AltRoutes(src, dst NodeID) int {
	if t.HostSwitch(src) == t.HostSwitch(dst) {
		return 1
	}
	return t.arity
}

// AltRoute implements Topology: candidate k rotates the spine selection
// to (dst+k) mod arity, so candidate 0 is the D-mod-k primary and the
// remaining k-1 spines are the failover/adaptive alternates that put the
// otherwise-idle spines to work.
func (t *FatTree) AltRoute(buf []SwitchID, src, dst NodeID, k int) []SwitchID {
	ls, ld := t.HostSwitch(src), t.HostSwitch(dst)
	if ls == ld {
		return append(buf, ls)
	}
	spine := SwitchID(t.leaves + (int(dst)+k)%t.arity)
	return append(buf, ls, spine, ld)
}

// Dragonfly is a two-tier hierarchical topology: routers within a group
// are fully connected, and each router owns exactly one global link to
// another group (h=1), so there are a+1 groups of a routers. Minimal
// routing takes at most a local hop, a global hop, and a local hop.
type Dragonfly struct {
	p      int // hosts per router
	a      int // routers per group
	groups int // a+1: one global link per router saturates the graph
}

// NewDragonfly builds the smallest balanced h=1 dragonfly — a routers
// per group, a+1 groups — whose p*a*(a+1) host slots cover hosts.
func NewDragonfly(hosts, hostsPerRouter int) *Dragonfly {
	if hosts < 1 || hostsPerRouter < 1 {
		panic(fmt.Sprintf("fabric: bad dragonfly shape (hosts %d, hosts/router %d)", hosts, hostsPerRouter))
	}
	a := 1
	for hostsPerRouter*a*(a+1) < hosts {
		a++
	}
	return &Dragonfly{p: hostsPerRouter, a: a, groups: a + 1}
}

// Name implements Topology.
func (t *Dragonfly) Name() string { return TopoDragonfly }

// Switches implements Topology: router r of group g is switch g*a+r.
func (t *Dragonfly) Switches() int { return t.groups * t.a }

// HostSwitch implements Topology: hosts fill routers in order.
func (t *Dragonfly) HostSwitch(h NodeID) SwitchID { return SwitchID(int(h) / t.p) }

// gateway returns the router in group g owning the single global link to
// group j: router r links to the r-th other group in index order, the
// canonical h=1 assignment (consistent from both ends of each link).
func (t *Dragonfly) gateway(g, j int) SwitchID {
	r := j
	if j > g {
		r = j - 1
	}
	return SwitchID(g*t.a + r)
}

// Route implements Topology with minimal routing: intra-group pairs use
// the direct local link; inter-group pairs hop to the source group's
// gateway, cross the global link, and hop to the destination router.
func (t *Dragonfly) Route(buf []SwitchID, src, dst NodeID) []SwitchID {
	return t.AltRoute(buf, src, dst, 0)
}

// AltRoutes implements Topology. Same-router pairs have one path.
// Intra-group pairs can detour through any third router of the group
// (full local connectivity). Inter-group pairs can take a Valiant-style
// detour through any intermediate group, riding its two global links.
func (t *Dragonfly) AltRoutes(src, dst NodeID) int {
	rs, rd := t.HostSwitch(src), t.HostSwitch(dst)
	if rs == rd {
		return 1
	}
	if int(rs)/t.a == int(rd)/t.a {
		return 1 + t.a - 2 // the direct link plus one detour per third router
	}
	return 1 + t.groups - 2 // minimal plus one detour per intermediate group
}

// AltRoute implements Topology: candidate 0 is the minimal route;
// candidate k > 0 is the k-th detour in ascending router/group index
// order (skipping the endpoints), deduplicating consecutive repeats when
// a gateway coincides with an endpoint router.
func (t *Dragonfly) AltRoute(buf []SwitchID, src, dst NodeID, k int) []SwitchID {
	rs, rd := t.HostSwitch(src), t.HostSwitch(dst)
	gs, gd := int(rs)/t.a, int(rd)/t.a
	if rs == rd {
		return append(buf, rs)
	}
	if gs == gd {
		if k == 0 {
			return append(buf, rs, rd)
		}
		// k-th router of the group that is neither endpoint.
		rt := SwitchID(gs * t.a)
		for n := k; ; rt++ {
			if rt == rs || rt == rd {
				continue
			}
			if n--; n == 0 {
				break
			}
		}
		return append(buf, rs, rt, rd)
	}
	gm := gd // candidate 0: straight to the destination group
	if k > 0 {
		// k-th group that is neither source nor destination.
		gm = 0
		for n := k; ; gm++ {
			if gm == gs || gm == gd {
				continue
			}
			if n--; n == 0 {
				break
			}
		}
	}
	return t.appendVia(buf, rs, rd, gs, gd, gm)
}

// appendVia builds rs -> (group gm) -> rd, collapsing consecutive
// duplicates: local hop to the gm gateway, global link into gm, local
// hop across gm to its gd gateway (skipped when gm == gd), global link
// onward, local hop to rd.
func (t *Dragonfly) appendVia(buf []SwitchID, rs, rd SwitchID, gs, gd, gm int) []SwitchID {
	buf = append(buf, rs)
	add := func(s SwitchID) {
		if buf[len(buf)-1] != s {
			buf = append(buf, s)
		}
	}
	add(t.gateway(gs, gm))
	add(t.gateway(gm, gs))
	if gm != gd {
		add(t.gateway(gm, gd))
		add(t.gateway(gd, gm))
	}
	add(rd)
	return buf
}

// Torus3D is an APENet-style 3D torus: a side^3 cube of switches with
// wraparound links in every dimension, each attaching a fixed number of
// hosts. Routing is dimension-order (X, then Y, then Z), taking the
// shorter way around each ring.
type Torus3D struct {
	side     int
	hostsPer int
}

// NewTorus3D builds the smallest cubic torus whose side^3 switches, at
// hostsPerSwitch hosts each, cover the given host count.
func NewTorus3D(hosts, hostsPerSwitch int) *Torus3D {
	if hosts < 1 || hostsPerSwitch < 1 {
		panic(fmt.Sprintf("fabric: bad torus shape (hosts %d, hosts/switch %d)", hosts, hostsPerSwitch))
	}
	side := 1
	for side*side*side*hostsPerSwitch < hosts {
		side++
	}
	return &Torus3D{side: side, hostsPer: hostsPerSwitch}
}

// Name implements Topology.
func (t *Torus3D) Name() string { return TopoTorus3D }

// Switches implements Topology: switch (x,y,z) is (z*side+y)*side+x.
func (t *Torus3D) Switches() int { return t.side * t.side * t.side }

// HostSwitch implements Topology: hosts fill switches in id order.
func (t *Torus3D) HostSwitch(h NodeID) SwitchID { return SwitchID(int(h) / t.hostsPer) }

func (t *Torus3D) coords(s SwitchID) (x, y, z int) {
	x = int(s) % t.side
	y = (int(s) / t.side) % t.side
	z = int(s) / (t.side * t.side)
	return
}

func (t *Torus3D) id(x, y, z int) SwitchID {
	return SwitchID((z*t.side+y)*t.side + x)
}

// step moves one ring position from v toward goal the shorter way
// around; ties break toward +, so routes are deterministic.
func (t *Torus3D) step(v, goal int) int {
	fwd := ((goal - v) + t.side) % t.side
	if fwd <= t.side-fwd {
		return (v + 1) % t.side
	}
	return (v - 1 + t.side) % t.side
}

// Route implements Topology with dimension-order routing, appending
// every intermediate switch on the walk.
func (t *Torus3D) Route(buf []SwitchID, src, dst NodeID) []SwitchID {
	return t.AltRoute(buf, src, dst, 0)
}

// AltRoutes implements Topology: one candidate per combination of ring
// directions over the dimensions the route moves in. On a side-2 ring
// both directions are the same single hop, so only sides > 2 contribute
// alternates (the long way around is a different physical path there).
func (t *Torus3D) AltRoutes(src, dst NodeID) int {
	if t.side <= 2 {
		return 1
	}
	x, y, z := t.coords(t.HostSwitch(src))
	gx, gy, gz := t.coords(t.HostSwitch(dst))
	n := 1
	if x != gx {
		n *= 2
	}
	if y != gy {
		n *= 2
	}
	if z != gz {
		n *= 2
	}
	return n
}

// AltRoute implements Topology: k is a bitmask over the moving
// dimensions in X, Y, Z order; a set bit walks that ring the other way
// around (the non-minimal direction, a disjoint set of links). Candidate
// 0 takes every ring the shorter way with ties toward +1 — exactly
// Route's dimension-order walk.
func (t *Torus3D) AltRoute(buf []SwitchID, src, dst NodeID, k int) []SwitchID {
	cur, goal := t.HostSwitch(src), t.HostSwitch(dst)
	buf = append(buf, cur)
	x, y, z := t.coords(cur)
	gx, gy, gz := t.coords(goal)
	dir := func(v, g int) int {
		if v == g {
			return 0
		}
		d := 1
		if fwd := ((g - v) + t.side) % t.side; fwd > t.side-fwd {
			d = -1
		}
		if t.side > 2 {
			if k&1 == 1 {
				d = -d
			}
			k >>= 1
		}
		return d
	}
	dx, dy, dz := dir(x, gx), dir(y, gy), dir(z, gz)
	for x != gx {
		x = (x + dx + t.side) % t.side
		buf = append(buf, t.id(x, y, z))
	}
	for y != gy {
		y = (y + dy + t.side) % t.side
		buf = append(buf, t.id(x, y, z))
	}
	for z != gz {
		z = (z + dz + t.side) % t.side
		buf = append(buf, t.id(x, y, z))
	}
	return buf
}
