package fabric

import (
	"testing"

	"vibe/internal/sim"
)

// fnInjector adapts a function to the PacketInjector interface.
type fnInjector func(index uint64, now sim.Time, d *Delivery) PacketFault

func (f fnInjector) InjectPacket(index uint64, now sim.Time, d *Delivery) PacketFault {
	return f(index, now, d)
}

func TestDropCauseAccounting(t *testing.T) {
	e := sim.NewEngine(1)
	nw := New(e, 3, testParams())
	nw.AddInjector(fnInjector(func(index uint64, _ sim.Time, _ *Delivery) PacketFault {
		return PacketFault{Drop: index == 0}
	}))
	nw.SetDropFilter(func(index uint64, d Delivery) bool { return index == 1 })
	e.At(0, func() {
		nw.Send(0, 2, 100, "by-fault")
		nw.Send(1, 2, 100, "by-filter")
		nw.Send(0, 2, 100, "through")
	})
	e.MustRun()
	if nw.Dropped != 2 || nw.Delivered != 1 {
		t.Fatalf("dropped=%d delivered=%d", nw.Dropped, nw.Delivered)
	}
	if nw.DroppedBy(DropCauseFault) != 1 || nw.DroppedBy(DropCauseFilter) != 1 || nw.DroppedBy(DropCauseRate) != 0 {
		t.Fatalf("per-cause drops: fault=%d filter=%d rate=%d",
			nw.DroppedBy(DropCauseFault), nw.DroppedBy(DropCauseFilter), nw.DroppedBy(DropCauseRate))
	}
	// Drops are attributed to the transmitting link.
	s0, s1 := nw.LinkStats(0), nw.LinkStats(1)
	if s0.DroppedFault != 1 || s0.DroppedFilter != 0 || s0.Dropped != 1 {
		t.Fatalf("link 0 stats: %+v", s0)
	}
	if s1.DroppedFilter != 1 || s1.Dropped != 1 {
		t.Fatalf("link 1 stats: %+v", s1)
	}
	if s := nw.LinkStats(2); s.Dropped != 0 {
		t.Fatalf("receiving link charged with drops: %+v", s)
	}
}

// Satellite check for the drop-accounting split: a drop filter and a
// probabilistic DropRate compose — the filter runs first and claims its
// packets, the rate coin only sees the survivors, and the split counters
// sum to the total.
func TestDropFilterDropRateInteraction(t *testing.T) {
	e := sim.NewEngine(7)
	p := testParams()
	p.DropRate = 1.0 // every packet surviving the filter is rate-dropped
	nw := New(e, 2, p)
	nw.SetDropFilter(func(index uint64, d Delivery) bool { return index%2 == 0 })
	const n = 100
	e.At(0, func() {
		for i := 0; i < n; i++ {
			nw.Send(0, 1, 10, i)
		}
	})
	e.MustRun()
	if nw.DroppedBy(DropCauseFilter) != n/2 || nw.DroppedBy(DropCauseRate) != n/2 {
		t.Fatalf("filter=%d rate=%d, want %d each",
			nw.DroppedBy(DropCauseFilter), nw.DroppedBy(DropCauseRate), n/2)
	}
	if nw.Dropped != n || nw.Delivered != 0 {
		t.Fatalf("dropped=%d delivered=%d", nw.Dropped, nw.Delivered)
	}
	s := nw.LinkStats(0)
	if s.Dropped != s.DroppedFault+s.DroppedFilter+s.DroppedRate {
		t.Fatalf("link split does not sum: %+v", s)
	}
}

// An injector drop must not consume the DropRate coin, and it claims the
// packet before the filter sees it.
func TestInjectorDropWinsOverFilter(t *testing.T) {
	e := sim.NewEngine(1)
	nw := New(e, 2, testParams())
	nw.AddInjector(fnInjector(func(index uint64, _ sim.Time, _ *Delivery) PacketFault {
		return PacketFault{Drop: true}
	}))
	filterCalls := 0
	nw.SetDropFilter(func(index uint64, d Delivery) bool { filterCalls++; return true })
	e.At(0, func() { nw.Send(0, 1, 10, nil) })
	e.MustRun()
	if nw.DroppedBy(DropCauseFault) != 1 || nw.DroppedBy(DropCauseFilter) != 0 {
		t.Fatalf("fault=%d filter=%d", nw.DroppedBy(DropCauseFault), nw.DroppedBy(DropCauseFilter))
	}
	if filterCalls != 0 {
		t.Fatalf("drop filter ran %d times on fault-dropped packets", filterCalls)
	}
}

func TestInjectedCorruptionDeliversMarked(t *testing.T) {
	e := sim.NewEngine(1)
	nw := New(e, 2, testParams())
	nw.AddInjector(fnInjector(func(index uint64, _ sim.Time, _ *Delivery) PacketFault {
		return PacketFault{Corrupt: index == 0}
	}))
	var got []*Delivery
	e.At(0, func() {
		nw.Send(0, 1, 100, "bad")
		nw.Send(0, 1, 100, "good")
	})
	e.Spawn("rx", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			got = append(got, nw.Inbox(1).Pop(p))
		}
	})
	e.MustRun()
	if !got[0].Corrupted || got[1].Corrupted {
		t.Fatalf("corruption flags: %v %v", got[0].Corrupted, got[1].Corrupted)
	}
	// Corrupt frames still cost wire time and count as delivered: the
	// receiving NIC is what discards them.
	if nw.Corrupted != 1 || nw.Delivered != 2 || nw.Dropped != 0 {
		t.Fatalf("corrupted=%d delivered=%d dropped=%d", nw.Corrupted, nw.Delivered, nw.Dropped)
	}
}

func TestInjectedDuplicationSharesPayload(t *testing.T) {
	e := sim.NewEngine(1)
	nw := New(e, 2, testParams())
	nw.AddInjector(fnInjector(func(index uint64, _ sim.Time, _ *Delivery) PacketFault {
		return PacketFault{Duplicates: 1}
	}))
	var got []*Delivery
	e.At(0, func() { nw.Send(0, 1, 100, "twice") })
	e.Spawn("rx", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			got = append(got, nw.Inbox(1).Pop(p))
		}
	})
	e.MustRun()
	if len(got) != 2 {
		t.Fatalf("got %d deliveries", len(got))
	}
	for i, d := range got {
		if d.Payload.(string) != "twice" {
			t.Fatalf("copy %d payload %v", i, d.Payload)
		}
		if !d.Shared {
			t.Fatalf("copy %d not marked Shared", i)
		}
	}
	if nw.Duplicated != 1 || nw.Delivered != 2 || nw.Sent != 1 {
		t.Fatalf("duplicated=%d delivered=%d sent=%d", nw.Duplicated, nw.Delivered, nw.Sent)
	}
}

func TestInjectedDelayPostponesArrival(t *testing.T) {
	run := func(delay sim.Duration) sim.Time {
		e := sim.NewEngine(1)
		nw := New(e, 2, testParams())
		if delay > 0 {
			nw.AddInjector(fnInjector(func(uint64, sim.Time, *Delivery) PacketFault {
				return PacketFault{Delay: delay}
			}))
		}
		var arrival sim.Time
		e.At(0, func() { nw.Send(0, 1, 1000, nil) })
		e.Spawn("rx", func(p *sim.Proc) {
			nw.Inbox(1).Pop(p)
			arrival = p.Now()
		})
		e.MustRun()
		return arrival
	}
	base := run(0)
	delayed := run(3 * sim.Microsecond)
	if want := base.Add(3 * sim.Microsecond); delayed != want {
		t.Fatalf("delayed arrival = %v, want %v (base %v)", delayed, want, base)
	}
}

// Verdicts from a chain of injectors combine: drops win, delays add.
func TestInjectorChainMergesVerdicts(t *testing.T) {
	e := sim.NewEngine(1)
	nw := New(e, 2, testParams())
	nw.AddInjector(fnInjector(func(uint64, sim.Time, *Delivery) PacketFault {
		return PacketFault{Delay: sim.Microsecond}
	}))
	nw.AddInjector(fnInjector(func(uint64, sim.Time, *Delivery) PacketFault {
		return PacketFault{Delay: 2 * sim.Microsecond, Corrupt: true}
	}))
	var got *Delivery
	var arrival sim.Time
	e.At(0, func() { nw.Send(0, 1, 1000, nil) })
	e.Spawn("rx", func(p *sim.Proc) {
		got = nw.Inbox(1).Pop(p)
		arrival = p.Now()
	})
	e.MustRun()
	if !got.Corrupted {
		t.Fatal("corruption verdict lost in merge")
	}
	// 18500ns base end-to-end time for 1000B (see TestEndToEndDeliveryTime)
	// plus the two added delays.
	if want := sim.Time(18500).Add(3 * sim.Microsecond); arrival != want {
		t.Fatalf("arrival = %v, want %v", arrival, want)
	}
}
