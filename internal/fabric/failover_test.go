package fabric

import (
	"reflect"
	"testing"

	"vibe/internal/sim"
)

// fakeOracle adapts functions to the ElementOracle interface.
type fakeOracle struct {
	swDown   func(s int, now sim.Time) bool
	linkDown func(a, b int, now sim.Time) bool
}

func (o fakeOracle) SwitchDown(s int, now sim.Time) bool {
	return o.swDown != nil && o.swDown(s, now)
}

func (o fakeOracle) SwitchLinkDown(a, b int, now sim.Time) bool {
	return o.linkDown != nil && o.linkDown(a, b, now)
}

// TestAltRouteContracts sweeps every topology over every host pair and
// every candidate index, checking the AltRoute contract: candidate 0 is
// exactly Route, every candidate spans the endpoint host switches, and no
// candidate contains a self-loop hop.
func TestAltRouteContracts(t *testing.T) {
	for _, tc := range []struct {
		topo  Topology
		hosts int
	}{
		{Crossbar{}, 4},
		{NewFatTree(8, 2), 8},
		{NewFatTree(9, 3), 9},
		{NewDragonfly(6, 1), 6},
		{NewDragonfly(12, 2), 12},
		{NewTorus3D(27, 1), 27},
		{NewTorus3D(8, 1), 8},
	} {
		for src := NodeID(0); int(src) < tc.hosts; src++ {
			for dst := NodeID(0); int(dst) < tc.hosts; dst++ {
				if src == dst {
					continue
				}
				n := tc.topo.AltRoutes(src, dst)
				if n < 1 {
					t.Fatalf("%s: AltRoutes(%d,%d) = %d", tc.topo.Name(), src, dst, n)
				}
				primary := tc.topo.Route(nil, src, dst)
				for k := 0; k < n; k++ {
					r := tc.topo.AltRoute(nil, src, dst, k)
					if k == 0 && !reflect.DeepEqual(r, primary) {
						t.Fatalf("%s: candidate 0 of %d->%d = %v, Route = %v",
							tc.topo.Name(), src, dst, r, primary)
					}
					if len(r) == 0 || r[0] != tc.topo.HostSwitch(src) || r[len(r)-1] != tc.topo.HostSwitch(dst) {
						t.Fatalf("%s: candidate %d of %d->%d = %v does not span host switches",
							tc.topo.Name(), k, src, dst, r)
					}
					for i := 1; i < len(r); i++ {
						if r[i] == r[i-1] {
							t.Fatalf("%s: candidate %d of %d->%d = %v has a self-loop hop",
								tc.topo.Name(), k, src, dst, r)
						}
					}
				}
			}
		}
	}
}

func TestFatTreeAltRoutes(t *testing.T) {
	// 8 hosts, 2 per leaf: leaves 0..3, spines 4..5.
	ft := NewFatTree(8, 2)
	if got := ft.AltRoutes(0, 1); got != 1 {
		t.Fatalf("same-leaf AltRoutes = %d, want 1", got)
	}
	if got := ft.AltRoutes(0, 5); got != 2 {
		t.Fatalf("cross-leaf AltRoutes = %d, want 2 (one per spine)", got)
	}
	// Candidate 0 rides the D-mod-k spine 5; candidate 1 the other spine.
	if got, want := ft.AltRoute(nil, 0, 5, 0), []SwitchID{0, 5, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("candidate 0 = %v, want %v", got, want)
	}
	if got, want := ft.AltRoute(nil, 0, 5, 1), []SwitchID{0, 4, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("candidate 1 = %v, want %v", got, want)
	}
}

func TestTorusAltRoutes(t *testing.T) {
	// 3x3x3: one moving dimension doubles the candidates (the other ring
	// direction), three moving dimensions give 2^3.
	ts := NewTorus3D(27, 1)
	if got := ts.AltRoutes(0, 1); got != 2 {
		t.Fatalf("one-dim AltRoutes = %d, want 2", got)
	}
	if got := ts.AltRoutes(0, 13); got != 8 {
		t.Fatalf("three-dim AltRoutes = %d, want 8", got)
	}
	// Candidate 1 of 0->1 takes the x ring the long way around.
	if got, want := ts.AltRoute(nil, 0, 1, 1), []SwitchID{0, 2, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("long-way candidate = %v, want %v", got, want)
	}
	// Side-2 rings have no distinct second direction: no alternates.
	if got := NewTorus3D(8, 1).AltRoutes(0, 7); got != 1 {
		t.Fatalf("side-2 AltRoutes = %d, want 1", got)
	}
}

func TestDragonflyAltRoutes(t *testing.T) {
	// a=2 routers per group, 3 groups: intra-group pairs have no third
	// router to detour through, inter-group pairs have one intermediate
	// group.
	df := NewDragonfly(6, 1)
	if got := df.AltRoutes(0, 1); got != 1 {
		t.Fatalf("intra-group AltRoutes = %d, want 1", got)
	}
	if got := df.AltRoutes(0, 5); got != 2 {
		t.Fatalf("inter-group AltRoutes = %d, want 2", got)
	}
	// The Valiant detour for 0->5 rides group 1's two global links.
	if got, want := df.AltRoute(nil, 0, 5, 1), []SwitchID{0, 2, 3, 5}; !reflect.DeepEqual(got, want) {
		t.Errorf("detour candidate = %v, want %v", got, want)
	}
	// A bigger dragonfly has third routers for intra-group detours.
	big := NewDragonfly(12, 1) // a=3, 4 groups
	if got := big.AltRoutes(0, 1); got != 2 {
		t.Fatalf("a=3 intra-group AltRoutes = %d, want 2", got)
	}
	if got, want := big.AltRoute(nil, 0, 1, 1), []SwitchID{0, 2, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("intra-group detour = %v, want %v", got, want)
	}
}

// failoverParams: a 4-host fat-tree with two spines (leaves 0,1; spines
// 2,3), the smallest fabric with a genuine alternate path.
func failoverParams() Params {
	p := testParams()
	p.Topology = TopoFatTree
	p.TopologyDegree = 2
	p.SwitchBufPkts = 4
	return p
}

// runFailover drives n sends 0->2 at the given instants and returns the
// network after the run. Every packet crosses leaf 0 -> spine -> leaf 1.
func runFailover(t *testing.T, p Params, o ElementOracle, at []sim.Time) *Network {
	t.Helper()
	e := sim.NewEngine(1)
	nw := New(e, 4, p)
	if o != nil {
		nw.SetElementOracle(o)
	}
	for _, ti := range at {
		e.At(ti, func() { nw.Send(0, 2, 1000, "fo") })
	}
	e.Spawn("rx", func(pr *sim.Proc) {
		for i := uint64(0); i < nw.Sent-nw.Dropped; i++ {
			nw.Inbox(2).Pop(pr)
		}
	})
	e.MustRun()
	checkConservation(t, nw)
	if leaked := nw.LeakedCredits(); leaked != 0 {
		t.Fatalf("%d switch buffer slots leaked", leaked)
	}
	return nw
}

func TestFailoverReroutesAroundDeadSwitch(t *testing.T) {
	// Host 0 -> host 2 primary spine is 2 (D-mod-k). Kill it: the packet
	// must divert to spine 3 and still arrive.
	o := fakeOracle{swDown: func(s int, _ sim.Time) bool { return s == 2 }}
	nw := runFailover(t, failoverParams(), o, []sim.Time{0})
	if nw.Delivered != 1 || nw.Dropped != 0 {
		t.Fatalf("delivered=%d dropped=%d", nw.Delivered, nw.Dropped)
	}
	if nw.Rerouted != 1 || nw.Unroutable != 0 {
		t.Fatalf("rerouted=%d unroutable=%d", nw.Rerouted, nw.Unroutable)
	}
	if at, ok := nw.FirstRerouteAt(); !ok || at != 0 {
		t.Fatalf("first reroute = %v,%v, want 0,true", at, ok)
	}
	if s := nw.SwitchStats(2); s.TxPackets != 0 {
		t.Fatalf("dead spine forwarded %d packets", s.TxPackets)
	}
	if s := nw.SwitchStats(3); s.TxPackets != 1 {
		t.Fatalf("alternate spine forwarded %d packets, want 1", s.TxPackets)
	}
}

func TestFailoverReroutesAroundDeadLink(t *testing.T) {
	// Only the leaf0->spine2 uplink dies. Candidate [0,2,1] crosses it,
	// candidate [0,3,1] does not.
	o := fakeOracle{linkDown: func(a, b int, _ sim.Time) bool {
		return (a == 0 && b == 2) || (a == 2 && b == 0)
	}}
	nw := runFailover(t, failoverParams(), o, []sim.Time{0})
	if nw.Delivered != 1 || nw.Rerouted != 1 || nw.Unroutable != 0 {
		t.Fatalf("delivered=%d rerouted=%d unroutable=%d", nw.Delivered, nw.Rerouted, nw.Unroutable)
	}
	if s := nw.SwitchStats(3); s.TxPackets != 1 {
		t.Fatalf("alternate spine forwarded %d packets, want 1", s.TxPackets)
	}
}

func TestFailoverWindowedOutage(t *testing.T) {
	// The spine is down only during [10us, 20us): sends before, during and
	// after the window. Only the middle one diverts, and the reroute
	// timestamp pins the pick instant.
	w0, w1 := sim.Time(0).Add(10*sim.Microsecond), sim.Time(0).Add(20*sim.Microsecond)
	down := func(s int, now sim.Time) bool {
		return s == 2 && now >= w0 && now < w1
	}
	nw := runFailover(t, failoverParams(), fakeOracle{swDown: down},
		[]sim.Time{0, sim.Time(0).Add(15 * sim.Microsecond), sim.Time(0).Add(30 * sim.Microsecond)})
	if nw.Delivered != 3 || nw.Rerouted != 1 {
		t.Fatalf("delivered=%d rerouted=%d", nw.Delivered, nw.Rerouted)
	}
	if at, ok := nw.FirstRerouteAt(); !ok || at != sim.Time(0).Add(15*sim.Microsecond) {
		t.Fatalf("first reroute = %v,%v, want 15us,true", at, ok)
	}
	if s := nw.SwitchStats(2); s.TxPackets != 2 {
		t.Fatalf("primary spine forwarded %d packets, want 2", s.TxPackets)
	}
}

func TestUnroutableDropAccounted(t *testing.T) {
	// Both spines dead: every cross-leaf candidate is down, the packet is
	// dropped as a fault on the sender's link, and no buffer slot is held.
	o := fakeOracle{swDown: func(s int, _ sim.Time) bool { return s == 2 || s == 3 }}
	nw := runFailover(t, failoverParams(), o, []sim.Time{0})
	if nw.Delivered != 0 || nw.Dropped != 1 || nw.Unroutable != 1 {
		t.Fatalf("delivered=%d dropped=%d unroutable=%d", nw.Delivered, nw.Dropped, nw.Unroutable)
	}
	if got := nw.DroppedBy(DropCauseFault); got != 1 {
		t.Fatalf("fault drops = %d, want 1", got)
	}
	if ls := nw.LinkStats(0); ls.DroppedFault != 1 {
		t.Fatalf("drop not charged to sender link: %+v", ls)
	}
	if _, ok := nw.FirstRerouteAt(); ok {
		t.Fatal("unroutable drop counted as a reroute")
	}
}

func TestAdaptivePrefersIdlePath(t *testing.T) {
	// Two back-to-back sends under the adaptive policy: the first takes the
	// primary spine (all candidates idle, ties to candidate 0), the second
	// sees its pending work and diverts to the idle spine.
	p := failoverParams()
	p.RoutePolicy = RouteAdaptive
	nw := runFailover(t, p, nil, []sim.Time{0, 0})
	if nw.Delivered != 2 || nw.Rerouted != 1 {
		t.Fatalf("delivered=%d rerouted=%d", nw.Delivered, nw.Rerouted)
	}
	if s2, s3 := nw.SwitchStats(2), nw.SwitchStats(3); s2.TxPackets != 1 || s3.TxPackets != 1 {
		t.Fatalf("spine tx = %d,%d, want 1,1 (load spread)", s2.TxPackets, s3.TxPackets)
	}
}

func TestAdaptiveSkipsDeadPath(t *testing.T) {
	// Adaptive with the alternate spine dead: both sends must squeeze
	// through the primary however queued it is.
	p := failoverParams()
	p.RoutePolicy = RouteAdaptive
	o := fakeOracle{swDown: func(s int, _ sim.Time) bool { return s == 3 }}
	nw := runFailover(t, p, o, []sim.Time{0, 0})
	if nw.Delivered != 2 || nw.Rerouted != 0 || nw.Unroutable != 0 {
		t.Fatalf("delivered=%d rerouted=%d unroutable=%d", nw.Delivered, nw.Rerouted, nw.Unroutable)
	}
	if s := nw.SwitchStats(3); s.TxPackets != 0 {
		t.Fatalf("dead spine forwarded %d packets", s.TxPackets)
	}
}

func TestFailoverSameFabricTimingAsPrimary(t *testing.T) {
	// The alternate spine is the same distance as the primary, so a
	// diverted packet arrives at exactly the primary-path instant: failover
	// costs nothing but the shared-path congestion.
	arrival := func(o ElementOracle) sim.Time {
		e := sim.NewEngine(1)
		nw := New(e, 4, failoverParams())
		if o != nil {
			nw.SetElementOracle(o)
		}
		var at sim.Time
		e.At(0, func() { nw.Send(0, 2, 1000, nil) })
		e.Spawn("rx", func(pr *sim.Proc) {
			nw.Inbox(2).Pop(pr)
			at = pr.Now()
		})
		e.MustRun()
		return at
	}
	clean := arrival(nil)
	diverted := arrival(fakeOracle{swDown: func(s int, _ sim.Time) bool { return s == 2 }})
	if clean != diverted {
		t.Fatalf("diverted arrival %v != clean arrival %v", diverted, clean)
	}
}

func TestUnknownRoutePolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on unknown route policy")
		}
	}()
	p := testParams()
	p.RoutePolicy = "zigzag"
	New(sim.NewEngine(1), 2, p)
}
