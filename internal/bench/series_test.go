package bench

import (
	"strings"
	"testing"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("lat", "size", "us")
	s.Add(4, 10)
	s.Add(64, 12)
	xs, ys := s.XY()
	if len(xs) != 2 || xs[1] != 64 || ys[0] != 10 {
		t.Fatalf("XY = %v %v", xs, ys)
	}
	if y, ok := s.At(64); !ok || y != 12 {
		t.Fatalf("At(64) = %v %v", y, ok)
	}
	if _, ok := s.At(5); ok {
		t.Fatal("At missing x succeeded")
	}
	if s.MustAt(4) != 10 {
		t.Fatal("MustAt")
	}
	if s.MaxY() != 12 {
		t.Fatalf("MaxY = %v", s.MaxY())
	}
}

func TestMustAtPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAt on missing x did not panic")
		}
	}()
	NewSeries("s", "x", "y").MustAt(1)
}

func TestEmptySeriesMaxY(t *testing.T) {
	if NewSeries("s", "x", "y").MaxY() != 0 {
		t.Fatal("empty MaxY")
	}
}

func TestLadders(t *testing.T) {
	l := SizeLadder()
	if l[0] != 4 || l[len(l)-1] != 28672 {
		t.Fatalf("SizeLadder = %v", l)
	}
	for i := 1; i < len(l); i++ {
		if l[i] <= l[i-1] {
			t.Fatal("ladder not increasing")
		}
	}
	small := SmallLadder()
	if len(small) >= len(l) {
		t.Fatal("SmallLadder not smaller")
	}
	// Every small-ladder point is on the full ladder.
	on := map[int]bool{}
	for _, x := range l {
		on[x] = true
	}
	for _, x := range small {
		if !on[x] {
			t.Errorf("small ladder point %d missing from full ladder", x)
		}
	}
}

func TestGroup(t *testing.T) {
	a := NewSeries("a", "x", "y")
	a.Add(1, 10)
	a.Add(2, 20)
	b := NewSeries("b", "x", "y")
	b.Add(2, 200)
	b.Add(3, 300)
	g := NewGroup("g").Add(a, b)
	if g.Find("b") != b || g.Find("zz") != nil {
		t.Fatal("Find")
	}
	var sb strings.Builder
	g.RenderCSV(&sb)
	got := sb.String()
	want := "x,a,b\n1,10,\n2,20,200\n3,,300\n"
	if got != want {
		t.Fatalf("csv = %q, want %q", got, want)
	}
}

func TestEmptyGroupCSV(t *testing.T) {
	var sb strings.Builder
	NewGroup("e").RenderCSV(&sb)
	if sb.Len() != 0 {
		t.Fatalf("empty group rendered %q", sb.String())
	}
}
