// Package bench provides the sweep harness the VIBe suite reports with:
// named (x, y) series, size ladders, and CSV export.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Point is one measurement.
type Point struct {
	X float64
	Y float64
}

// Series is a named curve, e.g. "bvia latency vs message size".
type Series struct {
	Name   string
	XLabel string
	YLabel string
	Points []Point
}

// NewSeries returns an empty series.
func NewSeries(name, xlabel, ylabel string) *Series {
	return &Series{Name: name, XLabel: xlabel, YLabel: ylabel}
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// XY splits the series into coordinate slices.
func (s *Series) XY() (xs, ys []float64) {
	for _, p := range s.Points {
		xs = append(xs, p.X)
		ys = append(ys, p.Y)
	}
	return
}

// At returns the y value at exactly x, and whether it exists.
func (s *Series) At(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// MustAt is At, panicking when x is absent (calibration tests use exact
// ladder points).
func (s *Series) MustAt(x float64) float64 {
	y, ok := s.At(x)
	if !ok {
		panic(fmt.Sprintf("bench: series %q has no point at x=%v", s.Name, x))
	}
	return y
}

// MaxY returns the largest y value, or 0 for an empty series.
func (s *Series) MaxY() float64 {
	max := 0.0
	for i, p := range s.Points {
		if i == 0 || p.Y > max {
			max = p.Y
		}
	}
	return max
}

// SizeLadder is the paper's message-size x-axis: powers of four from 4 B
// plus the large sizes its figures label (12288, 20480, 28672).
func SizeLadder() []int {
	return []int{4, 16, 64, 256, 1024, 4096, 12288, 20480, 28672}
}

// SmallLadder is a shorter ladder for expensive sweeps.
func SmallLadder() []int {
	return []int{4, 64, 1024, 4096, 28672}
}

// Group is an ordered set of series sharing axes (one figure).
type Group struct {
	Title  string
	Series []*Series
}

// NewGroup returns an empty group.
func NewGroup(title string) *Group { return &Group{Title: title} }

// Add appends series to the group and returns the group.
func (g *Group) Add(ss ...*Series) *Group {
	g.Series = append(g.Series, ss...)
	return g
}

// Find returns the series with the given name, or nil.
func (g *Group) Find(name string) *Series {
	for _, s := range g.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// RenderCSV writes the group as a wide CSV: one x column, one column per
// series. X values are the union of all series' x values.
func (g *Group) RenderCSV(w io.Writer) {
	if len(g.Series) == 0 {
		return
	}
	xset := map[float64]bool{}
	for _, s := range g.Series {
		for _, p := range s.Points {
			xset[p.X] = true
		}
	}
	xs := make([]float64, 0, len(xset))
	for x := range xset {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	headers := []string{g.Series[0].XLabel}
	for _, s := range g.Series {
		headers = append(headers, s.Name)
	}
	fmt.Fprintln(w, strings.Join(headers, ","))
	for _, x := range xs {
		row := []string{fmt.Sprintf("%g", x)}
		for _, s := range g.Series {
			if y, ok := s.At(x); ok {
				row = append(row, fmt.Sprintf("%g", y))
			} else {
				row = append(row, "")
			}
		}
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}
