package fault

import (
	"encoding/json"
	"strings"
	"testing"

	"vibe/internal/fabric"
	"vibe/internal/sim"
)

func u64(v uint64) *uint64 { return &v }
func pint(v int) *int      { return &v }

func mustInjector(t *testing.T, p *Plan) *Injector {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return p.NewInjector()
}

func TestPlanValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"unknown kind", Spec{Kind: "melt"}, "unknown kind"},
		{"bad prob", Spec{Kind: KindDrop, Prob: 1.5}, "outside [0, 1]"},
		{"negative port", Spec{Kind: KindDrop, Port: pint(-1)}, "negative port"},
		{"nth on wrong kind", Spec{Kind: KindDrop, Nth: u64(3)}, "nth applies only"},
		{"nth missing", Spec{Kind: KindDropNth}, "nth is required"},
		{"from without to", Spec{Kind: KindDropRange, From: u64(1)}, "set together"},
		{"range on wrong kind", Spec{Kind: KindDrop, From: u64(1), To: u64(2)}, "apply only"},
		{"inverted range", Spec{Kind: KindDropRange, From: u64(5), To: u64(2)}, "from 5 > to 2"},
		{"range missing", Spec{Kind: KindDropRange}, "from/to are required"},
		{"delay on drop", Spec{Kind: KindDrop, Delay: "10us"}, "delay does not apply"},
		{"delay missing", Spec{Kind: KindDelay}, "delay is required"},
		{"delay unparseable", Spec{Kind: KindDelay, Delay: "fast"}, "delay"},
		{"delay negative", Spec{Kind: KindDelay, Delay: "-3us"}, "must be positive"},
		{"bad start", Spec{Kind: KindDrop, Start: "soon"}, "start"},
		{"end before start", Spec{Kind: KindLinkDown, Start: "5ms", End: "2ms"}, "not after start"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := &Plan{Faults: []Spec{tc.spec}}
			err := p.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Fatalf("nil plan: %v", err)
	}
	if !nilPlan.Empty() {
		t.Fatal("nil plan not Empty")
	}
	if (&Plan{Seed: 3}).Empty() == false {
		t.Fatal("spec-less plan not Empty")
	}
}

func TestParseRejectsInvalid(t *testing.T) {
	if _, err := Parse([]byte(`{"faults": [{"kind": "nope"}]}`)); err == nil {
		t.Fatal("Parse accepted unknown kind")
	}
	p, err := Parse([]byte(`{"seed": 7, "faults": [{"kind": "drop-nth", "nth": 40}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || len(p.Faults) != 1 {
		t.Fatalf("parsed %+v", p)
	}
}

func delivery(src, dst fabric.NodeID) *fabric.Delivery {
	return &fabric.Delivery{Src: src, Dst: dst}
}

func TestDropNthAndRange(t *testing.T) {
	inj := mustInjector(t, &Plan{Faults: []Spec{
		{Kind: KindDropNth, Nth: u64(3)},
		{Kind: KindDropRange, From: u64(10), To: u64(12)},
	}})
	var dropped []uint64
	for i := uint64(0); i < 20; i++ {
		if inj.InjectPacket(i, 0, delivery(0, 1)).Drop {
			dropped = append(dropped, i)
		}
	}
	want := []uint64{3, 10, 11, 12}
	if len(dropped) != len(want) {
		t.Fatalf("dropped %v, want %v", dropped, want)
	}
	for i := range want {
		if dropped[i] != want[i] {
			t.Fatalf("dropped %v, want %v", dropped, want)
		}
	}
	if inj.Counts()[KindDropNth] != 1 || inj.Counts()[KindDropRange] != 3 {
		t.Fatalf("counts %v", inj.Counts())
	}
}

func TestPortSelectorAndLinkDownBidirectional(t *testing.T) {
	inj := mustInjector(t, &Plan{Faults: []Spec{
		{Kind: KindDrop, Port: pint(0)},
	}})
	if !inj.InjectPacket(0, 0, delivery(0, 1)).Drop {
		t.Fatal("drop spec on port 0 ignored a packet sent by node 0")
	}
	if inj.InjectPacket(1, 0, delivery(1, 0)).Drop {
		t.Fatal("drop spec on port 0 hit a packet sent by node 1")
	}

	down := mustInjector(t, &Plan{Faults: []Spec{
		{Kind: KindLinkDown, Port: pint(0)},
	}})
	if !down.InjectPacket(0, 0, delivery(0, 1)).Drop {
		t.Fatal("link-down missed the outbound direction")
	}
	if !down.InjectPacket(1, 0, delivery(1, 0)).Drop {
		t.Fatal("link-down missed the inbound direction")
	}
	if down.InjectPacket(2, 0, delivery(1, 2)).Drop {
		t.Fatal("link-down hit a packet not touching port 0")
	}
}

func TestTimeWindowAndCountCap(t *testing.T) {
	inj := mustInjector(t, &Plan{Faults: []Spec{
		{Kind: KindLinkDown, Start: "1ms", End: "2ms"},
	}})
	ms := sim.Time(0).Add(sim.Millisecond)
	if inj.InjectPacket(0, ms-1, delivery(0, 1)).Drop {
		t.Fatal("fired before the window")
	}
	if !inj.InjectPacket(1, ms, delivery(0, 1)).Drop {
		t.Fatal("window start is inclusive")
	}
	if inj.InjectPacket(2, ms.Add(sim.Millisecond), delivery(0, 1)).Drop {
		t.Fatal("window end is exclusive")
	}

	capped := mustInjector(t, &Plan{Faults: []Spec{
		{Kind: KindDrop, Count: 2},
	}})
	drops := 0
	for i := uint64(0); i < 10; i++ {
		if capped.InjectPacket(i, 0, delivery(0, 1)).Drop {
			drops++
		}
	}
	if drops != 2 {
		t.Fatalf("count-capped spec fired %d times, want 2", drops)
	}
}

func TestVerdictFolding(t *testing.T) {
	inj := mustInjector(t, &Plan{Faults: []Spec{
		{Kind: KindCorrupt},
		{Kind: KindDuplicate},
		{Kind: KindDuplicate},
		{Kind: KindDelay, Delay: "10us"},
		{Kind: KindDelay, Delay: "5us"},
	}})
	f := inj.InjectPacket(0, 0, delivery(0, 1))
	if !f.Corrupt || f.Drop {
		t.Fatalf("verdict %+v", f)
	}
	if f.Duplicates != 2 {
		t.Fatalf("duplicates %d, want 2", f.Duplicates)
	}
	if f.Delay != 15*sim.Microsecond {
		t.Fatalf("delay %v, want 15us", f.Delay)
	}
}

func TestStallSitesAndHasStalls(t *testing.T) {
	inj := mustInjector(t, &Plan{Faults: []Spec{
		{Kind: KindDoorbellStall, Delay: "30us", Port: pint(1)},
		{Kind: KindDMAStall, Delay: "20us"},
	}})
	if !inj.HasStalls() {
		t.Fatal("HasStalls false with stall specs")
	}
	if d := inj.Stall(SiteDoorbell, 1, 0); d != 30*sim.Microsecond {
		t.Fatalf("doorbell stall on node 1 = %v", d)
	}
	if d := inj.Stall(SiteDoorbell, 0, 0); d != 0 {
		t.Fatalf("doorbell stall leaked to node 0: %v", d)
	}
	if d := inj.Stall(SiteDMA, 0, 0); d != 20*sim.Microsecond {
		t.Fatalf("dma stall = %v", d)
	}

	packetOnly := mustInjector(t, &Plan{Faults: []Spec{{Kind: KindDrop}}})
	if packetOnly.HasStalls() {
		t.Fatal("HasStalls true for packet-only plan")
	}
}

// Probabilistic specs must replay identically for a given plan seed and
// differ across seeds.
func TestProbabilisticDeterminism(t *testing.T) {
	run := func(seed int64) []uint64 {
		inj := mustInjector(t, &Plan{Seed: seed, Faults: []Spec{
			{Kind: KindDrop, Prob: 0.3},
		}})
		var dropped []uint64
		for i := uint64(0); i < 200; i++ {
			if inj.InjectPacket(i, 0, delivery(0, 1)).Drop {
				dropped = append(dropped, i)
			}
		}
		return dropped
	}
	a, b := run(42), run(42)
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("degenerate drop pattern: %d of 200", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical drop patterns")
	}
}

func TestRandomPlanSeededAndValid(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		p := RandomPlan(seed)
		if p.Empty() {
			t.Fatalf("seed %d: empty plan", seed)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	aj, _ := json.Marshal(RandomPlan(7))
	bj, _ := json.Marshal(RandomPlan(7))
	if string(aj) != string(bj) {
		t.Fatalf("RandomPlan(7) not deterministic:\n%s\n%s", aj, bj)
	}
}

func TestElementSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"switch missing", Spec{Kind: KindSwitchDown}, "switch is required"},
		{"negative switch", Spec{Kind: KindSwitchDown, Switch: pint(-2)}, "negative switch"},
		{"link on switch-down", Spec{Kind: KindSwitchDown, Switch: pint(1), Link: []int{0, 1}}, "link applies only"},
		{"port on element", Spec{Kind: KindSwitchDown, Switch: pint(1), Port: pint(0)}, "port does not apply"},
		{"prob on element", Spec{Kind: KindSwitchDown, Switch: pint(1), Prob: 0.5}, "deterministic"},
		{"count on element", Spec{Kind: KindSwitchDown, Switch: pint(1), Count: 3}, "count does not apply"},
		{"one endpoint", Spec{Kind: KindSwitchLinkDown, Link: []int{4}}, "exactly two"},
		{"equal endpoints", Spec{Kind: KindSwitchLinkDown, Link: []int{4, 4}}, "must differ"},
		{"negative endpoint", Spec{Kind: KindSwitchLinkDown, Link: []int{-1, 4}}, "negative link endpoint"},
		{"switch on link-down", Spec{Kind: KindSwitchLinkDown, Link: []int{0, 1}, Switch: pint(0)}, "switch applies only"},
		{"switch on packet kind", Spec{Kind: KindDrop, Switch: pint(1)}, "switch applies only"},
		{"link on packet kind", Spec{Kind: KindDrop, Link: []int{0, 1}}, "link applies only"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := (&Plan{Faults: []Spec{tc.spec}}).Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestElementOracleWindowsAndSelectors(t *testing.T) {
	// The link spec is deliberately given endpoints in descending order:
	// the oracle must answer for both orders anyway.
	inj := mustInjector(t, &Plan{Faults: []Spec{
		{Kind: KindSwitchDown, Switch: pint(2), Start: "1ms", End: "2ms"},
		{Kind: KindSwitchLinkDown, Link: []int{5, 3}, Start: "1ms", End: "2ms"},
	}})
	if !inj.HasElementFaults() {
		t.Fatal("HasElementFaults false with element specs")
	}
	in := sim.Time(0).Add(1500 * sim.Microsecond)
	before := sim.Time(0).Add(500 * sim.Microsecond)
	at := sim.Time(0).Add(sim.Millisecond)
	end := sim.Time(0).Add(2 * sim.Millisecond)
	if !inj.SwitchDown(2, in) || !inj.SwitchDown(2, at) {
		t.Fatal("switch 2 not down inside the window (start inclusive)")
	}
	if inj.SwitchDown(2, before) || inj.SwitchDown(2, end) {
		t.Fatal("switch 2 down outside the window (end must be exclusive)")
	}
	if inj.SwitchDown(3, in) {
		t.Fatal("outage leaked to another switch")
	}
	if !inj.SwitchLinkDown(3, 5, in) || !inj.SwitchLinkDown(5, 3, in) {
		t.Fatal("link {3,5} liveness is order-sensitive")
	}
	if inj.SwitchLinkDown(3, 4, in) {
		t.Fatal("outage leaked to another link")
	}
	// Element outages are routing facts, not packet verdicts: the packet
	// chain must ignore them entirely.
	if f := inj.InjectPacket(0, in, delivery(0, 1)); f != (fabric.PacketFault{}) {
		t.Fatalf("element spec produced a packet verdict: %+v", f)
	}

	packetOnly := mustInjector(t, &Plan{Faults: []Spec{{Kind: KindDrop}}})
	if packetOnly.HasElementFaults() {
		t.Fatal("HasElementFaults true for packet-only plan")
	}
}

func TestRandomTopoPlanSeededAndValid(t *testing.T) {
	sawElement := false
	for seed := int64(0); seed < 100; seed++ {
		p := RandomTopoPlan(seed, 4, 6)
		if p.Empty() {
			t.Fatalf("seed %d: empty plan", seed)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, s := range p.Faults {
			switch s.Kind {
			case KindSwitchDown:
				sawElement = true
				if *s.Switch < 0 || *s.Switch >= 6 {
					t.Fatalf("seed %d: switch %d out of range", seed, *s.Switch)
				}
			case KindSwitchLinkDown:
				sawElement = true
				if s.Link[0] == s.Link[1] || s.Link[0] >= 6 || s.Link[1] >= 6 {
					t.Fatalf("seed %d: bad link %v", seed, s.Link)
				}
			}
		}
	}
	if !sawElement {
		t.Fatal("100 topo plans over 6 switches drew no element outage")
	}
	aj, _ := json.Marshal(RandomTopoPlan(7, 4, 6))
	bj, _ := json.Marshal(RandomTopoPlan(7, 4, 6))
	if string(aj) != string(bj) {
		t.Fatalf("RandomTopoPlan(7) not deterministic:\n%s\n%s", aj, bj)
	}
	// A single-switch fabric has no redundant elements to kill: topo plans
	// degrade to the legacy kind pool.
	for seed := int64(0); seed < 50; seed++ {
		for _, s := range RandomTopoPlan(seed, 2, 1).Faults {
			if elementKinds[s.Kind] {
				t.Fatalf("seed %d: element kind %s on a single-switch fabric", seed, s.Kind)
			}
		}
	}
}
