// Package fault implements deterministic, virtual-time fault injection
// for the simulated cluster. A Plan is a typed list of fault specs —
// targeted packet drops, corruption, duplication, reorder delays, jitter,
// time-windowed link/switch/inter-switch-link outages, and NIC
// doorbell/DMA stalls — loaded from scenario JSON and compiled into an
// Injector that hooks the fabric's packet path, its route-liveness
// oracle, and the NIC models' command/DMA paths.
//
// Everything is driven by virtual time and a plan-local seeded RNG, so a
// fault plan replays identically run after run: the same packets drop,
// the same frames corrupt, the same stalls hit. An empty plan injects
// nothing and leaves every simulation byte-identical to an uninstrumented
// run.
package fault

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"

	"vibe/internal/fabric"
	"vibe/internal/provider"
	"vibe/internal/sim"
)

// Fault kinds. Packet kinds act in the fabric's send path; element kinds
// kill fabric switches or inter-switch links for a virtual-time window
// (the routing layer steers around or drops); stall kinds act in the NIC
// models.
const (
	KindDropNth   = "drop-nth"   // drop the packet with sequence number Nth
	KindDropRange = "drop-range" // drop packets with From <= seq <= To
	KindDrop      = "drop"       // drop each matching packet with probability Prob
	KindCorrupt   = "corrupt"    // mark matching packets corrupt (receiver CRC-drops them)
	KindDuplicate = "duplicate"  // deliver an extra copy of matching packets
	KindDelay     = "delay"      // hold matching packets at the switch for Delay (reorder)
	KindJitter    = "jitter"     // hold matching packets for uniform [0, Delay)
	KindLinkDown  = "link-down"  // drop everything touching Port during [Start, End)

	KindSwitchDown     = "switch-down"      // switch Switch is dead during [Start, End)
	KindSwitchLinkDown = "switch-link-down" // inter-switch link Link is dead during [Start, End)

	KindDoorbellStall = "doorbell-stall" // stall the NIC's doorbell/command engine by Delay
	KindDMAStall      = "dma-stall"      // stall each NIC DMA transfer by Delay
)

// packetKinds, elementKinds and stallKinds partition the kind namespace.
var packetKinds = map[string]bool{
	KindDropNth: true, KindDropRange: true, KindDrop: true,
	KindCorrupt: true, KindDuplicate: true, KindDelay: true,
	KindJitter: true, KindLinkDown: true,
}

var elementKinds = map[string]bool{
	KindSwitchDown: true, KindSwitchLinkDown: true,
}

var stallKinds = map[string]bool{
	KindDoorbellStall: true, KindDMAStall: true,
}

// Kinds lists every fault kind — packet kinds, then element kinds, then
// stall kinds — the canonical order for sweeps and reports.
func Kinds() []string {
	return []string{
		KindDropNth, KindDropRange, KindDrop, KindCorrupt, KindDuplicate,
		KindDelay, KindJitter, KindLinkDown,
		KindSwitchDown, KindSwitchLinkDown,
		KindDoorbellStall, KindDMAStall,
	}
}

// Spec is one fault in a plan, the JSON schema of a plan file entry.
// Zero-valued selectors leave their dimension unconstrained: a spec with
// no Port matches every node, one with no Start/End is active for the
// whole run, one with Prob 0 on a probabilistic kind fires always.
type Spec struct {
	// Kind selects the fault type (see the Kind constants).
	Kind string `json:"kind"`

	// Port restricts the fault to one node: for packet kinds the
	// transmitting node (link-down also matches the receiving side), for
	// stall kinds the NIC. Nil matches every node.
	Port *int `json:"port,omitempty"`

	// Switch (switch-down) selects the dead switch by topology switch
	// index; Link (switch-link-down) selects the dead inter-switch link
	// as its two switch endpoints, order-insensitive. Element outages are
	// deterministic: no Prob, no Count — the window is the whole story.
	Switch *int  `json:"switch,omitempty"`
	Link   []int `json:"link,omitempty"`

	// Nth (drop-nth) and From/To (drop-range) select packets by the
	// fabric's global sequence number.
	Nth  *uint64 `json:"nth,omitempty"`
	From *uint64 `json:"from,omitempty"`
	To   *uint64 `json:"to,omitempty"`

	// Count caps how many times the fault fires; 0 means unlimited.
	Count uint64 `json:"count,omitempty"`

	// Prob is the per-event firing probability for probabilistic kinds
	// (drop, corrupt, duplicate, delay, jitter, stalls); 0 means 1.0.
	Prob float64 `json:"prob,omitempty"`

	// Delay is the injected latency for delay/jitter/stall kinds
	// (provider duration syntax: "150us", "2ms"; bare numbers are µs).
	Delay string `json:"delay,omitempty"`

	// Start and End bound the virtual-time window the fault is active in
	// ([Start, End), offsets from simulation start). Empty means
	// unbounded on that side.
	Start string `json:"start,omitempty"`
	End   string `json:"end,omitempty"`
}

// Plan is a reproducible fault schedule: a seed for the plan's private
// RNG plus the fault specs. The zero value (and a plan with no specs) is
// inert.
type Plan struct {
	Seed   int64  `json:"seed,omitempty"`
	Faults []Spec `json:"faults,omitempty"`
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.Faults) == 0 }

// Validate checks every spec against the schema: known kind, selectors
// that make sense for it, parseable durations.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i := range p.Faults {
		if _, err := compileSpec(&p.Faults[i]); err != nil {
			return fmt.Errorf("fault %d: %w", i, err)
		}
	}
	return nil
}

// Load reads and validates a plan file:
//
//	{"seed": 7, "faults": [{"kind": "drop-nth", "nth": 40}, ...]}
func Load(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// Parse decodes and validates a JSON plan.
func Parse(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("fault: plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("fault: plan: %w", err)
	}
	return &p, nil
}

// cspec is a compiled spec: durations parsed, selectors normalized, plus
// the per-run application counter.
type cspec struct {
	kind     string
	port     int // -1: any node
	hasNth   bool
	nth      uint64
	hasRange bool
	from, to uint64
	count    uint64 // 0: unlimited
	prob     float64
	delay    sim.Duration
	start    sim.Time
	end      sim.Time // 0: unbounded

	// Element selectors: the dead switch (switch-down) or the dead
	// inter-switch link's endpoints, normalized linkA < linkB.
	swid         int
	linkA, linkB int

	applied uint64
}

// compileSpec validates and lowers one spec.
func compileSpec(s *Spec) (*cspec, error) {
	c := &cspec{kind: s.Kind, port: -1, count: s.Count, prob: s.Prob}
	if !packetKinds[s.Kind] && !elementKinds[s.Kind] && !stallKinds[s.Kind] {
		return nil, fmt.Errorf("unknown kind %q", s.Kind)
	}
	if elementKinds[s.Kind] {
		if s.Port != nil {
			return nil, fmt.Errorf("%s: port does not apply (use switch/link selectors)", s.Kind)
		}
		if s.Prob != 0 {
			return nil, fmt.Errorf("%s: element outages are deterministic, prob does not apply", s.Kind)
		}
		if s.Count != 0 {
			return nil, fmt.Errorf("%s: count does not apply, bound the outage with start/end", s.Kind)
		}
		switch s.Kind {
		case KindSwitchDown:
			if s.Link != nil {
				return nil, fmt.Errorf("%s: link applies only to %s", s.Kind, KindSwitchLinkDown)
			}
			if s.Switch == nil {
				return nil, fmt.Errorf("%s: switch is required", s.Kind)
			}
			if *s.Switch < 0 {
				return nil, fmt.Errorf("%s: negative switch %d", s.Kind, *s.Switch)
			}
			c.swid = *s.Switch
		case KindSwitchLinkDown:
			if s.Switch != nil {
				return nil, fmt.Errorf("%s: switch applies only to %s", s.Kind, KindSwitchDown)
			}
			if len(s.Link) != 2 {
				return nil, fmt.Errorf("%s: link needs exactly two switch endpoints, got %d", s.Kind, len(s.Link))
			}
			a, b := s.Link[0], s.Link[1]
			if a < 0 || b < 0 {
				return nil, fmt.Errorf("%s: negative link endpoint in %v", s.Kind, s.Link)
			}
			if a == b {
				return nil, fmt.Errorf("%s: link endpoints must differ, got %v", s.Kind, s.Link)
			}
			if a > b {
				a, b = b, a
			}
			c.linkA, c.linkB = a, b
		}
	} else if s.Switch != nil {
		return nil, fmt.Errorf("%s: switch applies only to %s", s.Kind, KindSwitchDown)
	} else if s.Link != nil {
		return nil, fmt.Errorf("%s: link applies only to %s", s.Kind, KindSwitchLinkDown)
	}
	if s.Port != nil {
		if *s.Port < 0 {
			return nil, fmt.Errorf("%s: negative port %d", s.Kind, *s.Port)
		}
		c.port = *s.Port
	}
	if s.Prob < 0 || s.Prob > 1 {
		return nil, fmt.Errorf("%s: prob %v outside [0, 1]", s.Kind, s.Prob)
	}
	if s.Nth != nil {
		if s.Kind != KindDropNth {
			return nil, fmt.Errorf("%s: nth applies only to %s", s.Kind, KindDropNth)
		}
		c.hasNth, c.nth = true, *s.Nth
	}
	if (s.From != nil) != (s.To != nil) {
		return nil, fmt.Errorf("%s: from and to must be set together", s.Kind)
	}
	if s.From != nil {
		if s.Kind != KindDropRange {
			return nil, fmt.Errorf("%s: from/to apply only to %s", s.Kind, KindDropRange)
		}
		if *s.From > *s.To {
			return nil, fmt.Errorf("%s: from %d > to %d", s.Kind, *s.From, *s.To)
		}
		c.hasRange, c.from, c.to = true, *s.From, *s.To
	}
	switch s.Kind {
	case KindDropNth:
		if !c.hasNth {
			return nil, fmt.Errorf("%s: nth is required", s.Kind)
		}
	case KindDropRange:
		if !c.hasRange {
			return nil, fmt.Errorf("%s: from/to are required", s.Kind)
		}
	}
	needsDelay := s.Kind == KindDelay || s.Kind == KindJitter || stallKinds[s.Kind]
	if s.Delay != "" {
		if !needsDelay {
			return nil, fmt.Errorf("%s: delay does not apply", s.Kind)
		}
		d, err := provider.ParseDuration(s.Delay)
		if err != nil {
			return nil, fmt.Errorf("%s: delay: %w", s.Kind, err)
		}
		if d <= 0 {
			return nil, fmt.Errorf("%s: delay must be positive", s.Kind)
		}
		c.delay = d
	} else if needsDelay {
		return nil, fmt.Errorf("%s: delay is required", s.Kind)
	}
	if s.Start != "" {
		d, err := provider.ParseDuration(s.Start)
		if err != nil {
			return nil, fmt.Errorf("%s: start: %w", s.Kind, err)
		}
		c.start = sim.Time(0).Add(d)
	}
	if s.End != "" {
		d, err := provider.ParseDuration(s.End)
		if err != nil {
			return nil, fmt.Errorf("%s: end: %w", s.Kind, err)
		}
		c.end = sim.Time(0).Add(d)
		if c.end <= c.start {
			return nil, fmt.Errorf("%s: end %s not after start %s", s.Kind, s.End, s.Start)
		}
	}
	return c, nil
}

// active reports whether the spec fires at time now, given its window and
// application cap.
func (c *cspec) active(now sim.Time) bool {
	if c.count > 0 && c.applied >= c.count {
		return false
	}
	if now < c.start {
		return false
	}
	if c.end > 0 && now >= c.end {
		return false
	}
	return true
}

// Site identifies a NIC-model fault hook.
type Site int

const (
	// SiteDoorbell: the NIC's command/doorbell processing path.
	SiteDoorbell Site = iota
	// SiteDMA: every NIC-initiated DMA transfer.
	SiteDMA
)

// Injector is one simulation's compiled fault plan. It implements
// fabric.PacketInjector and exposes the NIC stall hook; all state
// (per-spec application counts, the plan RNG) is injector-local, so every
// simulated system compiles its own injector and replays identically.
//
// Injectors are engine-local and not safe for concurrent use — exactly
// like the rest of a simulation's state.
type Injector struct {
	rng     *rand.Rand
	packet  []*cspec
	element []*cspec
	stall   []*cspec
	counts  map[string]uint64
}

// NewInjector compiles the plan into a fresh injector. The plan must have
// been validated (Load, Parse and Validate all do); compiling an invalid
// plan panics.
func (p *Plan) NewInjector() *Injector {
	var seed int64
	if p != nil {
		seed = p.Seed
	}
	inj := &Injector{
		rng:    rand.New(rand.NewSource(seed)),
		counts: make(map[string]uint64),
	}
	if p != nil {
		for i := range p.Faults {
			c, err := compileSpec(&p.Faults[i])
			if err != nil {
				panic(fmt.Sprintf("fault: NewInjector on unvalidated plan: %v", err))
			}
			switch {
			case packetKinds[c.kind]:
				inj.packet = append(inj.packet, c)
			case elementKinds[c.kind]:
				inj.element = append(inj.element, c)
			default:
				inj.stall = append(inj.stall, c)
			}
		}
	}
	return inj
}

// fire decides whether a probabilistic spec triggers and records the
// application. Specs with Prob 0 always fire.
func (inj *Injector) fire(c *cspec) bool {
	if c.prob > 0 && inj.rng.Float64() >= c.prob {
		return false
	}
	c.applied++
	inj.counts[c.kind]++
	return true
}

// InjectPacket implements fabric.PacketInjector: it folds every matching
// packet spec into one verdict.
func (inj *Injector) InjectPacket(index uint64, now sim.Time, d *fabric.Delivery) fabric.PacketFault {
	var f fabric.PacketFault
	for _, c := range inj.packet {
		if !c.active(now) {
			continue
		}
		switch {
		case c.kind == KindLinkDown:
			// Outages sever the link in both directions.
			if c.port >= 0 && c.port != int(d.Src) && c.port != int(d.Dst) {
				continue
			}
		case c.port >= 0 && c.port != int(d.Src):
			continue
		}
		if c.hasNth && index != c.nth {
			continue
		}
		if c.hasRange && (index < c.from || index > c.to) {
			continue
		}
		switch c.kind {
		case KindDropNth, KindDropRange, KindDrop, KindLinkDown:
			if inj.fire(c) {
				f.Drop = true
			}
		case KindCorrupt:
			if inj.fire(c) {
				f.Corrupt = true
			}
		case KindDuplicate:
			if inj.fire(c) {
				f.Duplicates++
			}
		case KindDelay:
			if inj.fire(c) {
				f.Delay += c.delay
			}
		case KindJitter:
			if inj.fire(c) {
				f.Delay += sim.Duration(inj.rng.Int63n(int64(c.delay)))
			}
		}
	}
	return f
}

// Stall reports how long the NIC on node should stall at the given site,
// folding every matching stall spec. Zero means no fault.
func (inj *Injector) Stall(site Site, node int, now sim.Time) sim.Duration {
	var total sim.Duration
	for _, c := range inj.stall {
		if !c.active(now) {
			continue
		}
		if c.port >= 0 && c.port != node {
			continue
		}
		switch {
		case site == SiteDoorbell && c.kind == KindDoorbellStall,
			site == SiteDMA && c.kind == KindDMAStall:
			if inj.fire(c) {
				total += c.delay
			}
		}
	}
	return total
}

// HasStalls reports whether any stall spec exists, so NIC hot paths can
// skip the hook entirely for packet-only plans.
func (inj *Injector) HasStalls() bool { return len(inj.stall) > 0 }

// HasElementFaults reports whether the plan declares any switch or
// inter-switch-link outage, so systems only install the routing oracle
// when one exists (an oracle-free fabric routes on the exact
// pre-multipath path).
func (inj *Injector) HasElementFaults() bool { return len(inj.element) > 0 }

// SwitchDown implements fabric.ElementOracle: whether any switch-down
// spec covers switch s at now. Element checks are pure — no RNG draw, no
// counter — so route decisions replay identically across process models
// and repeated runs.
func (inj *Injector) SwitchDown(s int, now sim.Time) bool {
	for _, c := range inj.element {
		if c.kind == KindSwitchDown && c.swid == s && c.active(now) {
			return true
		}
	}
	return false
}

// SwitchLinkDown implements fabric.ElementOracle: whether any
// switch-link-down spec covers the link {a, b} at now, order-insensitive.
func (inj *Injector) SwitchLinkDown(a, b int, now sim.Time) bool {
	if a > b {
		a, b = b, a
	}
	for _, c := range inj.element {
		if c.kind == KindSwitchLinkDown && c.linkA == a && c.linkB == b && c.active(now) {
			return true
		}
	}
	return false
}

// Counts returns how often each fault kind fired, for metrics.
func (inj *Injector) Counts() map[string]uint64 { return inj.counts }
