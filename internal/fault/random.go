package fault

import (
	"fmt"
	"math/rand"
)

// legacyKinds is the kind pool RandomPlan has always drawn from. It is
// pinned (rather than calling Kinds()) so that adding new fault kinds —
// like the topology-aware element outages — never reshuffles the plans
// existing chaos seeds produce.
var legacyKinds = []string{
	KindDropNth, KindDropRange, KindDrop, KindCorrupt, KindDuplicate,
	KindDelay, KindJitter, KindLinkDown, KindDoorbellStall, KindDMAStall,
}

// RandomPlan generates a reproducible random fault plan for chaos
// testing: the same seed always yields the same plan, and the plan's own
// injector seed is derived from it, so a chaos run is fully replayable
// from one integer. Parameters are bounded so a random plan is hostile
// but survivable — probabilistic faults stay below saturation and delays
// stay within a few retransmission timeouts.
func RandomPlan(seed int64) *Plan {
	rng := rand.New(rand.NewSource(seed))
	p := &Plan{Seed: seed}
	n := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		p.Faults = append(p.Faults, randomSpec(rng, legacyKinds, 2, 0))
	}
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("fault: RandomPlan built an invalid plan: %v", err))
	}
	return p
}

// RandomTopoPlan generates a reproducible random fault plan for routed
// topologies: the legacy packet/stall kinds drawn over hosts ports, plus
// the element kinds (switch-down, switch-link-down) targeting the given
// switch count. Outage windows are bounded (a few milliseconds starting
// within the first 20 ms) so soak workloads ride them out through
// retransmission rather than exhausting the RTO ladder.
func RandomTopoPlan(seed int64, hosts, switches int) *Plan {
	if hosts < 1 || switches < 1 {
		panic(fmt.Sprintf("fault: RandomTopoPlan needs hosts and switches >= 1, got %d/%d", hosts, switches))
	}
	rng := rand.New(rand.NewSource(seed))
	p := &Plan{Seed: seed}
	kinds := legacyKinds
	if switches > 1 {
		kinds = append(append([]string{}, legacyKinds...), KindSwitchDown, KindSwitchLinkDown)
	}
	n := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		p.Faults = append(p.Faults, randomSpec(rng, kinds, hosts, switches))
	}
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("fault: RandomTopoPlan built an invalid plan: %v", err))
	}
	return p
}

// randomSpec draws one bounded fault spec. hosts sizes the port
// selector; switches sizes the element selectors (only consulted when an
// element kind is drawn, which requires switches >= 2).
func randomSpec(rng *rand.Rand, kinds []string, hosts, switches int) Spec {
	kind := kinds[rng.Intn(len(kinds))]
	s := Spec{Kind: kind}
	if !elementKinds[kind] && rng.Intn(2) == 0 {
		port := rng.Intn(hosts)
		s.Port = &port
	}
	switch kind {
	case KindDropNth:
		nth := uint64(rng.Intn(400))
		s.Nth = &nth
	case KindDropRange:
		from := uint64(rng.Intn(300))
		to := from + uint64(rng.Intn(20))
		s.From, s.To = &from, &to
	case KindDrop:
		s.Prob = 0.01 + 0.15*rng.Float64()
	case KindCorrupt, KindDuplicate:
		s.Prob = 0.02 + 0.2*rng.Float64()
	case KindDelay, KindJitter:
		s.Prob = 0.05 + 0.25*rng.Float64()
		s.Delay = fmt.Sprintf("%dus", 20+rng.Intn(480))
	case KindLinkDown:
		start := 1 + rng.Intn(20)
		s.Start = fmt.Sprintf("%dms", start)
		s.End = fmt.Sprintf("%dms", start+1+rng.Intn(3))
	case KindSwitchDown:
		sw := rng.Intn(switches)
		s.Switch = &sw
		start := 1 + rng.Intn(20)
		s.Start = fmt.Sprintf("%dms", start)
		s.End = fmt.Sprintf("%dms", start+1+rng.Intn(4))
	case KindSwitchLinkDown:
		a := rng.Intn(switches)
		b := rng.Intn(switches - 1)
		if b >= a {
			b++
		}
		s.Link = []int{a, b}
		start := 1 + rng.Intn(20)
		s.Start = fmt.Sprintf("%dms", start)
		s.End = fmt.Sprintf("%dms", start+1+rng.Intn(4))
	case KindDoorbellStall, KindDMAStall:
		s.Prob = 0.02 + 0.2*rng.Float64()
		s.Delay = fmt.Sprintf("%dus", 5+rng.Intn(195))
	}
	// Cap repeatable faults so a plan cannot starve the run forever.
	if s.Nth == nil && s.From == nil && kind != KindLinkDown && !elementKinds[kind] {
		s.Count = uint64(50 + rng.Intn(450))
	}
	return s
}
