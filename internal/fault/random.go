package fault

import (
	"fmt"
	"math/rand"
)

// RandomPlan generates a reproducible random fault plan for chaos
// testing: the same seed always yields the same plan, and the plan's own
// injector seed is derived from it, so a chaos run is fully replayable
// from one integer. Parameters are bounded so a random plan is hostile
// but survivable — probabilistic faults stay below saturation and delays
// stay within a few retransmission timeouts.
func RandomPlan(seed int64) *Plan {
	rng := rand.New(rand.NewSource(seed))
	kinds := Kinds()
	n := 1 + rng.Intn(4)
	p := &Plan{Seed: seed}
	for i := 0; i < n; i++ {
		kind := kinds[rng.Intn(len(kinds))]
		s := Spec{Kind: kind}
		if rng.Intn(2) == 0 {
			port := rng.Intn(2) // chaos workloads run two-node systems
			s.Port = &port
		}
		switch kind {
		case KindDropNth:
			nth := uint64(rng.Intn(400))
			s.Nth = &nth
		case KindDropRange:
			from := uint64(rng.Intn(300))
			to := from + uint64(rng.Intn(20))
			s.From, s.To = &from, &to
		case KindDrop:
			s.Prob = 0.01 + 0.15*rng.Float64()
		case KindCorrupt, KindDuplicate:
			s.Prob = 0.02 + 0.2*rng.Float64()
		case KindDelay, KindJitter:
			s.Prob = 0.05 + 0.25*rng.Float64()
			s.Delay = fmt.Sprintf("%dus", 20+rng.Intn(480))
		case KindLinkDown:
			start := 1 + rng.Intn(20)
			s.Start = fmt.Sprintf("%dms", start)
			s.End = fmt.Sprintf("%dms", start+1+rng.Intn(3))
		case KindDoorbellStall, KindDMAStall:
			s.Prob = 0.02 + 0.2*rng.Float64()
			s.Delay = fmt.Sprintf("%dus", 5+rng.Intn(195))
		}
		// Cap repeatable faults so a plan cannot starve the run forever.
		if s.Nth == nil && s.From == nil && kind != KindLinkDown {
			s.Count = uint64(50 + rng.Intn(450))
		}
		p.Faults = append(p.Faults, s)
	}
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("fault: RandomPlan built an invalid plan: %v", err))
	}
	return p
}
