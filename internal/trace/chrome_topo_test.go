package trace_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"vibe/internal/core"
	"vibe/internal/trace"
)

// TestChromeExportRoutedTopology runs the XFAILOVER experiment (routed
// fat-tree with outages) at quick scale under a trace recorder and
// validates the Chrome export end to end: the document must carry span,
// link, and switch thread tracks (the switch tracks only exist on routed
// topologies), every named track must carry a thread_sort_index, and every
// process a process_sort_index, so Perfetto renders the pipeline in flow
// order.
func TestChromeExportRoutedTopology(t *testing.T) {
	exp, err := core.ExperimentByID("XFAILOVER")
	if err != nil {
		t.Fatal(err)
	}
	rec := &trace.Recorder{Limit: 1 << 20}
	sc := core.DefaultScenario(true)
	sc.Instr = &core.Instr{Trace: rec, SpanSample: 1}
	if _, err := exp.Run(sc); err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("routed run recorded no trace entries")
	}

	var b bytes.Buffer
	if err := rec.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Pid  int                    `json:"pid"`
			Tid  int                    `json:"tid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}

	type track struct{ pid, tid int }
	named := map[track]string{}    // thread_name metadata
	sorted := map[track]bool{}     // thread_sort_index metadata
	pidSorted := map[int]bool{}    // process_sort_index metadata
	compTracks := map[string]int{} // component prefix -> track count
	for _, e := range doc.TraceEvents {
		if e.Ph != "M" {
			continue
		}
		switch e.Name {
		case "thread_name":
			name, _ := e.Args["name"].(string)
			named[track{e.Pid, e.Tid}] = name
			for _, prefix := range []string{"span", "link", "switch", "nic"} {
				if len(name) > len(prefix) && name[:len(prefix)] == prefix {
					compTracks[prefix]++
				}
			}
		case "thread_sort_index":
			if _, ok := e.Args["sort_index"]; !ok {
				t.Fatalf("thread_sort_index without a sort_index: %+v", e)
			}
			sorted[track{e.Pid, e.Tid}] = true
		case "process_sort_index":
			if _, ok := e.Args["sort_index"]; !ok {
				t.Fatalf("process_sort_index without a sort_index: %+v", e)
			}
			pidSorted[e.Pid] = true
		}
	}

	for _, prefix := range []string{"span", "link", "switch", "nic"} {
		if compTracks[prefix] == 0 {
			t.Errorf("no %s* thread track in the routed-topology export", prefix)
		}
	}
	for tr, name := range named {
		if !sorted[tr] {
			t.Errorf("track %q (pid %d tid %d) missing thread_sort_index", name, tr.pid, tr.tid)
		}
		if !pidSorted[tr.pid] {
			t.Errorf("pid %d missing process_sort_index", tr.pid)
		}
	}

	// Real events must land on the component tracks, not just metadata:
	// at least one switch-forward span ("X") and one link instant ("i").
	byKind := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" && e.Ph != "i" {
			continue
		}
		name := named[track{e.Pid, e.Tid}]
		for _, prefix := range []string{"span", "link", "switch"} {
			if strings.HasPrefix(name, prefix) {
				byKind[prefix+":"+e.Ph]++
			}
		}
	}
	if byKind["switch:X"] == 0 {
		t.Error("no switch forward spans recorded")
	}
	if byKind["link:i"] == 0 {
		t.Error("no link tx/rx instants recorded")
	}
	if byKind["span:X"] == 0 {
		t.Error("no message lifecycle spans recorded")
	}
}
