package trace

import (
	"strconv"
	"testing"

	"vibe/internal/sim"
)

// BenchmarkTraceAtLimit measures the steady-state cost of recording once
// the ring is full. With the old shift-down implementation every call
// copied Limit-1 entries (O(Limit) per event); the ring buffer overwrites
// one slot, so the per-event cost is flat in Limit:
//
//	Limit=1024:  old ~360 ns/op, ring ~9 ns/op
//	Limit=16384: old ~5600 ns/op, ring ~9 ns/op
func BenchmarkTraceAtLimit(b *testing.B) {
	for _, limit := range []int{1024, 16384} {
		b.Run(strconv.Itoa(limit), func(b *testing.B) {
			r := Recorder{Limit: limit}
			for i := 0; i < limit; i++ {
				r.Trace(sim.Time(i), "fill")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Trace(sim.Time(limit+i), "event")
			}
		})
	}
}
