package trace

import (
	"strings"
	"testing"

	"vibe/internal/sim"
)

func TestRecorderBasics(t *testing.T) {
	var r Recorder
	r.Trace(10, "a")
	r.Trace(20, "bb")
	if r.Len() != 2 || r.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d", r.Len(), r.Dropped())
	}
	es := r.Entries()
	if es[0].At != 10 || es[1].What != "bb" {
		t.Fatalf("entries = %v", es)
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("reset failed")
	}
}

func TestRecorderLimit(t *testing.T) {
	r := Recorder{Limit: 2}
	r.Trace(1, "a")
	r.Trace(2, "b")
	r.Trace(3, "c")
	if r.Len() != 2 || r.Dropped() != 1 {
		t.Fatalf("len=%d dropped=%d", r.Len(), r.Dropped())
	}
	if r.Entries()[0].What != "b" || r.Entries()[1].What != "c" {
		t.Fatalf("wrong survivors: %v", r.Entries())
	}
}

func TestRecorderFilterAndDump(t *testing.T) {
	var r Recorder
	r.Trace(1, "send pkt 1")
	r.Trace(2, "recv pkt 1")
	r.Trace(3, "send pkt 2")
	if got := r.Filter("send"); len(got) != 2 {
		t.Fatalf("filter found %d", len(got))
	}
	var b strings.Builder
	r.Dump(&b)
	if strings.Count(b.String(), "\n") != 3 {
		t.Fatalf("dump = %q", b.String())
	}
	r2 := Recorder{Limit: 1}
	r2.Trace(1, "x")
	r2.Trace(2, "y")
	b.Reset()
	r2.Dump(&b)
	if !strings.Contains(b.String(), "dropped") {
		t.Fatal("dump does not report drops")
	}
}

// TestRecorderRingOrder exercises wraparound: after many events through a
// small ring, Entries/Filter/Dump must still present the survivors oldest
// first, with the drop count right.
func TestRecorderRingOrder(t *testing.T) {
	r := Recorder{Limit: 4}
	for i := 1; i <= 10; i++ {
		r.Trace(sim.Time(i), string(rune('a'+i-1)))
	}
	if r.Len() != 4 || r.Dropped() != 6 {
		t.Fatalf("len=%d dropped=%d", r.Len(), r.Dropped())
	}
	es := r.Entries()
	want := []string{"g", "h", "i", "j"}
	for i, w := range want {
		if es[i].What != w || es[i].At != sim.Time(7+i) {
			t.Fatalf("entries = %v, want %v", es, want)
		}
	}
	if got := r.Filter("i"); len(got) != 1 || got[0].At != 9 {
		t.Fatalf("filter = %v", got)
	}
}

func TestRecorderWithEngine(t *testing.T) {
	e := sim.NewEngine(1)
	var r Recorder
	e.SetTracer(&r)
	e.At(5, func() { e.Tracef("tick %d", 1) })
	e.MustRun()
	if r.Len() != 1 || r.Entries()[0].At != 5 || r.Entries()[0].What != "tick 1" {
		t.Fatalf("engine trace = %v", r.Entries())
	}
}
