package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestWriteChromeSchema validates the export against the Chrome
// trace-event format: a top-level traceEvents array whose records carry
// name/ph/ts/pid/tid, instant events scoped to threads, complete events
// with durations, and thread_name plus sort-index metadata for every
// (pid, tid) used.
func TestWriteChromeSchema(t *testing.T) {
	var r Recorder
	t1 := r.ForSystem()
	t2 := r.ForSystem()
	t1.Trace(1500, "nic0: doorbell vi=1")
	t1.Trace(2500, "nic1: rx kind=0")
	t2.Trace(500, "free-form line")

	var b bytes.Buffer
	if err := r.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no traceEvents")
	}

	named := make(map[[2]int]bool)  // (pid, tid) with thread_name metadata
	sorted := make(map[[2]int]bool) // (pid, tid) with thread_sort_index
	procSorted := make(map[int]bool)
	instants := 0
	for _, ev := range doc.TraceEvents {
		for _, k := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[k]; !ok {
				t.Fatalf("event missing %q: %v", k, ev)
			}
		}
		pid, tid := int(ev["pid"].(float64)), int(ev["tid"].(float64))
		switch ph := ev["ph"].(string); ph {
		case "M":
			args := ev["args"].(map[string]interface{})
			switch ev["name"] {
			case "thread_name":
				if args["name"] == "" {
					t.Fatalf("metadata without thread name: %v", ev)
				}
				named[[2]int{pid, tid}] = true
			case "thread_sort_index":
				if _, ok := args["sort_index"].(float64); !ok {
					t.Fatalf("thread_sort_index without numeric sort_index: %v", ev)
				}
				sorted[[2]int{pid, tid}] = true
			case "process_sort_index":
				if _, ok := args["sort_index"].(float64); !ok {
					t.Fatalf("process_sort_index without numeric sort_index: %v", ev)
				}
				procSorted[pid] = true
			default:
				t.Fatalf("unexpected metadata event %v", ev)
			}
		case "i":
			instants++
			if ev["s"] != "t" {
				t.Fatalf("instant event not thread-scoped: %v", ev)
			}
			if !named[[2]int{pid, tid}] {
				t.Fatalf("instant on unnamed thread pid=%d tid=%d", pid, tid)
			}
			if !sorted[[2]int{pid, tid}] || !procSorted[pid] {
				t.Fatalf("instant on unsorted track pid=%d tid=%d", pid, tid)
			}
		default:
			t.Fatalf("unexpected phase %q", ph)
		}
	}
	if instants != 3 {
		t.Fatalf("instants = %d, want 3", instants)
	}
}

// TestWriteChromeTracks checks the component and pid mapping: entries from
// different systems land in different processes, lines with distinct
// "component:" prefixes land on distinct threads, and timestamps convert
// from virtual nanoseconds to microseconds.
func TestWriteChromeTracks(t *testing.T) {
	var r Recorder
	sys := r.ForSystem()
	sys.Trace(3000, "nic0: tx")
	sys.Trace(4000, "nic1: rx")
	r.Trace(1000, "nic0: other system") // pid 0, via the Recorder directly

	var b bytes.Buffer
	if err := r.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var doc chromeFile
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}

	pids := make(map[int]bool)
	tidByName := make(map[string]int)
	for _, ev := range doc.TraceEvents {
		pids[ev.Pid] = true
		if ev.Ph == "M" && ev.Name == "thread_name" && ev.Pid == 1 {
			tidByName[ev.Args["name"].(string)] = ev.Tid
		}
		if ev.Ph == "i" && ev.Name == "tx" && ev.Ts != 3.0 {
			t.Fatalf("ts = %v us, want 3.0", ev.Ts)
		}
	}
	if !pids[0] || !pids[1] {
		t.Fatalf("pids = %v, want both 0 and 1", pids)
	}
	if len(tidByName) != 2 || tidByName["nic0"] == tidByName["nic1"] {
		t.Fatalf("thread mapping = %v, want distinct nic0/nic1", tidByName)
	}
}

// TestWriteChromeSpans checks duration-carrying entries export as "X"
// complete events with start and duration in microseconds.
func TestWriteChromeSpans(t *testing.T) {
	var r Recorder
	tr := r.ForSystem()
	tr.Trace(1000, "nic0: instant")
	r.TraceSpan(2000, 5000, "span0: send 4096B ok")

	var b bytes.Buffer
	if err := r.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var doc chromeFile
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}

	var complete *chromeEvent
	for i, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			complete = &doc.TraceEvents[i]
		}
	}
	if complete == nil {
		t.Fatal("no complete event exported")
	}
	if complete.Name != "send 4096B ok" || complete.Ts != 2.0 || complete.Dur != 5.0 {
		t.Fatalf("complete event = %+v, want name trimmed, ts=2us dur=5us", complete)
	}
}

// TestComponentRank checks pipeline ordering: cpu before via before span
// before nic before link before switch before fabric, instances in
// numeric order, and unknown components after everything.
func TestComponentRank(t *testing.T) {
	order := []string{"cpu0", "cpu1", "via0", "span0", "nic0", "nic1", "nic10", "link3", "switch0", "switch2", "fabric", "sim", "mystery"}
	for i := 1; i < len(order); i++ {
		a, b := componentRank(order[i-1]), componentRank(order[i])
		if a > b {
			t.Errorf("rank(%s)=%d > rank(%s)=%d", order[i-1], a, order[i], b)
		}
	}
	if componentRank("sim") <= componentRank("fabric") {
		t.Error("catch-all sim must sort after the pipeline")
	}
}
