package trace

import (
	"encoding/json"
	"io"
	"strings"
)

// chromeEvent is one record in the Chrome trace-event format, the JSON
// schema chrome://tracing and Perfetto (ui.perfetto.dev) load directly.
type chromeEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`            // microseconds
	Dur  float64                `json:"dur,omitempty"` // microseconds, complete events only
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	S    string                 `json:"s,omitempty"`
	Args map[string]interface{} `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// componentOrder lists component-name prefixes in pipeline order — the
// order a message actually flows through the system — so Perfetto sorts
// the thread tracks top-to-bottom the way the reader thinks about the
// data path, instead of by hash order.
var componentOrder = []string{"cpu", "via", "span", "nic", "link", "switch", "fabric"}

// componentRank maps a component name ("nic0", "fabric", "span1") to a
// sort index: pipeline position first, instance number second. Unknown
// components (and the catch-all "sim") sort after the pipeline.
func componentRank(comp string) int {
	unknown := (len(componentOrder) + 1) * 100
	for i, prefix := range componentOrder {
		if !strings.HasPrefix(comp, prefix) {
			continue
		}
		inst := 0
		for _, c := range comp[len(prefix):] {
			if c < '0' || c > '9' {
				return unknown
			}
			inst = inst*10 + int(c-'0')
		}
		return (i+1)*100 + inst
	}
	return unknown
}

// WriteChrome exports the buffered entries as a Chrome trace-event JSON
// document. Each recorded system (pid) becomes a process track; within a
// process, the "component:" prefix of a trace line (e.g. "nic0: rx ...")
// becomes a named thread track, so the NIC engines of each host line up as
// parallel timelines. Entries without a duration are thread-scoped instant
// events; entries with one (completed message spans) are complete ("X")
// events that render as real bars. process_sort_index/thread_sort_index
// metadata keeps systems in run order and components in pipeline order.
func (r *Recorder) WriteChrome(w io.Writer) error {
	f := chromeFile{TraceEvents: []chromeEvent{}}

	// tids maps (pid, component) to a stable thread id per process.
	type key struct {
		pid  int
		comp string
	}
	tids := make(map[key]int)
	nextTid := make(map[int]int)
	seenPid := make(map[int]bool)

	r.each(func(e Entry) {
		comp, name := splitComponent(e.What)
		if !seenPid[e.Pid] {
			seenPid[e.Pid] = true
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: "process_sort_index",
				Ph:   "M",
				Pid:  e.Pid,
				Args: map[string]interface{}{"sort_index": e.Pid},
			})
		}
		k := key{e.Pid, comp}
		tid, ok := tids[k]
		if !ok {
			nextTid[e.Pid]++
			tid = nextTid[e.Pid]
			tids[k] = tid
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: "thread_name",
				Ph:   "M",
				Pid:  e.Pid,
				Tid:  tid,
				Args: map[string]interface{}{"name": comp},
			}, chromeEvent{
				Name: "thread_sort_index",
				Ph:   "M",
				Pid:  e.Pid,
				Tid:  tid,
				Args: map[string]interface{}{"sort_index": componentRank(comp)},
			})
		}
		if e.Dur > 0 {
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: name,
				Ph:   "X",
				Ts:   float64(e.At) / 1e3, // ns -> us
				Dur:  float64(e.Dur) / 1e3,
				Pid:  e.Pid,
				Tid:  tid,
			})
			return
		}
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: name,
			Ph:   "i",
			Ts:   float64(e.At) / 1e3, // ns -> us
			Pid:  e.Pid,
			Tid:  tid,
			S:    "t",
		})
	})

	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// splitComponent splits "nic0: rx kind=1 ..." into ("nic0", "rx kind=1 ...").
// Lines without a "component:" prefix land on a catch-all "sim" thread.
func splitComponent(what string) (comp, name string) {
	if i := strings.Index(what, ": "); i > 0 && !strings.ContainsAny(what[:i], " \t") {
		return what[:i], what[i+2:]
	}
	return "sim", what
}
