package trace

import (
	"encoding/json"
	"io"
	"strings"
)

// chromeEvent is one record in the Chrome trace-event format, the JSON
// schema chrome://tracing and Perfetto (ui.perfetto.dev) load directly.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChrome exports the buffered entries as a Chrome trace-event JSON
// document. Each recorded system (pid) becomes a process track; within a
// process, the "component:" prefix of a trace line (e.g. "nic0: rx ...")
// becomes a named thread track, so the NIC engines of each host line up as
// parallel timelines. Every entry is a thread-scoped instant event at its
// virtual timestamp.
func (r *Recorder) WriteChrome(w io.Writer) error {
	f := chromeFile{TraceEvents: []chromeEvent{}}

	// tids maps (pid, component) to a stable thread id per process.
	type key struct {
		pid  int
		comp string
	}
	tids := make(map[key]int)
	nextTid := make(map[int]int)

	r.each(func(e Entry) {
		comp, name := splitComponent(e.What)
		k := key{e.Pid, comp}
		tid, ok := tids[k]
		if !ok {
			nextTid[e.Pid]++
			tid = nextTid[e.Pid]
			tids[k] = tid
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: "thread_name",
				Ph:   "M",
				Pid:  e.Pid,
				Tid:  tid,
				Args: map[string]string{"name": comp},
			})
		}
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: name,
			Ph:   "i",
			Ts:   float64(e.At) / 1e3, // ns -> us
			Pid:  e.Pid,
			Tid:  tid,
			S:    "t",
		})
	})

	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// splitComponent splits "nic0: rx kind=1 ..." into ("nic0", "rx kind=1 ...").
// Lines without a "component:" prefix land on a catch-all "sim" thread.
func splitComponent(what string) (comp, name string) {
	if i := strings.Index(what, ": "); i > 0 && !strings.ContainsAny(what[:i], " \t") {
		return what[:i], what[i+2:]
	}
	return "sim", what
}
