// Package trace records simulation events for debugging and inspection.
// It implements sim.Tracer, buffering lines in memory with an optional
// cap, and can replay them to a writer, filter by substring, or export
// them in the Chrome trace-event format (see chrome.go).
package trace

import (
	"fmt"
	"io"
	"strings"
	"sync/atomic"

	"vibe/internal/sim"
)

// Entry is one recorded event. Pid identifies the simulated system it came
// from (0 when the Recorder is used directly as a tracer; per-system
// tracers from ForSystem stamp 1, 2, ...). Dur is zero for instantaneous
// events and positive for completed spans, which start at At and run for
// Dur of virtual time.
type Entry struct {
	At   sim.Time
	Dur  sim.Duration
	What string
	Pid  int
}

// Recorder buffers trace entries. The zero value is unbounded; set Limit
// to cap memory, in which case the buffer is a ring: once full, each new
// entry overwrites the oldest in place. (The previous implementation
// shifted the whole slice down on every append at the limit — an O(Limit)
// copy per event that made capped tracing quadratic; see
// BenchmarkTraceAtLimit.) Limit must not change once entries are buffered.
//
// A Recorder is not safe for concurrent use: it is meant to observe one
// single-threaded simulation (or several run sequentially).
type Recorder struct {
	Limit   int
	buf     []Entry
	head    int // index of the oldest entry once the ring is full
	dropped uint64
	nextPid int32
}

var _ sim.SpanTracer = (*Recorder)(nil)

// Trace implements sim.Tracer, recording with Pid 0.
func (r *Recorder) Trace(at sim.Time, what string) { r.trace(0, 0, at, what) }

// TraceSpan implements sim.SpanTracer, recording a duration-carrying
// entry with Pid 0.
func (r *Recorder) TraceSpan(at sim.Time, dur sim.Duration, what string) {
	r.trace(0, dur, at, what)
}

func (r *Recorder) trace(pid int, dur sim.Duration, at sim.Time, what string) {
	e := Entry{At: at, Dur: dur, What: what, Pid: pid}
	if r.Limit <= 0 || len(r.buf) < r.Limit {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.head] = e
	r.head++
	if r.head == r.Limit {
		r.head = 0
	}
	r.dropped++
}

// ForSystem returns a tracer that records into r with a fresh pid, so
// entries from several sequentially-run simulations can be told apart
// (e.g. in the Chrome export, where each becomes its own process track).
func (r *Recorder) ForSystem() sim.Tracer {
	return &systemTracer{r: r, pid: int(atomic.AddInt32(&r.nextPid, 1))}
}

type systemTracer struct {
	r   *Recorder
	pid int
}

var _ sim.SpanTracer = (*systemTracer)(nil)

func (t *systemTracer) Trace(at sim.Time, what string) { t.r.trace(t.pid, 0, at, what) }

func (t *systemTracer) TraceSpan(at sim.Time, dur sim.Duration, what string) {
	t.r.trace(t.pid, dur, at, what)
}

// Entries returns a copy of the buffered entries, oldest first.
func (r *Recorder) Entries() []Entry {
	out := make([]Entry, 0, len(r.buf))
	out = append(out, r.buf[r.head:]...)
	out = append(out, r.buf[:r.head]...)
	return out
}

// each calls fn for every buffered entry, oldest first, without copying.
func (r *Recorder) each(fn func(Entry)) {
	for _, e := range r.buf[r.head:] {
		fn(e)
	}
	for _, e := range r.buf[:r.head] {
		fn(e)
	}
}

// Dropped reports entries discarded due to the Limit.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// Len reports the number of buffered entries.
func (r *Recorder) Len() int { return len(r.buf) }

// Reset discards all buffered entries.
func (r *Recorder) Reset() {
	r.buf = r.buf[:0]
	r.head = 0
	r.dropped = 0
}

// Filter returns the entries whose text contains substr, oldest first.
func (r *Recorder) Filter(substr string) []Entry {
	var out []Entry
	r.each(func(e Entry) {
		if strings.Contains(e.What, substr) {
			out = append(out, e)
		}
	})
	return out
}

// Dump writes all entries to w, one per line, oldest first.
func (r *Recorder) Dump(w io.Writer) {
	r.each(func(e Entry) {
		fmt.Fprintf(w, "%12v  %s\n", e.At, e.What)
	})
	if r.dropped > 0 {
		fmt.Fprintf(w, "(%d earlier entries dropped)\n", r.dropped)
	}
}
