// Package trace records simulation events for debugging and inspection.
// It implements sim.Tracer, buffering lines in memory with an optional
// cap, and can replay them to a writer or filter by substring.
package trace

import (
	"fmt"
	"io"
	"strings"

	"vibe/internal/sim"
)

// Entry is one recorded event.
type Entry struct {
	At   sim.Time
	What string
}

// Recorder buffers trace entries. The zero value is unbounded; set Limit
// to cap memory (oldest entries are dropped).
type Recorder struct {
	Limit   int
	entries []Entry
	dropped uint64
}

var _ sim.Tracer = (*Recorder)(nil)

// Trace implements sim.Tracer.
func (r *Recorder) Trace(at sim.Time, what string) {
	if r.Limit > 0 && len(r.entries) >= r.Limit {
		copy(r.entries, r.entries[1:])
		r.entries = r.entries[:len(r.entries)-1]
		r.dropped++
	}
	r.entries = append(r.entries, Entry{At: at, What: what})
}

// Entries returns the buffered entries, oldest first.
func (r *Recorder) Entries() []Entry { return r.entries }

// Dropped reports entries discarded due to the Limit.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// Len reports the number of buffered entries.
func (r *Recorder) Len() int { return len(r.entries) }

// Reset discards all buffered entries.
func (r *Recorder) Reset() {
	r.entries = r.entries[:0]
	r.dropped = 0
}

// Filter returns the entries whose text contains substr.
func (r *Recorder) Filter(substr string) []Entry {
	var out []Entry
	for _, e := range r.entries {
		if strings.Contains(e.What, substr) {
			out = append(out, e)
		}
	}
	return out
}

// Dump writes all entries to w, one per line.
func (r *Recorder) Dump(w io.Writer) {
	for _, e := range r.entries {
		fmt.Fprintf(w, "%12v  %s\n", e.At, e.What)
	}
	if r.dropped > 0 {
		fmt.Fprintf(w, "(%d earlier entries dropped)\n", r.dropped)
	}
}
