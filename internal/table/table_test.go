package table

import (
	"strings"
	"testing"
)

func TestTableRenderAlignment(t *testing.T) {
	tb := New("demo", "name", "value")
	tb.AddRow("alpha", 1.0)
	tb.AddRow("b", 123.456)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "demo" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Fatalf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "-----") {
		t.Fatalf("separator = %q", lines[2])
	}
	// Columns aligned: "value" column starts at the same offset everywhere.
	off := strings.Index(lines[1], "value")
	if !strings.HasPrefix(lines[3][off:], "1") {
		t.Fatalf("misaligned row: %q", lines[3])
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		5:       "5",
		123.456: "123.5",
		12.34:   "12.34",
		0.1234:  "0.1234",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestRenderCSV(t *testing.T) {
	tb := New("t", "a", "b")
	tb.AddRow(1, 2.5)
	var b strings.Builder
	tb.RenderCSV(&b)
	want := "a,b\n1,2.50\n"
	if b.String() != want {
		t.Fatalf("csv = %q, want %q", b.String(), want)
	}
}

func TestChartRender(t *testing.T) {
	c := NewChart("curve", "size", "us")
	c.Add("one", []float64{4, 64, 1024, 28672}, []float64{10, 12, 40, 300})
	c.Add("two", []float64{4, 64, 1024, 28672}, []float64{20, 25, 60, 200})
	var b strings.Builder
	c.Render(&b, 40, 8)
	out := b.String()
	if !strings.Contains(out, "curve") || !strings.Contains(out, "o=one") || !strings.Contains(out, "x=two") {
		t.Fatalf("chart missing pieces:\n%s", out)
	}
	if strings.Count(out, "\n") < 9 {
		t.Fatalf("chart too short:\n%s", out)
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "x") {
		t.Fatal("chart has no marks")
	}
}

func TestChartEmptyAndDegenerate(t *testing.T) {
	var b strings.Builder
	NewChart("e", "x", "y").Render(&b, 10, 4) // no series: no output
	if b.Len() != 0 {
		t.Fatalf("empty chart rendered %q", b.String())
	}
	c := NewChart("flat", "x", "y")
	c.Add("s", []float64{5}, []float64{0}) // single point, zero ranges
	c.Render(&b, 10, 4)                    // must not panic or divide by zero
	if b.Len() == 0 {
		t.Fatal("degenerate chart rendered nothing")
	}
}
