// Package table renders benchmark results as aligned text tables, CSV,
// and quick ASCII charts for terminal inspection.
package table

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-oriented text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: integers without decimals, small
// values with enough precision to be meaningful.
func FormatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// RenderCSV writes the table as CSV (no quoting: benchmark cells never
// contain commas).
func (t *Table) RenderCSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Headers, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// Chart draws a crude log-x ASCII chart of one or more named series for
// terminal inspection of curve shapes.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	series []chartSeries
}

type chartSeries struct {
	name string
	xs   []float64
	ys   []float64
}

// NewChart returns an empty chart.
func NewChart(title, xlabel, ylabel string) *Chart {
	return &Chart{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// Add appends a series.
func (c *Chart) Add(name string, xs, ys []float64) {
	c.series = append(c.series, chartSeries{name: name, xs: xs, ys: ys})
}

// Render draws the chart with one mark per series.
func (c *Chart) Render(w io.Writer, width, height int) {
	if len(c.series) == 0 {
		return
	}
	marks := "ox+*#@%&"
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		for i := range s.xs {
			minX, maxX = math.Min(minX, s.xs[i]), math.Max(maxX, s.xs[i])
			minY, maxY = math.Min(minY, s.ys[i]), math.Max(maxY, s.ys[i])
		}
	}
	if minY > 0 {
		minY = 0
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	xpos := func(x float64) int {
		// Log scale when the x range spans more than a decade (message
		// sizes); linear otherwise.
		if minX > 0 && maxX/minX > 10 {
			return int(math.Log(x/minX) / math.Log(maxX/minX) * float64(width-1))
		}
		return int((x - minX) / (maxX - minX) * float64(width-1))
	}
	for si, s := range c.series {
		m := marks[si%len(marks)]
		for i := range s.xs {
			col := xpos(s.xs[i])
			row := height - 1 - int((s.ys[i]-minY)/(maxY-minY)*float64(height-1))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = m
			}
		}
	}
	fmt.Fprintf(w, "%s (y: %s, max %.4g; x: %s, %.4g..%.4g)\n", c.Title, c.YLabel, maxY, c.XLabel, minX, maxX)
	for _, row := range grid {
		fmt.Fprintf(w, "|%s|\n", string(row))
	}
	var legend []string
	for si, s := range c.series {
		legend = append(legend, fmt.Sprintf("%c=%s", marks[si%len(marks)], s.name))
	}
	fmt.Fprintln(w, strings.Join(legend, "  "))
}
