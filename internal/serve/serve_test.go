package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"vibe/internal/results"
)

// startServer boots a server with its dispatcher and tears both down with
// the test.
func startServer(t *testing.T, opt Options) *Server {
	t.Helper()
	s := New(opt)
	go s.Run()
	t.Cleanup(s.Close)
	return s
}

// waitJob polls until the job reaches a terminal state.
func waitJob(t *testing.T, j *Job) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		_, notify, st := j.snapshotEvents(1 << 30)
		if st == StatusDone || st == StatusFailed {
			return st
		}
		select {
		case <-notify:
		case <-time.After(time.Second):
		}
	}
	t.Fatalf("job %s did not finish", j.ID)
	return ""
}

// TestSubmitValidation checks bad submissions fail at submit time.
func TestSubmitValidation(t *testing.T) {
	s := New(Options{})
	if _, err := s.Submit(Submission{Sweeps: []string{"NotAParam=1,2"}}); err == nil {
		t.Error("bad sweep accepted")
	}
	if _, err := s.Submit(Submission{Experiments: []string{"NOPE"}}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, err := s.Submit(Submission{Set: map[string]string{"NotAParam": "1"}}); err == nil {
		t.Error("unknown -set parameter accepted")
	}
}

// TestQueueBound checks a full queue rejects rather than blocks: with no
// dispatcher draining, QueueCap+? submissions fail fast with errQueueFull.
func TestQueueBound(t *testing.T) {
	s := New(Options{QueueCap: 2}) // dispatcher NOT started
	sub := Submission{Quick: true, Experiments: []string{"T1"}}
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(sub2(sub, fmt.Sprintf("q%d", i))); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if _, err := s.Submit(sub2(sub, "overflow")); err != errQueueFull {
		t.Fatalf("overflow submit err = %v, want errQueueFull", err)
	}
	// A rejected submission is not counted and mints no job ID: the
	// submitted counter tracks accepted jobs only and IDs stay dense.
	s.mu.Lock()
	submits, nextID := s.submits, s.nextID
	s.mu.Unlock()
	if submits != 2 || nextID != 2 {
		t.Errorf("after rejection: submits=%d nextID=%d, want 2 and 2", submits, nextID)
	}
}

// TestMetricsScrapeDuringRun hammers the metrics snapshot paths while a
// job executes. Under -race this pins the contract that j.collectors is
// allocated at submit time and never written once the job is published.
func TestMetricsScrapeDuringRun(t *testing.T) {
	s := startServer(t, Options{Workers: 2})
	j, err := s.Submit(Submission{Quick: true, Experiments: []string{"XFAILOVER"}, Label: "scrape-race"})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.simSnapshot()
				s.daemonSnapshot()
			}
		}
	}()
	st := waitJob(t, j)
	close(stop)
	wg.Wait()
	if st != StatusDone {
		t.Fatalf("job status = %s (%s)", st, j.Error)
	}
}

// sub2 clones a submission with a distinct label (distinct cache key).
func sub2(s Submission, label string) Submission {
	s.Label = label
	return s
}

// TestJobLifecycleAndCache runs one small job end to end and then
// resubmits it: the replay must be an immediate cache hit whose result
// artifact is byte-identical, holding no collectors (no metric
// double-counting), while a submission with a different label misses.
func TestJobLifecycleAndCache(t *testing.T) {
	s := startServer(t, Options{Workers: 2})
	sub := Submission{Quick: true, Experiments: []string{"T1"}, Label: "lifecycle"}

	j1, err := s.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, j1); st != StatusDone {
		t.Fatalf("job status = %s (%s)", st, j1.Error)
	}
	res1, ok := j1.artifact("results.json")
	if !ok {
		t.Fatalf("no results.json artifact; have %v", j1.Artifacts)
	}
	if _, ok := j1.artifact("metrics.txt"); !ok {
		t.Error("no metrics.txt artifact")
	}

	// The artifact decodes as a results.Set with the daemon's label and
	// embedded metrics.
	var set results.Set
	if err := json.Unmarshal(res1, &set); err != nil {
		t.Fatalf("results.json: %v", err)
	}
	if set.Label != "lifecycle" || len(set.Experiments) != 1 || set.Experiments[0].ID != "T1" {
		t.Fatalf("set = label %q, %d experiments", set.Label, len(set.Experiments))
	}
	if len(set.Metrics) == 0 {
		t.Error("set has no embedded metrics")
	}

	// Identical resubmission: cache hit, done immediately, same bytes.
	j2, err := s.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	if !j2.Cached {
		t.Fatal("identical resubmission was not served from cache")
	}
	if st := waitJob(t, j2); st != StatusDone {
		t.Fatalf("cached job status = %s", st)
	}
	res2, ok := j2.artifact("results.json")
	if !ok || !bytes.Equal(res1, res2) {
		t.Error("cached artifact bytes differ from the original")
	}
	if j2.collectors != nil {
		t.Error("cached job holds collectors (would double-count /metrics)")
	}

	// A different label is a different design point for artifact bytes.
	j3, err := s.Submit(sub2(sub, "other"))
	if err != nil {
		t.Fatal(err)
	}
	if j3.Cached {
		t.Error("different label hit the cache")
	}
	waitJob(t, j3)
}

// TestHTTPAPI exercises the full HTTP surface against a real listener:
// submit, list, status, SSE replay, artifact download, Prometheus scrape,
// and error paths.
func TestHTTPAPI(t *testing.T) {
	s := startServer(t, Options{Workers: 2})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	// Bad submissions are 400s; bad routes 404.
	resp, err := http.Post(hs.URL+"/api/jobs", "application/json",
		strings.NewReader(`{"experiments": ["NOPE"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad submission -> %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(hs.URL + "/api/jobs/job-99")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job -> %d, want 404", resp.StatusCode)
	}

	// Submit a small quick job. XFAILOVER runs the routed fabric, whose
	// sampled message spans feed the span.* histogram families /metrics
	// must expose.
	resp, err = http.Post(hs.URL+"/api/jobs", "application/json",
		strings.NewReader(`{"quick": true, "experiments": ["XFAILOVER"], "label": "http"}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit -> %d, want 202", resp.StatusCode)
	}
	var job struct {
		ID    string `json:"id"`
		Cells int    `json:"cells"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if job.ID == "" || job.Cells != 1 {
		t.Fatalf("job = %+v", job)
	}

	// SSE: read frames until the done event; history replays from the
	// start, so queued and started must appear even if we subscribe late.
	types := sseTypes(t, hs.URL+"/api/jobs/"+job.ID+"/events")
	for _, want := range []string{"queued", "started", "cell", "done"} {
		if !types[want] {
			t.Errorf("SSE stream missing %q event; got %v", want, types)
		}
	}

	// Status and listing.
	var st struct {
		Status JobStatus `json:"status"`
	}
	getJSON(t, hs.URL+"/api/jobs/"+job.ID, &st)
	if st.Status != StatusDone {
		t.Fatalf("status = %s", st.Status)
	}
	var list struct {
		Jobs []struct{ ID string } `json:"jobs"`
	}
	getJSON(t, hs.URL+"/api/jobs", &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != job.ID {
		t.Fatalf("list = %+v", list)
	}

	// Artifact download.
	resp, err = http.Get(hs.URL + "/api/jobs/" + job.ID + "/artifacts/results.json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("artifact -> %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	var set results.Set
	if err := json.Unmarshal(body, &set); err != nil {
		t.Fatalf("downloaded set: %v", err)
	}

	// Prometheus scrape: daemon gauges and at least one simulation family.
	resp, err = http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE vibed_jobs_submitted counter",
		"# TYPE vibed_jobs_running gauge",
		"# TYPE vibed_queue_capacity gauge",
		"vibed_pool_workers 2",
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// At least one span.* histogram family from the simulation metrics
	// (XFAILOVER's RDMA path feeds span.rdma_write.*).
	if !regexp.MustCompile(`(?m)^# TYPE vibe_span_\w+_ns histogram$`).Match(prom) {
		t.Error("/metrics has no span histogram family")
	}
	if !regexp.MustCompile(`(?m)^vibe_span_\w+_ns_bucket\{le="\+Inf"\} \d+$`).Match(prom) {
		t.Error("/metrics span histogram has no +Inf bucket")
	}

	if resp, err = http.Get(hs.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz -> %d", resp.StatusCode)
	}
}

// sseTypes subscribes to an SSE stream and returns the set of event types
// seen before the stream closes (which it does once the job is terminal).
func sseTypes(t *testing.T, url string) map[string]bool {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	types := map[string]bool{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if ev, ok := strings.CutPrefix(line, "event: "); ok {
			types[ev] = true
		} else if data, ok := strings.CutPrefix(line, "data: "); ok {
			var e Event
			if err := json.Unmarshal([]byte(data), &e); err != nil {
				t.Fatalf("bad SSE data frame %q: %v", data, err)
			}
		}
	}
	return types
}

func getJSON(t *testing.T, url string, v interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s -> %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestTraceAndProfileArtifacts checks the instrumented submission path: a
// job asking for trace and profile produces both artifacts, and the trace
// is a valid Chrome document.
func TestTraceAndProfileArtifacts(t *testing.T) {
	s := startServer(t, Options{Workers: 2})
	j, err := s.Submit(Submission{
		Quick: true, Experiments: []string{"XFAILOVER"},
		Label: "instr", Trace: true, Profile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, j); st != StatusDone {
		t.Fatalf("job failed: %s", j.Error)
	}
	tr, ok := j.artifact("trace.json")
	if !ok {
		t.Fatal("no trace.json artifact")
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(tr, &doc); err != nil || len(doc.TraceEvents) == 0 {
		t.Fatalf("trace.json invalid (%v) or empty", err)
	}
	if p, ok := j.artifact("profile.folded"); !ok || len(p) == 0 {
		t.Fatal("no profile.folded artifact")
	}
}
