// Package serve implements vibed, the long-lived VIBe benchmark service:
// scenario/sweep submissions become jobs on a bounded queue, scheduled
// one at a time onto the shared runner pool, with live per-cell progress
// over SSE, a Prometheus /metrics endpoint, downloadable artifacts, and a
// provenance-keyed cache that replays completed result sets byte for
// byte. The daemon reuses the CLIs' exact pipeline — ExpandSweeps,
// CompileScenarios, RunGrid, results.Encode — so a set downloaded from a
// job is byte-identical to the same scenario run with vibe-report.
package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"vibe/internal/core"
	"vibe/internal/metrics"
	"vibe/internal/prof"
	"vibe/internal/provider"
	"vibe/internal/results"
	"vibe/internal/runner"
	"vibe/internal/trace"
)

// Options configures a Server.
type Options struct {
	// Workers is the runner pool width per job (default: 4).
	Workers int
	// QueueCap bounds the number of queued-but-not-started jobs
	// (default: 16). A full queue rejects submissions with 503.
	QueueCap int
}

// Server owns the job table, the bounded queue, the result cache, and the
// daemon counters. Create with New, serve Handler(), and run the
// dispatcher with Run (usually in a goroutine); Close drains it.
type Server struct {
	workers  int
	queueCap int

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string          // submission order, for listings
	byCache  map[string]string // cache key -> completed job id
	nextID   int
	queued   int
	running  int
	done     int
	failed   int
	cacheHit int
	submits  int

	queue chan *Job
	store *results.Store
	stop  chan struct{}
	// inflight is held by Run for its entire lifetime, so Close can wait
	// for the dispatcher — including any in-flight execute — by acquiring
	// it. If Run was never started the lock is free and Close returns
	// immediately.
	inflight sync.Mutex
}

// New builds a server; Run must be started for jobs to execute.
func New(opt Options) *Server {
	if opt.Workers <= 0 {
		opt.Workers = 4
	}
	if opt.QueueCap <= 0 {
		opt.QueueCap = 16
	}
	return &Server{
		workers:  opt.Workers,
		queueCap: opt.QueueCap,
		jobs:     map[string]*Job{},
		byCache:  map[string]string{},
		queue:    make(chan *Job, opt.QueueCap),
		store:    results.NewStore(),
		stop:     make(chan struct{}),
	}
}

// Run is the dispatcher loop: jobs execute strictly in submission order,
// one at a time — each job already fans its cells across the worker pool,
// and serial execution keeps every job's virtual-time determinism and the
// cache's byte-identity trivially intact.
func (s *Server) Run() {
	s.inflight.Lock()
	defer s.inflight.Unlock()
	for {
		// Check stop with priority: once Close has been called, no further
		// queued jobs may start even if the queue is non-empty (a bare
		// select picks pseudo-randomly among ready channels).
		select {
		case <-s.stop:
			return
		default:
		}
		select {
		case <-s.stop:
			return
		case j := <-s.queue:
			s.execute(j)
		}
	}
}

// Close stops the dispatcher after the in-flight job (if any) finishes.
// Queued jobs are left in state queued.
func (s *Server) Close() {
	close(s.stop)
	s.inflight.Lock() // blocks until Run returns
	s.inflight.Unlock()
}

// Submit validates and enqueues a submission, compiling its scenario grid
// up front so a bad spec fails at submit time with 400 semantics, not
// inside the run. A submission whose cache key matches a completed job
// returns a new job that is already done, sharing the original's
// artifacts and result bytes.
func (s *Server) Submit(req Submission) (*Job, error) {
	spec := req.Scenario
	if len(req.Set) > 0 {
		kv, err := provider.ParseSet(setPairs(req.Set))
		if err != nil {
			return nil, err
		}
		if spec.Set == nil {
			spec.Set = map[string]string{}
		}
		for k, v := range kv {
			spec.Set[k] = v
		}
	}
	specs, err := core.ExpandSweeps(spec, req.Sweeps)
	if err != nil {
		return nil, err
	}
	scs, err := core.CompileScenarios(specs, req.Quick)
	if err != nil {
		return nil, err
	}
	exps := core.Experiments()
	if len(req.Experiments) > 0 {
		exps = exps[:0:0]
		for _, id := range req.Experiments {
			e, err := core.ExperimentByID(strings.ToUpper(id))
			if err != nil {
				return nil, err
			}
			exps = append(exps, e)
		}
	}

	key := cacheKeyFor(req, scs, exps)

	s.mu.Lock()
	defer s.mu.Unlock()

	// Reject a full queue before minting an ID or counting the submission,
	// so vibed_jobs_submitted counts accepted jobs only and job IDs stay
	// dense. Only Submit sends (under s.mu) and the dispatcher only
	// drains, so len < cap here guarantees the send below cannot block.
	srcID, hit := s.byCache[key]
	if !hit && len(s.queue) == cap(s.queue) {
		return nil, errQueueFull
	}

	s.submits++
	s.nextID++
	j := newJob(fmt.Sprintf("job-%d", s.nextID), req)
	j.CacheKey = key
	j.Cells = len(exps) * len(scs)
	j.exps = exps
	j.scs = scs

	if hit {
		src := s.jobs[srcID]
		j.Cached = true
		s.cacheHit++
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		j.append(Event{Type: EventCached})
		j.shareArtifacts(src)
		j.setStatus(StatusDone, "")
		s.done++
		return j, nil
	}

	// Allocate the per-scenario collectors before the job is published:
	// simSnapshot reads j.collectors under s.mu only and execute reads it
	// with no lock, so the field must never mutate once the job is
	// visible. A queued job's empty collectors merge as nothing.
	j.collectors = make([]*metrics.Collector, len(scs))
	for i := range scs {
		j.collectors[i] = metrics.NewCollector()
	}

	s.queue <- j
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.queued++
	j.append(Event{Type: EventQueued})
	return j, nil
}

var errQueueFull = fmt.Errorf("serve: job queue full")

// execute runs one job end to end on the pool.
func (s *Server) execute(j *Job) {
	s.mu.Lock()
	s.queued--
	s.running++
	s.mu.Unlock()
	j.setStatus(StatusRunning, "")
	j.append(Event{Type: EventStart, Total: j.Cells})

	workers := s.workers
	var rec *trace.Recorder
	if j.Req.Trace {
		rec = &trace.Recorder{Limit: 1 << 20}
		workers = 1 // the recorder is single-writer, like -trace-out
	}
	var profile *prof.Profile
	exps := j.exps
	if j.Req.Profile {
		profile = prof.New()
		exps = core.ProfiledExperiments(exps, profile)
	}
	for i, sc := range j.scs {
		sc.Instr = &core.Instr{Metrics: j.collectors[i], Trace: rec, SpanSample: 1}
	}

	grid := runner.RunGrid(exps, j.scs, runner.Options{
		Workers: workers,
		Progress: func(ev runner.ProgressEvent) {
			j.append(progressEvent(ev))
		},
	})

	if err := runner.FirstGridError(grid); err != nil {
		s.finish(j, StatusFailed, err.Error())
		return
	}

	// Assemble per-cell result sets exactly the way vibe-report does, and
	// encode them through results.Encode so the artifact bytes match a CLI
	// -json file for the same scenario.
	sets := make([]*results.Set, len(j.scs))
	for si := range j.scs {
		set := &results.Set{Label: j.Req.Label, Scenario: results.ProvenanceOf(j.scs[si])}
		set.Metrics = j.collectors[si].Snapshot().Map()
		for ei, e := range j.exps {
			set.Experiments = append(set.Experiments, results.FromReport(e.ID, grid[si][ei].Report))
		}
		sets[si] = set
	}
	encs, err := s.store.Put(j.CacheKey, sets...)
	if err != nil {
		s.finish(j, StatusFailed, err.Error())
		return
	}
	for i, enc := range encs {
		j.putArtifact(cellName(i, len(encs)), enc)
	}

	var mtxt bytes.Buffer
	for si, c := range j.collectors {
		fmt.Fprintf(&mtxt, "--- metrics: %s (%d simulated systems) ---\n", j.scs[si].Label(), c.Systems())
		c.Snapshot().Render(&mtxt)
	}
	j.putArtifact("metrics.txt", mtxt.Bytes())

	if rec != nil {
		var b bytes.Buffer
		if err := rec.WriteChrome(&b); err != nil {
			s.finish(j, StatusFailed, err.Error())
			return
		}
		j.putArtifact("trace.json", b.Bytes())
	}
	if profile != nil {
		var b bytes.Buffer
		if err := profile.WriteFolded(&b); err != nil {
			s.finish(j, StatusFailed, err.Error())
			return
		}
		j.putArtifact("profile.folded", b.Bytes())
	}

	s.mu.Lock()
	s.byCache[j.CacheKey] = j.ID
	s.mu.Unlock()
	s.finish(j, StatusDone, "")
}

// finish moves a running job to its terminal state. The terminal event is
// appended BEFORE the status flips: an SSE streamer closes once it has
// replayed all history of a terminal job, so the done/failed frame must
// already be in the history when the status becomes observable.
func (s *Server) finish(j *Job, st JobStatus, errMsg string) {
	s.mu.Lock()
	s.running--
	if st == StatusDone {
		s.done++
	} else {
		s.failed++
	}
	s.mu.Unlock()
	if st == StatusDone {
		j.append(Event{Type: EventDone, Done: j.Cells, Total: j.Cells})
	} else {
		j.append(Event{Type: EventFailed, Error: errMsg})
	}
	j.setStatus(st, errMsg)
}

// job looks up a job by id.
func (s *Server) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// listJobs returns jobs in submission order.
func (s *Server) listJobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// daemonSnapshot builds the daemon-level gauge family served on /metrics:
// job lifecycle counts, queue occupancy and capacity, and the pool width.
// A fresh single-threaded registry per scrape keeps Registry's
// no-locking contract while the daemon counters live under s.mu.
func (s *Server) daemonSnapshot() metrics.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := metrics.New()
	r.Add("jobs.submitted", float64(s.submits))
	r.Add("jobs.cache_hits", float64(s.cacheHit))
	r.Gauge("jobs.queued", float64(s.queued))
	r.Gauge("jobs.running", float64(s.running))
	r.Gauge("jobs.done", float64(s.done))
	r.Gauge("jobs.failed", float64(s.failed))
	r.Gauge("queue.capacity", float64(s.queueCap))
	r.Gauge("pool.workers", float64(s.workers))
	r.Gauge("cache.entries", float64(s.store.Len()))
	return r.Snapshot()
}

// simSnapshot merges every job's collectors — running jobs included: the
// collectors field is immutable once a job is published (set at submit
// time under s.mu) and each Collector is internally mutex-guarded — into
// the simulation-metrics families served on /metrics. Cached jobs hold no
// collectors, so a replay never double-counts its source run.
func (s *Server) simSnapshot() metrics.Snapshot {
	s.mu.Lock()
	var cols []*metrics.Collector
	for _, id := range s.order {
		cols = append(cols, s.jobs[id].collectors...)
	}
	s.mu.Unlock()
	return metrics.MergedSnapshot(cols...)
}

// cacheKeyFor derives the job's cache key: the results-layer provenance
// hash (quick, experiment list, per-cell provenance) extended with the
// submission fields that alter artifact bytes — label and the
// trace/profile switches — so a hit always replays exactly what an
// identical submission would produce.
func cacheKeyFor(req Submission, scs []*core.Scenario, exps []*core.Experiment) string {
	ids := make([]string, len(exps))
	for i, e := range exps {
		ids[i] = e.ID
	}
	provs := make([]*results.Provenance, len(scs))
	for i, sc := range scs {
		provs[i] = results.ProvenanceOf(sc)
	}
	base := results.CacheKey(req.Quick, ids, provs...)
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s|label=%s|trace=%t|profile=%t",
		base, req.Label, req.Trace, req.Profile)))
	return hex.EncodeToString(sum[:])
}

// setPairs renders a -set style map back into k=v pairs for ParseSet, in
// sorted order so validation errors are deterministic.
func setPairs(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	pairs := make([]string, len(keys))
	for i, k := range keys {
		pairs[i] = k + "=" + m[k]
	}
	return pairs
}
