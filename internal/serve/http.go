package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"vibe/internal/metrics"
)

// Handler returns the daemon's HTTP API:
//
//	POST /api/jobs                       submit a Submission, returns the job
//	GET  /api/jobs                       list jobs in submission order
//	GET  /api/jobs/{id}                  one job's status
//	GET  /api/jobs/{id}/events           SSE progress stream (replays history)
//	GET  /api/jobs/{id}/artifacts/{name} download one artifact
//	GET  /metrics                        Prometheus text exposition
//	GET  /healthz                        liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/jobs", s.handleList)
	mux.HandleFunc("GET /api/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /api/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /api/jobs/{id}/artifacts/{name}", s.handleArtifact)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Submission
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("serve: bad submission: %w", err))
		return
	}
	j, err := s.Submit(req)
	switch {
	case errors.Is(err, errQueueFull):
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeJobJSON(w, j)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	type row struct {
		ID     string    `json:"id"`
		Status JobStatus `json:"status"`
		Cached bool      `json:"cached"`
		Cells  int       `json:"cells"`
	}
	var rows []row
	for _, j := range s.listJobs() {
		j.mu.Lock()
		rows = append(rows, row{j.ID, j.Status, j.Cached, j.Cells})
		j.mu.Unlock()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Jobs []row `json:"jobs"`
	}{rows})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("serve: no such job"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJobJSON(w, j)
}

// handleEvents streams the job's progress as Server-Sent Events: the full
// history first (so late subscribers see every cell), then live events
// until the job reaches a terminal state. Each frame is
// "event: <type>\ndata: <json>\n\n"; the stream ends after the done or
// failed frame.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("serve: no such job"))
		return
	}
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	seq := 0
	for {
		evs, notify, status := j.snapshotEvents(seq)
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
			seq = ev.Seq + 1
		}
		if canFlush {
			fl.Flush()
		}
		if status == StatusDone || status == StatusFailed {
			// Terminal state and history fully replayed: the last frame
			// (done/failed/cached) has been written, close the stream.
			if len(evs) == 0 {
				return
			}
			continue // drain any events appended after the status flip
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("serve: no such job"))
		return
	}
	name := r.PathValue("name")
	data, ok := j.artifact(name)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("serve: no artifact %q", name))
		return
	}
	switch {
	case strings.HasSuffix(name, ".json"):
		w.Header().Set("Content-Type", "application/json")
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	w.Write(data)
}

// handleMetrics serves the Prometheus text exposition: daemon job/queue/
// pool gauges under the vibed_ prefix, then every job's merged simulation
// counters and histograms under vibe_. Scraping is safe mid-run — the
// collectors are mutex-guarded and the daemon counters copy under s.mu.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metrics.PromContentType)
	if err := s.daemonSnapshot().WritePrometheus(w, "vibed"); err != nil {
		return
	}
	s.simSnapshot().WritePrometheus(w, "vibe")
}

func writeJobJSON(w http.ResponseWriter, j *Job) {
	data, err := j.statusJSON()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Write(data)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{err.Error()})
	w.Write(append(data, '\n'))
}
