package serve

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"vibe/internal/core"
	"vibe/internal/metrics"
	"vibe/internal/runner"
)

// Submission is the body of POST /api/jobs: the same scenario language the
// CLIs speak — a PR-2 JSON scenario spec plus -set/-sweep semantics — with
// the experiment selection and instrumentation switches that the CLI flags
// carry.
type Submission struct {
	// Scenario is the base design point: {"base":..., "set":{...},
	// "run":{...}, "fault":{...}} — exactly the -scenario file format.
	Scenario core.ScenarioSpec `json:"scenario,omitzero"`

	// Set applies -set style overrides on top of the scenario (repeatable
	// flag semantics: later keys win).
	Set map[string]string `json:"set,omitempty"`

	// Sweeps expands the scenario into a grid, -sweep style:
	// ["TLBCapacity=8,32,128", ...]. Cells form the cross product.
	Sweeps []string `json:"sweeps,omitempty"`

	// Experiments selects registry experiment IDs (default: all).
	Experiments []string `json:"experiments,omitempty"`

	// Quick runs the reduced sweeps the CI smoke passes use.
	Quick bool `json:"quick,omitempty"`

	// Label is recorded in the result sets, like -label.
	Label string `json:"label,omitempty"`

	// Trace records a Chrome trace (forces one worker, like -trace-out).
	Trace bool `json:"trace,omitempty"`

	// Profile records a folded-stack virtual-time profile.
	Profile bool `json:"profile,omitempty"`
}

// EventType labels one entry in a job's progress stream.
type EventType string

const (
	EventQueued EventType = "queued"
	EventStart  EventType = "started"
	EventCell   EventType = "cell"
	EventDone   EventType = "done"
	EventFailed EventType = "failed"
	EventCached EventType = "cached"
)

// Event is one SSE frame in a job's stream. Cell events carry the runner's
// per-cell progress; terminal events carry the job status.
type Event struct {
	Seq        int       `json:"seq"`
	Type       EventType `json:"type"`
	Experiment string    `json:"experiment,omitempty"`
	Scenario   string    `json:"scenario,omitempty"`
	Done       int       `json:"done,omitempty"`
	Total      int       `json:"total,omitempty"`
	Skipped    bool      `json:"skipped,omitempty"`
	Error      string    `json:"error,omitempty"`
}

// JobStatus is a job's lifecycle state.
type JobStatus string

const (
	StatusQueued  JobStatus = "queued"
	StatusRunning JobStatus = "running"
	StatusDone    JobStatus = "done"
	StatusFailed  JobStatus = "failed"
)

// Job is one submitted run on the daemon's queue. All mutable state is
// guarded by mu; the notify channel is closed and replaced on every
// mutation so SSE streamers wake without polling.
type Job struct {
	ID        string     `json:"id"`
	Req       Submission `json:"request"`
	CacheKey  string     `json:"cache_key"`
	Cached    bool       `json:"cached"`
	Created   time.Time  `json:"created"`
	Started   time.Time  `json:"started,omitzero"`
	Finished  time.Time  `json:"finished,omitzero"`
	Status    JobStatus  `json:"status"`
	Error     string     `json:"error,omitempty"`
	Cells     int        `json:"cells"`
	Artifacts []string   `json:"artifacts,omitempty"`

	mu        sync.Mutex
	events    []Event
	notify    chan struct{}
	artifacts map[string][]byte

	// compiled at submission time
	exps       []*core.Experiment
	scs        []*core.Scenario
	collectors []*metrics.Collector
}

func newJob(id string, req Submission) *Job {
	return &Job{
		ID:        id,
		Req:       req,
		Created:   time.Now().UTC(),
		Status:    StatusQueued,
		notify:    make(chan struct{}),
		artifacts: map[string][]byte{},
	}
}

// append records an event and wakes every waiting streamer.
func (j *Job) append(ev Event) {
	j.mu.Lock()
	ev.Seq = len(j.events)
	j.events = append(j.events, ev)
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

// snapshotEvents returns the events from seq onward plus the channel that
// closes on the next append, so a streamer can replay history and then
// block for more.
func (j *Job) snapshotEvents(seq int) ([]Event, chan struct{}, JobStatus) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var evs []Event
	if seq < len(j.events) {
		evs = append(evs, j.events[seq:]...)
	}
	return evs, j.notify, j.Status
}

// setStatus transitions the job, stamping timestamps.
func (j *Job) setStatus(st JobStatus, errMsg string) {
	j.mu.Lock()
	j.Status = st
	j.Error = errMsg
	switch st {
	case StatusRunning:
		j.Started = time.Now().UTC()
	case StatusDone, StatusFailed:
		j.Finished = time.Now().UTC()
	}
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

// putArtifact stores one downloadable blob under name.
func (j *Job) putArtifact(name string, data []byte) {
	j.mu.Lock()
	j.artifacts[name] = data
	j.Artifacts = append(j.Artifacts, name)
	j.mu.Unlock()
}

// artifact fetches one blob.
func (j *Job) artifact(name string) ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	d, ok := j.artifacts[name]
	return d, ok
}

// shareArtifacts copies the completed source job's artifact table and
// event history into j — the cache-hit replay. Blobs are shared (they are
// immutable once a job completes); collectors are NOT shared, so a cached
// job contributes nothing extra to /metrics.
func (j *Job) shareArtifacts(src *Job) {
	src.mu.Lock()
	arts := make(map[string][]byte, len(src.artifacts))
	for k, v := range src.artifacts {
		arts[k] = v
	}
	names := append([]string(nil), src.Artifacts...)
	src.mu.Unlock()

	j.mu.Lock()
	j.artifacts = arts
	j.Artifacts = names
	j.mu.Unlock()
}

// statusJSON renders the job's public state (under the lock, since the
// exported fields mutate over the lifecycle).
func (j *Job) statusJSON() ([]byte, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	data, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// progressEvent converts a runner progress callback into a cell event.
func progressEvent(ev runner.ProgressEvent) Event {
	e := Event{
		Type:       EventCell,
		Experiment: ev.Experiment,
		Scenario:   ev.Scenario,
		Done:       ev.Done,
		Total:      ev.Total,
		Skipped:    ev.Skipped,
	}
	if ev.Err != nil {
		e.Error = ev.Err.Error()
	}
	return e
}

// cellName derives a per-cell artifact name: results.json for a single
// scenario, results.cell<i>.json for sweep grids — mirroring the CLI's
// cellPath convention.
func cellName(i, n int) string {
	if n == 1 {
		return "results.json"
	}
	return fmt.Sprintf("results.cell%d.json", i)
}
