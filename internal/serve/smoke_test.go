package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"vibe/internal/results"
)

// TestVibedSmoke is the end-to-end daemon gate `make vibed-smoke` runs:
// boot the service on a random port, submit the full quick registry over
// HTTP, scrape /metrics mid-run (must already be valid exposition), follow
// the SSE stream to completion, scrape /metrics again (job/queue gauges
// plus span histogram families), download the result set and compare it
// against the committed quick baseline at -tol 0, then resubmit the
// identical job and require a cache hit with byte-identical artifacts.
// The test only runs when VIBED_SMOKE_ARTIFACTS names an output directory
// for the downloaded artifacts (make vibed-smoke sets it); otherwise it
// skips, so the plain test and race targets don't duplicate the dedicated
// smoke job.
func TestVibedSmoke(t *testing.T) {
	artifactDir := os.Getenv("VIBED_SMOKE_ARTIFACTS")
	if artifactDir == "" {
		t.Skip("full-registry daemon smoke; run via make vibed-smoke (or set VIBED_SMOKE_ARTIFACTS)")
	}
	s := startServer(t, Options{Workers: 4})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	submit := func() (id string, cells int, cached bool) {
		resp, err := http.Post(hs.URL+"/api/jobs", "application/json",
			strings.NewReader(`{"quick": true, "label": "vibed-smoke"}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("submit -> %d: %s", resp.StatusCode, body)
		}
		var job struct {
			ID     string `json:"id"`
			Cells  int    `json:"cells"`
			Cached bool   `json:"cached"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		return job.ID, job.Cells, job.Cached
	}

	id, cells, cached := submit()
	if cached {
		t.Fatal("first submission claimed a cache hit")
	}
	if cells < 30 {
		t.Fatalf("full registry should be >=30 cells, got %d", cells)
	}

	// Mid-run scrape: the endpoint must serve valid exposition while the
	// job executes (the daemon gauges at minimum; sim families as cells
	// land).
	validatePrometheus(t, scrape(t, hs.URL+"/metrics"))

	// Follow the SSE stream to completion, counting cell frames.
	resp, err := http.Get(hs.URL + "/api/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	cellFrames, done := 0, false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			t.Fatalf("bad SSE frame %q: %v", data, err)
		}
		switch ev.Type {
		case EventCell:
			cellFrames++
			if ev.Done != cellFrames || ev.Total != cells {
				t.Fatalf("cell frame out of order: done %d/%d, want %d/%d",
					ev.Done, ev.Total, cellFrames, cells)
			}
		case EventDone:
			done = true
		case EventFailed:
			t.Fatalf("job failed: %s", ev.Error)
		}
	}
	resp.Body.Close()
	if !done || cellFrames != cells {
		t.Fatalf("stream ended with done=%v after %d/%d cell frames", done, cellFrames, cells)
	}

	// Post-run scrape: daemon gauges plus at least one span histogram.
	prom := scrape(t, hs.URL+"/metrics")
	validatePrometheus(t, prom)
	for _, want := range []string{
		"vibed_jobs_submitted 1",
		"vibed_jobs_done 1",
		"vibed_jobs_running 0",
		"vibed_jobs_queued 0",
		"# TYPE vibe_span_", // at least one span family present
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("post-run /metrics missing %q", want)
		}
	}
	if !strings.Contains(prom, "histogram") {
		t.Error("post-run /metrics has no histogram family")
	}

	// Download the result set and compare against the committed quick
	// baseline at tolerance zero: the simulation is deterministic, so the
	// daemon must reproduce the baseline's numbers exactly.
	res1 := download(t, hs.URL, id, "results.json")
	var cur results.Set
	if err := json.Unmarshal(res1, &cur); err != nil {
		t.Fatal(err)
	}
	base, err := results.Load(filepath.Join("..", "results", "testdata", "baseline-quick.json"))
	if err != nil {
		t.Fatal(err)
	}
	diffs, err := results.CompareChecked(base, &cur, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) > 0 {
		var b bytes.Buffer
		results.Render(&b, diffs, 0)
		t.Fatalf("daemon result diverges from committed baseline:\n%s", b.String())
	}

	// Identical resubmission: served from cache, byte-identical bytes.
	id2, _, cached2 := submit()
	if !cached2 {
		t.Fatal("identical resubmission was not served from cache")
	}
	res2 := download(t, hs.URL, id2, "results.json")
	if !bytes.Equal(res1, res2) {
		t.Fatal("cached result bytes differ from the original download")
	}

	if err := os.MkdirAll(artifactDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"vibed_results.json": res1,
		"vibed_metrics.txt":  download(t, hs.URL, id, "metrics.txt"),
		"vibed_prom.txt":     []byte(prom),
	} {
		if err := os.WriteFile(filepath.Join(artifactDir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("scrape -> %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func download(t *testing.T, base, id, name string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/api/jobs/" + id + "/artifacts/" + name)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("artifact %s -> %d", name, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// validatePrometheus checks every line of an exposition document: comment
// lines are HELP/TYPE with known types, sample lines are "name[{le=...}]
// value" with a parseable value.
func validatePrometheus(t *testing.T, doc string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimSuffix(doc, "\n"), "\n") {
		switch {
		case line == "":
			t.Fatal("blank line in exposition")
		case strings.HasPrefix(line, "# HELP "):
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			if len(f) != 4 || (f[3] != "counter" && f[3] != "gauge" && f[3] != "histogram") {
				t.Fatalf("bad TYPE line %q", line)
			}
		case strings.HasPrefix(line, "#"):
			t.Fatalf("unknown comment line %q", line)
		default:
			sp := strings.LastIndexByte(line, ' ')
			if sp < 0 {
				t.Fatalf("sample line without value: %q", line)
			}
			if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
				t.Fatalf("unparseable sample value in %q", line)
			}
		}
	}
}
