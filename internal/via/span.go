package via

import (
	"vibe/internal/metrics"
	"vibe/internal/sim"
)

// Message-lifecycle spans decompose each message's end-to-end latency into
// the paper's cost components (Figures 1-7): descriptor post, queue wait,
// doorbell processing, descriptor fetch, fragmentation, address
// translation, DMA, wire time, reassembly, ACK handling, and completion
// write. A span rides on the Descriptor through the send work queue and on
// each wirePacket across the fabric, accumulating virtual-time durations
// at the boundaries the NIC engines already cross — it never sleeps or
// schedules, so enabling spans cannot change simulated time.
//
// Spans close exactly once, at descriptor completion (success, error, or
// flush). Packets can outlive their message — retransmits may still be in
// flight after the original completes, and fault injection duplicates
// packets — so a closed span ignores late contributions instead of
// corrupting the next message's accounting (spans are heap-allocated and
// never pooled for the same reason).

// spanPhase indexes one cost component within a span.
type spanPhase int

const (
	phasePost       spanPhase = iota // host-side descriptor build + doorbell write (Figure 3)
	phaseQueue                       // waiting in the send queue for the NIC engine
	phaseDoorbell                    // NIC doorbell poll/processing (Figure 4)
	phaseFetch                       // descriptor fetch from host memory (Figure 4)
	phaseFrag                        // per-fragment send engine processing
	phaseXlate                       // address translation / TLB walk (Figure 5)
	phaseDMA                         // DMA data movement, both directions (Figure 5)
	phaseWire                        // serialization + propagation + fabric queueing
	phaseReassembly                  // receive-side fragment processing
	phaseAck                         // ACK round-trip tail for reliable sends (Figure 7)
	phaseCompletion                  // completion write + wakeup (Figure 6)

	numPhases
)

var phaseNames = [numPhases]string{
	"post", "queue", "doorbell", "desc_fetch", "frag", "xlate",
	"dma", "wire", "reassembly", "ack", "completion",
}

// spanPath distinguishes the message kinds whose latency distributions the
// tracker keeps separate.
type spanPath int

const (
	pathSend spanPath = iota
	pathRecv
	pathRdmaWrite
	pathRdmaRead

	numPaths
)

var pathNames = [numPaths]string{"send", "recv", "rdma_write", "rdma_read"}

// spanPathFor maps a descriptor op to its span path.
func spanPathFor(op Op) spanPath {
	switch op {
	case OpRdmaWrite:
		return pathRdmaWrite
	case OpRdmaRead:
		return pathRdmaRead
	}
	return pathSend
}

// msgSpan is the per-message accumulation record.
type msgSpan struct {
	path   spanPath
	node   int
	bytes  int
	start  sim.Time
	last   sim.Time // end of the last attributed phase; gaps charge via mark
	phases [numPhases]sim.Duration
	closed bool
}

// add attributes a known duration d ending at now to phase ph.
func (sp *msgSpan) add(ph spanPhase, d sim.Duration, now sim.Time) {
	if sp == nil || sp.closed || d <= 0 {
		if sp != nil && !sp.closed && now > sp.last {
			sp.last = now
		}
		return
	}
	sp.phases[ph] += d
	if now > sp.last {
		sp.last = now
	}
}

// mark attributes everything since the last attribution to phase ph —
// the "gap" form used where the component doesn't know the duration as a
// constant but does know nothing else ran on this message in between
// (e.g. queue wait between doorbell ring and engine pop).
func (sp *msgSpan) mark(ph spanPhase, now sim.Time) {
	if sp == nil || sp.closed {
		return
	}
	if d := now.Sub(sp.last); d > 0 {
		sp.phases[ph] += d
	}
	sp.last = now
}

// spanTracker owns the sampling decision and the per-path histograms.
// Single-threaded, like everything else inside one simulation.
type spanTracker struct {
	sys    *System
	sample uint64 // record every Nth message

	seen    uint64
	opened  uint64
	closedN uint64
	doubles uint64 // double-close attempts — must stay zero

	totals [numPaths]metrics.Hist
	phaseH [numPaths][numPhases]metrics.Hist
}

// open starts a span for the next message if it falls on the sampling
// stride, returning nil (everywhere a valid no-op) otherwise.
func (t *spanTracker) open(path spanPath, node, bytes int, now sim.Time) *msgSpan {
	t.seen++
	if (t.seen-1)%t.sample != 0 {
		return nil
	}
	t.opened++
	return &msgSpan{path: path, node: node, bytes: bytes, start: now, last: now}
}

// close finishes a span: residual time since the last attribution goes to
// residual (ACK tail for reliable sends, completion otherwise), the total
// and each nonzero phase feed the histograms, and — when tracing — the
// span is emitted as a complete event on the owning node's span track.
func (t *spanTracker) close(sp *msgSpan, residual spanPhase, ok bool, now sim.Time) {
	if sp == nil {
		return
	}
	if sp.closed {
		t.doubles++
		return
	}
	sp.closed = true
	t.closedN++
	if d := now.Sub(sp.last); d > 0 {
		sp.phases[residual] += d
	}
	total := now.Sub(sp.start)
	t.totals[sp.path].Observe(float64(total))
	for ph := spanPhase(0); ph < numPhases; ph++ {
		if sp.phases[ph] > 0 {
			t.phaseH[sp.path][ph].Observe(float64(sp.phases[ph]))
		}
	}
	if eng := t.sys.Eng; eng.Tracing() {
		status := "ok"
		if !ok {
			status = "err"
		}
		eng.TraceSpanf(sp.start, total, "span%d: %s %dB %s",
			sp.node, pathNames[sp.path], sp.bytes, status)
	}
}

// EnableSpans turns on message-lifecycle span recording, sampling every
// Nth message per system (1 = every message). Sampling keeps long chaos
// soaks and parallel suite runs allocation-bounded: only sampled messages
// allocate a span record. Call before Run; n <= 0 leaves spans disabled.
func (s *System) EnableSpans(n int) {
	if n <= 0 {
		return
	}
	s.spans = &spanTracker{sys: s, sample: uint64(n)}
}

// SpanStats reports span lifecycle totals: spans opened, spans closed, and
// double-close attempts (always zero unless there is an accounting bug).
func (s *System) SpanStats() (opened, closed, doubleCloses uint64) {
	if s.spans == nil {
		return 0, 0, 0
	}
	return s.spans.opened, s.spans.closedN, s.spans.doubles
}
