package via

import (
	"errors"
	"testing"

	"vibe/internal/provider"
	"vibe/internal/sim"
)

const tmo = 10 * sim.Second

// pair wires up a 2-host system with one connected VI pair and hands both
// endpoints to the test via callbacks running as simulated processes.
// Every helper error is fatal through t.
type pairEnv struct {
	sys *System
	t   *testing.T
}

func newPair(t *testing.T, model *provider.Model, attrs ViAttributes,
	client func(ctx *Ctx, vi *Vi, nic *Nic),
	server func(ctx *Ctx, vi *Vi, nic *Nic)) *pairEnv {

	t.Helper()
	sys := NewSystem(model, 2, 1)
	sys.Go(0, "client", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		vi, err := nic.CreateVi(ctx, attrs, nil, nil)
		if err != nil {
			t.Errorf("client CreateVi: %v", err)
			return
		}
		if err := vi.ConnectRequest(ctx, 1, "svc", tmo); err != nil {
			t.Errorf("ConnectRequest: %v", err)
			return
		}
		client(ctx, vi, nic)
	})
	sys.Go(1, "server", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		vi, err := nic.CreateVi(ctx, attrs, nil, nil)
		if err != nil {
			t.Errorf("server CreateVi: %v", err)
			return
		}
		req, err := nic.ConnectWait(ctx, "svc", tmo)
		if err != nil {
			t.Errorf("ConnectWait: %v", err)
			return
		}
		if err := req.Accept(ctx, vi); err != nil {
			t.Errorf("Accept: %v", err)
			return
		}
		server(ctx, vi, nic)
	})
	return &pairEnv{sys: sys, t: t}
}

func (e *pairEnv) run() {
	e.t.Helper()
	if err := e.sys.Run(); err != nil {
		e.t.Fatal(err)
	}
}

// --- basic transfer ---

func TestSendRecvDataIntegrity(t *testing.T) {
	for _, m := range provider.All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			const n = 10000
			env := newPair(t, m, ViAttributes{},
				func(ctx *Ctx, vi *Vi, nic *Nic) {
					buf := ctx.Malloc(n)
					h, err := nic.RegisterMem(ctx, buf)
					if err != nil {
						t.Error(err)
						return
					}
					buf.FillPattern(7)
					if err := vi.PostSend(ctx, SimpleSend(buf, h, n)); err != nil {
						t.Errorf("PostSend: %v", err)
						return
					}
					d, err := vi.SendWaitPoll(ctx)
					if err != nil || d.Status != StatusSuccess {
						t.Errorf("send completion: %v %v", err, d)
					}
				},
				func(ctx *Ctx, vi *Vi, nic *Nic) {
					buf := ctx.Malloc(n)
					h, err := nic.RegisterMem(ctx, buf)
					if err != nil {
						t.Error(err)
						return
					}
					if err := vi.PostRecv(ctx, SimpleRecv(buf, h, n)); err != nil {
						t.Errorf("PostRecv: %v", err)
						return
					}
					d, err := vi.RecvWaitPoll(ctx)
					if err != nil {
						t.Errorf("RecvWaitPoll: %v", err)
						return
					}
					if d.Status != StatusSuccess || d.Length != n {
						t.Errorf("recv completion: %v len=%d", d.Status, d.Length)
					}
					if err := buf.CheckPattern(7, n); err != nil {
						t.Errorf("data corrupted: %v", err)
					}
				})
			env.run()
		})
	}
}

func TestZeroByteSend(t *testing.T) {
	env := newPair(t, provider.CLAN(), ViAttributes{},
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			buf := ctx.Malloc(16)
			h, _ := nic.RegisterMem(ctx, buf)
			if err := vi.PostSend(ctx, SimpleSend(buf, h, 0)); err != nil {
				t.Errorf("PostSend(0): %v", err)
				return
			}
			if _, err := vi.SendWaitPoll(ctx); err != nil {
				t.Errorf("SendWaitPoll: %v", err)
			}
		},
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			buf := ctx.Malloc(16)
			h, _ := nic.RegisterMem(ctx, buf)
			vi.PostRecv(ctx, SimpleRecv(buf, h, 16))
			d, err := vi.RecvWaitPoll(ctx)
			if err != nil || d.Length != 0 || d.Status != StatusSuccess {
				t.Errorf("zero-byte recv: %v %v", err, d)
			}
		})
	env.run()
}

func TestImmediateData(t *testing.T) {
	env := newPair(t, provider.CLAN(), ViAttributes{},
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			buf := ctx.Malloc(64)
			h, _ := nic.RegisterMem(ctx, buf)
			d := SimpleSend(buf, h, 64)
			d.ImmediateData, d.HasImmediate = 0xDEADBEEF, true
			if err := vi.PostSend(ctx, d); err != nil {
				t.Error(err)
				return
			}
			vi.SendWaitPoll(ctx)
		},
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			buf := ctx.Malloc(64)
			h, _ := nic.RegisterMem(ctx, buf)
			vi.PostRecv(ctx, SimpleRecv(buf, h, 64))
			d, err := vi.RecvWaitPoll(ctx)
			if err != nil {
				t.Error(err)
				return
			}
			if !d.GotImmediate || d.Immediate != 0xDEADBEEF {
				t.Errorf("immediate = %#x got=%v", d.Immediate, d.GotImmediate)
			}
		})
	env.run()
}

func TestMultiSegmentGatherScatter(t *testing.T) {
	// Gather from 3 send segments, scatter into 2 receive segments.
	env := newPair(t, provider.CLAN(), ViAttributes{},
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			var segs []DataSegment
			for i, n := range []int{5000, 3000, 2000} {
				buf := ctx.Malloc(n)
				h, _ := nic.RegisterMem(ctx, buf)
				buf.FillPattern(byte(i))
				segs = append(segs, DataSegment{Addr: buf.Addr(), Handle: h, Length: n})
			}
			if err := vi.PostSend(ctx, &Descriptor{Op: OpSend, Segs: segs}); err != nil {
				t.Errorf("PostSend: %v", err)
				return
			}
			if d, err := vi.SendWaitPoll(ctx); err != nil || d.Status != StatusSuccess {
				t.Errorf("send: %v %v", err, d)
			}
		},
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			a := ctx.Malloc(6000)
			b := ctx.Malloc(6000)
			ha, _ := nic.RegisterMem(ctx, a)
			hb, _ := nic.RegisterMem(ctx, b)
			d := &Descriptor{Segs: []DataSegment{
				{Addr: a.Addr(), Handle: ha, Length: 6000},
				{Addr: b.Addr(), Handle: hb, Length: 6000},
			}}
			vi.PostRecv(ctx, d)
			got, err := vi.RecvWaitPoll(ctx)
			if err != nil || got.Length != 10000 {
				t.Errorf("recv: %v len=%d", err, got.Length)
				return
			}
			// First 5000 bytes: pattern 0; next 3000: pattern 1 (starting
			// in a, spilling into b); last 2000: pattern 2.
			for i := 0; i < 5000; i++ {
				if a.Bytes()[i] != 0+byte(i*31) {
					t.Fatalf("seg0 byte %d wrong", i)
				}
			}
			for i := 0; i < 1000; i++ {
				if a.Bytes()[5000+i] != 1+byte(i*31) {
					t.Fatalf("seg1 byte %d wrong (in a)", i)
				}
			}
			for i := 0; i < 2000; i++ {
				if b.Bytes()[i] != 1+byte((1000+i)*31) {
					t.Fatalf("seg1 byte %d wrong (in b)", i)
				}
			}
			for i := 0; i < 2000; i++ {
				if b.Bytes()[2000+i] != 2+byte(i*31) {
					t.Fatalf("seg2 byte %d wrong", i)
				}
			}
		})
	env.run()
}

// --- validation and protection ---

func TestPostValidation(t *testing.T) {
	m := provider.BVIA() // 4 segment max, no RDMA read
	env := newPair(t, m, ViAttributes{EnableRdmaWrite: true},
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			buf := ctx.Malloc(1000)
			h, _ := nic.RegisterMem(ctx, buf)

			// Unregistered handle.
			bad := SimpleSend(buf, h+99, 100)
			if err := vi.PostSend(ctx, bad); !errors.Is(err, ErrInvalidHandle) {
				t.Errorf("bad handle: %v", err)
			}
			// Segment past the region.
			over := SimpleSend(buf, h, 1001)
			if err := vi.PostSend(ctx, over); !errors.Is(err, ErrProtection) {
				t.Errorf("overrun: %v", err)
			}
			// Too many segments.
			seg := DataSegment{Addr: buf.Addr(), Handle: h, Length: 10}
			many := &Descriptor{Op: OpSend, Segs: []DataSegment{seg, seg, seg, seg, seg}}
			if err := vi.PostSend(ctx, many); !errors.Is(err, ErrTooManySegments) {
				t.Errorf("segments: %v", err)
			}
			// Over max transfer size.
			big := ctx.Malloc(m.MaxTransferSize + 1)
			hb, _ := nic.RegisterMem(ctx, big)
			if err := vi.PostSend(ctx, SimpleSend(big, hb, m.MaxTransferSize+1)); !errors.Is(err, ErrLength) {
				t.Errorf("max transfer: %v", err)
			}
			// RDMA read unsupported by BVIA.
			rd := &Descriptor{Op: OpRdmaRead, Segs: []DataSegment{seg},
				Remote: &AddressSegment{Addr: buf.Addr(), Handle: h}}
			if err := vi.PostSend(ctx, rd); !errors.Is(err, ErrNotSupported) {
				t.Errorf("rdma read: %v", err)
			}
			// RDMA write without address segment.
			wr := &Descriptor{Op: OpRdmaWrite, Segs: []DataSegment{seg}}
			if err := vi.PostSend(ctx, wr); !errors.Is(err, ErrProtection) {
				t.Errorf("rdma write no remote: %v", err)
			}
		},
		func(ctx *Ctx, vi *Vi, nic *Nic) {})
	env.run()
}

func TestPostSendRequiresConnection(t *testing.T) {
	sys := NewSystem(provider.CLAN(), 1, 1)
	sys.Go(0, "p", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		vi, _ := nic.CreateVi(ctx, ViAttributes{}, nil, nil)
		buf := ctx.Malloc(64)
		h, _ := nic.RegisterMem(ctx, buf)
		if err := vi.PostSend(ctx, SimpleSend(buf, h, 64)); !errors.Is(err, ErrNotConnected) {
			t.Errorf("send while idle: %v", err)
		}
		// Receives may be pre-posted while idle.
		if err := vi.PostRecv(ctx, SimpleRecv(buf, h, 64)); err != nil {
			t.Errorf("pre-post recv: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeregisterInvalidatesAndRejects(t *testing.T) {
	sys := NewSystem(provider.BVIA(), 1, 1)
	sys.Go(0, "p", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		buf := ctx.Malloc(8192)
		h, err := nic.RegisterMem(ctx, buf)
		if err != nil {
			t.Fatal(err)
		}
		if !nic.Registered(h) {
			t.Error("not registered")
		}
		if err := nic.DeregisterMem(ctx, h); err != nil {
			t.Errorf("dereg: %v", err)
		}
		if nic.Registered(h) {
			t.Error("still registered")
		}
		if err := nic.DeregisterMem(ctx, h); !errors.Is(err, ErrInvalidHandle) {
			t.Errorf("double dereg: %v", err)
		}
		if err := nic.checkSeg(DataSegment{Addr: buf.Addr(), Handle: h, Length: 10}); err == nil {
			t.Error("segment check passed after dereg")
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

// --- lifecycle ---

func TestConnectionLifecycleAndFlush(t *testing.T) {
	var clientSawFlush, serverDisconnected bool
	env := newPair(t, provider.CLAN(), ViAttributes{},
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			buf := ctx.Malloc(64)
			h, _ := nic.RegisterMem(ctx, buf)
			// Post a receive that will never be matched, then disconnect:
			// it must flush.
			vi.PostRecv(ctx, SimpleRecv(buf, h, 64))
			if err := vi.Disconnect(ctx); err != nil {
				t.Errorf("Disconnect: %v", err)
			}
			d, ok := vi.RecvDone(ctx)
			if !ok || d.Status != StatusFlushed {
				t.Errorf("flushed recv: ok=%v d=%v", ok, d)
			}
			clientSawFlush = true
			if vi.State() != ViDisconnected {
				t.Errorf("state = %v", vi.State())
			}
			if err := vi.Destroy(ctx); err != nil {
				t.Errorf("Destroy: %v", err)
			}
			if nic.OpenVIs() != 0 {
				t.Errorf("OpenVIs = %d", nic.OpenVIs())
			}
		},
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			// Wait for the disconnect to arrive.
			for vi.State() == ViConnected {
				ctx.Sleep(10 * sim.Microsecond)
			}
			if vi.State() != ViDisconnected {
				t.Errorf("server state = %v", vi.State())
			}
			serverDisconnected = true
		})
	env.run()
	if !clientSawFlush || !serverDisconnected {
		t.Error("callbacks incomplete")
	}
}

func TestDestroyConnectedViRejected(t *testing.T) {
	env := newPair(t, provider.CLAN(), ViAttributes{},
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			if err := vi.Destroy(ctx); !errors.Is(err, ErrInvalidState) {
				t.Errorf("destroy connected: %v", err)
			}
			vi.Disconnect(ctx)
		},
		func(ctx *Ctx, vi *Vi, nic *Nic) {})
	env.run()
}

func TestConnectReject(t *testing.T) {
	sys := NewSystem(provider.CLAN(), 2, 1)
	sys.Go(0, "client", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		vi, _ := nic.CreateVi(ctx, ViAttributes{}, nil, nil)
		err := vi.ConnectRequest(ctx, 1, "svc", tmo)
		if !errors.Is(err, ErrRejected) {
			t.Errorf("want rejection, got %v", err)
		}
		if vi.State() != ViIdle {
			t.Errorf("state after reject = %v", vi.State())
		}
	})
	sys.Go(1, "server", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		req, err := nic.ConnectWait(ctx, "svc", tmo)
		if err != nil {
			t.Error(err)
			return
		}
		if err := req.Reject(ctx); err != nil {
			t.Error(err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestConnectTimeoutNoServer(t *testing.T) {
	sys := NewSystem(provider.CLAN(), 2, 1)
	sys.Go(0, "client", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		vi, _ := nic.CreateVi(ctx, ViAttributes{}, nil, nil)
		if err := vi.ConnectRequest(ctx, 1, "nobody", 50*sim.Millisecond); !errors.Is(err, ErrTimeout) {
			t.Errorf("want timeout, got %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestConnectWaitTimeout(t *testing.T) {
	sys := NewSystem(provider.CLAN(), 1, 1)
	sys.Go(0, "server", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		if _, err := nic.ConnectWait(ctx, "svc", sim.Millisecond); !errors.Is(err, ErrTimeout) {
			t.Errorf("want timeout, got %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReliabilityMismatchRejected(t *testing.T) {
	sys := NewSystem(provider.CLAN(), 2, 1)
	sys.Go(0, "client", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		vi, _ := nic.CreateVi(ctx, ViAttributes{Reliability: ReliableDelivery}, nil, nil)
		if err := vi.ConnectRequest(ctx, 1, "svc", tmo); !errors.Is(err, ErrRejected) {
			t.Errorf("mismatch: %v", err)
		}
	})
	sys.Go(1, "server", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		vi, _ := nic.CreateVi(ctx, ViAttributes{Reliability: Unreliable}, nil, nil)
		req, err := nic.ConnectWait(ctx, "svc", tmo)
		if err != nil {
			t.Error(err)
			return
		}
		if err := req.Accept(ctx, vi); !errors.Is(err, ErrNotSupported) {
			t.Errorf("accept mismatched: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnsupportedReliabilityViCreation(t *testing.T) {
	sys := NewSystem(provider.BVIA(), 1, 1) // BVIA: no ReliableReception
	sys.Go(0, "p", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		if _, err := nic.CreateVi(ctx, ViAttributes{Reliability: ReliableReception}, nil, nil); !errors.Is(err, ErrNotSupported) {
			t.Errorf("want unsupported, got %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}
