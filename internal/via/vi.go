package via

import (
	"fmt"

	"vibe/internal/provider"
	"vibe/internal/sim"
	"vibe/internal/vmem"
)

// Vi is a Virtual Interface: one communication endpoint with a send queue
// and a receive queue, mirroring the VipVi handle.
type Vi struct {
	nic   *Nic
	id    int
	attrs ViAttributes
	state ViState

	sendQ *workQueue
	recvQ *workQueue

	conn *connState

	// recvNotify, when set, consumes completed receives asynchronously
	// (see SetRecvNotify).
	recvNotify func(*Ctx, *Descriptor)

	// connReply wakes a client blocked in ConnectRequest.
	connReply    *sim.Signal
	connAccepted bool
	connRejected bool
}

// ID returns the VI's provider-local id.
func (v *Vi) ID() int { return v.id }

// State returns the VI's connection state.
func (v *Vi) State() ViState { return v.state }

// Attributes returns the VI's creation attributes.
func (v *Vi) Attributes() ViAttributes { return v.attrs }

// Nic returns the owning NIC.
func (v *Vi) Nic() *Nic { return v.nic }

// Destroy releases the VI, mirroring VipDestroyVi. A connected VI must be
// disconnected first.
func (v *Vi) Destroy(ctx *Ctx) error {
	if v.state == ViDestroyed {
		return ErrDestroyed
	}
	if v.state == ViConnected {
		return ErrInvalidState
	}
	ctx.use(v.nic.model.ViDestroy)
	v.flushQueues(StatusFlushed)
	v.state = ViDestroyed
	delete(v.nic.vis, v.id)
	v.nic.openVIs--
	return nil
}

// workQueue is a VI send or receive queue: posted descriptors complete in
// FIFO order and are dequeued by the Done/Wait family.
type workQueue struct {
	host   *Host
	vi     *Vi
	isRecv bool
	cq     *CQ

	// pending holds posted descriptors not yet dequeued. consumeIdx is
	// the engine's cursor: the next descriptor to be consumed by an
	// incoming message (receive queues only).
	pending    []*Descriptor
	consumeIdx int

	sig *sim.Signal // broadcast on every completion
}

func newWorkQueue(h *Host, vi *Vi, isRecv bool, cq *CQ) *workQueue {
	return &workQueue{host: h, vi: vi, isRecv: isRecv, cq: cq, sig: sim.NewSignal(h.sys.Eng)}
}

func (wq *workQueue) post(d *Descriptor) {
	d.done = false
	d.Status = StatusPending
	d.Length = 0
	d.GotImmediate = false
	d.vi = wq.vi
	d.span = nil
	wq.pending = append(wq.pending, d)
}

// consume hands the engine the next unconsumed receive descriptor.
func (wq *workQueue) consume() *Descriptor {
	if wq.consumeIdx >= len(wq.pending) {
		return nil
	}
	d := wq.pending[wq.consumeIdx]
	wq.consumeIdx++
	return d
}

// complete marks d done and publishes the completion (signal, CQ entry,
// notify handler).
func (wq *workQueue) complete(d *Descriptor, st Status, length int) {
	d.Status = st
	d.Length = length
	d.done = true
	wq.closeSpan(d, st)
	wq.vi.nic.countStatus(st)
	if wq.isRecv {
		wq.vi.nic.RecvsCompleted++
	}
	if lv := int(wq.vi.attrs.Reliability); lv >= 0 && lv < len(wq.vi.nic.completions) {
		wq.vi.nic.completions[lv]++
	}
	if wq.isRecv && wq.vi.recvNotify != nil {
		wq.dispatchNotify()
		return
	}
	if wq.cq != nil {
		wq.cq.push(Completion{Vi: wq.vi, IsRecv: wq.isRecv})
	}
	wq.sig.Broadcast()
}

// dispatchNotify pops the completed head descriptor and runs the VI's
// receive handler in a fresh process, modeling an asynchronous upcall.
func (wq *workQueue) dispatchNotify() {
	d, ok := wq.takeHead()
	if !ok {
		// FIFO head not complete: the handler will be dispatched when it
		// is (completions are in order for receives, so this is
		// defensive).
		return
	}
	vi := wq.vi
	h := wq.host
	h.sys.Eng.Spawn(procName(h, "notify"), func(p *sim.Proc) {
		ctx := &Ctx{P: p, Host: h}
		ctx.use(vi.nic.model.NotifyDispatch)
		vi.recvNotify(ctx, d)
	})
}

// takeHead dequeues the head descriptor if it has completed.
func (wq *workQueue) takeHead() (*Descriptor, bool) {
	if len(wq.pending) == 0 || !wq.pending[0].done {
		return nil, false
	}
	d := wq.pending[0]
	wq.pending[0] = nil
	wq.pending = wq.pending[1:]
	if wq.consumeIdx > 0 {
		wq.consumeIdx--
	}
	return d, true
}

// Depth reports posted-but-not-dequeued descriptors (for tests).
func (wq *workQueue) depth() int { return len(wq.pending) }

// flush completes every pending descriptor with the given status.
func (wq *workQueue) flush(st Status) {
	for _, d := range wq.pending {
		if !d.done {
			d.Status = st
			d.done = true
			wq.closeSpan(d, st)
			wq.vi.nic.countStatus(st)
		}
	}
	wq.sig.Broadcast()
}

// closeSpan closes the message-lifecycle span riding on d, if any. The
// residual tail since the last attributed phase is the ACK round trip for
// reliable sends (the status write waits on the peer's acknowledgment)
// and the completion write otherwise. Every descriptor completion funnels
// through complete or flush, so spans cannot leak; the span's own closed
// flag makes a second close harmless (and counted).
func (wq *workQueue) closeSpan(d *Descriptor, st Status) {
	sp := d.span
	if sp == nil {
		return
	}
	d.span = nil
	t := wq.host.sys.spans
	if t == nil {
		return
	}
	residual := phaseCompletion
	if !wq.isRecv && wq.vi.attrs.Reliability.Reliable() {
		residual = phaseAck
	}
	t.close(sp, residual, st == StatusSuccess, wq.host.sys.Eng.Now())
}

func (v *Vi) flushQueues(st Status) {
	v.sendQ.flush(st)
	v.recvQ.flush(st)
}

// --- Posting ---

// PostSend posts a send, RDMA-write, or RDMA-read descriptor to the VI's
// send queue, mirroring VipPostSend. The VI must be connected. Validation
// errors are returned immediately (the VIPL protection checks); transport
// errors surface in the descriptor status.
func (v *Vi) PostSend(ctx *Ctx, d *Descriptor) error {
	m := v.nic.model
	switch v.state {
	case ViConnected:
	case ViIdle:
		return ErrNotConnected
	default:
		// Disconnected, Error, Destroyed: the VI has left the connected
		// lifecycle, so posts are invalid-state errors per the VIA spec
		// (an idle VI is merely not connected yet).
		return ErrInvalidState
	}
	if err := v.validate(d); err != nil {
		return err
	}
	switch d.Op {
	case OpRdmaWrite:
		if !v.attrs.EnableRdmaWrite {
			return ErrNotSupported
		}
		if d.Remote == nil {
			return fmt.Errorf("%w: RDMA write without address segment", ErrProtection)
		}
	case OpRdmaRead:
		if !v.attrs.EnableRdmaRead {
			return ErrNotSupported
		}
		if d.Remote == nil {
			return fmt.Errorf("%w: RDMA read without address segment", ErrProtection)
		}
		if !v.attrs.Reliability.Reliable() {
			// The VIA spec only defines RDMA Read on reliable connections.
			return ErrNotSupported
		}
	}

	var sp *msgSpan
	if t := v.nic.host.sys.spans; t != nil {
		sp = t.open(spanPathFor(d.Op), int(v.nic.host.id), d.TotalLength(), ctx.Now())
	}

	cost := m.PostSendCost
	if extra := len(d.Segs) - 1; extra > 0 {
		cost += sim.Duration(extra) * m.PerSegmentCost
	}
	if d.Op != OpRdmaRead {
		if m.HostCopies {
			cost += sim.Duration(d.TotalLength()) * m.CopyPerByte
		}
		if m.TranslationAt == provider.TranslateAtHost {
			cost += sim.Duration(v.segPages(d)) * m.HostXlatePerPage
		}
	}
	cost += m.DoorbellCost
	ctx.use(cost)
	sp.add(phasePost, cost, ctx.Now())

	switch d.Op {
	case OpRdmaWrite:
		v.nic.RdmaWrites++
	case OpRdmaRead:
		v.nic.RdmaReads++
	default:
		v.nic.PostedSends++
	}
	v.sendQ.post(d)
	d.span = sp
	v.nic.ring(v, d)
	return nil
}

// PostRecv posts a receive descriptor, mirroring VipPostRecv. Receives may
// be pre-posted before the VI is connected.
func (v *Vi) PostRecv(ctx *Ctx, d *Descriptor) error {
	m := v.nic.model
	if v.state != ViIdle && v.state != ViConnected {
		return ErrInvalidState
	}
	if d.Op != OpSend {
		return fmt.Errorf("%w: receive descriptors carry no operation", ErrProtection)
	}
	if err := v.validate(d); err != nil {
		return err
	}
	cost := m.PostRecvCost
	if extra := len(d.Segs) - 1; extra > 0 {
		cost += sim.Duration(extra) * m.PerSegmentCost
	}
	ctx.use(cost)
	v.nic.PostedRecvs++
	v.recvQ.post(d)
	return nil
}

func (v *Vi) validate(d *Descriptor) error {
	m := v.nic.model
	if len(d.Segs) > m.MaxSegments {
		return ErrTooManySegments
	}
	if d.TotalLength() > v.attrs.MaxTransferSize {
		return ErrLength
	}
	for _, s := range d.Segs {
		if err := v.nic.checkSeg(s); err != nil {
			return err
		}
	}
	return nil
}

func (v *Vi) segPages(d *Descriptor) int {
	pages := 0
	for _, s := range d.Segs {
		pages += vmem.NumPages(s.Addr, s.Length)
	}
	return pages
}

// --- Completion ---

// SendDone polls the send queue once, mirroring VipSendDone: if the head
// descriptor has completed it is dequeued and returned.
func (v *Vi) SendDone(ctx *Ctx) (*Descriptor, bool) {
	ctx.use(v.nic.model.CheckCost)
	return v.sendQ.takeHead()
}

// RecvDone polls the receive queue once, mirroring VipRecvDone.
func (v *Vi) RecvDone(ctx *Ctx) (*Descriptor, bool) {
	ctx.use(v.nic.model.CheckCost)
	return v.recvQ.takeHead()
}

// SendWaitPoll spins until the head send descriptor completes, burning
// CPU — the simulated equivalent of looping on VipSendDone.
func (v *Vi) SendWaitPoll(ctx *Ctx) (*Descriptor, error) {
	return v.waitPoll(ctx, v.sendQ)
}

// RecvWaitPoll spins until the head receive descriptor completes.
func (v *Vi) RecvWaitPoll(ctx *Ctx) (*Descriptor, error) {
	return v.waitPoll(ctx, v.recvQ)
}

// SendWait blocks (CPU idle) until the head send descriptor completes or
// the timeout elapses, mirroring VipSendWait.
func (v *Vi) SendWait(ctx *Ctx, timeout sim.Duration) (*Descriptor, error) {
	return v.waitBlock(ctx, v.sendQ, timeout)
}

// RecvWait blocks until the head receive descriptor completes, mirroring
// VipRecvWait.
func (v *Vi) RecvWait(ctx *Ctx, timeout sim.Duration) (*Descriptor, error) {
	return v.waitBlock(ctx, v.recvQ, timeout)
}

func (v *Vi) waitPoll(ctx *Ctx, wq *workQueue) (*Descriptor, error) {
	// The check cost is paid at detection (see CQ.WaitPoll): it is the
	// reaction time of the polling loop once the completion lands.
	for {
		if len(wq.pending) > 0 && wq.pending[0].done {
			ctx.use(v.nic.model.CheckCost)
			d, _ := wq.takeHead()
			return d, nil
		}
		if len(wq.pending) == 0 {
			return nil, ErrInvalidState
		}
		ctx.Host.CPU.SpinWait(ctx.P, wq.sig)
	}
}

func (v *Vi) waitBlock(ctx *Ctx, wq *workQueue, timeout sim.Duration) (*Descriptor, error) {
	m := v.nic.model
	deadline := ctx.Now().Add(timeout)
	for {
		if len(wq.pending) > 0 && wq.pending[0].done {
			ctx.use(m.CheckCost)
			d, _ := wq.takeHead()
			return d, nil
		}
		if len(wq.pending) == 0 {
			return nil, ErrInvalidState
		}
		remain := deadline.Sub(ctx.Now())
		if remain <= 0 {
			return nil, ErrTimeout
		}
		if !ctx.Host.CPU.BlockWaitTimeout(ctx.P, wq.sig, remain, m.BlockWakeCost) {
			return nil, ErrTimeout
		}
	}
}

// SetRecvNotify installs handler as an asynchronous receive-completion
// upcall: each completed receive is dequeued and handed to the handler in
// a fresh process, after the provider's dispatch cost. Pass nil to return
// to synchronous completion. This models the interrupt-driven handler
// path the paper's asynchronous-message micro-benchmark exercises.
func (v *Vi) SetRecvNotify(handler func(*Ctx, *Descriptor)) {
	v.recvNotify = handler
}

// SendQueueDepth and RecvQueueDepth report posted-but-not-dequeued
// descriptor counts (for tests).
func (v *Vi) SendQueueDepth() int { return v.sendQ.depth() }
func (v *Vi) RecvQueueDepth() int { return v.recvQ.depth() }

// doorbell is a send-work notification from host to NIC.
type doorbell struct {
	vi   *Vi
	desc *Descriptor
}
