package via

import (
	"fmt"

	"vibe/internal/vmem"
)

// Op selects a descriptor's operation.
type Op int

const (
	// OpSend transfers the gathered data segments to the peer's next
	// posted receive descriptor.
	OpSend Op = iota
	// OpRdmaWrite writes the gathered data segments to the remote address
	// in the descriptor's address segment. It consumes no receive
	// descriptor at the target unless immediate data is attached.
	OpRdmaWrite
	// OpRdmaRead reads from the remote address segment into the local
	// data segments. Requires a reliable connection and provider support.
	OpRdmaRead
)

func (o Op) String() string {
	switch o {
	case OpSend:
		return "send"
	case OpRdmaWrite:
		return "rdma-write"
	case OpRdmaRead:
		return "rdma-read"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// DataSegment is one element of a descriptor's gather/scatter list: a
// virtual address, its covering memory handle, and a length.
type DataSegment struct {
	Addr   vmem.Addr
	Handle MemHandle
	Length int
}

// AddressSegment names the remote target of an RDMA operation.
type AddressSegment struct {
	Addr   vmem.Addr
	Handle MemHandle
}

// Descriptor is a VIA work request: one control segment (Op, immediate
// data, and after completion Status/Length), an optional address segment
// for RDMA, and zero or more data segments. Descriptors are reusable:
// posting resets the completion fields.
type Descriptor struct {
	Op     Op
	Segs   []DataSegment
	Remote *AddressSegment

	// ImmediateData travels in the control segment and is delivered to
	// the consumed receive descriptor when HasImmediate is set.
	ImmediateData uint32
	HasImmediate  bool

	// Completion fields, owned by the provider once posted.
	Status Status
	// Length is the number of bytes transferred (for receives, the size
	// of the incoming message).
	Length int
	// Immediate carries received immediate data on completed receives.
	Immediate    uint32
	GotImmediate bool

	done bool
	vi   *Vi
	span *msgSpan // non-nil while this message's lifecycle is being sampled
}

// TotalLength sums the descriptor's data segment lengths.
func (d *Descriptor) TotalLength() int {
	n := 0
	for _, s := range d.Segs {
		n += s.Length
	}
	return n
}

// Done reports whether the descriptor has completed since it was last
// posted. Prefer the work-queue Done/Wait calls, which also dequeue.
func (d *Descriptor) Done() bool { return d.done }

func (d *Descriptor) String() string {
	return fmt.Sprintf("desc{%v %dB %v}", d.Op, d.TotalLength(), d.Status)
}

// SimpleSend builds a one-segment send descriptor covering buf[0:n].
func SimpleSend(buf *vmem.Buffer, h MemHandle, n int) *Descriptor {
	return &Descriptor{Op: OpSend, Segs: []DataSegment{{Addr: buf.Addr(), Handle: h, Length: n}}}
}

// SimpleRecv builds a one-segment receive descriptor covering buf[0:n].
func SimpleRecv(buf *vmem.Buffer, h MemHandle, n int) *Descriptor {
	return &Descriptor{Segs: []DataSegment{{Addr: buf.Addr(), Handle: h, Length: n}}}
}
