package via

import (
	"fmt"
	"testing"

	"vibe/internal/provider"
	"vibe/internal/sim"
	"vibe/internal/vmem"
)

// --- RDMA ---

func TestRdmaWrite(t *testing.T) {
	for _, m := range []*provider.Model{provider.MVIA(), provider.BVIA(), provider.CLAN()} {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			const n = 12000
			attrs := ViAttributes{EnableRdmaWrite: true}
			// The target must export its buffer's (addr, handle) to the
			// initiator; real applications do this over a send/recv
			// exchange. The test shares it through captured variables,
			// synchronized by virtual time.
			var (
				remoteH   MemHandle
				tgtReady  bool
				targetBuf *bufExport
			)
			env := newPair(t, m, attrs,
				func(ctx *Ctx, vi *Vi, nic *Nic) {
					src := ctx.Malloc(n)
					h, _ := nic.RegisterMem(ctx, src)
					src.FillPattern(5)
					for !tgtReady {
						ctx.Sleep(10 * sim.Microsecond)
					}
					d := &Descriptor{
						Op:     OpRdmaWrite,
						Segs:   []DataSegment{{Addr: src.Addr(), Handle: h, Length: n}},
						Remote: &AddressSegment{Addr: targetBuf.addr, Handle: remoteH},
					}
					if err := vi.PostSend(ctx, d); err != nil {
						t.Errorf("PostSend rdma: %v", err)
						return
					}
					got, err := vi.SendWaitPoll(ctx)
					if err != nil || got.Status != StatusSuccess {
						t.Errorf("rdma completion: %v %v", err, got)
					}
					// Give the write time to land, then tell the target.
					ctx.Sleep(5 * sim.Millisecond)
					targetBuf.done = true
				},
				func(ctx *Ctx, vi *Vi, nic *Nic) {
					dst := ctx.Malloc(n)
					h, _ := nic.RegisterMem(ctx, dst)
					remoteH = h
					targetBuf = &bufExport{addr: dst.Addr()}
					tgtReady = true
					for !targetBuf.done {
						ctx.Sleep(10 * sim.Microsecond)
					}
					if err := dst.CheckPattern(5, n); err != nil {
						t.Errorf("rdma data: %v", err)
					}
				})
			env.run()
		})
	}
}

func TestRdmaWriteWithImmediateConsumesDescriptor(t *testing.T) {
	const n = 3000
	attrs := ViAttributes{EnableRdmaWrite: true}
	var (
		remoteH MemHandle
		tgt     *bufExport
		ready   bool
	)
	env := newPair(t, provider.CLAN(), attrs,
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			src := ctx.Malloc(n)
			h, _ := nic.RegisterMem(ctx, src)
			src.FillPattern(8)
			for !ready {
				ctx.Sleep(10 * sim.Microsecond)
			}
			d := &Descriptor{
				Op:            OpRdmaWrite,
				Segs:          []DataSegment{{Addr: src.Addr(), Handle: h, Length: n}},
				Remote:        &AddressSegment{Addr: tgt.addr, Handle: remoteH},
				ImmediateData: 42,
				HasImmediate:  true,
			}
			if err := vi.PostSend(ctx, d); err != nil {
				t.Error(err)
				return
			}
			vi.SendWaitPoll(ctx)
		},
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			dst := ctx.Malloc(n)
			h, _ := nic.RegisterMem(ctx, dst)
			remoteH = h
			tgt = &bufExport{addr: dst.Addr()}
			// The immediate notification consumes this descriptor.
			note := ctx.Malloc(16)
			hn, _ := nic.RegisterMem(ctx, note)
			vi.PostRecv(ctx, SimpleRecv(note, hn, 16))
			ready = true
			d, err := vi.RecvWaitPoll(ctx)
			if err != nil {
				t.Error(err)
				return
			}
			if !d.GotImmediate || d.Immediate != 42 {
				t.Errorf("immediate: %v %d", d.GotImmediate, d.Immediate)
			}
			if err := dst.CheckPattern(8, n); err != nil {
				t.Errorf("rdma+imm data: %v", err)
			}
		})
	env.run()
}

func TestRdmaRead(t *testing.T) {
	const n = 9000
	attrs := ViAttributes{EnableRdmaRead: true, Reliability: ReliableDelivery}
	var (
		remoteH MemHandle
		tgt     *bufExport
		ready   bool
	)
	env := newPair(t, provider.CLAN(), attrs,
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			dst := ctx.Malloc(n)
			h, _ := nic.RegisterMem(ctx, dst)
			for !ready {
				ctx.Sleep(10 * sim.Microsecond)
			}
			d := &Descriptor{
				Op:     OpRdmaRead,
				Segs:   []DataSegment{{Addr: dst.Addr(), Handle: h, Length: n}},
				Remote: &AddressSegment{Addr: tgt.addr, Handle: remoteH},
			}
			if err := vi.PostSend(ctx, d); err != nil {
				t.Errorf("post read: %v", err)
				return
			}
			got, err := vi.SendWaitPoll(ctx)
			if err != nil || got.Status != StatusSuccess || got.Length != n {
				t.Errorf("read completion: %v %v", err, got)
				return
			}
			if err := dst.CheckPattern(3, n); err != nil {
				t.Errorf("read data: %v", err)
			}
			tgt.done = true
		},
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			src := ctx.Malloc(n)
			h, _ := nic.RegisterMem(ctx, src)
			src.FillPattern(3)
			remoteH = h
			tgt = &bufExport{addr: src.Addr()}
			ready = true
			for !tgt.done {
				ctx.Sleep(10 * sim.Microsecond)
			}
		})
	env.run()
}

func TestRdmaReadRequiresReliable(t *testing.T) {
	attrs := ViAttributes{EnableRdmaRead: true} // unreliable connection
	env := newPair(t, provider.CLAN(), attrs,
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			buf := ctx.Malloc(64)
			h, _ := nic.RegisterMem(ctx, buf)
			d := &Descriptor{
				Op:     OpRdmaRead,
				Segs:   []DataSegment{{Addr: buf.Addr(), Handle: h, Length: 64}},
				Remote: &AddressSegment{Addr: buf.Addr(), Handle: h},
			}
			if err := vi.PostSend(ctx, d); err != ErrNotSupported {
				t.Errorf("read on unreliable: %v", err)
			}
		},
		func(ctx *Ctx, vi *Vi, nic *Nic) {})
	env.run()
}

func TestRdmaProtectionErrorBreaksReliableConnection(t *testing.T) {
	attrs := ViAttributes{EnableRdmaWrite: true, Reliability: ReliableDelivery}
	env := newPair(t, provider.CLAN(), attrs,
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			src := ctx.Malloc(64)
			h, _ := nic.RegisterMem(ctx, src)
			d := &Descriptor{
				Op:     OpRdmaWrite,
				Segs:   []DataSegment{{Addr: src.Addr(), Handle: h, Length: 64}},
				Remote: &AddressSegment{Addr: 0xF0000000, Handle: 999}, // bogus
			}
			if err := vi.PostSend(ctx, d); err != nil {
				t.Error(err)
				return
			}
			got, err := vi.SendWaitPoll(ctx)
			if err != nil {
				t.Error(err)
				return
			}
			if got.Status != StatusRdmaProtError {
				t.Errorf("status = %v, want RDMA_PROTECTION_ERROR", got.Status)
			}
			if vi.State() != ViError {
				t.Errorf("state = %v, want error", vi.State())
			}
		},
		func(ctx *Ctx, vi *Vi, nic *Nic) {})
	env.run()
}

// bufExport shares a buffer address between simulated processes in tests.
type bufExport struct {
	addr vmem.Addr
	done bool
}

// --- notify (asynchronous handler) ---

func TestRecvNotifyHandler(t *testing.T) {
	const msgs = 3
	handled := 0
	env := newPair(t, provider.CLAN(), ViAttributes{},
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			buf := ctx.Malloc(128)
			h, _ := nic.RegisterMem(ctx, buf)
			for i := 0; i < msgs; i++ {
				vi.PostSend(ctx, SimpleSend(buf, h, 128))
				if _, err := vi.SendWaitPoll(ctx); err != nil {
					t.Error(err)
					return
				}
			}
		},
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			buf := ctx.Malloc(128)
			h, _ := nic.RegisterMem(ctx, buf)
			vi.SetRecvNotify(func(hctx *Ctx, d *Descriptor) {
				if d.Status != StatusSuccess || d.Length != 128 {
					t.Errorf("notify desc: %v", d)
				}
				handled++
			})
			for i := 0; i < msgs; i++ {
				vi.PostRecv(ctx, SimpleRecv(buf, h, 128))
			}
			// Wait for all handlers to run.
			for handled < msgs {
				ctx.Sleep(100 * sim.Microsecond)
			}
		})
	env.run()
	if handled != msgs {
		t.Fatalf("handled = %d", handled)
	}
}

// --- determinism across the full stack ---

func TestSystemDeterminism(t *testing.T) {
	run := func() string {
		var log string
		env := newPairForDeterminism(t, &log)
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic:\n%s\nvs\n%s", a, b)
	}
	if a == "" {
		t.Fatal("empty log")
	}
}

func newPairForDeterminism(t *testing.T, log *string) *System {
	sys := NewSystem(provider.BVIA(), 2, 42)
	sys.Go(0, "client", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		vi, _ := nic.CreateVi(ctx, ViAttributes{}, nil, nil)
		if err := vi.ConnectRequest(ctx, 1, "svc", tmo); err != nil {
			t.Error(err)
			return
		}
		buf := ctx.Malloc(8192)
		h, _ := nic.RegisterMem(ctx, buf)
		for i := 0; i < 5; i++ {
			vi.PostSend(ctx, SimpleSend(buf, h, 1000*(i+1)))
			d, err := vi.SendWaitPoll(ctx)
			if err != nil {
				t.Error(err)
				return
			}
			*log += fmt.Sprintf("send%d@%v;", i, ctx.Now())
			_ = d
		}
	})
	sys.Go(1, "server", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		vi, _ := nic.CreateVi(ctx, ViAttributes{}, nil, nil)
		buf := ctx.Malloc(8192)
		h, _ := nic.RegisterMem(ctx, buf)
		for i := 0; i < 5; i++ {
			vi.PostRecv(ctx, SimpleRecv(buf, h, 8192))
		}
		req, err := nic.ConnectWait(ctx, "svc", tmo)
		if err != nil {
			t.Error(err)
			return
		}
		req.Accept(ctx, vi)
		for i := 0; i < 5; i++ {
			d, err := vi.RecvWaitPoll(ctx)
			if err != nil {
				t.Error(err)
				return
			}
			*log += fmt.Sprintf("recv%d=%d@%v;", i, d.Length, ctx.Now())
		}
	})
	return sys
}

// --- NIC attributes ---

func TestNicAttributes(t *testing.T) {
	sys := NewSystem(provider.BVIA(), 1, 1)
	sys.Go(0, "p", func(ctx *Ctx) {
		a := ctx.OpenNic().Attributes()
		if a.Name != "bvia" || a.MaxSegments != 4 || a.RdmaReadSupported {
			t.Errorf("attrs = %+v", a)
		}
		if len(a.ReliabilitySupported) != 2 {
			t.Errorf("reliability levels = %v", a.ReliabilitySupported)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}
