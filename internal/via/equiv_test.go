package via

import (
	"math"
	"strconv"
	"testing"

	"vibe/internal/fabric"
	"vibe/internal/fault"
	"vibe/internal/provider"
	"vibe/internal/sim"
)

// fingerprint captures everything observable about one finished
// simulation: the virtual instant it ended at, the engine's dispatched
// event count, the full metrics snapshot, and the span accounting. Two
// runs with equal fingerprints are indistinguishable to every consumer
// of the simulation.
type fingerprint struct {
	end     sim.Time
	events  uint64
	metrics map[string]float64

	opened, closed, doubles uint64
}

// runFingerprint drives the span workload under the given process model
// and returns the run's fingerprint. It also closes the system, so every
// equivalence run doubles as a goroutine-leak check for its model.
func runFingerprint(t *testing.T, pm ProcModel, m *provider.Model, seed int64, plan *fault.Plan, msgs, size int) fingerprint {
	t.Helper()
	sys := NewSystemProc(m, 2, seed, pm)
	if plan != nil {
		sys.InstallFaults(plan)
	}
	sys.EnableSpans(1)
	runSpanWorkload(t, sys, msgs, size)
	fp := fingerprint{
		end:     sys.Eng.Now(),
		events:  sys.Eng.EventsDispatched(),
		metrics: sys.CollectMetrics().Map(),
	}
	fp.opened, fp.closed, fp.doubles = sys.SpanStats()
	if err := sys.Close(); err != nil {
		t.Errorf("%v model leaked: %v", pm, err)
	}
	return fp
}

// sameBits reports bit-exact float equality (NaN equals NaN), the
// comparison byte-identical JSON output reduces to.
func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func diffFingerprints(t *testing.T, label string, g, a fingerprint) {
	t.Helper()
	if g.end != a.end {
		t.Errorf("%s: end time goroutine=%v actor=%v", label, g.end, a.end)
	}
	if g.events != a.events {
		t.Errorf("%s: events dispatched goroutine=%d actor=%d", label, g.events, a.events)
	}
	if g.opened != a.opened || g.closed != a.closed || g.doubles != a.doubles {
		t.Errorf("%s: spans goroutine=(%d,%d,%d) actor=(%d,%d,%d)",
			label, g.opened, g.closed, g.doubles, a.opened, a.closed, a.doubles)
	}
	for k, gv := range g.metrics {
		av, ok := a.metrics[k]
		if !ok {
			t.Errorf("%s: metric %s only in goroutine model", label, k)
			continue
		}
		if !sameBits(gv, av) {
			t.Errorf("%s: metric %s goroutine=%v actor=%v", label, k, gv, av)
		}
	}
	for k := range a.metrics {
		if _, ok := g.metrics[k]; !ok {
			t.Errorf("%s: metric %s only in actor model", label, k)
		}
	}
}

// TestProcModelEquivalenceClean checks the tentpole contract on the
// fault-free path for every provider model: the zero-handoff actor core
// and the goroutine reference produce byte-identical simulations — same
// final virtual time, same dispatched-event count, same metrics, same
// span accounting — and neither leaks processes at teardown.
func TestProcModelEquivalenceClean(t *testing.T) {
	for _, m := range provider.All() {
		t.Run(m.Name, func(t *testing.T) {
			g := runFingerprint(t, ModelGoroutine, m, 1, nil, 12, 4096)
			a := runFingerprint(t, ModelActor, m, 1, nil, 12, 4096)
			diffFingerprints(t, m.Name, g, a)
		})
	}
}

// TestProcModelEquivalenceTopologies re-checks the byte-identity contract
// with the fabric routed over every multi-switch topology, with finite
// switch buffers so the credit-backpressure path is exercised, both clean
// and under seeded random fault plans. Routing and credit accounting are
// synchronous pure functions inside Send, so they must not perturb
// equivalence — this pins that.
func TestProcModelEquivalenceTopologies(t *testing.T) {
	for _, topo := range []string{"fattree", "dragonfly", "torus3d"} {
		model := func() *provider.Model {
			m := provider.CLAN()
			m.Network.Topology = topo
			m.Network.TopologyDegree = 1 // one host per switch: every packet multi-hops
			m.Network.SwitchBufPkts = 2
			return m
		}
		t.Run(topo+"/clean", func(t *testing.T) {
			g := runFingerprint(t, ModelGoroutine, model(), 1, nil, 12, 4096)
			a := runFingerprint(t, ModelActor, model(), 1, nil, 12, 4096)
			diffFingerprints(t, topo, g, a)
		})
		for seed := int64(0); seed < 4; seed++ {
			seed := seed
			t.Run(topo+"/faults-"+strconv.FormatInt(seed, 10), func(t *testing.T) {
				g := runFingerprint(t, ModelGoroutine, model(), seed+1, fault.RandomPlan(seed), 12, 1200)
				a := runFingerprint(t, ModelActor, model(), seed+1, fault.RandomPlan(seed), 12, 1200)
				diffFingerprints(t, topo, g, a)
			})
		}
		// A deterministic switch outage followed by an inter-switch link
		// outage, both shorter than the RTO ladder: with one host per
		// switch every 0<->1 route dies during the windows, so the
		// unroutable-drop and retransmission-recovery paths must stay
		// byte-identical across process models too.
		t.Run(topo+"/element-outage", func(t *testing.T) {
			plan := elementOutagePlan(topo)
			g := runFingerprint(t, ModelGoroutine, model(), 1, plan, 12, 1200)
			a := runFingerprint(t, ModelActor, model(), 1, plan, 12, 1200)
			diffFingerprints(t, topo, g, a)
		})
		// Seeded topology-aware random plans mix element outages with the
		// legacy packet/stall kinds.
		for seed := int64(0); seed < 3; seed++ {
			seed := seed
			t.Run(topo+"/topo-faults-"+strconv.FormatInt(seed, 10), func(t *testing.T) {
				switches := fabric.BuildTopology(model().Network, 2).Switches()
				g := runFingerprint(t, ModelGoroutine, model(), seed+1, fault.RandomTopoPlan(seed, 2, switches), 12, 1200)
				a := runFingerprint(t, ModelActor, model(), seed+1, fault.RandomTopoPlan(seed, 2, switches), 12, 1200)
				diffFingerprints(t, topo, g, a)
			})
		}
	}
}

// elementOutagePlan builds the deterministic switch-down +
// switch-link-down plan for one of the degree-1 two-host equivalence
// topologies, targeting elements every 0<->1 route crosses (the fat-tree
// spine is switch 2; the other graphs attach host 1 at switch 1).
func elementOutagePlan(topo string) *fault.Plan {
	sw := 1
	link := []int{0, 1}
	if topo == "fattree" {
		sw = 2
		link = []int{0, 2}
	}
	return &fault.Plan{Faults: []fault.Spec{
		{Kind: fault.KindSwitchDown, Switch: &sw, Start: "2ms", End: "3ms"},
		{Kind: fault.KindSwitchLinkDown, Link: link, Start: "3500us", End: "4500us"},
	}}
}

// TestProcModelEquivalenceFaults is the adversarial version: 24 seeded
// random fault plans — drops, duplicates, corruption, delays, doorbell
// and DMA stalls, broken connections, retransmission storms — each run
// under both process models. Faults exercise every conditional branch of
// the engine state machines (the stall fall-throughs, the duplicate and
// gap paths, the error-ack chain), so surviving this sweep pins the
// decomposition, not just the happy path.
func TestProcModelEquivalenceFaults(t *testing.T) {
	const plans = 24
	for seed := 0; seed < plans; seed++ {
		t.Run(strconv.Itoa(seed), func(t *testing.T) {
			plan := fault.RandomPlan(int64(seed))
			g := runFingerprint(t, ModelGoroutine, provider.CLAN(), int64(seed)+1, plan, 12, 1200)
			plan = fault.RandomPlan(int64(seed)) // fresh plan state for the second run
			a := runFingerprint(t, ModelActor, provider.CLAN(), int64(seed)+1, plan, 12, 1200)
			diffFingerprints(t, "plan "+strconv.Itoa(seed), g, a)
		})
	}
}
