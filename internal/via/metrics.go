package via

import (
	"strconv"

	"vibe/internal/fabric"
	"vibe/internal/metrics"
	"vibe/internal/prof"
)

// SetCollector arranges for the system's metrics snapshot to be merged into
// c when Run finishes. Counters always accumulate (they are cheap integer
// increments that never touch virtual time); the collector only controls
// whether anyone reads them, so simulations without one behave — and time —
// identically.
func (s *System) SetCollector(c *metrics.Collector) { s.collector = c }

// CollectMetrics snapshots every component counter of the system under
// hierarchical keys: sim.* (engine), cpu{i}.* (host processors), nic{i}.*
// (NIC engines, TLB, reliability window), via{i}.* (VIPL-level operations),
// link{i}.* (per-host fabric links), fabric.* (whole interconnect).
func (s *System) CollectMetrics() metrics.Snapshot {
	r := metrics.New()

	r.AddUint("sim.events_dispatched", s.Eng.EventsDispatched())
	r.Gauge("sim.heap_high_water", float64(s.Eng.HeapHighWater()))

	elapsed := s.Eng.Now().Sub(0)
	for i, h := range s.hosts {
		cpuK := "cpu" + strconv.Itoa(i)
		busy := h.CPU.Busy()
		r.Add(metrics.Join(cpuK, "busy_ns"), float64(busy))
		if idle := elapsed - busy; idle > 0 {
			r.Add(metrics.Join(cpuK, "idle_ns"), float64(idle))
		} else {
			r.Add(metrics.Join(cpuK, "idle_ns"), 0)
		}
		r.Add(metrics.Join(cpuK, "spin_ns"), float64(h.CPU.SpinBusy()))
		r.Add(metrics.Join(cpuK, "wake_ns"), float64(h.CPU.WakeBusy()))
		r.AddUint(metrics.Join(cpuK, "spin_waits"), h.CPU.SpinWaits())
		r.AddUint(metrics.Join(cpuK, "block_waits"), h.CPU.BlockWaits())

		n := h.nic
		nicK := "nic" + strconv.Itoa(i)
		// One doorbell consumed is exactly one descriptor fetch in this
		// NIC model, but the two keys map to distinct paper cost terms.
		r.AddUint(metrics.Join(nicK, "doorbells"), n.SendsProcessed)
		r.AddUint(metrics.Join(nicK, "desc_fetches"), n.SendsProcessed)
		if n.tlb != nil {
			r.AddUint(metrics.Join(nicK, "tlb", "hits"), n.tlb.Hits)
			r.AddUint(metrics.Join(nicK, "tlb", "misses"), n.tlb.Misses)
		}
		r.AddUint(metrics.Join(nicK, "dma", "bytes_out"), n.DMABytesOut)
		r.AddUint(metrics.Join(nicK, "dma", "bytes_in"), n.DMABytesIn)
		r.AddUint(metrics.Join(nicK, "frags", "sent"), n.FragsSent)
		r.AddUint(metrics.Join(nicK, "frags", "recv"), n.FragsRecv)
		r.AddUint(metrics.Join(nicK, "acks", "sent"), n.AcksSent)
		r.AddUint(metrics.Join(nicK, "acks", "recv"), n.AcksRecv)
		r.AddUint(metrics.Join(nicK, "drops", "no_desc"), n.DroppedNoDesc)

		// Window/sequence counters: what live connections hold now, plus
		// what teardown absorbed into the NIC (teardown zeroes the
		// connection's counters, so the sum never double counts).
		acked, retx := n.winAcked, n.winRetransmits
		dups, gaps := n.recvDups, n.recvGaps
		backoffs := n.rtoBackoffs
		for _, vi := range n.vis {
			if vi.conn != nil {
				acked += vi.conn.window.Acked
				retx += vi.conn.window.Retransmits
				dups += vi.conn.recvSeq.Duplicates
				gaps += vi.conn.recvSeq.Gaps
				backoffs += vi.conn.rto.Backoffs
			}
		}
		r.AddUint(metrics.Join(nicK, "window", "acked"), acked)
		r.AddUint(metrics.Join(nicK, "window", "retransmits"), retx)
		r.AddUint(metrics.Join(nicK, "window", "recv_duplicates"), dups)
		r.AddUint(metrics.Join(nicK, "window", "recv_gaps"), gaps)
		r.AddUint(metrics.Join(nicK, "window", "backoffs"), backoffs)

		// Error-semantics counters.
		r.AddUint(metrics.Join(nicK, "drops", "corrupt"), n.CorruptDrops)
		r.AddUint(metrics.Join(nicK, "flushed"), n.FlushedDescs)
		r.AddUint(metrics.Join(nicK, "transport_errors"), n.TransportErrs)
		r.AddUint(metrics.Join(nicK, "conn_errors"), n.ConnErrors)
		r.Add(metrics.Join(nicK, "fault_stall_ns"), float64(n.FaultStallTime))

		// Busy-time attribution: virtual time the NIC engines spent per
		// cost-component phase (the profiler's source, exported here too so
		// metrics tables show the same decomposition).
		r.Add(metrics.Join(nicK, "busy", "doorbell_ns"), float64(n.BusyDoorbell))
		r.Add(metrics.Join(nicK, "busy", "desc_fetch_ns"), float64(n.BusyFetch))
		r.Add(metrics.Join(nicK, "busy", "frag_ns"), float64(n.BusyFrag))
		r.Add(metrics.Join(nicK, "busy", "xlate_ns"), float64(n.BusyXlate))
		r.Add(metrics.Join(nicK, "busy", "dma_ns"), float64(n.BusyDMA))
		r.Add(metrics.Join(nicK, "busy", "ack_ns"), float64(n.BusyAck))

		viaK := "via" + strconv.Itoa(i)
		r.AddUint(metrics.Join(viaK, "sends_posted"), n.PostedSends)
		r.AddUint(metrics.Join(viaK, "recvs_posted"), n.PostedRecvs)
		r.AddUint(metrics.Join(viaK, "recvs_completed"), n.RecvsCompleted)
		r.AddUint(metrics.Join(viaK, "rdma", "writes"), n.RdmaWrites)
		r.AddUint(metrics.Join(viaK, "rdma", "reads"), n.RdmaReads)
		r.AddUint(metrics.Join(viaK, "completions", "unreliable"), n.completions[Unreliable])
		r.AddUint(metrics.Join(viaK, "completions", "delivery"), n.completions[ReliableDelivery])
		r.AddUint(metrics.Join(viaK, "completions", "reception"), n.completions[ReliableReception])

		ls := s.Net.LinkStats(h.id)
		linkK := "link" + strconv.Itoa(i)
		r.AddUint(metrics.Join(linkK, "tx_packets"), ls.TxPackets)
		r.AddUint(metrics.Join(linkK, "tx_bytes"), ls.TxBytes)
		r.AddUint(metrics.Join(linkK, "rx_packets"), ls.RxPackets)
		r.AddUint(metrics.Join(linkK, "rx_bytes"), ls.RxBytes)
		r.AddUint(metrics.Join(linkK, "rx_corrupt"), ls.RxCorrupt)
		r.AddUint(metrics.Join(linkK, "dropped"), ls.Dropped)
		r.AddUint(metrics.Join(linkK, "dropped_fault"), ls.DroppedFault)
		r.AddUint(metrics.Join(linkK, "dropped_filter"), ls.DroppedFilter)
		r.AddUint(metrics.Join(linkK, "dropped_rate"), ls.DroppedRate)
	}

	// Per-switch output-port activity: forwarded traffic, credit stalls
	// (admissions that waited for a downstream buffer slot) and the
	// deepest queue occupancy seen, per switch of the topology.
	for si := 0; si < s.Net.Switches(); si++ {
		ss := s.Net.SwitchStats(fabric.SwitchID(si))
		swK := "switch" + strconv.Itoa(si)
		r.AddUint(metrics.Join(swK, "tx_packets"), ss.TxPackets)
		r.AddUint(metrics.Join(swK, "tx_bytes"), ss.TxBytes)
		r.AddUint(metrics.Join(swK, "credit_stalls"), ss.CreditStalls)
		r.Add(metrics.Join(swK, "stall_ns"), float64(ss.StallTime))
		r.Gauge(metrics.Join(swK, "max_queue"), float64(ss.MaxQueue))
	}

	r.AddUint("fabric.sent", s.Net.Sent)
	r.AddUint("fabric.delivered", s.Net.Delivered)
	r.AddUint("fabric.dropped", s.Net.Dropped)
	r.AddUint("fabric.dropped_fault", s.Net.DroppedBy(fabric.DropCauseFault))
	r.AddUint("fabric.dropped_filter", s.Net.DroppedBy(fabric.DropCauseFilter))
	r.AddUint("fabric.dropped_rate", s.Net.DroppedBy(fabric.DropCauseRate))
	r.AddUint("fabric.duplicated", s.Net.Duplicated)
	r.AddUint("fabric.corrupted", s.Net.Corrupted)
	r.AddUint("fabric.bytes", s.Net.BytesSent)
	r.Add("fabric.serialization_ns", float64(s.Net.SerTime))
	r.Add("fabric.propagation_ns", float64(s.Net.PropTime))
	r.AddUint("fabric.credit_stalls", s.Net.CreditStalls())
	r.Gauge("fabric.max_switch_queue", float64(s.Net.MaxQueueDepth()))
	r.AddUint("fabric.rerouted", s.Net.Rerouted)
	r.AddUint("fabric.unroutable", s.Net.Unroutable)

	// Fault-plan application counts by kind, when a plan is installed.
	if s.faults != nil {
		for kind, count := range s.faults.Counts() {
			r.AddUint(metrics.Join("fault", kind), count)
		}
	}

	// Message-lifecycle span histograms: end-to-end and per-phase latency
	// distributions for each sampled path (see span.go).
	if t := s.spans; t != nil {
		r.AddUint("span.sampled", t.opened)
		r.AddUint("span.completed", t.closedN)
		for pi := spanPath(0); pi < numPaths; pi++ {
			if t.totals[pi].Count() == 0 {
				continue
			}
			r.SetHist(metrics.Join("span", pathNames[pi], "total_ns"), &t.totals[pi])
			for ph := spanPhase(0); ph < numPhases; ph++ {
				if t.phaseH[pi][ph].Count() > 0 {
					r.SetHist(metrics.Join("span", pathNames[pi], phaseNames[ph]+"_ns"), &t.phaseH[pi][ph])
				}
			}
		}
	}

	return r.Snapshot()
}

// SetProfile arranges for the system's virtual-time attribution to be
// folded into sc when Run finishes. Like SetCollector, it only controls
// whether the always-on busy accumulators are read.
func (s *System) SetProfile(sc *prof.Scope) { s.profile = sc }

// CollectProfile folds per-component busy-time attribution into sc as
// `host{i};component;phase` stacks: where every simulated nanosecond of
// CPU and NIC engine time went, plus the fabric's serialization and
// propagation totals.
func (s *System) CollectProfile(sc *prof.Scope) {
	for i, h := range s.hosts {
		hostK := "host" + strconv.Itoa(i)
		spin, wake := h.CPU.SpinBusy(), h.CPU.WakeBusy()
		sc.Add(int64(h.CPU.Busy()-spin-wake), hostK, "cpu", "compute")
		sc.Add(int64(spin), hostK, "cpu", "spin")
		sc.Add(int64(wake), hostK, "cpu", "wake")

		n := h.nic
		sc.Add(int64(n.BusyDoorbell), hostK, "nic", "doorbell")
		sc.Add(int64(n.BusyFetch), hostK, "nic", "desc_fetch")
		sc.Add(int64(n.BusyFrag), hostK, "nic", "frag")
		sc.Add(int64(n.BusyXlate), hostK, "nic", "xlate")
		sc.Add(int64(n.BusyDMA), hostK, "nic", "dma")
		sc.Add(int64(n.BusyAck), hostK, "nic", "ack")
		sc.Add(int64(n.FaultStallTime), hostK, "nic", "stall")
	}
	sc.Add(int64(s.Net.SerTime), "fabric", "serialization")
	sc.Add(int64(s.Net.PropTime), "fabric", "propagation")
}
