package via

import (
	"strconv"

	"vibe/internal/fabric"
	"vibe/internal/metrics"
)

// SetCollector arranges for the system's metrics snapshot to be merged into
// c when Run finishes. Counters always accumulate (they are cheap integer
// increments that never touch virtual time); the collector only controls
// whether anyone reads them, so simulations without one behave — and time —
// identically.
func (s *System) SetCollector(c *metrics.Collector) { s.collector = c }

// CollectMetrics snapshots every component counter of the system under
// hierarchical keys: sim.* (engine), cpu{i}.* (host processors), nic{i}.*
// (NIC engines, TLB, reliability window), via{i}.* (VIPL-level operations),
// link{i}.* (per-host fabric links), fabric.* (whole interconnect).
func (s *System) CollectMetrics() metrics.Snapshot {
	r := metrics.New()

	r.AddUint("sim.events_dispatched", s.Eng.EventsDispatched())
	r.Gauge("sim.heap_high_water", float64(s.Eng.HeapHighWater()))

	elapsed := s.Eng.Now().Sub(0)
	for i, h := range s.hosts {
		cpuK := "cpu" + strconv.Itoa(i)
		busy := h.CPU.Busy()
		r.Add(metrics.Join(cpuK, "busy_ns"), float64(busy))
		if idle := elapsed - busy; idle > 0 {
			r.Add(metrics.Join(cpuK, "idle_ns"), float64(idle))
		} else {
			r.Add(metrics.Join(cpuK, "idle_ns"), 0)
		}
		r.Add(metrics.Join(cpuK, "spin_ns"), float64(h.CPU.SpinBusy()))
		r.Add(metrics.Join(cpuK, "wake_ns"), float64(h.CPU.WakeBusy()))
		r.AddUint(metrics.Join(cpuK, "spin_waits"), h.CPU.SpinWaits())
		r.AddUint(metrics.Join(cpuK, "block_waits"), h.CPU.BlockWaits())

		n := h.nic
		nicK := "nic" + strconv.Itoa(i)
		// One doorbell consumed is exactly one descriptor fetch in this
		// NIC model, but the two keys map to distinct paper cost terms.
		r.AddUint(metrics.Join(nicK, "doorbells"), n.SendsProcessed)
		r.AddUint(metrics.Join(nicK, "desc_fetches"), n.SendsProcessed)
		if n.tlb != nil {
			r.AddUint(metrics.Join(nicK, "tlb", "hits"), n.tlb.Hits)
			r.AddUint(metrics.Join(nicK, "tlb", "misses"), n.tlb.Misses)
		}
		r.AddUint(metrics.Join(nicK, "dma", "bytes_out"), n.DMABytesOut)
		r.AddUint(metrics.Join(nicK, "dma", "bytes_in"), n.DMABytesIn)
		r.AddUint(metrics.Join(nicK, "frags", "sent"), n.FragsSent)
		r.AddUint(metrics.Join(nicK, "frags", "recv"), n.FragsRecv)
		r.AddUint(metrics.Join(nicK, "acks", "sent"), n.AcksSent)
		r.AddUint(metrics.Join(nicK, "acks", "recv"), n.AcksRecv)
		r.AddUint(metrics.Join(nicK, "drops", "no_desc"), n.DroppedNoDesc)

		// Window/sequence counters: what live connections hold now, plus
		// what teardown absorbed into the NIC (teardown zeroes the
		// connection's counters, so the sum never double counts).
		acked, retx := n.winAcked, n.winRetransmits
		dups, gaps := n.recvDups, n.recvGaps
		backoffs := n.rtoBackoffs
		for _, vi := range n.vis {
			if vi.conn != nil {
				acked += vi.conn.window.Acked
				retx += vi.conn.window.Retransmits
				dups += vi.conn.recvSeq.Duplicates
				gaps += vi.conn.recvSeq.Gaps
				backoffs += vi.conn.rto.Backoffs
			}
		}
		r.AddUint(metrics.Join(nicK, "window", "acked"), acked)
		r.AddUint(metrics.Join(nicK, "window", "retransmits"), retx)
		r.AddUint(metrics.Join(nicK, "window", "recv_duplicates"), dups)
		r.AddUint(metrics.Join(nicK, "window", "recv_gaps"), gaps)
		r.AddUint(metrics.Join(nicK, "window", "backoffs"), backoffs)

		// Error-semantics counters.
		r.AddUint(metrics.Join(nicK, "drops", "corrupt"), n.CorruptDrops)
		r.AddUint(metrics.Join(nicK, "flushed"), n.FlushedDescs)
		r.AddUint(metrics.Join(nicK, "transport_errors"), n.TransportErrs)
		r.AddUint(metrics.Join(nicK, "conn_errors"), n.ConnErrors)
		r.Add(metrics.Join(nicK, "fault_stall_ns"), float64(n.FaultStallTime))

		viaK := "via" + strconv.Itoa(i)
		r.AddUint(metrics.Join(viaK, "sends_posted"), n.PostedSends)
		r.AddUint(metrics.Join(viaK, "recvs_posted"), n.PostedRecvs)
		r.AddUint(metrics.Join(viaK, "recvs_completed"), n.RecvsCompleted)
		r.AddUint(metrics.Join(viaK, "rdma", "writes"), n.RdmaWrites)
		r.AddUint(metrics.Join(viaK, "rdma", "reads"), n.RdmaReads)
		r.AddUint(metrics.Join(viaK, "completions", "unreliable"), n.completions[Unreliable])
		r.AddUint(metrics.Join(viaK, "completions", "delivery"), n.completions[ReliableDelivery])
		r.AddUint(metrics.Join(viaK, "completions", "reception"), n.completions[ReliableReception])

		ls := s.Net.LinkStats(h.id)
		linkK := "link" + strconv.Itoa(i)
		r.AddUint(metrics.Join(linkK, "tx_packets"), ls.TxPackets)
		r.AddUint(metrics.Join(linkK, "tx_bytes"), ls.TxBytes)
		r.AddUint(metrics.Join(linkK, "rx_packets"), ls.RxPackets)
		r.AddUint(metrics.Join(linkK, "rx_bytes"), ls.RxBytes)
		r.AddUint(metrics.Join(linkK, "dropped"), ls.Dropped)
		r.AddUint(metrics.Join(linkK, "dropped_fault"), ls.DroppedFault)
		r.AddUint(metrics.Join(linkK, "dropped_filter"), ls.DroppedFilter)
		r.AddUint(metrics.Join(linkK, "dropped_rate"), ls.DroppedRate)
	}

	r.AddUint("fabric.sent", s.Net.Sent)
	r.AddUint("fabric.delivered", s.Net.Delivered)
	r.AddUint("fabric.dropped", s.Net.Dropped)
	r.AddUint("fabric.dropped_fault", s.Net.DroppedBy(fabric.DropCauseFault))
	r.AddUint("fabric.dropped_filter", s.Net.DroppedBy(fabric.DropCauseFilter))
	r.AddUint("fabric.dropped_rate", s.Net.DroppedBy(fabric.DropCauseRate))
	r.AddUint("fabric.duplicated", s.Net.Duplicated)
	r.AddUint("fabric.corrupted", s.Net.Corrupted)
	r.AddUint("fabric.bytes", s.Net.BytesSent)
	r.Add("fabric.serialization_ns", float64(s.Net.SerTime))
	r.Add("fabric.propagation_ns", float64(s.Net.PropTime))

	// Fault-plan application counts by kind, when a plan is installed.
	if s.faults != nil {
		for kind, count := range s.faults.Counts() {
			r.AddUint(metrics.Join("fault", kind), count)
		}
	}

	return r.Snapshot()
}
