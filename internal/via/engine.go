package via

import (
	"vibe/internal/fabric"
	"vibe/internal/fault"
	"vibe/internal/nicsim"
	"vibe/internal/provider"
	"vibe/internal/sim"
)

// sendRef links an in-flight wire packet back to the descriptor it
// belongs to. desc is non-nil only on the packet whose acknowledgment
// completes the descriptor (the final fragment).
type sendRef struct {
	vi    *Vi
	desc  *Descriptor
	total int
	pkt   *wirePacket
}

// send injects a packet into the fabric and returns the instant it has
// finished serializing out of this adapter. Span-carrying packets are
// stamped with the departure time so the receiver can attribute wire
// time; retransmissions restamp, so the measurement covers the attempt
// that actually arrived.
func (n *Nic) send(pkt *wirePacket, dst fabric.NodeID) sim.Time {
	if pkt.span != nil {
		pkt.sentAt = n.host.sys.Eng.Now()
	}
	return n.host.sys.Net.Send(n.host.id, dst, pkt.wireSize(n.model.AckBytes), pkt)
}

// sendCtl is send for connection-management packets (fire and forget).
func (n *Nic) sendCtl(pkt *wirePacket, dst fabric.NodeID) {
	n.send(pkt, dst)
}

// stallFault injects a fault-plan NIC stall at the given site: the
// doorbell/command path or a DMA transfer. Inert (one nil check) when no
// plan is installed.
func (n *Nic) stallFault(p *sim.Proc, site fault.Site) {
	inj := n.faults
	if inj == nil {
		return
	}
	if d := inj.Stall(site, int(n.host.id), p.Now()); d > 0 {
		n.FaultStallTime += d
		p.Sleep(d)
	}
}

// xlateCost is the NIC-side translation cost for the given pages,
// according to the provider's translation design.
func (n *Nic) xlateCost(pages []uint64) sim.Duration {
	m := n.model
	switch {
	case m.TranslationAt == provider.TranslateAtHost:
		return 0 // host already translated while posting
	case m.TablesAt == provider.TablesInNICMemory:
		return sim.Duration(len(pages)) * m.XlateNICTable
	default:
		var d sim.Duration
		for _, pg := range pages {
			if n.tlb.Lookup(pg) {
				d += m.XlateHit
			} else {
				d += m.XlateMissHostTable
			}
		}
		return d
	}
}

// --- Send engine ---

// sendEngine is the NIC's transmit processor: it picks up doorbells and
// moves descriptors onto the wire.
func (n *Nic) sendEngine(p *sim.Proc) {
	eng := n.host.sys.Eng
	for {
		db := n.doorbells.Pop(p).(*doorbell)
		m := n.model
		// Tracing() guard: the Tracef arguments must not be materialized
		// on this per-send path when no tracer is installed.
		if eng.Tracing() {
			eng.Tracef("nic%d: doorbell vi=%d op=%d len=%d", n.host.id, db.vi.id, db.desc.Op, db.desc.TotalLength())
		}
		sp := db.desc.span
		sp.mark(phaseQueue, p.Now()) // time since post spent waiting in the send queue
		if m.PollSweep && n.openVIs > 1 {
			// Firmware sweeps every open VI's send structure to find
			// work — the Berkeley VIA behaviour behind the paper's
			// multiple-VI sensitivity.
			sweep := sim.Duration(n.openVIs-1) * m.PollPerVI
			p.Sleep(sweep)
			n.BusyDoorbell += sweep
		}
		n.stallFault(p, fault.SiteDoorbell)
		sp.mark(phaseDoorbell, p.Now()) // poll sweep + any injected stall
		p.Sleep(m.DoorbellProc + m.DescFetch)
		n.BusyDoorbell += m.DoorbellProc
		n.BusyFetch += m.DescFetch
		sp.add(phaseDoorbell, m.DoorbellProc, p.Now())
		sp.add(phaseFetch, m.DescFetch, p.Now())
		n.processSend(p, db.vi, db.desc)
		n.rung(db)
		n.SendsProcessed++
	}
}

func (n *Nic) processSend(p *sim.Proc, vi *Vi, d *Descriptor) {
	if vi.state != ViConnected || d.done {
		// Disconnected (or flushed) between post and pickup.
		if !d.done {
			n.completeSend(vi, d, StatusFlushed, 0)
		}
		return
	}
	switch d.Op {
	case OpRdmaRead:
		n.sendReadRequest(p, vi, d)
	default:
		n.sendData(p, vi, d)
	}
}

// sendData moves a send or RDMA-write descriptor onto the wire as MTU
// fragments, translating and DMAing each. Packet headers and payload
// snapshots come from the system's free lists; the receive engine recycles
// them once a packet can no longer be referenced.
func (n *Nic) sendData(p *sim.Proc, vi *Vi, d *Descriptor) {
	m := n.model
	sys := n.host.sys
	conn := vi.conn
	runs, err := resolveSegs(n.host.AS, d.Segs)
	if err != nil {
		n.completeSend(vi, d, StatusProtectionError, 0)
		return
	}
	total := totalLen(runs)
	frags := nicsim.Fragments(total, m.WireMTU)
	n.nextMsgID++
	msgID := n.nextMsgID
	reliable := vi.attrs.Reliability.Reliable()

	sp := d.span
	var lastTx sim.Time
	for _, f := range frags {
		p.Sleep(m.PerFragment)
		n.BusyFrag += m.PerFragment
		sp.add(phaseFrag, m.PerFragment, p.Now())
		n.FragsSent++
		if f.Size > 0 {
			n.stallFault(p, fault.SiteDMA)
			sp.mark(phaseDMA, p.Now()) // injected DMA stall, if any
			xd := n.xlateCost(pagesIn(runs, f.Offset, f.Size))
			p.Sleep(xd)
			n.BusyXlate += xd
			sp.add(phaseXlate, xd, p.Now())
			dd := sim.Duration(f.Size) * m.DMAPerByte
			p.Sleep(dd)
			n.BusyDMA += dd
			sp.add(phaseDMA, dd, p.Now())
			n.DMABytesOut += uint64(f.Size)
		}
		data := sys.bufs.Get(f.Size)
		gather(runs, f.Offset, data)
		pkt := sys.getPkt()
		pkt.kind = pktData
		pkt.srcVi = vi.id
		pkt.dstVi = conn.peerVi
		pkt.msgID = msgID
		pkt.frag = f
		pkt.msgTotal = total
		pkt.data = data
		if d.Op == OpRdmaWrite {
			pkt.kind = pktRdmaWrite
			pkt.remoteAddr = d.Remote.Addr
			pkt.remoteHandle = d.Remote.Handle
		}
		if d.HasImmediate && f.Last {
			pkt.immediate, pkt.hasImmediate = d.ImmediateData, true
		}
		pkt.span = sp
		if reliable {
			ref := &sendRef{vi: vi, total: total, pkt: pkt}
			if f.Last {
				ref.desc = d
			}
			pend := conn.window.Add(ref, p.Now())
			pkt.seq, pkt.hasSeq = pend.Seq, true
		}
		lastTx = n.send(pkt, conn.peerNode)
	}

	if reliable {
		n.armRTO(vi)
		return
	}
	// Unreliable sends complete once the final fragment has left the
	// adapter and the NIC has written the status back.
	doneAt := lastTx.Add(m.CompletionWrite)
	n.host.sys.Eng.At(doneAt, func() {
		n.completeSend(vi, d, StatusSuccess, total)
	})
}

// sendReadRequest issues an RDMA read: a small request packet; the data
// comes back as read-response packets handled by the receive engine.
func (n *Nic) sendReadRequest(p *sim.Proc, vi *Vi, d *Descriptor) {
	m := n.model
	conn := vi.conn
	runs, err := resolveSegs(n.host.AS, d.Segs)
	if err != nil {
		n.completeSend(vi, d, StatusProtectionError, 0)
		return
	}
	p.Sleep(m.PerFragment)
	n.BusyFrag += m.PerFragment
	d.span.add(phaseFrag, m.PerFragment, p.Now())
	n.FragsSent++
	n.nextReadID++
	id := n.nextReadID
	conn.outstandingReads[id] = &readState{desc: d, runs: runs}
	pkt := &wirePacket{
		kind:         pktRdmaReadReq,
		srcVi:        vi.id,
		dstVi:        conn.peerVi,
		readReq:      id,
		msgTotal:     totalLen(runs),
		remoteAddr:   d.Remote.Addr,
		remoteHandle: d.Remote.Handle,
		span:         d.span,
	}
	pend := conn.window.Add(&sendRef{vi: vi, pkt: pkt}, p.Now())
	pkt.seq, pkt.hasSeq = pend.Seq, true
	n.send(pkt, conn.peerNode)
	n.armRTO(vi)
}

// completeSend finishes a send-queue descriptor exactly once.
func (n *Nic) completeSend(vi *Vi, d *Descriptor, st Status, length int) {
	if d.done {
		return
	}
	vi.sendQ.complete(d, st, length)
}

// --- Receive engine ---

// recvEngine is the NIC's receive processor: it drains the fabric inbox
// and dispatches by packet kind. Deliveries are recycled as soon as their
// fields are read; packets are recycled after handling unless they carry a
// reliability sequence (a sequenced packet is still referenced by the
// sender's retransmission window, which may resend the very same object
// and payload, so only the sender forgetting it could ever free it —
// letting the GC handle that case keeps aliasing impossible).
func (n *Nic) recvEngine(p *sim.Proc) {
	net := n.host.sys.Net
	inbox := net.Inbox(n.host.id)
	eng := n.host.sys.Eng
	for {
		del := inbox.Pop(p).(*fabric.Delivery)
		src := del.Src
		pkt := del.Payload.(*wirePacket)
		// A fault-duplicated delivery aliases the same wirePacket as its
		// sibling copy, so shared packets are never recycled (the GC
		// reclaims them); aliasing a recycled header would corrupt an
		// unrelated transfer.
		corrupted, shared := del.Corrupted, del.Shared
		net.Recycle(del)
		if corrupted {
			// The frame check failed in flight: the NIC discards the
			// frame before any protocol processing, exactly like a real
			// CRC drop. Reliable senders retransmit; unreliable messages
			// lose the fragment silently.
			n.CorruptDrops++
			if !pkt.hasSeq && !shared {
				n.host.sys.recyclePkt(pkt)
			}
			continue
		}
		if eng.Tracing() {
			eng.Tracef("nic%d: rx kind=%d from=%d vi=%d msg=%d frag=%d+%d", n.host.id, pkt.kind, src, pkt.dstVi, pkt.msgID, pkt.frag.Offset, pkt.frag.Size)
		}
		switch pkt.kind {
		case pktData:
			n.handleData(p, src, pkt)
		case pktRdmaWrite:
			n.handleRdmaWrite(p, src, pkt)
		case pktRdmaReadReq:
			n.handleReadReq(p, src, pkt)
		case pktRdmaReadResp:
			n.handleReadResp(p, src, pkt)
		case pktAck:
			n.handleAck(p, src, pkt)
		case pktErrAck:
			n.handleErrAck(p, src, pkt)
		case pktConnReq:
			n.pendingConns = append(n.pendingConns, &ConnRequest{
				nic:         n,
				disc:        pkt.disc,
				clientNode:  src,
				clientVi:    pkt.srcVi,
				reliability: pkt.reliability,
			})
			n.connArrived.Broadcast()
		case pktConnAccept:
			if vi := n.vis[pkt.dstVi]; vi != nil && vi.state == ViIdle {
				vi.conn = newConnState(n.model, src, pkt.srcVi)
				vi.state = ViConnected
				vi.connAccepted = true
				vi.connReply.Broadcast()
			}
		case pktConnReject:
			if vi := n.vis[pkt.dstVi]; vi != nil && vi.state == ViIdle {
				vi.connRejected = true
				vi.connReply.Broadcast()
			}
		case pktDisconnect:
			if vi := n.vis[pkt.dstVi]; vi != nil && vi.state == ViConnected &&
				vi.conn.peerNode == src && vi.conn.peerVi == pkt.srcVi {
				vi.teardown(ViDisconnected)
			}
		}
		if !pkt.hasSeq && !shared {
			n.host.sys.recyclePkt(pkt)
		}
	}
}

// lookupVi validates that an inbound data-path packet targets a live
// connection from the claimed source.
func (n *Nic) lookupVi(src fabric.NodeID, pkt *wirePacket) *Vi {
	vi := n.vis[pkt.dstVi]
	if vi == nil || vi.state != ViConnected || vi.conn.peerNode != src || vi.conn.peerVi != pkt.srcVi {
		return nil
	}
	return vi
}

// seqCheck runs receiver-side reliability for a data-path packet. It
// reports whether the packet should be processed; duplicates are re-acked
// and dropped, gaps are dropped silently (the sender retransmits).
func (n *Nic) seqCheck(p *sim.Proc, vi *Vi, pkt *wirePacket) bool {
	if !vi.attrs.Reliability.Reliable() || !pkt.hasSeq {
		return true
	}
	accept, dup := vi.conn.recvSeq.Accept(pkt.seq)
	if dup {
		n.sendAck(p, vi)
		return false
	}
	return accept
}

// sendAck emits a cumulative acknowledgment for the VI's connection.
func (n *Nic) sendAck(p *sim.Proc, vi *Vi) {
	cum, ok := vi.conn.recvSeq.CumAck()
	if !ok {
		return
	}
	p.Sleep(n.model.AckProcessing)
	n.BusyAck += n.model.AckProcessing
	n.AcksSent++
	n.send(&wirePacket{
		kind:   pktAck,
		srcVi:  vi.id,
		dstVi:  vi.conn.peerVi,
		ackSeq: cum,
	}, vi.conn.peerNode)
}

func (n *Nic) handleData(p *sim.Proc, src fabric.NodeID, pkt *wirePacket) {
	m := n.model
	sp := pkt.span
	sp.add(phaseWire, p.Now().Sub(pkt.sentAt), p.Now())
	p.Sleep(m.PerFragmentRecv)
	n.BusyFrag += m.PerFragmentRecv
	sp.add(phaseReassembly, m.PerFragmentRecv, p.Now())
	n.FragsRecv++
	vi := n.lookupVi(src, pkt)
	if vi == nil {
		return
	}
	conn := vi.conn
	if !n.seqCheck(p, vi, pkt) {
		return
	}
	// Reliable Delivery acknowledges on arrival at the NIC; Reliable
	// Reception only after the data is in host memory.
	if vi.attrs.Reliability == ReliableDelivery {
		n.sendAck(p, vi)
	}

	if conn.dropping {
		if pkt.msgID == conn.dropMsgID {
			if pkt.frag.Last {
				conn.dropping = false
			}
			if vi.attrs.Reliability == ReliableReception {
				n.sendAck(p, vi)
			}
			return
		}
		// A new message begins; the dropped one's tail never arrived.
		conn.dropping = false
	}

	if conn.curRecv == nil {
		d := vi.recvQ.consume()
		if d == nil {
			n.DroppedNoDesc++
			if vi.attrs.Reliability.Reliable() {
				// A reliable connection with no posted descriptor is a
				// fatal application error per the VIA spec: the
				// connection breaks.
				n.failConn(vi)
				return
			}
			conn.dropping = true
			conn.dropMsgID = pkt.msgID
			if pkt.frag.Last {
				conn.dropping = false
			}
			return
		}
		runs, err := resolveSegs(n.host.AS, d.Segs)
		if err != nil || pkt.msgTotal > totalLen(runs) {
			st := StatusLengthError
			if err != nil {
				st = StatusProtectionError
			}
			n.finishRecv(vi, d, st, pkt.msgTotal, 0)
			conn.dropping = true
			conn.dropMsgID = pkt.msgID
			if pkt.frag.Last {
				conn.dropping = false
			}
			if vi.attrs.Reliability == ReliableReception {
				n.sendAck(p, vi)
			}
			return
		}
		if t := n.host.sys.spans; t != nil {
			d.span = t.open(pathRecv, int(n.host.id), pkt.msgTotal, p.Now())
		}
		conn.curRecv, conn.curRecvRuns = d, runs
	}
	rsp := conn.curRecv.span

	done, ok := conn.reasm.Accept(pkt.msgID, pkt.frag, pkt.msgTotal)
	var tailCopy sim.Duration
	if ok && pkt.frag.Size > 0 {
		n.stallFault(p, fault.SiteDMA)
		sp.mark(phaseDMA, p.Now())
		rsp.mark(phaseReassembly, p.Now()) // inter-fragment wait + stall on the recv side
		xd := n.xlateCost(pagesIn(conn.curRecvRuns, pkt.frag.Offset, pkt.frag.Size))
		p.Sleep(xd)
		n.BusyXlate += xd
		sp.add(phaseXlate, xd, p.Now())
		rsp.add(phaseXlate, xd, p.Now())
		dd := sim.Duration(pkt.frag.Size) * m.DMAPerByte
		p.Sleep(dd)
		n.BusyDMA += dd
		sp.add(phaseDMA, dd, p.Now())
		rsp.add(phaseDMA, dd, p.Now())
		n.DMABytesIn += uint64(pkt.frag.Size)
		scatter(conn.curRecvRuns, pkt.frag.Offset, pkt.data)
		if m.HostCopies {
			// Kernel-emulated VIA (M-VIA) copies each arriving fragment
			// from the kernel buffer to the user buffer. The copy burns
			// host CPU concurrently with the NIC handling the next
			// fragment; only the final fragment's copy delays the
			// application-visible completion.
			tailCopy = sim.Duration(pkt.frag.Size) * m.CopyPerByte
			n.host.CPU.Charge(tailCopy)
		}
	}
	if vi.attrs.Reliability == ReliableReception {
		n.sendAck(p, vi)
	}
	if done {
		d := conn.curRecv
		conn.curRecv, conn.curRecvRuns = nil, nil
		if pkt.hasImmediate {
			d.Immediate, d.GotImmediate = pkt.immediate, true
		}
		n.finishRecv(vi, d, StatusSuccess, pkt.msgTotal, tailCopy)
	}
}

// finishRecv completes a receive descriptor, optionally delayed (the
// kernel copy of the final fragment on host-copy providers).
func (n *Nic) finishRecv(vi *Vi, d *Descriptor, st Status, length int, delay sim.Duration) {
	if delay > 0 {
		n.host.sys.Eng.After(delay, func() {
			if !d.done {
				vi.recvQ.complete(d, st, length)
			}
		})
		return
	}
	if !d.done {
		vi.recvQ.complete(d, st, length)
	}
}

func (n *Nic) handleRdmaWrite(p *sim.Proc, src fabric.NodeID, pkt *wirePacket) {
	m := n.model
	sp := pkt.span
	sp.add(phaseWire, p.Now().Sub(pkt.sentAt), p.Now())
	p.Sleep(m.PerFragmentRecv)
	n.BusyFrag += m.PerFragmentRecv
	sp.add(phaseReassembly, m.PerFragmentRecv, p.Now())
	n.FragsRecv++
	vi := n.lookupVi(src, pkt)
	if vi == nil {
		return
	}
	conn := vi.conn
	if !n.seqCheck(p, vi, pkt) {
		return
	}

	// Validate the remote range before acknowledging anything: a
	// protection error must surface as an error, not a successful
	// delivery ack.
	addr := pkt.remoteAddr.Advance(pkt.frag.Offset)
	if !n.checkRemote(addr, pkt.frag.Size, pkt.remoteHandle) {
		if vi.attrs.Reliability.Reliable() {
			n.send(&wirePacket{
				kind:   pktErrAck,
				srcVi:  vi.id,
				dstVi:  conn.peerVi,
				errSts: StatusRdmaProtError,
				errMsg: pkt.msgID,
			}, conn.peerNode)
		}
		return
	}
	if vi.attrs.Reliability == ReliableDelivery {
		n.sendAck(p, vi)
	}

	done, ok := conn.rdmaReasm.Accept(pkt.msgID, pkt.frag, pkt.msgTotal)
	if ok && pkt.frag.Size > 0 {
		data, err := n.host.AS.Resolve(addr, pkt.frag.Size)
		if err == nil {
			run := []segRun{{addr: addr, data: data}}
			n.stallFault(p, fault.SiteDMA)
			sp.mark(phaseDMA, p.Now())
			xd := n.xlateCost(pagesIn(run, 0, pkt.frag.Size))
			p.Sleep(xd)
			n.BusyXlate += xd
			sp.add(phaseXlate, xd, p.Now())
			dd := sim.Duration(pkt.frag.Size) * m.DMAPerByte
			p.Sleep(dd)
			n.BusyDMA += dd
			sp.add(phaseDMA, dd, p.Now())
			n.DMABytesIn += uint64(pkt.frag.Size)
			copy(data, pkt.data)
		}
	}
	if vi.attrs.Reliability == ReliableReception {
		n.sendAck(p, vi)
	}
	if done && pkt.hasImmediate {
		// RDMA write with immediate data consumes a receive descriptor.
		d := vi.recvQ.consume()
		if d == nil {
			n.DroppedNoDesc++
			if vi.attrs.Reliability.Reliable() {
				n.failConn(vi)
			}
			return
		}
		d.Immediate, d.GotImmediate = pkt.immediate, true
		n.finishRecv(vi, d, StatusSuccess, pkt.msgTotal, 0)
	}
}

func (n *Nic) handleReadReq(p *sim.Proc, src fabric.NodeID, pkt *wirePacket) {
	m := n.model
	sp := pkt.span
	sp.add(phaseWire, p.Now().Sub(pkt.sentAt), p.Now())
	p.Sleep(m.PerFragmentRecv)
	n.BusyFrag += m.PerFragmentRecv
	sp.add(phaseReassembly, m.PerFragmentRecv, p.Now())
	vi := n.lookupVi(src, pkt)
	if vi == nil {
		return
	}
	conn := vi.conn
	if !n.seqCheck(p, vi, pkt) {
		return
	}
	n.sendAck(p, vi) // ack the request packet itself

	if !n.checkRemote(pkt.remoteAddr, pkt.msgTotal, pkt.remoteHandle) {
		n.send(&wirePacket{
			kind:    pktErrAck,
			srcVi:   vi.id,
			dstVi:   conn.peerVi,
			errSts:  StatusRdmaProtError,
			readReq: pkt.readReq,
		}, conn.peerNode)
		return
	}

	// Stream the data back as read-response fragments on this NIC's send
	// direction of the connection.
	data, err := n.host.AS.Resolve(pkt.remoteAddr, pkt.msgTotal)
	if err != nil {
		return
	}
	sys := n.host.sys
	runs := []segRun{{addr: pkt.remoteAddr, data: data}}
	for _, f := range nicsim.Fragments(pkt.msgTotal, m.WireMTU) {
		p.Sleep(m.PerFragment)
		n.BusyFrag += m.PerFragment
		sp.add(phaseFrag, m.PerFragment, p.Now())
		n.FragsSent++
		if f.Size > 0 {
			n.stallFault(p, fault.SiteDMA)
			sp.mark(phaseDMA, p.Now())
			xd := n.xlateCost(pagesIn(runs, f.Offset, f.Size))
			p.Sleep(xd)
			n.BusyXlate += xd
			sp.add(phaseXlate, xd, p.Now())
			dd := sim.Duration(f.Size) * m.DMAPerByte
			p.Sleep(dd)
			n.BusyDMA += dd
			sp.add(phaseDMA, dd, p.Now())
			n.DMABytesOut += uint64(f.Size)
		}
		buf := sys.bufs.Get(f.Size)
		gather(runs, f.Offset, buf)
		resp := sys.getPkt()
		resp.kind = pktRdmaReadResp
		resp.srcVi = vi.id
		resp.dstVi = conn.peerVi
		resp.readReq = pkt.readReq
		resp.frag = f
		resp.msgTotal = pkt.msgTotal
		resp.data = buf
		resp.span = sp // the requester's span rides back on the response
		pend := conn.window.Add(&sendRef{vi: vi, pkt: resp}, p.Now())
		resp.seq, resp.hasSeq = pend.Seq, true
		n.send(resp, conn.peerNode)
	}
	n.armRTO(vi)
}

func (n *Nic) handleReadResp(p *sim.Proc, src fabric.NodeID, pkt *wirePacket) {
	m := n.model
	sp := pkt.span
	sp.add(phaseWire, p.Now().Sub(pkt.sentAt), p.Now())
	p.Sleep(m.PerFragmentRecv)
	n.BusyFrag += m.PerFragmentRecv
	sp.add(phaseReassembly, m.PerFragmentRecv, p.Now())
	n.FragsRecv++
	vi := n.lookupVi(src, pkt)
	if vi == nil {
		return
	}
	conn := vi.conn
	if !n.seqCheck(p, vi, pkt) {
		return
	}
	n.sendAck(p, vi)

	rs := conn.outstandingReads[pkt.readReq]
	if rs == nil {
		return
	}
	done, ok := conn.readReasm.Accept(pkt.readReq, pkt.frag, pkt.msgTotal)
	if ok && pkt.frag.Size > 0 {
		n.stallFault(p, fault.SiteDMA)
		sp.mark(phaseDMA, p.Now())
		xd := n.xlateCost(pagesIn(rs.runs, pkt.frag.Offset, pkt.frag.Size))
		p.Sleep(xd)
		n.BusyXlate += xd
		sp.add(phaseXlate, xd, p.Now())
		dd := sim.Duration(pkt.frag.Size) * m.DMAPerByte
		p.Sleep(dd)
		n.BusyDMA += dd
		sp.add(phaseDMA, dd, p.Now())
		n.DMABytesIn += uint64(pkt.frag.Size)
		scatter(rs.runs, pkt.frag.Offset, pkt.data)
	}
	if done {
		delete(conn.outstandingReads, pkt.readReq)
		n.completeSend(vi, rs.desc, StatusSuccess, pkt.msgTotal)
	}
}

func (n *Nic) handleAck(p *sim.Proc, src fabric.NodeID, pkt *wirePacket) {
	p.Sleep(n.model.AckProcessing)
	n.BusyAck += n.model.AckProcessing
	n.AcksRecv++
	vi := n.lookupVi(src, pkt)
	if vi == nil {
		return
	}
	conn := vi.conn
	for _, pend := range conn.window.Ack(pkt.ackSeq) {
		// Karn's algorithm: only never-retransmitted packets yield RTT
		// samples, so a retransmission's ack cannot be mis-attributed.
		if conn.rto.Adaptive && pend.Retries == 0 {
			conn.rto.Sample(p.Now().Sub(pend.SentAt))
		}
		ref := pend.Item.(*sendRef)
		if ref.desc != nil {
			n.completeSend(ref.vi, ref.desc, StatusSuccess, ref.total)
		}
	}
}

func (n *Nic) handleErrAck(p *sim.Proc, src fabric.NodeID, pkt *wirePacket) {
	p.Sleep(n.model.AckProcessing)
	n.BusyAck += n.model.AckProcessing
	vi := n.lookupVi(src, pkt)
	if vi == nil {
		return
	}
	conn := vi.conn
	if pkt.readReq != 0 {
		if rs := conn.outstandingReads[pkt.readReq]; rs != nil {
			delete(conn.outstandingReads, pkt.readReq)
			n.completeSend(vi, rs.desc, pkt.errSts, 0)
		}
	} else {
		conn.window.ForEachUnacked(func(pend *nicsim.Pending) bool {
			ref := pend.Item.(*sendRef)
			if ref.desc != nil && ref.pkt.msgID == pkt.errMsg {
				n.completeSend(vi, ref.desc, pkt.errSts, 0)
			}
			return true
		})
	}
	// A protection error on a reliable connection is fatal: the VIA
	// transitions the connection to the error state.
	n.failConn(vi)
}

// failConn breaks a connection: outstanding work completes with transport
// errors, remaining queued work flushes, the VI enters the error state,
// the peer is told to tear down, and the NIC's asynchronous error handler
// (the VipErrorCallback analogue) fires exactly once.
func (n *Nic) failConn(vi *Vi) {
	if vi.state != ViConnected {
		return // already failed or torn down; the callback must not refire
	}
	conn := vi.conn
	conn.window.ForEachUnacked(func(pend *nicsim.Pending) bool {
		ref := pend.Item.(*sendRef)
		if ref.desc != nil {
			n.completeSend(vi, ref.desc, StatusTransportError, 0)
		}
		return true
	})
	for id, rs := range conn.outstandingReads {
		delete(conn.outstandingReads, id)
		n.completeSend(vi, rs.desc, StatusTransportError, 0)
	}
	peerNode, peerVi := conn.peerNode, conn.peerVi
	srcVi := vi.id
	vi.teardown(ViError)
	n.sendCtl(&wirePacket{kind: pktDisconnect, srcVi: srcVi, dstVi: peerVi}, peerNode)
	n.fireError(vi, StatusTransportError)
}

// --- Retransmission ---

// armRTO schedules a retransmission check for the VI's window if one is
// not already pending, at the policy's current timeout.
func (n *Nic) armRTO(vi *Vi) {
	if vi.conn == nil {
		return
	}
	n.armRTOAfter(vi, vi.conn.rto.Timeout())
}

func (n *Nic) armRTOAfter(vi *Vi, d sim.Duration) {
	conn := vi.conn
	if conn == nil || conn.rtoArmed {
		return
	}
	conn.rtoArmed = true
	n.host.sys.Eng.After(d, func() { n.rtoFire(vi) })
}

func (n *Nic) rtoFire(vi *Vi) {
	conn := vi.conn
	if conn == nil {
		return
	}
	conn.rtoArmed = false
	if vi.state != ViConnected || conn.window.Outstanding() == 0 {
		return
	}
	eng := n.host.sys.Eng
	oldest := conn.window.Oldest()
	if age := eng.Now().Sub(oldest.SentAt); age < conn.rto.Timeout() {
		// Acks have been flowing; check again when the oldest packet
		// actually times out.
		conn.rtoArmed = true
		eng.After(conn.rto.Timeout()-age, func() { n.rtoFire(vi) })
		return
	}
	// Give up only after MaxRetries consecutive timeouts with no forward
	// progress of the oldest unacked sequence; otherwise a long
	// recovering window would accumulate spurious retry counts. This is
	// retransmission exhaustion: in-flight work completes with
	// StatusTransportError and the VI enters the error state.
	if conn.rto.Stalled(oldest.Seq) {
		n.failConn(vi)
		return
	}
	// Go-back-N, paced: resend at most a burst's worth per timeout so a
	// large in-flight window does not flood the wire (and re-time-out on
	// its own retransmissions).
	const resendBurst = 32
	resent := 0
	conn.window.ForEachUnacked(func(pend *nicsim.Pending) bool {
		if resent >= resendBurst {
			return false
		}
		pend.SentAt = eng.Now()
		pend.Retries++
		conn.window.Retransmits++
		ref := pend.Item.(*sendRef)
		n.send(ref.pkt, conn.peerNode)
		resent++
		return true
	})
	// Exponential backoff while the oldest sequence makes no progress:
	// under heavy queueing the true round trip dwarfs the base timeout,
	// and retransmitting at the base rate would congest the link with
	// duplicates faster than it drains.
	n.armRTOAfter(vi, conn.rto.Backoff())
}
