package via

import (
	"vibe/internal/fabric"
	"vibe/internal/fault"
	"vibe/internal/nicsim"
	"vibe/internal/provider"
	"vibe/internal/sim"
	"vibe/internal/vmem"
)

// The NIC engines are written as sim.Machine state machines: sendMachine
// consumes doorbells, recvMachine consumes fabric deliveries. Each machine
// is driven either by a goroutine process (Queue.ServeProc — the reference
// model) or directly on the event loop (Queue.Serve — zero goroutine
// handoffs); see ProcModel. The decomposition rule is mechanical: every
// p.Sleep(d) of the old process code became `return d, <state>`, with the
// code after the sleep in that state's segment, and every conditional
// sleep (fault stalls, ack emission) falls through inline — a plain
// Step call, not a scheduling point — when it would not have slept.
// Nothing else moved, so both drivers replay the old engines' event
// streams byte-identically.

// sendRef links an in-flight wire packet back to the descriptor it
// belongs to. desc is non-nil only on the packet whose acknowledgment
// completes the descriptor (the final fragment).
type sendRef struct {
	vi    *Vi
	desc  *Descriptor
	total int
	pkt   *wirePacket
}

// send injects a packet into the fabric and returns the instant it has
// finished serializing out of this adapter. Span-carrying packets are
// stamped with the departure time so the receiver can attribute wire
// time; retransmissions restamp, so the measurement covers the attempt
// that actually arrived.
func (n *Nic) send(pkt *wirePacket, dst fabric.NodeID) sim.Time {
	if pkt.span != nil {
		pkt.sentAt = n.host.sys.Eng.Now()
	}
	return n.host.sys.Net.Send(n.host.id, dst, pkt.wireSize(n.model.AckBytes), pkt)
}

// sendCtl is send for connection-management packets (fire and forget).
func (n *Nic) sendCtl(pkt *wirePacket, dst fabric.NodeID) {
	n.send(pkt, dst)
}

// stallD queries the fault plan for a NIC stall at the given site — the
// doorbell/command path or a DMA transfer — and returns how long the
// engine must stall (0 when no plan is installed or the plan is silent).
// The injector is always consulted when present, even for a zero verdict,
// since consulting it may advance plan state. Inert (one nil check) when
// no plan is installed.
func (n *Nic) stallD(site fault.Site) sim.Duration {
	inj := n.faults
	if inj == nil {
		return 0
	}
	d := inj.Stall(site, int(n.host.id), n.host.sys.Eng.Now())
	if d > 0 {
		n.FaultStallTime += d
	}
	return d
}

// xlateCost is the NIC-side translation cost for the given pages,
// according to the provider's translation design.
func (n *Nic) xlateCost(pages []uint64) sim.Duration {
	m := n.model
	switch {
	case m.TranslationAt == provider.TranslateAtHost:
		return 0 // host already translated while posting
	case m.TablesAt == provider.TablesInNICMemory:
		return sim.Duration(len(pages)) * m.XlateNICTable
	default:
		var d sim.Duration
		for _, pg := range pages {
			if n.tlb.Lookup(pg) {
				d += m.XlateHit
			} else {
				d += m.XlateMissHostTable
			}
		}
		return d
	}
}

// --- Send engine ---

// sendMachine states: each names the code segment that runs after the
// correspondingly named sleep.
const (
	sSweepDone         = iota // after the poll sweep (or its absence)
	sDoorbellStallDone        // after an injected doorbell stall
	sFetchDone                // after doorbell processing + descriptor fetch
	sFragDone                 // after a data fragment's per-fragment cost
	sDMAStallDone             // after an injected DMA stall
	sXlateDone                // after the fragment's translation time
	sDMADone                  // after the fragment's DMA transfer
	sReadFragDone             // after an RDMA-read request's fragment cost
)

// sendMachine is the NIC's transmit processor: it picks up doorbells and
// moves descriptors onto the wire. The fields are exactly the locals the
// goroutine form of this engine kept live across sleeps.
type sendMachine struct {
	n *Nic

	db       *doorbell
	conn     *connState // captured at chain start, like the old local
	runs     []segRun
	frags    []nicsim.Fragment
	fi       int
	total    int
	msgID    uint64
	reliable bool
	lastTx   sim.Time
	sweep    sim.Duration
	xd, dd   sim.Duration
}

func (sm *sendMachine) now() sim.Time { return sm.n.host.sys.Eng.Now() }

// finish is the tail of the engine loop: recycle the doorbell, count the
// send, and report the item done so the driver pops the next one.
func (sm *sendMachine) finish() (sim.Duration, int) {
	sm.n.rung(sm.db)
	sm.n.SendsProcessed++
	sm.db = nil
	sm.conn = nil
	sm.runs = nil
	sm.frags = nil
	return 0, sim.StepDone
}

// Begin picks up a doorbell: trace, queue-phase mark, and the optional
// firmware poll sweep over the open VIs.
func (sm *sendMachine) Begin(db *doorbell) (sim.Duration, int) {
	n := sm.n
	eng := n.host.sys.Eng
	m := n.model
	sm.db = db
	// Tracing() guard: the Tracef arguments must not be materialized
	// on this per-send path when no tracer is installed.
	if eng.Tracing() {
		eng.Tracef("nic%d: doorbell vi=%d op=%d len=%d", n.host.id, db.vi.id, db.desc.Op, db.desc.TotalLength())
	}
	sp := db.desc.span
	sp.mark(phaseQueue, eng.Now()) // time since post spent waiting in the send queue
	sm.sweep = 0
	if m.PollSweep && n.openVIs > 1 {
		// Firmware sweeps every open VI's send structure to find
		// work — the Berkeley VIA behaviour behind the paper's
		// multiple-VI sensitivity.
		sm.sweep = sim.Duration(n.openVIs-1) * m.PollPerVI
		return sm.sweep, sSweepDone
	}
	return sm.Step(sSweepDone)
}

func (sm *sendMachine) Step(pc int) (sim.Duration, int) {
	n := sm.n
	m := n.model
	switch pc {
	case sSweepDone:
		n.BusyDoorbell += sm.sweep
		if d := n.stallD(fault.SiteDoorbell); d > 0 {
			return d, sDoorbellStallDone
		}
		return sm.Step(sDoorbellStallDone)

	case sDoorbellStallDone:
		sm.db.desc.span.mark(phaseDoorbell, sm.now()) // poll sweep + any injected stall
		return m.DoorbellProc + m.DescFetch, sFetchDone

	case sFetchDone:
		sp := sm.db.desc.span
		n.BusyDoorbell += m.DoorbellProc
		n.BusyFetch += m.DescFetch
		sp.add(phaseDoorbell, m.DoorbellProc, sm.now())
		sp.add(phaseFetch, m.DescFetch, sm.now())
		return sm.processSend()

	case sFragDone:
		f := sm.frags[sm.fi]
		sp := sm.db.desc.span
		n.BusyFrag += m.PerFragment
		sp.add(phaseFrag, m.PerFragment, sm.now())
		n.FragsSent++
		if f.Size > 0 {
			if d := n.stallD(fault.SiteDMA); d > 0 {
				return d, sDMAStallDone
			}
			return sm.Step(sDMAStallDone)
		}
		return sm.emitFrag()

	case sDMAStallDone:
		f := sm.frags[sm.fi]
		sm.db.desc.span.mark(phaseDMA, sm.now()) // injected DMA stall, if any
		sm.xd = n.xlateCost(pagesIn(sm.runs, f.Offset, f.Size))
		return sm.xd, sXlateDone

	case sXlateDone:
		f := sm.frags[sm.fi]
		n.BusyXlate += sm.xd
		sm.db.desc.span.add(phaseXlate, sm.xd, sm.now())
		sm.dd = sim.Duration(f.Size) * m.DMAPerByte
		return sm.dd, sDMADone

	case sDMADone:
		f := sm.frags[sm.fi]
		n.BusyDMA += sm.dd
		sm.db.desc.span.add(phaseDMA, sm.dd, sm.now())
		n.DMABytesOut += uint64(f.Size)
		return sm.emitFrag()

	case sReadFragDone:
		return sm.readRequestOut()
	}
	panic("via: sendMachine: bad state")
}

// processSend routes the fetched descriptor.
func (sm *sendMachine) processSend() (sim.Duration, int) {
	n := sm.n
	vi, d := sm.db.vi, sm.db.desc
	if vi.state != ViConnected || d.done {
		// Disconnected (or flushed) between post and pickup.
		if !d.done {
			n.completeSend(vi, d, StatusFlushed, 0)
		}
		return sm.finish()
	}
	switch d.Op {
	case OpRdmaRead:
		return sm.startReadRequest()
	default:
		return sm.startData()
	}
}

// startData begins moving a send or RDMA-write descriptor onto the wire
// as MTU fragments, translating and DMAing each. Packet headers and
// payload snapshots come from the system's free lists; the receive engine
// recycles them once a packet can no longer be referenced.
func (sm *sendMachine) startData() (sim.Duration, int) {
	n := sm.n
	m := n.model
	vi, d := sm.db.vi, sm.db.desc
	sm.conn = vi.conn
	runs, err := resolveSegs(n.host.AS, d.Segs)
	if err != nil {
		n.completeSend(vi, d, StatusProtectionError, 0)
		return sm.finish()
	}
	sm.runs = runs
	sm.total = totalLen(runs)
	sm.frags = nicsim.Fragments(sm.total, m.WireMTU)
	n.nextMsgID++
	sm.msgID = n.nextMsgID
	sm.reliable = vi.attrs.Reliability.Reliable()
	sm.fi = 0
	sm.lastTx = 0
	return m.PerFragment, sFragDone
}

// emitFrag snapshots and transmits the current fragment, then advances
// the fragment loop; after the last fragment it arms the retransmission
// timer (reliable) or schedules the completion write (unreliable).
func (sm *sendMachine) emitFrag() (sim.Duration, int) {
	n := sm.n
	m := n.model
	sys := n.host.sys
	vi, d := sm.db.vi, sm.db.desc
	conn := sm.conn
	f := sm.frags[sm.fi]
	data := sys.bufs.Get(f.Size)
	gather(sm.runs, f.Offset, data)
	pkt := sys.getPkt()
	pkt.kind = pktData
	pkt.srcVi = vi.id
	pkt.dstVi = conn.peerVi
	pkt.msgID = sm.msgID
	pkt.frag = f
	pkt.msgTotal = sm.total
	pkt.data = data
	if d.Op == OpRdmaWrite {
		pkt.kind = pktRdmaWrite
		pkt.remoteAddr = d.Remote.Addr
		pkt.remoteHandle = d.Remote.Handle
	}
	if d.HasImmediate && f.Last {
		pkt.immediate, pkt.hasImmediate = d.ImmediateData, true
	}
	pkt.span = d.span
	if sm.reliable {
		ref := &sendRef{vi: vi, total: sm.total, pkt: pkt}
		if f.Last {
			ref.desc = d
		}
		pend := conn.window.Add(ref, sm.now())
		pkt.seq, pkt.hasSeq = pend.Seq, true
	}
	sm.lastTx = n.send(pkt, conn.peerNode)

	sm.fi++
	if sm.fi < len(sm.frags) {
		return m.PerFragment, sFragDone
	}
	if sm.reliable {
		n.armRTO(vi)
		return sm.finish()
	}
	// Unreliable sends complete once the final fragment has left the
	// adapter and the NIC has written the status back.
	total := sm.total
	doneAt := sm.lastTx.Add(m.CompletionWrite)
	n.host.sys.Eng.At(doneAt, func() {
		n.completeSend(vi, d, StatusSuccess, total)
	})
	return sm.finish()
}

// startReadRequest begins an RDMA read: a small request packet; the data
// comes back as read-response packets handled by the receive engine.
func (sm *sendMachine) startReadRequest() (sim.Duration, int) {
	n := sm.n
	vi, d := sm.db.vi, sm.db.desc
	sm.conn = vi.conn
	runs, err := resolveSegs(n.host.AS, d.Segs)
	if err != nil {
		n.completeSend(vi, d, StatusProtectionError, 0)
		return sm.finish()
	}
	sm.runs = runs
	return n.model.PerFragment, sReadFragDone
}

func (sm *sendMachine) readRequestOut() (sim.Duration, int) {
	n := sm.n
	m := n.model
	vi, d := sm.db.vi, sm.db.desc
	conn := sm.conn
	n.BusyFrag += m.PerFragment
	d.span.add(phaseFrag, m.PerFragment, sm.now())
	n.FragsSent++
	n.nextReadID++
	id := n.nextReadID
	conn.outstandingReads[id] = &readState{desc: d, runs: sm.runs}
	pkt := &wirePacket{
		kind:         pktRdmaReadReq,
		srcVi:        vi.id,
		dstVi:        conn.peerVi,
		readReq:      id,
		msgTotal:     totalLen(sm.runs),
		remoteAddr:   d.Remote.Addr,
		remoteHandle: d.Remote.Handle,
		span:         d.span,
	}
	pend := conn.window.Add(&sendRef{vi: vi, pkt: pkt}, sm.now())
	pkt.seq, pkt.hasSeq = pend.Seq, true
	n.send(pkt, conn.peerNode)
	n.armRTO(vi)
	return sm.finish()
}

// completeSend finishes a send-queue descriptor exactly once.
func (n *Nic) completeSend(vi *Vi, d *Descriptor, st Status, length int) {
	if d.done {
		return
	}
	vi.sendQ.complete(d, st, length)
}

// --- Receive engine ---

// recvMachine states. The *Done names label segments after a sleep; the
// remaining names label join points that an acknowledgment sub-chain
// (ackThen) returns to, reached with or without the ack sleep.
const (
	rDataFragDone  = iota // pktData: after the fragment receive cost
	rDataDelivered        // past the reliable-delivery ack
	rDataStallDone        // after an injected DMA stall
	rDataXlateDone        // after translation
	rDataDMADone          // after the DMA transfer
	rDataStored           // DMA block complete; maybe ack reception
	rDataFinish           // past the reliable-reception ack

	rWriteFragDone // pktRdmaWrite: after the fragment receive cost
	rWriteDelivered
	rWriteStallDone
	rWriteXlateDone
	rWriteDMADone
	rWriteStored
	rWriteFinish

	rReadReqFragDone // pktRdmaReadReq: after the fragment receive cost
	rReadReqAcked    // past the request ack
	rReqFragDone     // response loop: after a fragment's per-fragment cost
	rReqStallDone
	rReqXlateDone
	rReqDMADone

	rReadRespFragDone // pktRdmaReadResp: after the fragment receive cost
	rReadRespAcked
	rRespStallDone
	rRespXlateDone
	rRespDMADone
	rRespStored

	rAckProcDone    // pktAck: after ack processing
	rErrAckProcDone // pktErrAck: after error-ack processing

	rAckSent // sendAck sub-chain: the ack sleep ended, emit the ack
	rDone    // common tail: recycle the packet, pop the next delivery
)

// recvMachine is the NIC's receive processor: it drains the fabric inbox
// and dispatches by packet kind. Deliveries are recycled as soon as their
// fields are read; packets are recycled after handling unless they carry a
// reliability sequence (a sequenced packet is still referenced by the
// sender's retransmission window, which may resend the very same object
// and payload, so only the sender forgetting it could ever free it —
// letting the GC handle that case keeps aliasing impossible).
type recvMachine struct {
	n *Nic

	src    fabric.NodeID
	pkt    *wirePacket
	shared bool
	sp     *msgSpan

	vi   *Vi
	conn *connState

	// sendAck sub-chain: the cumulative sequence captured before the ack
	// processing sleep, and the state to continue at once it is sent.
	ackCum uint64
	ackRet int

	// data-path reassembly state.
	msgDone  bool
	rsp      *msgSpan
	tailCopy sim.Duration
	xd, dd   sim.Duration

	// RDMA write state.
	addr  vmem.Addr
	wdata []byte
	wrun  []segRun

	// RDMA read service state (responder side).
	runs  []segRun
	frags []nicsim.Fragment
	fi    int

	// RDMA read completion state (requester side).
	rs *readState
}

func (rm *recvMachine) now() sim.Time { return rm.n.host.sys.Eng.Now() }

// tail is the end of the engine loop body for the current packet.
func (rm *recvMachine) tail() (sim.Duration, int) {
	pkt := rm.pkt
	if !pkt.hasSeq && !rm.shared {
		rm.n.host.sys.recyclePkt(pkt)
	}
	rm.pkt = nil
	rm.sp = nil
	rm.vi = nil
	rm.conn = nil
	rm.rsp = nil
	rm.wdata = nil
	rm.wrun = nil
	rm.runs = nil
	rm.frags = nil
	rm.rs = nil
	return 0, sim.StepDone
}

// Begin consumes one fabric delivery and routes it by packet kind.
func (rm *recvMachine) Begin(del *fabric.Delivery) (sim.Duration, int) {
	n := rm.n
	net := n.host.sys.Net
	eng := n.host.sys.Eng
	m := n.model
	src := del.Src
	pkt := del.Payload.(*wirePacket)
	// A fault-duplicated delivery aliases the same wirePacket as its
	// sibling copy, so shared packets are never recycled (the GC
	// reclaims them); aliasing a recycled header would corrupt an
	// unrelated transfer.
	corrupted, shared := del.Corrupted, del.Shared
	net.Recycle(del)
	rm.src, rm.pkt, rm.shared = src, pkt, shared
	if corrupted {
		// The frame check failed in flight: the NIC discards the
		// frame before any protocol processing, exactly like a real
		// CRC drop. Reliable senders retransmit; unreliable messages
		// lose the fragment silently.
		n.CorruptDrops++
		if !pkt.hasSeq && !shared {
			n.host.sys.recyclePkt(pkt)
		}
		rm.pkt = nil
		return 0, sim.StepDone
	}
	if eng.Tracing() {
		eng.Tracef("nic%d: rx kind=%d from=%d vi=%d msg=%d frag=%d+%d", n.host.id, pkt.kind, src, pkt.dstVi, pkt.msgID, pkt.frag.Offset, pkt.frag.Size)
	}
	switch pkt.kind {
	case pktData:
		rm.sp = pkt.span
		rm.sp.add(phaseWire, eng.Now().Sub(pkt.sentAt), eng.Now())
		return m.PerFragmentRecv, rDataFragDone
	case pktRdmaWrite:
		rm.sp = pkt.span
		rm.sp.add(phaseWire, eng.Now().Sub(pkt.sentAt), eng.Now())
		return m.PerFragmentRecv, rWriteFragDone
	case pktRdmaReadReq:
		rm.sp = pkt.span
		rm.sp.add(phaseWire, eng.Now().Sub(pkt.sentAt), eng.Now())
		return m.PerFragmentRecv, rReadReqFragDone
	case pktRdmaReadResp:
		rm.sp = pkt.span
		rm.sp.add(phaseWire, eng.Now().Sub(pkt.sentAt), eng.Now())
		return m.PerFragmentRecv, rReadRespFragDone
	case pktAck:
		return m.AckProcessing, rAckProcDone
	case pktErrAck:
		return m.AckProcessing, rErrAckProcDone
	case pktConnReq:
		n.pendingConns = append(n.pendingConns, &ConnRequest{
			nic:         n,
			disc:        pkt.disc,
			clientNode:  src,
			clientVi:    pkt.srcVi,
			reliability: pkt.reliability,
		})
		n.connArrived.Broadcast()
	case pktConnAccept:
		if vi := n.vis[pkt.dstVi]; vi != nil && vi.state == ViIdle {
			vi.conn = newConnState(n.model, src, pkt.srcVi)
			vi.state = ViConnected
			vi.connAccepted = true
			vi.connReply.Broadcast()
		}
	case pktConnReject:
		if vi := n.vis[pkt.dstVi]; vi != nil && vi.state == ViIdle {
			vi.connRejected = true
			vi.connReply.Broadcast()
		}
	case pktDisconnect:
		if vi := n.vis[pkt.dstVi]; vi != nil && vi.state == ViConnected &&
			vi.conn.peerNode == src && vi.conn.peerVi == pkt.srcVi {
			vi.teardown(ViDisconnected)
		}
	}
	return rm.tail()
}

// lookup validates that the packet targets a live connection from the
// claimed source (lookupVi) and captures vi/conn for the rest of the
// chain; false means the packet is dropped (the caller tails out).
func (rm *recvMachine) lookup() bool {
	vi := rm.n.lookupVi(rm.src, rm.pkt)
	if vi == nil {
		return false
	}
	rm.vi = vi
	rm.conn = vi.conn
	return true
}

// seqKept runs receiver-side reliability for a data-path packet:
// duplicates are re-acked (the ack sub-chain continuing at rDone) and
// dropped, gaps are dropped silently (the sender retransmits). handled
// reports that the packet's fate is already decided, with the
// continuation to return.
func (rm *recvMachine) seqKept() (d sim.Duration, next int, handled bool) {
	vi, pkt := rm.vi, rm.pkt
	if !vi.attrs.Reliability.Reliable() || !pkt.hasSeq {
		return 0, 0, false
	}
	accept, dup := vi.conn.recvSeq.Accept(pkt.seq)
	if dup {
		d, next = rm.ackThen(rDone)
		return d, next, true
	}
	if !accept {
		d, next = rm.tail()
		return d, next, true
	}
	return 0, 0, false
}

// ackThen starts the cumulative-acknowledgment sub-chain and continues at
// ret once the ack is on the wire; when there is nothing to acknowledge
// it falls straight through to ret, like the old sendAck's early return.
func (rm *recvMachine) ackThen(ret int) (sim.Duration, int) {
	cum, ok := rm.vi.conn.recvSeq.CumAck()
	if !ok {
		return rm.Step(ret)
	}
	rm.ackCum = cum
	rm.ackRet = ret
	return rm.n.model.AckProcessing, rAckSent
}

func (rm *recvMachine) Step(pc int) (sim.Duration, int) {
	n := rm.n
	m := n.model
	pkt := rm.pkt
	switch pc {
	case rAckSent:
		vi := rm.vi
		n.BusyAck += m.AckProcessing
		n.AcksSent++
		n.send(&wirePacket{
			kind:   pktAck,
			srcVi:  vi.id,
			dstVi:  vi.conn.peerVi,
			ackSeq: rm.ackCum,
		}, vi.conn.peerNode)
		return rm.Step(rm.ackRet)

	case rDone:
		return rm.tail()

	// --- pktData ---

	case rDataFragDone:
		n.BusyFrag += m.PerFragmentRecv
		rm.sp.add(phaseReassembly, m.PerFragmentRecv, rm.now())
		n.FragsRecv++
		if !rm.lookup() {
			return rm.tail()
		}
		if d, next, handled := rm.seqKept(); handled {
			return d, next
		}
		// Reliable Delivery acknowledges on arrival at the NIC; Reliable
		// Reception only after the data is in host memory.
		if rm.vi.attrs.Reliability == ReliableDelivery {
			return rm.ackThen(rDataDelivered)
		}
		return rm.Step(rDataDelivered)

	case rDataDelivered:
		vi, conn := rm.vi, rm.conn
		if conn.dropping {
			if pkt.msgID == conn.dropMsgID {
				if pkt.frag.Last {
					conn.dropping = false
				}
				if vi.attrs.Reliability == ReliableReception {
					return rm.ackThen(rDone)
				}
				return rm.tail()
			}
			// A new message begins; the dropped one's tail never arrived.
			conn.dropping = false
		}

		if conn.curRecv == nil {
			d := vi.recvQ.consume()
			if d == nil {
				n.DroppedNoDesc++
				if vi.attrs.Reliability.Reliable() {
					// A reliable connection with no posted descriptor is a
					// fatal application error per the VIA spec: the
					// connection breaks.
					n.failConn(vi)
					return rm.tail()
				}
				conn.dropping = true
				conn.dropMsgID = pkt.msgID
				if pkt.frag.Last {
					conn.dropping = false
				}
				return rm.tail()
			}
			runs, err := resolveSegs(n.host.AS, d.Segs)
			if err != nil || pkt.msgTotal > totalLen(runs) {
				st := StatusLengthError
				if err != nil {
					st = StatusProtectionError
				}
				n.finishRecv(vi, d, st, pkt.msgTotal, 0)
				conn.dropping = true
				conn.dropMsgID = pkt.msgID
				if pkt.frag.Last {
					conn.dropping = false
				}
				if vi.attrs.Reliability == ReliableReception {
					return rm.ackThen(rDone)
				}
				return rm.tail()
			}
			if t := n.host.sys.spans; t != nil {
				d.span = t.open(pathRecv, int(n.host.id), pkt.msgTotal, rm.now())
			}
			conn.curRecv, conn.curRecvRuns = d, runs
		}
		rm.rsp = conn.curRecv.span

		done, ok := conn.reasm.Accept(pkt.msgID, pkt.frag, pkt.msgTotal)
		rm.msgDone = done
		rm.tailCopy = 0
		if ok && pkt.frag.Size > 0 {
			if d := n.stallD(fault.SiteDMA); d > 0 {
				return d, rDataStallDone
			}
			return rm.Step(rDataStallDone)
		}
		return rm.Step(rDataStored)

	case rDataStallDone:
		rm.sp.mark(phaseDMA, rm.now())
		rm.rsp.mark(phaseReassembly, rm.now()) // inter-fragment wait + stall on the recv side
		rm.xd = n.xlateCost(pagesIn(rm.conn.curRecvRuns, pkt.frag.Offset, pkt.frag.Size))
		return rm.xd, rDataXlateDone

	case rDataXlateDone:
		n.BusyXlate += rm.xd
		rm.sp.add(phaseXlate, rm.xd, rm.now())
		rm.rsp.add(phaseXlate, rm.xd, rm.now())
		rm.dd = sim.Duration(pkt.frag.Size) * m.DMAPerByte
		return rm.dd, rDataDMADone

	case rDataDMADone:
		n.BusyDMA += rm.dd
		rm.sp.add(phaseDMA, rm.dd, rm.now())
		rm.rsp.add(phaseDMA, rm.dd, rm.now())
		n.DMABytesIn += uint64(pkt.frag.Size)
		scatter(rm.conn.curRecvRuns, pkt.frag.Offset, pkt.data)
		if m.HostCopies {
			// Kernel-emulated VIA (M-VIA) copies each arriving fragment
			// from the kernel buffer to the user buffer. The copy burns
			// host CPU concurrently with the NIC handling the next
			// fragment; only the final fragment's copy delays the
			// application-visible completion.
			rm.tailCopy = sim.Duration(pkt.frag.Size) * m.CopyPerByte
			n.host.CPU.Charge(rm.tailCopy)
		}
		return rm.Step(rDataStored)

	case rDataStored:
		if rm.vi.attrs.Reliability == ReliableReception {
			return rm.ackThen(rDataFinish)
		}
		return rm.Step(rDataFinish)

	case rDataFinish:
		vi, conn := rm.vi, rm.conn
		if rm.msgDone {
			d := conn.curRecv
			conn.curRecv, conn.curRecvRuns = nil, nil
			if pkt.hasImmediate {
				d.Immediate, d.GotImmediate = pkt.immediate, true
			}
			n.finishRecv(vi, d, StatusSuccess, pkt.msgTotal, rm.tailCopy)
		}
		return rm.tail()
	}
	return rm.step2(pc)
}

// step2 continues Step for the RDMA and acknowledgment states (split only
// to keep each switch readable).
func (rm *recvMachine) step2(pc int) (sim.Duration, int) {
	n := rm.n
	m := n.model
	pkt := rm.pkt
	switch pc {

	// --- pktRdmaWrite ---

	case rWriteFragDone:
		n.BusyFrag += m.PerFragmentRecv
		rm.sp.add(phaseReassembly, m.PerFragmentRecv, rm.now())
		n.FragsRecv++
		if !rm.lookup() {
			return rm.tail()
		}
		if d, next, handled := rm.seqKept(); handled {
			return d, next
		}
		// Validate the remote range before acknowledging anything: a
		// protection error must surface as an error, not a successful
		// delivery ack.
		vi, conn := rm.vi, rm.conn
		rm.addr = pkt.remoteAddr.Advance(pkt.frag.Offset)
		if !n.checkRemote(rm.addr, pkt.frag.Size, pkt.remoteHandle) {
			if vi.attrs.Reliability.Reliable() {
				n.send(&wirePacket{
					kind:   pktErrAck,
					srcVi:  vi.id,
					dstVi:  conn.peerVi,
					errSts: StatusRdmaProtError,
					errMsg: pkt.msgID,
				}, conn.peerNode)
			}
			return rm.tail()
		}
		if vi.attrs.Reliability == ReliableDelivery {
			return rm.ackThen(rWriteDelivered)
		}
		return rm.Step(rWriteDelivered)

	case rWriteDelivered:
		done, ok := rm.conn.rdmaReasm.Accept(pkt.msgID, pkt.frag, pkt.msgTotal)
		rm.msgDone = done
		if ok && pkt.frag.Size > 0 {
			data, err := n.host.AS.Resolve(rm.addr, pkt.frag.Size)
			if err == nil {
				rm.wdata = data
				rm.wrun = []segRun{{addr: rm.addr, data: data}}
				if d := n.stallD(fault.SiteDMA); d > 0 {
					return d, rWriteStallDone
				}
				return rm.Step(rWriteStallDone)
			}
		}
		return rm.Step(rWriteStored)

	case rWriteStallDone:
		rm.sp.mark(phaseDMA, rm.now())
		rm.xd = n.xlateCost(pagesIn(rm.wrun, 0, pkt.frag.Size))
		return rm.xd, rWriteXlateDone

	case rWriteXlateDone:
		n.BusyXlate += rm.xd
		rm.sp.add(phaseXlate, rm.xd, rm.now())
		rm.dd = sim.Duration(pkt.frag.Size) * m.DMAPerByte
		return rm.dd, rWriteDMADone

	case rWriteDMADone:
		n.BusyDMA += rm.dd
		rm.sp.add(phaseDMA, rm.dd, rm.now())
		n.DMABytesIn += uint64(pkt.frag.Size)
		copy(rm.wdata, pkt.data)
		return rm.Step(rWriteStored)

	case rWriteStored:
		if rm.vi.attrs.Reliability == ReliableReception {
			return rm.ackThen(rWriteFinish)
		}
		return rm.Step(rWriteFinish)

	case rWriteFinish:
		vi := rm.vi
		if rm.msgDone && pkt.hasImmediate {
			// RDMA write with immediate data consumes a receive descriptor.
			d := vi.recvQ.consume()
			if d == nil {
				n.DroppedNoDesc++
				if vi.attrs.Reliability.Reliable() {
					n.failConn(vi)
				}
				return rm.tail()
			}
			d.Immediate, d.GotImmediate = pkt.immediate, true
			n.finishRecv(vi, d, StatusSuccess, pkt.msgTotal, 0)
		}
		return rm.tail()

	// --- pktRdmaReadReq ---

	case rReadReqFragDone:
		n.BusyFrag += m.PerFragmentRecv
		rm.sp.add(phaseReassembly, m.PerFragmentRecv, rm.now())
		if !rm.lookup() {
			return rm.tail()
		}
		if d, next, handled := rm.seqKept(); handled {
			return d, next
		}
		return rm.ackThen(rReadReqAcked) // ack the request packet itself

	case rReadReqAcked:
		vi, conn := rm.vi, rm.conn
		if !n.checkRemote(pkt.remoteAddr, pkt.msgTotal, pkt.remoteHandle) {
			n.send(&wirePacket{
				kind:    pktErrAck,
				srcVi:   vi.id,
				dstVi:   conn.peerVi,
				errSts:  StatusRdmaProtError,
				readReq: pkt.readReq,
			}, conn.peerNode)
			return rm.tail()
		}
		// Stream the data back as read-response fragments on this NIC's
		// send direction of the connection.
		data, err := n.host.AS.Resolve(pkt.remoteAddr, pkt.msgTotal)
		if err != nil {
			return rm.tail()
		}
		rm.runs = []segRun{{addr: pkt.remoteAddr, data: data}}
		rm.frags = nicsim.Fragments(pkt.msgTotal, m.WireMTU)
		rm.fi = 0
		return m.PerFragment, rReqFragDone

	case rReqFragDone:
		f := rm.frags[rm.fi]
		n.BusyFrag += m.PerFragment
		rm.sp.add(phaseFrag, m.PerFragment, rm.now())
		n.FragsSent++
		if f.Size > 0 {
			if d := n.stallD(fault.SiteDMA); d > 0 {
				return d, rReqStallDone
			}
			return rm.Step(rReqStallDone)
		}
		return rm.emitReadResp()

	case rReqStallDone:
		f := rm.frags[rm.fi]
		rm.sp.mark(phaseDMA, rm.now())
		rm.xd = n.xlateCost(pagesIn(rm.runs, f.Offset, f.Size))
		return rm.xd, rReqXlateDone

	case rReqXlateDone:
		f := rm.frags[rm.fi]
		n.BusyXlate += rm.xd
		rm.sp.add(phaseXlate, rm.xd, rm.now())
		rm.dd = sim.Duration(f.Size) * m.DMAPerByte
		return rm.dd, rReqDMADone

	case rReqDMADone:
		f := rm.frags[rm.fi]
		n.BusyDMA += rm.dd
		rm.sp.add(phaseDMA, rm.dd, rm.now())
		n.DMABytesOut += uint64(f.Size)
		return rm.emitReadResp()

	// --- pktRdmaReadResp ---

	case rReadRespFragDone:
		n.BusyFrag += m.PerFragmentRecv
		rm.sp.add(phaseReassembly, m.PerFragmentRecv, rm.now())
		n.FragsRecv++
		if !rm.lookup() {
			return rm.tail()
		}
		if d, next, handled := rm.seqKept(); handled {
			return d, next
		}
		return rm.ackThen(rReadRespAcked)

	case rReadRespAcked:
		conn := rm.conn
		rs := conn.outstandingReads[pkt.readReq]
		if rs == nil {
			return rm.tail()
		}
		rm.rs = rs
		done, ok := conn.readReasm.Accept(pkt.readReq, pkt.frag, pkt.msgTotal)
		rm.msgDone = done
		if ok && pkt.frag.Size > 0 {
			if d := n.stallD(fault.SiteDMA); d > 0 {
				return d, rRespStallDone
			}
			return rm.Step(rRespStallDone)
		}
		return rm.Step(rRespStored)

	case rRespStallDone:
		rm.sp.mark(phaseDMA, rm.now())
		rm.xd = n.xlateCost(pagesIn(rm.rs.runs, pkt.frag.Offset, pkt.frag.Size))
		return rm.xd, rRespXlateDone

	case rRespXlateDone:
		n.BusyXlate += rm.xd
		rm.sp.add(phaseXlate, rm.xd, rm.now())
		rm.dd = sim.Duration(pkt.frag.Size) * m.DMAPerByte
		return rm.dd, rRespDMADone

	case rRespDMADone:
		n.BusyDMA += rm.dd
		rm.sp.add(phaseDMA, rm.dd, rm.now())
		n.DMABytesIn += uint64(pkt.frag.Size)
		scatter(rm.rs.runs, pkt.frag.Offset, pkt.data)
		return rm.Step(rRespStored)

	case rRespStored:
		if rm.msgDone {
			delete(rm.conn.outstandingReads, pkt.readReq)
			n.completeSend(rm.vi, rm.rs.desc, StatusSuccess, pkt.msgTotal)
		}
		return rm.tail()

	// --- pktAck / pktErrAck ---

	case rAckProcDone:
		n.BusyAck += m.AckProcessing
		n.AcksRecv++
		if !rm.lookup() {
			return rm.tail()
		}
		conn := rm.conn
		for _, pend := range conn.window.Ack(pkt.ackSeq) {
			// Karn's algorithm: only never-retransmitted packets yield RTT
			// samples, so a retransmission's ack cannot be mis-attributed.
			if conn.rto.Adaptive && pend.Retries == 0 {
				conn.rto.Sample(rm.now().Sub(pend.SentAt))
			}
			ref := pend.Item.(*sendRef)
			if ref.desc != nil {
				n.completeSend(ref.vi, ref.desc, StatusSuccess, ref.total)
			}
		}
		return rm.tail()

	case rErrAckProcDone:
		n.BusyAck += m.AckProcessing
		if !rm.lookup() {
			return rm.tail()
		}
		vi, conn := rm.vi, rm.conn
		if pkt.readReq != 0 {
			if rs := conn.outstandingReads[pkt.readReq]; rs != nil {
				delete(conn.outstandingReads, pkt.readReq)
				n.completeSend(vi, rs.desc, pkt.errSts, 0)
			}
		} else {
			conn.window.ForEachUnacked(func(pend *nicsim.Pending) bool {
				ref := pend.Item.(*sendRef)
				if ref.desc != nil && ref.pkt.msgID == pkt.errMsg {
					n.completeSend(vi, ref.desc, pkt.errSts, 0)
				}
				return true
			})
		}
		// A protection error on a reliable connection is fatal: the VIA
		// transitions the connection to the error state.
		n.failConn(vi)
		return rm.tail()
	}
	panic("via: recvMachine: bad state")
}

// emitReadResp snapshots and transmits the current read-response
// fragment, advancing the responder's fragment loop; after the last
// fragment it arms the retransmission timer.
func (rm *recvMachine) emitReadResp() (sim.Duration, int) {
	n := rm.n
	m := n.model
	sys := n.host.sys
	vi, conn, pkt := rm.vi, rm.conn, rm.pkt
	f := rm.frags[rm.fi]
	buf := sys.bufs.Get(f.Size)
	gather(rm.runs, f.Offset, buf)
	resp := sys.getPkt()
	resp.kind = pktRdmaReadResp
	resp.srcVi = vi.id
	resp.dstVi = conn.peerVi
	resp.readReq = pkt.readReq
	resp.frag = f
	resp.msgTotal = pkt.msgTotal
	resp.data = buf
	resp.span = rm.sp // the requester's span rides back on the response
	pend := conn.window.Add(&sendRef{vi: vi, pkt: resp}, rm.now())
	resp.seq, resp.hasSeq = pend.Seq, true
	n.send(resp, conn.peerNode)

	rm.fi++
	if rm.fi < len(rm.frags) {
		return m.PerFragment, rReqFragDone
	}
	n.armRTO(vi)
	return rm.tail()
}

// lookupVi validates that an inbound data-path packet targets a live
// connection from the claimed source.
func (n *Nic) lookupVi(src fabric.NodeID, pkt *wirePacket) *Vi {
	vi := n.vis[pkt.dstVi]
	if vi == nil || vi.state != ViConnected || vi.conn.peerNode != src || vi.conn.peerVi != pkt.srcVi {
		return nil
	}
	return vi
}

// finishRecv completes a receive descriptor, optionally delayed (the
// kernel copy of the final fragment on host-copy providers).
func (n *Nic) finishRecv(vi *Vi, d *Descriptor, st Status, length int, delay sim.Duration) {
	if delay > 0 {
		n.host.sys.Eng.After(delay, func() {
			if !d.done {
				vi.recvQ.complete(d, st, length)
			}
		})
		return
	}
	if !d.done {
		vi.recvQ.complete(d, st, length)
	}
}

// failConn breaks a connection: outstanding work completes with transport
// errors, remaining queued work flushes, the VI enters the error state,
// the peer is told to tear down, and the NIC's asynchronous error handler
// (the VipErrorCallback analogue) fires exactly once.
func (n *Nic) failConn(vi *Vi) {
	if vi.state != ViConnected {
		return // already failed or torn down; the callback must not refire
	}
	conn := vi.conn
	conn.window.ForEachUnacked(func(pend *nicsim.Pending) bool {
		ref := pend.Item.(*sendRef)
		if ref.desc != nil {
			n.completeSend(vi, ref.desc, StatusTransportError, 0)
		}
		return true
	})
	for id, rs := range conn.outstandingReads {
		delete(conn.outstandingReads, id)
		n.completeSend(vi, rs.desc, StatusTransportError, 0)
	}
	peerNode, peerVi := conn.peerNode, conn.peerVi
	srcVi := vi.id
	vi.teardown(ViError)
	n.sendCtl(&wirePacket{kind: pktDisconnect, srcVi: srcVi, dstVi: peerVi}, peerNode)
	n.fireError(vi, StatusTransportError)
}

// --- Retransmission ---

// armRTO schedules a retransmission check for the VI's window if one is
// not already pending, at the policy's current timeout.
func (n *Nic) armRTO(vi *Vi) {
	if vi.conn == nil {
		return
	}
	n.armRTOAfter(vi, vi.conn.rto.Timeout())
}

func (n *Nic) armRTOAfter(vi *Vi, d sim.Duration) {
	conn := vi.conn
	if conn == nil || conn.rtoArmed {
		return
	}
	conn.rtoArmed = true
	n.host.sys.Eng.After(d, func() { n.rtoFire(vi) })
}

func (n *Nic) rtoFire(vi *Vi) {
	conn := vi.conn
	if conn == nil {
		return
	}
	conn.rtoArmed = false
	if vi.state != ViConnected || conn.window.Outstanding() == 0 {
		return
	}
	eng := n.host.sys.Eng
	oldest := conn.window.Oldest()
	if age := eng.Now().Sub(oldest.SentAt); age < conn.rto.Timeout() {
		// Acks have been flowing; check again when the oldest packet
		// actually times out.
		conn.rtoArmed = true
		eng.After(conn.rto.Timeout()-age, func() { n.rtoFire(vi) })
		return
	}
	// Give up only after MaxRetries consecutive timeouts with no forward
	// progress of the oldest unacked sequence; otherwise a long
	// recovering window would accumulate spurious retry counts. This is
	// retransmission exhaustion: in-flight work completes with
	// StatusTransportError and the VI enters the error state.
	if conn.rto.Stalled(oldest.Seq) {
		n.failConn(vi)
		return
	}
	// Go-back-N, paced: resend at most a burst's worth per timeout so a
	// large in-flight window does not flood the wire (and re-time-out on
	// its own retransmissions).
	const resendBurst = 32
	resent := 0
	conn.window.ForEachUnacked(func(pend *nicsim.Pending) bool {
		if resent >= resendBurst {
			return false
		}
		pend.SentAt = eng.Now()
		pend.Retries++
		conn.window.Retransmits++
		ref := pend.Item.(*sendRef)
		n.send(ref.pkt, conn.peerNode)
		resent++
		return true
	})
	// Exponential backoff while the oldest sequence makes no progress:
	// under heavy queueing the true round trip dwarfs the base timeout,
	// and retransmitting at the base rate would congest the link with
	// duplicates faster than it drains.
	n.armRTOAfter(vi, conn.rto.Backoff())
}
