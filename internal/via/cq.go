package via

import "vibe/internal/sim"

// Completion is one completion-queue entry: which VI completed a
// descriptor and on which of its work queues. Per the VIA model, the
// consumer then dequeues the descriptor from that work queue.
type Completion struct {
	Vi     *Vi
	IsRecv bool
}

// CQ is a completion queue. Work queues of any number of VIs may be
// associated with it at VI-creation time; each descriptor completion on an
// associated queue appends an entry here, so one poll or wait covers many
// VIs.
type CQ struct {
	nic       *Nic
	depth     int
	entries   []Completion
	sig       *sim.Signal
	destroyed bool

	// Overflows counts completions that arrived with the CQ full. VIA
	// declares this a catastrophic application error; the simulation
	// counts and drops.
	Overflows uint64
}

// Destroy releases the CQ, mirroring VipDestroyCQ. Associated VIs must
// already be destroyed; the caller is responsible for ordering (as in
// VIPL, misuse is an application bug).
func (q *CQ) Destroy(ctx *Ctx) error {
	if q.destroyed {
		return ErrDestroyed
	}
	ctx.use(q.nic.model.CqDestroy)
	q.destroyed = true
	q.entries = nil
	return nil
}

// push appends a completion entry (engine side).
func (q *CQ) push(c Completion) {
	if q.destroyed {
		return
	}
	if len(q.entries) >= q.depth {
		q.Overflows++
		return
	}
	q.entries = append(q.entries, c)
	q.sig.Broadcast()
}

// Done polls the CQ once, mirroring VipCQDone: if an entry is available it
// is dequeued and returned with ok=true. Each call costs one CQ check.
func (q *CQ) Done(ctx *Ctx) (Completion, bool) {
	ctx.use(q.nic.model.CheckCost + q.nic.model.CqCheckExtra)
	return q.take()
}

// WaitPoll spins until an entry is available, burning CPU the whole time
// (the simulated equivalent of a VipCQDone polling loop), then dequeues
// it. The check cost is paid at detection: it is the reaction time between
// the completion landing and the polling loop observing it, which is what
// makes CQ-based completion measurably slower than direct work-queue
// polling on providers with expensive CQ checks.
func (q *CQ) WaitPoll(ctx *Ctx) (Completion, error) {
	m := q.nic.model
	for {
		if len(q.entries) > 0 {
			ctx.use(m.CheckCost + m.CqCheckExtra)
			c, _ := q.take()
			return c, nil
		}
		if q.destroyed {
			return Completion{}, ErrDestroyed
		}
		ctx.Host.CPU.SpinWait(ctx.P, q.sig)
	}
}

// Wait blocks (CPU idle) until an entry is available or timeout elapses,
// mirroring VipCQWait. Waking costs the provider's interrupt/wakeup price
// plus the CQ check.
func (q *CQ) Wait(ctx *Ctx, timeout sim.Duration) (Completion, error) {
	m := q.nic.model
	deadline := ctx.Now().Add(timeout)
	for {
		if len(q.entries) > 0 {
			ctx.use(m.CheckCost + m.CqCheckExtra)
			c, _ := q.take()
			return c, nil
		}
		if q.destroyed {
			return Completion{}, ErrDestroyed
		}
		remain := deadline.Sub(ctx.Now())
		if remain <= 0 {
			return Completion{}, ErrTimeout
		}
		if !ctx.Host.CPU.BlockWaitTimeout(ctx.P, q.sig, remain, m.BlockWakeCost) {
			return Completion{}, ErrTimeout
		}
	}
}

// WaitBlockForever blocks with the CPU idle until an entry arrives, with
// no deadline and no polling events: the right primitive for service
// daemons that must not keep the simulation alive while idle. It returns
// ErrDestroyed if the CQ is destroyed.
func (q *CQ) WaitBlockForever(ctx *Ctx) (Completion, error) {
	m := q.nic.model
	for {
		if len(q.entries) > 0 {
			ctx.use(m.CheckCost + m.CqCheckExtra)
			c, _ := q.take()
			return c, nil
		}
		if q.destroyed {
			return Completion{}, ErrDestroyed
		}
		ctx.Host.CPU.BlockWait(ctx.P, q.sig, m.BlockWakeCost)
	}
}

func (q *CQ) take() (Completion, bool) {
	if len(q.entries) == 0 {
		return Completion{}, false
	}
	c := q.entries[0]
	q.entries = q.entries[1:]
	return c, true
}

// Len reports queued completions (for tests).
func (q *CQ) Len() int { return len(q.entries) }
