package via

import (
	"errors"
	"fmt"
	"testing"

	"vibe/internal/fabric"
	"vibe/internal/provider"
	"vibe/internal/sim"
)

// --- failure-injection soak: random loss on reliable connections ---

func TestReliableSoakUnderRandomLoss(t *testing.T) {
	// 5% random packet loss in both directions; a reliable connection
	// must deliver every message intact and in order.
	const msgs = 40
	sizes := []int{4, 1500, 4096, 12000, 20000}
	m := provider.CLAN()
	m.Network.DropRate = 0.05
	attrs := ViAttributes{Reliability: ReliableDelivery}

	var received int
	env := newPair(t, m, attrs,
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			buf := ctx.Malloc(20000)
			h, _ := nic.RegisterMem(ctx, buf)
			for i := 0; i < msgs; i++ {
				n := sizes[i%len(sizes)]
				buf.FillPattern(byte(i))
				if err := vi.PostSend(ctx, SimpleSend(buf, h, n)); err != nil {
					t.Errorf("post %d: %v", i, err)
					return
				}
				d, err := vi.SendWaitPoll(ctx)
				if err != nil || d.Status != StatusSuccess {
					t.Errorf("send %d: %v %v", i, err, d)
					return
				}
			}
		},
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			buf := ctx.Malloc(20000)
			h, _ := nic.RegisterMem(ctx, buf)
			for i := 0; i < msgs; i++ {
				if err := vi.PostRecv(ctx, SimpleRecv(buf, h, 20000)); err != nil {
					t.Errorf("post recv %d: %v", i, err)
					return
				}
				d, err := vi.RecvWaitPoll(ctx)
				if err != nil || d.Status != StatusSuccess {
					t.Errorf("recv %d: %v %v", i, err, d)
					return
				}
				want := sizes[i%len(sizes)]
				if d.Length != want {
					t.Errorf("recv %d: length %d want %d", i, d.Length, want)
					return
				}
				if err := buf.CheckPattern(byte(i), want); err != nil {
					t.Errorf("recv %d corrupted: %v", i, err)
					return
				}
				received++
			}
		})
	env.run()
	if received != msgs {
		t.Fatalf("received %d of %d", received, msgs)
	}
	if env.sys.Net.Dropped == 0 {
		t.Fatal("soak test dropped nothing; loss injection inert")
	}
}

func TestReliableSoakBidirectional(t *testing.T) {
	// Loss plus simultaneous traffic in both directions.
	const msgs = 25
	m := provider.CLAN()
	m.Network.DropRate = 0.04
	attrs := ViAttributes{Reliability: ReliableDelivery}
	do := func(ctx *Ctx, vi *Vi, nic *Nic, seed byte) {
		buf := ctx.Malloc(6000)
		h, _ := nic.RegisterMem(ctx, buf)
		rbuf := ctx.Malloc(6000)
		rh, _ := nic.RegisterMem(ctx, rbuf)
		if err := vi.PostRecv(ctx, SimpleRecv(rbuf, rh, 6000)); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < msgs; i++ {
			buf.FillPattern(seed + byte(i))
			if err := vi.PostSend(ctx, SimpleSend(buf, h, 5000)); err != nil {
				t.Error(err)
				return
			}
			d, err := vi.RecvWaitPoll(ctx)
			if err != nil || d.Status != StatusSuccess {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			if i+1 < msgs {
				if err := vi.PostRecv(ctx, SimpleRecv(rbuf, rh, 6000)); err != nil {
					t.Error(err)
					return
				}
			}
			if _, err := vi.SendWaitPoll(ctx); err != nil {
				t.Errorf("send wait %d: %v", i, err)
				return
			}
		}
	}
	env := newPair(t, m, attrs,
		func(ctx *Ctx, vi *Vi, nic *Nic) { do(ctx, vi, nic, 10) },
		func(ctx *Ctx, vi *Vi, nic *Nic) { do(ctx, vi, nic, 200) })
	env.run()
}

// --- additional edge cases ---

func TestImmediateOnMultiFragmentMessage(t *testing.T) {
	// Immediate data rides the final fragment of a fragmented message.
	const n = 20000
	env := newPair(t, provider.BVIA(), ViAttributes{},
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			buf := ctx.Malloc(n)
			h, _ := nic.RegisterMem(ctx, buf)
			d := SimpleSend(buf, h, n)
			d.ImmediateData, d.HasImmediate = 77, true
			vi.PostSend(ctx, d)
			vi.SendWaitPoll(ctx)
		},
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			buf := ctx.Malloc(n)
			h, _ := nic.RegisterMem(ctx, buf)
			vi.PostRecv(ctx, SimpleRecv(buf, h, n))
			d, err := vi.RecvWaitPoll(ctx)
			if err != nil || !d.GotImmediate || d.Immediate != 77 {
				t.Errorf("multi-fragment immediate: %v %v", err, d)
			}
		})
	env.run()
}

func TestRecvBufferTooSmallLengthError(t *testing.T) {
	env := newPair(t, provider.CLAN(), ViAttributes{},
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			buf := ctx.Malloc(8192)
			h, _ := nic.RegisterMem(ctx, buf)
			vi.PostSend(ctx, SimpleSend(buf, h, 8192))
			vi.SendWaitPoll(ctx)
			// A second, fitting message must still arrive afterwards.
			vi.PostSend(ctx, SimpleSend(buf, h, 100))
			vi.SendWaitPoll(ctx)
		},
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			small := ctx.Malloc(1024)
			h, _ := nic.RegisterMem(ctx, small)
			vi.PostRecv(ctx, SimpleRecv(small, h, 1024)) // too small for 8KB
			vi.PostRecv(ctx, SimpleRecv(small, h, 1024)) // fits the 100B
			d, err := vi.RecvWaitPoll(ctx)
			if err != nil {
				t.Error(err)
				return
			}
			if d.Status != StatusLengthError {
				t.Errorf("oversized message: status %v, want LENGTH_ERROR", d.Status)
			}
			d2, err := vi.RecvWaitPoll(ctx)
			if err != nil || d2.Status != StatusSuccess || d2.Length != 100 {
				t.Errorf("follow-up message: %v %v", err, d2)
			}
		})
	env.run()
}

func TestSendOnErroredViRejectedEventually(t *testing.T) {
	// After a transport failure the VI is in the error state; further
	// posts are rejected.
	attrs := ViAttributes{Reliability: ReliableDelivery}
	env := newPair(t, provider.CLAN(), attrs,
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			buf := ctx.Malloc(64)
			h, _ := nic.RegisterMem(ctx, buf)
			vi.PostSend(ctx, SimpleSend(buf, h, 64))
			d, _ := vi.SendWaitPoll(ctx)
			if d.Status != StatusTransportError {
				t.Errorf("status %v", d.Status)
			}
			if err := vi.PostSend(ctx, SimpleSend(buf, h, 64)); !errors.Is(err, ErrInvalidState) {
				t.Errorf("post on errored VI: %v", err)
			}
			// Destroy works from the error state.
			if err := vi.Destroy(ctx); err != nil {
				t.Errorf("destroy errored VI: %v", err)
			}
		},
		func(ctx *Ctx, vi *Vi, nic *Nic) {})
	env.sys.Net.SetDropFilter(func(idx uint64, d fabric.Delivery) bool {
		return d.Payload.(*wirePacket).kind == pktData
	})
	env.run()
}

func TestExactMTUBoundaries(t *testing.T) {
	// A message of exactly k*MTU bytes uses exactly k fragments; one byte
	// more adds a fragment. Verified through fabric packet counts.
	m := provider.BVIA() // 4096B MTU
	for _, tc := range []struct {
		size  int
		frags uint64
	}{{4096, 1}, {4097, 2}, {8192, 2}, {8193, 3}} {
		sys := NewSystem(m, 2, 1)
		before := sys.Net.Sent
		runPingOnce(t, sys, tc.size)
		// Count only data packets: each direction sends tc.frags, plus 2
		// connection-management packets total.
		dataPkts := sys.Net.Sent - before - 2
		if dataPkts != tc.frags*2 {
			t.Errorf("size %d: %d data packets, want %d", tc.size, dataPkts, tc.frags*2)
		}
	}
}

// runPingOnce does a single ping-pong of the given size on a fresh system.
func runPingOnce(t *testing.T, sys *System, size int) {
	t.Helper()
	sys.Go(0, "c", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		vi, _ := nic.CreateVi(ctx, ViAttributes{}, nil, nil)
		if err := vi.ConnectRequest(ctx, 1, "x", tmo); err != nil {
			t.Error(err)
			return
		}
		buf := ctx.Malloc(size)
		h, _ := nic.RegisterMem(ctx, buf)
		vi.PostRecv(ctx, SimpleRecv(buf, h, size))
		vi.PostSend(ctx, SimpleSend(buf, h, size))
		vi.SendWaitPoll(ctx)
		vi.RecvWaitPoll(ctx)
	})
	sys.Go(1, "s", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		vi, _ := nic.CreateVi(ctx, ViAttributes{}, nil, nil)
		buf := ctx.Malloc(size)
		h, _ := nic.RegisterMem(ctx, buf)
		vi.PostRecv(ctx, SimpleRecv(buf, h, size))
		req, err := nic.ConnectWait(ctx, "x", tmo)
		if err != nil {
			t.Error(err)
			return
		}
		req.Accept(ctx, vi)
		vi.RecvWaitPoll(ctx)
		vi.PostSend(ctx, SimpleSend(buf, h, size))
		vi.SendWaitPoll(ctx)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestManyConnectionsSequential(t *testing.T) {
	// Create, connect, transfer, disconnect, destroy — 20 times on one
	// pair of hosts; no state leaks across rounds.
	sys := NewSystem(provider.CLAN(), 2, 1)
	const rounds = 20
	sys.Go(0, "client", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		buf := ctx.Malloc(256)
		h, _ := nic.RegisterMem(ctx, buf)
		for r := 0; r < rounds; r++ {
			vi, err := nic.CreateVi(ctx, ViAttributes{}, nil, nil)
			if err != nil {
				t.Error(err)
				return
			}
			if err := vi.ConnectRequest(ctx, 1, fmt.Sprintf("r%d", r), tmo); err != nil {
				t.Errorf("round %d: %v", r, err)
				return
			}
			vi.PostSend(ctx, SimpleSend(buf, h, 256))
			if _, err := vi.SendWaitPoll(ctx); err != nil {
				t.Error(err)
				return
			}
			if err := vi.Disconnect(ctx); err != nil {
				t.Error(err)
				return
			}
			if err := vi.Destroy(ctx); err != nil {
				t.Error(err)
				return
			}
		}
		if nic.OpenVIs() != 0 {
			t.Errorf("leaked %d VIs", nic.OpenVIs())
		}
	})
	sys.Go(1, "server", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		buf := ctx.Malloc(256)
		h, _ := nic.RegisterMem(ctx, buf)
		for r := 0; r < rounds; r++ {
			vi, _ := nic.CreateVi(ctx, ViAttributes{}, nil, nil)
			vi.PostRecv(ctx, SimpleRecv(buf, h, 256))
			req, err := nic.ConnectWait(ctx, fmt.Sprintf("r%d", r), tmo)
			if err != nil {
				t.Error(err)
				return
			}
			req.Accept(ctx, vi)
			if _, err := vi.RecvWaitPoll(ctx); err != nil {
				t.Error(err)
				return
			}
			for vi.State() == ViConnected {
				ctx.Sleep(10 * sim.Microsecond)
			}
			vi.Destroy(ctx)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleAcceptRejected(t *testing.T) {
	sys := NewSystem(provider.CLAN(), 2, 1)
	sys.Go(0, "client", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		vi, _ := nic.CreateVi(ctx, ViAttributes{}, nil, nil)
		if err := vi.ConnectRequest(ctx, 1, "svc", tmo); err != nil {
			t.Error(err)
		}
	})
	sys.Go(1, "server", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		vi, _ := nic.CreateVi(ctx, ViAttributes{}, nil, nil)
		vi2, _ := nic.CreateVi(ctx, ViAttributes{}, nil, nil)
		req, err := nic.ConnectWait(ctx, "svc", tmo)
		if err != nil {
			t.Error(err)
			return
		}
		if err := req.Accept(ctx, vi); err != nil {
			t.Error(err)
		}
		if err := req.Accept(ctx, vi2); !errors.Is(err, ErrInvalidState) {
			t.Errorf("double accept: %v", err)
		}
		if err := req.Reject(ctx); !errors.Is(err, ErrInvalidState) {
			t.Errorf("reject after accept: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}
