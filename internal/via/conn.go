package via

import (
	"vibe/internal/fabric"
	"vibe/internal/nicsim"
	"vibe/internal/provider"
	"vibe/internal/sim"
)

// connState is the per-connection transport state a connected VI carries.
type connState struct {
	peerNode fabric.NodeID
	peerVi   int

	// Sender-side reliability window and receiver-side sequence tracking
	// (used only on reliable connections).
	window  nicsim.Window
	recvSeq nicsim.RecvSeq

	// Reassembly of inbound sends and of inbound RDMA writes/read
	// responses. Sends and RDMA arrive from different engine paths at the
	// peer, so each kind is in-order within itself.
	reasm     nicsim.Reassembler
	rdmaReasm nicsim.Reassembler
	readReasm nicsim.Reassembler

	// curRecv is the receive descriptor currently being filled, with its
	// resolved segments.
	curRecv     *Descriptor
	curRecvRuns []segRun

	// dropping marks a message being discarded (no descriptor posted, or
	// message larger than the descriptor).
	dropping  bool
	dropMsgID uint64

	outstandingReads map[uint64]*readState

	rtoArmed bool
	// rto is the retransmission-timeout policy: backoff, the give-up
	// threshold (the connection fails only after MaxRetries consecutive
	// timeouts during which the oldest unacked sequence made no
	// progress), and optionally the adaptive RTT estimator.
	rto nicsim.RTO
}

// readState tracks one outstanding RDMA read at the initiator.
type readState struct {
	desc *Descriptor
	runs []segRun
}

// ConnRequest is an inbound connection request delivered to a server's
// ConnectWait, mirroring the (connection handle, remote attributes) pair
// of VipConnectWait.
type ConnRequest struct {
	nic         *Nic
	disc        string
	clientNode  fabric.NodeID
	clientVi    int
	reliability ReliabilityLevel
	handled     bool
}

// Discriminator returns the address discriminator the client dialed.
func (r *ConnRequest) Discriminator() string { return r.disc }

// RemoteNode returns the requesting host.
func (r *ConnRequest) RemoteNode() fabric.NodeID { return r.clientNode }

// Reliability returns the reliability level the client's VI was created
// with; the accepting VI must match.
func (r *ConnRequest) Reliability() ReliabilityLevel { return r.reliability }

// ConnectWait blocks until a connection request arrives for the given
// discriminator, mirroring VipConnectWait.
func (n *Nic) ConnectWait(ctx *Ctx, disc string, timeout sim.Duration) (*ConnRequest, error) {
	deadline := ctx.Now().Add(timeout)
	for {
		for i, r := range n.pendingConns {
			if r.disc == disc {
				n.pendingConns = append(n.pendingConns[:i], n.pendingConns[i+1:]...)
				return r, nil
			}
		}
		remain := deadline.Sub(ctx.Now())
		if remain <= 0 {
			return nil, ErrTimeout
		}
		if !n.connArrived.WaitTimeout(ctx.P, remain) {
			return nil, ErrTimeout
		}
	}
}

// Accept accepts the request on vi, mirroring VipConnectAccept. The VI
// must be idle and its reliability level must match the client's; on
// mismatch the request is rejected and an error returned.
func (r *ConnRequest) Accept(ctx *Ctx, vi *Vi) error {
	n := r.nic
	if r.handled {
		return ErrInvalidState
	}
	if vi.nic != n || vi.state != ViIdle {
		return ErrInvalidState
	}
	if vi.attrs.Reliability != r.reliability {
		r.reject(ctx)
		return ErrNotSupported
	}
	r.handled = true
	ctx.use(n.model.ConnAcceptCost)
	vi.conn = newConnState(n.model, r.clientNode, r.clientVi)
	vi.state = ViConnected
	n.sendCtl(&wirePacket{kind: pktConnAccept, srcVi: vi.id, dstVi: r.clientVi}, r.clientNode)
	return nil
}

// Reject declines the request, mirroring VipConnectReject.
func (r *ConnRequest) Reject(ctx *Ctx) error {
	if r.handled {
		return ErrInvalidState
	}
	r.reject(ctx)
	return nil
}

func (r *ConnRequest) reject(ctx *Ctx) {
	r.handled = true
	ctx.use(r.nic.model.ConnAcceptCost)
	r.nic.sendCtl(&wirePacket{kind: pktConnReject, dstVi: r.clientVi}, r.clientNode)
}

// ConnectRequest dials (remote node, discriminator) from this VI and
// blocks until the peer accepts, rejects, or the timeout expires,
// mirroring VipConnectRequest.
func (v *Vi) ConnectRequest(ctx *Ctx, remote fabric.NodeID, disc string, timeout sim.Duration) error {
	n := v.nic
	if v.state != ViIdle {
		return ErrInvalidState
	}
	ctx.use(n.model.ConnRequestCost)
	v.connAccepted, v.connRejected = false, false
	n.sendCtl(&wirePacket{
		kind:        pktConnReq,
		srcVi:       v.id,
		disc:        disc,
		reliability: v.attrs.Reliability,
	}, remote)

	deadline := ctx.Now().Add(timeout)
	for !v.connAccepted && !v.connRejected {
		remain := deadline.Sub(ctx.Now())
		if remain <= 0 {
			return ErrTimeout
		}
		if !v.connReply.WaitTimeout(ctx.P, remain) {
			return ErrTimeout
		}
	}
	if v.connRejected {
		return ErrRejected
	}
	return nil
}

// Disconnect tears the connection down, mirroring VipDisconnect. Pending
// descriptors on both sides complete with StatusFlushed.
func (v *Vi) Disconnect(ctx *Ctx) error {
	if v.state != ViConnected {
		return ErrNotConnected
	}
	ctx.use(v.nic.model.ConnTeardownCost)
	peer := v.conn
	v.nic.sendCtl(&wirePacket{kind: pktDisconnect, srcVi: v.id, dstVi: peer.peerVi}, peer.peerNode)
	v.teardown(ViDisconnected)
	return nil
}

// teardown flushes queues and moves the VI to the given terminal state.
func (v *Vi) teardown(st ViState) {
	v.flushQueues(StatusFlushed)
	if v.conn != nil {
		// Absorb the connection's reliability counters into the NIC (then
		// zero them) so metrics collection after teardown still sees them,
		// and collection of a live connection never double counts.
		n := v.nic
		n.winAcked += v.conn.window.Acked
		n.winRetransmits += v.conn.window.Retransmits
		n.recvDups += v.conn.recvSeq.Duplicates
		n.recvGaps += v.conn.recvSeq.Gaps
		n.rtoBackoffs += v.conn.rto.Backoffs
		v.conn.window.Acked, v.conn.window.Retransmits = 0, 0
		v.conn.recvSeq.Duplicates, v.conn.recvSeq.Gaps = 0, 0
		v.conn.rto.Backoffs = 0
		v.conn.window.Reset()
		v.conn.reasm.Abort()
		v.conn.rdmaReasm.Abort()
		v.conn.readReasm.Abort()
		v.conn.curRecv = nil
	}
	v.state = st
}

func newConnState(m *provider.Model, peer fabric.NodeID, peerVi int) *connState {
	cs := &connState{
		peerNode:         peer,
		peerVi:           peerVi,
		outstandingReads: make(map[uint64]*readState),
	}
	cs.rto.Init(m.RetransmitTimeout, m.MaxRetries, m.AdaptiveRTO)
	return cs
}
