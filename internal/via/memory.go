package via

import (
	"fmt"

	"vibe/internal/sim"
	"vibe/internal/vmem"
)

// MemHandle identifies a registered memory region, as returned by
// RegisterMem (VipRegisterMem).
type MemHandle uint64

// region is one registered memory range.
type region struct {
	handle MemHandle
	addr   vmem.Addr
	length int
}

func (r *region) contains(addr vmem.Addr, n int) bool {
	return addr >= r.addr && uint64(addr)+uint64(n) <= uint64(r.addr)+uint64(r.length)
}

func (r *region) pages() int { return vmem.NumPages(r.addr, r.length) }

// RegisterMem registers buf's full range for VIA use and returns its
// memory handle, mirroring VipRegisterMem. Registration pins the pages and
// installs translations; its cost scales with the page count.
func (n *Nic) RegisterMem(ctx *Ctx, buf *vmem.Buffer) (MemHandle, error) {
	return n.RegisterRange(ctx, buf.Addr(), buf.Len())
}

// RegisterRange registers [addr, addr+length).
func (n *Nic) RegisterRange(ctx *Ctx, addr vmem.Addr, length int) (MemHandle, error) {
	if length <= 0 {
		return 0, fmt.Errorf("%w: register %d bytes", ErrLength, length)
	}
	if _, err := ctx.Host.AS.Resolve(addr, length); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrProtection, err)
	}
	pages := vmem.NumPages(addr, length)
	ctx.use(n.model.MemRegBase + sim.Duration(pages)*n.model.MemRegPerPage)

	n.nextHandle++
	h := n.nextHandle
	n.regions[h] = &region{handle: h, addr: addr, length: length}
	return h, nil
}

// DeregisterMem releases a registration, mirroring VipDeregisterMem. Any
// NIC-cached translations for the region are shot down.
func (n *Nic) DeregisterMem(ctx *Ctx, h MemHandle) error {
	r, ok := n.regions[h]
	if !ok {
		return ErrInvalidHandle
	}
	pages := r.pages()
	ctx.use(n.model.MemDeregBase + sim.Duration(pages)*n.model.MemDeregPerPage)
	if n.tlb != nil {
		n.tlb.InvalidateRange(r.addr.Page(), r.addr.Advance(r.length-1).Page())
	}
	delete(n.regions, h)
	return nil
}

// checkSeg validates that a data segment lies entirely inside the region
// its handle names — the protection check VIA performs when a descriptor
// is posted.
func (n *Nic) checkSeg(s DataSegment) error {
	if s.Length < 0 {
		return fmt.Errorf("%w: negative segment length", ErrLength)
	}
	r, ok := n.regions[s.Handle]
	if !ok {
		return ErrInvalidHandle
	}
	if !r.contains(s.Addr, s.Length) {
		return fmt.Errorf("%w: segment [%v,+%d) outside region [%v,+%d)",
			ErrProtection, s.Addr, s.Length, r.addr, r.length)
	}
	return nil
}

// checkRemote validates an inbound RDMA target range against the local
// registration table, as the target NIC does.
func (n *Nic) checkRemote(addr vmem.Addr, length int, h MemHandle) bool {
	r, ok := n.regions[h]
	return ok && r.contains(addr, length)
}

// Registered reports whether handle h is currently registered (for tests).
func (n *Nic) Registered(h MemHandle) bool {
	_, ok := n.regions[h]
	return ok
}
