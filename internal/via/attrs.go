package via

import "fmt"

// ReliabilityLevel selects the transport guarantee of a VI connection, as
// defined by the VIA specification.
type ReliabilityLevel uint8

const (
	// Unreliable delivery: messages may be lost; sends complete once the
	// data is on the wire.
	Unreliable ReliabilityLevel = iota
	// ReliableDelivery: the sender's NIC retransmits until the peer NIC
	// acknowledges arrival; a send completes when delivery is guaranteed.
	ReliableDelivery
	// ReliableReception: like ReliableDelivery, but a send completes only
	// after the data has been placed in the target's memory.
	ReliableReception
)

func (r ReliabilityLevel) String() string {
	switch r {
	case Unreliable:
		return "unreliable"
	case ReliableDelivery:
		return "reliable-delivery"
	case ReliableReception:
		return "reliable-reception"
	}
	return fmt.Sprintf("reliability(%d)", uint8(r))
}

// Reliable reports whether the level runs the ack/retransmit protocol.
func (r ReliabilityLevel) Reliable() bool { return r != Unreliable }

// ViAttributes parameterize VI creation, mirroring VIP_VI_ATTRIBUTES.
type ViAttributes struct {
	// Reliability selects the transport guarantee. The provider must
	// support it (see NicAttributes.ReliabilitySupported).
	Reliability ReliabilityLevel

	// EnableRdmaWrite / EnableRdmaRead request RDMA capability on the VI.
	EnableRdmaWrite bool
	EnableRdmaRead  bool

	// MaxTransferSize optionally lowers the provider's maximum transfer
	// size for this VI; zero means "provider maximum".
	MaxTransferSize int
}

// ViState is the lifecycle state of a VI, per the VIA connection state
// machine.
type ViState int

const (
	// ViIdle: created, not connected. Receives may be pre-posted.
	ViIdle ViState = iota
	// ViConnected: a connection to a remote VI is established.
	ViConnected
	// ViDisconnected: the connection was torn down.
	ViDisconnected
	// ViError: the reliable transport failed; queues are flushed.
	ViError
	// ViDestroyed: the VI has been destroyed.
	ViDestroyed
)

func (s ViState) String() string {
	switch s {
	case ViIdle:
		return "idle"
	case ViConnected:
		return "connected"
	case ViDisconnected:
		return "disconnected"
	case ViError:
		return "error"
	case ViDestroyed:
		return "destroyed"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// NicAttributes describe a provider, mirroring VIP_NIC_ATTRIBUTES.
type NicAttributes struct {
	Name                 string
	MaxTransferSize      int
	MaxSegments          int
	WireMTU              int
	RdmaWriteSupported   bool
	RdmaReadSupported    bool
	ReliabilitySupported []ReliabilityLevel
}
