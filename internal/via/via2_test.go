package via

import (
	"errors"
	"testing"

	"vibe/internal/fabric"
	"vibe/internal/provider"
	"vibe/internal/sim"
)

// --- completion queues ---

func TestCompletionQueueMergesVIs(t *testing.T) {
	// Two VIs on the server share one recv CQ; the client sends over
	// both; the server drains everything through the CQ.
	sys := NewSystem(provider.CLAN(), 2, 1)
	const msgs = 6
	sys.Go(0, "client", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		buf := ctx.Malloc(256)
		h, _ := nic.RegisterMem(ctx, buf)
		for i := 0; i < 2; i++ {
			vi, _ := nic.CreateVi(ctx, ViAttributes{}, nil, nil)
			if err := vi.ConnectRequest(ctx, 1, "svc", tmo); err != nil {
				t.Errorf("connect %d: %v", i, err)
				return
			}
			for j := 0; j < msgs/2; j++ {
				vi.PostSend(ctx, SimpleSend(buf, h, 128))
				if _, err := vi.SendWaitPoll(ctx); err != nil {
					t.Error(err)
					return
				}
			}
		}
	})
	sys.Go(1, "server", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		cq, err := nic.CreateCQ(ctx, 32)
		if err != nil {
			t.Error(err)
			return
		}
		buf := ctx.Malloc(256)
		h, _ := nic.RegisterMem(ctx, buf)
		for i := 0; i < 2; i++ {
			vi, err := nic.CreateVi(ctx, ViAttributes{}, nil, cq)
			if err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < msgs/2; j++ {
				vi.PostRecv(ctx, SimpleRecv(buf, h, 256))
			}
			req, err := nic.ConnectWait(ctx, "svc", tmo)
			if err != nil {
				t.Error(err)
				return
			}
			if err := req.Accept(ctx, vi); err != nil {
				t.Error(err)
				return
			}
		}
		seen := map[int]int{}
		for i := 0; i < msgs; i++ {
			c, err := cq.WaitPoll(ctx)
			if err != nil {
				t.Errorf("cq wait %d: %v", i, err)
				return
			}
			if !c.IsRecv {
				t.Error("send completion on recv CQ")
			}
			d, ok := c.Vi.RecvDone(ctx)
			if !ok || d.Status != StatusSuccess {
				t.Errorf("dequeue after CQ: ok=%v", ok)
			}
			seen[c.Vi.ID()]++
		}
		if len(seen) != 2 {
			t.Errorf("completions from %d VIs, want 2", len(seen))
		}
		if _, ok := cq.Done(ctx); ok {
			t.Error("spurious CQ entry")
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCQWaitTimeoutAndDestroy(t *testing.T) {
	sys := NewSystem(provider.CLAN(), 1, 1)
	sys.Go(0, "p", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		cq, _ := nic.CreateCQ(ctx, 4)
		if _, err := cq.Wait(ctx, sim.Millisecond); !errors.Is(err, ErrTimeout) {
			t.Errorf("cq wait: %v", err)
		}
		if err := cq.Destroy(ctx); err != nil {
			t.Error(err)
		}
		if err := cq.Destroy(ctx); !errors.Is(err, ErrDestroyed) {
			t.Errorf("double destroy: %v", err)
		}
		if _, err := nic.CreateCQ(ctx, 0); !errors.Is(err, ErrLength) {
			t.Errorf("zero depth: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCQOverflowCounted(t *testing.T) {
	sys := NewSystem(provider.CLAN(), 2, 1)
	var theCQ *CQ
	sys.Go(0, "client", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		vi, _ := nic.CreateVi(ctx, ViAttributes{}, nil, nil)
		if err := vi.ConnectRequest(ctx, 1, "svc", tmo); err != nil {
			t.Error(err)
			return
		}
		buf := ctx.Malloc(64)
		h, _ := nic.RegisterMem(ctx, buf)
		for i := 0; i < 3; i++ {
			vi.PostSend(ctx, SimpleSend(buf, h, 32))
			vi.SendWaitPoll(ctx)
		}
	})
	sys.Go(1, "server", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		cq, _ := nic.CreateCQ(ctx, 1) // depth 1: third completion overflows
		theCQ = cq
		vi, _ := nic.CreateVi(ctx, ViAttributes{}, nil, cq)
		buf := ctx.Malloc(64)
		h, _ := nic.RegisterMem(ctx, buf)
		for i := 0; i < 3; i++ {
			vi.PostRecv(ctx, SimpleRecv(buf, h, 64))
		}
		req, _ := nic.ConnectWait(ctx, "svc", tmo)
		req.Accept(ctx, vi)
		// Do not drain: let completions pile up.
		ctx.Sleep(100 * sim.Millisecond)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if theCQ.Overflows != 2 {
		t.Fatalf("overflows = %d, want 2", theCQ.Overflows)
	}
}

// --- blocking vs polling ---

func TestBlockingWaitIdlesCPU(t *testing.T) {
	// A server blocking on a receive must accumulate almost no busy time;
	// a polling server must be ~100% busy.
	for _, mode := range []string{"poll", "block"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			var util float64
			env := newPair(t, provider.CLAN(), ViAttributes{},
				func(ctx *Ctx, vi *Vi, nic *Nic) {
					buf := ctx.Malloc(64)
					h, _ := nic.RegisterMem(ctx, buf)
					ctx.Sleep(5 * sim.Millisecond) // make the server wait
					vi.PostSend(ctx, SimpleSend(buf, h, 64))
					vi.SendWaitPoll(ctx)
				},
				func(ctx *Ctx, vi *Vi, nic *Nic) {
					buf := ctx.Malloc(64)
					h, _ := nic.RegisterMem(ctx, buf)
					vi.PostRecv(ctx, SimpleRecv(buf, h, 64))
					meter := ctx.Host.CPU.StartMeter()
					if mode == "poll" {
						vi.RecvWaitPoll(ctx)
					} else {
						if _, err := vi.RecvWait(ctx, tmo); err != nil {
							t.Error(err)
						}
					}
					util = meter.Utilization()
				})
			env.run()
			if mode == "poll" && util < 0.99 {
				t.Errorf("polling utilization = %v, want ~1", util)
			}
			if mode == "block" && util > 0.05 {
				t.Errorf("blocking utilization = %v, want ~0", util)
			}
		})
	}
}

func TestWaitTimeoutOnSilentPeer(t *testing.T) {
	env := newPair(t, provider.CLAN(), ViAttributes{},
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			buf := ctx.Malloc(64)
			h, _ := nic.RegisterMem(ctx, buf)
			vi.PostRecv(ctx, SimpleRecv(buf, h, 64))
			if _, err := vi.RecvWait(ctx, 2*sim.Millisecond); !errors.Is(err, ErrTimeout) {
				t.Errorf("want timeout, got %v", err)
			}
		},
		func(ctx *Ctx, vi *Vi, nic *Nic) {})
	env.run()
}

func TestWaitOnEmptyQueueIsInvalid(t *testing.T) {
	env := newPair(t, provider.CLAN(), ViAttributes{},
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			if _, err := vi.RecvWaitPoll(ctx); !errors.Is(err, ErrInvalidState) {
				t.Errorf("empty queue poll-wait: %v", err)
			}
			if _, err := vi.SendWait(ctx, sim.Millisecond); !errors.Is(err, ErrInvalidState) {
				t.Errorf("empty queue wait: %v", err)
			}
		},
		func(ctx *Ctx, vi *Vi, nic *Nic) {})
	env.run()
}

// --- reliability ---

func TestReliableLossScripted(t *testing.T) {
	// Like the above but wiring the drop filter into the actual system the
	// endpoints run on.
	for _, lv := range []ReliabilityLevel{ReliableDelivery, ReliableReception} {
		lv := lv
		t.Run(lv.String(), func(t *testing.T) {
			const n = 20000
			attrs := ViAttributes{Reliability: lv}
			env := newPair(t, provider.CLAN(), attrs,
				func(ctx *Ctx, vi *Vi, nic *Nic) {
					buf := ctx.Malloc(n)
					h, _ := nic.RegisterMem(ctx, buf)
					buf.FillPattern(9)
					vi.PostSend(ctx, SimpleSend(buf, h, n))
					d, err := vi.SendWaitPoll(ctx)
					if err != nil || d.Status != StatusSuccess {
						t.Errorf("send: %v %v", err, d)
					}
				},
				func(ctx *Ctx, vi *Vi, nic *Nic) {
					buf := ctx.Malloc(n)
					h, _ := nic.RegisterMem(ctx, buf)
					vi.PostRecv(ctx, SimpleRecv(buf, h, n))
					d, err := vi.RecvWaitPoll(ctx)
					if err != nil || d.Status != StatusSuccess || d.Length != n {
						t.Errorf("recv: %v %v", err, d)
						return
					}
					if err := buf.CheckPattern(9, n); err != nil {
						t.Errorf("data after retransmit: %v", err)
					}
				})
			dropped := map[int]bool{}
			env.sys.Net.SetDropFilter(func(idx uint64, d fabric.Delivery) bool {
				pkt := d.Payload.(*wirePacket)
				if pkt.kind == pktData && (pkt.frag.Index == 1 || pkt.frag.Index == 3) && !dropped[pkt.frag.Index] {
					dropped[pkt.frag.Index] = true
					return true
				}
				return false
			})
			env.run()
			if len(dropped) != 2 {
				t.Fatalf("drop filter fired %d times", len(dropped))
			}
		})
	}
}

func TestReliableAckLossRecovered(t *testing.T) {
	attrs := ViAttributes{Reliability: ReliableDelivery}
	var dropOnce bool
	env := newPair(t, provider.CLAN(), attrs,
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			buf := ctx.Malloc(100)
			h, _ := nic.RegisterMem(ctx, buf)
			vi.PostSend(ctx, SimpleSend(buf, h, 100))
			d, err := vi.SendWaitPoll(ctx)
			if err != nil || d.Status != StatusSuccess {
				t.Errorf("send after ack loss: %v %v", err, d)
			}
		},
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			buf := ctx.Malloc(100)
			h, _ := nic.RegisterMem(ctx, buf)
			vi.PostRecv(ctx, SimpleRecv(buf, h, 100))
			if _, err := vi.RecvWaitPoll(ctx); err != nil {
				t.Error(err)
			}
		})
	env.sys.Net.SetDropFilter(func(idx uint64, d fabric.Delivery) bool {
		pkt := d.Payload.(*wirePacket)
		if pkt.kind == pktAck && !dropOnce {
			dropOnce = true
			return true
		}
		return false
	})
	env.run()
	if !dropOnce {
		t.Fatal("no ack was dropped")
	}
}

func TestUnreliableLossDropsMessageSilently(t *testing.T) {
	// With unreliable delivery a lost fragment means the whole message
	// never completes at the receiver; the next message lands in the same
	// descriptor.
	env := newPair(t, provider.CLAN(), ViAttributes{},
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			buf := ctx.Malloc(20000)
			h, _ := nic.RegisterMem(ctx, buf)
			buf.FillPattern(1)
			vi.PostSend(ctx, SimpleSend(buf, h, 20000)) // fragment will drop
			vi.SendWaitPoll(ctx)
			buf.FillPattern(2)
			vi.PostSend(ctx, SimpleSend(buf, h, 20000)) // arrives intact
			vi.SendWaitPoll(ctx)
		},
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			buf := ctx.Malloc(20000)
			h, _ := nic.RegisterMem(ctx, buf)
			vi.PostRecv(ctx, SimpleRecv(buf, h, 20000))
			d, err := vi.RecvWaitPoll(ctx)
			if err != nil || d.Status != StatusSuccess {
				t.Errorf("recv: %v", err)
				return
			}
			if err := buf.CheckPattern(2, 20000); err != nil {
				t.Errorf("second message corrupted: %v", err)
			}
		})
	var fired bool
	env.sys.Net.SetDropFilter(func(idx uint64, d fabric.Delivery) bool {
		pkt := d.Payload.(*wirePacket)
		if pkt.kind == pktData && pkt.msgID == 1 && pkt.frag.Index == 2 && !fired {
			fired = true
			return true
		}
		return false
	})
	env.run()
	if !fired {
		t.Fatal("drop filter never fired")
	}
}

func TestTransportFailureBreaksConnection(t *testing.T) {
	// Drop every data packet: retransmissions exhaust and the descriptor
	// completes with a transport error; the VI enters the error state.
	attrs := ViAttributes{Reliability: ReliableDelivery}
	env := newPair(t, provider.CLAN(), attrs,
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			buf := ctx.Malloc(100)
			h, _ := nic.RegisterMem(ctx, buf)
			vi.PostSend(ctx, SimpleSend(buf, h, 100))
			d, err := vi.SendWaitPoll(ctx)
			if err != nil {
				t.Errorf("wait: %v", err)
				return
			}
			if d.Status != StatusTransportError {
				t.Errorf("status = %v, want TRANSPORT_ERROR", d.Status)
			}
			if vi.State() != ViError {
				t.Errorf("state = %v, want error", vi.State())
			}
		},
		func(ctx *Ctx, vi *Vi, nic *Nic) {})
	env.sys.Net.SetDropFilter(func(idx uint64, d fabric.Delivery) bool {
		return d.Payload.(*wirePacket).kind == pktData
	})
	env.run()
}
