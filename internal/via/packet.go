package via

import (
	"fmt"

	"vibe/internal/fabric"
	"vibe/internal/nicsim"
	"vibe/internal/sim"
	"vibe/internal/vmem"
)

// pktKind discriminates wire packets.
type pktKind int

const (
	pktData pktKind = iota
	pktAck
	pktErrAck
	pktRdmaWrite
	pktRdmaReadReq
	pktRdmaReadResp
	pktConnReq
	pktConnAccept
	pktConnReject
	pktDisconnect
)

func (k pktKind) String() string {
	switch k {
	case pktData:
		return "data"
	case pktAck:
		return "ack"
	case pktErrAck:
		return "err-ack"
	case pktRdmaWrite:
		return "rdma-write"
	case pktRdmaReadReq:
		return "rdma-read-req"
	case pktRdmaReadResp:
		return "rdma-read-resp"
	case pktConnReq:
		return "conn-req"
	case pktConnAccept:
		return "conn-accept"
	case pktConnReject:
		return "conn-reject"
	case pktDisconnect:
		return "disconnect"
	}
	return fmt.Sprintf("pkt(%d)", int(k))
}

// Per-packet wire header sizes (bytes), included in serialization time.
const (
	dataHeaderBytes = 32
	connPktBytes    = 64
)

// wirePacket is the payload the NIC engines exchange over the fabric.
type wirePacket struct {
	kind  pktKind
	srcVi int
	dstVi int

	// Data / RDMA fields.
	seq      uint64 // reliability sequence (reliable connections)
	hasSeq   bool
	msgID    uint64
	frag     nicsim.Fragment
	msgTotal int
	data     []byte // snapshot of the fragment payload

	immediate    uint32
	hasImmediate bool

	// RDMA fields.
	remoteAddr   vmem.Addr
	remoteHandle MemHandle
	readReq      uint64 // read request id (request and its responses)

	// Ack fields.
	ackSeq uint64
	errSts Status // for pktErrAck: status to force on the affected message
	errMsg uint64 // msgID the error refers to

	// Connection-management fields.
	disc        string
	reliability ReliabilityLevel
	reqID       uint64 // connection request id

	// Span carriage: the sampled message's span, if any, and the virtual
	// time Nic.send last put this packet on the wire (restamped on
	// retransmit, so wire time covers the attempt that arrived).
	span   *msgSpan
	sentAt sim.Time
}

// wireSize reports the bytes the packet occupies on the wire (payload plus
// protocol header, before fabric framing).
func (p *wirePacket) wireSize(ackBytes int) int {
	switch p.kind {
	case pktData, pktRdmaWrite, pktRdmaReadResp:
		return dataHeaderBytes + len(p.data)
	case pktAck, pktErrAck:
		return ackBytes
	case pktRdmaReadReq:
		return dataHeaderBytes
	default:
		return connPktBytes
	}
}

var _ = fabric.NodeID(0) // fabric types appear in signatures elsewhere
