package via

import "errors"

// Status is the completion status recorded in a descriptor's control
// segment, mirroring the VIP_STATUS codes of the VIA specification.
type Status int

const (
	// StatusPending marks a descriptor that has been posted but not
	// completed. It is not a VIPL status; VIPL expresses it as
	// VIP_NOT_DONE from the Done calls.
	StatusPending Status = iota
	// StatusSuccess: the operation completed successfully.
	StatusSuccess
	// StatusLengthError: an incoming message was larger than the posted
	// receive descriptor's buffers.
	StatusLengthError
	// StatusProtectionError: a data segment referenced memory not covered
	// by its memory handle.
	StatusProtectionError
	// StatusRdmaProtError: the remote address segment of an RDMA
	// operation was rejected by the target.
	StatusRdmaProtError
	// StatusTransportError: the reliable transport exhausted its
	// retransmissions; the connection is broken.
	StatusTransportError
	// StatusFlushed: the descriptor was flushed from its work queue by a
	// disconnect or error before it could complete.
	StatusFlushed
)

var statusNames = map[Status]string{
	StatusPending:         "PENDING",
	StatusSuccess:         "SUCCESS",
	StatusLengthError:     "LENGTH_ERROR",
	StatusProtectionError: "PROTECTION_ERROR",
	StatusRdmaProtError:   "RDMA_PROTECTION_ERROR",
	StatusTransportError:  "TRANSPORT_ERROR",
	StatusFlushed:         "DESCRIPTOR_FLUSHED",
}

func (s Status) String() string {
	if n, ok := statusNames[s]; ok {
		return n
	}
	return "UNKNOWN_STATUS"
}

// Errors returned by the user-facing API, mirroring VIP_ERROR_* codes.
var (
	ErrInvalidState    = errors.New("via: object in invalid state for operation")
	ErrNotConnected    = errors.New("via: VI is not connected")
	ErrTimeout         = errors.New("via: operation timed out")
	ErrNotSupported    = errors.New("via: operation not supported by this provider")
	ErrProtection      = errors.New("via: memory protection violation")
	ErrInvalidHandle   = errors.New("via: invalid memory handle")
	ErrTooManySegments = errors.New("via: descriptor exceeds provider segment limit")
	ErrLength          = errors.New("via: transfer exceeds provider maximum transfer size")
	ErrRejected        = errors.New("via: connection request rejected by peer")
	ErrDestroyed       = errors.New("via: object has been destroyed")
	ErrNoMatch         = errors.New("via: no connection request matches the discriminator")
)
