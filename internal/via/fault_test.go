package via

import (
	"errors"
	"os"
	"strconv"
	"testing"

	"vibe/internal/fabric"
	"vibe/internal/fault"
	"vibe/internal/provider"
	"vibe/internal/sim"
	"vibe/internal/vmem"
)

// --- Spec conformance: disconnect flushes, further posts are rejected ---

// VIA spec: VipDisconnect completes all outstanding descriptors with
// VIP_STATUS_FLUSHED, and posting to a VI that has left the connected
// state is an invalid-state error. The peer's posted work flushes too,
// once the disconnect reaches it.
func TestDisconnectFlushesPostedDescriptors(t *testing.T) {
	for _, m := range provider.All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			var serverSawFlush bool
			env := newPair(t, m, ViAttributes{},
				func(ctx *Ctx, vi *Vi, nic *Nic) {
					const n = 256
					buf := ctx.Malloc(n)
					h, err := nic.RegisterMem(ctx, buf)
					if err != nil {
						t.Error(err)
						return
					}
					for i := 0; i < 3; i++ {
						if err := vi.PostRecv(ctx, SimpleRecv(buf, h, n)); err != nil {
							t.Errorf("PostRecv %d: %v", i, err)
							return
						}
					}
					// Give the server time to post its receive before the
					// teardown races past it.
					ctx.Sleep(sim.Millisecond)
					if err := vi.Disconnect(ctx); err != nil {
						t.Errorf("Disconnect: %v", err)
						return
					}
					if vi.State() != ViDisconnected {
						t.Errorf("state after Disconnect = %v", vi.State())
					}
					for i := 0; i < 3; i++ {
						d, ok := vi.RecvDone(ctx)
						if !ok {
							t.Fatalf("descriptor %d not completed by Disconnect", i)
						}
						if d.Status != StatusFlushed {
							t.Errorf("descriptor %d status = %v, want %v", i, d.Status, StatusFlushed)
						}
					}
					if _, ok := vi.RecvDone(ctx); ok {
						t.Error("spurious extra completion")
					}
					if err := vi.PostSend(ctx, SimpleSend(buf, h, n)); !errors.Is(err, ErrInvalidState) {
						t.Errorf("PostSend after Disconnect = %v, want ErrInvalidState", err)
					}
					if err := vi.PostRecv(ctx, SimpleRecv(buf, h, n)); !errors.Is(err, ErrInvalidState) {
						t.Errorf("PostRecv after Disconnect = %v, want ErrInvalidState", err)
					}
					if nic.FlushedDescs != 3 {
						t.Errorf("FlushedDescs = %d, want 3", nic.FlushedDescs)
					}
				},
				func(ctx *Ctx, vi *Vi, nic *Nic) {
					const n = 256
					buf := ctx.Malloc(n)
					h, err := nic.RegisterMem(ctx, buf)
					if err != nil {
						t.Error(err)
						return
					}
					if err := vi.PostRecv(ctx, SimpleRecv(buf, h, n)); err != nil {
						t.Error(err)
						return
					}
					d, err := vi.RecvWait(ctx, tmo)
					if err != nil {
						t.Errorf("peer RecvWait: %v", err)
						return
					}
					if d.Status != StatusFlushed {
						t.Errorf("peer descriptor status = %v, want %v", d.Status, StatusFlushed)
					}
					serverSawFlush = true
				})
			env.run()
			if !serverSawFlush {
				t.Error("server never observed the flush")
			}
		})
	}
}

// --- Retransmission exhaustion: the acceptance scenario ---

// exhaustionPlan severs the fabric permanently shortly after connection
// setup: the handshake goes through, every data packet vanishes.
func exhaustionPlan() *fault.Plan {
	return &fault.Plan{Faults: []fault.Spec{
		{Kind: fault.KindLinkDown, Start: "5ms"},
	}}
}

func TestRetransmissionExhaustionBreaksReliableVi(t *testing.T) {
	m := provider.CLAN()
	sys := NewSystem(m, 2, 1)
	sys.InstallFaults(exhaustionPlan())

	const msgs = 3
	errorEvents := 0
	var errorCode Status
	var statuses []Status

	sys.Go(0, "client", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		nic.SetErrorCallback(func(_ *Ctx, ev ErrorEvent) {
			errorEvents++
			errorCode = ev.Code
		})
		vi, err := nic.CreateVi(ctx, ViAttributes{Reliability: ReliableDelivery}, nil, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if err := vi.ConnectRequest(ctx, 1, "svc", tmo); err != nil {
			t.Errorf("ConnectRequest: %v", err)
			return
		}
		// Wait out the healthy window so every data packet hits the outage.
		if d := sim.Time(0).Add(6 * sim.Millisecond).Sub(ctx.Now()); d > 0 {
			ctx.Sleep(d)
		}
		buf := ctx.Malloc(512)
		h, err := nic.RegisterMem(ctx, buf)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < msgs; i++ {
			if err := vi.PostSend(ctx, SimpleSend(buf, h, 512)); err != nil {
				t.Errorf("PostSend %d: %v", i, err)
				return
			}
		}
		for i := 0; i < msgs; i++ {
			d, err := vi.SendWait(ctx, sim.Second)
			if err != nil {
				t.Errorf("SendWait %d: %v", i, err)
				return
			}
			statuses = append(statuses, d.Status)
		}
		if vi.State() != ViError {
			t.Errorf("VI state = %v, want %v", vi.State(), ViError)
		}
		if err := vi.PostSend(ctx, SimpleSend(buf, h, 512)); !errors.Is(err, ErrInvalidState) {
			t.Errorf("PostSend on errored VI = %v, want ErrInvalidState", err)
		}
		if nic.ConnErrors != 1 {
			t.Errorf("ConnErrors = %d, want 1", nic.ConnErrors)
		}
		if nic.TransportErrs == 0 {
			t.Error("no completion carried StatusTransportError")
		}
		if nic.TransportErrs+nic.FlushedDescs != msgs {
			t.Errorf("transport=%d flushed=%d, want sum %d", nic.TransportErrs, nic.FlushedDescs, msgs)
		}
	})

	sys.Go(1, "server", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		vi, err := nic.CreateVi(ctx, ViAttributes{Reliability: ReliableDelivery}, nil, nil)
		if err != nil {
			t.Error(err)
			return
		}
		buf := ctx.Malloc(512)
		h, err := nic.RegisterMem(ctx, buf)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < msgs; i++ {
			if err := vi.PostRecv(ctx, SimpleRecv(buf, h, 512)); err != nil {
				t.Error(err)
				return
			}
		}
		req, err := nic.ConnectWait(ctx, "svc", tmo)
		if err != nil {
			t.Error(err)
			return
		}
		if err := req.Accept(ctx, vi); err != nil {
			t.Error(err)
			return
		}
		// The partition swallows all data, and the client's disconnect
		// notification dies on the same dead link: the peer cannot be told.
		// One bounded wait outlives the sender's entire backoff ladder.
		if _, err := vi.RecvWait(ctx, sim.Second); !errors.Is(err, ErrTimeout) {
			t.Errorf("server RecvWait = %v, want timeout", err)
		}
	})

	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if errorEvents != 1 {
		t.Fatalf("error callback fired %d times, want exactly 1", errorEvents)
	}
	if errorCode != StatusTransportError {
		t.Fatalf("error callback code = %v, want %v", errorCode, StatusTransportError)
	}
	if len(statuses) != msgs {
		t.Fatalf("collected %d send statuses, want %d", len(statuses), msgs)
	}
	for i, st := range statuses {
		if st != StatusTransportError && st != StatusFlushed {
			t.Errorf("send %d status = %v, want TransportError or Flushed", i, st)
		}
	}
}

// The same partition under unreliable delivery degrades gracefully: sends
// complete successfully into the void and the VI stays connected.
func TestExhaustionPlanHarmlessWhenUnreliable(t *testing.T) {
	m := provider.CLAN()
	sys := NewSystem(m, 2, 1)
	sys.InstallFaults(exhaustionPlan())

	const msgs = 3
	callbacks := 0

	sys.Go(0, "client", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		nic.SetErrorCallback(func(*Ctx, ErrorEvent) { callbacks++ })
		vi, err := nic.CreateVi(ctx, ViAttributes{}, nil, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if err := vi.ConnectRequest(ctx, 1, "svc", tmo); err != nil {
			t.Errorf("ConnectRequest: %v", err)
			return
		}
		if d := sim.Time(0).Add(6 * sim.Millisecond).Sub(ctx.Now()); d > 0 {
			ctx.Sleep(d)
		}
		buf := ctx.Malloc(512)
		h, err := nic.RegisterMem(ctx, buf)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < msgs; i++ {
			if err := vi.PostSend(ctx, SimpleSend(buf, h, 512)); err != nil {
				t.Errorf("PostSend %d: %v", i, err)
				return
			}
			d, err := vi.SendWait(ctx, sim.Second)
			if err != nil || d.Status != StatusSuccess {
				t.Errorf("send %d: %v %v", i, err, d)
				return
			}
		}
		if vi.State() != ViConnected {
			t.Errorf("VI state = %v, want %v", vi.State(), ViConnected)
		}
	})

	sys.Go(1, "server", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		vi, err := nic.CreateVi(ctx, ViAttributes{}, nil, nil)
		if err != nil {
			t.Error(err)
			return
		}
		req, err := nic.ConnectWait(ctx, "svc", tmo)
		if err != nil {
			t.Error(err)
			return
		}
		if err := req.Accept(ctx, vi); err != nil {
			t.Error(err)
		}
		// Nothing will arrive and nothing is posted; just exit.
	})

	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if callbacks != 0 {
		t.Fatalf("error callback fired %d times on an unreliable VI", callbacks)
	}
}

// --- Chaos soak ---

// chaosPlans reports how many seeded random plans the soak runs; `make
// chaos` raises it through the environment for longer soaks.
func chaosPlans() int {
	if v := os.Getenv("VIBE_CHAOS_PLANS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 50
}

// runChaosCase drives one seeded chaos iteration: a 2-host streaming
// workload over the given model under the given plan, checking the
// invariants that must survive arbitrary faults — the simulation always
// terminates (every wait is bounded, so a hang is a deadlock and Run
// reports it), reliable levels deliver in order without gaps or
// duplicates, any successfully completed receive carries exactly the
// bytes of one sent message, fabric packet accounting conserves
// (delivered = sent - dropped + duplicated), and no switch buffer credit
// leaks.
func runChaosCase(t *testing.T, m *provider.Model, plan *fault.Plan, seed int, rel ReliabilityLevel) *System {
	const (
		msgs = 16
		size = 1200
	)
	sys := NewSystem(m, 2, int64(seed)+1)
	sys.InstallFaults(plan)
	sys.EnableSpans(1)
	base := byte(seed * 7)

	sys.Go(0, "chaos-client", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		nic.SetErrorCallback(func(*Ctx, ErrorEvent) {})
		vi, err := nic.CreateVi(ctx, ViAttributes{Reliability: rel}, nil, nil)
		if err != nil {
			t.Error(err)
			return
		}
		// Faults may eat the handshake; that is a valid outcome,
		// not a failure.
		if err := vi.ConnectRequest(ctx, 1, "chaos", 100*sim.Millisecond); err != nil {
			return
		}
		buf := ctx.Malloc(size)
		h, err := nic.RegisterMem(ctx, buf)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < msgs; i++ {
			// The buffer is reused, so each message waits for its
			// completion before the next refill (retransmissions
			// resend the NIC's own payload snapshot, so completed
			// buffers are free to reuse).
			buf.FillPattern(base + byte(i))
			if err := vi.PostSend(ctx, SimpleSend(buf, h, size)); err != nil {
				return // connection broke: acceptable
			}
			d, err := vi.SendWait(ctx, sim.Second)
			if err != nil || d.Status != StatusSuccess {
				return // broken or stuck: acceptable, but stops cleanly
			}
		}
	})

	sys.Go(1, "chaos-server", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		nic.SetErrorCallback(func(*Ctx, ErrorEvent) {})
		vi, err := nic.CreateVi(ctx, ViAttributes{Reliability: rel}, nil, nil)
		if err != nil {
			t.Error(err)
			return
		}
		bufs := make(map[*Descriptor]*vmem.Buffer, msgs)
		for i := 0; i < msgs; i++ {
			b := ctx.Malloc(size)
			h, err := nic.RegisterMem(ctx, b)
			if err != nil {
				t.Error(err)
				return
			}
			d := SimpleRecv(b, h, size)
			bufs[d] = b
			if err := vi.PostRecv(ctx, d); err != nil {
				t.Error(err)
				return
			}
		}
		req, err := nic.ConnectWait(ctx, "chaos", 100*sim.Millisecond)
		if err != nil {
			return // handshake eaten by the plan
		}
		if err := req.Accept(ctx, vi); err != nil {
			return
		}
		delivered := 0
		for i := 0; i < msgs; i++ {
			d, err := vi.RecvWait(ctx, 200*sim.Millisecond)
			if err != nil {
				break // lost tail (timeout) or empty flushed queue
			}
			if d.Status != StatusSuccess {
				continue // flushed descriptors carry no data
			}
			if d.Length != size {
				t.Errorf("delivery %d: length %d, want %d", i, d.Length, size)
				continue
			}
			b := bufs[d]
			if b == nil {
				t.Errorf("delivery %d: unknown descriptor", i)
				continue
			}
			// Recover which message this is from its first pattern
			// byte, then verify the whole payload.
			idx := int(b.Bytes()[0] - base)
			if idx < 0 || idx >= msgs {
				t.Errorf("delivery %d: unknown pattern seed %#x", i, b.Bytes()[0])
				continue
			}
			if err := b.CheckPattern(base+byte(idx), size); err != nil {
				t.Errorf("delivery %d corrupted: %v", i, err)
			}
			if rel.Reliable() && idx != delivered {
				t.Errorf("reliable delivery %d out of order: got message %d, want %d", i, idx, delivered)
			}
			delivered++
		}
	})

	if err := sys.Run(); err != nil {
		t.Fatalf("plan %d (%s) did not terminate cleanly: %v", seed, rel, err)
	}
	// Span accounting must survive whatever the plan did: no
	// double-closes ever, and no more closes than opens. (Workloads
	// here bail out without disconnecting when faults break the
	// connection, so still-queued descriptors legitimately hold
	// open spans — see TestSpanIntegrityUnderFaults for the
	// balanced-teardown variant.)
	opened, closed, doubles := sys.SpanStats()
	if doubles != 0 {
		t.Errorf("plan %d (%s): %d double-closed spans", seed, rel, doubles)
	}
	if closed > opened {
		t.Errorf("plan %d (%s): closed %d spans but opened only %d", seed, rel, closed, opened)
	}
	// Fabric packet conservation and the credit-leak audit: whatever the
	// plan dropped, duplicated or severed — on any route shape — every
	// packet is accounted for and every claimed switch buffer slot was
	// released.
	if got, want := sys.Net.Delivered, sys.Net.Sent-sys.Net.Dropped+sys.Net.Duplicated; got != want {
		t.Errorf("plan %d (%s): delivered %d, want sent-dropped+duplicated = %d", seed, rel, got, want)
	}
	if n := sys.Net.LeakedCredits(); n != 0 {
		t.Errorf("plan %d (%s): %d switch buffer credits leaked", seed, rel, n)
	}
	return sys
}

// TestChaosSoak throws seeded random fault plans at the crossbar
// streaming workload — see runChaosCase for the invariants.
func TestChaosSoak(t *testing.T) {
	levels := []ReliabilityLevel{Unreliable, ReliableDelivery, ReliableReception}
	for seed := 0; seed < chaosPlans(); seed++ {
		plan := fault.RandomPlan(int64(seed))
		rel := levels[seed%len(levels)]
		t.Run(strconv.Itoa(seed)+"-"+rel.String(), func(t *testing.T) {
			runChaosCase(t, provider.CLAN(), plan, seed, rel)
		})
	}
}

// TestChaosSoakRouted runs the same soak over the routed multi-switch
// topologies with finite buffers, drawing topology-aware plans that add
// switch-down and inter-switch-link-down outages to the legacy fault
// kinds. One host per switch makes every packet multi-hop, so drops,
// outages and reroutes all land mid-route — the paths the credit-leak
// audit exists for.
func TestChaosSoakRouted(t *testing.T) {
	topos := []string{"fattree", "dragonfly", "torus3d"}
	levels := []ReliabilityLevel{Unreliable, ReliableDelivery, ReliableReception}
	for seed := 0; seed < chaosPlans(); seed++ {
		topo := topos[seed%len(topos)]
		rel := levels[seed%len(levels)]
		m := provider.CLAN()
		m.Network.Topology = topo
		m.Network.TopologyDegree = 1
		m.Network.SwitchBufPkts = 2
		switches := fabric.BuildTopology(m.Network, 2).Switches()
		plan := fault.RandomTopoPlan(int64(seed), 2, switches)
		t.Run(strconv.Itoa(seed)+"-"+topo+"-"+rel.String(), func(t *testing.T) {
			runChaosCase(t, m, plan, seed, rel)
		})
	}
}

// TestRoutedFaultConservation pins the credit-leak audit per fault kind:
// for every kind the plan schema knows — packet, element and stall — a
// deterministic plan runs over each routed topology (one host per
// switch, 2-packet buffers) and the fabric must conserve packets
// (delivered = sent - dropped + duplicated, checked inside runChaosCase)
// with zero leaked switch buffer credits. Element-outage kinds must
// actually bite: the run has to record unroutable drops, proving the
// conservation claim covers the reroute/no-path machinery and not an
// inert plan.
func TestRoutedFaultConservation(t *testing.T) {
	n5 := uint64(5)
	f4, t8 := uint64(4), uint64(8)
	for _, topo := range []string{"fattree", "dragonfly", "torus3d"} {
		// Elements every 0<->1 route crosses (see elementOutagePlan).
		sw, link := 1, []int{0, 1}
		if topo == "fattree" {
			sw, link = 2, []int{0, 2}
		}
		cases := []struct {
			name           string
			spec           fault.Spec
			wantUnroutable bool
		}{
			{fault.KindDropNth, fault.Spec{Kind: fault.KindDropNth, Nth: &n5}, false},
			{fault.KindDropRange, fault.Spec{Kind: fault.KindDropRange, From: &f4, To: &t8}, false},
			{fault.KindDrop, fault.Spec{Kind: fault.KindDrop, Prob: 0.2, Count: 100}, false},
			{fault.KindCorrupt, fault.Spec{Kind: fault.KindCorrupt, Prob: 0.2, Count: 100}, false},
			{fault.KindDuplicate, fault.Spec{Kind: fault.KindDuplicate, Prob: 0.2, Count: 100}, false},
			{fault.KindDelay, fault.Spec{Kind: fault.KindDelay, Prob: 0.3, Delay: "40us", Count: 100}, false},
			{fault.KindJitter, fault.Spec{Kind: fault.KindJitter, Prob: 0.3, Delay: "80us", Count: 100}, false},
			{fault.KindLinkDown, fault.Spec{Kind: fault.KindLinkDown, Start: "2ms", End: "3ms"}, false},
			{fault.KindSwitchDown, fault.Spec{Kind: fault.KindSwitchDown, Switch: &sw, Start: "2ms", End: "3ms"}, true},
			{fault.KindSwitchLinkDown, fault.Spec{Kind: fault.KindSwitchLinkDown, Link: link, Start: "2ms", End: "3ms"}, true},
			{fault.KindDoorbellStall, fault.Spec{Kind: fault.KindDoorbellStall, Prob: 0.2, Delay: "30us", Count: 100}, false},
			{fault.KindDMAStall, fault.Spec{Kind: fault.KindDMAStall, Prob: 0.2, Delay: "20us", Count: 100}, false},
		}
		for ci, tc := range cases {
			tc := tc
			t.Run(topo+"/"+tc.name, func(t *testing.T) {
				m := provider.CLAN()
				m.Network.Topology = topo
				m.Network.TopologyDegree = 1
				m.Network.SwitchBufPkts = 2
				plan := &fault.Plan{Seed: int64(ci), Faults: []fault.Spec{tc.spec}}
				sys := runChaosCase(t, m, plan, ci, ReliableDelivery)
				if tc.wantUnroutable && sys.Net.Unroutable == 0 {
					t.Errorf("%s plan recorded no unroutable drops — the outage never bit", tc.name)
				}
			})
		}
	}
}
