package via

import (
	"errors"
	"os"
	"strconv"
	"testing"

	"vibe/internal/fault"
	"vibe/internal/provider"
	"vibe/internal/sim"
	"vibe/internal/vmem"
)

// --- Spec conformance: disconnect flushes, further posts are rejected ---

// VIA spec: VipDisconnect completes all outstanding descriptors with
// VIP_STATUS_FLUSHED, and posting to a VI that has left the connected
// state is an invalid-state error. The peer's posted work flushes too,
// once the disconnect reaches it.
func TestDisconnectFlushesPostedDescriptors(t *testing.T) {
	for _, m := range provider.All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			var serverSawFlush bool
			env := newPair(t, m, ViAttributes{},
				func(ctx *Ctx, vi *Vi, nic *Nic) {
					const n = 256
					buf := ctx.Malloc(n)
					h, err := nic.RegisterMem(ctx, buf)
					if err != nil {
						t.Error(err)
						return
					}
					for i := 0; i < 3; i++ {
						if err := vi.PostRecv(ctx, SimpleRecv(buf, h, n)); err != nil {
							t.Errorf("PostRecv %d: %v", i, err)
							return
						}
					}
					// Give the server time to post its receive before the
					// teardown races past it.
					ctx.Sleep(sim.Millisecond)
					if err := vi.Disconnect(ctx); err != nil {
						t.Errorf("Disconnect: %v", err)
						return
					}
					if vi.State() != ViDisconnected {
						t.Errorf("state after Disconnect = %v", vi.State())
					}
					for i := 0; i < 3; i++ {
						d, ok := vi.RecvDone(ctx)
						if !ok {
							t.Fatalf("descriptor %d not completed by Disconnect", i)
						}
						if d.Status != StatusFlushed {
							t.Errorf("descriptor %d status = %v, want %v", i, d.Status, StatusFlushed)
						}
					}
					if _, ok := vi.RecvDone(ctx); ok {
						t.Error("spurious extra completion")
					}
					if err := vi.PostSend(ctx, SimpleSend(buf, h, n)); !errors.Is(err, ErrInvalidState) {
						t.Errorf("PostSend after Disconnect = %v, want ErrInvalidState", err)
					}
					if err := vi.PostRecv(ctx, SimpleRecv(buf, h, n)); !errors.Is(err, ErrInvalidState) {
						t.Errorf("PostRecv after Disconnect = %v, want ErrInvalidState", err)
					}
					if nic.FlushedDescs != 3 {
						t.Errorf("FlushedDescs = %d, want 3", nic.FlushedDescs)
					}
				},
				func(ctx *Ctx, vi *Vi, nic *Nic) {
					const n = 256
					buf := ctx.Malloc(n)
					h, err := nic.RegisterMem(ctx, buf)
					if err != nil {
						t.Error(err)
						return
					}
					if err := vi.PostRecv(ctx, SimpleRecv(buf, h, n)); err != nil {
						t.Error(err)
						return
					}
					d, err := vi.RecvWait(ctx, tmo)
					if err != nil {
						t.Errorf("peer RecvWait: %v", err)
						return
					}
					if d.Status != StatusFlushed {
						t.Errorf("peer descriptor status = %v, want %v", d.Status, StatusFlushed)
					}
					serverSawFlush = true
				})
			env.run()
			if !serverSawFlush {
				t.Error("server never observed the flush")
			}
		})
	}
}

// --- Retransmission exhaustion: the acceptance scenario ---

// exhaustionPlan severs the fabric permanently shortly after connection
// setup: the handshake goes through, every data packet vanishes.
func exhaustionPlan() *fault.Plan {
	return &fault.Plan{Faults: []fault.Spec{
		{Kind: fault.KindLinkDown, Start: "5ms"},
	}}
}

func TestRetransmissionExhaustionBreaksReliableVi(t *testing.T) {
	m := provider.CLAN()
	sys := NewSystem(m, 2, 1)
	sys.InstallFaults(exhaustionPlan())

	const msgs = 3
	errorEvents := 0
	var errorCode Status
	var statuses []Status

	sys.Go(0, "client", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		nic.SetErrorCallback(func(_ *Ctx, ev ErrorEvent) {
			errorEvents++
			errorCode = ev.Code
		})
		vi, err := nic.CreateVi(ctx, ViAttributes{Reliability: ReliableDelivery}, nil, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if err := vi.ConnectRequest(ctx, 1, "svc", tmo); err != nil {
			t.Errorf("ConnectRequest: %v", err)
			return
		}
		// Wait out the healthy window so every data packet hits the outage.
		if d := sim.Time(0).Add(6 * sim.Millisecond).Sub(ctx.Now()); d > 0 {
			ctx.Sleep(d)
		}
		buf := ctx.Malloc(512)
		h, err := nic.RegisterMem(ctx, buf)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < msgs; i++ {
			if err := vi.PostSend(ctx, SimpleSend(buf, h, 512)); err != nil {
				t.Errorf("PostSend %d: %v", i, err)
				return
			}
		}
		for i := 0; i < msgs; i++ {
			d, err := vi.SendWait(ctx, sim.Second)
			if err != nil {
				t.Errorf("SendWait %d: %v", i, err)
				return
			}
			statuses = append(statuses, d.Status)
		}
		if vi.State() != ViError {
			t.Errorf("VI state = %v, want %v", vi.State(), ViError)
		}
		if err := vi.PostSend(ctx, SimpleSend(buf, h, 512)); !errors.Is(err, ErrInvalidState) {
			t.Errorf("PostSend on errored VI = %v, want ErrInvalidState", err)
		}
		if nic.ConnErrors != 1 {
			t.Errorf("ConnErrors = %d, want 1", nic.ConnErrors)
		}
		if nic.TransportErrs == 0 {
			t.Error("no completion carried StatusTransportError")
		}
		if nic.TransportErrs+nic.FlushedDescs != msgs {
			t.Errorf("transport=%d flushed=%d, want sum %d", nic.TransportErrs, nic.FlushedDescs, msgs)
		}
	})

	sys.Go(1, "server", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		vi, err := nic.CreateVi(ctx, ViAttributes{Reliability: ReliableDelivery}, nil, nil)
		if err != nil {
			t.Error(err)
			return
		}
		buf := ctx.Malloc(512)
		h, err := nic.RegisterMem(ctx, buf)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < msgs; i++ {
			if err := vi.PostRecv(ctx, SimpleRecv(buf, h, 512)); err != nil {
				t.Error(err)
				return
			}
		}
		req, err := nic.ConnectWait(ctx, "svc", tmo)
		if err != nil {
			t.Error(err)
			return
		}
		if err := req.Accept(ctx, vi); err != nil {
			t.Error(err)
			return
		}
		// The partition swallows all data, and the client's disconnect
		// notification dies on the same dead link: the peer cannot be told.
		// One bounded wait outlives the sender's entire backoff ladder.
		if _, err := vi.RecvWait(ctx, sim.Second); !errors.Is(err, ErrTimeout) {
			t.Errorf("server RecvWait = %v, want timeout", err)
		}
	})

	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if errorEvents != 1 {
		t.Fatalf("error callback fired %d times, want exactly 1", errorEvents)
	}
	if errorCode != StatusTransportError {
		t.Fatalf("error callback code = %v, want %v", errorCode, StatusTransportError)
	}
	if len(statuses) != msgs {
		t.Fatalf("collected %d send statuses, want %d", len(statuses), msgs)
	}
	for i, st := range statuses {
		if st != StatusTransportError && st != StatusFlushed {
			t.Errorf("send %d status = %v, want TransportError or Flushed", i, st)
		}
	}
}

// The same partition under unreliable delivery degrades gracefully: sends
// complete successfully into the void and the VI stays connected.
func TestExhaustionPlanHarmlessWhenUnreliable(t *testing.T) {
	m := provider.CLAN()
	sys := NewSystem(m, 2, 1)
	sys.InstallFaults(exhaustionPlan())

	const msgs = 3
	callbacks := 0

	sys.Go(0, "client", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		nic.SetErrorCallback(func(*Ctx, ErrorEvent) { callbacks++ })
		vi, err := nic.CreateVi(ctx, ViAttributes{}, nil, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if err := vi.ConnectRequest(ctx, 1, "svc", tmo); err != nil {
			t.Errorf("ConnectRequest: %v", err)
			return
		}
		if d := sim.Time(0).Add(6 * sim.Millisecond).Sub(ctx.Now()); d > 0 {
			ctx.Sleep(d)
		}
		buf := ctx.Malloc(512)
		h, err := nic.RegisterMem(ctx, buf)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < msgs; i++ {
			if err := vi.PostSend(ctx, SimpleSend(buf, h, 512)); err != nil {
				t.Errorf("PostSend %d: %v", i, err)
				return
			}
			d, err := vi.SendWait(ctx, sim.Second)
			if err != nil || d.Status != StatusSuccess {
				t.Errorf("send %d: %v %v", i, err, d)
				return
			}
		}
		if vi.State() != ViConnected {
			t.Errorf("VI state = %v, want %v", vi.State(), ViConnected)
		}
	})

	sys.Go(1, "server", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		vi, err := nic.CreateVi(ctx, ViAttributes{}, nil, nil)
		if err != nil {
			t.Error(err)
			return
		}
		req, err := nic.ConnectWait(ctx, "svc", tmo)
		if err != nil {
			t.Error(err)
			return
		}
		if err := req.Accept(ctx, vi); err != nil {
			t.Error(err)
		}
		// Nothing will arrive and nothing is posted; just exit.
	})

	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if callbacks != 0 {
		t.Fatalf("error callback fired %d times on an unreliable VI", callbacks)
	}
}

// --- Chaos soak ---

// chaosPlans reports how many seeded random plans the soak runs; `make
// chaos` raises it through the environment for longer soaks.
func chaosPlans() int {
	if v := os.Getenv("VIBE_CHAOS_PLANS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 50
}

// TestChaosSoak throws seeded random fault plans at a streaming workload
// and checks the invariants that must survive arbitrary faults: the
// simulation always terminates (every wait is bounded, so a hang is a
// deadlock and Run reports it), reliable levels deliver in order without
// gaps or duplicates, and any successfully completed receive carries
// exactly the bytes of one sent message.
func TestChaosSoak(t *testing.T) {
	const (
		msgs = 16
		size = 1200
	)
	levels := []ReliabilityLevel{Unreliable, ReliableDelivery, ReliableReception}
	for seed := 0; seed < chaosPlans(); seed++ {
		plan := fault.RandomPlan(int64(seed))
		rel := levels[seed%len(levels)]
		t.Run(strconv.Itoa(seed)+"-"+rel.String(), func(t *testing.T) {
			sys := NewSystem(provider.CLAN(), 2, int64(seed)+1)
			sys.InstallFaults(plan)
			sys.EnableSpans(1)
			base := byte(seed * 7)

			sys.Go(0, "chaos-client", func(ctx *Ctx) {
				nic := ctx.OpenNic()
				nic.SetErrorCallback(func(*Ctx, ErrorEvent) {})
				vi, err := nic.CreateVi(ctx, ViAttributes{Reliability: rel}, nil, nil)
				if err != nil {
					t.Error(err)
					return
				}
				// Faults may eat the handshake; that is a valid outcome,
				// not a failure.
				if err := vi.ConnectRequest(ctx, 1, "chaos", 100*sim.Millisecond); err != nil {
					return
				}
				buf := ctx.Malloc(size)
				h, err := nic.RegisterMem(ctx, buf)
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < msgs; i++ {
					// The buffer is reused, so each message waits for its
					// completion before the next refill (retransmissions
					// resend the NIC's own payload snapshot, so completed
					// buffers are free to reuse).
					buf.FillPattern(base + byte(i))
					if err := vi.PostSend(ctx, SimpleSend(buf, h, size)); err != nil {
						return // connection broke: acceptable
					}
					d, err := vi.SendWait(ctx, sim.Second)
					if err != nil || d.Status != StatusSuccess {
						return // broken or stuck: acceptable, but stops cleanly
					}
				}
			})

			sys.Go(1, "chaos-server", func(ctx *Ctx) {
				nic := ctx.OpenNic()
				nic.SetErrorCallback(func(*Ctx, ErrorEvent) {})
				vi, err := nic.CreateVi(ctx, ViAttributes{Reliability: rel}, nil, nil)
				if err != nil {
					t.Error(err)
					return
				}
				bufs := make(map[*Descriptor]*vmem.Buffer, msgs)
				for i := 0; i < msgs; i++ {
					b := ctx.Malloc(size)
					h, err := nic.RegisterMem(ctx, b)
					if err != nil {
						t.Error(err)
						return
					}
					d := SimpleRecv(b, h, size)
					bufs[d] = b
					if err := vi.PostRecv(ctx, d); err != nil {
						t.Error(err)
						return
					}
				}
				req, err := nic.ConnectWait(ctx, "chaos", 100*sim.Millisecond)
				if err != nil {
					return // handshake eaten by the plan
				}
				if err := req.Accept(ctx, vi); err != nil {
					return
				}
				delivered := 0
				for i := 0; i < msgs; i++ {
					d, err := vi.RecvWait(ctx, 200*sim.Millisecond)
					if err != nil {
						break // lost tail (timeout) or empty flushed queue
					}
					if d.Status != StatusSuccess {
						continue // flushed descriptors carry no data
					}
					if d.Length != size {
						t.Errorf("delivery %d: length %d, want %d", i, d.Length, size)
						continue
					}
					b := bufs[d]
					if b == nil {
						t.Errorf("delivery %d: unknown descriptor", i)
						continue
					}
					// Recover which message this is from its first pattern
					// byte, then verify the whole payload.
					idx := int(b.Bytes()[0] - base)
					if idx < 0 || idx >= msgs {
						t.Errorf("delivery %d: unknown pattern seed %#x", i, b.Bytes()[0])
						continue
					}
					if err := b.CheckPattern(base+byte(idx), size); err != nil {
						t.Errorf("delivery %d corrupted: %v", i, err)
					}
					if rel.Reliable() && idx != delivered {
						t.Errorf("reliable delivery %d out of order: got message %d, want %d", i, idx, delivered)
					}
					delivered++
				}
			})

			if err := sys.Run(); err != nil {
				t.Fatalf("plan %d (%s) did not terminate cleanly: %v", seed, rel, err)
			}
			// Span accounting must survive whatever the plan did: no
			// double-closes ever, and no more closes than opens. (Workloads
			// here bail out without disconnecting when faults break the
			// connection, so still-queued descriptors legitimately hold
			// open spans — see TestSpanIntegrityUnderFaults for the
			// balanced-teardown variant.)
			opened, closed, doubles := sys.SpanStats()
			if doubles != 0 {
				t.Errorf("plan %d (%s): %d double-closed spans", seed, rel, doubles)
			}
			if closed > opened {
				t.Errorf("plan %d (%s): closed %d spans but opened only %d", seed, rel, closed, opened)
			}
		})
	}
}
