package via

import (
	"strings"
	"testing"

	"vibe/internal/provider"
	"vibe/internal/sim"
)

// Accessor, stringer, and small-surface coverage: these are part of the
// public API contract, so they get pinned even though they carry no
// logic.

func TestStringers(t *testing.T) {
	for s, want := range map[interface{ String() string }]string{
		StatusSuccess:       "SUCCESS",
		StatusFlushed:       "DESCRIPTOR_FLUSHED",
		Status(99):          "UNKNOWN_STATUS",
		Unreliable:          "unreliable",
		ReliableReception:   "reliable-reception",
		ReliabilityLevel(9): "reliability(9)",
		OpSend:              "send",
		OpRdmaWrite:         "rdma-write",
		OpRdmaRead:          "rdma-read",
		Op(9):               "op(9)",
		ViIdle:              "idle",
		ViConnected:         "connected",
		ViDisconnected:      "disconnected",
		ViError:             "error",
		ViDestroyed:         "destroyed",
		ViState(9):          "state(9)",
		pktData:             "data",
		pktAck:              "ack",
		pktErrAck:           "err-ack",
		pktRdmaWrite:        "rdma-write",
		pktRdmaReadReq:      "rdma-read-req",
		pktRdmaReadResp:     "rdma-read-resp",
		pktConnReq:          "conn-req",
		pktConnAccept:       "conn-accept",
		pktConnReject:       "conn-reject",
		pktDisconnect:       "disconnect",
		pktKind(99):         "pkt(99)",
	} {
		if got := s.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestDescriptorHelpers(t *testing.T) {
	d := &Descriptor{Op: OpSend, Segs: []DataSegment{{Length: 10}, {Length: 22}}}
	if d.TotalLength() != 32 {
		t.Errorf("TotalLength = %d", d.TotalLength())
	}
	if d.Done() {
		t.Error("fresh descriptor done")
	}
	if !strings.Contains(d.String(), "32B") {
		t.Errorf("String = %q", d.String())
	}
}

func TestSystemAndHostAccessors(t *testing.T) {
	sys := NewSystem(provider.CLAN(), 3, 1)
	if sys.Hosts() != 3 {
		t.Errorf("Hosts = %d", sys.Hosts())
	}
	h := sys.Host(2)
	if h.ID() != 2 || h.System() != sys {
		t.Error("host accessors")
	}
	sys.Go(0, "p", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		if nic.Host() != sys.Host(0) {
			t.Error("Nic.Host")
		}
		if nic.TLB() != nil {
			t.Error("clan has no TLB")
		}
		vi, _ := nic.CreateVi(ctx, ViAttributes{EnableRdmaWrite: true}, nil, nil)
		if vi.Nic() != nic || !vi.Attributes().EnableRdmaWrite {
			t.Error("vi accessors")
		}
		if vi.SendQueueDepth() != 0 || vi.RecvQueueDepth() != 0 {
			t.Error("fresh queue depths")
		}
		// Compute burns CPU.
		before := ctx.Host.CPU.Busy()
		ctx.Compute(100 * sim.Microsecond)
		if ctx.Host.CPU.Busy()-before != 100*sim.Microsecond {
			t.Error("Compute accounting")
		}
	})
	sys.MustRun() // exercises MustRun
	bv := NewSystem(provider.BVIA(), 1, 1)
	bv.Go(0, "p", func(ctx *Ctx) {
		if ctx.OpenNic().TLB() == nil {
			t.Error("bvia must expose its TLB")
		}
	})
	bv.MustRun()
}

func TestConnRequestAccessors(t *testing.T) {
	sys := NewSystem(provider.CLAN(), 2, 1)
	sys.Go(0, "client", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		vi, _ := nic.CreateVi(ctx, ViAttributes{Reliability: ReliableDelivery}, nil, nil)
		vi.ConnectRequest(ctx, 1, "acc", tmo)
	})
	sys.Go(1, "server", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		req, err := nic.ConnectWait(ctx, "acc", tmo)
		if err != nil {
			t.Error(err)
			return
		}
		if req.Discriminator() != "acc" || req.RemoteNode() != 0 || req.Reliability() != ReliableDelivery {
			t.Errorf("request accessors: %q %v %v", req.Discriminator(), req.RemoteNode(), req.Reliability())
		}
		vi, _ := nic.CreateVi(ctx, ViAttributes{Reliability: ReliableDelivery}, nil, nil)
		req.Accept(ctx, vi)
	})
	sys.MustRun()
}

func TestCQLenAndWaitBlockForever(t *testing.T) {
	sys := NewSystem(provider.CLAN(), 2, 1)
	sys.Go(0, "client", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		vi, _ := nic.CreateVi(ctx, ViAttributes{}, nil, nil)
		if err := vi.ConnectRequest(ctx, 1, "cqb", tmo); err != nil {
			t.Error(err)
			return
		}
		buf := ctx.Malloc(64)
		h, _ := nic.RegisterMem(ctx, buf)
		ctx.Sleep(2 * sim.Millisecond) // let the server block first
		vi.PostSend(ctx, SimpleSend(buf, h, 64))
		vi.SendWaitPoll(ctx)
	})
	sys.Go(1, "server", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		cq, _ := nic.CreateCQ(ctx, 4)
		if cq.Len() != 0 {
			t.Error("fresh CQ non-empty")
		}
		vi, _ := nic.CreateVi(ctx, ViAttributes{}, nil, cq)
		buf := ctx.Malloc(64)
		h, _ := nic.RegisterMem(ctx, buf)
		vi.PostRecv(ctx, SimpleRecv(buf, h, 64))
		req, _ := nic.ConnectWait(ctx, "cqb", tmo)
		req.Accept(ctx, vi)
		meter := ctx.Host.CPU.StartMeter()
		c, err := cq.WaitBlockForever(ctx)
		if err != nil || !c.IsRecv {
			t.Errorf("WaitBlockForever: %v %+v", err, c)
			return
		}
		if meter.Utilization() > 0.05 {
			t.Errorf("WaitBlockForever burned CPU: %.2f", meter.Utilization())
		}
	})
	sys.MustRun()
}

func TestPolicyAndSiteAccessorsViaNicAttributes(t *testing.T) {
	sys := NewSystem(provider.MVIA(), 1, 1)
	sys.Go(0, "p", func(ctx *Ctx) {
		a := ctx.OpenNic().Attributes()
		if !a.RdmaReadSupported || a.WireMTU != 1500 {
			t.Errorf("mvia attributes: %+v", a)
		}
	})
	sys.MustRun()
}
