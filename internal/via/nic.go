package via

import (
	"vibe/internal/fault"
	"vibe/internal/nicsim"
	"vibe/internal/provider"
	"vibe/internal/sim"
)

// Nic is one host's VIA network interface: the user-facing provider object
// (mirroring the VipNic handle) plus the simulated NIC processor state.
type Nic struct {
	host  *Host
	model *provider.Model

	vis      map[int]*Vi
	nextViID int
	openVIs  int

	regions    map[MemHandle]*region
	nextHandle MemHandle

	tlb *nicsim.TLB

	// doorbells carries send work notifications from the host to the NIC
	// send engine. Rung doorbells are recycled through dbFree so steady
	//-state posting does not allocate.
	doorbells *sim.Queue[*doorbell]
	dbFree    []*doorbell

	// Connection management state (see conn.go).
	pendingConns []*ConnRequest
	connArrived  *sim.Signal
	nextConnReq  uint64

	nextMsgID  uint64
	nextReadID uint64

	// Counters exposed for tests and reports. SendsProcessed counts
	// doorbells the send engine consumed; each consumption is also exactly
	// one descriptor fetch in this NIC model.
	SendsProcessed uint64
	RecvsCompleted uint64
	DroppedNoDesc  uint64

	// Data-path counters for the metrics layer: wire fragments and DMA
	// bytes in each direction, acks on the reliability protocol, and
	// posted work by operation.
	FragsSent   uint64
	FragsRecv   uint64
	DMABytesOut uint64
	DMABytesIn  uint64
	AcksSent    uint64
	AcksRecv    uint64

	PostedSends uint64
	PostedRecvs uint64
	RdmaWrites  uint64
	RdmaReads   uint64

	// completions counts completed descriptors by the VI's reliability
	// level (Unreliable, ReliableDelivery, ReliableReception).
	completions [3]uint64

	// completions by terminal status, for the error-semantics paths:
	// FlushedDescs counts descriptors completed StatusFlushed (queue
	// flushes at disconnect/failure), TransportErrs counts
	// StatusTransportError completions (retransmission exhaustion).
	FlushedDescs  uint64
	TransportErrs uint64

	// Fault-injection observability: frames discarded by the receive
	// engine's CRC check, virtual time lost to injected doorbell/DMA
	// stalls, and connections broken by transport failure.
	CorruptDrops   uint64
	FaultStallTime sim.Duration
	ConnErrors     uint64

	// Window/sequence counters absorbed from connections at teardown;
	// live connections are added on top at collection time.
	winAcked, winRetransmits uint64
	recvDups, recvGaps       uint64
	rtoBackoffs              uint64

	// Busy-time attribution: virtual time the NIC engines spent in each
	// cost-component phase, accumulated alongside the Sleeps that model
	// them. Always on (plain additions), feeding both the nic{i}.busy.*
	// metrics keys and the virtual-time profiler.
	BusyDoorbell sim.Duration
	BusyFetch    sim.Duration
	BusyFrag     sim.Duration
	BusyXlate    sim.Duration
	BusyDMA      sim.Duration
	BusyAck      sim.Duration

	// faults is the system's compiled fault plan (nil when none): the
	// send/receive engines consult it for doorbell and DMA stalls.
	faults *fault.Injector

	// errCB, when set, receives asynchronous connection-failure events —
	// the VipErrorCallback analogue. See SetErrorCallback.
	errCB func(*Ctx, ErrorEvent)
}

// ErrorEvent describes an asynchronous VIA error: the affected VI and the
// status its in-flight work completed with.
type ErrorEvent struct {
	Vi   *Vi
	Code Status
}

// SetErrorCallback installs handler as the NIC's asynchronous error
// handler, the analogue of VipErrorCallback: when a connection fails
// (retransmission exhaustion, fatal protection error), the handler runs
// in a fresh process after the provider's dispatch cost, exactly once per
// failure. Pass nil to remove it.
func (n *Nic) SetErrorCallback(handler func(*Ctx, ErrorEvent)) {
	n.errCB = handler
}

// countStatus attributes one descriptor completion to the error-semantics
// counters.
func (n *Nic) countStatus(st Status) {
	switch st {
	case StatusFlushed:
		n.FlushedDescs++
	case StatusTransportError:
		n.TransportErrs++
	}
}

// fireError counts a connection failure and dispatches the error handler
// asynchronously. failConn guarantees it runs at most once per failure.
func (n *Nic) fireError(vi *Vi, code Status) {
	n.ConnErrors++
	cb := n.errCB
	if cb == nil {
		return
	}
	h := n.host
	h.sys.Eng.Spawn(procName(h, "err-cb"), func(p *sim.Proc) {
		ctx := &Ctx{P: p, Host: h}
		ctx.use(n.model.NotifyDispatch)
		cb(ctx, ErrorEvent{Vi: vi, Code: code})
	})
}

func newNic(h *Host) *Nic {
	m := h.sys.Model
	n := &Nic{
		host:        h,
		model:       m,
		vis:         make(map[int]*Vi),
		regions:     make(map[MemHandle]*region),
		doorbells:   sim.NewQueue[*doorbell](h.sys.Eng),
		connArrived: sim.NewSignal(h.sys.Eng),
	}
	if m.TranslationAt == provider.TranslateAtNIC && m.TablesAt == provider.TablesInHostMemory {
		n.tlb = nicsim.NewTLB(m.TLBCapacity, m.TLBPolicy)
	}
	eng := h.sys.Eng
	inbox := h.sys.Net.Inbox(h.id)
	if h.sys.pm == ModelGoroutine {
		// Reference model: each engine is a daemon process driving its
		// machine through blocking Pops and Sleeps.
		eng.Spawn(procName(h, "nic-send"), func(p *sim.Proc) {
			p.SetDaemon(true)
			n.doorbells.ServeProc(p, &sendMachine{n: n})
		})
		eng.Spawn(procName(h, "nic-recv"), func(p *sim.Proc) {
			p.SetDaemon(true)
			inbox.ServeProc(p, &recvMachine{n: n})
		})
		return n
	}
	// Zero-handoff model: the same machines run as event-loop services.
	// The two inert anchor events sit exactly where the goroutine model's
	// two process-start events would, keeping the engines' event sequence
	// numbers — and therefore every downstream (time, seq) tie-break —
	// identical between the models.
	eng.At(eng.Now(), func() {})
	eng.At(eng.Now(), func() {})
	n.doorbells.Serve(&sendMachine{n: n})
	inbox.Serve(&recvMachine{n: n})
	return n
}

func procName(h *Host, s string) string {
	return s + "@" + string(rune('0'+int(h.id)))
}

// Host returns the NIC's host.
func (n *Nic) Host() *Host { return n.host }

// ring posts a doorbell for (vi, d), reusing a recycled one if available.
func (n *Nic) ring(vi *Vi, d *Descriptor) {
	var db *doorbell
	if k := len(n.dbFree); k > 0 {
		db = n.dbFree[k-1]
		n.dbFree[k-1] = nil
		n.dbFree = n.dbFree[:k-1]
	} else {
		db = &doorbell{}
	}
	db.vi, db.desc = vi, d
	n.doorbells.Push(db)
}

// rung returns a doorbell consumed by the send engine to the free list.
func (n *Nic) rung(db *doorbell) {
	db.vi, db.desc = nil, nil
	n.dbFree = append(n.dbFree, db)
}

// Attributes describes the provider, mirroring VipQueryNic.
func (n *Nic) Attributes() NicAttributes {
	var levels []ReliabilityLevel
	for _, lv := range []ReliabilityLevel{Unreliable, ReliableDelivery, ReliableReception} {
		if n.model.Supports(uint8(lv)) {
			levels = append(levels, lv)
		}
	}
	return NicAttributes{
		Name:                 n.model.Name,
		MaxTransferSize:      n.model.MaxTransferSize,
		MaxSegments:          n.model.MaxSegments,
		WireMTU:              n.model.WireMTU,
		RdmaWriteSupported:   n.model.SupportsRDMAWrite,
		RdmaReadSupported:    n.model.SupportsRDMARead,
		ReliabilitySupported: levels,
	}
}

// TLB exposes the NIC translation cache for tests and ablation reports
// (nil when the provider does not use one).
func (n *Nic) TLB() *nicsim.TLB { return n.tlb }

// OpenVIs reports the number of live VIs on this NIC.
func (n *Nic) OpenVIs() int { return n.openVIs }

// CreateVi creates a VI with the given attributes, optionally associating
// its work queues with completion queues, mirroring VipCreateVi. Either CQ
// may be nil.
func (n *Nic) CreateVi(ctx *Ctx, attrs ViAttributes, sendCQ, recvCQ *CQ) (*Vi, error) {
	if !n.model.Supports(uint8(attrs.Reliability)) {
		return nil, ErrNotSupported
	}
	if attrs.EnableRdmaWrite && !n.model.SupportsRDMAWrite {
		return nil, ErrNotSupported
	}
	if attrs.EnableRdmaRead && !n.model.SupportsRDMARead {
		return nil, ErrNotSupported
	}
	if attrs.MaxTransferSize == 0 || attrs.MaxTransferSize > n.model.MaxTransferSize {
		attrs.MaxTransferSize = n.model.MaxTransferSize
	}
	for _, cq := range []*CQ{sendCQ, recvCQ} {
		if cq != nil && cq.destroyed {
			return nil, ErrDestroyed
		}
	}
	ctx.use(n.model.ViCreate)

	n.nextViID++
	vi := &Vi{
		nic:       n,
		id:        n.nextViID,
		attrs:     attrs,
		state:     ViIdle,
		connReply: sim.NewSignal(n.host.sys.Eng),
	}
	vi.sendQ = newWorkQueue(n.host, vi, false, sendCQ)
	vi.recvQ = newWorkQueue(n.host, vi, true, recvCQ)
	n.vis[vi.id] = vi
	n.openVIs++
	return vi, nil
}

// CreateCQ creates a completion queue of the given depth, mirroring
// VipCreateCQ.
func (n *Nic) CreateCQ(ctx *Ctx, depth int) (*CQ, error) {
	if depth <= 0 {
		return nil, ErrLength
	}
	ctx.use(n.model.CqCreate)
	return &CQ{nic: n, depth: depth, sig: sim.NewSignal(n.host.sys.Eng)}, nil
}
