// Package via is a complete software implementation of the Virtual
// Interface Architecture on top of a deterministic discrete-event
// hardware simulation. The user-facing API mirrors VIPL: NICs, VIs with
// send/receive work queues, descriptor-based data transfer, memory
// registration, completion queues, connection management, RDMA, and the
// three VIA reliability levels.
//
// The same engine implements every provider; a provider.Model selects the
// behaviours (where translation runs, whether the host copies, whether the
// firmware polls each VI) and the cost constants.
package via

import (
	"fmt"

	"vibe/internal/cpu"
	"vibe/internal/fabric"
	"vibe/internal/fault"
	"vibe/internal/metrics"
	"vibe/internal/nicsim"
	"vibe/internal/prof"
	"vibe/internal/provider"
	"vibe/internal/sim"
	"vibe/internal/vmem"
)

// ProcModel selects how the hot NIC/fabric actors execute. Both models
// produce byte-identical simulations — same results, metrics, spans,
// traces, event counts — because both drive the same sim.Machine state
// machines through event streams with identical (time, seq) positions
// (see internal/sim/actor.go for the argument).
type ProcModel int

const (
	// ModelActor runs the NIC engines as event-loop services: every
	// transition is a continuation event dispatched inline, with zero
	// goroutine handoffs on the data path. The default.
	ModelActor ProcModel = iota
	// ModelGoroutine runs the NIC engines as daemon goroutine processes,
	// one blocking Sleep per transition: the reference model, kept as the
	// executable specification and equivalence-test oracle.
	ModelGoroutine
)

// System is a simulated cluster: an engine, a fabric, and a set of hosts
// each with one VIA NIC.
type System struct {
	Eng   *sim.Engine
	Net   *fabric.Network
	Model *provider.Model
	pm    ProcModel
	hosts []*Host

	// bufs and pktFree are engine-local free lists for wire payload
	// snapshots and wirePacket headers. Only packets outside any
	// retransmission window are ever recycled (see recvEngine), so a
	// pooled buffer can never alias an in-flight retransmission.
	bufs    *nicsim.BufPool
	pktFree []*wirePacket

	// collector, when set, receives the system's metrics snapshot once,
	// after the first Run completes (see SetCollector in metrics.go).
	collector *metrics.Collector
	collected bool

	// faults is the system's compiled fault plan, nil when none is
	// installed (see InstallFaults).
	faults *fault.Injector

	// spans, when set, samples message lifecycles into per-phase latency
	// histograms (see span.go / EnableSpans).
	spans *spanTracker

	// profile, when set, receives per-component virtual-time attribution
	// after the first Run (see SetProfile in metrics.go).
	profile  *prof.Scope
	profiled bool
}

// InstallFaults compiles a fault plan into this system: the injector
// hooks the fabric's packet path and every NIC's doorbell/DMA paths.
// Each system compiles its own injector, so per-spec state (application
// counts, the plan RNG) never leaks between simulations and a plan
// replays identically. Empty or nil plans install nothing — the
// simulation stays byte-identical to an uninstrumented run.
func (s *System) InstallFaults(p *fault.Plan) {
	if p.Empty() {
		return
	}
	inj := p.NewInjector()
	s.faults = inj
	s.Net.AddInjector(inj)
	if inj.HasElementFaults() {
		// Switch/link outages hook route selection: the fabric steers each
		// packet around dead elements (or drops it when no candidate path
		// survives). Installed only when the plan declares one, so routing
		// for every other plan stays on the exact pre-multipath path.
		s.Net.SetElementOracle(inj)
	}
	for _, h := range s.hosts {
		h.nic.faults = inj
	}
}

// getPkt draws a zeroed wirePacket from the free list, allocating on miss.
func (s *System) getPkt() *wirePacket {
	if n := len(s.pktFree); n > 0 {
		pkt := s.pktFree[n-1]
		s.pktFree[n-1] = nil
		s.pktFree = s.pktFree[:n-1]
		return pkt
	}
	return &wirePacket{}
}

// recyclePkt returns a consumed packet (and its payload snapshot) to the
// free lists. The caller must guarantee no reference to pkt or its data
// survives — in particular that pkt is not parked in a sender's
// retransmission window.
func (s *System) recyclePkt(pkt *wirePacket) {
	if pkt.data != nil {
		s.bufs.Put(pkt.data)
	}
	*pkt = wirePacket{}
	s.pktFree = append(s.pktFree, pkt)
}

// NewSystem builds a cluster of n hosts connected by the model's network.
// The seed drives all randomness (loss injection); equal seeds give
// identical runs.
func NewSystem(model *provider.Model, n int, seed int64) *System {
	return NewSystemProc(model, n, seed, ModelActor)
}

// NewSystemProc is NewSystem with an explicit process model for the hot
// NIC actors. The model is observationally invisible (see ProcModel);
// ModelGoroutine exists for equivalence testing and as a readable
// reference.
func NewSystemProc(model *provider.Model, n int, seed int64, pm ProcModel) *System {
	eng := sim.NewEngine(seed)
	net := fabric.New(eng, n, model.Network)
	sys := &System{Eng: eng, Net: net, Model: model, pm: pm, bufs: nicsim.NewBufPool()}
	for i := 0; i < n; i++ {
		h := &Host{
			sys: sys,
			id:  fabric.NodeID(i),
			CPU: cpu.New(eng),
			AS:  vmem.NewAddressSpace(),
		}
		h.nic = newNic(h)
		sys.hosts = append(sys.hosts, h)
	}
	return sys
}

// ProcModel reports which process model the system's NIC actors use.
func (s *System) ProcModel() ProcModel { return s.pm }

// Close verifies the simulation wound down without leaking processes
// (every daemon and callback process parked or finished — see
// sim.Engine.CheckLeaks) and then tears the engine down so no goroutine
// outlives the system. Safe to call more than once; the system must not
// be used afterwards.
func (s *System) Close() error {
	err := s.Eng.CheckLeaks()
	s.Eng.Shutdown()
	return err
}

// Host returns host i.
func (s *System) Host(i int) *Host { return s.hosts[i] }

// Hosts reports the number of hosts.
func (s *System) Hosts() int { return len(s.hosts) }

// Go spawns a user process on host node. The function runs in virtual
// time, interleaved deterministically with all other processes.
func (s *System) Go(node int, name string, fn func(ctx *Ctx)) {
	h := s.hosts[node]
	s.Eng.Spawn(fmt.Sprintf("h%d/%s", node, name), func(p *sim.Proc) {
		fn(&Ctx{P: p, Host: h})
	})
}

// Run drives the simulation until every user process finishes. It returns
// an error on deadlock (a protocol bug in the simulated code). If a metrics
// collector is installed, the system's snapshot is merged into it when the
// first Run completes.
func (s *System) Run() error {
	err := s.Eng.Run()
	if s.collector != nil && !s.collected {
		s.collected = true
		s.collector.Merge(s.CollectMetrics())
	}
	if s.profile != nil && !s.profiled {
		s.profiled = true
		s.CollectProfile(s.profile)
	}
	return err
}

// MustRun is Run, panicking on error.
func (s *System) MustRun() {
	if err := s.Run(); err != nil {
		panic(err)
	}
}

// Host is one simulated machine: a CPU, an address space, and a VIA NIC.
type Host struct {
	sys *System
	id  fabric.NodeID
	CPU *cpu.CPU
	AS  *vmem.AddressSpace
	nic *Nic
}

// ID returns the host's fabric node id.
func (h *Host) ID() fabric.NodeID { return h.id }

// System returns the owning system.
func (h *Host) System() *System { return h.sys }

// Ctx is the execution context of one user process: the simulated process
// plus the host it runs on. All VIPL-style calls take a Ctx so their costs
// land on the right CPU.
type Ctx struct {
	P    *sim.Proc
	Host *Host
}

// Now reports the current virtual time.
func (c *Ctx) Now() sim.Time { return c.P.Now() }

// Sleep suspends the process for d without consuming CPU (e.g. modeling a
// think time).
func (c *Ctx) Sleep(d sim.Duration) { c.P.Sleep(d) }

// Compute models d of application computation on the host CPU.
func (c *Ctx) Compute(d sim.Duration) { c.Host.CPU.Use(c.P, d) }

// Malloc allocates a page-aligned buffer in the host's address space.
// Allocation itself is free in virtual time (the benchmarks allocate
// outside their timed sections, as the paper does).
func (c *Ctx) Malloc(n int) *vmem.Buffer { return c.Host.AS.Alloc(n) }

// OpenNic returns the host's VIA NIC, mirroring VipOpenNic.
func (c *Ctx) OpenNic() *Nic { return c.Host.nic }

// use charges d of host CPU.
func (c *Ctx) use(d sim.Duration) { c.Host.CPU.Use(c.P, d) }
