package via

import (
	"strconv"
	"testing"

	"vibe/internal/fault"
	"vibe/internal/provider"
	"vibe/internal/sim"
	"vibe/internal/vmem"
)

// runSpanWorkload drives msgs reliable sends client→server on a
// span-sampled system and tears the connection down explicitly, so every
// sampled span must end up closed (completed, errored, or flushed).
func runSpanWorkload(t *testing.T, sys *System, msgs, size int) {
	t.Helper()
	sys.Go(0, "client", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		nic.SetErrorCallback(func(*Ctx, ErrorEvent) {})
		vi, err := nic.CreateVi(ctx, ViAttributes{Reliability: ReliableDelivery}, nil, nil)
		if err != nil {
			t.Error(err)
			return
		}
		defer vi.Destroy(ctx)
		if err := vi.ConnectRequest(ctx, 1, "span", 100*sim.Millisecond); err != nil {
			return // handshake eaten by the plan: nothing sampled, nothing leaked
		}
		defer vi.Disconnect(ctx)
		buf := ctx.Malloc(size)
		h, err := nic.RegisterMem(ctx, buf)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < msgs; i++ {
			if err := vi.PostSend(ctx, SimpleSend(buf, h, size)); err != nil {
				return // connection broke: Disconnect/Destroy still flush
			}
			if _, err := vi.SendWait(ctx, sim.Second); err != nil {
				return
			}
		}
	})
	sys.Go(1, "server", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		nic.SetErrorCallback(func(*Ctx, ErrorEvent) {})
		vi, err := nic.CreateVi(ctx, ViAttributes{Reliability: ReliableDelivery}, nil, nil)
		if err != nil {
			t.Error(err)
			return
		}
		defer vi.Destroy(ctx)
		bufs := make([]*vmem.Buffer, msgs)
		for i := range bufs {
			bufs[i] = ctx.Malloc(size)
			h, err := nic.RegisterMem(ctx, bufs[i])
			if err != nil {
				t.Error(err)
				return
			}
			if err := vi.PostRecv(ctx, SimpleRecv(bufs[i], h, size)); err != nil {
				t.Error(err)
				return
			}
		}
		req, err := nic.ConnectWait(ctx, "span", 100*sim.Millisecond)
		if err != nil {
			return
		}
		if err := req.Accept(ctx, vi); err != nil {
			return
		}
		defer vi.Disconnect(ctx)
		for i := 0; i < msgs; i++ {
			if _, err := vi.RecvWait(ctx, 200*sim.Millisecond); err != nil {
				return
			}
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestSpanLifecycleClean checks the happy path: every sampled span opens
// and closes exactly once, and the per-phase histograms cover both
// directions of the transfer.
func TestSpanLifecycleClean(t *testing.T) {
	sys := NewSystem(provider.CLAN(), 2, 1)
	sys.EnableSpans(1)
	runSpanWorkload(t, sys, 8, 1200)

	opened, closed, doubles := sys.SpanStats()
	if opened == 0 {
		t.Fatal("no spans sampled")
	}
	if opened != closed {
		t.Errorf("opened %d spans, closed %d: leak", opened, closed)
	}
	if doubles != 0 {
		t.Errorf("%d double-closes", doubles)
	}

	tr := sys.spans
	if tr.totals[pathSend].Count() == 0 {
		t.Error("no send spans recorded")
	}
	if tr.totals[pathRecv].Count() == 0 {
		t.Error("no recv spans recorded")
	}
	for _, ph := range []spanPhase{phasePost, phaseDoorbell, phaseFetch, phaseWire, phaseDMA, phaseAck} {
		if tr.phaseH[pathSend][ph].Count() == 0 {
			t.Errorf("send path: phase %s never attributed", phaseNames[ph])
		}
	}
}

// TestSpanSampling checks the -span-sample stride: with sampling 1 in N,
// roughly 1/N of the messages allocate spans, and the unsampled rest are
// free (nil span pointers everywhere).
func TestSpanSampling(t *testing.T) {
	const msgs = 16
	sys := NewSystem(provider.CLAN(), 2, 1)
	sys.EnableSpans(4)
	runSpanWorkload(t, sys, msgs, 1200)

	opened, closed, doubles := sys.SpanStats()
	if doubles != 0 {
		t.Errorf("%d double-closes", doubles)
	}
	if opened != closed {
		t.Errorf("opened %d, closed %d", opened, closed)
	}
	// 16 sends and 16 recv consumes pass through open(); stride 4 samples
	// a quarter of each stream (interleaving may shift the split by one).
	if opened < 6 || opened > 10 {
		t.Errorf("sampled %d spans from %d messages at stride 4", opened, 2*msgs)
	}
}

// TestSpanIntegrityUnderFaults is the chaos guard for span accounting:
// across many random fault plans — drops, duplicates, corruption, delays,
// stalls, retransmissions, broken connections — spans must never leak
// (the workload tears down explicitly, so every open span funnels
// through complete or flush) and never double-close.
func TestSpanIntegrityUnderFaults(t *testing.T) {
	for seed := 0; seed < 30; seed++ {
		t.Run(strconv.Itoa(seed), func(t *testing.T) {
			sys := NewSystem(provider.CLAN(), 2, int64(seed)+1)
			sys.InstallFaults(fault.RandomPlan(int64(seed)))
			sys.EnableSpans(1)
			runSpanWorkload(t, sys, 12, 1200)

			opened, closed, doubles := sys.SpanStats()
			if doubles != 0 {
				t.Errorf("seed %d: %d double-closed spans", seed, doubles)
			}
			if opened != closed {
				t.Errorf("seed %d: opened %d spans, closed %d: leak", seed, opened, closed)
			}
		})
	}
}

// TestSpansDoNotChangeVirtualTime is the local version of the
// zero-overhead guarantee: the same workload with and without span
// recording finishes at the same virtual instant with the same event
// count.
func TestSpansDoNotChangeVirtualTime(t *testing.T) {
	run := func(spans bool) (sim.Time, uint64) {
		sys := NewSystem(provider.BVIA(), 2, 42)
		if spans {
			sys.EnableSpans(1)
		}
		runSpanWorkload(t, sys, 8, 4096)
		return sys.Eng.Now(), sys.Eng.EventsDispatched()
	}
	bareT, bareEv := run(false)
	spanT, spanEv := run(true)
	if spanT != bareT {
		t.Errorf("virtual end time: with spans %v != bare %v", spanT, bareT)
	}
	if spanEv != bareEv {
		t.Errorf("events dispatched: with spans %d != bare %d", spanEv, bareEv)
	}
}
