package via

import (
	"fmt"

	"vibe/internal/vmem"
)

// segRun is one resolved data segment: its virtual address plus the
// backing storage, so the NIC engine can DMA without re-resolving.
type segRun struct {
	addr vmem.Addr
	data []byte
}

// resolveSegs maps a descriptor's data segments to backing storage. It
// fails if any segment is unmapped, which the simulated NIC treats as a
// fault.
func resolveSegs(as *vmem.AddressSpace, segs []DataSegment) ([]segRun, error) {
	runs := make([]segRun, 0, len(segs))
	for i, s := range segs {
		data, err := as.Resolve(s.Addr, s.Length)
		if err != nil {
			return nil, fmt.Errorf("via: segment %d: %w", i, err)
		}
		runs = append(runs, segRun{addr: s.Addr, data: data})
	}
	return runs, nil
}

// totalLen sums the resolved run lengths.
func totalLen(runs []segRun) int {
	n := 0
	for _, r := range runs {
		n += len(r.data)
	}
	return n
}

// gather copies n bytes starting at logical offset off (across the
// concatenated runs) into dst. It models the NIC's gathering DMA read.
func gather(runs []segRun, off int, dst []byte) {
	copyRuns(runs, off, len(dst), func(seg []byte, dstOff int) {
		copy(dst[dstOff:], seg)
	})
}

// scatter copies src into the concatenated runs starting at logical offset
// off. It models the NIC's scattering DMA write.
func scatter(runs []segRun, off int, src []byte) {
	copyRuns(runs, off, len(src), func(seg []byte, srcOff int) {
		copy(seg, src[srcOff:srcOff+len(seg)])
	})
}

// copyRuns walks the byte range [off, off+n) of the concatenated runs and
// invokes fn for each contiguous piece with its offset relative to the
// start of the range.
func copyRuns(runs []segRun, off, n int, fn func(piece []byte, rangeOff int)) {
	if n == 0 {
		return
	}
	rangeOff := 0
	for _, r := range runs {
		if n <= 0 {
			return
		}
		if off >= len(r.data) {
			off -= len(r.data)
			continue
		}
		take := len(r.data) - off
		if take > n {
			take = n
		}
		fn(r.data[off:off+take], rangeOff)
		rangeOff += take
		n -= take
		off = 0
	}
	if n > 0 {
		panic(fmt.Sprintf("via: range overruns segments by %d bytes", n))
	}
}

// pagesIn returns the distinct virtual page numbers touched by the byte
// range [off, off+n) of the concatenated runs, in access order. This is
// what the NIC must translate to move that range.
func pagesIn(runs []segRun, off, n int) []uint64 {
	var pages []uint64
	seen := func(p uint64) bool {
		return len(pages) > 0 && pages[len(pages)-1] == p
	}
	rem := n
	for _, r := range runs {
		if rem <= 0 {
			break
		}
		if off >= len(r.data) {
			off -= len(r.data)
			continue
		}
		take := len(r.data) - off
		if take > rem {
			take = rem
		}
		first := r.addr.Advance(off).Page()
		last := r.addr.Advance(off + take - 1).Page()
		for p := first; p <= last; p++ {
			if !seen(p) {
				pages = append(pages, p)
			}
		}
		rem -= take
		off = 0
	}
	return pages
}
