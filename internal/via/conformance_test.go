package via

import (
	"testing"
	"testing/quick"

	"vibe/internal/provider"
)

// The conformance matrix runs the core VIA behaviours against every
// provider model, including the extended FirmVIA and IBA approximations,
// so a new model cannot silently break spec semantics.

func TestConformanceMatrix(t *testing.T) {
	for _, m := range provider.Extended() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			t.Run("send-recv-integrity", func(t *testing.T) { confIntegrity(t, m, ViAttributes{}, Polling) })
			t.Run("blocking", func(t *testing.T) { confIntegrity(t, m, ViAttributes{}, Blocking) })
			if m.Supports(1) {
				t.Run("reliable-delivery", func(t *testing.T) {
					confIntegrity(t, m, ViAttributes{Reliability: ReliableDelivery}, Polling)
				})
			}
			if m.SupportsRDMAWrite {
				t.Run("rdma-write", func(t *testing.T) { confRdma(t, m) })
			}
			t.Run("cq", func(t *testing.T) { confCQ(t, m) })
		})
	}
}

// Polling/Blocking selects the completion style in the conformance runs.
const (
	Polling = iota
	Blocking
)

func confIntegrity(t *testing.T, m *provider.Model, attrs ViAttributes, mode int) {
	t.Helper()
	const n = 10000
	wait := func(ctx *Ctx, vi *Vi, recv bool) (*Descriptor, error) {
		if recv {
			if mode == Blocking {
				return vi.RecvWait(ctx, tmo)
			}
			return vi.RecvWaitPoll(ctx)
		}
		if mode == Blocking {
			return vi.SendWait(ctx, tmo)
		}
		return vi.SendWaitPoll(ctx)
	}
	env := newPair(t, m, attrs,
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			buf := ctx.Malloc(n)
			h, _ := nic.RegisterMem(ctx, buf)
			buf.FillPattern(11)
			if err := vi.PostSend(ctx, SimpleSend(buf, h, n)); err != nil {
				t.Error(err)
				return
			}
			if d, err := wait(ctx, vi, false); err != nil || d.Status != StatusSuccess {
				t.Errorf("send: %v %v", err, d)
			}
		},
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			buf := ctx.Malloc(n)
			h, _ := nic.RegisterMem(ctx, buf)
			vi.PostRecv(ctx, SimpleRecv(buf, h, n))
			d, err := wait(ctx, vi, true)
			if err != nil || d.Status != StatusSuccess || d.Length != n {
				t.Errorf("recv: %v %v", err, d)
				return
			}
			if err := buf.CheckPattern(11, n); err != nil {
				t.Errorf("%s corrupted: %v", m.Name, err)
			}
		})
	env.run()
}

func confRdma(t *testing.T, m *provider.Model) {
	t.Helper()
	const n = 6000
	attrs := ViAttributes{EnableRdmaWrite: true}
	var (
		remoteH MemHandle
		tgt     *bufExport
		ready   bool
	)
	env := newPair(t, m, attrs,
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			src := ctx.Malloc(n)
			h, _ := nic.RegisterMem(ctx, src)
			src.FillPattern(13)
			for !ready {
				ctx.Sleep(10 * 1000)
			}
			d := &Descriptor{
				Op:     OpRdmaWrite,
				Segs:   []DataSegment{{Addr: src.Addr(), Handle: h, Length: n}},
				Remote: &AddressSegment{Addr: tgt.addr, Handle: remoteH},
			}
			if err := vi.PostSend(ctx, d); err != nil {
				t.Error(err)
				return
			}
			vi.SendWaitPoll(ctx)
			ctx.Sleep(2_000_000)
			tgt.done = true
		},
		func(ctx *Ctx, vi *Vi, nic *Nic) {
			dst := ctx.Malloc(n)
			h, _ := nic.RegisterMem(ctx, dst)
			remoteH = h
			tgt = &bufExport{addr: dst.Addr()}
			ready = true
			for !tgt.done {
				ctx.Sleep(10 * 1000)
			}
			if err := dst.CheckPattern(13, n); err != nil {
				t.Errorf("%s rdma corrupted: %v", m.Name, err)
			}
		})
	env.run()
}

func confCQ(t *testing.T, m *provider.Model) {
	t.Helper()
	sys := NewSystem(m, 2, 1)
	sys.Go(0, "c", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		vi, _ := nic.CreateVi(ctx, ViAttributes{}, nil, nil)
		if err := vi.ConnectRequest(ctx, 1, "cq", tmo); err != nil {
			t.Error(err)
			return
		}
		buf := ctx.Malloc(128)
		h, _ := nic.RegisterMem(ctx, buf)
		vi.PostSend(ctx, SimpleSend(buf, h, 128))
		vi.SendWaitPoll(ctx)
	})
	sys.Go(1, "s", func(ctx *Ctx) {
		nic := ctx.OpenNic()
		cq, err := nic.CreateCQ(ctx, 8)
		if err != nil {
			t.Error(err)
			return
		}
		vi, _ := nic.CreateVi(ctx, ViAttributes{}, nil, cq)
		buf := ctx.Malloc(128)
		h, _ := nic.RegisterMem(ctx, buf)
		vi.PostRecv(ctx, SimpleRecv(buf, h, 128))
		req, err := nic.ConnectWait(ctx, "cq", tmo)
		if err != nil {
			t.Error(err)
			return
		}
		req.Accept(ctx, vi)
		c, err := cq.WaitPoll(ctx)
		if err != nil || !c.IsRecv || c.Vi != vi {
			t.Errorf("%s cq: %v %+v", m.Name, err, c)
			return
		}
		if _, ok := vi.RecvDone(ctx); !ok {
			t.Errorf("%s cq: descriptor missing", m.Name)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property: for any sequence of message sizes within the provider's
// maximum, a ping-pong round trip preserves every payload bit-for-bit.
func TestRoundTripIntegrityProperty(t *testing.T) {
	m := provider.CLAN()
	f := func(raw []uint16, seed uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 6 {
			raw = raw[:6]
		}
		sizes := make([]int, len(raw))
		for i, r := range raw {
			sizes[i] = int(r)%m.MaxTransferSize + 1
		}
		ok := true
		env := newPair(t, m, ViAttributes{},
			func(ctx *Ctx, vi *Vi, nic *Nic) {
				buf := ctx.Malloc(m.MaxTransferSize)
				h, _ := nic.RegisterMem(ctx, buf)
				for i, n := range sizes {
					buf.FillPattern(seed + byte(i))
					if err := vi.PostRecv(ctx, SimpleRecv(buf, h, m.MaxTransferSize)); err != nil {
						ok = false
						return
					}
					if err := vi.PostSend(ctx, SimpleSend(buf, h, n)); err != nil {
						ok = false
						return
					}
					if _, err := vi.SendWaitPoll(ctx); err != nil {
						ok = false
						return
					}
					d, err := vi.RecvWaitPoll(ctx)
					if err != nil || d.Length != n {
						ok = false
						return
					}
					// The echo must round-trip the pattern exactly.
					if err := buf.CheckPattern(seed+byte(i), n); err != nil {
						ok = false
						return
					}
				}
			},
			func(ctx *Ctx, vi *Vi, nic *Nic) {
				buf := ctx.Malloc(m.MaxTransferSize)
				h, _ := nic.RegisterMem(ctx, buf)
				if err := vi.PostRecv(ctx, SimpleRecv(buf, h, m.MaxTransferSize)); err != nil {
					ok = false
					return
				}
				for i := range sizes {
					d, err := vi.RecvWaitPoll(ctx)
					if err != nil {
						ok = false
						return
					}
					if i+1 < len(sizes) {
						if err := vi.PostRecv(ctx, SimpleRecv(buf, h, m.MaxTransferSize)); err != nil {
							ok = false
							return
						}
					}
					if err := vi.PostSend(ctx, SimpleSend(buf, h, d.Length)); err != nil {
						ok = false
						return
					}
					if _, err := vi.SendWaitPoll(ctx); err != nil {
						ok = false
						return
					}
				}
			})
		env.run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: fabric counters always balance: delivered + dropped == sent.
func TestFabricAccountingProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) > 5 {
			sizes = sizes[:5]
		}
		m := provider.BVIA()
		sys := NewSystem(m, 2, 1)
		sys.Go(0, "c", func(ctx *Ctx) {
			nic := ctx.OpenNic()
			vi, _ := nic.CreateVi(ctx, ViAttributes{}, nil, nil)
			if err := vi.ConnectRequest(ctx, 1, "p", tmo); err != nil {
				return
			}
			buf := ctx.Malloc(m.MaxTransferSize)
			h, _ := nic.RegisterMem(ctx, buf)
			for _, s := range sizes {
				n := int(s)%m.MaxTransferSize + 1
				vi.PostSend(ctx, SimpleSend(buf, h, n))
				vi.SendWaitPoll(ctx)
			}
		})
		sys.Go(1, "s", func(ctx *Ctx) {
			nic := ctx.OpenNic()
			vi, _ := nic.CreateVi(ctx, ViAttributes{}, nil, nil)
			buf := ctx.Malloc(m.MaxTransferSize)
			h, _ := nic.RegisterMem(ctx, buf)
			for range sizes {
				vi.PostRecv(ctx, SimpleRecv(buf, h, m.MaxTransferSize))
			}
			req, err := nic.ConnectWait(ctx, "p", tmo)
			if err != nil {
				return
			}
			req.Accept(ctx, vi)
			for range sizes {
				vi.RecvWaitPoll(ctx)
			}
		})
		if err := sys.Run(); err != nil {
			return false
		}
		return sys.Net.Delivered+sys.Net.Dropped == sys.Net.Sent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
