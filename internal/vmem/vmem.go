// Package vmem models per-process paged virtual memory for the simulated
// cluster. Buffers carry both a virtual address (what VIA descriptors and
// the NIC translation machinery operate on) and a real byte slice (so data
// integrity can be checked end to end).
package vmem

import (
	"errors"
	"fmt"
)

// PageSize is the simulated page size, matching the i386 Linux hosts of the
// paper's testbed.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

var (
	// ErrBadAddress reports an access outside any allocated buffer.
	ErrBadAddress = errors.New("vmem: address not mapped")
	// ErrOutOfRange reports an access that starts inside but runs past a
	// buffer.
	ErrOutOfRange = errors.New("vmem: access out of range")
)

// Addr is a simulated virtual address.
type Addr uint64

// Page returns the virtual page number containing a.
func (a Addr) Page() uint64 { return uint64(a) >> PageShift }

// PageOffset returns the offset of a within its page.
func (a Addr) PageOffset() uint64 { return uint64(a) & (PageSize - 1) }

func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// NumPages reports how many pages the byte range [addr, addr+length) spans.
func NumPages(addr Addr, length int) int {
	if length <= 0 {
		return 0
	}
	first := addr.Page()
	last := (Addr(uint64(addr) + uint64(length) - 1)).Page()
	return int(last - first + 1)
}

// Buffer is a contiguous allocation in a simulated address space.
type Buffer struct {
	addr Addr
	data []byte
	as   *AddressSpace
}

// Addr returns the buffer's starting virtual address.
func (b *Buffer) Addr() Addr { return b.addr }

// Len returns the buffer length in bytes.
func (b *Buffer) Len() int { return len(b.data) }

// Bytes returns the backing storage. Mutations are visible to simulated
// DMA, exactly as host memory would be.
func (b *Buffer) Bytes() []byte { return b.data }

// Slice returns the sub-range [off, off+n) of the buffer's storage.
func (b *Buffer) Slice(off, n int) ([]byte, error) {
	if off < 0 || n < 0 || off+n > len(b.data) {
		return nil, fmt.Errorf("%w: slice [%d,%d) of %d-byte buffer", ErrOutOfRange, off, off+n, len(b.data))
	}
	return b.data[off : off+n], nil
}

// AddrAt returns the virtual address of byte off within the buffer.
func (b *Buffer) AddrAt(off int) Addr { return Addr(uint64(b.addr) + uint64(off)) }

// Fill sets every byte of the buffer to v.
func (b *Buffer) Fill(v byte) {
	for i := range b.data {
		b.data[i] = v
	}
}

// FillPattern writes a position-dependent pattern seeded by seed, for
// end-to-end integrity checks.
func (b *Buffer) FillPattern(seed byte) {
	for i := range b.data {
		b.data[i] = seed + byte(i*31)
	}
}

// CheckPattern verifies FillPattern(seed) over the first n bytes.
func (b *Buffer) CheckPattern(seed byte, n int) error {
	if n > len(b.data) {
		return ErrOutOfRange
	}
	for i := 0; i < n; i++ {
		if b.data[i] != seed+byte(i*31) {
			return fmt.Errorf("vmem: pattern mismatch at offset %d: got %#x want %#x", i, b.data[i], seed+byte(i*31))
		}
	}
	return nil
}

// AddressSpace is the virtual memory of one simulated process. Allocations
// are page-aligned and never overlap; address zero is never handed out so
// it can serve as a null value.
type AddressSpace struct {
	next    Addr
	buffers []*Buffer // sorted by addr
}

// NewAddressSpace returns an empty address space.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{next: PageSize} // skip page 0
}

// Alloc allocates a page-aligned buffer of n bytes.
func (as *AddressSpace) Alloc(n int) *Buffer {
	if n <= 0 {
		panic(fmt.Sprintf("vmem: Alloc(%d)", n))
	}
	b := &Buffer{addr: as.next, data: make([]byte, n), as: as}
	as.buffers = append(as.buffers, b)
	pages := (n + PageSize - 1) / PageSize
	// Leave a guard page between allocations so off-by-one accesses fault
	// instead of silently landing in a neighbor.
	as.next = as.next.Advance((pages + 1) * PageSize)
	return b
}

// Advance returns a shifted by n bytes.
func (a Addr) Advance(n int) Addr { return Addr(uint64(a) + uint64(n)) }

// Resolve maps the virtual range [addr, addr+n) to backing storage. It
// fails if the range is unmapped or spans an allocation boundary, the
// simulated equivalent of a fault during DMA.
func (as *AddressSpace) Resolve(addr Addr, n int) ([]byte, error) {
	b := as.find(addr)
	if b == nil {
		return nil, fmt.Errorf("%w: %v", ErrBadAddress, addr)
	}
	off := int(uint64(addr) - uint64(b.addr))
	if off+n > len(b.data) {
		return nil, fmt.Errorf("%w: [%v,+%d) beyond buffer of %d bytes", ErrOutOfRange, addr, n, len(b.data))
	}
	return b.data[off : off+n], nil
}

// Owner returns the buffer containing addr, or nil.
func (as *AddressSpace) Owner(addr Addr) *Buffer { return as.find(addr) }

func (as *AddressSpace) find(addr Addr) *Buffer {
	// Linear scan is fine: benchmark processes allocate at most a few
	// thousand buffers, and this runs outside the simulated fast path.
	for _, b := range as.buffers {
		if addr >= b.addr && uint64(addr) < uint64(b.addr)+uint64(len(b.data)) {
			return b
		}
	}
	return nil
}

// Buffers returns every live allocation, in address order.
func (as *AddressSpace) Buffers() []*Buffer { return as.buffers }
