package vmem

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestAllocAlignmentAndSeparation(t *testing.T) {
	as := NewAddressSpace()
	a := as.Alloc(100)
	b := as.Alloc(PageSize + 1)
	c := as.Alloc(1)
	for _, buf := range []*Buffer{a, b, c} {
		if buf.Addr().PageOffset() != 0 {
			t.Errorf("buffer at %v not page-aligned", buf.Addr())
		}
	}
	if a.Addr() == 0 {
		t.Error("address zero handed out")
	}
	// Guard page: next allocation starts at least one full page past the
	// previous buffer's end.
	endA := uint64(a.Addr()) + uint64(a.Len())
	if uint64(b.Addr()) < endA+1 {
		t.Errorf("allocations too close: a ends %#x, b starts %v", endA, b.Addr())
	}
}

func TestResolve(t *testing.T) {
	as := NewAddressSpace()
	b := as.Alloc(8192)
	b.Bytes()[100] = 42

	got, err := as.Resolve(b.AddrAt(100), 4)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 {
		t.Fatalf("resolved wrong storage: %v", got[0])
	}
	// Writing through the resolved slice mutates the buffer (DMA
	// semantics).
	got[1] = 7
	if b.Bytes()[101] != 7 {
		t.Error("resolved slice does not alias buffer storage")
	}

	if _, err := as.Resolve(Addr(8), 1); !errors.Is(err, ErrBadAddress) {
		t.Errorf("unmapped resolve: err = %v", err)
	}
	if _, err := as.Resolve(b.AddrAt(8190), 4); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("overrun resolve: err = %v", err)
	}
}

func TestOwner(t *testing.T) {
	as := NewAddressSpace()
	b := as.Alloc(64)
	if as.Owner(b.AddrAt(63)) != b {
		t.Error("Owner missed last byte")
	}
	if as.Owner(b.AddrAt(63).Advance(1)) != nil {
		t.Error("Owner matched past end")
	}
	if len(as.Buffers()) != 1 {
		t.Error("Buffers() wrong length")
	}
}

func TestSlice(t *testing.T) {
	as := NewAddressSpace()
	b := as.Alloc(16)
	if _, err := b.Slice(8, 8); err != nil {
		t.Errorf("valid slice failed: %v", err)
	}
	if _, err := b.Slice(8, 9); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("overrun slice: err = %v", err)
	}
	if _, err := b.Slice(-1, 2); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("negative slice: err = %v", err)
	}
}

func TestFillAndPattern(t *testing.T) {
	as := NewAddressSpace()
	b := as.Alloc(300)
	b.Fill(0xAB)
	for i, v := range b.Bytes() {
		if v != 0xAB {
			t.Fatalf("Fill missed byte %d", i)
		}
	}
	b.FillPattern(3)
	if err := b.CheckPattern(3, 300); err != nil {
		t.Fatalf("pattern roundtrip: %v", err)
	}
	if err := b.CheckPattern(4, 300); err == nil {
		t.Fatal("wrong seed passed CheckPattern")
	}
	b.Bytes()[200] ^= 0xFF
	if err := b.CheckPattern(3, 300); err == nil {
		t.Fatal("corruption passed CheckPattern")
	}
	if err := b.CheckPattern(3, 301); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("overlong check: err = %v", err)
	}
}

func TestNumPages(t *testing.T) {
	cases := []struct {
		addr Addr
		n    int
		want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, PageSize, 1},
		{0, PageSize + 1, 2},
		{Addr(PageSize - 1), 2, 2},
		{Addr(PageSize), PageSize, 1},
		{Addr(100), 3 * PageSize, 4},
	}
	for _, c := range cases {
		if got := NumPages(c.addr, c.n); got != c.want {
			t.Errorf("NumPages(%v,%d) = %d, want %d", c.addr, c.n, got, c.want)
		}
	}
}

func TestPageArithmetic(t *testing.T) {
	a := Addr(2*PageSize + 17)
	if a.Page() != 2 {
		t.Errorf("Page = %d", a.Page())
	}
	if a.PageOffset() != 17 {
		t.Errorf("PageOffset = %d", a.PageOffset())
	}
	if a.String() != "0x2011" {
		t.Errorf("String = %s", a.String())
	}
}

func TestAllocZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Alloc(0) did not panic")
		}
	}()
	NewAddressSpace().Alloc(0)
}

// Property: for any set of allocation sizes, every byte of every buffer
// resolves back to exactly its own storage, and no two buffers overlap.
func TestAllocationsNeverOverlap(t *testing.T) {
	f := func(sizes []uint16) bool {
		as := NewAddressSpace()
		var bufs []*Buffer
		for _, s := range sizes {
			n := int(s%20000) + 1
			bufs = append(bufs, as.Alloc(n))
		}
		for i, b := range bufs {
			// Check first, last, and a middle byte.
			for _, off := range []int{0, b.Len() / 2, b.Len() - 1} {
				if as.Owner(b.AddrAt(off)) != b {
					t.Logf("buffer %d byte %d resolved to wrong owner", i, off)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: NumPages equals the count of distinct page numbers touched.
func TestNumPagesMatchesEnumeration(t *testing.T) {
	f := func(addr uint32, n uint16) bool {
		a := Addr(addr)
		length := int(n)
		want := 0
		if length > 0 {
			first := a.Page()
			last := Addr(uint64(a) + uint64(length) - 1).Page()
			want = int(last - first + 1)
		}
		return NumPages(a, length) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
