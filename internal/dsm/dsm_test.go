package dsm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"vibe/internal/provider"
	"vibe/internal/via"
)

// runWorld builds an n-node DSM world and runs fn on every node.
func runWorld(t *testing.T, m *provider.Model, n int, fn func(ctx *via.Ctx, d *Node) error) {
	t.Helper()
	sys := via.NewSystem(m, n, 1)
	w := New(sys, DefaultConfig())
	w.Run(func(ctx *via.Ctx, d *Node) {
		if err := fn(ctx, d); err != nil {
			t.Errorf("node %d: %v", d.Me(), err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSharedCounterUnderLock(t *testing.T) {
	// The canonical DSM litmus test: every node increments a shared
	// counter k times under a lock; the total must be exact.
	for _, m := range []*provider.Model{provider.CLAN(), provider.BVIA()} {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			const nodes, incs = 3, 10
			runWorld(t, m, nodes, func(ctx *via.Ctx, d *Node) error {
				if err := d.Alloc(ctx, "counter", 1); err != nil {
					return err
				}
				if err := d.Barrier(ctx); err != nil {
					return err
				}
				buf := make([]byte, 8)
				for i := 0; i < incs; i++ {
					if err := d.Acquire(ctx, 1); err != nil {
						return err
					}
					if err := d.Read(ctx, "counter", 0, buf); err != nil {
						return err
					}
					v := binary.LittleEndian.Uint64(buf)
					binary.LittleEndian.PutUint64(buf, v+1)
					if err := d.Write(ctx, "counter", 0, buf); err != nil {
						return err
					}
					if err := d.Release(ctx, 1); err != nil {
						return err
					}
				}
				if err := d.Barrier(ctx); err != nil {
					return err
				}
				if err := d.Read(ctx, "counter", 0, buf); err != nil {
					return err
				}
				if got := binary.LittleEndian.Uint64(buf); got != nodes*incs {
					return fmt.Errorf("counter = %d, want %d", got, nodes*incs)
				}
				return nil
			})
		})
	}
}

func TestBarrierPublishesWrites(t *testing.T) {
	// Node 0 writes a multi-page pattern; after a barrier every node
	// reads it back.
	const pages = 3
	size := pages * PageSize
	runWorld(t, provider.CLAN(), 3, func(ctx *via.Ctx, d *Node) error {
		if err := d.Alloc(ctx, "data", pages); err != nil {
			return err
		}
		if err := d.Barrier(ctx); err != nil {
			return err
		}
		want := make([]byte, size)
		for i := range want {
			want[i] = byte(i * 7)
		}
		if d.Me() == 0 {
			if err := d.Write(ctx, "data", 0, want); err != nil {
				return err
			}
		}
		if err := d.Barrier(ctx); err != nil {
			return err
		}
		got := make([]byte, size)
		if err := d.Read(ctx, "data", 0, got); err != nil {
			return err
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("node %d read stale/corrupt data", d.Me())
		}
		return nil
	})
}

func TestCrossPageUnalignedAccess(t *testing.T) {
	// A write straddling a page boundary at an odd offset must read back
	// exactly, from another node, after synchronization.
	runWorld(t, provider.CLAN(), 2, func(ctx *via.Ctx, d *Node) error {
		if err := d.Alloc(ctx, "x", 2); err != nil {
			return err
		}
		if err := d.Barrier(ctx); err != nil {
			return err
		}
		const off = PageSize - 100
		payload := []byte("this 200-ish byte payload straddles the boundary between page zero and page one of the region")
		if d.Me() == 1 {
			if err := d.Write(ctx, "x", off, payload); err != nil {
				return err
			}
		}
		if err := d.Barrier(ctx); err != nil {
			return err
		}
		got := make([]byte, len(payload))
		if err := d.Read(ctx, "x", off, got); err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			return fmt.Errorf("node %d: straddling write corrupted", d.Me())
		}
		return nil
	})
}

func TestLockMutualExclusionOrdering(t *testing.T) {
	// Nodes append their id to a shared log under a lock; the log must
	// contain exactly n entries with no overwrites (lost updates would
	// leave zeros or duplicates).
	const nodes = 4
	runWorld(t, provider.CLAN(), nodes, func(ctx *via.Ctx, d *Node) error {
		if err := d.Alloc(ctx, "log", 1); err != nil {
			return err
		}
		if err := d.Barrier(ctx); err != nil {
			return err
		}
		if err := d.Acquire(ctx, 7); err != nil {
			return err
		}
		head := make([]byte, 1)
		if err := d.Read(ctx, "log", 0, head); err != nil {
			return err
		}
		idx := int(head[0])
		entry := []byte{byte(0x10 + d.Me())}
		if err := d.Write(ctx, "log", 1+idx, entry); err != nil {
			return err
		}
		head[0] = byte(idx + 1)
		if err := d.Write(ctx, "log", 0, head); err != nil {
			return err
		}
		if err := d.Release(ctx, 7); err != nil {
			return err
		}
		if err := d.Barrier(ctx); err != nil {
			return err
		}
		buf := make([]byte, 1+nodes)
		if err := d.Read(ctx, "log", 0, buf); err != nil {
			return err
		}
		if int(buf[0]) != nodes {
			return fmt.Errorf("log head %d, want %d", buf[0], nodes)
		}
		seen := map[byte]bool{}
		for _, b := range buf[1:] {
			if b < 0x10 || b >= 0x10+nodes || seen[b] {
				return fmt.Errorf("log corrupt: % x", buf)
			}
			seen[b] = true
		}
		return nil
	})
}

func TestMultipleRegionsDifferentHomes(t *testing.T) {
	// Several regions hash to different homes; traffic to each must stay
	// independent.
	names := []string{"alpha", "beta", "gamma", "delta"}
	const nodes = 3
	homes := map[string]int{}
	for _, n := range names {
		homes[n] = homeOf(n, nodes)
	}
	distinct := map[int]bool{}
	for _, h := range homes {
		distinct[h] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("test names all hash to one home: %v", homes)
	}
	runWorld(t, provider.CLAN(), nodes, func(ctx *via.Ctx, d *Node) error {
		for _, name := range names {
			if err := d.Alloc(ctx, name, 1); err != nil {
				return err
			}
		}
		if err := d.Barrier(ctx); err != nil {
			return err
		}
		// Each node writes its id into a distinct slot of every region.
		me := []byte{byte(0xA0 + d.Me())}
		for _, name := range names {
			if err := d.Acquire(ctx, 100); err != nil {
				return err
			}
			if err := d.Write(ctx, name, d.Me(), me); err != nil {
				return err
			}
			if err := d.Release(ctx, 100); err != nil {
				return err
			}
		}
		if err := d.Barrier(ctx); err != nil {
			return err
		}
		for _, name := range names {
			buf := make([]byte, nodes)
			if err := d.Read(ctx, name, 0, buf); err != nil {
				return err
			}
			for r := 0; r < nodes; r++ {
				if buf[r] != byte(0xA0+r) {
					return fmt.Errorf("region %s slot %d = %x", name, r, buf[r])
				}
			}
		}
		return nil
	})
}

func TestErrors(t *testing.T) {
	runWorld(t, provider.CLAN(), 2, func(ctx *via.Ctx, d *Node) error {
		if err := d.Alloc(ctx, "r", 1); err != nil {
			return err
		}
		if err := d.Alloc(ctx, "r", 1); err == nil {
			return fmt.Errorf("duplicate alloc accepted")
		}
		if err := d.Alloc(ctx, "zero", 0); err == nil {
			return fmt.Errorf("zero-page alloc accepted")
		}
		if err := d.Read(ctx, "ghost", 0, make([]byte, 1)); err == nil {
			return fmt.Errorf("unknown region read accepted")
		}
		if err := d.Write(ctx, "r", PageSize-1, make([]byte, 2)); err == nil {
			return fmt.Errorf("out-of-range write accepted")
		}
		return d.Barrier(ctx)
	})
}

func TestFetchCountersAndCaching(t *testing.T) {
	runWorld(t, provider.CLAN(), 2, func(ctx *via.Ctx, d *Node) error {
		if err := d.Alloc(ctx, "c", 1); err != nil {
			return err
		}
		if err := d.Barrier(ctx); err != nil {
			return err
		}
		if d.Me() != 1 {
			return d.Barrier(ctx)
		}
		buf := make([]byte, 16)
		for i := 0; i < 5; i++ {
			if err := d.Read(ctx, "c", 0, buf); err != nil {
				return err
			}
		}
		if d.PageFetches != 1 {
			return fmt.Errorf("fetches = %d, want 1 (cached)", d.PageFetches)
		}
		if err := d.Acquire(ctx, 1); err != nil {
			return err
		}
		if err := d.Read(ctx, "c", 0, buf); err != nil {
			return err
		}
		if d.PageFetches != 2 {
			return fmt.Errorf("fetches after acquire = %d, want 2 (invalidated)", d.PageFetches)
		}
		if err := d.Release(ctx, 1); err != nil {
			return err
		}
		return d.Barrier(ctx)
	})
}

func TestDSMDeterminism(t *testing.T) {
	run := func() uint64 {
		sys := via.NewSystem(provider.BVIA(), 3, 4)
		w := New(sys, DefaultConfig())
		var sum uint64
		w.Run(func(ctx *via.Ctx, d *Node) {
			if err := d.Alloc(ctx, "det", 1); err != nil {
				t.Error(err)
				return
			}
			if err := d.Barrier(ctx); err != nil {
				t.Error(err)
				return
			}
			b := make([]byte, 4)
			for i := 0; i < 5; i++ {
				if err := d.Acquire(ctx, 3); err != nil {
					t.Error(err)
					return
				}
				d.Read(ctx, "det", 0, b)
				b[0]++
				d.Write(ctx, "det", 0, b)
				if err := d.Release(ctx, 3); err != nil {
					t.Error(err)
					return
				}
			}
			d.Barrier(ctx)
			sum += uint64(ctx.Now())
		})
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		return sum
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %d vs %d", a, b)
	}
}
