// Package dsm is a software distributed-shared-memory programming-model
// layer over the VIA substrate — the "software distributed shared memory"
// model the paper's §3.3 names, and the system its reference [7]
// (TreadMarks over VIA, by the same authors) builds. It implements a
// home-based release-consistent DSM in the style of home-based lazy
// release consistency:
//
//   - Every shared region has a home node holding the master copy in an
//     exposed get/put region; other nodes cache pages.
//   - Reads fetch missing pages from the home with one-sided gets;
//     writes dirty the local cache.
//   - Release consistency: Acquire invalidates the local cache (so the
//     next access refetches anything peers published) and Release flushes
//     dirty pages to the home with one-sided puts before the lock moves.
//     Data races outside acquire/release are the application's problem,
//     exactly as in TreadMarks.
//   - Locks and barriers are served by a manager daemon on node 0.
//
// The data path rides internal/getput (so the provider's RDMA
// capabilities decide whether fetches are one-sided), and VIBe's
// measurements justify the design: registration costs (Fig 1) are paid
// once per region at setup, and the page size balances the per-transfer
// fixed costs (Fig 3) against false-sharing traffic.
package dsm

import (
	"fmt"

	"vibe/internal/getput"
	"vibe/internal/sim"
	"vibe/internal/via"
	"vibe/internal/vmem"
)

// PageSize is the DSM sharing granularity. It matches the simulated VM
// page, as TreadMarks' did.
const PageSize = vmem.PageSize

// Config tunes the layer.
type Config struct {
	// GP configures the underlying get/put fabric.
	GP getput.Config
	// Timeout bounds lock/barrier waits.
	Timeout sim.Duration
}

// DefaultConfig returns standard settings.
func DefaultConfig() Config {
	return Config{GP: getput.DefaultConfig(), Timeout: 30 * sim.Second}
}

// World is a DSM cluster, one node per host. Node 0 additionally runs the
// lock/barrier manager.
type World struct {
	sys *via.System
	n   int
	cfg Config
	gp  *getput.Fabric
}

// New prepares a DSM world over sys.
func New(sys *via.System, cfg Config) *World {
	if cfg.Timeout == 0 {
		cfg.Timeout = 30 * sim.Second
	}
	return &World{sys: sys, n: sys.Hosts(), cfg: cfg, gp: getput.NewFabric(sys, cfg.GP)}
}

// Run spawns one application process per node and invokes fn with its DSM
// node handle. Call sys.Run() afterwards.
func (w *World) Run(fn func(ctx *via.Ctx, d *Node)) {
	mgr := newManager(w)
	w.gp.Run(func(ctx *via.Ctx, gpn *getput.Node) {
		d, err := newNode(ctx, w, gpn, mgr)
		if err != nil {
			panic(fmt.Sprintf("dsm: node %d init: %v", gpn.Me(), err))
		}
		fn(ctx, d)
	})
}

// pageKey identifies one cached page.
type pageKey struct {
	region string
	page   int
}

// cachedPage is one node's copy of a shared page.
type cachedPage struct {
	buf    *vmem.Buffer
	handle via.MemHandle
	valid  bool
	dirty  bool
}

// regionMeta is what a node knows about a shared region.
type regionMeta struct {
	name  string
	home  int
	pages int
}

// Node is one host's DSM handle.
type Node struct {
	w    *World
	gp   *getput.Node
	mgr  *manager
	me   int
	link *nodeLink // connection to the node-0 manager (nil on node 0)

	regions map[string]*regionMeta
	cache   map[pageKey]*cachedPage

	// Counters for tests and reports.
	PageFetches uint64
	PageFlushes uint64
	Invalidates uint64
}

func newNode(ctx *via.Ctx, w *World, gpn *getput.Node, mgr *manager) (*Node, error) {
	d := &Node{
		w:       w,
		gp:      gpn,
		mgr:     mgr,
		me:      gpn.Me(),
		regions: make(map[string]*regionMeta),
		cache:   make(map[pageKey]*cachedPage),
	}
	mgr.register(ctx, d)
	return d, nil
}

// Me returns this node's id.
func (d *Node) Me() int { return d.me }

// Size returns the world size.
func (d *Node) Size() int { return d.w.n }

// Alloc creates (on the home node) or attaches to (elsewhere) a shared
// region of the given page count. The home is chosen by hashing the name
// across the world; the call is collective in effect but not
// synchronizing — callers typically follow it with Barrier.
func (d *Node) Alloc(ctx *via.Ctx, name string, pages int) error {
	if _, dup := d.regions[name]; dup {
		return fmt.Errorf("dsm: region %q already allocated", name)
	}
	if pages <= 0 {
		return fmt.Errorf("dsm: region %q needs at least one page", name)
	}
	home := homeOf(name, d.w.n)
	d.regions[name] = &regionMeta{name: name, home: home, pages: pages}
	if home == d.me {
		master := ctx.Malloc(pages * PageSize)
		if err := d.gp.Expose(ctx, "dsm:"+name, master); err != nil {
			return err
		}
	}
	return nil
}

// homeOf hashes a region name onto a node.
func homeOf(name string, n int) int {
	h := 0
	for _, c := range name {
		h = h*31 + int(c)
	}
	if h < 0 {
		h = -h
	}
	return h % n
}

// page returns the cached page, fetching it from the home if invalid.
func (d *Node) page(ctx *via.Ctx, r *regionMeta, idx int) (*cachedPage, error) {
	key := pageKey{r.name, idx}
	cp := d.cache[key]
	if cp == nil {
		buf := ctx.Malloc(PageSize)
		h, err := ctx.OpenNic().RegisterMem(ctx, buf)
		if err != nil {
			return nil, err
		}
		cp = &cachedPage{buf: buf, handle: h}
		d.cache[key] = cp
	}
	if !cp.valid {
		// The home's master copy is authoritative; even the home node
		// reads through it so the protocol has one code path.
		if err := d.gp.Get(ctx, r.home, "dsm:"+r.name, idx*PageSize, PageSize, cp.buf, cp.handle); err != nil {
			return nil, err
		}
		cp.valid = true
		d.PageFetches++
	}
	return cp, nil
}

// Read copies [off, off+len(p)) of the named region into p.
func (d *Node) Read(ctx *via.Ctx, name string, off int, p []byte) error {
	r, err := d.meta(name, off, len(p))
	if err != nil {
		return err
	}
	for done := 0; done < len(p); {
		addr := off + done
		idx := addr / PageSize
		po := addr % PageSize
		n := PageSize - po
		if n > len(p)-done {
			n = len(p) - done
		}
		cp, err := d.page(ctx, r, idx)
		if err != nil {
			return err
		}
		copy(p[done:done+n], cp.buf.Bytes()[po:po+n])
		done += n
	}
	return nil
}

// Write copies p into [off, off+len(p)) of the named region, dirtying the
// covered pages locally. The update becomes visible to other nodes after
// this node Releases (or passes a Barrier) and they Acquire.
func (d *Node) Write(ctx *via.Ctx, name string, off int, p []byte) error {
	r, err := d.meta(name, off, len(p))
	if err != nil {
		return err
	}
	for done := 0; done < len(p); {
		addr := off + done
		idx := addr / PageSize
		po := addr % PageSize
		n := PageSize - po
		if n > len(p)-done {
			n = len(p) - done
		}
		cp, err := d.page(ctx, r, idx) // write needs the rest of the page
		if err != nil {
			return err
		}
		copy(cp.buf.Bytes()[po:po+n], p[done:done+n])
		cp.dirty = true
		done += n
	}
	return nil
}

func (d *Node) meta(name string, off, n int) (*regionMeta, error) {
	r, ok := d.regions[name]
	if !ok {
		return nil, fmt.Errorf("dsm: unknown region %q", name)
	}
	if off < 0 || off+n > r.pages*PageSize {
		return nil, fmt.Errorf("dsm: access [%d,+%d) outside region %q (%d pages)",
			off, n, name, r.pages)
	}
	return r, nil
}

// flush writes every dirty page back to its home and marks it clean.
func (d *Node) flush(ctx *via.Ctx) error {
	for key, cp := range d.cache {
		if !cp.dirty {
			continue
		}
		r := d.regions[key.region]
		if err := d.gp.Put(ctx, r.home, "dsm:"+key.region, key.page*PageSize,
			cp.buf, PageSize, cp.handle); err != nil {
			return err
		}
		// Ensure the put has landed before the lock/barrier moves on.
		if err := d.gp.Fence(ctx, r.home); err != nil {
			return err
		}
		cp.dirty = false
		d.PageFlushes++
	}
	return nil
}

// invalidate drops every clean cached page so post-synchronization reads
// refetch from the homes.
func (d *Node) invalidate() {
	for _, cp := range d.cache {
		if cp.valid && !cp.dirty {
			cp.valid = false
		}
	}
	d.Invalidates++
}

// Acquire takes the global lock with the given id, then invalidates the
// local cache (release-consistency entry point).
func (d *Node) Acquire(ctx *via.Ctx, lock int) error {
	if err := d.mgr.acquire(ctx, d, lock); err != nil {
		return err
	}
	d.invalidate()
	return nil
}

// Release flushes dirty pages to their homes and releases the lock.
func (d *Node) Release(ctx *via.Ctx, lock int) error {
	if err := d.flush(ctx); err != nil {
		return err
	}
	return d.mgr.release(ctx, d, lock)
}

// Barrier flushes dirty pages, waits for every node, and invalidates the
// cache — the bulk-synchronous pattern of DSM applications.
func (d *Node) Barrier(ctx *via.Ctx) error {
	if err := d.flush(ctx); err != nil {
		return err
	}
	if err := d.mgr.barrier(ctx, d); err != nil {
		return err
	}
	d.invalidate()
	return nil
}
