package dsm

import (
	"encoding/binary"
	"fmt"

	"vibe/internal/sim"
	"vibe/internal/via"
	"vibe/internal/vmem"
)

// The lock/barrier manager runs on node 0, the centralized-manager design
// TreadMarks offers. Remote nodes talk to it over dedicated VIs; node 0's
// own operations act on the manager state directly and wait on local
// signals.

const (
	mgrLockReq = iota + 1
	mgrLockGrant
	mgrUnlock
	mgrBarrierReq
	mgrBarrierGo
)

const mgrMsgBytes = 12
const mgrRing = 8

// manager is shared (in Go memory) across the world's nodes for setup,
// but all cross-node runtime traffic flows over the VIs.
type manager struct {
	w *World

	// Node-0 state (touched only by node-0 processes; the cooperative
	// scheduler serializes them).
	locks        map[int]*lockState
	barrierCount int
	barrierSig   *sim.Signal

	// Node-0 transport: one VI per remote node, indexed by node id.
	srvVis  []*via.Vi
	srvRing [][]regBuf
	srvAt   []int
	bounce  []regBuf
}

type lockState struct {
	held  bool
	queue []lockWaiter
}

// lockWaiter is a parked acquire: remote (node id) or local (signal).
type lockWaiter struct {
	node  int
	local *sim.Signal
}

type regBuf struct {
	buf *vmem.Buffer
	h   via.MemHandle
}

// nodeLink is a remote node's connection to the manager.
type nodeLink struct {
	vi   *via.Vi
	ring []regBuf
	at   int
	out  regBuf
}

func newManager(w *World) *manager {
	return &manager{w: w, locks: map[int]*lockState{}}
}

// register wires the calling node into the manager mesh. Node 0 accepts
// every remote link and then starts the service daemon; remote nodes dial
// and keep their link on the Node.
func (m *manager) register(ctx *via.Ctx, d *Node) {
	nic := ctx.OpenNic()
	attrs := via.ViAttributes{Reliability: via.ReliableDelivery}
	makeRing := func(vi *via.Vi) []regBuf {
		ring := make([]regBuf, mgrRing)
		for i := range ring {
			buf := ctx.Malloc(mgrMsgBytes)
			h, err := nic.RegisterMem(ctx, buf)
			if err != nil {
				panic(fmt.Sprintf("dsm manager: %v", err))
			}
			ring[i] = regBuf{buf: buf, h: h}
			if err := vi.PostRecv(ctx, via.SimpleRecv(buf, h, mgrMsgBytes)); err != nil {
				panic(fmt.Sprintf("dsm manager: %v", err))
			}
		}
		return ring
	}
	outBuf := func() regBuf {
		buf := ctx.Malloc(mgrMsgBytes)
		h, err := nic.RegisterMem(ctx, buf)
		if err != nil {
			panic(fmt.Sprintf("dsm manager: %v", err))
		}
		return regBuf{buf: buf, h: h}
	}

	if d.me == 0 {
		m.barrierSig = sim.NewSignal(ctx.P.Engine())
		m.srvVis = make([]*via.Vi, m.w.n)
		m.srvRing = make([][]regBuf, m.w.n)
		m.srvAt = make([]int, m.w.n)
		m.bounce = make([]regBuf, m.w.n)
		cq, err := nic.CreateCQ(ctx, 1024)
		if err != nil {
			panic(fmt.Sprintf("dsm manager: %v", err))
		}
		for p := 1; p < m.w.n; p++ {
			vi, err := nic.CreateVi(ctx, attrs, nil, cq)
			if err != nil {
				panic(fmt.Sprintf("dsm manager: %v", err))
			}
			m.srvRing[p] = makeRing(vi)
			m.bounce[p] = outBuf()
			req, err := nic.ConnectWait(ctx, fmt.Sprintf("dsm-mgr-%d", p), m.w.cfg.Timeout)
			if err != nil {
				panic(fmt.Sprintf("dsm manager accept %d: %v", p, err))
			}
			if err := req.Accept(ctx, vi); err != nil {
				panic(fmt.Sprintf("dsm manager accept %d: %v", p, err))
			}
			m.srvVis[p] = vi
		}
		// Identify VIs by id for the daemon.
		byVi := map[int]int{}
		for p := 1; p < m.w.n; p++ {
			byVi[m.srvVis[p].ID()] = p
		}
		m.w.sys.Go(0, "dsm-mgr", func(dctx *via.Ctx) {
			dctx.P.SetDaemon(true)
			m.daemon(dctx, cq, byVi)
		})
		return
	}

	vi, err := nic.CreateVi(ctx, attrs, nil, nil)
	if err != nil {
		panic(fmt.Sprintf("dsm manager: %v", err))
	}
	link := &nodeLink{vi: vi, out: outBuf()}
	link.ring = makeRing(vi)
	if err := vi.ConnectRequest(ctx, m.w.sys.Host(0).ID(),
		fmt.Sprintf("dsm-mgr-%d", d.me), m.w.cfg.Timeout); err != nil {
		panic(fmt.Sprintf("dsm manager dial: %v", err))
	}
	d.link = link
}

// --- wire helpers ---

func encodeMgr(dst []byte, kind byte, id, node int) {
	dst[0] = kind
	binary.LittleEndian.PutUint32(dst[4:], uint32(id))
	binary.LittleEndian.PutUint32(dst[8:], uint32(node))
}

func decodeMgr(src []byte) (kind byte, id, node int) {
	return src[0], int(binary.LittleEndian.Uint32(src[4:])), int(binary.LittleEndian.Uint32(src[8:]))
}

// sendOn stages and sends one manager message on a VI whose out buffer is
// given; the caller is the VI's only sender.
func sendOn(ctx *via.Ctx, vi *via.Vi, out regBuf, kind byte, id, node int) error {
	encodeMgr(out.buf.Bytes(), kind, id, node)
	d := &via.Descriptor{Op: via.OpSend, Segs: []via.DataSegment{{
		Addr: out.buf.Addr(), Handle: out.h, Length: mgrMsgBytes}}}
	if err := vi.PostSend(ctx, d); err != nil {
		return err
	}
	done, err := vi.SendWaitPoll(ctx)
	if err != nil {
		return err
	}
	if done.Status != via.StatusSuccess {
		return fmt.Errorf("dsm manager: send failed: %v", done.Status)
	}
	return nil
}

// recvOn blocks for one manager message on a remote node's link.
func (l *nodeLink) recv(ctx *via.Ctx) (kind byte, id int, err error) {
	d, err := l.vi.RecvWaitPoll(ctx)
	if err != nil {
		return 0, 0, err
	}
	if d.Status != via.StatusSuccess {
		return 0, 0, fmt.Errorf("dsm manager: recv failed: %v", d.Status)
	}
	rb := l.ring[l.at%mgrRing]
	l.at++
	kind, id, _ = decodeMgr(rb.buf.Bytes())
	if err := l.vi.PostRecv(ctx, via.SimpleRecv(rb.buf, rb.h, mgrMsgBytes)); err != nil {
		return 0, 0, err
	}
	return kind, id, nil
}

// --- manager daemon (node 0) ---

func (m *manager) daemon(ctx *via.Ctx, cq *via.CQ, byVi map[int]int) {
	for {
		comp, err := cq.WaitBlockForever(ctx)
		if err != nil {
			return
		}
		node, ok := byVi[comp.Vi.ID()]
		if !ok || !comp.IsRecv {
			continue
		}
		d, got := comp.Vi.RecvDone(ctx)
		if !got || d.Status != via.StatusSuccess {
			continue
		}
		rb := m.srvRing[node][m.srvAt[node]%mgrRing]
		m.srvAt[node]++
		kind, id, _ := decodeMgr(rb.buf.Bytes())
		if err := comp.Vi.PostRecv(ctx, via.SimpleRecv(rb.buf, rb.h, mgrMsgBytes)); err != nil {
			return
		}
		switch kind {
		case mgrLockReq:
			m.lockReq(ctx, id, lockWaiter{node: node})
		case mgrUnlock:
			m.unlockOp(ctx, id)
		case mgrBarrierReq:
			m.barrierArrive(ctx)
		}
	}
}

// lockReq grants the lock or queues the waiter.
func (m *manager) lockReq(ctx *via.Ctx, id int, w lockWaiter) {
	ls := m.locks[id]
	if ls == nil {
		ls = &lockState{}
		m.locks[id] = ls
	}
	if !ls.held {
		ls.held = true
		m.grant(ctx, id, w)
		return
	}
	ls.queue = append(ls.queue, w)
}

// unlockOp passes the lock to the next waiter or frees it.
func (m *manager) unlockOp(ctx *via.Ctx, id int) {
	ls := m.locks[id]
	if ls == nil || !ls.held {
		return
	}
	if len(ls.queue) == 0 {
		ls.held = false
		return
	}
	next := ls.queue[0]
	ls.queue = ls.queue[1:]
	m.grant(ctx, id, next)
}

func (m *manager) grant(ctx *via.Ctx, id int, w lockWaiter) {
	if w.local != nil {
		w.local.Broadcast()
		return
	}
	if err := sendOn(ctx, m.srvVis[w.node], m.bounce[w.node], mgrLockGrant, id, 0); err != nil {
		panic(fmt.Sprintf("dsm manager grant: %v", err))
	}
}

// barrierArrive counts arrivals and releases everyone on the last one.
func (m *manager) barrierArrive(ctx *via.Ctx) {
	m.barrierCount++
	if m.barrierCount < m.w.n {
		return
	}
	m.barrierCount = 0
	for p := 1; p < m.w.n; p++ {
		if err := sendOn(ctx, m.srvVis[p], m.bounce[p], mgrBarrierGo, 0, 0); err != nil {
			panic(fmt.Sprintf("dsm manager barrier: %v", err))
		}
	}
	m.barrierSig.Broadcast()
}

// --- node-side operations ---

func (m *manager) acquire(ctx *via.Ctx, d *Node, lock int) error {
	if d.me == 0 {
		ls := m.locks[lock]
		if ls == nil {
			ls = &lockState{}
			m.locks[lock] = ls
		}
		if !ls.held {
			ls.held = true
			return nil
		}
		sig := sim.NewSignal(ctx.P.Engine())
		ls.queue = append(ls.queue, lockWaiter{local: sig})
		sig.Wait(ctx.P)
		return nil
	}
	if err := sendOn(ctx, d.link.vi, d.link.out, mgrLockReq, lock, d.me); err != nil {
		return err
	}
	for {
		kind, id, err := d.link.recv(ctx)
		if err != nil {
			return err
		}
		if kind == mgrLockGrant && id == lock {
			return nil
		}
		return fmt.Errorf("dsm: unexpected manager message %d/%d awaiting lock %d", kind, id, lock)
	}
}

func (m *manager) release(ctx *via.Ctx, d *Node, lock int) error {
	if d.me == 0 {
		m.unlockOp(ctx, lock)
		return nil
	}
	return sendOn(ctx, d.link.vi, d.link.out, mgrUnlock, lock, d.me)
}

func (m *manager) barrier(ctx *via.Ctx, d *Node) error {
	if d.me == 0 {
		if m.barrierCount+1 < m.w.n {
			m.barrierCount++
			m.barrierSig.Wait(ctx.P)
			return nil
		}
		// Node 0 is the last arrival: barrierArrive completes the count
		// and releases everyone.
		m.barrierArrive(ctx)
		return nil
	}
	if err := sendOn(ctx, d.link.vi, d.link.out, mgrBarrierReq, 0, d.me); err != nil {
		return err
	}
	kind, _, err := d.link.recv(ctx)
	if err != nil {
		return err
	}
	if kind != mgrBarrierGo {
		return fmt.Errorf("dsm: unexpected manager message %d awaiting barrier", kind)
	}
	return nil
}
