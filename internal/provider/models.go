package provider

import (
	"fmt"

	"vibe/internal/fabric"
	"vibe/internal/nicsim"
	"vibe/internal/sim"
)

// us is shorthand for building cost constants.
func us(v float64) sim.Duration { return sim.Microseconds(v) }

// MVIA models M-VIA 1.0 on Packet Engines GNIC-II Gigabit Ethernet: VIA
// emulated by the host kernel. Doorbells are system calls, payloads are
// copied between user and kernel buffers on both sides, and address
// translation happens on the host, so performance is insensitive to buffer
// reuse but pays heavy per-byte and per-message software costs.
func MVIA() *Model {
	return &Model{
		Name: "mvia",
		Network: fabric.Params{
			Name:          "gigabit-ethernet",
			BandwidthBps:  1.0e9,
			LinkLatency:   us(0.5),
			SwitchLatency: us(2.0),
			FrameOverhead: 38, // Ethernet preamble+header+CRC+IFG
		},

		ViCreate:  us(93),
		ViDestroy: us(0.19),

		ConnRequestCost:  us(6447.7),
		ConnAcceptCost:   us(8),
		ConnTeardownCost: us(3),

		CqCreate:  us(17),
		CqDestroy: us(8.44),

		MemRegBase:      us(3.0),
		MemRegPerPage:   us(3.6),
		MemDeregBase:    us(1.2),
		MemDeregPerPage: 0,

		PostSendCost:   us(1.8),
		PostRecvCost:   us(1.5),
		PerSegmentCost: us(0.6),
		DoorbellCost:   us(3.5), // trap into the kernel

		HostCopies:  true,
		CopyPerByte: us(0.018), // ~55 MB/s kernel memcpy on a 300 MHz PII

		TranslationAt:    TranslateAtHost,
		HostXlatePerPage: us(0.7),
		TablesAt:         TablesInHostMemory,
		TLBCapacity:      0, // unused: host translates
		TLBPolicy:        nicsim.FIFO,

		CheckCost:      us(0.3),
		CqCheckExtra:   us(0.1),
		BlockWakeCost:  us(11), // signal delivery through the kernel
		NotifyDispatch: us(9),

		DoorbellProc:    us(1.0),
		DescFetch:       us(1.0),
		PerFragment:     us(1.0),
		PerFragmentRecv: us(1.2),
		DMAPerByte:      us(0.008), // 32-bit/33 MHz PCI
		CompletionWrite: us(0.8),

		PollSweep: false,

		WireMTU: 1500,

		AckProcessing:     us(1.5),
		AckBytes:          32,
		RetransmitTimeout: sim.Millisecond,
		MaxRetries:        6,

		MaxTransferSize:   32 * 1024,
		MaxSegments:       8,
		SupportsRDMAWrite: true,
		SupportsRDMARead:  true,  // software can do anything
		ReliabilityMask:   0b011, // Unreliable, ReliableDelivery
	}
}

// BVIA models Berkeley VIA 2.2 on Myrinet (LANai 4.3): the NIC firmware
// performs translation with tables in host memory and a small on-NIC
// software cache, and it polls a per-VI send-descriptor structure, so both
// buffer reuse and the number of open VIs affect performance strongly.
func BVIA() *Model {
	return &Model{
		Name: "bvia",
		Network: fabric.Params{
			Name:          "myrinet",
			BandwidthBps:  1.28e9,
			LinkLatency:   us(0.4),
			SwitchLatency: us(0.6),
			FrameOverhead: 16,
		},

		ViCreate:  us(28),
		ViDestroy: us(0.19),

		ConnRequestCost:  us(476.2),
		ConnAcceptCost:   us(15),
		ConnTeardownCost: us(9),

		CqCreate:  us(206),
		CqDestroy: us(35),

		MemRegBase:      us(21),
		MemRegPerPage:   us(0.6),
		MemDeregBase:    us(14),
		MemDeregPerPage: 0,

		PostSendCost:   us(1.6),
		PostRecvCost:   us(1.4),
		PerSegmentCost: us(0.9),
		DoorbellCost:   us(0.4), // memory-mapped doorbell

		HostCopies:  false,
		CopyPerByte: 0,

		TranslationAt: TranslateAtNIC,
		TablesAt:      TablesInHostMemory,
		TLBCapacity:   32,
		TLBPolicy:     nicsim.FIFO,

		XlateHit:           us(0.5),
		XlateMissHostTable: us(12.0), // LANai DMAs the entry from host memory

		CheckCost:      us(0.3),
		CqCheckExtra:   us(3.0), // 2-5us CQ overhead observed in the paper
		BlockWakeCost:  us(9),
		NotifyDispatch: us(8),

		DoorbellProc:    us(2.5),
		DescFetch:       us(3.0), // 33 MHz LANai fetching across PCI
		PerFragment:     us(5.0),
		PerFragmentRecv: us(5.0),
		DMAPerByte:      us(0.00625), // Myrinet-rate DMA engines
		CompletionWrite: us(1.2),

		PollSweep: true,
		PollPerVI: us(3.0),

		WireMTU: 4096,

		AckProcessing:     us(2.0),
		AckBytes:          16,
		RetransmitTimeout: sim.Millisecond,
		MaxRetries:        6,

		MaxTransferSize:   32 * 1024,
		MaxSegments:       4,
		SupportsRDMAWrite: true,
		SupportsRDMARead:  false,
		ReliabilityMask:   0b011, // Unreliable, ReliableDelivery
	}
}

// CLAN models Giganet cLAN 1.3.0 (cLAN1000 adapters): native hardware VIA.
// Translation tables live in NIC memory, doorbells are hardware registers,
// and the data path is entirely offloaded, giving the lowest latency —
// but connection establishment goes through a heavyweight management
// protocol, making it by far the most expensive setup operation after
// M-VIA's.
func CLAN() *Model {
	return &Model{
		Name: "clan",
		Network: fabric.Params{
			Name:          "giganet-clan",
			BandwidthBps:  0.95e9, // cell overhead keeps goodput near 110 MB/s
			LinkLatency:   us(0.5),
			SwitchLatency: us(0.5),
			FrameOverhead: 8,
		},

		ViCreate:  us(3),
		ViDestroy: us(0.11),

		ConnRequestCost:  us(2437.4),
		ConnAcceptCost:   us(12),
		ConnTeardownCost: us(155),

		CqCreate:  us(54),
		CqDestroy: us(15),

		MemRegBase:      us(8),
		MemRegPerPage:   us(1.3),
		MemDeregBase:    us(6),
		MemDeregPerPage: 0,

		PostSendCost:   us(0.7),
		PostRecvCost:   us(0.6),
		PerSegmentCost: us(0.3),
		DoorbellCost:   us(0.2),

		HostCopies:  false,
		CopyPerByte: 0,

		TranslationAt: TranslateAtNIC,
		TablesAt:      TablesInNICMemory,
		TLBCapacity:   0, // irrelevant: full table on the NIC
		TLBPolicy:     nicsim.FIFO,

		XlateNICTable: us(0.15),

		CheckCost:      us(0.2),
		CqCheckExtra:   us(0.05),
		BlockWakeCost:  us(7),
		NotifyDispatch: us(6),

		DoorbellProc:    us(1.0),
		DescFetch:       us(1.2),
		PerFragment:     us(1.2),
		PerFragmentRecv: us(1.2),
		DMAPerByte:      us(0.0078),
		CompletionWrite: us(0.4),

		PollSweep: false,

		WireMTU: 4096,

		AckProcessing:     us(0.5),
		AckBytes:          8,
		RetransmitTimeout: 500 * sim.Microsecond,
		MaxRetries:        8,

		MaxTransferSize:   64 * 1024,
		MaxSegments:       16,
		SupportsRDMAWrite: true,
		SupportsRDMARead:  true,
		ReliabilityMask:   0b111, // all three levels in hardware
	}
}

// All returns the three calibrated models in the paper's presentation
// order.
func All() []*Model {
	return []*Model{MVIA(), BVIA(), CLAN()}
}

// ByName returns the model with the given name.
func ByName(name string) (*Model, error) {
	for _, m := range All() {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, errUnknown(name)
}

func errUnknown(name string) error {
	return fmt.Errorf("provider: unknown model %q (have mvia, bvia, clan + extended firmvia, iba)", name)
}
