package provider

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Scenario is a data-driven model specification: a base provider plus
// parameter overrides. It is the unit the CLI, sweep expander and results
// provenance all share, and its JSON form is the on-disk scenario file:
//
//	{"name": "fast-doorbell", "base": "clan", "set": {"DoorbellCost": "0.1us"}}
type Scenario struct {
	// Name labels the derived design point ("TLBCapacity=8"); empty means
	// the unmodified base.
	Name string `json:"name,omitempty"`

	// Base is the built-in model to derive from (mvia, bvia, clan,
	// firmvia, iba). Registry experiments choose their own models, so Base
	// may be empty when only Set matters.
	Base string `json:"base,omitempty"`

	// Set maps catalog parameter names to value strings.
	Set map[string]string `json:"set,omitempty"`
}

// Compile validates the override set against the parameter catalog.
func (s *Scenario) Compile() ([]Override, error) {
	return CompileOverrides(s.Set)
}

// Derive returns a copy of m with the scenario's overrides applied, in
// sorted parameter order. m itself is never mutated.
func (s *Scenario) Derive(m *Model) (*Model, error) {
	ovs, err := s.Compile()
	if err != nil {
		return nil, err
	}
	d := m.Clone()
	for _, o := range ovs {
		o.Apply(d)
	}
	return d, nil
}

// Model resolves the base by name and derives the scenario's model.
func (s *Scenario) Model() (*Model, error) {
	if s.Base == "" {
		return nil, fmt.Errorf("provider: scenario %q has no base model", s.Name)
	}
	base, err := ByNameExtended(s.Base)
	if err != nil {
		return nil, err
	}
	return s.Derive(base)
}

// Label returns the scenario's display name: Name if set, otherwise a
// deterministic key=value rendering of the overrides, otherwise "base".
func (s *Scenario) Label() string {
	if s.Name != "" {
		return s.Name
	}
	ovs, err := CompileOverrides(s.Set)
	if err != nil || len(ovs) == 0 {
		return "base"
	}
	parts := make([]string, len(ovs))
	for i, o := range ovs {
		parts[i] = o.Param.Name + "=" + o.Value
	}
	return strings.Join(parts, ",")
}

// LoadScenario reads and validates a scenario file.
func LoadScenario(path string) (Scenario, error) {
	var s Scenario
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("provider: scenario %s: %w", path, err)
	}
	if _, err := s.Compile(); err != nil {
		return s, fmt.Errorf("provider: scenario %s: %w", path, err)
	}
	return s, nil
}

// Save writes the scenario as indented JSON.
func (s *Scenario) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ParseSet parses repeated "name=value" CLI arguments into an override
// set, validating each name and value against the catalog.
func ParseSet(args []string) (map[string]string, error) {
	if len(args) == 0 {
		return nil, nil
	}
	set := make(map[string]string, len(args))
	for _, a := range args {
		name, value, ok := strings.Cut(a, "=")
		if !ok || strings.TrimSpace(name) == "" {
			return nil, fmt.Errorf("provider: bad -set %q (want name=value)", a)
		}
		p, err := ParamByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		set[p.Name] = strings.TrimSpace(value)
	}
	if _, err := CompileOverrides(set); err != nil {
		return nil, err
	}
	return set, nil
}

// Names lists the built-in provider models in registry order.
func Names() []string {
	models := Extended()
	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.Name
	}
	return names
}
