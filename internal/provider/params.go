package provider

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"vibe/internal/fabric"
	"vibe/internal/nicsim"
	"vibe/internal/sim"
)

// This file defines the typed parameter catalog over Model: every
// design-choice knob the paper varies (and every cost constant behind its
// figures) gets a name, a unit, and a getter/setter pair, so scenarios can
// derive new models from the built-in five without touching source. The
// catalog is plain closures over struct fields — no reflection anywhere,
// so deriving a model stays off the allocator-heavy path and the compiler
// checks every accessor against the Model definition.

// Kind classifies a parameter's value syntax.
type Kind int

const (
	// KindDuration values are virtual-time costs: "2us", "350ns",
	// "1.5ms", "0.0005s"; a bare number means microseconds (the paper's
	// reporting unit).
	KindDuration Kind = iota
	// KindInt values are plain integers (capacities, byte counts).
	KindInt
	// KindBool values are "true"/"false".
	KindBool
	// KindFloat values are plain floating-point numbers (rates).
	KindFloat
	// KindEnum values are one of a fixed set of lower-case names.
	KindEnum
)

func (k Kind) String() string {
	switch k {
	case KindDuration:
		return "duration"
	case KindInt:
		return "int"
	case KindBool:
		return "bool"
	case KindFloat:
		return "float"
	default:
		return "enum"
	}
}

// Param is one named, typed knob of the provider model.
type Param struct {
	Name string
	Kind Kind
	Unit string // display unit or, for enums, the value set
	Doc  string

	get func(*Model) string
	set func(*Model, string) error
}

// Get returns the parameter's current value on m in canonical string form
// (the same form Set accepts, so Get/Set round-trips).
func (p *Param) Get(m *Model) string { return p.get(m) }

// Set parses value and stores it on m.
func (p *Param) Set(m *Model, value string) error {
	if err := p.set(m, value); err != nil {
		return fmt.Errorf("provider: param %s: %w", p.Name, err)
	}
	return nil
}

// ParseDuration parses a virtual-time cost: a float with an optional
// ns/us/ms/s suffix; no suffix means microseconds.
func ParseDuration(s string) (sim.Duration, error) {
	t := strings.TrimSpace(strings.ToLower(s))
	unit := float64(sim.Microsecond)
	switch {
	case strings.HasSuffix(t, "ns"):
		unit, t = float64(sim.Nanosecond), t[:len(t)-2]
	case strings.HasSuffix(t, "us"):
		unit, t = float64(sim.Microsecond), t[:len(t)-2]
	case strings.HasSuffix(t, "ms"):
		unit, t = float64(sim.Millisecond), t[:len(t)-2]
	case strings.HasSuffix(t, "s"):
		unit, t = float64(sim.Second), t[:len(t)-1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q (want e.g. 2us, 350ns, 1.5ms)", s)
	}
	return sim.Duration(v * unit), nil
}

// FormatDuration renders a duration in the catalog's canonical form:
// microseconds with a "us" suffix.
func FormatDuration(d sim.Duration) string {
	return strconv.FormatFloat(d.Micros(), 'g', -1, 64) + "us"
}

// Builders for the common parameter kinds. Each takes an accessor
// returning a pointer into the model, which serves as both getter and
// setter.

func durParam(name, doc string, f func(*Model) *sim.Duration) Param {
	return Param{
		Name: name, Kind: KindDuration, Unit: "us", Doc: doc,
		get: func(m *Model) string { return FormatDuration(*f(m)) },
		set: func(m *Model, v string) error {
			d, err := ParseDuration(v)
			if err != nil {
				return err
			}
			*f(m) = d
			return nil
		},
	}
}

func intParam(name, unit, doc string, f func(*Model) *int) Param {
	return Param{
		Name: name, Kind: KindInt, Unit: unit, Doc: doc,
		get: func(m *Model) string { return strconv.Itoa(*f(m)) },
		set: func(m *Model, v string) error {
			n, err := strconv.Atoi(strings.TrimSpace(v))
			if err != nil {
				return fmt.Errorf("bad integer %q", v)
			}
			*f(m) = n
			return nil
		},
	}
}

func boolParam(name, doc string, f func(*Model) *bool) Param {
	return Param{
		Name: name, Kind: KindBool, Unit: "bool", Doc: doc,
		get: func(m *Model) string { return strconv.FormatBool(*f(m)) },
		set: func(m *Model, v string) error {
			b, err := strconv.ParseBool(strings.TrimSpace(v))
			if err != nil {
				return fmt.Errorf("bad bool %q", v)
			}
			*f(m) = b
			return nil
		},
	}
}

func floatParam(name, unit, doc string, f func(*Model) *float64) Param {
	return Param{
		Name: name, Kind: KindFloat, Unit: unit, Doc: doc,
		get: func(m *Model) string { return strconv.FormatFloat(*f(m), 'g', -1, 64) },
		set: func(m *Model, v string) error {
			x, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				return fmt.Errorf("bad float %q", v)
			}
			*f(m) = x
			return nil
		},
	}
}

// catalog is built once; parameter order is the Model declaration order so
// listings read like the struct.
var catalog = buildCatalog()

var catalogByName = func() map[string]*Param {
	byName := make(map[string]*Param, len(catalog))
	for i := range catalog {
		byName[strings.ToLower(catalog[i].Name)] = &catalog[i]
	}
	return byName
}()

func buildCatalog() []Param {
	return []Param{
		// Interconnect.
		floatParam("BandwidthBps", "bits/s", "link bandwidth",
			func(m *Model) *float64 { return &m.Network.BandwidthBps }),
		durParam("LinkLatency", "one-hop propagation delay",
			func(m *Model) *sim.Duration { return &m.Network.LinkLatency }),
		durParam("SwitchLatency", "switch forwarding delay",
			func(m *Model) *sim.Duration { return &m.Network.SwitchLatency }),
		intParam("FrameOverhead", "bytes", "per-packet wire framing",
			func(m *Model) *int { return &m.Network.FrameOverhead }),
		floatParam("DropRate", "probability", "per-packet loss probability",
			func(m *Model) *float64 { return &m.Network.DropRate }),
		{
			Name: "NetTopology", Kind: KindEnum,
			Unit: strings.Join(fabric.TopologyNames(), "|"),
			Doc:  "interconnect switch graph (crossbar is the single-switch default)",
			get: func(m *Model) string {
				if m.Network.Topology == "" {
					return fabric.TopoCrossbar
				}
				return m.Network.Topology
			},
			set: func(m *Model, v string) error {
				t := strings.ToLower(strings.TrimSpace(v))
				for _, name := range fabric.TopologyNames() {
					if t == name {
						m.Network.Topology = t
						return nil
					}
				}
				return fmt.Errorf("bad topology %q (%s)", v, strings.Join(fabric.TopologyNames(), "|"))
			},
		},
		intParam("NetTopoDegree", "hosts/switch", "host-attachment arity of routed topologies (0 = topology default)",
			func(m *Model) *int { return &m.Network.TopologyDegree }),
		intParam("NetSwitchBufPkts", "packets", "per-output-port switch buffer bound; 0 = unbounded (full queues withhold credit upstream)",
			func(m *Model) *int { return &m.Network.SwitchBufPkts }),
		{
			Name: "NetRoutePolicy", Kind: KindEnum,
			Unit: strings.Join(fabric.RoutePolicyNames(), "|"),
			Doc:  "multipath route selection: failover (deterministic, default) or adaptive (least-queued candidate)",
			get: func(m *Model) string {
				if m.Network.RoutePolicy == "" {
					return fabric.RouteFailover
				}
				return m.Network.RoutePolicy
			},
			set: func(m *Model, v string) error {
				t := strings.ToLower(strings.TrimSpace(v))
				for _, name := range fabric.RoutePolicyNames() {
					if t == name {
						m.Network.RoutePolicy = t
						return nil
					}
				}
				return fmt.Errorf("bad route policy %q (%s)", v, strings.Join(fabric.RoutePolicyNames(), "|"))
			},
		},

		// Non-data-transfer costs.
		durParam("ViCreate", "VI creation cost",
			func(m *Model) *sim.Duration { return &m.ViCreate }),
		durParam("ViDestroy", "VI destruction cost",
			func(m *Model) *sim.Duration { return &m.ViDestroy }),
		durParam("ConnRequestCost", "client-side connection-request cost",
			func(m *Model) *sim.Duration { return &m.ConnRequestCost }),
		durParam("ConnAcceptCost", "server-side connection-accept cost",
			func(m *Model) *sim.Duration { return &m.ConnAcceptCost }),
		durParam("ConnTeardownCost", "connection teardown cost",
			func(m *Model) *sim.Duration { return &m.ConnTeardownCost }),
		durParam("CqCreate", "completion-queue creation cost",
			func(m *Model) *sim.Duration { return &m.CqCreate }),
		durParam("CqDestroy", "completion-queue destruction cost",
			func(m *Model) *sim.Duration { return &m.CqDestroy }),
		durParam("MemRegBase", "memory-registration base cost",
			func(m *Model) *sim.Duration { return &m.MemRegBase }),
		durParam("MemRegPerPage", "memory-registration per-page cost",
			func(m *Model) *sim.Duration { return &m.MemRegPerPage }),
		durParam("MemDeregBase", "memory-deregistration base cost",
			func(m *Model) *sim.Duration { return &m.MemDeregBase }),
		durParam("MemDeregPerPage", "memory-deregistration per-page cost",
			func(m *Model) *sim.Duration { return &m.MemDeregPerPage }),

		// Host data path.
		durParam("PostSendCost", "send-descriptor build+enqueue cost",
			func(m *Model) *sim.Duration { return &m.PostSendCost }),
		durParam("PostRecvCost", "receive-descriptor build+enqueue cost",
			func(m *Model) *sim.Duration { return &m.PostRecvCost }),
		durParam("PerSegmentCost", "cost per data segment beyond the first",
			func(m *Model) *sim.Duration { return &m.PerSegmentCost }),
		durParam("DoorbellCost", "host doorbell cost (MMIO write or trap)",
			func(m *Model) *sim.Duration { return &m.DoorbellCost }),
		boolParam("HostCopies", "kernel copies payloads on both sides (M-VIA)",
			func(m *Model) *bool { return &m.HostCopies }),
		durParam("CopyPerByte", "host copy cost per byte",
			func(m *Model) *sim.Duration { return &m.CopyPerByte }),
		durParam("HostXlatePerPage", "host-side translation cost per page",
			func(m *Model) *sim.Duration { return &m.HostXlatePerPage }),
		durParam("CheckCost", "one polling status check",
			func(m *Model) *sim.Duration { return &m.CheckCost }),
		durParam("CqCheckExtra", "additional cost of checking via a CQ",
			func(m *Model) *sim.Duration { return &m.CqCheckExtra }),
		durParam("BlockWakeCost", "interrupt + wakeup on a blocking wait",
			func(m *Model) *sim.Duration { return &m.BlockWakeCost }),
		durParam("NotifyDispatch", "async completion-handler dispatch cost",
			func(m *Model) *sim.Duration { return &m.NotifyDispatch }),

		// NIC engine.
		{
			Name: "TranslationAt", Kind: KindEnum, Unit: "host|nic",
			Doc: "which processor translates virtual addresses",
			get: func(m *Model) string { return m.TranslationAt.String() },
			set: func(m *Model, v string) error {
				switch strings.ToLower(strings.TrimSpace(v)) {
				case "host":
					m.TranslationAt = TranslateAtHost
				case "nic":
					m.TranslationAt = TranslateAtNIC
				default:
					return fmt.Errorf("bad translation site %q (host|nic)", v)
				}
				return nil
			},
		},
		{
			Name: "TablesAt", Kind: KindEnum, Unit: "host-memory|nic-memory",
			Doc: "where the translation tables live for NIC translation",
			get: func(m *Model) string { return m.TablesAt.String() },
			set: func(m *Model, v string) error {
				switch strings.ToLower(strings.TrimSpace(v)) {
				case "host-memory", "host":
					m.TablesAt = TablesInHostMemory
				case "nic-memory", "nic":
					m.TablesAt = TablesInNICMemory
				default:
					return fmt.Errorf("bad table site %q (host-memory|nic-memory)", v)
				}
				return nil
			},
		},
		intParam("TLBCapacity", "entries", "NIC translation-cache capacity",
			func(m *Model) *int { return &m.TLBCapacity }),
		{
			Name: "TLBPolicy", Kind: KindEnum, Unit: "fifo|lru",
			Doc: "NIC translation-cache replacement policy",
			get: func(m *Model) string { return strings.ToLower(m.TLBPolicy.String()) },
			set: func(m *Model, v string) error {
				switch strings.ToLower(strings.TrimSpace(v)) {
				case "fifo":
					m.TLBPolicy = nicsim.FIFO
				case "lru":
					m.TLBPolicy = nicsim.LRU
				default:
					return fmt.Errorf("bad TLB policy %q (fifo|lru)", v)
				}
				return nil
			},
		},
		durParam("XlateHit", "NIC TLB hit cost per page",
			func(m *Model) *sim.Duration { return &m.XlateHit }),
		durParam("XlateMissHostTable", "NIC TLB miss cost (table in host memory)",
			func(m *Model) *sim.Duration { return &m.XlateMissHostTable }),
		durParam("XlateNICTable", "NIC-resident table lookup cost per page",
			func(m *Model) *sim.Duration { return &m.XlateNICTable }),
		durParam("DoorbellProc", "NIC processing of one doorbell",
			func(m *Model) *sim.Duration { return &m.DoorbellProc }),
		durParam("DescFetch", "NIC descriptor DMA fetch cost",
			func(m *Model) *sim.Duration { return &m.DescFetch }),
		durParam("PerFragment", "NIC send-side work per wire fragment",
			func(m *Model) *sim.Duration { return &m.PerFragment }),
		durParam("PerFragmentRecv", "NIC receive-side work per wire fragment",
			func(m *Model) *sim.Duration { return &m.PerFragmentRecv }),
		durParam("DMAPerByte", "host<->NIC data movement cost per byte",
			func(m *Model) *sim.Duration { return &m.DMAPerByte }),
		durParam("CompletionWrite", "NIC completion write-back cost",
			func(m *Model) *sim.Duration { return &m.CompletionWrite }),
		boolParam("PollSweep", "firmware polls every open VI (Berkeley VIA)",
			func(m *Model) *bool { return &m.PollSweep }),
		durParam("PollPerVI", "poll-sweep cost per open VI beyond the first",
			func(m *Model) *sim.Duration { return &m.PollPerVI }),

		// Wire / transport.
		intParam("WireMTU", "bytes", "fragment payload bytes on the wire",
			func(m *Model) *int { return &m.WireMTU }),
		durParam("AckProcessing", "NIC cost to create or absorb an ack",
			func(m *Model) *sim.Duration { return &m.AckProcessing }),
		intParam("AckBytes", "bytes", "ack wire size",
			func(m *Model) *int { return &m.AckBytes }),
		durParam("RetransmitTimeout", "go-back-N retransmission timeout",
			func(m *Model) *sim.Duration { return &m.RetransmitTimeout }),
		intParam("MaxRetries", "count", "retransmission attempts before failure",
			func(m *Model) *int { return &m.MaxRetries }),
		boolParam("AdaptiveRTO", "adaptive (Jacobson/Karn) retransmission timeout",
			func(m *Model) *bool { return &m.AdaptiveRTO }),

		// VIA attributes.
		intParam("MaxTransferSize", "bytes", "largest single-descriptor transfer",
			func(m *Model) *int { return &m.MaxTransferSize }),
		intParam("MaxSegments", "count", "data segments per descriptor",
			func(m *Model) *int { return &m.MaxSegments }),
		boolParam("SupportsRDMAWrite", "provider implements RDMA write",
			func(m *Model) *bool { return &m.SupportsRDMAWrite }),
		boolParam("SupportsRDMARead", "provider implements RDMA read",
			func(m *Model) *bool { return &m.SupportsRDMARead }),
		{
			Name: "ReliabilityMask", Kind: KindInt, Unit: "bitmask 0-7",
			Doc: "supported reliability levels, 1<<level per level",
			get: func(m *Model) string { return strconv.Itoa(int(m.ReliabilityMask)) },
			set: func(m *Model, v string) error {
				n, err := strconv.Atoi(strings.TrimSpace(v))
				if err != nil || n < 0 || n > 7 {
					return fmt.Errorf("bad reliability mask %q (0-7)", v)
				}
				m.ReliabilityMask = uint8(n)
				return nil
			},
		},
	}
}

// Params returns the full catalog in declaration order. The returned slice
// is shared; callers must not modify it.
func Params() []*Param {
	ps := make([]*Param, len(catalog))
	for i := range catalog {
		ps[i] = &catalog[i]
	}
	return ps
}

// ParamByName resolves a parameter case-insensitively.
func ParamByName(name string) (*Param, error) {
	if p, ok := catalogByName[strings.ToLower(name)]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("provider: unknown parameter %q (see vibe -params for the catalog)", name)
}

// Override sets one named parameter on m from its string form.
func (m *Model) Override(name, value string) error {
	p, err := ParamByName(name)
	if err != nil {
		return err
	}
	return p.Set(m, value)
}

// Override is one pre-validated parameter assignment, compiled once so
// scenario sweeps can derive many models without re-validating names and
// values per cell.
type Override struct {
	Param *Param
	Value string
}

// Apply sets the override on m. The value was validated at compile time
// and setters are deterministic in the value alone, so Apply cannot fail.
func (o Override) Apply(m *Model) { _ = o.Param.set(m, o.Value) }

// CompileOverrides validates a name->value set against the catalog and
// returns appliers in sorted name order (deterministic regardless of map
// iteration).
func CompileOverrides(set map[string]string) ([]Override, error) {
	if len(set) == 0 {
		return nil, nil
	}
	names := make([]string, 0, len(set))
	for k := range set {
		names = append(names, k)
	}
	sort.Strings(names)
	ovs := make([]Override, 0, len(names))
	scratch := &Model{}
	for _, name := range names {
		p, err := ParamByName(name)
		if err != nil {
			return nil, err
		}
		if err := p.Set(scratch, set[name]); err != nil {
			return nil, err
		}
		ovs = append(ovs, Override{Param: p, Value: set[name]})
	}
	return ovs, nil
}
