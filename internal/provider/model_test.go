package provider

import (
	"testing"

	"vibe/internal/sim"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"mvia", "bvia", "clan"} {
		m, err := ByName(name)
		if err != nil || m.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, m, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown provider accepted")
	}
	if len(All()) != 3 {
		t.Errorf("All() = %d models", len(All()))
	}
}

func TestReliabilityMasks(t *testing.T) {
	mvia, bvia, clan := MVIA(), BVIA(), CLAN()
	for _, m := range []*Model{mvia, bvia, clan} {
		if !m.Supports(0) {
			t.Errorf("%s must support unreliable delivery", m.Name)
		}
		if !m.Supports(1) {
			t.Errorf("%s should support reliable delivery", m.Name)
		}
	}
	if bvia.Supports(2) || mvia.Supports(2) {
		t.Error("only cLAN supports reliable reception")
	}
	if !clan.Supports(2) {
		t.Error("cLAN must support reliable reception")
	}
}

func TestBehaviouralSwitches(t *testing.T) {
	mvia, bvia, clan := MVIA(), BVIA(), CLAN()
	if mvia.TranslationAt != TranslateAtHost || !mvia.HostCopies {
		t.Error("M-VIA must translate at host and copy through the kernel")
	}
	if bvia.TranslationAt != TranslateAtNIC || bvia.TablesAt != TablesInHostMemory {
		t.Error("BVIA must translate on the NIC with host-resident tables")
	}
	if bvia.TLBCapacity <= 0 || !bvia.PollSweep {
		t.Error("BVIA needs a finite NIC cache and the poll sweep")
	}
	if clan.TablesAt != TablesInNICMemory || clan.PollSweep || clan.HostCopies {
		t.Error("cLAN must be fully offloaded")
	}
	if bvia.SupportsRDMARead {
		t.Error("BVIA does not support RDMA read")
	}
}

func TestTable1CostsAreModelParameters(t *testing.T) {
	// The directly-parameterized Table 1 entries.
	cases := []struct {
		name string
		got  sim.Duration
		us   float64
	}{
		{"mvia ViCreate", MVIA().ViCreate, 93},
		{"bvia ViCreate", BVIA().ViCreate, 28},
		{"clan ViCreate", CLAN().ViCreate, 3},
		{"bvia CqCreate", BVIA().CqCreate, 206},
		{"clan ConnTeardown", CLAN().ConnTeardownCost, 155},
	}
	for _, c := range cases {
		if c.got != sim.Microseconds(c.us) {
			t.Errorf("%s = %v, want %vus", c.name, c.got, c.us)
		}
	}
}

func TestNetworkParamsPlausible(t *testing.T) {
	for _, m := range All() {
		n := m.Network
		if n.BandwidthBps < 0.5e9 || n.BandwidthBps > 2e9 {
			t.Errorf("%s bandwidth %.2g implausible for a 2001 SAN", m.Name, n.BandwidthBps)
		}
		if n.LinkLatency <= 0 || n.SwitchLatency <= 0 {
			t.Errorf("%s zero link/switch latency", m.Name)
		}
		if m.WireMTU <= 0 || m.MaxTransferSize < m.WireMTU {
			t.Errorf("%s MTU/transfer sizes inconsistent", m.Name)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	m := BVIA()
	c := m.Clone()
	c.TLBCapacity = 999
	if m.TLBCapacity == 999 {
		t.Error("Clone shares state")
	}
}

func TestSiteStrings(t *testing.T) {
	if TranslateAtHost.String() != "host" || TranslateAtNIC.String() != "nic" {
		t.Error("TranslationSite strings")
	}
	if TablesInHostMemory.String() != "host-memory" || TablesInNICMemory.String() != "nic-memory" {
		t.Error("TableSite strings")
	}
}
