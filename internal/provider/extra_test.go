package provider

import "testing"

func TestExtendedRegistry(t *testing.T) {
	ext := Extended()
	if len(ext) != 5 {
		t.Fatalf("Extended() = %d models", len(ext))
	}
	names := map[string]bool{}
	for _, m := range ext {
		names[m.Name] = true
	}
	for _, want := range []string{"mvia", "bvia", "clan", "firmvia", "iba"} {
		if !names[want] {
			t.Errorf("missing %s", want)
		}
	}
	for _, name := range []string{"firmvia", "iba"} {
		m, err := ByNameExtended(name)
		if err != nil || m.Name != name {
			t.Errorf("ByNameExtended(%q) = %v, %v", name, m, err)
		}
		// Extended names must not leak into the calibrated set.
		if _, err := ByName(name); err == nil {
			t.Errorf("ByName accepted extended model %q", name)
		}
	}
	if _, err := ByNameExtended("nope"); err == nil {
		t.Error("unknown extended name accepted")
	}
}

func TestExtendedModelShapes(t *testing.T) {
	fv, ib := FIRMVIA(), IBA()
	// Both are fully offloaded: no host copies, NIC-resident tables, no
	// poll sweep — the behaviours that make bvia sensitive must be off.
	for _, m := range []*Model{fv, ib} {
		if m.HostCopies || m.PollSweep {
			t.Errorf("%s must be offloaded", m.Name)
		}
		if m.TranslationAt != TranslateAtNIC || m.TablesAt != TablesInNICMemory {
			t.Errorf("%s must keep tables on the adapter", m.Name)
		}
	}
	// IBA is the only extended model with RDMA read and all three
	// reliability levels.
	if !ib.SupportsRDMARead || !ib.Supports(2) {
		t.Error("iba must support RDMA read and reliable reception")
	}
	if fv.SupportsRDMARead {
		t.Error("firmvia does not support RDMA read")
	}
	// IBA's link outruns every 2001 interconnect.
	for _, m := range All() {
		if ib.Network.BandwidthBps <= m.Network.BandwidthBps {
			t.Errorf("iba link (%.2g) should outrun %s (%.2g)",
				ib.Network.BandwidthBps, m.Name, m.Network.BandwidthBps)
		}
	}
}
