package provider

import (
	"strconv"
	"strings"
	"testing"

	"vibe/internal/sim"
)

// mutatedValue returns a valid value for p that differs from cur, so tests
// can flip every parameter and observe the change.
func mutatedValue(t *testing.T, p *Param, cur string) string {
	t.Helper()
	switch p.Kind {
	case KindDuration:
		d, err := ParseDuration(cur)
		if err != nil {
			t.Fatalf("%s: current value %q unparseable: %v", p.Name, cur, err)
		}
		return FormatDuration(d + sim.Duration(1375)) // +1.375us in ns
	case KindInt:
		n, err := strconv.Atoi(cur)
		if err != nil {
			t.Fatalf("%s: current value %q unparseable: %v", p.Name, cur, err)
		}
		if p.Name == "ReliabilityMask" {
			return strconv.Itoa((n + 1) % 8)
		}
		return strconv.Itoa(n + 1)
	case KindBool:
		if cur == "true" {
			return "false"
		}
		return "true"
	case KindFloat:
		f, err := strconv.ParseFloat(cur, 64)
		if err != nil {
			t.Fatalf("%s: current value %q unparseable: %v", p.Name, cur, err)
		}
		return strconv.FormatFloat(f*2+0.125, 'g', -1, 64)
	case KindEnum:
		for _, opt := range strings.Split(p.Unit, "|") {
			if opt != cur {
				return opt
			}
		}
		t.Fatalf("%s: no alternative enum value to %q in %q", p.Name, cur, p.Unit)
	}
	t.Fatalf("%s: unknown kind %v", p.Name, p.Kind)
	return ""
}

// TestParamGetSetRoundTrip sets every parameter to a new value and reads
// it back: the canonical Get form must survive a Set/Get cycle, on every
// built-in model.
func TestParamGetSetRoundTrip(t *testing.T) {
	for _, base := range Extended() {
		m := base.Clone()
		for _, p := range Params() {
			cur := p.Get(m)
			next := mutatedValue(t, p, cur)
			if next == cur {
				t.Fatalf("%s/%s: mutated value %q equals current", base.Name, p.Name, next)
			}
			if err := p.Set(m, next); err != nil {
				t.Fatalf("%s/%s: Set(%q): %v", base.Name, p.Name, next, err)
			}
			got := p.Get(m)
			if err := p.Set(m, got); err != nil {
				t.Fatalf("%s/%s: canonical form %q does not re-parse: %v", base.Name, p.Name, got, err)
			}
			if again := p.Get(m); again != got {
				t.Fatalf("%s/%s: Get/Set unstable: %q -> %q", base.Name, p.Name, got, again)
			}
		}
	}
}

// TestCloneIsDeepCopy is the regression guard for Model.Clone: flipping
// every single overridable parameter on a clone must leave the original
// untouched. If someone adds a reference-typed field (slice, map, pointer)
// to Model and the catalog, this catches the shared state.
func TestCloneIsDeepCopy(t *testing.T) {
	for _, base := range Extended() {
		orig := base.Clone()
		pristine := make(map[string]string, len(Params()))
		for _, p := range Params() {
			pristine[p.Name] = p.Get(orig)
		}
		mutant := orig.Clone()
		for _, p := range Params() {
			next := mutatedValue(t, p, p.Get(mutant))
			if err := p.Set(mutant, next); err != nil {
				t.Fatalf("%s/%s: Set(%q): %v", base.Name, p.Name, next, err)
			}
		}
		for _, p := range Params() {
			if got := p.Get(orig); got != pristine[p.Name] {
				t.Errorf("%s: mutating a clone changed the original's %s: %q -> %q",
					base.Name, p.Name, pristine[p.Name], got)
			}
			if got := p.Get(mutant); got == pristine[p.Name] {
				t.Errorf("%s: clone's %s did not change from %q", base.Name, p.Name, got)
			}
		}
	}
}

func TestParseDuration(t *testing.T) {
	cases := []struct {
		in   string
		want sim.Duration
	}{
		{"2us", 2 * sim.Microsecond},
		{"2", 2 * sim.Microsecond}, // bare number = microseconds
		{"350ns", 350 * sim.Nanosecond},
		{"1.5ms", 1500 * sim.Microsecond},
		{"0.0005s", 500 * sim.Microsecond},
		{" 2 us ", 2 * sim.Microsecond},
		{"2US", 2 * sim.Microsecond},
	}
	for _, c := range cases {
		got, err := ParseDuration(c.in)
		if err != nil {
			t.Errorf("ParseDuration(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseDuration(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "fast", "2kb", "us"} {
		if _, err := ParseDuration(bad); err == nil {
			t.Errorf("ParseDuration(%q) accepted", bad)
		}
	}
}

func TestParamByNameCaseInsensitive(t *testing.T) {
	for _, name := range []string{"DoorbellCost", "doorbellcost", "DOORBELLCOST"} {
		p, err := ParamByName(name)
		if err != nil {
			t.Fatalf("ParamByName(%q): %v", name, err)
		}
		if p.Name != "DoorbellCost" {
			t.Fatalf("ParamByName(%q) = %s", name, p.Name)
		}
	}
	if _, err := ParamByName("NoSuchKnob"); err == nil {
		t.Fatal("unknown parameter accepted")
	}
}

func TestCompileOverrides(t *testing.T) {
	ovs, err := CompileOverrides(map[string]string{
		"WireMTU":      "9000",
		"DoorbellCost": "2us",
		"TLBPolicy":    "lru",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sorted name order, independent of map iteration.
	want := []string{"DoorbellCost", "TLBPolicy", "WireMTU"}
	for i, o := range ovs {
		if o.Param.Name != want[i] {
			t.Fatalf("override %d = %s, want %s", i, o.Param.Name, want[i])
		}
	}
	m := CLAN()
	for _, o := range ovs {
		o.Apply(m)
	}
	if m.WireMTU != 9000 {
		t.Fatalf("WireMTU = %d after override", m.WireMTU)
	}
	if m.DoorbellCost != 2*sim.Microsecond {
		t.Fatalf("DoorbellCost = %v after override", m.DoorbellCost)
	}

	if _, err := CompileOverrides(map[string]string{"NoSuchKnob": "1"}); err == nil {
		t.Fatal("unknown name accepted")
	}
	if _, err := CompileOverrides(map[string]string{"WireMTU": "huge"}); err == nil {
		t.Fatal("bad value accepted")
	}
	if _, err := CompileOverrides(map[string]string{"ReliabilityMask": "9"}); err == nil {
		t.Fatal("out-of-range reliability mask accepted")
	}
}

// TestOverrideApplyIsIdempotent: scenario overrides re-apply to models the
// experiments already tweaked, so applying twice must equal applying once.
func TestOverrideApplyIsIdempotent(t *testing.T) {
	ovs, err := CompileOverrides(map[string]string{"DoorbellCost": "2us", "HostCopies": "true"})
	if err != nil {
		t.Fatal(err)
	}
	once, twice := CLAN(), CLAN()
	for _, o := range ovs {
		o.Apply(once)
	}
	for i := 0; i < 2; i++ {
		for _, o := range ovs {
			o.Apply(twice)
		}
	}
	for _, p := range Params() {
		if p.Get(once) != p.Get(twice) {
			t.Fatalf("%s differs after re-application: %q vs %q", p.Name, p.Get(once), p.Get(twice))
		}
	}
}
