package provider

import (
	"path/filepath"
	"testing"
)

func TestScenarioDeriveDoesNotMutateBase(t *testing.T) {
	base := CLAN()
	before := base.DoorbellCost
	s := Scenario{Set: map[string]string{"DoorbellCost": "99us"}}
	d, err := s.Derive(base)
	if err != nil {
		t.Fatal(err)
	}
	if base.DoorbellCost != before {
		t.Fatalf("Derive mutated the base model: %v -> %v", before, base.DoorbellCost)
	}
	if got := d.DoorbellCost.Micros(); got != 99 {
		t.Fatalf("derived DoorbellCost = %vus, want 99", got)
	}
}

func TestScenarioModelResolvesBase(t *testing.T) {
	s := Scenario{Base: "firmvia", Set: map[string]string{"WireMTU": "2048"}}
	m, err := s.Model()
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "firmvia" || m.WireMTU != 2048 {
		t.Fatalf("derived model = %s, MTU %d", m.Name, m.WireMTU)
	}
	if _, err := (&Scenario{Set: map[string]string{}}).Model(); err == nil {
		t.Fatal("scenario without base resolved a model")
	}
	if _, err := (&Scenario{Base: "nope"}).Model(); err == nil {
		t.Fatal("unknown base accepted")
	}
}

func TestScenarioLabel(t *testing.T) {
	if got := (&Scenario{Name: "tuned"}).Label(); got != "tuned" {
		t.Fatalf("Label = %q", got)
	}
	if got := (&Scenario{}).Label(); got != "base" {
		t.Fatalf("empty Label = %q", got)
	}
	s := &Scenario{Set: map[string]string{"WireMTU": "9000", "DoorbellCost": "2us"}}
	if got := s.Label(); got != "DoorbellCost=2us,WireMTU=9000" {
		t.Fatalf("Label = %q (must be sorted, deterministic)", got)
	}
}

func TestScenarioSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sc.json")
	s := Scenario{Name: "rt", Base: "bvia", Set: map[string]string{"TLBCapacity": "16"}}
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != s.Name || got.Base != s.Base || got.Set["TLBCapacity"] != "16" {
		t.Fatalf("round trip lost data: %+v", got)
	}
	m1, err := s.Model()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := got.Model()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range Params() {
		if p.Get(m1) != p.Get(m2) {
			t.Fatalf("round-tripped scenario derives different %s: %q vs %q",
				p.Name, p.Get(m1), p.Get(m2))
		}
	}
}

func TestLoadScenarioRejectsBadOverrides(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	s := Scenario{Set: map[string]string{"NoSuchKnob": "1"}}
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadScenario(path); err == nil {
		t.Fatal("scenario with unknown parameter loaded")
	}
}

func TestParseSet(t *testing.T) {
	set, err := ParseSet([]string{"doorbellcost=2us", "WireMTU = 9000"})
	if err != nil {
		t.Fatal(err)
	}
	// Names canonicalize to catalog spelling, values are trimmed.
	if set["DoorbellCost"] != "2us" || set["WireMTU"] != "9000" {
		t.Fatalf("ParseSet = %v", set)
	}
	for _, bad := range [][]string{
		{"DoorbellCost"},          // no '='
		{"=2us"},                  // no name
		{"NoSuchKnob=1"},          // unknown name
		{"DoorbellCost=quickly"},  // bad value
		{"ReliabilityMask=elite"}, // bad value, custom setter
	} {
		if _, err := ParseSet(bad); err == nil {
			t.Errorf("ParseSet(%v) accepted", bad)
		}
	}
	if set, err := ParseSet(nil); err != nil || set != nil {
		t.Fatalf("ParseSet(nil) = %v, %v", set, err)
	}
}

func TestNames(t *testing.T) {
	names := Names()
	want := []string{"mvia", "bvia", "clan", "firmvia", "iba"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q", i, names[i], want[i])
		}
		if _, err := ByNameExtended(names[i]); err != nil {
			t.Fatalf("Names() entry %q does not resolve: %v", names[i], err)
		}
	}
}
