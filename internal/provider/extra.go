package provider

import (
	"vibe/internal/fabric"
	"vibe/internal/nicsim"
	"vibe/internal/sim"
)

// The paper evaluates three implementations but cites two more systems
// its authors worked on: FirmVIA on IBM SP switch-connected NT clusters
// (reference [8]) and the then-upcoming InfiniBand Architecture (§5
// future work: "develop a similar micro-benchmark suite for IBA"). These
// models let the suite exercise both; they are approximations built from
// the cited papers' published numbers, not calibration targets.

// FIRMVIA approximates FirmVIA on an IBM SP switch-connected cluster:
// VIA implemented in adapter microcode on the TB3 adapter's onboard
// PowerPC. Translation runs on the adapter with adapter-resident tables
// (FirmVIA pre-translates at registration time into adapter memory), so —
// like cLAN and unlike Berkeley VIA — it is insensitive to buffer reuse.
// The microcoded data path is slower than cLAN's hardware engines but the
// SP switch links are fast.
func FIRMVIA() *Model {
	return &Model{
		Name: "firmvia",
		Network: fabric.Params{
			Name:          "sp-switch",
			BandwidthBps:  1.2e9, // 150 MB/s SP switch links
			LinkLatency:   us(0.6),
			SwitchLatency: us(1.0),
			FrameOverhead: 20,
		},

		ViCreate:  us(15),
		ViDestroy: us(0.2),

		ConnRequestCost:  us(750),
		ConnAcceptCost:   us(20),
		ConnTeardownCost: us(12),

		CqCreate:  us(40),
		CqDestroy: us(12),

		// FirmVIA translates at registration time into adapter memory,
		// making registration pricier per page but transfers cheap.
		MemRegBase:      us(12),
		MemRegPerPage:   us(2.2),
		MemDeregBase:    us(8),
		MemDeregPerPage: 0,

		PostSendCost:   us(1.2),
		PostRecvCost:   us(1.0),
		PerSegmentCost: us(0.5),
		DoorbellCost:   us(0.5),

		HostCopies:  false,
		CopyPerByte: 0,

		TranslationAt: TranslateAtNIC,
		TablesAt:      TablesInNICMemory,
		TLBCapacity:   0,
		TLBPolicy:     nicsim.FIFO,

		XlateNICTable: us(0.25),

		CheckCost:      us(0.25),
		CqCheckExtra:   us(0.4),
		BlockWakeCost:  us(8),
		NotifyDispatch: us(7),

		DoorbellProc:    us(1.5),
		DescFetch:       us(1.8),
		PerFragment:     us(2.5), // microcode, faster than LANai 4.3, slower than ASIC
		PerFragmentRecv: us(2.5),
		DMAPerByte:      us(0.0067),
		CompletionWrite: us(0.8),

		PollSweep: false,

		WireMTU: 4096,

		AckProcessing:     us(1.0),
		AckBytes:          16,
		RetransmitTimeout: sim.Millisecond,
		MaxRetries:        6,

		MaxTransferSize:   32 * 1024,
		MaxSegments:       8,
		SupportsRDMAWrite: true,
		SupportsRDMARead:  false,
		ReliabilityMask:   0b011,
	}
}

// IBA approximates a first-generation InfiniBand 1x host channel adapter
// (the architecture the paper's conclusion targets for a follow-on
// suite): a 2.5 Gb/s link, fully offloaded hardware data path with
// NIC-resident translation, native reliable connections, and RDMA read
// and write in hardware.
func IBA() *Model {
	return &Model{
		Name: "iba",
		Network: fabric.Params{
			Name:          "infiniband-1x",
			BandwidthBps:  2.0e9, // 2.5 Gb/s signalling, 2.0 Gb/s data (8b/10b)
			LinkLatency:   us(0.2),
			SwitchLatency: us(0.3),
			FrameOverhead: 12,
		},

		ViCreate:  us(2),
		ViDestroy: us(0.1),

		ConnRequestCost:  us(900),
		ConnAcceptCost:   us(10),
		ConnTeardownCost: us(40),

		CqCreate:  us(25),
		CqDestroy: us(8),

		MemRegBase:      us(10),
		MemRegPerPage:   us(1.0),
		MemDeregBase:    us(5),
		MemDeregPerPage: 0,

		PostSendCost:   us(0.5),
		PostRecvCost:   us(0.4),
		PerSegmentCost: us(0.2),
		DoorbellCost:   us(0.15),

		HostCopies:  false,
		CopyPerByte: 0,

		TranslationAt: TranslateAtNIC,
		TablesAt:      TablesInNICMemory,
		TLBCapacity:   0,
		TLBPolicy:     nicsim.LRU,

		XlateNICTable: us(0.1),

		CheckCost:      us(0.15),
		CqCheckExtra:   us(0.05),
		BlockWakeCost:  us(5),
		NotifyDispatch: us(4),

		DoorbellProc:    us(0.3),
		DescFetch:       us(0.4),
		PerFragment:     us(0.3),
		PerFragmentRecv: us(0.3),
		DMAPerByte:      us(0.004), // 64-bit/66 MHz PCI
		CompletionWrite: us(0.3),

		PollSweep: false,

		WireMTU: 2048, // IBA MTU

		AckProcessing:     us(0.3),
		AckBytes:          8,
		RetransmitTimeout: 300 * sim.Microsecond,
		MaxRetries:        8,

		MaxTransferSize:   128 * 1024,
		MaxSegments:       32,
		SupportsRDMAWrite: true,
		SupportsRDMARead:  true,
		ReliabilityMask:   0b111,
	}
}

// Extended returns the paper's three providers plus the FirmVIA and IBA
// approximations.
func Extended() []*Model {
	return append(All(), FIRMVIA(), IBA())
}

// ByNameExtended resolves any of the five models.
func ByNameExtended(name string) (*Model, error) {
	for _, m := range Extended() {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, errUnknown(name)
}
