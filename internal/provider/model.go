// Package provider defines the cost/behaviour models that distinguish the
// simulated VIA implementations. All three of the paper's systems — M-VIA
// on Gigabit Ethernet, Berkeley VIA on Myrinet, and Giganet cLAN — run the
// exact same engine (internal/via) parameterized by a Model.
//
// Parameters come in two kinds: behavioural switches (where translation
// happens, whether the host copies data, whether the firmware polls every
// VI) that reproduce the paper's observations *mechanistically*, and cost
// constants calibrated so the simulated Table 1 and figure shapes match
// the paper.
package provider

import (
	"vibe/internal/fabric"
	"vibe/internal/nicsim"
	"vibe/internal/sim"
)

// TranslationSite says which processor performs virtual-to-physical
// address translation for data transfers.
type TranslationSite int

const (
	// TranslateAtHost: the host (kernel) translates while posting; the NIC
	// receives physical addresses. M-VIA works this way.
	TranslateAtHost TranslationSite = iota
	// TranslateAtNIC: the NIC translates using its own table/cache.
	// Berkeley VIA and cLAN work this way.
	TranslateAtNIC
)

func (t TranslationSite) String() string {
	if t == TranslateAtNIC {
		return "nic"
	}
	return "host"
}

// TableSite says where the translation tables live when the NIC
// translates.
type TableSite int

const (
	// TablesInHostMemory: the NIC caches entries in a small TLB and must
	// DMA to host memory on a miss (Berkeley VIA).
	TablesInHostMemory TableSite = iota
	// TablesInNICMemory: the full table is NIC-resident; every lookup is
	// fast (cLAN).
	TablesInNICMemory
)

func (t TableSite) String() string {
	if t == TablesInNICMemory {
		return "nic-memory"
	}
	return "host-memory"
}

// Model is the complete parameterization of one VIA implementation.
// Durations are virtual time; "host" costs execute on (and are accounted
// to) the host CPU, "NIC" costs execute on the NIC processor.
type Model struct {
	Name    string
	Network fabric.Params

	// --- Non-data-transfer operation costs (host side) ---

	ViCreate  sim.Duration
	ViDestroy sim.Duration

	// Connection management. The client pays ConnRequestCost before its
	// request leaves; the server pays ConnAcceptCost before the accept
	// returns. The paper's "establishing connection" number is what the
	// client observes: request cost + round trip + accept cost.
	ConnRequestCost  sim.Duration
	ConnAcceptCost   sim.Duration
	ConnTeardownCost sim.Duration

	CqCreate  sim.Duration
	CqDestroy sim.Duration

	MemRegBase      sim.Duration
	MemRegPerPage   sim.Duration
	MemDeregBase    sim.Duration
	MemDeregPerPage sim.Duration

	// --- Host data-path costs ---

	PostSendCost   sim.Duration // build + enqueue a send descriptor
	PostRecvCost   sim.Duration // build + enqueue a receive descriptor
	PerSegmentCost sim.Duration // per data segment beyond the first
	DoorbellCost   sim.Duration // MMIO write (hardware) or trap (M-VIA)

	// HostCopies models M-VIA's kernel emulation: payloads are copied
	// between user and kernel buffers on both sides.
	HostCopies  bool
	CopyPerByte sim.Duration

	// HostXlatePerPage is the per-page translation cost when
	// TranslationAt == TranslateAtHost.
	HostXlatePerPage sim.Duration

	CheckCost      sim.Duration // one polling status check (VipSendDone et al.)
	CqCheckExtra   sim.Duration // additional cost when checking via a CQ
	BlockWakeCost  sim.Duration // interrupt + wakeup on a blocking wait
	NotifyDispatch sim.Duration // dispatching an async completion handler

	// --- NIC engine costs ---

	TranslationAt TranslationSite
	TablesAt      TableSite
	TLBCapacity   int
	TLBPolicy     nicsim.TLBPolicy

	XlateHit           sim.Duration // NIC TLB hit, per page
	XlateMissHostTable sim.Duration // NIC TLB miss, table in host memory (DMA)
	XlateNICTable      sim.Duration // table lookup in NIC memory, per page

	DoorbellProc    sim.Duration // NIC processing of one doorbell
	DescFetch       sim.Duration // DMA descriptor from host
	PerFragment     sim.Duration // NIC send-side work per wire fragment
	PerFragmentRecv sim.Duration // NIC receive-side work per wire fragment
	DMAPerByte      sim.Duration // host<->NIC data movement per byte
	CompletionWrite sim.Duration // NIC writes completion status to host

	// PollSweep models Berkeley VIA firmware scanning every open VI's
	// send queue: each descriptor pickup costs PollPerVI for every open VI
	// beyond the first.
	PollSweep bool
	PollPerVI sim.Duration

	// --- Wire / transport ---

	WireMTU int // fragment payload bytes on the wire

	AckProcessing     sim.Duration // NIC cost to create or absorb an ack
	AckBytes          int
	RetransmitTimeout sim.Duration
	MaxRetries        int

	// AdaptiveRTO switches the reliable transport from the fixed
	// RetransmitTimeout to the Jacobson/Karn RTT estimator (SRTT +
	// 4·RTTVAR, clamped around RetransmitTimeout). Off in every built-in
	// model: the paper-era interconnects used fixed firmware timeouts.
	AdaptiveRTO bool

	// --- VIA attributes ---

	MaxTransferSize   int // largest message a single descriptor may move
	MaxSegments       int
	SupportsRDMAWrite bool
	SupportsRDMARead  bool
	// ReliabilityLevels this provider supports; the engine rejects VI
	// attributes asking for an unsupported level. Encoded as a bitmask of
	// 1<<level.
	ReliabilityMask uint8
}

// Supports reports whether the model supports reliability level bit lv
// (callers pass via.ReliabilityLevel converted to uint8).
func (m *Model) Supports(lv uint8) bool { return m.ReliabilityMask&(1<<lv) != 0 }

// Clone returns a deep-enough copy for tests and ablations to mutate.
func (m *Model) Clone() *Model {
	c := *m
	return &c
}
