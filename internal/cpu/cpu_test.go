package cpu

import (
	"math"
	"testing"

	"vibe/internal/sim"
)

func TestUseAccountsBusyAndAdvancesTime(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e)
	e.Spawn("p", func(p *sim.Proc) {
		c.Use(p, 100)
		if p.Now() != 100 {
			t.Errorf("time = %v, want 100ns", p.Now())
		}
		c.Use(p, 0) // no-op
	})
	e.MustRun()
	if c.Busy() != 100 {
		t.Fatalf("busy = %v, want 100ns", c.Busy())
	}
}

func TestSpinWaitIsBusy(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e)
	s := sim.NewSignal(e)
	e.Spawn("poller", func(p *sim.Proc) {
		c.SpinWait(p, s)
	})
	e.Spawn("sig", func(p *sim.Proc) {
		p.Sleep(500)
		s.Broadcast()
	})
	e.MustRun()
	if c.Busy() != 500 {
		t.Fatalf("busy = %v, want 500ns", c.Busy())
	}
}

func TestBlockWaitIsIdlePlusWakeCost(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e)
	s := sim.NewSignal(e)
	e.Spawn("blocker", func(p *sim.Proc) {
		c.BlockWait(p, s, 30)
	})
	e.Spawn("sig", func(p *sim.Proc) {
		p.Sleep(500)
		s.Broadcast()
	})
	e.MustRun()
	if c.Busy() != 30 {
		t.Fatalf("busy = %v, want 30ns (wake cost only)", c.Busy())
	}
}

func TestMeterUtilization(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e)
	s := sim.NewSignal(e)
	var spinU, blockU float64
	e.Spawn("p", func(p *sim.Proc) {
		m := c.StartMeter()
		c.SpinWait(p, s) // whole interval busy
		spinU = m.Utilization()

		m2 := c.StartMeter()
		c.BlockWait(p, s, 10) // mostly idle
		blockU = m2.Utilization()
		if m2.BusySince() != 10 {
			t.Errorf("BusySince = %v", m2.BusySince())
		}
		if m2.Elapsed() != 1010 {
			t.Errorf("Elapsed = %v", m2.Elapsed())
		}
	})
	e.Spawn("sig", func(p *sim.Proc) {
		p.Sleep(1000)
		s.Broadcast()
		p.Sleep(1000)
		s.Broadcast()
	})
	e.MustRun()
	if spinU != 1.0 {
		t.Errorf("spin utilization = %v, want 1.0", spinU)
	}
	want := 10.0 / 1010.0
	if math.Abs(blockU-want) > 1e-9 {
		t.Errorf("block utilization = %v, want %v", blockU, want)
	}
}

func TestTimeoutVariants(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e)
	s := sim.NewSignal(e)
	var spinOK, blockOK bool
	e.Spawn("p", func(p *sim.Proc) {
		spinOK = c.SpinWaitTimeout(p, s, 50)
		blockOK = c.BlockWaitTimeout(p, s, 50, 5)
	})
	e.MustRun()
	if spinOK || blockOK {
		t.Errorf("timeouts should report false: spin=%v block=%v", spinOK, blockOK)
	}
	// 50 spin + 5 wake cost; the blocked 50ns are idle.
	if c.Busy() != 55 {
		t.Errorf("busy = %v, want 55ns", c.Busy())
	}
}

func TestEmptyMeterUtilizationZero(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e)
	m := c.StartMeter()
	if u := m.Utilization(); u != 0 {
		t.Fatalf("utilization of empty interval = %v", u)
	}
}

func TestCharge(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e)
	c.Charge(42)
	if c.Busy() != 42 {
		t.Fatalf("busy = %v", c.Busy())
	}
}

// TestWaitAttribution pins the busy-time breakdown the metrics layer
// exports: spin waits land in SpinBusy, blocking-wait wake costs in
// WakeBusy, and plain compute in neither, with the wait counters tracking
// how many waits of each kind ran.
func TestWaitAttribution(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e)
	s := sim.NewSignal(e)
	e.Spawn("p", func(p *sim.Proc) {
		c.Use(p, 100)       // compute: busy, neither spin nor wake
		c.SpinWait(p, s)    // 200ns of spinning
		c.BlockWait(p, s, 7) // idle, then 7ns wake cost
	})
	e.Spawn("sig", func(p *sim.Proc) {
		p.Sleep(300)
		s.Broadcast()
		p.Sleep(400)
		s.Broadcast()
	})
	e.MustRun()
	if c.SpinBusy() != 200 {
		t.Errorf("SpinBusy = %v, want 200ns", c.SpinBusy())
	}
	if c.WakeBusy() != 7 {
		t.Errorf("WakeBusy = %v, want 7ns", c.WakeBusy())
	}
	if c.Busy() != 100+200+7 {
		t.Errorf("Busy = %v, want 307ns", c.Busy())
	}
	if c.SpinWaits() != 1 || c.BlockWaits() != 1 {
		t.Errorf("waits = %d spin, %d block, want 1 and 1", c.SpinWaits(), c.BlockWaits())
	}
}

// TestInterleavedWaitersAttribution drives two waiters of different kinds
// on one CPU: the spinner's whole wait is busy, the blocker contributes
// only its wake cost, and a meter over the interval sees exactly that sum.
// (Blocked time is idle even while another process is spinning — busy time
// is a single accumulator per CPU, as getrusage would report it.)
func TestInterleavedWaitersAttribution(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e)
	spinSig := sim.NewSignal(e)
	blockSig := sim.NewSignal(e)
	m := c.StartMeter()
	e.Spawn("spinner", func(p *sim.Proc) {
		c.SpinWait(p, spinSig) // fires at t=600
	})
	e.Spawn("blocker", func(p *sim.Proc) {
		c.BlockWait(p, blockSig, 25) // fires at t=200
	})
	e.Spawn("sig", func(p *sim.Proc) {
		p.Sleep(200)
		blockSig.Broadcast()
		p.Sleep(400)
		spinSig.Broadcast()
	})
	e.MustRun()
	if c.SpinBusy() != 600 {
		t.Errorf("SpinBusy = %v, want 600ns", c.SpinBusy())
	}
	if c.WakeBusy() != 25 {
		t.Errorf("WakeBusy = %v, want 25ns", c.WakeBusy())
	}
	if got := m.BusySince(); got != 625 {
		t.Errorf("BusySince = %v, want 625ns", got)
	}
	// The blocker's wake cost (t=200..225) overlaps the spinner's wait, so
	// the run ends with the spinner at t=600.
	if got := m.Elapsed(); got != 600 {
		t.Errorf("Elapsed = %v, want 600ns", got)
	}
}

// TestBlockWaitTimeoutChargesWakeOnce: the wake cost is charged exactly
// once per wait, on success and on timeout alike.
func TestBlockWaitTimeoutChargesWakeOnce(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e)
	s := sim.NewSignal(e)
	e.Spawn("p", func(p *sim.Proc) {
		if c.BlockWaitTimeout(p, s, 50, 5) {
			t.Error("wait should have timed out")
		}
		if c.BlockWaitTimeout(p, s, 1000, 5) {
			t.Error("nobody signals; second wait should time out too")
		}
	})
	e.MustRun()
	if c.WakeBusy() != 10 || c.BlockWaits() != 2 {
		t.Fatalf("wake = %v waits = %d, want 10ns and 2", c.WakeBusy(), c.BlockWaits())
	}
	if c.Busy() != 10 {
		t.Fatalf("busy = %v, want 10ns (blocked time is idle)", c.Busy())
	}
}
