package cpu

import (
	"math"
	"testing"

	"vibe/internal/sim"
)

func TestUseAccountsBusyAndAdvancesTime(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e)
	e.Spawn("p", func(p *sim.Proc) {
		c.Use(p, 100)
		if p.Now() != 100 {
			t.Errorf("time = %v, want 100ns", p.Now())
		}
		c.Use(p, 0) // no-op
	})
	e.MustRun()
	if c.Busy() != 100 {
		t.Fatalf("busy = %v, want 100ns", c.Busy())
	}
}

func TestSpinWaitIsBusy(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e)
	s := sim.NewSignal(e)
	e.Spawn("poller", func(p *sim.Proc) {
		c.SpinWait(p, s)
	})
	e.Spawn("sig", func(p *sim.Proc) {
		p.Sleep(500)
		s.Broadcast()
	})
	e.MustRun()
	if c.Busy() != 500 {
		t.Fatalf("busy = %v, want 500ns", c.Busy())
	}
}

func TestBlockWaitIsIdlePlusWakeCost(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e)
	s := sim.NewSignal(e)
	e.Spawn("blocker", func(p *sim.Proc) {
		c.BlockWait(p, s, 30)
	})
	e.Spawn("sig", func(p *sim.Proc) {
		p.Sleep(500)
		s.Broadcast()
	})
	e.MustRun()
	if c.Busy() != 30 {
		t.Fatalf("busy = %v, want 30ns (wake cost only)", c.Busy())
	}
}

func TestMeterUtilization(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e)
	s := sim.NewSignal(e)
	var spinU, blockU float64
	e.Spawn("p", func(p *sim.Proc) {
		m := c.StartMeter()
		c.SpinWait(p, s) // whole interval busy
		spinU = m.Utilization()

		m2 := c.StartMeter()
		c.BlockWait(p, s, 10) // mostly idle
		blockU = m2.Utilization()
		if m2.BusySince() != 10 {
			t.Errorf("BusySince = %v", m2.BusySince())
		}
		if m2.Elapsed() != 1010 {
			t.Errorf("Elapsed = %v", m2.Elapsed())
		}
	})
	e.Spawn("sig", func(p *sim.Proc) {
		p.Sleep(1000)
		s.Broadcast()
		p.Sleep(1000)
		s.Broadcast()
	})
	e.MustRun()
	if spinU != 1.0 {
		t.Errorf("spin utilization = %v, want 1.0", spinU)
	}
	want := 10.0 / 1010.0
	if math.Abs(blockU-want) > 1e-9 {
		t.Errorf("block utilization = %v, want %v", blockU, want)
	}
}

func TestTimeoutVariants(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e)
	s := sim.NewSignal(e)
	var spinOK, blockOK bool
	e.Spawn("p", func(p *sim.Proc) {
		spinOK = c.SpinWaitTimeout(p, s, 50)
		blockOK = c.BlockWaitTimeout(p, s, 50, 5)
	})
	e.MustRun()
	if spinOK || blockOK {
		t.Errorf("timeouts should report false: spin=%v block=%v", spinOK, blockOK)
	}
	// 50 spin + 5 wake cost; the blocked 50ns are idle.
	if c.Busy() != 55 {
		t.Errorf("busy = %v, want 55ns", c.Busy())
	}
}

func TestEmptyMeterUtilizationZero(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e)
	m := c.StartMeter()
	if u := m.Utilization(); u != 0 {
		t.Fatalf("utilization of empty interval = %v", u)
	}
}

func TestCharge(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e)
	c.Charge(42)
	if c.Busy() != 42 {
		t.Fatalf("busy = %v", c.Busy())
	}
}
