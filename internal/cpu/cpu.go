// Package cpu provides busy/idle accounting for simulated host processors.
// It is the simulation's substitute for getrusage(2), which the paper uses
// to measure CPU utilization: time a process spends computing, copying, or
// spinning in a polling loop is busy; time parked in a blocking wait is
// idle.
package cpu

import "vibe/internal/sim"

// CPU accumulates the busy time of one simulated processor, attributed by
// how it was spent: spin is the busy time burned in polling loops, wake
// the busy time charged for interrupt/reschedule paths after blocking
// waits; the remainder is compute/copy work. Idle time is derived: it is
// elapsed virtual time not accounted busy.
type CPU struct {
	eng  *sim.Engine
	busy sim.Duration
	spin sim.Duration
	wake sim.Duration

	spinWaits  uint64
	blockWaits uint64
}

// New returns a CPU bound to e with zero accumulated busy time.
func New(e *sim.Engine) *CPU { return &CPU{eng: e} }

// Use models p computing on the CPU for d: virtual time advances and the
// whole span is accounted busy.
func (c *CPU) Use(p *sim.Proc, d sim.Duration) {
	if d == 0 {
		return
	}
	c.busy += d
	p.Sleep(d)
}

// Charge accounts d as busy without advancing time. It models work that is
// already covered by an enclosing Sleep (rare; prefer Use).
func (c *CPU) Charge(d sim.Duration) { c.busy += d }

// SpinWait parks p until sig fires, accounting the entire wait as busy:
// the process is burning cycles in a polling loop.
func (c *CPU) SpinWait(p *sim.Proc, sig *sim.Signal) {
	start := p.Now()
	sig.Wait(p)
	d := p.Now().Sub(start)
	c.busy += d
	c.spin += d
	c.spinWaits++
}

// SpinWaitTimeout is SpinWait with a deadline; it reports false on timeout.
// Either way the elapsed wait is busy time.
func (c *CPU) SpinWaitTimeout(p *sim.Proc, sig *sim.Signal, d sim.Duration) bool {
	start := p.Now()
	ok := sig.WaitTimeout(p, d)
	w := p.Now().Sub(start)
	c.busy += w
	c.spin += w
	c.spinWaits++
	return ok
}

// BlockWait parks p until sig fires with the CPU idle, then accounts
// wakeCost busy time for the interrupt/reschedule path.
func (c *CPU) BlockWait(p *sim.Proc, sig *sim.Signal, wakeCost sim.Duration) {
	sig.Wait(p)
	c.blockWaits++
	c.wake += wakeCost
	c.Use(p, wakeCost)
}

// BlockWaitTimeout is BlockWait with a deadline; it reports false on
// timeout. The wake cost is charged in both cases (the kernel runs either
// way).
func (c *CPU) BlockWaitTimeout(p *sim.Proc, sig *sim.Signal, d sim.Duration, wakeCost sim.Duration) bool {
	ok := sig.WaitTimeout(p, d)
	c.blockWaits++
	c.wake += wakeCost
	c.Use(p, wakeCost)
	return ok
}

// Busy reports total accumulated busy time.
func (c *CPU) Busy() sim.Duration { return c.busy }

// SpinBusy reports the busy time spent spinning in polling waits.
func (c *CPU) SpinBusy() sim.Duration { return c.spin }

// WakeBusy reports the busy time charged for blocking-wait wakeups.
func (c *CPU) WakeBusy() sim.Duration { return c.wake }

// SpinWaits and BlockWaits report how many waits of each kind ran.
func (c *CPU) SpinWaits() uint64  { return c.spinWaits }
func (c *CPU) BlockWaits() uint64 { return c.blockWaits }

// Meter measures CPU utilization over an interval, like bracketing a test
// with two getrusage calls.
type Meter struct {
	cpu       *CPU
	busyStart sim.Duration
	timeStart sim.Time
}

// StartMeter begins measuring utilization of c.
func (c *CPU) StartMeter() *Meter {
	return &Meter{cpu: c, busyStart: c.busy, timeStart: c.eng.Now()}
}

// Utilization reports the fraction of wall (virtual) time the CPU was busy
// since the meter started, in [0,1]. An empty interval reports 0.
func (m *Meter) Utilization() float64 {
	elapsed := m.cpu.eng.Now().Sub(m.timeStart)
	if elapsed <= 0 {
		return 0
	}
	u := float64(m.cpu.busy-m.busyStart) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}

// BusySince reports busy time accumulated since the meter started.
func (m *Meter) BusySince() sim.Duration { return m.cpu.busy - m.busyStart }

// Elapsed reports virtual time since the meter started.
func (m *Meter) Elapsed() sim.Duration { return m.cpu.eng.Now().Sub(m.timeStart) }
