package logp

import (
	"testing"

	"vibe/internal/provider"
)

func TestExtractPlausibleParams(t *testing.T) {
	for _, m := range provider.All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			p, err := Extract(m)
			if err != nil {
				t.Fatal(err)
			}
			if p.L <= 0 || p.Os <= 0 || p.Or <= 0 || p.G <= 0 {
				t.Fatalf("non-positive parameters: %+v", p)
			}
			// Sanity: L under 40us on these SANs; overheads a few us; g
			// in the small-message range.
			if p.L > 40 {
				t.Errorf("L = %.1fus implausible", p.L)
			}
			if p.Os > 15 || p.Or > 15 {
				t.Errorf("overheads implausible: %+v", p)
			}
			if p.String() == "" {
				t.Error("String empty")
			}
		})
	}
}

func TestSendOverheadOrdering(t *testing.T) {
	// M-VIA's syscall doorbell makes its send overhead the largest;
	// cLAN's hardware doorbell the smallest.
	var os_ = map[string]float64{}
	for _, m := range provider.All() {
		p, err := Extract(m)
		if err != nil {
			t.Fatal(err)
		}
		os_[m.Name] = p.Os
	}
	if !(os_["mvia"] > os_["bvia"] && os_["bvia"] > os_["clan"]) {
		t.Errorf("send overhead ordering mvia > bvia > clan violated: %v", os_)
	}
}

// The paper's motivating point: LogP parameters cannot distinguish the
// behaviours VIBe exposes. BVIA's small-message latency moves by large
// factors under multi-VI and buffer-reuse changes that leave (L, o, g)
// untouched; cLAN's does not.
func TestLogPInsufficiencyDemonstration(t *testing.T) {
	bvia, err := Explain(provider.BVIA())
	if err != nil {
		t.Fatal(err)
	}
	if bvia.LatencyAt16VIs < bvia.BaseLatencyUs*1.5 {
		t.Errorf("bvia 16-VI latency %.1f should dwarf base %.1f",
			bvia.LatencyAt16VIs, bvia.BaseLatencyUs)
	}
	if bvia.LatencyAt0Reuse < bvia.BaseLatencyUs*1.3 {
		t.Errorf("bvia 0%%-reuse latency %.1f should dwarf base %.1f",
			bvia.LatencyAt0Reuse, bvia.BaseLatencyUs)
	}
	clan, err := Explain(provider.CLAN())
	if err != nil {
		t.Fatal(err)
	}
	if clan.LatencyAt16VIs > clan.BaseLatencyUs*1.05 ||
		clan.LatencyAt0Reuse > clan.BaseLatencyUs*1.05 {
		t.Errorf("clan should be insensitive: %+v", clan)
	}
}

func TestExtractDeterminism(t *testing.T) {
	a, err := Extract(provider.BVIA())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Extract(provider.BVIA())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}
