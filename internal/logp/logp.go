// Package logp extracts LogP parameters (Culler et al., the model the
// paper's introduction argues is insufficient for comparing VIA
// implementations) from VIBe-style measurements, so the suite can
// demonstrate what LogP captures and what it misses.
//
// Parameters, per the model:
//
//	L — network latency: one-way time not attributable to the processors
//	o — processor overhead per message (send overhead os + receive
//	    overhead or), time the host CPU is busy injecting/extracting
//	g — gap: minimum interval between consecutive small messages
//	    (reciprocal of small-message rate)
//
// The extraction runs its own micro-measurements against a provider. Its
// point — made by ExplainInsufficiency and the LogP tests — is that two
// providers with near-identical (L, o, g) can diverge wildly once buffer
// reuse, completion queues, or the number of VIs change, which is exactly
// the paper's motivation for VIBe.
package logp

import (
	"fmt"

	"vibe/internal/core"
	"vibe/internal/provider"
	"vibe/internal/sim"
	"vibe/internal/via"
)

// Params are extracted LogP parameters in microseconds.
type Params struct {
	L  float64 // one-way wire+NIC latency
	Os float64 // send overhead (host CPU)
	Or float64 // receive overhead (host CPU)
	G  float64 // gap between small messages
}

// MessageSize is the "small message" size LogP is defined over.
const MessageSize = 4

// Extract measures LogP parameters for a provider.
func Extract(m *provider.Model) (Params, error) {
	var p Params

	// os and or: host CPU busy time around posting a send and around
	// retrieving a completed receive, measured directly in a round trip.
	osUs, orUs, rttUs, err := overheads(m)
	if err != nil {
		return p, err
	}
	p.Os, p.Or = osUs, orUs

	// L = RTT/2 - os - or (the processor-free part of a one-way trip).
	p.L = rttUs/2 - osUs - orUs
	if p.L < 0 {
		p.L = 0
	}

	// g: steady-state interval between back-to-back small messages.
	cfg := core.DefaultConfig(m)
	bw, err := core.Bandwidth(cfg, MessageSize, core.XferOpts{})
	if err != nil {
		return p, err
	}
	if bw.MBps > 0 {
		p.G = float64(MessageSize) / (bw.MBps * 1e6) * 1e6
	}
	return p, nil
}

// overheads measures send overhead, receive overhead, and the round-trip
// time of a small ping-pong.
func overheads(m *provider.Model) (osUs, orUs, rttUs float64, err error) {
	sys := via.NewSystem(m, 2, 1)
	const iters = 50
	var runErr error
	fail := func(e error) {
		if runErr == nil {
			runErr = e
		}
		sys.Eng.Stop()
	}
	tmo := 10 * sim.Second

	sys.Go(0, "logp-client", func(ctx *via.Ctx) {
		nic := ctx.OpenNic()
		vi, e := nic.CreateVi(ctx, via.ViAttributes{}, nil, nil)
		if e != nil {
			fail(e)
			return
		}
		if e := vi.ConnectRequest(ctx, 1, "logp", tmo); e != nil {
			fail(e)
			return
		}
		buf := ctx.Malloc(MessageSize)
		h, e := nic.RegisterMem(ctx, buf)
		if e != nil {
			fail(e)
			return
		}
		var osSum sim.Duration
		var t0 sim.Time
		for i := 0; i < iters; i++ {
			if i == 5 {
				t0 = ctx.Now()
			}
			if e := vi.PostRecv(ctx, via.SimpleRecv(buf, h, MessageSize)); e != nil {
				fail(e)
				return
			}
			b0 := ctx.Host.CPU.Busy()
			if e := vi.PostSend(ctx, via.SimpleSend(buf, h, MessageSize)); e != nil {
				fail(e)
				return
			}
			if i >= 5 {
				osSum += ctx.Host.CPU.Busy() - b0
			}
			if _, e := vi.SendWaitPoll(ctx); e != nil {
				fail(e)
				return
			}
			if _, e := vi.RecvWaitPoll(ctx); e != nil {
				fail(e)
				return
			}
		}
		n := float64(iters - 5)
		osUs = (sim.Duration(float64(osSum) / n)).Micros()
		// The receive-side extraction cost is the provider's completion
		// check; spinning time is L, not overhead.
		orUs = m.CheckCost.Micros() + m.PostRecvCost.Micros()
		rttUs = ctx.Now().Sub(t0).Micros() / n
	})
	sys.Go(1, "logp-server", func(ctx *via.Ctx) {
		nic := ctx.OpenNic()
		vi, e := nic.CreateVi(ctx, via.ViAttributes{}, nil, nil)
		if e != nil {
			fail(e)
			return
		}
		buf := ctx.Malloc(MessageSize)
		h, e := nic.RegisterMem(ctx, buf)
		if e != nil {
			fail(e)
			return
		}
		if e := vi.PostRecv(ctx, via.SimpleRecv(buf, h, MessageSize)); e != nil {
			fail(e)
			return
		}
		req, e := nic.ConnectWait(ctx, "logp", tmo)
		if e != nil {
			fail(e)
			return
		}
		if e := req.Accept(ctx, vi); e != nil {
			fail(e)
			return
		}
		for i := 0; i < iters; i++ {
			if _, e := vi.RecvWaitPoll(ctx); e != nil {
				fail(e)
				return
			}
			if i+1 < iters {
				if e := vi.PostRecv(ctx, via.SimpleRecv(buf, h, MessageSize)); e != nil {
					fail(e)
					return
				}
			}
			if e := vi.PostSend(ctx, via.SimpleSend(buf, h, MessageSize)); e != nil {
				fail(e)
				return
			}
			if _, e := vi.SendWaitPoll(ctx); e != nil {
				fail(e)
				return
			}
		}
	})
	if e := sys.Run(); e != nil {
		return 0, 0, 0, e
	}
	return osUs, orUs, rttUs, runErr
}

// Insufficiency quantifies what LogP misses: for a provider, the relative
// change in 4-byte latency when a VIA component changes even though
// (L, o, g) are measured on the base configuration and do not change.
type Insufficiency struct {
	Params        Params
	BaseLatencyUs float64
	// LatencyAt16VIs and LatencyAt0Reuse are the same "small message
	// latency" LogP would predict as constant.
	LatencyAt16VIs  float64
	LatencyAt0Reuse float64
}

// Explain runs the demonstration for one provider.
func Explain(m *provider.Model) (Insufficiency, error) {
	var ins Insufficiency
	p, err := Extract(m)
	if err != nil {
		return ins, err
	}
	ins.Params = p
	cfg := core.DefaultConfig(m)
	base, err := core.Latency(cfg, MessageSize, core.XferOpts{})
	if err != nil {
		return ins, err
	}
	ins.BaseLatencyUs = base.LatencyUs
	multi, err := core.Latency(cfg, MessageSize, core.XferOpts{ActiveVIs: 16})
	if err != nil {
		return ins, err
	}
	ins.LatencyAt16VIs = multi.LatencyUs
	reuse, err := core.Latency(cfg, MessageSize, core.XferOpts{VaryBuffers: true, ReusePct: 0})
	if err != nil {
		return ins, err
	}
	ins.LatencyAt0Reuse = reuse.LatencyUs
	return ins, nil
}

func (p Params) String() string {
	return fmt.Sprintf("L=%.2fus os=%.2fus or=%.2fus g=%.2fus", p.L, p.Os, p.Or, p.G)
}
