// Package results implements the VIBe results repository the paper's
// conclusion announces ("We plan to create a repository of VIBe results
// for different VIA platforms and distribute them"): a stable JSON format
// for experiment outputs, with save/load and a comparator that diffs two
// result sets the way a developer would compare a new VIA implementation
// (or a new version) against a published baseline.
package results

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"vibe/internal/core"
)

// FormatVersion identifies the on-disk schema.
const FormatVersion = 1

// Set is a complete result set: one entry per experiment run.
type Set struct {
	Version     int          `json:"version"`
	Suite       string       `json:"suite"`
	Label       string       `json:"label,omitempty"`
	Scenario    *Provenance  `json:"scenario,omitempty"`
	Experiments []Experiment `json:"experiments"`

	// Metrics is the aggregated component-counter snapshot of the runs
	// that produced the set (vibe-report -metrics), keyed hierarchically
	// (cpu0.busy_ns, nic0.tlb.misses, fabric.bytes, ...). Informational
	// provenance: Compare ignores it.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Experiment is one experiment's serialized output.
type Experiment struct {
	ID     string   `json:"id"`
	Title  string   `json:"title"`
	Tables []Table  `json:"tables,omitempty"`
	Groups []Group  `json:"groups,omitempty"`
	Notes  []string `json:"notes,omitempty"`
}

// Table mirrors a text table.
type Table struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// Group mirrors a series group.
type Group struct {
	Title  string   `json:"title"`
	Series []Series `json:"series"`
}

// Series is one named curve.
type Series struct {
	Name   string    `json:"name"`
	XLabel string    `json:"xlabel"`
	YLabel string    `json:"ylabel"`
	X      []float64 `json:"x"`
	Y      []float64 `json:"y"`
}

// FromReport converts a suite report into its serialized form.
func FromReport(id string, rep *core.Report) Experiment {
	e := Experiment{ID: id, Title: rep.Title, Notes: rep.Notes}
	for _, t := range rep.Tables {
		e.Tables = append(e.Tables, Table{Title: t.Title, Headers: t.Headers, Rows: t.Rows})
	}
	for _, g := range rep.Groups {
		sg := Group{Title: g.Title}
		for _, s := range g.Series {
			xs, ys := s.XY()
			sg.Series = append(sg.Series, Series{
				Name: s.Name, XLabel: s.XLabel, YLabel: s.YLabel, X: xs, Y: ys,
			})
		}
		e.Groups = append(e.Groups, sg)
	}
	return e
}

// Encode renders the set into its canonical on-disk byte form, stamping
// the format version and default suite name. Every producer — Save here,
// the vibed daemon's downloadable artifacts — goes through this one
// function, so a set served over HTTP is byte-identical to the same set
// written by the CLI.
func Encode(s *Set) ([]byte, error) {
	e := *s // stamp a copy: encoding a set must not mutate shared state
	e.Version = FormatVersion
	if e.Suite == "" {
		e.Suite = "vibe"
	}
	data, err := json.MarshalIndent(&e, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Save writes the set as indented JSON.
func Save(path string, s *Set) error {
	data, err := Encode(s)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a result set, rejecting unknown schema versions.
func Load(path string) (*Set, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Set
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("results: %s: %w", path, err)
	}
	if s.Version != FormatVersion {
		return nil, fmt.Errorf("results: %s: unsupported format version %d (want %d)",
			path, s.Version, FormatVersion)
	}
	return &s, nil
}

// Diff is one compared data point whose values disagree beyond the
// threshold.
type Diff struct {
	Experiment string
	Where      string // "table Title[row][col]" or "group/series@x"
	Base       float64
	New        float64
	RelErr     float64
}

// Compare diffs two result sets experiment by experiment, reporting every
// numeric point whose relative difference exceeds tol and every
// experiment/series present in one set but not the other (reported with
// RelErr = +Inf).
func Compare(base, cur *Set, tol float64) []Diff {
	var diffs []Diff
	baseBy := map[string]Experiment{}
	for _, e := range base.Experiments {
		baseBy[e.ID] = e
	}
	curBy := map[string]Experiment{}
	for _, e := range cur.Experiments {
		curBy[e.ID] = e
	}
	var ids []string
	for id := range baseBy {
		ids = append(ids, id)
	}
	for id := range curBy {
		if _, ok := baseBy[id]; !ok {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)

	for _, id := range ids {
		b, inBase := baseBy[id]
		c, inCur := curBy[id]
		if !inBase || !inCur {
			diffs = append(diffs, Diff{Experiment: id, Where: "(missing)", RelErr: math.Inf(1)})
			continue
		}
		diffs = append(diffs, compareTables(id, b.Tables, c.Tables, tol)...)
		diffs = append(diffs, compareGroups(id, b.Groups, c.Groups, tol)...)
	}
	return diffs
}

func compareTables(id string, base, cur []Table, tol float64) []Diff {
	var diffs []Diff
	curBy := map[string]Table{}
	for _, t := range cur {
		curBy[t.Title] = t
	}
	for _, bt := range base {
		ct, ok := curBy[bt.Title]
		if !ok {
			diffs = append(diffs, Diff{Experiment: id, Where: "table " + bt.Title + " (missing)", RelErr: math.Inf(1)})
			continue
		}
		for r := 0; r < len(bt.Rows) && r < len(ct.Rows); r++ {
			for col := 0; col < len(bt.Rows[r]) && col < len(ct.Rows[r]); col++ {
				bv, bNum := parseNum(bt.Rows[r][col])
				cv, cNum := parseNum(ct.Rows[r][col])
				if !bNum || !cNum {
					continue
				}
				if re := relErr(bv, cv); re > tol {
					diffs = append(diffs, Diff{
						Experiment: id,
						Where:      fmt.Sprintf("table %s[%d][%d]", bt.Title, r, col),
						Base:       bv, New: cv, RelErr: re,
					})
				}
			}
		}
	}
	return diffs
}

func compareGroups(id string, base, cur []Group, tol float64) []Diff {
	var diffs []Diff
	curBy := map[string]Group{}
	for _, g := range cur {
		curBy[g.Title] = g
	}
	for _, bg := range base {
		cg, ok := curBy[bg.Title]
		if !ok {
			diffs = append(diffs, Diff{Experiment: id, Where: "group " + bg.Title + " (missing)", RelErr: math.Inf(1)})
			continue
		}
		curSeries := map[string]Series{}
		for _, s := range cg.Series {
			curSeries[s.Name] = s
		}
		for _, bs := range bg.Series {
			cs, ok := curSeries[bs.Name]
			if !ok {
				diffs = append(diffs, Diff{Experiment: id,
					Where: "series " + bg.Title + "/" + bs.Name + " (missing)", RelErr: math.Inf(1)})
				continue
			}
			curAt := map[float64]float64{}
			for i := range cs.X {
				curAt[cs.X[i]] = cs.Y[i]
			}
			for i := range bs.X {
				cv, ok := curAt[bs.X[i]]
				if !ok {
					continue
				}
				if re := relErr(bs.Y[i], cv); re > tol {
					diffs = append(diffs, Diff{
						Experiment: id,
						Where:      fmt.Sprintf("%s/%s@%g", bg.Title, bs.Name, bs.X[i]),
						Base:       bs.Y[i], New: cv, RelErr: re,
					})
				}
			}
		}
	}
	return diffs
}

func relErr(a, b float64) float64 {
	if a == b || (math.IsNaN(a) && math.IsNaN(b)) {
		return 0
	}
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.Inf(1)
	}
	den := math.Abs(a)
	if den == 0 {
		return math.Inf(1)
	}
	return math.Abs(a-b) / den
}

func parseNum(s string) (float64, bool) {
	var v float64
	if _, err := fmt.Sscanf(s, "%g", &v); err != nil {
		return 0, false
	}
	return v, true
}

// Render writes a human-readable diff summary.
func Render(w io.Writer, diffs []Diff, tol float64) {
	if len(diffs) == 0 {
		fmt.Fprintf(w, "results: no differences above %.1f%%\n", tol*100)
		return
	}
	fmt.Fprintf(w, "results: %d difference(s) above %.1f%%:\n", len(diffs), tol*100)
	for _, d := range diffs {
		if math.IsInf(d.RelErr, 1) && d.Base == 0 && d.New == 0 {
			fmt.Fprintf(w, "  %-8s %s\n", d.Experiment, d.Where)
			continue
		}
		// A zero or NaN base has no meaningful percent change; print the
		// raw values instead of dividing by it.
		if d.Base == 0 || math.IsNaN(d.Base) || math.IsNaN(d.New) {
			fmt.Fprintf(w, "  %-8s %-48s %12.4g -> %-12.4g (n/a)\n",
				d.Experiment, d.Where, d.Base, d.New)
			continue
		}
		fmt.Fprintf(w, "  %-8s %-48s %12.4g -> %-12.4g (%+.1f%%)\n",
			d.Experiment, d.Where, d.Base, d.New, (d.New-d.Base)/d.Base*100)
	}
}
