package results

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vibe/internal/bench"
	"vibe/internal/core"
	"vibe/internal/table"
)

func sampleSet(latency float64) *Set {
	t := table.New("costs", "op", "us")
	t.AddRow("create", 93.0)
	g := bench.NewGroup("latency")
	s := bench.NewSeries("clan", "size", "us")
	s.Add(4, latency)
	s.Add(1024, latency*4)
	g.Add(s)
	e := FromReport("T1", &core.Report{
		Title:  "demo",
		Tables: []*table.Table{t},
		Groups: []*bench.Group{g},
		Notes:  []string{"n"},
	})
	return &Set{Label: "sample", Experiments: []Experiment{e}}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.json")
	s := sampleSet(8.9)
	if err := Save(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != FormatVersion || got.Suite != "vibe" || got.Label != "sample" {
		t.Fatalf("header = %+v", got)
	}
	if len(got.Experiments) != 1 || got.Experiments[0].ID != "T1" {
		t.Fatalf("experiments = %+v", got.Experiments)
	}
	e := got.Experiments[0]
	if len(e.Tables) != 1 || e.Tables[0].Rows[0][1] != "93" {
		t.Fatalf("table = %+v", e.Tables)
	}
	if len(e.Groups) != 1 || e.Groups[0].Series[0].Y[0] != 8.9 {
		t.Fatalf("group = %+v", e.Groups)
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(path, `{"version": 99, "suite": "vibe"}`); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("wrong version accepted")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCompareIdenticalSetsClean(t *testing.T) {
	a, b := sampleSet(8.9), sampleSet(8.9)
	if diffs := Compare(a, b, 0.05); len(diffs) != 0 {
		t.Fatalf("identical sets diff: %+v", diffs)
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	base, cur := sampleSet(8.9), sampleSet(12.0) // +35%
	diffs := Compare(base, cur, 0.05)
	if len(diffs) != 2 { // both series points moved
		t.Fatalf("diffs = %+v", diffs)
	}
	if diffs[0].Experiment != "T1" || !strings.Contains(diffs[0].Where, "latency/clan@4") {
		t.Fatalf("diff[0] = %+v", diffs[0])
	}
	if math.Abs(diffs[0].RelErr-(12.0-8.9)/8.9) > 1e-9 {
		t.Fatalf("relerr = %v", diffs[0].RelErr)
	}
	// Within tolerance: no diffs.
	if d := Compare(base, cur, 0.50); len(d) != 0 {
		t.Fatalf("tolerant compare diffed: %+v", d)
	}
}

func TestCompareMissingPieces(t *testing.T) {
	base, cur := sampleSet(8.9), sampleSet(8.9)
	cur.Experiments[0].ID = "T2"
	diffs := Compare(base, cur, 0.05)
	// T1 missing from cur, T2 missing from base.
	if len(diffs) != 2 || !math.IsInf(diffs[0].RelErr, 1) {
		t.Fatalf("diffs = %+v", diffs)
	}
	// Missing series within an experiment.
	base2, cur2 := sampleSet(8.9), sampleSet(8.9)
	cur2.Experiments[0].Groups[0].Series[0].Name = "renamed"
	d2 := Compare(base2, cur2, 0.05)
	found := false
	for _, d := range d2 {
		if strings.Contains(d.Where, "clan (missing)") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing series not reported: %+v", d2)
	}
}

func TestRender(t *testing.T) {
	var b strings.Builder
	Render(&b, nil, 0.05)
	if !strings.Contains(b.String(), "no differences") {
		t.Fatalf("clean render = %q", b.String())
	}
	b.Reset()
	Render(&b, []Diff{{Experiment: "F3", Where: "x@4", Base: 10, New: 12, RelErr: 0.2}}, 0.05)
	if !strings.Contains(b.String(), "F3") || !strings.Contains(b.String(), "+20.0%") {
		t.Fatalf("render = %q", b.String())
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
