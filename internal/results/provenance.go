package results

import (
	"fmt"
	"sort"

	"vibe/internal/core"
)

// Provenance records the scenario a result set was produced under: the
// base provider model (empty when the set spans the whole registry's
// built-in models), every parameter override, and the run-config
// overrides. A set carrying provenance can always be traced back to the
// exact design point that produced it, and the comparator can refuse
// apples-to-oranges diffs.
type Provenance struct {
	Name  string            `json:"name,omitempty"`
	Base  string            `json:"base,omitempty"`
	Set   map[string]string `json:"set,omitempty"`
	Run   core.RunOverrides `json:"run,omitzero"`
	Quick bool              `json:"quick,omitempty"`
}

// ProvenanceOf captures a scenario's full provenance. A nil or unmodified
// scenario (no base, overrides, or run changes — quick alone does not
// count) yields nil, so result sets produced by the plain suite stay
// byte-identical to the legacy format.
func ProvenanceOf(sc *core.Scenario) *Provenance {
	if sc == nil {
		return nil
	}
	p := &Provenance{
		Name:  sc.Spec.Name,
		Base:  sc.Spec.Base,
		Run:   sc.Spec.Run,
		Quick: sc.Quick,
	}
	if len(sc.Spec.Set) > 0 {
		p.Set = make(map[string]string, len(sc.Spec.Set))
		for k, v := range sc.Spec.Set {
			p.Set[k] = v
		}
	}
	if p.Name == "" && p.Base == "" && p.Set == nil && p.Run.IsZero() {
		return nil
	}
	return p
}

// Equal reports whether two provenance records describe the same design
// point. Names are labels, not parameters, so they do not participate.
func (p *Provenance) Equal(q *Provenance) bool {
	if p == nil || q == nil {
		return p == nil && q == nil
	}
	if p.Base != q.Base || p.Quick != q.Quick || p.Run != q.Run || len(p.Set) != len(q.Set) {
		return false
	}
	for k, v := range p.Set {
		if qv, ok := q.Set[k]; !ok || qv != v {
			return false
		}
	}
	return true
}

// describe renders a provenance record for error messages.
func (p *Provenance) describe() string {
	if p == nil {
		return "default (no overrides)"
	}
	s := "base=" + p.Base
	if p.Base == "" {
		s = "base=(all)"
	}
	if len(p.Set) > 0 {
		keys := make([]string, 0, len(p.Set))
		for k := range p.Set {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s += fmt.Sprintf(" %s=%s", k, p.Set[k])
		}
	}
	if p.Quick {
		s += " quick"
	}
	if !p.Run.IsZero() {
		s += " +run-overrides"
	}
	return s
}

// CheckProvenance verifies two sets were produced under the same design
// point. Missing provenance means the default scenario (sets written
// before the field existed never had overrides), so two provenance-free
// sets are compatible — legacy baselines keep working — while a
// scenario'd set never silently diffs against a default one.
func CheckProvenance(base, cur *Set) error {
	if base.Scenario.Equal(cur.Scenario) {
		return nil
	}
	return fmt.Errorf("results: provenance mismatch:\n  base: %s\n  new:  %s",
		base.Scenario.describe(), cur.Scenario.describe())
}

// CompareChecked diffs two sets after verifying their provenance matches.
// force skips the check, for deliberate cross-scenario comparisons (the
// whole point of an ablation is diffing across design points).
func CompareChecked(base, cur *Set, tol float64, force bool) ([]Diff, error) {
	if !force {
		if err := CheckProvenance(base, cur); err != nil {
			return nil, fmt.Errorf("%w\n  (pass -force to compare anyway)", err)
		}
	}
	return Compare(base, cur, tol), nil
}
