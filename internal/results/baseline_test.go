package results

import (
	"testing"

	"vibe/internal/core"
)

// TestQuickBaselineUnchanged is the repository's end-to-end regression
// guard: it regenerates every experiment in quick mode and compares the
// outputs against the committed baseline. The simulation is deterministic,
// so any difference is a real behaviour change.
//
// When a change is intentional (recalibration, new mechanism), regenerate
// the baseline with:
//
//	go run ./cmd/vibe-report -quick -label baseline-quick \
//	    -json internal/results/testdata/baseline-quick.json
func TestQuickBaselineUnchanged(t *testing.T) {
	base, err := Load("testdata/baseline-quick.json")
	if err != nil {
		t.Fatal(err)
	}
	cur := &Set{Label: "regenerated"}
	for _, e := range core.Experiments() {
		rep, err := e.Run(core.DefaultScenario(true))
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		cur.Experiments = append(cur.Experiments, FromReport(e.ID, rep))
	}
	diffs := Compare(base, cur, 1e-9)
	for _, d := range diffs {
		t.Errorf("%s %s: %.6g -> %.6g", d.Experiment, d.Where, d.Base, d.New)
	}
	if len(diffs) > 0 {
		t.Log("intentional change? regenerate the baseline (see test comment)")
	}
}
