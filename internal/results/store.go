package results

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sort"
	"sync"
)

// CacheKey derives the provenance hash identifying one submission's design
// point: the quick flag (ProvenanceOf treats quick-only scenarios as
// default, so it must be named here explicitly), the experiment list, and
// each scenario cell's provenance (nil meaning the unmodified default).
// The hash is over canonical JSON — encoding/json emits struct fields in
// declaration order and map keys sorted — so two submissions describing
// the same design point always hash identically, regardless of the order
// overrides were specified in.
func CacheKey(quick bool, experiments []string, scenarios ...*Provenance) string {
	exps := append([]string(nil), experiments...)
	sort.Strings(exps)
	data, err := json.Marshal(struct {
		Quick       bool          `json:"quick"`
		Experiments []string      `json:"experiments"`
		Scenarios   []*Provenance `json:"scenarios"`
	}{quick, exps, scenarios})
	if err != nil {
		// The inputs are plain strings, bools and string maps; Marshal
		// cannot fail on them.
		panic("results: CacheKey marshal: " + err.Error())
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Store is a concurrency-safe cache of encoded result sets keyed by
// provenance hash (CacheKey). It holds the canonical bytes (Encode), not
// live *Set values, so a cache hit replays exactly what the original run
// produced — byte-identical, with no aliasing into a caller's set.
type Store struct {
	mu sync.Mutex
	m  map[string][][]byte
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{m: make(map[string][][]byte)}
}

// Put encodes the sets (one per scenario cell, in cell order) and stores
// them under key, returning the encoded forms. A later Put under the same
// key overwrites — deterministic runs make the value identical anyway.
func (st *Store) Put(key string, sets ...*Set) ([][]byte, error) {
	encs := make([][]byte, len(sets))
	for i, s := range sets {
		data, err := Encode(s)
		if err != nil {
			return nil, err
		}
		encs[i] = data
	}
	st.mu.Lock()
	st.m[key] = encs
	st.mu.Unlock()
	return encs, nil
}

// Get returns the encoded result sets stored under key, or ok=false.
// The returned slices are shared — callers must not mutate them.
func (st *Store) Get(key string) ([][]byte, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	encs, ok := st.m[key]
	return encs, ok
}

// Len reports the number of cached keys.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.m)
}
