package results

import (
	"math"
	"strings"
	"testing"

	"vibe/internal/core"
	"vibe/internal/provider"
)

func scenario(t *testing.T, spec core.ScenarioSpec, quick bool) *core.Scenario {
	t.Helper()
	sc, err := core.NewScenario(spec, quick)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestProvenanceOf(t *testing.T) {
	if p := ProvenanceOf(nil); p != nil {
		t.Fatalf("ProvenanceOf(nil) = %+v", p)
	}
	// The plain suite (quick or full) carries no provenance, keeping its
	// serialized form identical to pre-provenance result sets.
	for _, quick := range []bool{false, true} {
		if p := ProvenanceOf(core.DefaultScenario(quick)); p != nil {
			t.Fatalf("default scenario (quick=%v) got provenance %+v", quick, p)
		}
	}
	sc := scenario(t, core.ScenarioSpec{
		Scenario: provider.Scenario{Base: "clan", Set: map[string]string{"DoorbellCost": "2us"}},
	}, true)
	p := ProvenanceOf(sc)
	if p == nil || p.Base != "clan" || p.Set["DoorbellCost"] != "2us" || !p.Quick {
		t.Fatalf("ProvenanceOf = %+v", p)
	}
	// The record owns its override map.
	p.Set["DoorbellCost"] = "mutated"
	if sc.Spec.Set["DoorbellCost"] != "2us" {
		t.Fatal("provenance shares the scenario's override map")
	}
}

func TestProvenanceEqual(t *testing.T) {
	a := &Provenance{Base: "clan", Set: map[string]string{"WireMTU": "9000"}, Quick: true}
	b := &Provenance{Base: "clan", Set: map[string]string{"WireMTU": "9000"}, Quick: true}
	if !a.Equal(b) {
		t.Fatal("identical provenance unequal")
	}
	// Names are labels, not parameters.
	b.Name = "other-label"
	if !a.Equal(b) {
		t.Fatal("name difference broke equality")
	}
	for _, q := range []*Provenance{
		{Base: "mvia", Set: map[string]string{"WireMTU": "9000"}, Quick: true},
		{Base: "clan", Set: map[string]string{"WireMTU": "1500"}, Quick: true},
		{Base: "clan", Set: map[string]string{"WireMTU": "9000"}},
		{Base: "clan", Set: map[string]string{"WireMTU": "9000", "TLBCapacity": "8"}, Quick: true},
		{Base: "clan", Set: map[string]string{"WireMTU": "9000"}, Quick: true, Run: core.RunOverrides{Iters: 5}},
		nil,
	} {
		if a.Equal(q) {
			t.Fatalf("%+v compared equal to %+v", a, q)
		}
	}
	var n1, n2 *Provenance
	if !n1.Equal(n2) {
		t.Fatal("nil provenance must equal nil (legacy sets)")
	}
}

func TestCompareChecked(t *testing.T) {
	mk := func(p *Provenance) *Set {
		return &Set{Scenario: p, Experiments: []Experiment{{ID: "T1"}}}
	}
	tuned := &Provenance{Base: "clan", Set: map[string]string{"DoorbellCost": "2us"}}

	// Legacy vs legacy: compatible.
	if _, err := CompareChecked(mk(nil), mk(nil), 0.02, false); err != nil {
		t.Fatalf("legacy sets refused: %v", err)
	}
	// Same scenario: compatible.
	if _, err := CompareChecked(mk(tuned), mk(tuned), 0.02, false); err != nil {
		t.Fatalf("matching provenance refused: %v", err)
	}
	// Scenario'd vs default: refused, with both design points named.
	_, err := CompareChecked(mk(tuned), mk(nil), 0.02, false)
	if err == nil {
		t.Fatal("provenance mismatch accepted")
	}
	if !strings.Contains(err.Error(), "DoorbellCost=2us") || !strings.Contains(err.Error(), "default") {
		t.Fatalf("mismatch error does not describe both sides: %v", err)
	}
	// force overrides the refusal.
	if _, err := CompareChecked(mk(tuned), mk(nil), 0.02, true); err != nil {
		t.Fatalf("-force still refused: %v", err)
	}
}

// TestRelErrGuards covers the divide-by-zero and NaN edges of the
// comparator: a zero or NaN baseline must not poison the diff.
func TestRelErrGuards(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		a, b, want float64
	}{
		{0, 0, 0},
		{1, 1, 0},
		{nan, nan, 0},            // both undefined: not a difference
		{0, 1, math.Inf(1)},      // zero base, nonzero new
		{nan, 1, math.Inf(1)},    // baseline went undefined
		{1, nan, math.Inf(1)},    // new value went undefined
		{2, 1, 0.5},
		{-2, -1, 0.5},
	}
	for _, c := range cases {
		got := relErr(c.a, c.b)
		if math.IsInf(c.want, 1) {
			if !math.IsInf(got, 1) {
				t.Errorf("relErr(%v, %v) = %v, want +Inf", c.a, c.b, got)
			}
			continue
		}
		if got != c.want {
			t.Errorf("relErr(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestCompareZeroAndNaNBaseline exercises the guards end to end: a table
// whose baseline cell is zero (or NaN) must produce a finite, renderable
// diff instead of NaN percentages.
func TestCompareZeroAndNaNBaseline(t *testing.T) {
	tbl := func(cells ...string) []Table {
		rows := make([][]string, len(cells))
		for i, c := range cells {
			rows[i] = []string{c}
		}
		return []Table{{Title: "t", Headers: []string{"v"}, Rows: rows}}
	}
	base := &Set{Experiments: []Experiment{{ID: "E", Tables: tbl("0", "NaN", "5")}}}
	cur := &Set{Experiments: []Experiment{{ID: "E", Tables: tbl("1", "2", "5")}}}
	diffs := Compare(base, cur, 0.02)
	if len(diffs) != 2 {
		t.Fatalf("got %d diffs, want 2 (zero-base and NaN-base): %+v", len(diffs), diffs)
	}
	for _, d := range diffs {
		if !math.IsInf(d.RelErr, 1) {
			t.Errorf("%s: RelErr = %v, want +Inf", d.Where, d.RelErr)
		}
	}
	var out strings.Builder
	Render(&out, diffs, 0.02)
	if s := out.String(); strings.Contains(s, "NaN%") || strings.Contains(s, "+Inf%") {
		t.Fatalf("Render produced undefined percentages:\n%s", s)
	}
	if !strings.Contains(out.String(), "n/a") {
		t.Fatalf("Render did not mark undefined percent changes:\n%s", out.String())
	}
}
