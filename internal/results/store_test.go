package results

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"testing"

	"vibe/internal/core"
)

// TestCacheKeyStable pins the key's properties: hex sha256, insensitive to
// experiment-list order, sensitive to quick, experiments, and every
// provenance dimension including nil-vs-default.
func TestCacheKeyStable(t *testing.T) {
	p := &Provenance{Base: "clan", Set: map[string]string{"TLBCapacity": "8"}}
	k := CacheKey(true, []string{"T1", "F1"}, p)
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(k) {
		t.Fatalf("key is not hex sha256: %q", k)
	}
	if k2 := CacheKey(true, []string{"F1", "T1"}, p); k2 != k {
		t.Error("experiment order changed the key")
	}
	if k2 := CacheKey(true, []string{"T1", "F1"}, &Provenance{Base: "clan", Set: map[string]string{"TLBCapacity": "8"}}); k2 != k {
		t.Error("an equal provenance built separately changed the key")
	}
	for name, other := range map[string]string{
		"quick":      CacheKey(false, []string{"T1", "F1"}, p),
		"exps":       CacheKey(true, []string{"T1"}, p),
		"provenance": CacheKey(true, []string{"T1", "F1"}, &Provenance{Base: "mvia", Set: map[string]string{"TLBCapacity": "8"}}),
		"override":   CacheKey(true, []string{"T1", "F1"}, &Provenance{Base: "clan", Set: map[string]string{"TLBCapacity": "32"}}),
		"nil-prov":   CacheKey(true, []string{"T1", "F1"}, nil),
		"cells":      CacheKey(true, []string{"T1", "F1"}, p, p),
	} {
		if other == k {
			t.Errorf("changing %s did not change the key", name)
		}
	}
}

// TestCacheKeyMatchesCompiledScenarios checks the key a daemon would
// compute from compiled scenario cells: the same spec expanded twice gives
// the same key, and a sweep gives each cell-set a distinct combined key.
func TestCacheKeyMatchesCompiledScenarios(t *testing.T) {
	key := func(sweeps []string) string {
		spec := core.ScenarioSpec{}
		spec.Base = "clan"
		specs, err := core.ExpandSweeps(spec, sweeps)
		if err != nil {
			t.Fatal(err)
		}
		scs, err := core.CompileScenarios(specs, true)
		if err != nil {
			t.Fatal(err)
		}
		provs := make([]*Provenance, len(scs))
		for i, sc := range scs {
			provs[i] = ProvenanceOf(sc)
		}
		return CacheKey(true, []string{"T1"}, provs...)
	}
	a, b := key([]string{"TLBCapacity=8,32"}), key([]string{"TLBCapacity=8,32"})
	if a != b {
		t.Error("same sweep compiled twice produced different keys")
	}
	if c := key([]string{"TLBCapacity=8"}); c == a {
		t.Error("different sweep produced the same key")
	}
}

// TestEncodeMatchesSave checks the byte-parity contract: Encode's bytes
// are exactly what Save writes, version/suite stamping included.
func TestEncodeMatchesSave(t *testing.T) {
	set := &Set{
		Label:    "parity",
		Scenario: &Provenance{Base: "clan", Quick: true},
		Experiments: []Experiment{
			{ID: "T1", Title: "t", Notes: []string{"n"}},
		},
		Metrics: map[string]float64{"nic0.doorbells": 7},
	}
	enc, err := Encode(set)
	if err != nil {
		t.Fatal(err)
	}
	if set.Version != 0 || set.Suite != "" {
		t.Fatalf("Encode mutated the caller's set: %d %q", set.Version, set.Suite)
	}
	var decoded Set
	if err := json.Unmarshal(enc, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Version != FormatVersion || decoded.Suite != "vibe" {
		t.Fatalf("encoded bytes missing version/suite stamp: %d %q", decoded.Version, decoded.Suite)
	}
	path := filepath.Join(t.TempDir(), "set.json")
	if err := Save(path, set); err != nil {
		t.Fatal(err)
	}
	disk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, disk) {
		t.Error("Encode bytes differ from Save's file")
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("round-trip Load: %v", err)
	}
}

// TestStorePutGet checks the cache semantics: bytes round-trip unchanged,
// per-cell order is preserved, a miss reports ok=false, and Put/Get are
// safe under concurrent use.
func TestStorePutGet(t *testing.T) {
	st := NewStore()
	if _, ok := st.Get("missing"); ok {
		t.Fatal("empty store reported a hit")
	}
	s1 := &Set{Label: "cell0"}
	s2 := &Set{Label: "cell1"}
	encs, err := st.Put("k", s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := st.Get("k")
	if !ok || len(got) != 2 {
		t.Fatalf("Get = %d sets, ok=%v", len(got), ok)
	}
	for i, want := range encs {
		if !bytes.Equal(got[i], want) {
			t.Errorf("cell %d bytes differ", i)
		}
	}
	want0, _ := Encode(&Set{Label: "cell0"})
	if !bytes.Equal(got[0], want0) {
		t.Error("stored bytes are not the canonical encoding")
	}
	if st.Len() != 1 {
		t.Errorf("Len = %d", st.Len())
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := st.Put("k", s1, s2); err != nil {
					t.Error(err)
					return
				}
				if _, ok := st.Get("k"); !ok {
					t.Error("lost key under concurrency")
					return
				}
			}
		}()
	}
	wg.Wait()
}
