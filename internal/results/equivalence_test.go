package results

import (
	"math"
	"testing"

	"vibe/internal/core"
	"vibe/internal/metrics"
	"vibe/internal/via"
)

// runRegistry regenerates the entire quick registry under one process
// model, with metrics collection and full span sampling attached, and
// returns the result set plus the aggregated metrics snapshot.
func runRegistry(t *testing.T, pm via.ProcModel) (*Set, map[string]float64) {
	t.Helper()
	sc := core.DefaultScenario(true)
	sc.ProcModel = pm
	col := metrics.NewCollector()
	sc.Instr = &core.Instr{Metrics: col, SpanSample: 1}
	set := &Set{Label: "equivalence"}
	for _, e := range core.Experiments() {
		rep, err := e.Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		set.Experiments = append(set.Experiments, FromReport(e.ID, rep))
	}
	return set, col.Snapshot().Map()
}

// TestProcModelRegistryEquivalence is the suite-level half of the
// zero-handoff contract: every experiment in the quick registry, run
// once under the goroutine reference model and once under the event-loop
// actor model, must produce byte-identical results (tolerance zero, not
// epsilon) and byte-identical aggregated metrics — including the
// span-derived latency histograms, whose quantiles are compared
// bit-for-bit. Any divergence means an actor state machine is not a
// faithful decomposition of its goroutine original.
func TestProcModelRegistryEquivalence(t *testing.T) {
	gset, gmet := runRegistry(t, via.ModelGoroutine)
	aset, amet := runRegistry(t, via.ModelActor)

	for _, d := range Compare(gset, aset, 0) {
		t.Errorf("%s %s: goroutine %.17g != actor %.17g", d.Experiment, d.Where, d.Base, d.New)
	}

	for k, gv := range gmet {
		av, ok := amet[k]
		if !ok {
			t.Errorf("metric %s only in goroutine model", k)
			continue
		}
		if math.Float64bits(gv) != math.Float64bits(av) {
			t.Errorf("metric %s: goroutine %v != actor %v", k, gv, av)
		}
	}
	for k := range amet {
		if _, ok := gmet[k]; !ok {
			t.Errorf("metric %s only in actor model", k)
		}
	}
}
