package runner

import (
	"sync"
	"time"
)

// ProgressEvent describes one finished experiment cell. Events are
// delivered in dispatch order (cell 0, 1, 2, ...), which for a grid is
// scenario-major, experiment-minor — the same order results are
// assembled — so a progress stream is deterministic even though cells
// complete out of order on the worker pool.
type ProgressEvent struct {
	Experiment string        // experiment id
	Scenario   string        // scenario label the cell ran under
	Cell       int           // flat dispatch index across the whole grid
	Index      int           // experiment index within the scenario row
	Done       int           // cells delivered so far, including this one
	Total      int           // cells in the whole run
	Skipped    bool          // abandoned after an earlier cell's failure
	Err        error         // the cell's error, nil on success or skip
	Wall       time.Duration // host wall-clock time the cell took
}

// progressEmitter serializes completion notifications back into dispatch
// order: completions arrive from any worker, are buffered until every
// earlier cell has reported, and the callback fires strictly by cell
// index. The callback runs under the emitter's lock on whichever worker
// (or the dispatch goroutine, for skipped cells) unblocked the sequence,
// so it must be fast and need not be reentrant.
type progressEmitter struct {
	mu      sync.Mutex
	fn      func(ProgressEvent)
	next    int
	total   int
	pending map[int]ProgressEvent
}

func newProgressEmitter(fn func(ProgressEvent), total int) *progressEmitter {
	if fn == nil {
		return nil
	}
	return &progressEmitter{fn: fn, total: total, pending: make(map[int]ProgressEvent)}
}

// complete records one cell's outcome. A nil emitter (no callback
// installed) is a no-op, so the hot path costs one nil check when
// progress is unused.
func (p *progressEmitter) complete(ev ProgressEvent) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pending[ev.Cell] = ev
	for {
		next, ok := p.pending[p.next]
		if !ok {
			return
		}
		delete(p.pending, p.next)
		p.next++
		next.Done = p.next
		next.Total = p.total
		p.fn(next)
	}
}

// progressOf converts a cell result into its progress event (Done/Total
// are stamped by the emitter at delivery time). Skipped cells carry the
// internal sentinel in Result.Err; the event reports them as Skipped with
// a nil Err, so stream consumers never see the sentinel.
func progressOf(cell int, r *Result) ProgressEvent {
	ev := ProgressEvent{
		Experiment: r.ID,
		Scenario:   r.Scenario,
		Cell:       cell,
		Index:      r.Index,
		Skipped:    r.Skipped(),
		Wall:       r.Wall,
	}
	if !ev.Skipped {
		ev.Err = r.Err
	}
	return ev
}
