package runner

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"vibe/internal/core"
	"vibe/internal/metrics"
	"vibe/internal/results"
)

// setJSON serializes run results into the suite's results-repository
// format, the same bytes vibe-report -json would write.
func setJSON(t *testing.T, rs []Result) []byte {
	t.Helper()
	set := &results.Set{}
	for i := range rs {
		if rs[i].Err != nil {
			t.Fatalf("cell %s failed: %v", rs[i].ID, rs[i].Err)
		}
		set.Experiments = append(set.Experiments, results.FromReport(rs[i].ID, rs[i].Report))
	}
	data, err := json.Marshal(set)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestParallelMatchesSequential runs the full quick registry sequentially
// and with 8 workers and requires byte-identical serialized reports: the
// parallel runner must not perturb any experiment's virtual-time results
// or the assembly order.
func TestParallelMatchesSequential(t *testing.T) {
	exps := core.Experiments()
	seq := Run(exps, Options{Quick: true, Workers: 1})
	par := Run(exps, Options{Quick: true, Workers: 8})
	a, b := setJSON(t, seq), setJSON(t, par)
	if string(a) != string(b) {
		t.Fatalf("parallel run diverged from sequential run:\nseq %d bytes, par %d bytes", len(a), len(b))
	}
	for i := range seq {
		if seq[i].Index != i || par[i].Index != i {
			t.Fatalf("result %d out of order: seq idx %d, par idx %d", i, seq[i].Index, par[i].Index)
		}
		if seq[i].ID != exps[i].ID || par[i].ID != exps[i].ID {
			t.Fatalf("result %d id mismatch: want %s, got seq %s par %s", i, exps[i].ID, seq[i].ID, par[i].ID)
		}
	}
}

func fakeExp(id string, run func(*core.Scenario) (*core.Report, error)) *core.Experiment {
	return &core.Experiment{ID: id, Title: id, Run: run}
}

// TestFailingCellPropagates checks that one failing cell surfaces its
// error through FirstError, that the pool drains without deadlocking, and
// that cells never started are marked skipped rather than errored.
func TestFailingCellPropagates(t *testing.T) {
	boom := errors.New("boom")
	var exps []*core.Experiment
	for i := 0; i < 16; i++ {
		i := i
		exps = append(exps, fakeExp(fmt.Sprintf("E%02d", i), func(*core.Scenario) (*core.Report, error) {
			if i == 3 {
				return nil, boom
			}
			time.Sleep(time.Millisecond)
			return &core.Report{Title: "ok"}, nil
		}))
	}
	done := make(chan []Result, 1)
	go func() { done <- Run(exps, Options{Workers: 4}) }()
	var rs []Result
	select {
	case rs = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run deadlocked after a cell failure")
	}
	err := FirstError(rs)
	if !errors.Is(err, boom) {
		t.Fatalf("FirstError = %v, want wrapped %v", err, boom)
	}
	if rs[3].Err == nil || rs[3].Skipped() {
		t.Fatalf("failing cell: Err = %v, Skipped = %v", rs[3].Err, rs[3].Skipped())
	}
	skipped := 0
	for i := range rs {
		if rs[i].Skipped() {
			skipped++
			if i <= 3 {
				t.Fatalf("cell %d skipped, but indices are handed out in order before cell 3 fails", i)
			}
		}
	}
	if skipped == 0 {
		t.Log("no cells were skipped (all started before the failure was observed); fail-fast not exercised")
	}
}

// TestPanickingCellIsContained checks that a panic inside an experiment
// is converted to that cell's error instead of killing the process.
func TestPanickingCellIsContained(t *testing.T) {
	exps := []*core.Experiment{
		fakeExp("OK", func(*core.Scenario) (*core.Report, error) { return &core.Report{}, nil }),
		fakeExp("PANIC", func(*core.Scenario) (*core.Report, error) { panic("kaboom") }),
	}
	rs := Run(exps, Options{Workers: 2})
	if rs[0].Err != nil && !rs[0].Skipped() {
		t.Fatalf("healthy cell errored: %v", rs[0].Err)
	}
	if rs[1].Err == nil {
		t.Fatal("panicking cell reported no error")
	}
	if err := FirstError(rs); err == nil {
		t.Fatal("FirstError missed the panic-derived error")
	}
}

// TestWorkersClamp checks the worker-count defaults and bounds.
func TestWorkersClamp(t *testing.T) {
	if got := (Options{Workers: 8}).workers(3); got != 3 {
		t.Fatalf("workers(3) with 8 requested = %d, want 3", got)
	}
	if got := (Options{Workers: -1}).workers(100); got < 1 {
		t.Fatalf("workers must be >= 1, got %d", got)
	}
	if got := (Options{Workers: 1}).workers(100); got != 1 {
		t.Fatalf("explicit sequential run got %d workers", got)
	}
}

// TestRunGrid checks that the scenario × experiment fan-out assembles
// results in submission order with the right scenario labels, and that a
// derived scenario actually changes what the experiment sees.
func TestRunGrid(t *testing.T) {
	exps := []*core.Experiment{
		fakeExp("A", func(sc *core.Scenario) (*core.Report, error) {
			return &core.Report{Title: "A/" + sc.Label()}, nil
		}),
		fakeExp("B", func(sc *core.Scenario) (*core.Report, error) {
			return &core.Report{Title: "B/" + sc.Label()}, nil
		}),
	}
	specs, err := core.ExpandSweeps(core.ScenarioSpec{}, []string{"TLBCapacity=8,32"})
	if err != nil {
		t.Fatal(err)
	}
	scs, err := core.CompileScenarios(specs, true)
	if err != nil {
		t.Fatal(err)
	}
	grid := RunGrid(exps, scs, Options{Workers: 4})
	if err := FirstGridError(grid); err != nil {
		t.Fatal(err)
	}
	if len(grid) != 2 || len(grid[0]) != 2 {
		t.Fatalf("grid shape = %dx%d, want 2x2", len(grid), len(grid[0]))
	}
	for si, sc := range scs {
		for ei, e := range exps {
			r := grid[si][ei]
			if r.ID != e.ID || r.Scenario != sc.Label() {
				t.Fatalf("cell [%d][%d] = (%s, %s), want (%s, %s)",
					si, ei, r.ID, r.Scenario, e.ID, sc.Label())
			}
			if want := e.ID + "/" + sc.Label(); r.Report.Title != want {
				t.Fatalf("cell [%d][%d] report = %q, want %q", si, ei, r.Report.Title, want)
			}
		}
	}
	if grid[0][0].Scenario == grid[1][0].Scenario {
		t.Fatal("sweep cells share a scenario label; axis expansion is broken")
	}
}

// TestSharedCollectorUnderParallelRun attaches one metrics.Collector to a
// scenario and fans the quick registry across 8 workers. Every simulated
// system merges into the same collector concurrently, so this test is the
// race detector's view of Collector.Merge; it also checks the merged
// counters look like a real run (systems seen, events dispatched).
func TestSharedCollectorUnderParallelRun(t *testing.T) {
	scs, err := core.CompileScenarios([]core.ScenarioSpec{{}}, true)
	if err != nil {
		t.Fatal(err)
	}
	col := metrics.NewCollector()
	scs[0].Instr = &core.Instr{Metrics: col}

	exps := core.Experiments()
	grid := RunGrid(exps, scs, Options{Workers: 8})
	if err := FirstGridError(grid); err != nil {
		t.Fatal(err)
	}
	if col.Systems() < len(exps) {
		t.Fatalf("collector saw %d systems across %d experiments; every experiment simulates at least one",
			col.Systems(), len(exps))
	}
	snap := col.Snapshot()
	if v, ok := snap.Get("sim.events_dispatched"); !ok || v == 0 {
		t.Fatalf("sim.events_dispatched = %v (ok=%v); merged snapshot is empty", v, ok)
	}
	if v, ok := snap.Get("fabric.delivered"); !ok || v == 0 {
		t.Fatalf("fabric.delivered = %v (ok=%v); no packets crossed the fabric", v, ok)
	}
}

// TestEmptyRun checks the degenerate empty registry.
func TestEmptyRun(t *testing.T) {
	rs := Run(nil, Options{})
	if len(rs) != 0 {
		t.Fatalf("got %d results for empty input", len(rs))
	}
	if err := FirstError(rs); err != nil {
		t.Fatalf("FirstError on empty = %v", err)
	}
}
