package runner

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"vibe/internal/core"
)

// TestProgressDispatchOrder fans a grid of jittered fake experiments
// across 8 workers and checks the progress stream: exactly one event per
// cell, delivered strictly in dispatch order (scenario-major,
// experiment-minor) with monotonically increasing Done counters, even
// though cells complete in arbitrary order. Run under -race (make race),
// this is also the emitter's concurrency test: workers publish
// completions from every goroutine in the pool.
func TestProgressDispatchOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var exps []*core.Experiment
	for i := 0; i < 12; i++ {
		d := time.Duration(rng.Intn(3)) * time.Millisecond
		exps = append(exps, fakeExp(fmt.Sprintf("E%02d", i), func(*core.Scenario) (*core.Report, error) {
			time.Sleep(d)
			return &core.Report{Title: "ok"}, nil
		}))
	}
	specs, err := core.ExpandSweeps(core.ScenarioSpec{}, []string{"TLBCapacity=8,32"})
	if err != nil {
		t.Fatal(err)
	}
	scs, err := core.CompileScenarios(specs, true)
	if err != nil {
		t.Fatal(err)
	}

	var events []ProgressEvent
	grid := RunGrid(exps, scs, Options{Workers: 8, Progress: func(ev ProgressEvent) {
		events = append(events, ev) // serialized by the emitter's lock
	}})
	if err := FirstGridError(grid); err != nil {
		t.Fatal(err)
	}

	total := len(exps) * len(scs)
	if len(events) != total {
		t.Fatalf("got %d events, want %d", len(events), total)
	}
	for i, ev := range events {
		if ev.Cell != i {
			t.Fatalf("event %d: Cell = %d, want dispatch order", i, ev.Cell)
		}
		if ev.Done != i+1 || ev.Total != total {
			t.Fatalf("event %d: Done/Total = %d/%d, want %d/%d", i, ev.Done, ev.Total, i+1, total)
		}
		si, ei := i/len(exps), i%len(exps)
		if ev.Experiment != exps[ei].ID || ev.Scenario != scs[si].Label() || ev.Index != ei {
			t.Fatalf("event %d = (%s, %s, idx %d), want (%s, %s, idx %d)",
				i, ev.Experiment, ev.Scenario, ev.Index, exps[ei].ID, scs[si].Label(), ei)
		}
		if ev.Err != nil || ev.Skipped {
			t.Fatalf("event %d unexpectedly failed/skipped: %v/%v", i, ev.Err, ev.Skipped)
		}
	}
}

// TestProgressCoversSkippedCells checks fail-fast interaction: after a
// cell fails, every cell — started, failed, or skipped — still produces
// exactly one event, the failing cell carries its error, and skipped
// cells report Skipped with a nil Err (consumers never see the internal
// sentinel).
func TestProgressCoversSkippedCells(t *testing.T) {
	boom := errors.New("boom")
	var exps []*core.Experiment
	for i := 0; i < 16; i++ {
		i := i
		exps = append(exps, fakeExp(fmt.Sprintf("E%02d", i), func(*core.Scenario) (*core.Report, error) {
			if i == 2 {
				return nil, boom
			}
			time.Sleep(time.Millisecond)
			return &core.Report{}, nil
		}))
	}
	var events []ProgressEvent
	rs := Run(exps, Options{Workers: 4, Progress: func(ev ProgressEvent) {
		events = append(events, ev)
	}})
	if err := FirstError(rs); !errors.Is(err, boom) {
		t.Fatalf("FirstError = %v, want %v", err, boom)
	}
	if len(events) != len(exps) {
		t.Fatalf("got %d events, want one per cell (%d)", len(events), len(exps))
	}
	for i, ev := range events {
		if ev.Cell != i {
			t.Fatalf("event %d out of dispatch order: cell %d", i, ev.Cell)
		}
		switch {
		case i == 2:
			if !errors.Is(ev.Err, boom) || ev.Skipped {
				t.Fatalf("failing cell event = err %v skipped %v", ev.Err, ev.Skipped)
			}
		case ev.Skipped:
			if ev.Err != nil {
				t.Fatalf("skipped cell %d leaked error %v", i, ev.Err)
			}
		case ev.Err != nil:
			t.Fatalf("cell %d errored unexpectedly: %v", i, ev.Err)
		}
	}
}

// TestProgressNilIsFree checks the nil-callback path stays inert: no
// emitter is constructed and RunGrid behaves exactly as before.
func TestProgressNilIsFree(t *testing.T) {
	if e := newProgressEmitter(nil, 10); e != nil {
		t.Fatal("nil callback must produce a nil emitter")
	}
	var e *progressEmitter
	e.complete(ProgressEvent{}) // must not panic
	var ran atomic.Bool
	exps := []*core.Experiment{fakeExp("A", func(*core.Scenario) (*core.Report, error) {
		ran.Store(true)
		return &core.Report{}, nil
	})}
	if err := FirstError(Run(exps, Options{Workers: 1})); err != nil || !ran.Load() {
		t.Fatalf("run without progress broke: err=%v ran=%v", err, ran.Load())
	}
}
