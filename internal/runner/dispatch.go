package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"vibe/internal/provider"
	"vibe/internal/sim"
	"vibe/internal/via"
)

// DispatchBench reports raw event-dispatch throughput on an incast
// workload — N hosts streaming reliable RDMA writes at one receiver, so
// the NIC engines, the fabric, and the acknowledgment protocol generate
// virtually the whole event stream — under both process models. The two
// simulations are verified byte-identical (same event count, same final
// virtual instant) before timing, so the ratio is a pure measurement of
// dispatch cost: what the zero-handoff actor core saves over goroutine
// handoffs per hot-path event.
//
// RDMA writes are the purest hot-path workload the provider offers: the
// target consumes no receive descriptors and wakes no application
// process, and the senders bulk-post before reaping, so application
// goroutines (identical in both models) park for almost the entire run.
//
// Events/sec is machine-dependent; the speedup ratio is what CI gates on.
type DispatchBench struct {
	Scenario          string  `json:"scenario"`
	Senders           int     `json:"senders"`
	Messages          int     `json:"messages"`
	Size              int     `json:"size"`
	Events            uint64  `json:"events"`
	VirtualMs         float64 `json:"virtual_ms"`
	GoroutineMs       float64 `json:"goroutine_ms"`
	ActorMs           float64 `json:"actor_ms"`
	GoroutineEvPerSec float64 `json:"goroutine_events_per_sec"`
	ActorEvPerSec     float64 `json:"actor_events_per_sec"`
	Speedup           float64 `json:"speedup"`
}

// runIncast simulates the incast once on the given provider model:
// senders hosts each stream msgs reliable RDMA writes of the given size
// at host 0. It returns the engine's dispatched-event count and the final
// virtual time — the two equivalence fingerprints — and fails on any
// descriptor error or leaked process.
func runIncast(pm via.ProcModel, m *provider.Model, senders, msgs, size int) (uint64, sim.Time, error) {
	const timeout = 30 * sim.Second
	sys := via.NewSystemProc(m, senders+1, 1, pm)
	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
		sys.Eng.Stop()
	}
	attrs := via.ViAttributes{Reliability: via.ReliableDelivery, EnableRdmaWrite: true}
	// Each sender gets its own target window in host 0's sink region; the
	// sink publishes the address segments once registration completes.
	targets := make([]via.AddressSegment, senders+1)
	published := false
	for s := 1; s <= senders; s++ {
		s := s
		disc := fmt.Sprintf("in-%d", s)
		sys.Go(0, "sink-"+disc, func(ctx *via.Ctx) {
			nic := ctx.OpenNic()
			vi, err := nic.CreateVi(ctx, attrs, nil, nil)
			if err != nil {
				fail(err)
				return
			}
			buf := ctx.Malloc(size)
			h, err := nic.RegisterMem(ctx, buf)
			if err != nil {
				fail(err)
				return
			}
			targets[s] = via.AddressSegment{Addr: buf.Addr(), Handle: h}
			if s == senders {
				published = true // the last sink to register completes the exchange
			}
			req, err := nic.ConnectWait(ctx, disc, timeout)
			if err != nil {
				fail(fmt.Errorf("wait %s: %w", disc, err))
				return
			}
			if err := req.Accept(ctx, vi); err != nil {
				fail(fmt.Errorf("accept %s: %w", disc, err))
			}
			// No receive loop: RDMA writes land without consuming
			// descriptors or waking anybody on this host.
		})
		sys.Go(s, "src-"+disc, func(ctx *via.Ctx) {
			nic := ctx.OpenNic()
			vi, err := nic.CreateVi(ctx, attrs, nil, nil)
			if err != nil {
				fail(err)
				return
			}
			if err := vi.ConnectRequest(ctx, 0, disc, timeout); err != nil {
				fail(fmt.Errorf("connect %s: %w", disc, err))
				return
			}
			for !published { // address exchange, as an application would do
				ctx.Sleep(10 * sim.Microsecond)
			}
			buf := ctx.Malloc(size)
			h, err := nic.RegisterMem(ctx, buf)
			if err != nil {
				fail(err)
				return
			}
			// Post the whole stream up front (one descriptor per message,
			// all over the same buffers), then reap completions. The source
			// process parks after the burst; the NIC send engine, the wire,
			// and the acknowledgment protocol generate virtually all
			// remaining events.
			remote := targets[s]
			for i := 0; i < msgs; i++ {
				d := &via.Descriptor{
					Op:     via.OpRdmaWrite,
					Segs:   []via.DataSegment{{Addr: buf.Addr(), Handle: h, Length: size}},
					Remote: &remote,
				}
				if err := vi.PostSend(ctx, d); err != nil {
					fail(fmt.Errorf("%s post %d: %w", disc, i, err))
					return
				}
			}
			for i := 0; i < msgs; i++ {
				d, err := vi.SendWait(ctx, timeout)
				if err != nil {
					fail(fmt.Errorf("%s reap %d: %w", disc, i, err))
					return
				}
				if d.Status != via.StatusSuccess {
					fail(fmt.Errorf("%s write %d completed %v", disc, i, d.Status))
					return
				}
			}
		})
	}
	if err := sys.Run(); err != nil && runErr == nil {
		runErr = err
	}
	ev, end := sys.Eng.EventsDispatched(), sys.Eng.Now()
	if err := sys.Close(); err != nil && runErr == nil {
		runErr = err
	}
	return ev, end, runErr
}

// benchIncast times the incast under one model, best of reps runs, and
// returns the fingerprints plus the best wall time. The garbage collector
// is disabled during timed runs (with an explicit collection before each
// rep): the bulk-posted descriptors keep thousands of objects live, and
// GC assist time would otherwise dominate long streams equally in both
// models, diluting the dispatch ratio the benchmark exists to measure.
func benchIncast(pm via.ProcModel, m *provider.Model, senders, msgs, size, reps int) (uint64, sim.Time, time.Duration, error) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var ev uint64
	var end sim.Time
	var best time.Duration
	for r := 0; r < reps; r++ {
		runtime.GC()
		start := time.Now()
		e, t, err := runIncast(pm, m, senders, msgs, size)
		wall := time.Since(start)
		if err != nil {
			return 0, 0, 0, err
		}
		if r == 0 {
			ev, end = e, t
		} else if e != ev || t != end {
			return 0, 0, 0, fmt.Errorf("runner: incast not deterministic: events %d vs %d, end %v vs %v", e, ev, t, end)
		}
		if r == 0 || wall < best {
			best = wall
		}
	}
	return ev, end, best, nil
}

// BenchDispatch measures dispatch throughput on the incast scenario in
// both process models (best of five runs each), verifying the two are
// byte-identical before comparing their wall clocks. One fixed workload,
// quick enough for smoke runs (~1s): a larger incast would only deepen
// the shared event backlog, and a smaller one times a region too short to
// measure stably.
func BenchDispatch() (*DispatchBench, error) {
	return benchDispatchOn(provider.CLAN(), "incast %d->1, %d x %dB reliable RDMA writes")
}

// BenchDispatchRouted is the routed-fabric variant of BenchDispatch: the
// same incast, but over a fat-tree with finite switch buffers, so the
// timed event stream includes multi-hop routing, per-hop serialization,
// and credit-backpressure accounting. Gated alongside the crossbar number
// so topology-path overhead regressions surface in CI.
func BenchDispatchRouted() (*DispatchBench, error) {
	m := provider.CLAN()
	m.Network.Topology = "fattree"
	m.Network.TopologyDegree = 4
	m.Network.SwitchBufPkts = 8
	return benchDispatchOn(m, "fat-tree incast %d->1, %d x %dB reliable RDMA writes")
}

func benchDispatchOn(m *provider.Model, scenarioFmt string) (*DispatchBench, error) {
	senders, msgs, size := 16, 300, 64
	const reps = 5
	gev, gend, gwall, err := benchIncast(via.ModelGoroutine, m, senders, msgs, size, reps)
	if err != nil {
		return nil, fmt.Errorf("goroutine model: %w", err)
	}
	aev, aend, awall, err := benchIncast(via.ModelActor, m, senders, msgs, size, reps)
	if err != nil {
		return nil, fmt.Errorf("actor model: %w", err)
	}
	if gev != aev || gend != aend {
		return nil, fmt.Errorf("runner: process models diverge: goroutine (%d events, end %v) vs actor (%d events, end %v)",
			gev, gend, aev, aend)
	}
	b := &DispatchBench{
		Scenario:    fmt.Sprintf(scenarioFmt, senders, senders*msgs, size),
		Senders:     senders,
		Messages:    msgs,
		Size:        size,
		Events:      aev,
		VirtualMs:   float64(aend) / 1e6,
		GoroutineMs: ms(gwall),
		ActorMs:     ms(awall),
	}
	if gwall > 0 {
		b.GoroutineEvPerSec = float64(gev) / gwall.Seconds()
	}
	if awall > 0 {
		b.ActorEvPerSec = float64(aev) / awall.Seconds()
	}
	if b.GoroutineEvPerSec > 0 {
		b.Speedup = b.ActorEvPerSec / b.GoroutineEvPerSec
	}
	return b, nil
}
