package runner

import (
	"testing"

	"vibe/internal/provider"
	"vibe/internal/via"
)

// TestIncastModelsAgree runs a small incast under both process models and
// requires the equivalence fingerprints to match exactly — on the default
// crossbar and on the routed fat-tree the CI bench also times. This is the
// benchmark's own precondition, kept under test so a drift in either model
// (or in the workload) fails here rather than inside a CI bench run.
func TestIncastModelsAgree(t *testing.T) {
	const senders, msgs, size = 4, 40, 64
	routed := provider.CLAN()
	routed.Network.Topology = "fattree"
	routed.Network.TopologyDegree = 4
	routed.Network.SwitchBufPkts = 8
	for _, tc := range []struct {
		name  string
		model *provider.Model
	}{
		{"crossbar", provider.CLAN()},
		{"fattree", routed},
	} {
		t.Run(tc.name, func(t *testing.T) {
			gev, gend, err := runIncast(via.ModelGoroutine, tc.model, senders, msgs, size)
			if err != nil {
				t.Fatalf("goroutine model: %v", err)
			}
			aev, aend, err := runIncast(via.ModelActor, tc.model, senders, msgs, size)
			if err != nil {
				t.Fatalf("actor model: %v", err)
			}
			if gev != aev || gend != aend {
				t.Fatalf("models diverge: goroutine (%d events, end %v) vs actor (%d events, end %v)",
					gev, gend, aev, aend)
			}
			if aev == 0 {
				t.Fatal("incast dispatched no events")
			}
		})
	}
}

// TestBenchDispatchSmoke exercises the full quick benchmark path — both
// models, determinism check across reps, ratio computation — without
// asserting a particular speedup (wall-clock ratios are not stable enough
// for a unit test; the CI bench job gates the recorded number instead).
func TestBenchDispatchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark smoke is not short")
	}
	b, err := BenchDispatch()
	if err != nil {
		t.Fatal(err)
	}
	if b.Events == 0 || b.Speedup <= 0 || b.GoroutineEvPerSec <= 0 || b.ActorEvPerSec <= 0 {
		t.Fatalf("degenerate bench result: %+v", b)
	}
	t.Logf("dispatch: %d events, goroutine %.0f ev/s, actor %.0f ev/s, speedup %.2fx",
		b.Events, b.GoroutineEvPerSec, b.ActorEvPerSec, b.Speedup)
}
