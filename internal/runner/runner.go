// Package runner executes experiment cells from the VIBe registry across a
// worker pool. Every cell owns its own simulation engine and shares no
// state with any other cell, so cells are embarrassingly parallel; the
// runner's job is to exploit that while keeping the assembled output
// deterministic: results come back indexed by submission order, so a
// parallel run assembles the exact same report sequence as a sequential
// one regardless of completion order.
//
// A cell is an (experiment, scenario) pair. Single-scenario runs use Run;
// parameter sweeps use RunGrid, which fans every sweep cell out across the
// same pool, so sweeps parallelize exactly like the base registry.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vibe/internal/core"
)

// Result is the outcome of one experiment cell.
type Result struct {
	Index    int           // position in the submitted experiment slice
	ID       string        // experiment id
	Scenario string        // scenario label the cell ran under
	Report   *core.Report  // nil when Err != nil
	Err      error         // the cell's error, or errSkipped after fail-fast
	Wall     time.Duration // host wall-clock time the cell took
}

// errSkipped marks cells never started because an earlier cell failed.
// Indices are handed to workers in order, so a skipped cell's index is
// always greater than the failing cell's: scanning results in index order
// always reaches a real error before any skipped cell.
var errSkipped = fmt.Errorf("runner: skipped after earlier failure")

// Skipped reports whether r was abandoned due to another cell's failure.
func (r *Result) Skipped() bool { return r.Err == errSkipped }

// Options configures a suite run.
type Options struct {
	// Quick selects the experiments' reduced sweeps (smoke-test mode).
	Quick bool

	// Workers is the number of cells run concurrently. Zero or negative
	// means runtime.NumCPU(). One gives a fully sequential run.
	Workers int

	// Scenario is the design point every cell runs under; nil means the
	// unmodified default scenario at Quick. Ignored by RunGrid, which
	// takes its scenarios explicitly.
	Scenario *core.Scenario

	// Progress, when set, receives one event per cell, delivered in
	// dispatch order (cell 0, 1, 2, ...) regardless of completion order:
	// out-of-order completions are buffered until every earlier cell has
	// reported. Callbacks run serially under an internal lock on whichever
	// goroutine unblocked the sequence, so they must be fast; nil costs
	// nothing.
	Progress func(ProgressEvent)
}

func (o Options) workers(cells int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > cells {
		w = cells
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes every experiment under opt.Scenario (or the default
// scenario) and returns one Result per experiment, in submission order. A
// failing cell stops new cells from starting (cells already in flight
// finish) and its error is preserved in its slot; Run itself never blocks
// indefinitely on a failure. Panics inside a cell's Run function are
// converted to errors so one bad experiment cannot take down the pool.
func Run(exps []*core.Experiment, opt Options) []Result {
	sc := opt.Scenario
	if sc == nil {
		sc = core.DefaultScenario(opt.Quick)
	}
	grid := RunGrid(exps, []*core.Scenario{sc}, opt)
	return grid[0]
}

// RunGrid executes the experiments × scenarios grid on one shared worker
// pool and returns results as grid[scenario][experiment], each row in
// experiment submission order. Fail-fast spans the whole grid: once any
// cell fails, unstarted cells in every scenario are skipped.
func RunGrid(exps []*core.Experiment, scs []*core.Scenario, opt Options) [][]Result {
	grid := make([][]Result, len(scs))
	for i := range grid {
		grid[i] = make([]Result, len(exps))
	}
	cells := len(exps) * len(scs)
	if cells == 0 {
		return grid
	}
	var failed atomic.Bool
	prog := newProgressEmitter(opt.Progress, cells)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opt.workers(cells); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range idx {
				si, ei := c/len(exps), c%len(exps)
				grid[si][ei] = runCell(ei, exps[ei], scs[si], &failed)
				prog.complete(progressOf(c, &grid[si][ei]))
			}
		}()
	}
	// The fail-fast check lives here, on the ordered dispatch path, not in
	// the workers: indices are skipped in submission order, so a skipped
	// cell's index is always greater than the failing cell's. A worker-side
	// check could observe the failure flag out of order and skip a cell
	// submitted before the one that failed.
	for c := 0; c < cells; c++ {
		si, ei := c/len(exps), c%len(exps)
		if failed.Load() {
			grid[si][ei] = Result{Index: ei, ID: exps[ei].ID, Scenario: scs[si].Label(), Err: errSkipped}
			prog.complete(progressOf(c, &grid[si][ei]))
			continue
		}
		idx <- c
	}
	close(idx)
	wg.Wait()
	return grid
}

func runCell(i int, e *core.Experiment, sc *core.Scenario, failed *atomic.Bool) (res Result) {
	res = Result{Index: i, ID: e.ID, Scenario: sc.Label()}
	start := time.Now()
	defer func() {
		res.Wall = time.Since(start)
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("runner: experiment %s panicked: %v", e.ID, r)
		}
		if res.Err != nil && !res.Skipped() {
			failed.Store(true)
		}
	}()
	rep, err := e.Run(sc)
	if err != nil {
		res.Err = fmt.Errorf("%s: %w", e.ID, err)
		return res
	}
	res.Report = rep
	return res
}

// FirstError returns the lowest-index real error, or nil if every cell
// succeeded.
func FirstError(results []Result) error {
	for i := range results {
		if err := results[i].Err; err != nil && !results[i].Skipped() {
			return err
		}
	}
	return nil
}

// FirstGridError scans a RunGrid result for the first real error, row by
// row.
func FirstGridError(grid [][]Result) error {
	for _, row := range grid {
		if err := FirstError(row); err != nil {
			return err
		}
	}
	return nil
}
