// Package runner executes experiment cells from the VIBe registry across a
// worker pool. Every cell owns its own simulation engine and shares no
// state with any other cell, so cells are embarrassingly parallel; the
// runner's job is to exploit that while keeping the assembled output
// deterministic: results come back indexed by submission order, so a
// parallel run assembles the exact same report sequence as a sequential
// one regardless of completion order.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vibe/internal/core"
)

// Result is the outcome of one experiment cell.
type Result struct {
	Index  int           // position in the submitted experiment slice
	ID     string        // experiment id
	Report *core.Report  // nil when Err != nil
	Err    error         // the cell's error, or errSkipped after fail-fast
	Wall   time.Duration // host wall-clock time the cell took
}

// errSkipped marks cells never started because an earlier cell failed.
// Indices are handed to workers in order, so a skipped cell's index is
// always greater than the failing cell's: scanning results in index order
// always reaches a real error before any skipped cell.
var errSkipped = fmt.Errorf("runner: skipped after earlier failure")

// Skipped reports whether r was abandoned due to another cell's failure.
func (r *Result) Skipped() bool { return r.Err == errSkipped }

// Options configures a suite run.
type Options struct {
	// Quick selects the experiments' reduced sweeps (smoke-test mode).
	Quick bool

	// Workers is the number of cells run concurrently. Zero or negative
	// means runtime.NumCPU(). One gives a fully sequential run.
	Workers int
}

func (o Options) workers(cells int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > cells {
		w = cells
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes every experiment and returns one Result per experiment, in
// submission order. A failing cell stops new cells from starting (cells
// already in flight finish) and its error is preserved in its slot; Run
// itself never blocks indefinitely on a failure. Panics inside a cell's
// Run function are converted to errors so one bad experiment cannot take
// down the pool.
func Run(exps []*core.Experiment, opt Options) []Result {
	results := make([]Result, len(exps))
	if len(exps) == 0 {
		return results
	}
	var failed atomic.Bool
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opt.workers(len(exps)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runCell(i, exps[i], opt.Quick, &failed)
			}
		}()
	}
	for i := range exps {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

func runCell(i int, e *core.Experiment, quick bool, failed *atomic.Bool) (res Result) {
	res = Result{Index: i, ID: e.ID}
	if failed.Load() {
		res.Err = errSkipped
		return res
	}
	start := time.Now()
	defer func() {
		res.Wall = time.Since(start)
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("runner: experiment %s panicked: %v", e.ID, r)
		}
		if res.Err != nil && !res.Skipped() {
			failed.Store(true)
		}
	}()
	rep, err := e.Run(quick)
	if err != nil {
		res.Err = fmt.Errorf("%s: %w", e.ID, err)
		return res
	}
	res.Report = rep
	return res
}

// FirstError returns the lowest-index real error, or nil if every cell
// succeeded.
func FirstError(results []Result) error {
	for i := range results {
		if err := results[i].Err; err != nil && !results[i].Skipped() {
			return err
		}
	}
	return nil
}
