package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"vibe/internal/core"
)

// CellBench is one experiment's wall-clock timing in both modes.
type CellBench struct {
	ID           string  `json:"id"`
	SequentialMs float64 `json:"sequential_ms"`
	ParallelMs   float64 `json:"parallel_ms"`
}

// SuiteBench is the machine-readable suite timing report written to
// BENCH_suite.json so the performance trajectory is comparable across PRs.
//
// Speedup is parallel speedup (sequential_ms / parallel_ms) unless a
// baseline from an earlier revision is supplied, in which case it is the
// end-to-end improvement (baseline_sequential_ms / parallel_ms).
type SuiteBench struct {
	Label                string      `json:"label,omitempty"`
	Date                 string      `json:"date"`
	Quick                bool        `json:"quick"`
	Workers              int         `json:"workers"`
	GOMAXPROCS           int         `json:"gomaxprocs"`
	BaselineLabel        string      `json:"baseline_label,omitempty"`
	BaselineSequentialMs float64     `json:"baseline_sequential_ms,omitempty"`
	SequentialMs         float64     `json:"sequential_ms"`
	ParallelMs           float64     `json:"parallel_ms"`
	Speedup              float64     `json:"speedup"`
	Experiments          []CellBench `json:"experiments"`

	// Dispatch is the event-dispatch throughput comparison of the two
	// process models (see DispatchBench). Its Speedup field is the
	// machine-independent ratio CI gates on.
	Dispatch *DispatchBench `json:"dispatch,omitempty"`

	// DispatchRouted is the same comparison on the routed fat-tree fabric
	// (see BenchDispatchRouted), gated when both reports carry it.
	DispatchRouted *DispatchBench `json:"dispatch_routed,omitempty"`
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// BenchSuite times the given experiments sequentially (Workers: 1) and
// then with opt.Workers, and returns the combined timing report. Both
// passes must succeed.
func BenchSuite(exps []*core.Experiment, opt Options, label string) (*SuiteBench, error) {
	seq := Run(exps, Options{Quick: opt.Quick, Workers: 1, Scenario: opt.Scenario})
	if err := FirstError(seq); err != nil {
		return nil, fmt.Errorf("sequential pass: %w", err)
	}
	par := Run(exps, opt)
	if err := FirstError(par); err != nil {
		return nil, fmt.Errorf("parallel pass: %w", err)
	}
	b := &SuiteBench{
		Label:      label,
		Date:       time.Now().UTC().Format(time.RFC3339),
		Quick:      opt.Quick,
		Workers:    opt.workers(len(exps)),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	var seqTotal time.Duration
	for i := range seq {
		seqTotal += seq[i].Wall
		b.Experiments = append(b.Experiments, CellBench{
			ID:           seq[i].ID,
			SequentialMs: ms(seq[i].Wall),
			ParallelMs:   ms(par[i].Wall),
		})
	}
	b.SequentialMs = ms(seqTotal)
	// Per-cell wall times overlap under parallelism; the parallel total is
	// the elapsed time of the whole pass, measured end to end. Best of two
	// passes, so one GC pause does not distort the report.
	for pass := 0; pass < 2; pass++ {
		start := time.Now()
		par2 := Run(exps, opt)
		if err := FirstError(par2); err != nil {
			return nil, fmt.Errorf("parallel pass: %w", err)
		}
		if t := ms(time.Since(start)); pass == 0 || t < b.ParallelMs {
			b.ParallelMs = t
		}
	}
	if b.ParallelMs > 0 {
		b.Speedup = b.SequentialMs / b.ParallelMs
	}
	return b, nil
}

// SetBaseline records an earlier revision's sequential wall time and
// recomputes Speedup against it, tracking improvement across PRs.
func (b *SuiteBench) SetBaseline(label string, sequentialMs float64) {
	b.BaselineLabel = label
	b.BaselineSequentialMs = sequentialMs
	if b.ParallelMs > 0 && sequentialMs > 0 {
		b.Speedup = sequentialMs / b.ParallelMs
	}
}

// Save writes the report as indented JSON.
func (b *SuiteBench) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadSuiteBench reads a bench report written by Save.
func LoadSuiteBench(path string) (*SuiteBench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b SuiteBench
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

// GateDispatch compares this report's dispatch speedup against a committed
// baseline report and errors if it regressed by more than the given
// fraction (0.20 = 20%). The speedup is a ratio of the two process models
// on the same machine, so the gate is machine-independent — absolute
// events/sec are reported but never gated.
func (b *SuiteBench) GateDispatch(base *SuiteBench, tolerance float64) error {
	if b.Dispatch == nil {
		return fmt.Errorf("bench gate: current report has no dispatch section")
	}
	if base.Dispatch == nil {
		return fmt.Errorf("bench gate: baseline report has no dispatch section")
	}
	floor := base.Dispatch.Speedup * (1 - tolerance)
	if b.Dispatch.Speedup < floor {
		return fmt.Errorf("bench gate: dispatch speedup %.2fx below floor %.2fx (committed %.2fx - %.0f%%)",
			b.Dispatch.Speedup, floor, base.Dispatch.Speedup, tolerance*100)
	}
	// The routed-fabric ratio gates only once both reports carry it, so
	// baselines committed before the routed bench existed still gate the
	// crossbar number.
	if b.DispatchRouted != nil && base.DispatchRouted != nil {
		floor := base.DispatchRouted.Speedup * (1 - tolerance)
		if b.DispatchRouted.Speedup < floor {
			return fmt.Errorf("bench gate: routed dispatch speedup %.2fx below floor %.2fx (committed %.2fx - %.0f%%)",
				b.DispatchRouted.Speedup, floor, base.DispatchRouted.Speedup, tolerance*100)
		}
	}
	return nil
}
