package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary = %+v", s)
	}
	want := math.Sqrt(2.5)
	if math.Abs(s.Stddev-want) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", s.Stddev, want)
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Median != 7 || s.P99 != 7 || s.Stddev != 0 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if got := Percentile(sorted, 50); got != 5 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(sorted, 0); got != 0 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(sorted, 100); got != 10 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
}

func TestMeanAndGeoMean(t *testing.T) {
	if Mean(nil) != 0 || Mean([]float64{2, 4}) != 3 {
		t.Fatal("Mean")
	}
	if g := GeoMean([]float64{1, 4}); g != 2 {
		t.Fatalf("GeoMean = %v", g)
	}
	if GeoMean([]float64{1, 0}) != 0 || GeoMean(nil) != 0 {
		t.Fatal("GeoMean degenerate cases")
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(110, 100) != 0.1 {
		t.Fatal("RelErr basic")
	}
	if RelErr(0, 0) != 0 {
		t.Fatal("RelErr 0/0")
	}
	if !math.IsInf(RelErr(1, 0), 1) {
		t.Fatal("RelErr x/0")
	}
}

// Property: min <= median <= p99 <= max, and mean within [min, max].
func TestSummaryInvariants(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.P99+1e-9 && s.P99 <= s.Max+1e-9 &&
			s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 && s.Stddev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Summarize does not mutate its input.
func TestSummarizePure(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}
