package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary = %+v", s)
	}
	want := math.Sqrt(2.5)
	if math.Abs(s.Stddev-want) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", s.Stddev, want)
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Median != 7 || s.P99 != 7 || s.Stddev != 0 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if got := Percentile(sorted, 50); got != 5 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(sorted, 0); got != 0 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(sorted, 100); got != 10 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
}

func TestMeanAndGeoMean(t *testing.T) {
	if Mean(nil) != 0 || Mean([]float64{2, 4}) != 3 {
		t.Fatal("Mean")
	}
	if g := GeoMean([]float64{1, 4}); g != 2 {
		t.Fatalf("GeoMean = %v", g)
	}
	if GeoMean([]float64{1, 0}) != 0 || GeoMean(nil) != 0 {
		t.Fatal("GeoMean degenerate cases")
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(110, 100) != 0.1 {
		t.Fatal("RelErr basic")
	}
	if RelErr(0, 0) != 0 {
		t.Fatal("RelErr 0/0")
	}
	if !math.IsInf(RelErr(1, 0), 1) {
		t.Fatal("RelErr x/0")
	}
}

// Property: min <= median <= p99 <= max, and mean within [min, max].
func TestSummaryInvariants(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.P99+1e-9 && s.P99 <= s.Max+1e-9 &&
			s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 && s.Stddev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Summarize does not mutate its input.
func TestSummarizePure(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}

// TestSummarizeSkipsNaN pins the NaN policy: NaN observations are dropped
// (counted in NaNs), and every statistic is computed over the valid
// remainder as if the NaNs were never there.
func TestSummarizeSkipsNaN(t *testing.T) {
	nan := math.NaN()
	got := Summarize([]float64{4, nan, 1, nan, 3, 2})
	want := Summarize([]float64{4, 1, 3, 2})
	if got.NaNs != 2 || got.N != 4 {
		t.Fatalf("N=%d NaNs=%d, want 4 and 2", got.N, got.NaNs)
	}
	if got.Min != want.Min || got.Max != want.Max || got.Mean != want.Mean ||
		got.Median != want.Median || got.P99 != want.P99 || got.Stddev != want.Stddev {
		t.Fatalf("stats with NaNs = %+v, want same as clean %+v", got, want)
	}
	for _, v := range []float64{got.Min, got.Max, got.Mean, got.Median, got.P99, got.Stddev} {
		if math.IsNaN(v) {
			t.Fatalf("NaN leaked into summary: %+v", got)
		}
	}
}

// TestSummarizeAllNaN: a sample of only NaNs behaves like an empty sample.
func TestSummarizeAllNaN(t *testing.T) {
	s := Summarize([]float64{math.NaN(), math.NaN()})
	if s.N != 0 || s.NaNs != 2 {
		t.Fatalf("N=%d NaNs=%d, want 0 and 2", s.N, s.NaNs)
	}
	if s.Mean != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("all-NaN sample not zero summary: %+v", s)
	}
}

// TestSummaryStringNaN: String reports the drop count and prints no NaN.
func TestSummaryStringNaN(t *testing.T) {
	s := Summarize([]float64{1, math.NaN(), 2})
	str := s.String()
	if !strings.Contains(str, "dropped 1 NaN") {
		t.Fatalf("String() = %q, want drop note", str)
	}
	if strings.Contains(str, "NaN ") || strings.HasPrefix(str, "NaN") {
		t.Fatalf("String() leaks NaN values: %q", str)
	}
	if got := Summarize([]float64{1, 2}).String(); strings.Contains(got, "dropped") {
		t.Fatalf("clean sample mentions drops: %q", got)
	}
}
