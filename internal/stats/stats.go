// Package stats provides the small statistical summaries the benchmark
// harness reports.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of float64 observations. N counts the valid
// observations; NaNs counts NaN inputs Summarize dropped.
type Summary struct {
	N      int
	NaNs   int
	Mean   float64
	Min    float64
	Max    float64
	Median float64
	P99    float64
	Stddev float64
}

// Summarize computes a Summary, skipping NaN observations (their count is
// recorded in NaNs). A NaN compares false against everything, so leaving
// one in would silently scramble sort.Float64s — and with it Min/Max,
// Median and P99 — while Mean and Stddev would poison to NaN. An empty (or
// all-NaN) sample yields a Summary with N=0.
func Summarize(xs []float64) Summary {
	var s Summary
	clean := make([]float64, 0, len(xs))
	for _, x := range xs {
		if math.IsNaN(x) {
			s.NaNs++
			continue
		}
		clean = append(clean, x)
	}
	if len(clean) == 0 {
		return s
	}
	s.N = len(clean)
	sorted := append([]float64(nil), clean...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.Median = Percentile(sorted, 50)
	s.P99 = Percentile(sorted, 99)

	var sum float64
	for _, x := range clean {
		sum += x
	}
	s.Mean = sum / float64(len(clean))
	var ss float64
	for _, x := range clean {
		d := x - s.Mean
		ss += d * d
	}
	if len(clean) > 1 {
		s.Stddev = math.Sqrt(ss / float64(len(clean)-1))
	}
	return s
}

// Percentile returns the p-th percentile (0..100) of an already-sorted
// sample, with linear interpolation. The sample must be NaN-free: NaN
// breaks the sorted-order precondition (Summarize strips NaNs before
// sorting for exactly this reason).
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of positive samples, or 0 if any
// sample is non-positive or the sample is empty.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// RelErr reports |got-want|/|want|; want==0 yields +Inf unless got is also
// 0.
func RelErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

func (s Summary) String() string {
	out := fmt.Sprintf("n=%d mean=%.3g min=%.3g med=%.3g p99=%.3g max=%.3g sd=%.3g",
		s.N, s.Mean, s.Min, s.Median, s.P99, s.Max, s.Stddev)
	if s.NaNs > 0 {
		out += fmt.Sprintf(" (dropped %d NaN)", s.NaNs)
	}
	return out
}
