package nicsim

import "testing"

func TestBufPoolGetSizes(t *testing.T) {
	p := NewBufPool()
	if b := p.Get(0); b != nil {
		t.Fatalf("Get(0) = %v, want nil", b)
	}
	for _, n := range []int{1, 15, 16, 17, 1500, 4096, 1 << 16} {
		b := p.Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d): len = %d", n, len(b))
		}
		if cap(b)&(cap(b)-1) != 0 {
			t.Fatalf("Get(%d): cap %d not a power of two", n, cap(b))
		}
	}
	// Oversized requests bypass the pool but still serve the exact length.
	huge := p.Get(1<<16 + 1)
	if len(huge) != 1<<16+1 {
		t.Fatalf("oversized len = %d", len(huge))
	}
	p.Put(huge)
	if got := p.Get(1<<16 + 1); &got[0] == &huge[0] {
		t.Fatal("oversized buffer was pooled")
	}
}

func TestBufPoolReuse(t *testing.T) {
	p := NewBufPool()
	a := p.Get(1000)
	p.Put(a)
	b := p.Get(900) // same class (1024)
	if &a[0] != &b[0] {
		t.Fatal("expected pooled buffer to be reused")
	}
	if len(b) != 900 {
		t.Fatalf("len = %d, want 900", len(b))
	}
	if p.Hits != 1 {
		t.Fatalf("Hits = %d, want 1", p.Hits)
	}
}

func TestBufPoolRejectsForeignBuffers(t *testing.T) {
	p := NewBufPool()
	p.Put(make([]byte, 100)) // cap 100 is not a class size
	if b := p.Get(100); cap(b) != 128 {
		t.Fatalf("foreign buffer entered the pool: cap = %d", cap(b))
	}
	if p.Hits != 0 {
		t.Fatalf("Hits = %d, want 0", p.Hits)
	}
}

func TestBufPoolBounded(t *testing.T) {
	p := NewBufPool()
	bufs := make([][]byte, 0, 2*maxPerClass)
	for i := 0; i < 2*maxPerClass; i++ {
		bufs = append(bufs, make([]byte, 64, 64))
	}
	for _, b := range bufs {
		p.Put(b)
	}
	if n := len(p.free[classFor(64)]); n != maxPerClass {
		t.Fatalf("free list grew to %d, want cap at %d", n, maxPerClass)
	}
}
