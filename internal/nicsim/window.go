package nicsim

import (
	"fmt"

	"vibe/internal/sim"
)

// Pending is an unacknowledged wire packet held for possible
// retransmission.
type Pending struct {
	Seq     uint64
	SentAt  sim.Time
	Retries int
	Item    interface{}
}

// Window is the sender half of the go-back-N reliability protocol the
// reliable VIA modes run between NICs: packets carry consecutive sequence
// numbers per connection, the receiver returns cumulative acks, and
// anything unacked past a timeout is retransmitted in order.
type Window struct {
	nextSeq uint64
	pending []*Pending // ordered by Seq

	// Counters.
	Acked       uint64
	Retransmits uint64
}

// NextSeq returns the sequence number the next Add will assign.
func (w *Window) NextSeq() uint64 { return w.nextSeq }

// Add registers a newly transmitted packet and returns its record with the
// assigned sequence number.
func (w *Window) Add(item interface{}, at sim.Time) *Pending {
	p := &Pending{Seq: w.nextSeq, SentAt: at, Item: item}
	w.nextSeq++
	w.pending = append(w.pending, p)
	return p
}

// Ack processes a cumulative acknowledgment: every pending packet with
// Seq <= cumSeq is removed and returned.
func (w *Window) Ack(cumSeq uint64) []*Pending {
	i := 0
	for i < len(w.pending) && w.pending[i].Seq <= cumSeq {
		i++
	}
	acked := w.pending[:i:i]
	w.pending = w.pending[i:]
	w.Acked += uint64(len(acked))
	return acked
}

// Outstanding reports the number of unacked packets.
func (w *Window) Outstanding() int { return len(w.pending) }

// Oldest returns the longest-unacked packet, or nil.
func (w *Window) Oldest() *Pending {
	if len(w.pending) == 0 {
		return nil
	}
	return w.pending[0]
}

// Unacked returns a copy of every pending packet in sequence order, for
// go-back-N retransmission. It must not alias the window's internal slice:
// Ack re-slices that backing array, so a caller holding the internal slice
// could read acked entries as still pending — or corrupt window state by
// writing through it. Hot paths that retransmit on every timeout use
// ForEachUnacked to avoid the copy.
func (w *Window) Unacked() []*Pending {
	return append([]*Pending(nil), w.pending...)
}

// ForEachUnacked calls fn for each pending packet in sequence order until
// fn returns false. It is the allocation-free iteration the retransmission
// paths use; fn must not call methods that mutate the window.
func (w *Window) ForEachUnacked(fn func(*Pending) bool) {
	for _, p := range w.pending {
		if !fn(p) {
			return
		}
	}
}

// MarkResent stamps every pending packet as retransmitted at the given
// instant and bumps retry counts. It returns the highest retry count, so
// the caller can give up after a limit.
func (w *Window) MarkResent(at sim.Time) int {
	w.Retransmits += uint64(len(w.pending))
	max := 0
	for _, p := range w.pending {
		p.SentAt = at
		p.Retries++
		if p.Retries > max {
			max = p.Retries
		}
	}
	return max
}

// Reset drops all pending state (connection teardown).
func (w *Window) Reset() { w.pending = nil }

func (w *Window) String() string {
	return fmt.Sprintf("window{next=%d outstanding=%d}", w.nextSeq, len(w.pending))
}

// RecvSeq is the receiver half of the reliability protocol: it accepts
// packets strictly in order and produces cumulative acks.
type RecvSeq struct {
	expected uint64

	Duplicates uint64
	Gaps       uint64
}

// Accept classifies an arriving sequence number. accept=true means the
// packet is new and in order and should be processed; dup=true means it
// was already processed (the ack was probably lost) and should be re-acked
// but not processed. Both false means a gap: drop and wait for
// retransmission.
func (r *RecvSeq) Accept(seq uint64) (accept, dup bool) {
	switch {
	case seq == r.expected:
		r.expected++
		return true, false
	case seq < r.expected:
		r.Duplicates++
		return false, true
	default:
		r.Gaps++
		return false, false
	}
}

// CumAck returns the cumulative acknowledgment to send: the highest
// in-order sequence received. ok is false if nothing has been received.
func (r *RecvSeq) CumAck() (seq uint64, ok bool) {
	if r.expected == 0 {
		return 0, false
	}
	return r.expected - 1, true
}

// Expected returns the next sequence number the receiver will accept.
func (r *RecvSeq) Expected() uint64 { return r.expected }
