// Package nicsim provides the NIC-level mechanisms shared by every
// simulated VIA provider: the address-translation cache, MTU
// fragmentation, the retransmission window for reliable modes, and
// in-order reassembly. These are pure data structures; the timing and
// protocol live in internal/via's NIC engine.
package nicsim

// TLBPolicy selects the replacement policy of the NIC translation cache.
type TLBPolicy int

const (
	// FIFO evicts the oldest-inserted entry. The Berkeley VIA LANai
	// firmware used a simple software cache of this kind.
	FIFO TLBPolicy = iota
	// LRU evicts the least-recently-used entry.
	LRU
)

func (p TLBPolicy) String() string {
	if p == LRU {
		return "LRU"
	}
	return "FIFO"
}

// TLB is the NIC's virtual-to-physical translation cache. Keys are virtual
// page numbers. A zero-capacity TLB misses on every lookup.
type TLB struct {
	capacity int
	policy   TLBPolicy
	// order holds page numbers in eviction order (front = next victim).
	order []uint64
	pos   map[uint64]int // page -> index in order

	Hits   uint64
	Misses uint64
}

// NewTLB returns an empty cache with the given capacity and policy.
func NewTLB(capacity int, policy TLBPolicy) *TLB {
	return &TLB{capacity: capacity, policy: policy, pos: make(map[uint64]int)}
}

// Capacity returns the cache capacity in entries.
func (t *TLB) Capacity() int { return t.capacity }

// Len returns the number of cached translations.
func (t *TLB) Len() int { return len(t.order) }

// Lookup consults the cache for page and reports whether it hit. On a miss
// the translation is installed (the NIC always fetches it to complete the
// transfer), evicting per policy if full.
func (t *TLB) Lookup(page uint64) bool {
	if idx, ok := t.pos[page]; ok {
		t.Hits++
		if t.policy == LRU {
			t.moveToBack(idx)
		}
		return true
	}
	t.Misses++
	t.insert(page)
	return false
}

// Contains reports whether page is cached, without touching recency or
// counters.
func (t *TLB) Contains(page uint64) bool {
	_, ok := t.pos[page]
	return ok
}

func (t *TLB) insert(page uint64) {
	if t.capacity == 0 {
		return
	}
	if len(t.order) >= t.capacity {
		victim := t.order[0]
		t.removeAt(0)
		delete(t.pos, victim)
	}
	t.pos[page] = len(t.order)
	t.order = append(t.order, page)
}

func (t *TLB) moveToBack(idx int) {
	page := t.order[idx]
	t.removeAt(idx)
	t.pos[page] = len(t.order)
	t.order = append(t.order, page)
}

func (t *TLB) removeAt(idx int) {
	copy(t.order[idx:], t.order[idx+1:])
	t.order = t.order[:len(t.order)-1]
	for i := idx; i < len(t.order); i++ {
		t.pos[t.order[i]] = i
	}
}

// Invalidate removes page from the cache (memory deregistration must shoot
// down stale translations).
func (t *TLB) Invalidate(page uint64) {
	if idx, ok := t.pos[page]; ok {
		t.removeAt(idx)
		delete(t.pos, page)
	}
}

// InvalidateRange removes every cached page in [first, last].
func (t *TLB) InvalidateRange(first, last uint64) {
	for p := first; p <= last; p++ {
		t.Invalidate(p)
	}
}

// Reset empties the cache and zeroes the counters.
func (t *TLB) Reset() {
	t.order = t.order[:0]
	t.pos = make(map[uint64]int)
	t.Hits, t.Misses = 0, 0
}

// HitRate reports the fraction of lookups that hit, or 0 with no lookups.
func (t *TLB) HitRate() float64 {
	total := t.Hits + t.Misses
	if total == 0 {
		return 0
	}
	return float64(t.Hits) / float64(total)
}
