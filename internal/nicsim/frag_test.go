package nicsim

import (
	"testing"
	"testing/quick"
)

func TestFragmentsExact(t *testing.T) {
	frags := Fragments(10, 4)
	want := []Fragment{
		{Offset: 0, Size: 4, Index: 0},
		{Offset: 4, Size: 4, Index: 1},
		{Offset: 8, Size: 2, Index: 2, Last: true},
	}
	if len(frags) != len(want) {
		t.Fatalf("got %d fragments", len(frags))
	}
	for i := range want {
		if frags[i] != want[i] {
			t.Errorf("frag %d = %+v, want %+v", i, frags[i], want[i])
		}
	}
}

func TestFragmentsZeroLengthMessage(t *testing.T) {
	frags := Fragments(0, 1500)
	if len(frags) != 1 || !frags[0].Last || frags[0].Size != 0 {
		t.Fatalf("zero-length: %+v", frags)
	}
	if NumFragments(0, 1500) != 1 {
		t.Fatal("NumFragments(0) != 1")
	}
}

func TestFragmentsSingle(t *testing.T) {
	frags := Fragments(1500, 1500)
	if len(frags) != 1 || !frags[0].Last || frags[0].Size != 1500 {
		t.Fatalf("exact-MTU: %+v", frags)
	}
}

func TestFragmentsPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Fragments(-1, 10) },
		func() { Fragments(10, 0) },
		func() { NumFragments(10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: fragments tile the message exactly, in order, sizes within
// MTU, and NumFragments agrees.
func TestFragmentsTileMessage(t *testing.T) {
	f := func(n uint16, mtu uint16) bool {
		size := int(n)
		m := int(mtu%4096) + 1
		frags := Fragments(size, m)
		if len(frags) != NumFragments(size, m) {
			return false
		}
		off := 0
		for i, fr := range frags {
			if fr.Index != i || fr.Offset != off || fr.Size < 0 || fr.Size > m {
				return false
			}
			if fr.Last != (i == len(frags)-1) {
				return false
			}
			off += fr.Size
		}
		if size == 0 {
			return off == 0
		}
		// All but the last fragment are full.
		for _, fr := range frags[:len(frags)-1] {
			if fr.Size != m {
				return false
			}
		}
		return off == size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReassemblerHappyPath(t *testing.T) {
	var r Reassembler
	frags := Fragments(10000, 4096)
	for i, f := range frags {
		done, ok := r.Accept(1, f, 10000)
		if !ok {
			t.Fatalf("fragment %d rejected", i)
		}
		if done != f.Last {
			t.Fatalf("fragment %d done=%v", i, done)
		}
	}
	if r.Active() {
		t.Fatal("still active after completion")
	}
}

func TestReassemblerMidGapDiscardsMessage(t *testing.T) {
	var r Reassembler
	frags := Fragments(10000, 4096) // 3 fragments
	r.Accept(1, frags[0], 10000)
	// frags[1] lost.
	done, ok := r.Accept(1, frags[2], 10000)
	if done || ok {
		t.Fatal("gapped message completed")
	}
	if r.Abandoned != 1 {
		t.Fatalf("abandoned = %d", r.Abandoned)
	}
	// Next message proceeds cleanly.
	done, ok = r.Accept(2, Fragments(100, 4096)[0], 100)
	if !done || !ok {
		t.Fatal("next message blocked by previous gap")
	}
}

func TestReassemblerLostTailAbandonedOnNextMessage(t *testing.T) {
	var r Reassembler
	frags := Fragments(10000, 4096)
	r.Accept(1, frags[0], 10000)
	r.Accept(1, frags[1], 10000)
	// frags[2] (the tail) lost; message 2 begins.
	done, ok := r.Accept(2, Fragments(50, 4096)[0], 50)
	if !done || !ok {
		t.Fatal("new message not accepted after lost tail")
	}
	if r.Abandoned != 1 {
		t.Fatalf("abandoned = %d", r.Abandoned)
	}
}

func TestReassemblerLostHeadDiscardsRest(t *testing.T) {
	var r Reassembler
	frags := Fragments(10000, 4096)
	// Head lost; middle and tail arrive.
	if done, ok := r.Accept(1, frags[1], 10000); done || ok {
		t.Fatal("accepted headless fragment")
	}
	if done, ok := r.Accept(1, frags[2], 10000); done || ok {
		t.Fatal("completed headless message")
	}
	if r.Abandoned != 1 {
		t.Fatalf("abandoned = %d", r.Abandoned)
	}
	if r.Active() {
		t.Fatal("active after abandoned tail")
	}
}

func TestReassemblerAbort(t *testing.T) {
	var r Reassembler
	frags := Fragments(10000, 4096)
	r.Accept(1, frags[0], 10000)
	r.Abort()
	if r.Active() || r.Received() != 0 {
		t.Fatal("abort incomplete")
	}
}
