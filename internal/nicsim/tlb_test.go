package nicsim

import (
	"testing"
	"testing/quick"
)

func TestTLBMissThenHit(t *testing.T) {
	tlb := NewTLB(4, FIFO)
	if tlb.Lookup(1) {
		t.Fatal("first lookup hit")
	}
	if !tlb.Lookup(1) {
		t.Fatal("second lookup missed")
	}
	if tlb.Hits != 1 || tlb.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", tlb.Hits, tlb.Misses)
	}
	if tlb.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", tlb.HitRate())
	}
}

func TestTLBFIFOEviction(t *testing.T) {
	tlb := NewTLB(2, FIFO)
	tlb.Lookup(1)
	tlb.Lookup(2)
	tlb.Lookup(1) // hit; FIFO does not refresh recency
	tlb.Lookup(3) // evicts 1 (oldest inserted)
	if tlb.Contains(1) {
		t.Error("FIFO kept refreshed entry 1")
	}
	if !tlb.Contains(2) || !tlb.Contains(3) {
		t.Error("FIFO evicted wrong entry")
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tlb := NewTLB(2, LRU)
	tlb.Lookup(1)
	tlb.Lookup(2)
	tlb.Lookup(1) // refreshes 1
	tlb.Lookup(3) // evicts 2 (least recently used)
	if !tlb.Contains(1) {
		t.Error("LRU evicted refreshed entry 1")
	}
	if tlb.Contains(2) {
		t.Error("LRU kept stale entry 2")
	}
}

func TestTLBZeroCapacityAlwaysMisses(t *testing.T) {
	tlb := NewTLB(0, FIFO)
	for i := 0; i < 5; i++ {
		if tlb.Lookup(7) {
			t.Fatal("zero-capacity TLB hit")
		}
	}
	if tlb.Len() != 0 {
		t.Fatal("zero-capacity TLB stored an entry")
	}
}

func TestTLBInvalidate(t *testing.T) {
	tlb := NewTLB(8, LRU)
	for p := uint64(0); p < 5; p++ {
		tlb.Lookup(p)
	}
	tlb.Invalidate(2)
	if tlb.Contains(2) || tlb.Len() != 4 {
		t.Fatal("Invalidate failed")
	}
	tlb.Invalidate(99) // absent: no-op
	tlb.InvalidateRange(0, 3)
	if tlb.Len() != 1 || !tlb.Contains(4) {
		t.Fatalf("InvalidateRange left %d entries", tlb.Len())
	}
	tlb.Reset()
	if tlb.Len() != 0 || tlb.Hits != 0 || tlb.Misses != 0 {
		t.Fatal("Reset incomplete")
	}
	if tlb.HitRate() != 0 {
		t.Fatal("empty hit rate nonzero")
	}
}

func TestTLBWorkingSetFitsNeverMissesAfterWarmup(t *testing.T) {
	for _, policy := range []TLBPolicy{FIFO, LRU} {
		tlb := NewTLB(8, policy)
		for p := uint64(0); p < 8; p++ {
			tlb.Lookup(p)
		}
		tlb.Hits, tlb.Misses = 0, 0
		for round := 0; round < 10; round++ {
			for p := uint64(0); p < 8; p++ {
				if !tlb.Lookup(p) {
					t.Fatalf("%v: miss on resident page %d", policy, p)
				}
			}
		}
	}
}

func TestTLBCyclicThrashFIFO(t *testing.T) {
	// Classic FIFO pathology: cycling over capacity+1 pages misses every
	// time.
	tlb := NewTLB(4, FIFO)
	for round := 0; round < 3; round++ {
		for p := uint64(0); p < 5; p++ {
			tlb.Lookup(p)
		}
	}
	if tlb.Hits != 0 {
		t.Fatalf("cyclic thrash produced %d hits", tlb.Hits)
	}
}

// Property: the cache never exceeds capacity and Len matches the internal
// index.
func TestTLBInvariants(t *testing.T) {
	f := func(pages []uint8, cap8 uint8, lru bool) bool {
		capacity := int(cap8 % 16)
		policy := FIFO
		if lru {
			policy = LRU
		}
		tlb := NewTLB(capacity, policy)
		for _, p := range pages {
			tlb.Lookup(uint64(p))
			if tlb.Len() > capacity {
				return false
			}
			if len(tlb.pos) != tlb.Len() {
				return false
			}
		}
		if tlb.Hits+tlb.Misses != uint64(len(pages)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyString(t *testing.T) {
	if FIFO.String() != "FIFO" || LRU.String() != "LRU" {
		t.Fatal("policy names")
	}
}
