package nicsim

import (
	"testing"
	"testing/quick"

	"vibe/internal/sim"
)

func TestWindowAddAck(t *testing.T) {
	var w Window
	a := w.Add("a", 10)
	b := w.Add("b", 20)
	c := w.Add("c", 30)
	if a.Seq != 0 || b.Seq != 1 || c.Seq != 2 {
		t.Fatalf("seqs: %d %d %d", a.Seq, b.Seq, c.Seq)
	}
	if w.Outstanding() != 3 || w.NextSeq() != 3 {
		t.Fatalf("outstanding=%d next=%d", w.Outstanding(), w.NextSeq())
	}
	acked := w.Ack(1)
	if len(acked) != 2 || acked[0].Item.(string) != "a" || acked[1].Item.(string) != "b" {
		t.Fatalf("acked = %v", acked)
	}
	if w.Outstanding() != 1 || w.Oldest().Seq != 2 {
		t.Fatalf("after ack: outstanding=%d oldest=%v", w.Outstanding(), w.Oldest())
	}
	if w.Acked != 2 {
		t.Fatalf("Acked = %d", w.Acked)
	}
}

func TestWindowAckIdempotent(t *testing.T) {
	var w Window
	w.Add("a", 0)
	if got := w.Ack(0); len(got) != 1 {
		t.Fatal("first ack")
	}
	if got := w.Ack(0); len(got) != 0 {
		t.Fatal("duplicate ack removed something")
	}
	if w.Oldest() != nil {
		t.Fatal("Oldest on empty window")
	}
}

func TestWindowMarkResent(t *testing.T) {
	var w Window
	w.Add("a", 5)
	w.Add("b", 6)
	max := w.MarkResent(sim.Time(100))
	if max != 1 || w.Retransmits != 2 {
		t.Fatalf("max=%d retransmits=%d", max, w.Retransmits)
	}
	for _, p := range w.Unacked() {
		if p.SentAt != 100 || p.Retries != 1 {
			t.Fatalf("pending not restamped: %+v", p)
		}
	}
	if w.MarkResent(sim.Time(200)) != 2 {
		t.Fatal("second resend max retries")
	}
	w.Reset()
	if w.Outstanding() != 0 {
		t.Fatal("Reset")
	}
	if w.String() == "" {
		t.Fatal("String")
	}
}

func TestRecvSeqInOrder(t *testing.T) {
	var r RecvSeq
	if _, ok := r.CumAck(); ok {
		t.Fatal("CumAck before any packet")
	}
	for seq := uint64(0); seq < 4; seq++ {
		accept, dup := r.Accept(seq)
		if !accept || dup {
			t.Fatalf("seq %d: accept=%v dup=%v", seq, accept, dup)
		}
	}
	if ack, ok := r.CumAck(); !ok || ack != 3 {
		t.Fatalf("CumAck = %d,%v", ack, ok)
	}
}

func TestRecvSeqDuplicateAndGap(t *testing.T) {
	var r RecvSeq
	r.Accept(0)
	if accept, dup := r.Accept(0); accept || !dup {
		t.Fatalf("duplicate: accept=%v dup=%v", accept, dup)
	}
	if accept, dup := r.Accept(5); accept || dup {
		t.Fatalf("gap: accept=%v dup=%v", accept, dup)
	}
	if r.Duplicates != 1 || r.Gaps != 1 || r.Expected() != 1 {
		t.Fatalf("dups=%d gaps=%d expected=%d", r.Duplicates, r.Gaps, r.Expected())
	}
}

// Property: after any interleaving of sends and cumulative acks, the
// window holds exactly the sequence numbers greater than the highest ack.
func TestWindowInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		var w Window
		highAck := -1
		for _, op := range ops {
			if op%2 == 0 {
				w.Add(int(op), 0)
			} else if w.NextSeq() > 0 {
				ack := uint64(op) % w.NextSeq()
				w.Ack(ack)
				if int(ack) > highAck {
					highAck = int(ack)
				}
			}
		}
		want := int(w.NextSeq()) - (highAck + 1)
		if want < 0 {
			want = 0
		}
		if w.Outstanding() != want {
			return false
		}
		// Pending entries are in strictly increasing seq order, all above
		// highAck.
		prev := -1
		for _, p := range w.Unacked() {
			if int(p.Seq) <= highAck || int(p.Seq) <= prev {
				return false
			}
			prev = int(p.Seq)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a receiver fed any sequence stream accepts exactly the strictly
// consecutive prefix-extension packets.
func TestRecvSeqProperty(t *testing.T) {
	f := func(seqs []uint8) bool {
		var r RecvSeq
		expected := uint64(0)
		for _, s := range seqs {
			seq := uint64(s % 8)
			accept, dup := r.Accept(seq)
			switch {
			case seq == expected:
				if !accept || dup {
					return false
				}
				expected++
			case seq < expected:
				if accept || !dup {
					return false
				}
			default:
				if accept || dup {
					return false
				}
			}
		}
		return r.Expected() == expected
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestUnackedReturnsCopy pins the aliasing fix: Unacked used to return the
// window's internal slice, whose backing array Ack re-slices in place —
// mutating the returned slice (or just holding it across an Ack) corrupted
// go-back-N state. The returned slice must be detached.
func TestUnackedReturnsCopy(t *testing.T) {
	var w Window
	for i := 0; i < 4; i++ {
		w.Add(i, sim.Time(i))
	}
	snap := w.Unacked()

	// Clobbering the snapshot must not reach the window.
	snap[0] = nil
	snap[1] = &Pending{Seq: 999}
	if old := w.Oldest(); old == nil || old.Seq != 0 {
		t.Fatalf("oldest corrupted by writing through Unacked: %v", old)
	}

	// Ack shrinks the window by re-slicing; the snapshot keeps the old
	// contents rather than seeing acked entries mutate under it.
	snap = w.Unacked()
	w.Ack(1)
	if len(snap) != 4 || snap[0].Seq != 0 || snap[3].Seq != 3 {
		t.Fatalf("snapshot changed by Ack: %v", snap)
	}
	if w.Outstanding() != 2 || w.Oldest().Seq != 2 {
		t.Fatalf("window wrong after Ack: %v", w.Unacked())
	}

	// After go-back-N resend bookkeeping through ForEachUnacked, the
	// window still holds exactly the unacked tail, in order.
	var seen []uint64
	w.ForEachUnacked(func(p *Pending) bool {
		seen = append(seen, p.Seq)
		return true
	})
	if len(seen) != 2 || seen[0] != 2 || seen[1] != 3 {
		t.Fatalf("ForEachUnacked order = %v, want [2 3]", seen)
	}
}

// TestForEachUnackedEarlyExit: returning false stops iteration (the paced
// retransmission burst relies on this).
func TestForEachUnackedEarlyExit(t *testing.T) {
	var w Window
	for i := 0; i < 5; i++ {
		w.Add(i, 0)
	}
	calls := 0
	w.ForEachUnacked(func(p *Pending) bool {
		calls++
		return calls < 2
	})
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}
