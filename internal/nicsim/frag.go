package nicsim

import "fmt"

// Fragment is one MTU-sized piece of a message as it crosses the wire.
type Fragment struct {
	Offset int  // byte offset of this fragment within the message
	Size   int  // payload bytes in this fragment
	Index  int  // fragment number, 0-based
	Last   bool // true for the final fragment
}

// Fragments splits a message of n bytes into wire fragments of at most mtu
// bytes. A zero-length message still produces one (empty) fragment, because
// VIA permits zero-byte sends and the receiver must still consume a
// descriptor.
func Fragments(n, mtu int) []Fragment {
	if n < 0 {
		panic(fmt.Sprintf("nicsim: negative message size %d", n))
	}
	if mtu <= 0 {
		panic(fmt.Sprintf("nicsim: non-positive MTU %d", mtu))
	}
	if n == 0 {
		return []Fragment{{Offset: 0, Size: 0, Index: 0, Last: true}}
	}
	var frags []Fragment
	for off, i := 0, 0; off < n; i++ {
		size := mtu
		if n-off < size {
			size = n - off
		}
		frags = append(frags, Fragment{Offset: off, Size: size, Index: i})
		off += size
	}
	frags[len(frags)-1].Last = true
	return frags
}

// NumFragments reports how many fragments Fragments would return, without
// allocating.
func NumFragments(n, mtu int) int {
	if mtu <= 0 {
		panic(fmt.Sprintf("nicsim: non-positive MTU %d", mtu))
	}
	if n <= 0 {
		return 1
	}
	return (n + mtu - 1) / mtu
}

// Reassembler tracks the arrival of in-flight messages' fragments on a
// single VI channel. SAN fabrics deliver in order on a connection, so the
// reassembler only has to detect gaps (lost fragments), not reorder.
// Messages are distinguished by a per-channel message id, so a message
// whose tail fragments were lost is abandoned as soon as the next message
// starts, instead of poisoning it.
type Reassembler struct {
	msgID    uint64
	total    int // expected message size (from the fragment headers)
	received int // bytes received so far
	nextIdx  int // next expected fragment index
	active   bool
	broken   bool // a gap was detected; remaining fragments are discarded

	// Abandoned counts messages dropped because a fragment was lost.
	Abandoned uint64
}

// Active reports whether a message is partially assembled.
func (r *Reassembler) Active() bool { return r.active }

// Received reports the bytes accepted for the current message.
func (r *Reassembler) Received() int { return r.received }

// Accept processes one arriving fragment of message msgID, whose total
// size is msgTotal bytes. It returns done=true when the message is
// complete and ok=false if the fragment was discarded (a gap was detected
// in this message).
func (r *Reassembler) Accept(msgID uint64, f Fragment, msgTotal int) (done, ok bool) {
	if r.active && msgID != r.msgID {
		// The previous message never finished: its tail was lost.
		r.Abandoned++
		r.reset()
	}
	if !r.active {
		if f.Index != 0 {
			// Head of this message was lost; discard the rest as they come.
			r.active = true
			r.broken = true
			r.msgID = msgID
		} else {
			r.active = true
			r.broken = false
			r.msgID = msgID
			r.total = msgTotal
			r.received = 0
			r.nextIdx = 0
		}
	}
	if r.broken {
		if f.Last {
			r.Abandoned++
			r.reset()
		}
		return false, false
	}
	if f.Index != r.nextIdx || msgTotal != r.total {
		r.broken = true
		if f.Last {
			r.Abandoned++
			r.reset()
		}
		return false, false
	}
	r.nextIdx++
	r.received += f.Size
	if f.Last {
		r.reset()
		return true, true
	}
	return false, true
}

// Abort drops any partial state (connection teardown).
func (r *Reassembler) Abort() { r.reset() }

func (r *Reassembler) reset() {
	r.active = false
	r.broken = false
	r.total = 0
	r.received = 0
	r.nextIdx = 0
}
