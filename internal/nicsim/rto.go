package nicsim

import (
	"fmt"

	"vibe/internal/sim"
)

// rtoBackoffCap bounds exponential backoff at Base << rtoBackoffCap.
const rtoBackoffCap = 6

// RTO is the retransmission-timeout policy for one reliable connection:
// it tracks forward progress of the oldest unacked sequence, escalates
// the timeout exponentially (with a cap) while the window is stalled,
// and decides when the sender must give up. With Adaptive set it also
// runs the classic Jacobson/Karn estimator (SRTT + 4·RTTVAR from ack
// round-trip samples of never-retransmitted packets) instead of the
// fixed base timeout.
//
// The zero value is unusable; initialize with Init.
type RTO struct {
	// Base is the configured retransmission timeout — the fixed interval
	// in legacy mode, the estimator's starting point and clamp anchor in
	// adaptive mode.
	Base sim.Duration

	// MaxStalls is the give-up threshold: the connection is declared
	// dead after more than MaxStalls consecutive timeouts without the
	// oldest unacked sequence advancing.
	MaxStalls int

	// Adaptive enables the RTT estimator.
	Adaptive bool

	// lastSeq / stalls implement the no-progress policy. lastSeq starts
	// at a sentinel so the first timeout always counts from zero.
	lastSeq uint64
	stalls  int

	// Estimator state (adaptive mode).
	srtt, rttvar sim.Duration
	sampled      bool

	// Backoffs counts timeouts that fired with an escalated interval —
	// every consecutive stall past the first.
	Backoffs uint64
}

// Init configures the policy and resets all state.
func (r *RTO) Init(base sim.Duration, maxStalls int, adaptive bool) {
	*r = RTO{Base: base, MaxStalls: maxStalls, Adaptive: adaptive}
	r.lastSeq = ^uint64(0) // sentinel: no timeout observed yet
}

// Timeout returns the current retransmission interval before backoff:
// the fixed base, or the estimator's SRTT + 4·RTTVAR clamped to
// [Base/4, Base<<rtoBackoffCap] once a sample exists.
func (r *RTO) Timeout() sim.Duration {
	if !r.Adaptive || !r.sampled {
		return r.Base
	}
	d := r.srtt + 4*r.rttvar
	if min := r.Base / 4; d < min {
		d = min
	}
	if max := r.Base << rtoBackoffCap; d > max {
		d = max
	}
	return d
}

// Sample feeds one ack round-trip measurement to the estimator. Callers
// must apply Karn's algorithm: only sample packets that were never
// retransmitted, so a retransmission's ack cannot be mis-attributed.
func (r *RTO) Sample(rtt sim.Duration) {
	if !r.Adaptive || rtt < 0 {
		return
	}
	if !r.sampled {
		r.srtt = rtt
		r.rttvar = rtt / 2
		r.sampled = true
		return
	}
	diff := r.srtt - rtt
	if diff < 0 {
		diff = -diff
	}
	r.rttvar += (diff - r.rttvar) / 4
	r.srtt += (rtt - r.srtt) / 8
}

// Stalled records one timeout of the window's oldest unacked sequence
// and reports whether the sender must give up: more than MaxStalls
// consecutive timeouts without that sequence advancing. Progress resets
// the stall count, so a long recovering window does not accumulate
// spurious retries.
func (r *RTO) Stalled(oldestSeq uint64) (giveUp bool) {
	if oldestSeq != r.lastSeq {
		r.lastSeq = oldestSeq
		r.stalls = 0
	}
	r.stalls++
	return r.stalls > r.MaxStalls
}

// Backoff returns the interval to wait before the next retransmission
// check: the current timeout left-shifted once per consecutive stall
// beyond the first, capped at Base << rtoBackoffCap. It must be called
// after Stalled on the same timeout event; escalated intervals count in
// Backoffs.
func (r *RTO) Backoff() sim.Duration {
	d := r.Timeout()
	if r.stalls > 1 {
		r.Backoffs++
		d <<= uint(r.stalls - 1)
	}
	if max := r.Base << rtoBackoffCap; d > max {
		d = max
	}
	return d
}

func (r *RTO) String() string {
	return fmt.Sprintf("rto{timeout=%s stalls=%d adaptive=%v}", r.Timeout(), r.stalls, r.Adaptive)
}
