package nicsim

// Buffer pool size classes: powers of two from 16 bytes to 64 KiB, which
// spans every wire MTU the provider models use. Larger requests fall
// through to the allocator.
const (
	minBufClass = 4  // 16 B
	maxBufClass = 16 // 64 KiB

	// maxPerClass bounds each class's free list so a burst does not pin
	// memory for the rest of the run.
	maxPerClass = 256
)

// BufPool is an engine-local free list for wire payload buffers. The NIC
// models allocate one payload snapshot per fragment; on the bandwidth
// sweeps that is tens of thousands of short-lived slices per run. Recycling
// them through a pool keeps the per-fragment hot path allocation-free.
//
// A BufPool is NOT safe for concurrent use: it is meant to be owned by one
// simulation engine, whose processes already run strictly one at a time.
// Buffers returned by Get are dirty — callers must fully overwrite the
// requested length, which the NIC gather path always does.
type BufPool struct {
	free [maxBufClass + 1][][]byte

	// Gets counts Get calls served (excluding zero-length requests); Hits
	// counts how many were satisfied from the free list.
	Gets, Hits uint64
}

// NewBufPool returns an empty pool.
func NewBufPool() *BufPool { return &BufPool{} }

// classFor returns the smallest class whose buffers hold n bytes.
// Precondition: n <= 1<<maxBufClass.
func classFor(n int) int {
	c := minBufClass
	for 1<<c < n {
		c++
	}
	return c
}

// Get returns a buffer of length n, reusing a pooled one when available.
// Zero-length requests return nil.
func (p *BufPool) Get(n int) []byte {
	if n == 0 {
		return nil
	}
	p.Gets++
	if n > 1<<maxBufClass {
		return make([]byte, n)
	}
	c := classFor(n)
	l := p.free[c]
	if len(l) == 0 {
		return make([]byte, n, 1<<c)
	}
	buf := l[len(l)-1]
	l[len(l)-1] = nil
	p.free[c] = l[:len(l)-1]
	p.Hits++
	return buf[:n]
}

// Put returns b to the pool. Only buffers whose capacity is exactly a pool
// class size are kept (i.e. buffers that came from Get); anything else is
// left to the garbage collector. The caller must not retain b afterwards.
func (p *BufPool) Put(b []byte) {
	c := cap(b)
	if c < 1<<minBufClass || c > 1<<maxBufClass || c&(c-1) != 0 {
		return
	}
	cl := classFor(c)
	if len(p.free[cl]) >= maxPerClass {
		return
	}
	p.free[cl] = append(p.free[cl], b[:c])
}
