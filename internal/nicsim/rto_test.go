package nicsim

import (
	"testing"

	"vibe/internal/sim"
)

func TestRTOLegacyBackoffLadder(t *testing.T) {
	var r RTO
	base := sim.Millisecond
	r.Init(base, 6, false)
	if r.Timeout() != base {
		t.Fatalf("Timeout = %v, want %v", r.Timeout(), base)
	}

	// Consecutive timeouts of the same stuck sequence escalate 1, 2, 4,
	// ... up to the cap; the first interval is not a backoff.
	want := []sim.Duration{
		base, 2 * base, 4 * base, 8 * base, 16 * base, 32 * base,
	}
	for i, w := range want {
		if giveUp := r.Stalled(7); giveUp != (i >= 6) {
			t.Fatalf("stall %d: giveUp = %v", i+1, giveUp)
		}
		if d := r.Backoff(); d != w {
			t.Fatalf("stall %d: Backoff = %v, want %v", i+1, d, w)
		}
	}
	if r.Backoffs != uint64(len(want)-1) {
		t.Fatalf("Backoffs = %d, want %d", r.Backoffs, len(want)-1)
	}

	// The seventh consecutive stall crosses MaxStalls=6, and the interval
	// stays capped at Base << rtoBackoffCap.
	if !r.Stalled(7) {
		t.Fatal("stall 7 should give up with MaxStalls=6")
	}
	if d, max := r.Backoff(), base<<rtoBackoffCap; d != max {
		t.Fatalf("capped Backoff = %v, want %v", d, max)
	}
}

func TestRTOProgressResetsStalls(t *testing.T) {
	var r RTO
	r.Init(sim.Millisecond, 3, false)
	for i := 0; i < 3; i++ {
		if r.Stalled(10) {
			t.Fatalf("gave up after %d stalls with MaxStalls=3", i+1)
		}
	}
	// The oldest unacked sequence advanced: the window made progress, so
	// the retry budget refills and backoff restarts from the base.
	if r.Stalled(11) {
		t.Fatal("gave up on first stall of a new sequence")
	}
	if d := r.Backoff(); d != sim.Millisecond {
		t.Fatalf("Backoff after progress = %v, want base", d)
	}
}

func TestRTOAdaptiveEstimator(t *testing.T) {
	var r RTO
	base := sim.Millisecond
	r.Init(base, 6, true)

	// Before any sample the adaptive policy falls back to the base.
	if r.Timeout() != base {
		t.Fatalf("unsampled Timeout = %v, want %v", r.Timeout(), base)
	}

	// First sample seeds SRTT = rtt, RTTVAR = rtt/2 -> rtt + 4*(rtt/2).
	rtt := 100 * sim.Microsecond
	r.Sample(rtt)
	if want := rtt + 4*(rtt/2); r.Timeout() != want {
		t.Fatalf("after first sample Timeout = %v, want %v", r.Timeout(), want)
	}

	// Steady identical samples shrink RTTVAR toward zero; with SRTT at
	// 100us the timeout lands on the Base/4 floor.
	for i := 0; i < 100; i++ {
		r.Sample(rtt)
	}
	if d := r.Timeout(); d != base/4 {
		t.Fatalf("converged Timeout = %v, want floor %v", d, base/4)
	}

	// A huge sample cannot push the timeout past the cap.
	for i := 0; i < 50; i++ {
		r.Sample(10 * sim.Second)
	}
	if d, max := r.Timeout(), base<<rtoBackoffCap; d != max {
		t.Fatalf("Timeout after spike = %v, want cap %v", d, max)
	}

	// Negative samples (clock confusion) are ignored.
	before := r.Timeout()
	r.Sample(-sim.Millisecond)
	if r.Timeout() != before {
		t.Fatal("negative sample changed the estimator")
	}
}

func TestRTOSampleIgnoredWhenLegacy(t *testing.T) {
	var r RTO
	r.Init(sim.Millisecond, 6, false)
	r.Sample(5 * sim.Microsecond)
	if r.Timeout() != sim.Millisecond {
		t.Fatalf("legacy Timeout moved to %v after Sample", r.Timeout())
	}
}

func TestRTOInitResets(t *testing.T) {
	var r RTO
	r.Init(sim.Millisecond, 2, true)
	r.Sample(50 * sim.Microsecond)
	r.Stalled(3)
	r.Stalled(3)
	r.Backoff()
	r.Init(2*sim.Millisecond, 4, false)
	if r.Timeout() != 2*sim.Millisecond || r.Backoffs != 0 {
		t.Fatalf("Init did not reset: %v backoffs=%d", r.Timeout(), r.Backoffs)
	}
	// The sentinel makes the first post-Init timeout count as a fresh
	// stall even for sequence 0... including the max sentinel value.
	if r.Stalled(0) {
		t.Fatal("first stall after Init gave up")
	}
	if d := r.Backoff(); d != 2*sim.Millisecond {
		t.Fatalf("first Backoff after Init = %v", d)
	}
}
