package stream

import (
	"io"
	"testing"

	"vibe/internal/provider"
	"vibe/internal/via"
)

// Regression: a large one-way transfer ending in Close must not gridlock
// on below-threshold window updates (both sides stalled in their control
// paths). This is the failure mode the data/control window split fixes.
func TestLargeTransferCloseNoGridlock(t *testing.T) {
	sys := via.NewSystem(provider.MVIA(), 2, 21)
	const total = 2 << 20
	sys.Go(0, "w", func(ctx *via.Ctx) {
		c, err := Dial(ctx, 1, "f", DefaultConfig())
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, total)
		if _, err := c.Write(ctx, buf); err != nil {
			t.Error(err)
			return
		}
		t.Logf("writer done write, window=%d stalls=%d", c.Window(), c.WindowStalls)
		if err := c.Close(ctx); err != nil {
			t.Error(err)
			return
		}
		t.Logf("writer closed")
	})
	sys.Go(1, "r", func(ctx *via.Ctx) {
		c, err := Listen(ctx, "f", DefaultConfig())
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 16384)
		got := 0
		for {
			n, err := c.Read(ctx, buf)
			got += n
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Error(err)
				return
			}
		}
		t.Logf("reader got %d", got)
	})
	if err := sys.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
}
