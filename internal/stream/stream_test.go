package stream

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"vibe/internal/provider"
	"vibe/internal/sim"
	"vibe/internal/via"
)

// runPairConn wires a dialer and a listener and runs both callbacks.
func runPairConn(t *testing.T, m *provider.Model, cfg Config,
	client func(ctx *via.Ctx, c *Conn) error,
	server func(ctx *via.Ctx, c *Conn) error) {
	t.Helper()
	sys := via.NewSystem(m, 2, 1)
	sys.Go(0, "dialer", func(ctx *via.Ctx) {
		c, err := Dial(ctx, 1, "svc", cfg)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		if err := client(ctx, c); err != nil {
			t.Errorf("client: %v", err)
		}
	})
	sys.Go(1, "listener", func(ctx *via.Ctx) {
		c, err := Listen(ctx, "svc", cfg)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		if err := server(ctx, c); err != nil {
			t.Errorf("server: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

// pattern fills a byte slice deterministically.
func pattern(n int, seed byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = seed + byte(i*13)
	}
	return p
}

// readFull reads exactly n bytes.
func readFull(ctx *via.Ctx, c *Conn, n int) ([]byte, error) {
	out := make([]byte, n)
	got := 0
	for got < n {
		k, err := c.Read(ctx, out[got:])
		if err != nil {
			return out[:got], err
		}
		got += k
	}
	return out, nil
}

func TestStreamEcho(t *testing.T) {
	for _, m := range provider.All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			msg := pattern(3000, 7)
			runPairConn(t, m, DefaultConfig(),
				func(ctx *via.Ctx, c *Conn) error {
					if _, err := c.Write(ctx, msg); err != nil {
						return err
					}
					got, err := readFull(ctx, c, len(msg))
					if err != nil {
						return err
					}
					if !bytes.Equal(got, msg) {
						t.Error("echo mismatch")
					}
					return c.Close(ctx)
				},
				func(ctx *via.Ctx, c *Conn) error {
					got, err := readFull(ctx, c, len(msg))
					if err != nil {
						return err
					}
					if _, err := c.Write(ctx, got); err != nil {
						return err
					}
					// Drain to EOF so the FIN is consumed.
					_, err = readFull(ctx, c, 1)
					if err != io.EOF {
						t.Errorf("want EOF, got %v", err)
					}
					return nil
				})
		})
	}
}

func TestStreamLargeTransferOddSizes(t *testing.T) {
	// 300KB written in awkward chunk sizes, read in different awkward
	// sizes: byte-stream semantics must reassemble exactly.
	const total = 300 * 1024
	want := pattern(total, 3)
	runPairConn(t, provider.CLAN(), DefaultConfig(),
		func(ctx *via.Ctx, c *Conn) error {
			off := 0
			chunk := 1
			for off < total {
				n := chunk
				if off+n > total {
					n = total - off
				}
				if _, err := c.Write(ctx, want[off:off+n]); err != nil {
					return err
				}
				off += n
				chunk = chunk*3 + 7 // 1, 10, 37, 118, ...
				if chunk > 40000 {
					chunk = 13
				}
			}
			return c.Close(ctx)
		},
		func(ctx *via.Ctx, c *Conn) error {
			var got []byte
			buf := make([]byte, 7777)
			for {
				n, err := c.Read(ctx, buf)
				got = append(got, buf[:n]...)
				if err == io.EOF {
					break
				}
				if err != nil {
					return err
				}
			}
			if len(got) != total {
				t.Fatalf("got %d bytes, want %d", len(got), total)
			}
			if !bytes.Equal(got, want) {
				t.Error("stream corrupted")
			}
			return nil
		})
}

func TestStreamWindowStallsSlowReader(t *testing.T) {
	// A tiny window with a reader that sleeps: the writer must stall on
	// flow control, not lose data or break the connection.
	cfg := Config{Segment: 1024, RingSlots: 2}
	const total = 64 * 1024
	want := pattern(total, 9)
	var stalls uint64
	runPairConn(t, provider.CLAN(), cfg,
		func(ctx *via.Ctx, c *Conn) error {
			if _, err := c.Write(ctx, want); err != nil {
				return err
			}
			stalls = c.WindowStalls
			return c.Close(ctx)
		},
		func(ctx *via.Ctx, c *Conn) error {
			got := 0
			buf := make([]byte, 3000)
			for got < total {
				ctx.Sleep(200 * sim.Microsecond) // slow consumer
				n, err := c.Read(ctx, buf)
				if err != nil {
					return err
				}
				for i := 0; i < n; i++ {
					if buf[i] != want[got+i] {
						t.Fatalf("byte %d corrupted", got+i)
					}
				}
				got += n
			}
			return nil
		})
	if stalls == 0 {
		t.Fatal("writer never stalled on the window; flow control inert")
	}
}

func TestStreamBidirectional(t *testing.T) {
	// Full-duplex traffic: both sides write 40KB while reading 40KB.
	const total = 40 * 1024
	do := func(seed byte) func(ctx *via.Ctx, c *Conn) error {
		return func(ctx *via.Ctx, c *Conn) error {
			out := pattern(total, seed)
			in := make([]byte, 0, total)
			buf := make([]byte, 4096)
			sent := 0
			for sent < total || len(in) < total {
				if sent < total {
					n := 4096
					if sent+n > total {
						n = total - sent
					}
					if _, err := c.Write(ctx, out[sent:sent+n]); err != nil {
						return err
					}
					sent += n
				}
				if len(in) < total {
					n, err := c.Read(ctx, buf)
					if err != nil && err != io.EOF {
						return err
					}
					in = append(in, buf[:n]...)
				}
			}
			other := seed ^ 0xFF
			if !bytes.Equal(in, pattern(total, other)) {
				t.Error("bidirectional stream corrupted")
			}
			return nil
		}
	}
	runPairConn(t, provider.BVIA(), DefaultConfig(), do(0x00), do(0xFF))
}

func TestStreamClosedSemantics(t *testing.T) {
	runPairConn(t, provider.CLAN(), DefaultConfig(),
		func(ctx *via.Ctx, c *Conn) error {
			if err := c.Close(ctx); err != nil {
				return err
			}
			if _, err := c.Write(ctx, []byte("x")); !errors.Is(err, ErrClosed) {
				t.Errorf("write after close: %v", err)
			}
			if _, err := c.Read(ctx, make([]byte, 1)); !errors.Is(err, ErrClosed) {
				t.Errorf("read after close: %v", err)
			}
			if err := c.Close(ctx); !errors.Is(err, ErrClosed) {
				t.Errorf("double close: %v", err)
			}
			return nil
		},
		func(ctx *via.Ctx, c *Conn) error {
			if _, err := readFull(ctx, c, 1); err != io.EOF {
				t.Errorf("want EOF, got %v", err)
			}
			return nil
		})
}

func TestStreamZeroReadAndSegmentClamp(t *testing.T) {
	cfg := Config{Segment: 1 << 20, RingSlots: 2} // clamped to max transfer
	runPairConn(t, provider.BVIA(), cfg,
		func(ctx *via.Ctx, c *Conn) error {
			if n, err := c.Read(ctx, nil); n != 0 || err != nil {
				t.Errorf("zero read: %d %v", n, err)
			}
			if c.cfg.Segment+headerBytes > 32*1024 {
				t.Errorf("segment not clamped: %d", c.cfg.Segment)
			}
			_, err := c.Write(ctx, pattern(50000, 1)) // spans several segments
			if err != nil {
				return err
			}
			return c.Close(ctx)
		},
		func(ctx *via.Ctx, c *Conn) error {
			got, err := readFull(ctx, c, 50000)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, pattern(50000, 1)) {
				t.Error("clamped-segment stream corrupted")
			}
			return nil
		})
}

func TestStreamDeterminism(t *testing.T) {
	run := func() uint64 {
		sys := via.NewSystem(provider.MVIA(), 2, 3)
		var endAt uint64
		sys.Go(0, "d", func(ctx *via.Ctx) {
			c, err := Dial(ctx, 1, "svc", DefaultConfig())
			if err != nil {
				t.Error(err)
				return
			}
			c.Write(ctx, pattern(20000, 5))
			c.Close(ctx)
			endAt = uint64(ctx.Now())
		})
		sys.Go(1, "l", func(ctx *via.Ctx) {
			c, err := Listen(ctx, "svc", DefaultConfig())
			if err != nil {
				t.Error(err)
				return
			}
			readFull(ctx, c, 20000)
		})
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		return endAt
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %d vs %d", a, b)
	}
}
