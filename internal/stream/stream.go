// Package stream is a sockets-like byte-stream programming-model layer
// over the VIA substrate, modeled on the paper's reference [17] (Shah,
// Pu, Madukkarumukumana: "High Performance Sockets and RPC over Virtual
// Interface (VI) Architecture"). It provides ordered, reliable,
// flow-controlled byte streams with Dial/Listen/Read/Write/Close
// semantics on top of VIA message descriptors.
//
// Design choices driven by VIBe measurements:
//
//   - All buffers (the receive ring and the send staging buffers) are
//     registered once at connection setup — Figure 1 prices registration
//     far too high to pay per operation.
//   - Payloads are segmented to one VIA message per ring slot, with
//     slot-granularity window updates returned as data slots drain (the
//     receiver may Read slowly, so the window — not the wire — paces the
//     sender); control messages ride reserved headroom slots, mirroring
//     the credit design of [17].
//   - Two alternating send staging buffers keep a segment in flight while
//     the next is being staged, recovering most of the pipeline the
//     copy costs (Figure 3's M-VIA curves) would otherwise forfeit.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"vibe/internal/sim"
	"vibe/internal/via"
	"vibe/internal/vmem"
)

// Config tunes the stream layer.
type Config struct {
	// Segment is the largest payload per underlying VIA message (and the
	// ring slot size).
	Segment int
	// RingSlots is the receive-ring depth per connection; Segment *
	// RingSlots is the receive window in bytes.
	RingSlots int
	// Timeout bounds connection setup.
	Timeout sim.Duration
}

// DefaultConfig returns production-shaped defaults (a 64 KB window of
// 8 KB segments).
func DefaultConfig() Config {
	return Config{Segment: 8 * 1024, RingSlots: 8, Timeout: 30 * sim.Second}
}

// ctlHeadroom is the number of ring slots reserved for control messages
// (window updates and FIN). Data is flow-controlled to RingSlots -
// ctlHeadroom, and the protocol bounds in-flight control traffic below
// the headroom: updates flow only in response to the peer's own data, at
// most one per drained data slot, and a closed writer's ring can still
// absorb the trailing updates for its last window of data.
const ctlHeadroom = 4

func (c Config) normalized(maxXfer int) Config {
	if c.Segment < 256 {
		c.Segment = 256
	}
	if c.Segment+headerBytes > maxXfer {
		c.Segment = maxXfer - headerBytes
	}
	if c.RingSlots < ctlHeadroom+2 {
		c.RingSlots = ctlHeadroom + 2
	}
	if c.Timeout == 0 {
		c.Timeout = 30 * sim.Second
	}
	return c
}

// Wire header: [kind:1][pad:3][n:4].
const headerBytes = 8

const (
	kindData   = 1 // n payload bytes follow
	kindWindow = 2 // n = bytes the receiver freed
	kindFin    = 3 // orderly close
)

// ErrClosed is returned for operations on a closed connection.
var ErrClosed = errors.New("stream: connection closed")

// memcpyPerByte models the host's copy rate for staging writes and
// draining reads (~100 MB/s on the paper's testbed). Like real sockets
// over VIA, the stream layer is copy-based on both sides — the price [17]
// pays for byte semantics.
const memcpyPerByte = 10 * sim.Nanosecond

// Listen blocks until a stream connection request arrives for the given
// service name and returns the accepted connection, mirroring a listening
// socket's accept.
func Listen(ctx *via.Ctx, service string, cfg Config) (*Conn, error) {
	nic := ctx.OpenNic()
	cfg = cfg.normalized(nic.Attributes().MaxTransferSize)
	vi, err := newStreamVi(ctx, nic)
	if err != nil {
		return nil, err
	}
	c, err := newConn(ctx, nic, vi, cfg)
	if err != nil {
		return nil, err
	}
	req, err := nic.ConnectWait(ctx, "stream:"+service, cfg.Timeout)
	if err != nil {
		return nil, err
	}
	if err := req.Accept(ctx, vi); err != nil {
		return nil, err
	}
	return c, nil
}

// Dial connects to a listening service on the remote host.
func Dial(ctx *via.Ctx, remote int, service string, cfg Config) (*Conn, error) {
	nic := ctx.OpenNic()
	cfg = cfg.normalized(nic.Attributes().MaxTransferSize)
	vi, err := newStreamVi(ctx, nic)
	if err != nil {
		return nil, err
	}
	c, err := newConn(ctx, nic, vi, cfg)
	if err != nil {
		return nil, err
	}
	host := ctx.Host.System().Host(remote)
	if err := vi.ConnectRequest(ctx, host.ID(), "stream:"+service, cfg.Timeout); err != nil {
		return nil, err
	}
	return c, nil
}

func newStreamVi(ctx *via.Ctx, nic *via.Nic) (*via.Vi, error) {
	return nic.CreateVi(ctx, via.ViAttributes{Reliability: via.ReliableDelivery}, nil, nil)
}

// regBuf is a registered buffer.
type regBuf struct {
	buf *vmem.Buffer
	h   via.MemHandle
}

// Conn is a reliable, ordered, flow-controlled byte stream.
type Conn struct {
	ctx *via.Ctx
	nic *via.Nic
	vi  *via.Vi
	cfg Config

	ring   []regBuf
	posted []int // ring indices in posting order

	// unread holds arrived-but-unconsumed data as (slot, from, to) spans.
	unread []span

	// dataWindow is the sender-side count of data slots the peer can still
	// absorb (control messages are exempt: they use the reserved
	// headroom).
	dataWindow int
	// freedData counts drained data slots not yet reported to the peer.
	freedData int

	bounce   [2]regBuf // alternating send staging buffers
	bounceI  int
	inFlight int // staged sends not yet retired

	peerFin bool
	closed  bool

	// Counters for tests.
	BytesSent     uint64
	BytesReceived uint64
	WindowUpdates uint64
	WindowStalls  uint64
}

// span is a range of unread payload inside a ring slot.
type span struct {
	slot     int
	from, to int
}

func newConn(ctx *via.Ctx, nic *via.Nic, vi *via.Vi, cfg Config) (*Conn, error) {
	c := &Conn{
		ctx:        ctx,
		nic:        nic,
		vi:         vi,
		cfg:        cfg,
		dataWindow: cfg.RingSlots - ctlHeadroom,
	}
	slot := headerBytes + cfg.Segment
	for i := 0; i < cfg.RingSlots; i++ {
		buf := ctx.Malloc(slot)
		h, err := nic.RegisterMem(ctx, buf)
		if err != nil {
			return nil, err
		}
		c.ring = append(c.ring, regBuf{buf: buf, h: h})
		if err := vi.PostRecv(ctx, via.SimpleRecv(buf, h, slot)); err != nil {
			return nil, err
		}
		c.posted = append(c.posted, i)
	}
	for i := range c.bounce {
		buf := ctx.Malloc(slot)
		h, err := nic.RegisterMem(ctx, buf)
		if err != nil {
			return nil, err
		}
		c.bounce[i] = regBuf{buf: buf, h: h}
	}
	return c, nil
}

// Write sends all of p, blocking as the peer's window requires. It
// returns len(p) unless the connection fails.
func (c *Conn) Write(ctx *via.Ctx, p []byte) (int, error) {
	if c.closed {
		return 0, ErrClosed
	}
	written := 0
	for written < len(p) {
		n := len(p) - written
		if n > c.cfg.Segment {
			n = c.cfg.Segment
		}
		// Opportunistically absorb window updates (and a possible FIN) so
		// the peer's control traffic never piles up in our ring.
		if err := c.drain(ctx); err != nil {
			return written, err
		}
		// Respect the receiver's window. Accounting is slot-granular: a
		// short segment still occupies a whole ring slot at the peer.
		stalled := false
		for c.dataWindow == 0 {
			if !stalled {
				c.WindowStalls++
				stalled = true
			}
			if err := c.pump(ctx); err != nil {
				return written, err
			}
			if err := c.flushUpdates(ctx); err != nil {
				return written, err
			}
		}
		// Stage into the next bounce buffer; keep at most one send in
		// flight per buffer.
		if c.inFlight >= len(c.bounce) {
			if err := c.retireSend(ctx); err != nil {
				return written, err
			}
		}
		b := c.bounce[c.bounceI]
		c.bounceI = (c.bounceI + 1) % len(c.bounce)
		hdr := b.buf.Bytes()
		hdr[0] = kindData
		binary.LittleEndian.PutUint32(hdr[4:], uint32(n))
		copy(hdr[headerBytes:], p[written:written+n])
		ctx.Compute(sim.Duration(n) * memcpyPerByte)
		d := &via.Descriptor{Op: via.OpSend, Segs: []via.DataSegment{{
			Addr: b.buf.Addr(), Handle: b.h, Length: headerBytes + n}}}
		if err := c.vi.PostSend(ctx, d); err != nil {
			return written, err
		}
		c.inFlight++
		c.dataWindow--
		written += n
		c.BytesSent += uint64(n)
	}
	return written, nil
}

// Read fills p with at least one byte (blocking until data arrives) and
// returns the count; it returns io.EOF after the peer closes and all data
// has been drained.
func (c *Conn) Read(ctx *via.Ctx, p []byte) (int, error) {
	if c.closed {
		return 0, ErrClosed
	}
	if len(p) == 0 {
		return 0, nil
	}
	for len(c.unread) == 0 {
		if c.peerFin {
			return 0, io.EOF
		}
		if err := c.pump(ctx); err != nil {
			return 0, err
		}
	}
	read := 0
	for read < len(p) && len(c.unread) > 0 {
		s := &c.unread[0]
		data := c.ring[s.slot].buf.Bytes()[s.from:s.to]
		n := copy(p[read:], data)
		ctx.Compute(sim.Duration(n) * memcpyPerByte)
		read += n
		s.from += n
		if s.from == s.to {
			// Slot drained: repost it and owe the sender a window update.
			c.unread = c.unread[1:]
			rb := c.ring[s.slot]
			if err := c.vi.PostRecv(ctx, via.SimpleRecv(rb.buf, rb.h, headerBytes+c.cfg.Segment)); err != nil {
				return read, err
			}
			c.posted = append(c.posted, s.slot)
			c.freedData++
			if err := c.flushUpdates(ctx); err != nil {
				return read, err
			}
		}
	}
	c.BytesReceived += uint64(read)
	return read, nil
}

// flushUpdates returns freed data slots to the sender, batching to half
// the data window (as [17] does) — except when the sender's view of our
// window may have reached zero, in which case any owed slots flush
// immediately so the sender can never stall forever on an update below
// the batching threshold.
func (c *Conn) flushUpdates(ctx *via.Ctx) error {
	if c.freedData == 0 {
		return nil
	}
	dataCap := c.cfg.RingSlots - ctlHeadroom
	peerView := dataCap - c.freedData - len(c.unread)
	if c.freedData < dataCap/2 && peerView > 0 {
		return nil
	}
	n := c.freedData
	c.freedData = 0
	c.WindowUpdates++
	return c.sendCtl(ctx, kindWindow, n)
}

// sendCtl sends a control message. Control is exempt from the data
// window: it rides the ctlHeadroom ring slots the protocol reserves.
func (c *Conn) sendCtl(ctx *via.Ctx, kind byte, n int) error {
	if c.inFlight >= len(c.bounce) {
		if err := c.retireSend(ctx); err != nil {
			return err
		}
	}
	b := c.bounce[c.bounceI]
	c.bounceI = (c.bounceI + 1) % len(c.bounce)
	hdr := b.buf.Bytes()
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[4:], uint32(n))
	d := &via.Descriptor{Op: via.OpSend, Segs: []via.DataSegment{{
		Addr: b.buf.Addr(), Handle: b.h, Length: headerBytes}}}
	if err := c.vi.PostSend(ctx, d); err != nil {
		return err
	}
	c.inFlight++
	return nil
}

// retireSend completes the oldest staged send.
func (c *Conn) retireSend(ctx *via.Ctx) error {
	d, err := c.vi.SendWaitPoll(ctx)
	if err != nil {
		return err
	}
	if d.Status != via.StatusSuccess {
		return fmt.Errorf("stream: send failed: %v", d.Status)
	}
	c.inFlight--
	return nil
}

// pump blocks for one inbound message and processes it.
func (c *Conn) pump(ctx *via.Ctx) error {
	d, err := c.vi.RecvWaitPoll(ctx)
	if err != nil {
		return err
	}
	return c.process(ctx, d)
}

// drain processes any already-completed inbound messages without
// blocking.
func (c *Conn) drain(ctx *via.Ctx) error {
	for {
		d, ok := c.vi.RecvDone(ctx)
		if !ok {
			return nil
		}
		if err := c.process(ctx, d); err != nil {
			return err
		}
	}
}

func (c *Conn) process(ctx *via.Ctx, d *via.Descriptor) error {
	if d.Status != via.StatusSuccess {
		return fmt.Errorf("stream: receive failed: %v", d.Status)
	}
	slot := c.posted[0]
	c.posted = c.posted[1:]
	hdr := c.ring[slot].buf.Bytes()
	kind := hdr[0]
	n := int(binary.LittleEndian.Uint32(hdr[4:]))
	switch kind {
	case kindData:
		c.unread = append(c.unread, span{slot: slot, from: headerBytes, to: headerBytes + n})
		return nil // slot stays consumed until Read drains it
	case kindWindow:
		c.dataWindow += n
	case kindFin:
		c.peerFin = true
	default:
		return fmt.Errorf("stream: unknown message kind %d", kind)
	}
	// Control messages free their slot immediately; they are not part of
	// the data window, so nothing is reported.
	rb := c.ring[slot]
	if err := c.vi.PostRecv(ctx, via.SimpleRecv(rb.buf, rb.h, headerBytes+c.cfg.Segment)); err != nil {
		return err
	}
	c.posted = append(c.posted, slot)
	return nil
}

// Close sends an orderly FIN and retires outstanding sends. Reads on the
// peer return io.EOF once drained.
func (c *Conn) Close(ctx *via.Ctx) error {
	if c.closed {
		return ErrClosed
	}
	if err := c.sendCtl(ctx, kindFin, 0); err != nil {
		return err
	}
	for c.inFlight > 0 {
		if err := c.retireSend(ctx); err != nil {
			return err
		}
	}
	c.closed = true
	return nil
}

// Window reports the sender-side view of the peer's receive window in
// bytes (for tests).
func (c *Conn) Window() int { return c.dataWindow * c.cfg.Segment }
