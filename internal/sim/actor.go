package sim

// This file is the continuation-actor API: a way to run a queue consumer
// entirely on the event loop, with zero goroutine handoffs, while keeping
// the goroutine Proc API available for the same logic.
//
// A Machine describes one consumer as an explicit state machine. The
// machine's code is written once and driven two ways:
//
//   - Queue.ServeProc runs it on a goroutine process — the reference
//     model, one Sleep per transition, easiest to relate to ordinary
//     process code.
//   - Queue.Serve runs it as a service on the event loop — every
//     transition is a closure-free continuation event, so a simulation
//     dominated by hot machines never leaves the dispatch loop.
//
// Determinism contract: both drivers allocate engine events at identical
// (time, seq) positions. A Push wakes an idle consumer by scheduling
// exactly one event at the current instant (the Signal wake in the Proc
// driver, the pump event in the service); a transition returning (d, pc)
// allocates exactly one event at now+d (the Sleep wake, the continuation
// event); Begin and Step bodies run inside the dispatched event in both.
// Since the engine orders all events by the (at, seq) total order, the
// two drivers dispatch byte-identical event streams — results, metrics
// and traces cannot tell them apart.

// StepDone is returned as the next state when the machine is finished
// with the current item. The paired Duration must be zero: the drivers
// do not sleep before popping the next item, exactly like a goroutine
// loop that ends an iteration and re-enters Pop.
const StepDone = -1

// pcPump marks the internal service event scheduled by Push to start an
// idle service; it carries no machine state.
const pcPump = -2

// Machine is a queue consumer written as an explicit state machine.
//
// Begin runs when an item is popped and executes up to the first sleep,
// returning (d, pc): "sleep d of virtual time, then resume at state pc".
// Step(pc) executes the segment after that sleep up to the next one.
// Returning StepDone (with d == 0) ends the item; the driver pops the
// next item immediately, or goes idle when the queue is empty.
//
// A segment that reaches the next segment without sleeping should call
// its own Step(pc) inline and return the result — the fall-through is a
// plain function call, not a scheduling point, matching code that simply
// runs on in the goroutine model.
type Machine[T any] interface {
	Begin(item T) (Duration, int)
	Step(pc int) (Duration, int)
}

// stepper is the untyped hook continuation events dispatch through. It is
// implemented by *service[T]; storing the interface in the event avoids
// making the event (and the engine) generic, and converting a pointer to
// an interface does not allocate.
type stepper interface {
	step(pc int)
}

// service drives a Machine from a Queue on the event loop.
type service[T any] struct {
	eng  *Engine
	q    *Queue[T]
	m    Machine[T]
	idle bool
}

// notify is the service-side analogue of Signal: Push calls it and it
// schedules the pump event only on the empty→non-empty transition, the
// same single wake event the Proc driver's Signal would schedule.
func (s *service[T]) notify() {
	if !s.idle {
		return
	}
	s.idle = false
	s.eng.atStep(s.eng.now, s, pcPump)
}

// step runs one dispatched continuation: the pending machine segment,
// then as many whole items as complete without sleeping, then either
// schedules the next continuation or goes idle.
func (s *service[T]) step(pc int) {
	var d Duration
	next := StepDone
	if pc != pcPump {
		d, next = s.m.Step(pc)
	}
	for next == StepDone {
		v, ok := s.q.TryPop()
		if !ok {
			s.idle = true
			return
		}
		d, next = s.m.Begin(v)
	}
	s.eng.atStep(s.eng.now.Add(d), s, next)
}

// atStep schedules service s to resume at state pc at instant t. It is
// the closure-free continuation analogue of atWake.
func (e *Engine) atStep(t Time, s stepper, pc int) {
	e.seq++
	e.events.push(event{at: t, seq: e.seq, svc: s, pc: pc})
}

// Serve binds m to the queue as an event-loop service: from now on every
// Push feeds the machine without any goroutine involvement. A queue is
// served by exactly one consumer; Serve panics on a second binding.
func (q *Queue[T]) Serve(m Machine[T]) {
	if q.svc != nil {
		panic("sim: queue already has a serving machine")
	}
	q.svc = &service[T]{eng: q.eng, q: q, m: m, idle: true}
	if q.Len() > 0 {
		q.svc.notify()
	}
}

// ServeProc drives m from the queue on the calling goroutine process,
// forever: the reference implementation of Serve. The loop below is the
// executable definition of the Machine contract.
func (q *Queue[T]) ServeProc(p *Proc, m Machine[T]) {
	for {
		d, pc := m.Begin(q.Pop(p))
		for pc != StepDone {
			p.Sleep(d)
			d, pc = m.Step(pc)
		}
	}
}
