package sim

import "testing"

// BenchmarkEngineSchedule measures raw event scheduling and dispatch: the
// heap push/pop path with no processes involved.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(Duration(i%16), fn)
		if i%64 == 63 {
			e.MustRun()
		}
	}
	e.MustRun()
}

// BenchmarkEventQueueDeep measures one push+pop cycle against a standing
// backlog of 1024 events, so heap sifts actually traverse a few levels.
func BenchmarkEventQueueDeep(b *testing.B) {
	var q eventQueue
	for i := 0; i < 1024; i++ {
		q.push(event{at: Time(i % 512), seq: uint64(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.push(event{at: Time(i % 512), seq: uint64(1024 + i)})
		q.pop()
	}
}

// BenchmarkProcYield measures the Sleep cycle of a single process: one
// scheduled wake plus one transfer of control out of and back into the
// process per iteration.
func BenchmarkProcYield(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	b.ResetTimer()
	e.Spawn("yielder", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	e.MustRun()
}

// BenchmarkPingPongHotPath measures two processes handing a queue item back
// and forth: the signal/wake/handoff sequence every simulated protocol
// exchange sits on.
func BenchmarkPingPongHotPath(b *testing.B) {
	e := NewEngine(1)
	ping := NewQueue[int](e)
	pong := NewQueue[int](e)
	b.ReportAllocs()
	b.ResetTimer()
	e.Spawn("server", func(p *Proc) {
		p.SetDaemon(true)
		for {
			v := ping.Pop(p)
			pong.Push(v)
		}
	})
	e.Spawn("client", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ping.Push(i)
			pong.Pop(p)
		}
	})
	e.MustRun()
}

// benchMachine is the minimal two-segment consumer: one sleep per item,
// then done — the shape of a NIC engine transition.
type benchMachine struct{}

func (benchMachine) Begin(int) (Duration, int) { return 1, 0 }
func (benchMachine) Step(int) (Duration, int)  { return 0, StepDone }

// BenchmarkActorStep measures one served-machine item cycle — pump or
// continuation event, Begin, continuation event, Step — entirely on the
// event loop. Compare with BenchmarkServeProcStep: the delta is the cost
// of the goroutine handoffs the actor model eliminates.
func BenchmarkActorStep(b *testing.B) {
	e := NewEngine(1)
	q := NewQueue[int](e)
	q.Serve(benchMachine{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(i)
		if i%64 == 63 {
			e.MustRun()
		}
	}
	e.MustRun()
}

// BenchmarkServeProcStep is BenchmarkActorStep with the same machine
// driven by a goroutine process: each transition is a real Sleep, each
// wake a control transfer into and out of the consumer goroutine.
func BenchmarkServeProcStep(b *testing.B) {
	e := NewEngine(1)
	q := NewQueue[int](e)
	e.Spawn("svc", func(p *Proc) {
		p.SetDaemon(true)
		q.ServeProc(p, benchMachine{})
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(i)
		if i%64 == 63 {
			e.MustRun()
		}
	}
	e.MustRun()
	b.StopTimer()
	e.Shutdown()
}
