package sim

import "testing"

// BenchmarkEngineSchedule measures raw event scheduling and dispatch: the
// heap push/pop path with no processes involved.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(Duration(i%16), fn)
		if i%64 == 63 {
			e.MustRun()
		}
	}
	e.MustRun()
}

// BenchmarkEventQueueDeep measures one push+pop cycle against a standing
// backlog of 1024 events, so heap sifts actually traverse a few levels.
func BenchmarkEventQueueDeep(b *testing.B) {
	var q eventQueue
	for i := 0; i < 1024; i++ {
		q.push(event{at: Time(i % 512), seq: uint64(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.push(event{at: Time(i % 512), seq: uint64(1024 + i)})
		q.pop()
	}
}

// BenchmarkProcYield measures the Sleep cycle of a single process: one
// scheduled wake plus one transfer of control out of and back into the
// process per iteration.
func BenchmarkProcYield(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	b.ResetTimer()
	e.Spawn("yielder", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	e.MustRun()
}

// BenchmarkPingPongHotPath measures two processes handing a queue item back
// and forth: the signal/wake/handoff sequence every simulated protocol
// exchange sits on.
func BenchmarkPingPongHotPath(b *testing.B) {
	e := NewEngine(1)
	ping := NewQueue(e)
	pong := NewQueue(e)
	b.ReportAllocs()
	b.ResetTimer()
	e.Spawn("server", func(p *Proc) {
		p.SetDaemon(true)
		for {
			v := ping.Pop(p)
			pong.Push(v)
		}
	})
	e.Spawn("client", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ping.Push(i)
			pong.Pop(p)
		}
	})
	e.MustRun()
}
